package dynopt

import (
	"strings"
	"testing"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{Nodes: 4})
	users := make([]Tuple, 400)
	for i := range users {
		users[i] = Tuple{Int(int64(i)), Int(int64(i % 8)), Str("user-pad")}
	}
	if err := db.CreateDataset("users", NewSchema(
		F("u_id", KindInt), F("u_grp", KindInt), F("u_pad", KindString),
	), []string{"u_id"}, users); err != nil {
		t.Fatal(err)
	}
	orders := make([]Tuple, 3000)
	for i := range orders {
		orders[i] = Tuple{Int(int64(i)), Int(int64(i % 400)), Int(int64(i % 50)), Float(float64(i) / 7)}
	}
	if err := db.CreateDataset("orders", NewSchema(
		F("o_id", KindInt), F("o_user", KindInt), F("o_item", KindInt), F("o_amt", KindFloat),
	), []string{"o_id"}, orders); err != nil {
		t.Fatal(err)
	}
	items := make([]Tuple, 50)
	for i := range items {
		items[i] = Tuple{Int(int64(i)), Str("item-" + strings.Repeat("x", i%5))}
	}
	if err := db.CreateDataset("items", NewSchema(
		F("i_id", KindInt), F("i_name", KindString),
	), []string{"i_id"}, items); err != nil {
		t.Fatal(err)
	}
	return db
}

const apiQuery = `SELECT o.o_id FROM orders o, users u, items i
WHERE o.o_user = u.u_id AND o.o_item = i.i_id AND u.u_grp = 3`

func TestOpenDefaults(t *testing.T) {
	db := Open(Config{})
	if db.Nodes() != 4 {
		t.Errorf("default nodes = %d", db.Nodes())
	}
	db2 := Open(Config{Nodes: 10})
	if db2.Nodes() != 10 {
		t.Errorf("nodes = %d", db2.Nodes())
	}
}

func TestQueryAllStrategies(t *testing.T) {
	wantRows := 3000 / 8 // u_grp = 3 keeps 50 of 400 users → 1/8 of orders
	for _, s := range []Strategy{StrategyDynamic, StrategyCostBased, StrategyBestOrder,
		StrategyWorstOrder, StrategyPilotRun, StrategyIngres} {
		t.Run(string(s), func(t *testing.T) {
			db := testDB(t)
			res, err := db.Query(apiQuery, &QueryOptions{Strategy: s})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != wantRows {
				t.Errorf("rows = %d, want %d", len(res.Rows), wantRows)
			}
			if res.Metrics.Strategy != string(s) {
				t.Errorf("metrics strategy = %q", res.Metrics.Strategy)
			}
			if res.Metrics.Plan == "" || res.Metrics.SimSeconds <= 0 {
				t.Errorf("metrics incomplete: %+v", res.Metrics)
			}
			if res.Columns[0] != "o.o_id" {
				t.Errorf("columns = %v", res.Columns)
			}
		})
	}
}

func TestQueryDefaultStrategyIsDynamic(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(apiQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Strategy != "dynamic" {
		t.Errorf("default strategy = %q", res.Metrics.Strategy)
	}
}

func TestQueryUnknownStrategy(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(apiQuery, &QueryOptions{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy did not error")
	}
}

func TestRegisterUDFAndParams(t *testing.T) {
	db := testDB(t)
	err := db.RegisterUDF("grp_of", func(args []Value) (Value, error) {
		return Int(args[0].I() % 8), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SetParam("target", Int(3))
	res, err := db.Query(`SELECT u.u_id FROM users u WHERE grp_of(u.u_id) = $target`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Errorf("rows = %d, want 50", len(res.Rows))
	}
	// Per-query params override.
	res2, err := db.Query(`SELECT u.u_id FROM users u WHERE grp_of(u.u_id) = $target`,
		&QueryOptions{Params: map[string]Value{"target": Int(99)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 {
		t.Errorf("override rows = %d, want 0", len(res2.Rows))
	}
}

func TestCreateIndexAndINLJ(t *testing.T) {
	db := Open(Config{Nodes: 4, EnableINLJ: true})
	// Rebuild the same datasets on the INLJ-enabled DB.
	big := make([]Tuple, 4000)
	for i := range big {
		big[i] = Tuple{Int(int64(i)), Int(int64(i % 100))}
	}
	if err := db.CreateDataset("big", NewSchema(F("b_id", KindInt), F("b_fk", KindInt)), []string{"b_id"}, big); err != nil {
		t.Fatal(err)
	}
	small := make([]Tuple, 100)
	for i := range small {
		small[i] = Tuple{Int(int64(i)), Int(int64(i % 4))}
	}
	if err := db.CreateDataset("small", NewSchema(F("s_id", KindInt), F("s_v", KindInt)), []string{"s_id"}, small); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("big", "b_fk"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("nope", "x"); err == nil {
		t.Error("index on unknown dataset did not error")
	}
	res, err := db.Query(`SELECT b.b_id FROM big b, small s WHERE b.b_fk = s.s_id AND s.s_v = 2`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1000 {
		t.Errorf("rows = %d, want 1000", len(res.Rows))
	}
	if !strings.Contains(res.Metrics.Plan, "⋈i") {
		t.Errorf("INLJ not used: %s", res.Metrics.Plan)
	}
	if res.Metrics.Counters.IndexLookups == 0 {
		t.Error("no index lookups metered")
	}
}

func TestExplainDoesNotPolluteMetrics(t *testing.T) {
	db := testDB(t)
	out, err := db.Explain(apiQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join") {
		t.Errorf("explain output:\n%s", out)
	}
	// Explain must not leave temps behind.
	for _, n := range db.Datasets() {
		if strings.HasPrefix(n, "tmp_") {
			t.Errorf("explain leaked %s", n)
		}
	}
}

func TestDatasets(t *testing.T) {
	db := testDB(t)
	names := db.Datasets()
	if len(names) != 3 {
		t.Errorf("datasets = %v", names)
	}
}

func TestWorkloadWrappers(t *testing.T) {
	db := Open(Config{Nodes: 2})
	n, err := LoadTPCH(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6000 {
		t.Errorf("lineitem = %d", n)
	}
	if err := CreateTPCHIndexes(db); err != nil {
		t.Fatal(err)
	}
	m, err := LoadTPCDS(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 6000 {
		t.Errorf("store_sales = %d", m)
	}
	if err := CreateTPCDSIndexes(db); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{TPCHQ8(), TPCHQ9(), TPCDSQ17(), TPCDSQ50()} {
		res, err := db.Query(sql, nil)
		if err != nil {
			t.Fatalf("workload query failed: %v", err)
		}
		if res.Metrics.Plan == "" {
			t.Error("no plan reported")
		}
	}
}

func TestCreateDatasetErrors(t *testing.T) {
	db := Open(Config{Nodes: 2})
	err := db.CreateDataset("bad", NewSchema(F("a", KindInt)), []string{"zz"}, []Tuple{{Int(1)}})
	if err == nil {
		t.Error("bad pk did not error")
	}
}

func TestReoptBudget(t *testing.T) {
	db := Open(Config{Nodes: 4, ReoptBudget: 1})
	if _, err := LoadTPCDS(db, 1); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(TPCDSQ17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Reopts > 1 {
		t.Errorf("reopts = %d exceeds budget 1", res.Metrics.Reopts)
	}
	// Unbounded comparison returns the same rows.
	db2 := Open(Config{Nodes: 4})
	if _, err := LoadTPCDS(db2, 1); err != nil {
		t.Fatal(err)
	}
	res2, err := db2.Query(TPCDSQ17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res2.Rows) {
		t.Errorf("budgeted rows %d != unbounded rows %d", len(res.Rows), len(res2.Rows))
	}
}

func TestAggregateQueryViaAPI(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT u.u_grp, count(o.o_id) AS n, avg(o.o_amt) AS a
		FROM orders o, users u WHERE o.o_user = u.u_id
		GROUP BY u.u_grp ORDER BY u.u_grp`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].I()
	}
	if total != 3000 {
		t.Errorf("counts sum to %d, want 3000", total)
	}
	if res.Columns[1] != "n" || res.Columns[2] != "a" {
		t.Errorf("columns = %v", res.Columns)
	}
}
