// Package dynopt is a reproduction of "Revisiting Runtime Dynamic
// Optimization for Join Queries in Big Data Management Systems"
// (Pavlopoulou, Carey, Tsotras — EDBT 2022) as a self-contained Go library:
// a simulated shared-nothing BDMS with partitioned storage, a statistics
// framework (Greenwald-Khanna quantiles + HyperLogLog), three physical join
// algorithms, and six optimizer strategies — the paper's runtime dynamic
// optimization plus the five baselines its evaluation compares against.
//
// Quick start:
//
//	db := dynopt.Open(dynopt.Config{Nodes: 4})
//	db.CreateDataset("users", dynopt.NewSchema(
//	    dynopt.F("id", dynopt.KindInt), dynopt.F("city", dynopt.KindString),
//	), []string{"id"}, rows)
//	res, err := db.Query(sqlText, nil)
//
// Every query execution reports the physical plan it ran (in the paper's
// ⋈/⋈b/⋈i notation), the blocking re-optimization points crossed, and the
// work metered against the simulated cluster's cost model.
package dynopt

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/memo"
	"dynopt/internal/optimizer"
	"dynopt/internal/sqlpp"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Re-exported value primitives so callers build rows and UDFs without
// touching internal packages.
type (
	// Value is one SQL value (tagged union).
	Value = types.Value
	// Kind enumerates value kinds.
	Kind = types.Kind
	// Tuple is one row of values.
	Tuple = types.Tuple
	// Schema describes a dataset's columns.
	Schema = types.Schema
	// Field is one schema column.
	Field = types.Field
	// Snapshot holds the metered cost counters of one query run.
	Snapshot = cluster.Snapshot
)

// Value kind constants.
const (
	KindNull   = types.KindNull
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.Int
	// Float builds a floating-point value.
	Float = types.Float
	// Str builds a string value.
	Str = types.Str
	// Bool builds a boolean value.
	Bool = types.Bool
	// Null builds the NULL value.
	Null = types.Null
)

// F is shorthand for a schema field.
func F(name string, kind Kind) Field { return Field{Name: name, Kind: kind} }

// The failure taxonomy (re-exported from the internal faults package so
// callers classify with errors.Is against dynopt names). See the README's
// "Failure model" section.
var (
	// ErrTransient marks failures that may not recur; Config.Retry re-runs
	// queries whose error chains carry it.
	ErrTransient = faults.ErrTransient
	// ErrSpillIO marks spill-device I/O failures (transient).
	ErrSpillIO = faults.ErrSpillIO
	// ErrCorrupt marks spill data that failed integrity verification on
	// read-back — checksum mismatch, bad framing, truncation, or counts
	// disagreeing with the run's footer seal — after any rebuild attempt
	// also failed or recurred. Wraps ErrTransient.
	ErrCorrupt = faults.ErrCorrupt
	// ErrDiskFull marks spill writes refused by a full device (ENOSPC or a
	// short write). Wraps ErrSpillIO.
	ErrDiskFull = faults.ErrDiskFull
	// ErrAdmission marks a query that timed out or was cancelled while
	// queued for an admission slot; nothing was executed.
	ErrAdmission = faults.ErrAdmission
	// ErrOverCapacity marks a query the memory governor refused with no
	// degraded path able to absorb the shortfall.
	ErrOverCapacity = faults.ErrOverCapacity
)

// QueryError is the structured failure of one query execution: the pipeline
// stage and operator that failed, whether it was a contained panic (with
// the recovered stack), and the underlying cause, unwrappable to the
// sentinel taxonomy. Retrieve with errors.As.
type QueryError = faults.QueryError

// FaultRegistry is the deterministic fault-injection registry armed through
// Config.Faults (test-only; see internal/faults for rules and triggers).
type FaultRegistry = faults.Registry

// FaultRule arms one injection point on a FaultRegistry.
type FaultRule = faults.Rule

// CorruptKind selects the on-disk mutation a FaultRule applies to a sealed
// spill run at the "spill.corrupt" point (test-only corruption injection).
type CorruptKind = faults.CorruptKind

const (
	CorruptFlipBit      = faults.CorruptFlipBit
	CorruptTruncateTail = faults.CorruptTruncateTail
	CorruptTornWrite    = faults.CorruptTornWrite
)

// NewFaultRegistry returns a registry whose probabilistic triggers draw
// from seed. Arm rules on it and pass it as Config.Faults.
func NewFaultRegistry(seed int64) *FaultRegistry { return faults.New(seed) }

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return types.NewSchema(fields...) }

// Strategy selects the optimizer a query runs under.
type Strategy string

// The six strategies of the paper's evaluation (§7.2).
const (
	// StrategyDynamic is the paper's runtime dynamic optimization
	// (Algorithm 1): predicate push-down, per-stage re-optimization with
	// online statistics, greedy cheapest-next-join planning.
	StrategyDynamic Strategy = "dynamic"
	// StrategyCostBased is traditional static cost-based optimization from
	// ingestion-time statistics.
	StrategyCostBased Strategy = "cost-based"
	// StrategyBestOrder executes the optimal plan in one pipelined job (the
	// user-knows-best baseline).
	StrategyBestOrder Strategy = "best-order"
	// StrategyWorstOrder executes a right-deep decreasing-result-size plan
	// with hash joins only.
	StrategyWorstOrder Strategy = "worst-order"
	// StrategyPilotRun estimates initial statistics from LIMIT-k sample
	// queries, then adapts.
	StrategyPilotRun Strategy = "pilot-run"
	// StrategyIngres is the original INGRES decomposition: cardinalities
	// only.
	StrategyIngres Strategy = "ingres-like"
)

// Config configures a DB instance.
type Config struct {
	// Nodes is the simulated shared-nothing cluster size (default 4).
	Nodes int
	// BroadcastThresholdBytes caps the size of a join input that may be
	// replicated to every node (default 128 KiB).
	BroadcastThresholdBytes int64
	// EnableINLJ allows indexed nested-loop joins where secondary indexes
	// exist (default off, as in the paper's Figure 7 runs).
	EnableINLJ bool
	// ReoptBudget bounds the number of blocking re-optimization points per
	// query for the dynamic strategy; when exhausted the remainder is
	// planned statically from the statistics gathered so far (the §8
	// trade-off). 0 means unlimited.
	ReoptBudget int
	// MaxConcurrentQueries caps how many queries execute at once; further
	// Query/QueryCtx calls block for a slot (admission control), or return
	// early when their context is cancelled while waiting. 0 means
	// unlimited.
	MaxConcurrentQueries int
	// SpillDir enables real memory governance: hash joins hold at most
	// MemoryPerNodeBytes of build rows resident per node, evicting overflow
	// partitions to run files under this directory (one temp subdirectory
	// per query, created lazily on first spill and removed on every query
	// exit path), and SpillBytes/SpillRows meter the actual run-file I/O.
	// Empty (the default) keeps the simulated spill model: counters are
	// charged from byte arithmetic and nothing touches the filesystem.
	SpillDir string
	// SpillSync fsyncs every sealed run file (real-spill mode only): the
	// durability knob for spill devices with volatile write caches. Off by
	// default — run files never outlive their query, so the cost usually
	// buys nothing.
	SpillSync bool
	// MemoryPerNodeBytes overrides the per-node join-memory budget
	// (default 512 KiB; negative disables the budget entirely).
	MemoryPerNodeBytes int64
	// DataDir enables disk-native columnar storage: datasets converted with
	// ConvertToPaged (or cmd/datagen -pages) live here as sealed page files
	// with zone-mapped directories, statistics sidecars, and persisted
	// secondary indexes, opened with AttachPaged. Scans over paged datasets
	// read lazily through the page cache with zone-map pruning and
	// projection/predicate pushdown; in-memory datasets are unaffected.
	// Empty (the default) keeps everything resident.
	DataDir string
	// PageCacheBytes is the byte budget of the shared page cache serving all
	// paged datasets, charged against the memory governor for its lifetime
	// (cached bytes compete with join build memory; under governor pressure
	// the cache declines inserts and reads pass through). Zero selects
	// DefaultPageCacheBytes when DataDir is set.
	PageCacheBytes int64
	// ChunkRows sets the streaming pipeline's chunk capacity in rows — the
	// batch size every cursor, exchange buffer, and vectorized predicate
	// kernel works in. Validated at Open: zero or negative selects the
	// default (1024). Smaller values shrink the resident working set of a
	// stage (O(nodes² × ChunkRows) tuple headers) at the cost of more
	// per-chunk overhead; results are identical at any value.
	ChunkRows int
	// PlanCacheEntries enables the adaptive plan memo with a bounded LRU of
	// this many canonical query shapes. The dynamic strategy records what
	// its re-optimization loop converged to — join order, per-join
	// algorithm, push-downs, statistics fingerprint, per-stage observed
	// cardinalities — and repeated executions of the same shape (same
	// statement, different literals or $param bindings) replay the
	// remembered plan as pipelined stages with zero blocking
	// re-optimization points, falling back mid-query to the dynamic loop
	// whenever a stage's observed cardinality leaves the tolerance band.
	// 0 (the default) disables the memo: execution is byte-identical to
	// the paper's loop.
	PlanCacheEntries int
	// ReplayTolerance is the multiplicative cardinality band of the replay
	// guardrails: a replayed stage observing more than ReplayTolerance×
	// (or fewer than 1/ReplayTolerance×) the recorded rows falls back to
	// the dynamic loop. Values <= 1 mean the default (8).
	ReplayTolerance float64
	// Faults arms the test-only fault-injection registry: named points in
	// the spill, governor, exchange, catalog, and memo layers fire the rules
	// armed on it. Nil (production, the default) leaves every injection site
	// a single nil check with zero allocations.
	Faults *FaultRegistry
	// Retry re-runs queries whose failures are classified transient
	// (errors.Is(err, ErrTransient)). Safe by construction: every attempt's
	// side effects — temp datasets, spill files, memory reservations — are
	// swept on its exit path before the next attempt starts.
	Retry RetryPolicy
}

// RetryPolicy configures transient-failure retry for Config.Retry.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per query; <= 1 disables retry.
	MaxAttempts int
	// BaseBackoff is the sleep before the second attempt, doubling per
	// attempt; 0 retries immediately.
	BaseBackoff time.Duration
	// Jitter in (0, 1] randomizes each backoff by ±Jitter of its value.
	Jitter float64
}

// backoff returns the sleep after a failed attempt (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << (attempt - 1)
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rand.Float64()-1)))
	}
	return d
}

// DB is one simulated BDMS instance: a cluster, a catalog, and a UDF
// registry.
//
// Concurrency: Query, QueryCtx, Explain, SetParam, and Datasets are safe
// for concurrent use — each query runs in its own execution scope (private
// cost accountant, private temp-dataset namespace swept even on error or
// panic) against the shared, internally synchronized catalog, whose base
// datasets are immutable once loaded. Load the data first: CreateDataset,
// CreateIndex, and RegisterUDF belong to the loading phase and must not
// race with in-flight queries over the same names.
type DB struct {
	ctx         *engine.Context // loading-phase context (shared cluster/catalog/UDFs)
	algo        core.AlgoConfig
	reoptBudget int
	spillDir    string
	spillSync   bool
	memo        *memo.Store // adaptive plan memo; nil when PlanCacheEntries == 0

	// Disk-native storage: the data directory paged datasets live in and the
	// shared byte-budgeted page cache serving them, holding a DB-lifetime
	// reservation scope against the memory governor.
	dataDir    string
	pageCache  *storage.PageCache
	cacheGrant *cluster.Grant

	pmu    sync.RWMutex // guards ctx.Params against SetParam during serving
	admit  chan struct{}
	qidSeq atomic.Int64

	faults *faults.Registry
	retry  RetryPolicy
}

// Open creates a DB.
func Open(cfg Config) *DB {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	algo := core.DefaultAlgoConfig()
	if cfg.BroadcastThresholdBytes > 0 {
		algo.BroadcastThresholdBytes = cfg.BroadcastThresholdBytes
	}
	algo.EnableINLJ = cfg.EnableINLJ
	if cfg.ChunkRows < 0 {
		cfg.ChunkRows = 0 // normalized here so every Context copy is valid
	}
	db := &DB{
		ctx: &engine.Context{
			Cluster:   cluster.New(cfg.Nodes),
			Catalog:   catalog.New(),
			UDFs:      expr.NewRegistry(),
			Params:    map[string]Value{},
			ChunkRows: cfg.ChunkRows,
		},
		algo:        algo,
		reoptBudget: cfg.ReoptBudget,
		spillDir:    cfg.SpillDir,
		spillSync:   cfg.SpillSync,
		faults:      cfg.Faults,
		retry:       cfg.Retry,
	}
	if cfg.MemoryPerNodeBytes != 0 {
		db.ctx.Cluster.SetMemoryPerNodeBytes(cfg.MemoryPerNodeBytes)
	}
	if cfg.Faults != nil {
		db.ctx.Cluster.Governor().SetFaults(cfg.Faults)
	}
	if cfg.MaxConcurrentQueries > 0 {
		db.admit = make(chan struct{}, cfg.MaxConcurrentQueries)
	}
	if cfg.DataDir != "" {
		db.dataDir = cfg.DataDir
		budget := cfg.PageCacheBytes
		if budget <= 0 {
			budget = DefaultPageCacheBytes
		}
		db.pageCache = storage.NewPageCache(budget)
		// The cache's resident bytes hold a DB-lifetime reservation scope:
		// cached pages compete with join build memory under the same
		// governor, and a failed reservation declines the insert (reads pass
		// through uncached) instead of pressuring queries into spilling for
		// the cache's benefit.
		db.cacheGrant = db.ctx.Cluster.Governor().Grant()
		db.pageCache.Reserve = db.cacheGrant.Reserve
		db.pageCache.Release = db.cacheGrant.Release
	}
	if cfg.PlanCacheEntries > 0 {
		db.memo = memo.NewStore(cfg.PlanCacheEntries, memo.Options{Tolerance: cfg.ReplayTolerance})
		// Catalog mutations — a base dataset registered, replaced, dropped,
		// or indexed — evict every memoized shape referencing it.
		db.ctx.Catalog.SetBaseHook(db.memo.InvalidateDataset)
	}
	return db
}

// Nodes returns the simulated cluster size.
func (db *DB) Nodes() int { return db.ctx.Cluster.Nodes() }

// DefaultPageCacheBytes is the page cache budget when Config.DataDir is set
// without an explicit Config.PageCacheBytes.
const DefaultPageCacheBytes int64 = 4 << 20

// DefaultPageRows is the page granularity ConvertToPaged uses (rows per
// page) when rowsPerPage <= 0.
const DefaultPageRows = storage.DefaultPageRows

// ConvertToPaged writes a registered resident dataset to disk-native
// columnar form under Config.DataDir — sealed page file with per-column
// zone maps and checksummed directory, statistics sidecar, and one index
// sidecar per secondary index — then reopens it paged and re-registers it.
// The load-once conversion path: afterwards scans stream pages through the
// cache with zone-map pruning and pushdown, and results stay byte-identical
// to resident execution. rowsPerPage <= 0 selects DefaultPageRows.
// Loading-phase operation: must not race with in-flight queries.
func (db *DB) ConvertToPaged(name string, rowsPerPage int) error {
	if db.dataDir == "" {
		return fmt.Errorf("dynopt: ConvertToPaged requires Config.DataDir")
	}
	ds, ok := db.ctx.Catalog.Get(name)
	if !ok {
		return fmt.Errorf("dynopt: unknown dataset %q", name)
	}
	if ds.IsPaged() {
		return fmt.Errorf("dynopt: dataset %q is already paged", name)
	}
	st := db.ctx.Catalog.Stats().Get(name)
	if err := storage.WritePaged(db.dataDir, ds, st, rowsPerPage); err != nil {
		return err
	}
	return db.AttachPaged(name)
}

// AttachPaged opens a converted dataset from Config.DataDir and registers
// it: schema, primary key, and ingestion statistics come from the sidecar
// (byte-identical to what the conversion-time load collected, so plans and
// counters match resident runs exactly), persisted secondary indexes load
// alongside, and rows stay at rest in the page file until scanned.
// Loading-phase operation: must not race with in-flight queries.
func (db *DB) AttachPaged(name string) error {
	if db.dataDir == "" {
		return fmt.Errorf("dynopt: AttachPaged requires Config.DataDir")
	}
	ds, st, err := storage.OpenPaged(db.dataDir, name, db.pageCache, db.faults)
	if err != nil {
		return err
	}
	return db.ctx.Catalog.Register(ds, st)
}

// CreateDataset loads rows as a named dataset, hash-partitioned on pk across
// the cluster (round-robin when pk is nil), collecting ingestion-time
// statistics — the upfront statistics that seed every optimizer's first
// plan.
func (db *DB) CreateDataset(name string, schema *Schema, pk []string, rows []Tuple) error {
	ds, st, err := storage.Build(name, schema, pk, rows, db.ctx.Cluster.Nodes())
	if err != nil {
		return err
	}
	return db.ctx.Catalog.Register(ds, st)
}

// CreateIndex adds a secondary index on a dataset field, enabling indexed
// nested-loop joins against it. Memoized plans referencing the dataset are
// invalidated: they were converged without the index.
func (db *DB) CreateIndex(dataset, field string) error {
	ds, ok := db.ctx.Catalog.Get(dataset)
	if !ok {
		return fmt.Errorf("dynopt: unknown dataset %q", dataset)
	}
	if _, err := storage.BuildIndex(ds, field); err != nil {
		return err
	}
	if ds.IsPaged() && db.dataDir != "" {
		// Persist the index beside the page file so later AttachPaged opens
		// load it instead of rebuilding from pages.
		if err := storage.SaveIndex(db.dataDir, ds, field); err != nil {
			return err
		}
	}
	db.ctx.Catalog.NoteIndexBuilt(dataset)
	return nil
}

// DropDataset removes a base dataset and its statistics from the catalog,
// evicting every memoized plan shape that references it. Loading-phase
// operation: it must not race with in-flight queries over the same name.
func (db *DB) DropDataset(name string) error {
	if _, ok := db.ctx.Catalog.Get(name); !ok {
		return fmt.Errorf("dynopt: unknown dataset %q", name)
	}
	db.ctx.Catalog.Drop(name)
	return nil
}

// RegisterUDF installs a scalar user-defined function, callable from query
// predicates. UDFs are opaque to static selectivity estimation — exactly the
// predicates the dynamic strategy executes before planning.
func (db *DB) RegisterUDF(name string, fn func(args []Value) (Value, error)) error {
	return db.ctx.UDFs.Register(expr.UDF{Name: name, Fn: fn})
}

// SetParam binds a query parameter referenced as $name. Queries already
// executing keep the bindings they started with.
func (db *DB) SetParam(name string, v Value) {
	db.pmu.Lock()
	defer db.pmu.Unlock()
	db.ctx.Params[name] = v
}

// paramsFor snapshots the DB-level parameters merged with per-query
// overrides; every query gets its own copy so SetParam cannot race with
// predicate evaluation mid-flight.
func (db *DB) paramsFor(opts *QueryOptions) map[string]Value {
	db.pmu.RLock()
	merged := make(map[string]Value, len(db.ctx.Params))
	for k, v := range db.ctx.Params {
		merged[k] = v
	}
	db.pmu.RUnlock()
	if opts != nil {
		for k, v := range opts.Params {
			merged[k] = v
		}
	}
	return merged
}

// Datasets lists the registered base dataset names. Per-query temp
// intermediates are excluded: they belong to in-flight execution scopes,
// and surfacing them here made the listing flicker under concurrent
// queries.
func (db *DB) Datasets() []string { return db.ctx.Catalog.BaseNames() }

// Metrics reports what one query execution did and cost.
type Metrics struct {
	// Strategy that ran.
	Strategy string
	// Plan in the paper's compact notation, e.g. ((d1' ⋈b ss) ⋈ sr).
	Plan string
	// PlanTree is the indented multi-line plan.
	PlanTree string
	// Stages lists executed push-downs and join stages.
	Stages []string
	// Reopts counts blocking re-optimization points in the join loop.
	Reopts int
	// PushDowns counts executed predicate push-down jobs.
	PushDowns int
	// WallSeconds is the host-machine execution time.
	WallSeconds float64
	// SimSeconds prices the metered work on the simulated cluster.
	SimSeconds float64
	// Counters are the raw metered cost counters.
	Counters Snapshot
	// CacheHit reports that the query replayed a memoized plan end to end
	// (Config.PlanCacheEntries > 0): every staged job and the final
	// pipeline came from the plan memo, with Reopts == 0.
	CacheHit bool
	// ReplayFellBack reports that a replay started but a stage's observed
	// cardinality left the memo's tolerance band mid-query, and the run
	// fell back to the dynamic loop from the already-materialized
	// intermediate (results are always correct either way).
	ReplayFellBack bool
	// Attempts is how many executions this result took under Config.Retry
	// (1 when the first attempt succeeded or retry is disabled). Metrics
	// describe the final, successful attempt only.
	Attempts int
	// SpillRebuilds counts spill runs that failed integrity verification on
	// read-back and were rebuilt from their source partition (real-spill
	// mode; 0 means every run read back exactly as written).
	SpillRebuilds int64
	// Page-level scan observations (paged datasets only; all zero for
	// resident runs). Deliberately outside Counters: paged and resident
	// executions meter identical cost counters, and these report the I/O the
	// storage layer actually did — or proved it could skip.
	PagesRead     int64 // page frames read (cache hits included)
	PagesPruned   int64 // pages skipped by zone maps before any read
	PageCacheHits int64
	PageCacheMiss int64
}

// Result is a finished query.
type Result struct {
	Columns []string
	Rows    []Tuple
	Metrics Metrics
}

// QueryOptions selects the strategy and per-query overrides. Overrides
// apply to this query only: every call builds its own strategy instance, so
// concurrent queries with different options never observe each other's
// settings.
type QueryOptions struct {
	// Strategy defaults to StrategyDynamic.
	Strategy Strategy
	// Params bound for this query (overrides DB-level params).
	Params map[string]Value
	// MaxReopts overrides Config.ReoptBudget for this query: > 0 sets the
	// blocking re-optimization budget, < 0 means unlimited, 0 inherits the
	// DB-level budget.
	MaxReopts int
	// BroadcastThresholdBytes, when > 0, overrides the DB-level broadcast
	// threshold of the join-algorithm rule for this query.
	BroadcastThresholdBytes int64
	// EnableINLJ, when non-nil, overrides the DB-level indexed-nested-loop
	// setting for this query.
	EnableINLJ *bool
	// NoCache bypasses the plan memo for this query: no replay, no
	// recording. Queries with NoCache behave exactly as if
	// Config.PlanCacheEntries were 0.
	NoCache bool
	// Timeout bounds this query end to end — including time spent queued
	// for an admission slot (expiry there returns ErrAdmission) and all
	// retry attempts. 0 means no per-query deadline beyond ctx's own.
	Timeout time.Duration
}

// effectiveAlgo resolves the per-query join-algorithm configuration:
// DB-level defaults with opts overrides applied.
func (db *DB) effectiveAlgo(opts *QueryOptions) core.AlgoConfig {
	algo := db.algo
	if opts != nil {
		if opts.BroadcastThresholdBytes > 0 {
			algo.BroadcastThresholdBytes = opts.BroadcastThresholdBytes
		}
		if opts.EnableINLJ != nil {
			algo.EnableINLJ = *opts.EnableINLJ
		}
	}
	return algo
}

// effectiveBudget resolves the per-query re-optimization budget: > 0 sets
// it, < 0 lifts it, 0 inherits the DB-level ReoptBudget.
func (db *DB) effectiveBudget(opts *QueryOptions) int {
	if opts != nil {
		if opts.MaxReopts > 0 {
			return opts.MaxReopts
		}
		if opts.MaxReopts < 0 {
			return 0 // unlimited
		}
	}
	return db.reoptBudget
}

func (db *DB) strategyFor(opts *QueryOptions) (core.Strategy, error) {
	var s Strategy
	noCache := false
	if opts != nil {
		s = opts.Strategy
		noCache = opts.NoCache
	}
	algo := db.effectiveAlgo(opts)
	switch s {
	case "", StrategyDynamic:
		cfg := core.DefaultConfig()
		cfg.Algo = algo
		cfg.MaxReopts = db.effectiveBudget(opts)
		return &core.Dynamic{Cfg: cfg, Memo: db.memo, NoCache: noCache}, nil
	case StrategyCostBased:
		return &optimizer.CostBased{Cfg: algo}, nil
	case StrategyBestOrder:
		cfg := core.DefaultConfig()
		cfg.Algo = algo
		return &optimizer.BestOrder{Cfg: cfg}, nil
	case StrategyWorstOrder:
		return optimizer.NewWorstOrder(), nil
	case StrategyPilotRun:
		cfg := core.DefaultConfig()
		cfg.Algo = algo
		cfg.PushDown = false
		return &optimizer.PilotRun{Cfg: cfg, SampleK: optimizer.DefaultPilotSampleK}, nil
	case StrategyIngres:
		return &optimizer.IngresLike{Cfg: algo}, nil
	default:
		return nil, fmt.Errorf("dynopt: unknown strategy %q", s)
	}
}

// Query parses, optimizes, and executes sql under the selected strategy.
// Safe for concurrent use; equivalent to QueryCtx with a background context.
func (db *DB) Query(sql string, opts *QueryOptions) (*Result, error) {
	return db.QueryCtx(context.Background(), sql, opts)
}

// QueryCtx is Query with cancellation: the query stops at the next stage
// boundary (scan, join, materialization, or re-optimization point) once ctx
// is cancelled, and a call waiting on admission control gives up its place
// in line (returning ErrAdmission, which also wraps the deadline or cancel
// cause). Each query attempt runs in a private execution scope — its own
// cost accountant, so Metrics meters exactly this query's work no matter
// how many others run concurrently, and its own temp-dataset namespace,
// swept on every exit path so a failing query leaves the catalog unchanged.
// A panic anywhere in execution is contained at the query boundary into a
// *QueryError after the scope's cleanup has run. With Config.Retry set,
// transient failures re-run the query under the same admission slot.
func (db *DB) QueryCtx(ctx context.Context, sql string, opts *QueryOptions) (*Result, error) {
	// Validate the strategy before queueing: a bad option should not spend
	// time waiting for an admission slot.
	if _, err := db.strategyFor(opts); err != nil {
		return nil, err
	}
	if opts != nil && opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if db.admit != nil {
		select {
		case db.admit <- struct{}{}:
			defer func() { <-db.admit }()
		case <-ctx.Done():
			return nil, fmt.Errorf("dynopt: %w: %w", ErrAdmission, ctx.Err())
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	attempts := db.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		res, err := db.runOnce(ctx, sql, opts)
		if err == nil {
			res.Metrics.Attempts = attempt
			return res, nil
		}
		// Retry only failures classified transient, never a caller's own
		// cancellation, and never past the attempt budget. Each attempt's
		// scope was fully swept on its way out, so a re-run starts clean.
		if attempt >= attempts || !errors.Is(err, ErrTransient) || ctx.Err() != nil {
			return nil, err
		}
		if d := db.retry.backoff(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
}

// runOnce executes one attempt in a fresh execution scope. The recover is
// registered before the cleanup defers, so on a panic the temp namespace is
// dropped, the grant closed, and the spill directory swept before the panic
// is converted to a *QueryError.
func (db *DB) runOnce(ctx context.Context, sql string, opts *QueryOptions) (out *Result, err error) {
	s, err := db.strategyFor(opts)
	if err != nil {
		return nil, err
	}
	scope := fmt.Sprintf("q%d_", db.qidSeq.Add(1))
	defer func() {
		if v := recover(); v != nil {
			out, err = nil, error(faults.FromPanic("query", scope, v))
		}
	}()
	// Backstop sweep: the dynamic driver drops its temps itself, but if a
	// strategy errors or panics between materializing and registering its
	// cleanup, the query's unique namespace guarantees nothing survives.
	defer db.ctx.Catalog.DropPrefix(catalog.TempPrefix(scope))

	// Per-query memory grant against the cluster governor: every join build
	// table, aggregate table, and resident intermediate is reserved through
	// it, and whatever a failed or cancelled query still holds is released
	// here.
	grant := db.ctx.Cluster.Governor().Grant()
	defer grant.Close()

	qctx := &engine.Context{
		Cluster:   db.ctx.Cluster,
		Catalog:   db.ctx.Catalog,
		UDFs:      db.ctx.UDFs,
		Params:    db.paramsFor(opts),
		Acct:      &cluster.Accounting{},
		Scope:     scope,
		Cancel:    ctx,
		Grant:     grant,
		Faults:    db.faults,
		ChunkRows: db.ctx.ChunkRows,
		PageStats: &storage.PageScanStats{},
	}
	if db.spillDir != "" {
		// Disk half of the query's execution scope: run files live in a
		// lazily created per-query directory, swept on every exit path like
		// the catalog temp namespace above.
		sm := storage.NewSpillManager(db.spillDir, scope)
		sm.Faults = db.faults
		sm.Sync = db.spillSync
		defer sm.Sweep()
		qctx.Spill = sm
	}
	res, rep, err := s.Run(qctx, sql)
	if err != nil {
		return nil, err
	}
	out = &Result{Columns: res.Columns, Rows: res.Rows}
	out.Metrics = Metrics{
		Strategy:       rep.Strategy,
		Plan:           rep.Compact(),
		Stages:         rep.StagePlans,
		Reopts:         rep.Reopts,
		PushDowns:      rep.PushDowns,
		WallSeconds:    rep.Wall.Seconds(),
		SimSeconds:     rep.SimSeconds,
		Counters:       rep.Counters,
		CacheHit:       rep.CacheHit,
		ReplayFellBack: rep.ReplayFellBack,
		SpillRebuilds:  rep.Counters.SpillRebuilds,
		PagesRead:      qctx.PageStats.PagesRead.Load(),
		PagesPruned:    qctx.PageStats.PagesPruned.Load(),
		PageCacheHits:  qctx.PageStats.CacheHits.Load(),
		PageCacheMiss:  qctx.PageStats.CacheMisses.Load(),
	}
	if rep.Tree != nil {
		out.Metrics.PlanTree = rep.Tree.Tree()
	}
	return out, nil
}

// Explain runs the query under the selected strategy against a snapshot of
// the catalog (base datasets only, fresh cost accounting) and returns the
// plan it chose, without touching this DB's metering. Note that for the
// adaptive strategies, explaining requires executing — the plan is only
// fully known at the end; that is the nature of runtime dynamic
// optimization. When the plan memo is enabled, the output additionally
// reports whether this query's shape would replay a memoized plan (the
// probe neither records nor perturbs the memo's LRU order).
func (db *DB) Explain(sql string, opts *QueryOptions) (string, error) {
	shadow := &DB{
		ctx: &engine.Context{
			Cluster:   cluster.New(db.ctx.Cluster.Nodes()),
			Catalog:   db.ctx.Catalog.CloneBases(),
			UDFs:      db.ctx.UDFs,
			Params:    db.paramsFor(nil),
			ChunkRows: db.ctx.ChunkRows,
		},
		algo:        db.algo,
		reoptBudget: db.reoptBudget,
	}
	res, err := shadow.Query(sql, opts)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("%s\n%s", res.Metrics.Plan, res.Metrics.PlanTree)
	// Only the dynamic strategy consults the memo; a probe for any other
	// strategy would mislead.
	if db.memo != nil && (opts == nil || opts.Strategy == "" || opts.Strategy == StrategyDynamic) {
		out += "\nplan cache: " + db.cacheProbe(sql, opts)
	}
	return out, nil
}

// cacheProbe reports whether a statement's shape would replay from the plan
// memo, without executing or touching LRU order.
func (db *DB) cacheProbe(sql string, opts *QueryOptions) string {
	if opts != nil && opts.NoCache {
		return "bypassed (NoCache)"
	}
	key, err := db.shapeKeyFor(sql, opts)
	if err != nil {
		return "miss"
	}
	e := db.memo.Peek(key)
	if e == nil {
		return "miss"
	}
	if reason, stale := e.Fingerprint.Stale(db.ctx.Catalog.Stats(), db.memo.Opts().StatsDriftTolerance); stale {
		return "stale (" + reason + ")"
	}
	return "hit — shape would replay"
}

// shapeKeyFor computes the memo key a query would execute under: canonical
// shape over the live catalog plus the effective per-query strategy
// configuration (the same derivation strategyFor uses). The spill-budget
// defaulting mirrors Dynamic.Body's: Body keys on ctx.Spill, which QueryCtx
// attaches exactly when Config.SpillDir is set — keep the two in lockstep.
func (db *DB) shapeKeyFor(sql string, opts *QueryOptions) (string, error) {
	q, err := sqlpp.Parse(sql)
	if err != nil {
		return "", err
	}
	g, err := sqlpp.Analyze(q, db.ctx.Catalog.Resolver())
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig()
	cfg.Algo = db.effectiveAlgo(opts)
	cfg.MaxReopts = db.effectiveBudget(opts)
	if db.spillDir != "" && cfg.Algo.SpillBudgetBytes == 0 {
		cfg.Algo.SpillBudgetBytes = db.ctx.Cluster.MemoryPerNodeBytes()
	}
	return core.ShapeKey(g, cfg), nil
}
