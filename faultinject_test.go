package dynopt

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynopt/internal/faults/leakcheck"
	"dynopt/internal/memo"
)

// faultDB wires a seeded registry into the standard test DB the same way
// Open(Config{Faults: ...}) does, with real spilling at the given budget.
func faultDB(t *testing.T, budget int64, seed int64) (*DB, *FaultRegistry, string) {
	t.Helper()
	db := testDB(t)
	dir := t.TempDir()
	reg := NewFaultRegistry(seed)
	db.spillDir = dir
	db.faults = reg
	db.ctx.Cluster.Governor().SetFaults(reg)
	db.ctx.Cluster.SetMemoryPerNodeBytes(budget)
	return db, reg, dir
}

// TestRetryTransientSpillIO: a one-shot spill-device read failure is
// classified transient, so with Config.Retry armed the query succeeds on
// the second attempt with rows identical to the fault-free run, and
// Metrics.Attempts records both executions.
func TestRetryTransientSpillIO(t *testing.T) {
	leakcheck.Check(t)
	want := sortedResultRows(mustQuery(t, testDB(t), apiQuery, nil))

	db, reg, dir := faultDB(t, 256, 42)
	db.retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}

	// Without retry, the same fault fails the query with a classified error.
	reg.Arm(FaultRule{Point: "spill.read", OneShot: true})
	db.retry = RetryPolicy{}
	if _, err := db.Query(apiQuery, nil); err == nil {
		t.Fatal("one-shot spill.read fault did not surface without retry")
	} else if !errors.Is(err, ErrSpillIO) || !errors.Is(err, ErrTransient) {
		t.Fatalf("spill fault not classified as transient spill I/O: %v", err)
	}
	dirEmpty(t, dir)

	// With retry, attempt 1 consumes the one-shot fault and attempt 2
	// succeeds: the failed attempt's scope was fully swept, so the re-run
	// starts clean.
	db.retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	reg.Reset()
	reg.Arm(FaultRule{Point: "spill.read", OneShot: true})
	res, err := db.Query(apiQuery, nil)
	if err != nil {
		t.Fatalf("retry did not recover from one-shot spill fault: %v", err)
	}
	if res.Metrics.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Metrics.Attempts)
	}
	if fired := reg.Fired("spill.read"); fired != 1 {
		t.Errorf("spill.read fired %d times, want 1", fired)
	}
	if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
		t.Errorf("retried rows diverged from fault-free baseline")
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}

// TestDegradeSpillFailureToResident: when the spill device fails on the
// very first eviction and the governor still has aggregate headroom, the
// DHHJ degrades to a fully resident build instead of failing the query.
// Grant denials force the spilling path even though the budget is huge, so
// the only pressure is injected.
func TestDegradeSpillFailureToResident(t *testing.T) {
	leakcheck.Check(t)
	want := sortedResultRows(mustQuery(t, testDB(t), apiQuery, nil))

	db, reg, dir := faultDB(t, 1<<30, 43)
	reg.Arm(FaultRule{Point: "governor.reserve", EveryN: 1})
	reg.Arm(FaultRule{Point: "spill.create", OneShot: true})
	res, err := db.Query(apiQuery, nil)
	if err != nil {
		t.Fatalf("spill failure with governor headroom must degrade, not fail: %v", err)
	}
	if fired := reg.Fired("spill.create"); fired != 1 {
		t.Errorf("spill.create fired %d times, want 1", fired)
	}
	if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
		t.Errorf("degraded rows diverged from fault-free baseline")
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}

// TestDegradeSpillFailureOverCapacity: the same spill-device failure with
// no governor headroom (another query holds the cluster over capacity)
// cannot degrade — holding the build resident would break the memory
// contract — so the query fails classified ErrOverCapacity, with the
// spill-I/O cause preserved in the chain.
func TestDegradeSpillFailureOverCapacity(t *testing.T) {
	leakcheck.Check(t)
	db, reg, dir := faultDB(t, 256, 44)

	hog := db.ctx.Cluster.Governor().Grant()
	hog.Reserve(1 << 40)
	defer hog.Close()

	reg.Arm(FaultRule{Point: "spill.create", EveryN: 1})
	_, err := db.Query(apiQuery, nil)
	if err == nil {
		t.Fatal("spill failure with no governor headroom must fail the query")
	}
	if !errors.Is(err, ErrOverCapacity) {
		t.Errorf("not classified ErrOverCapacity: %v", err)
	}
	if !errors.Is(err, ErrSpillIO) {
		t.Errorf("spill-I/O cause lost from the chain: %v", err)
	}
	dirEmpty(t, dir)
	hog.Close()
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
}

// TestFaultPanicContainedAsQueryError: an injected panic in a probe worker
// is contained into a *QueryError carrying the stage, the stack, and a
// transient classification — it never crashes the process and never skips
// scope cleanup.
func TestFaultPanicContainedAsQueryError(t *testing.T) {
	leakcheck.Check(t)
	db, reg, dir := faultDB(t, 1<<30, 45)
	base := db.Datasets()

	reg.Arm(FaultRule{Point: "probe.drain", OneShot: true, Panic: true})
	_, err := db.Query(apiQuery, nil)
	if err == nil {
		t.Fatal("injected probe panic did not surface")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("panic not contained as *QueryError: %v", err)
	}
	if !qe.Panicked {
		t.Error("QueryError.Panicked = false for an injected panic")
	}
	if len(qe.Stack) == 0 {
		t.Error("QueryError.Stack empty")
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("injected panic not classified transient (retryable): %v", err)
	}
	if ds := db.Datasets(); !reflect.DeepEqual(ds, base) {
		t.Errorf("Datasets() changed after contained panic: %v", ds)
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}

// TestFaultCatalogRegisterKeepsDatasetsStable is the regression test for
// the half-registered-dataset race: a failure (or panic) at the
// registration point must leave the visible catalog exactly as it was, and
// concurrent Datasets() callers must never observe a temp dataset or a
// partial listing while a query stages intermediates.
func TestFaultCatalogRegisterKeepsDatasetsStable(t *testing.T) {
	leakcheck.Check(t)
	db, reg, _ := faultDB(t, 1<<30, 46)
	base := db.Datasets()

	// Error variant: registration fails cleanly. StrategyIngres decomposes
	// every filtered dataset, so the run is guaranteed to stage (and
	// register) at least one intermediate.
	reg.Arm(FaultRule{Point: "catalog.register", OneShot: true})
	if _, err := db.Query(apiQuery, &QueryOptions{Strategy: StrategyIngres}); err == nil {
		t.Fatal("catalog.register fault did not surface")
	} else if !errors.Is(err, ErrTransient) {
		t.Fatalf("registration fault not classified transient: %v", err)
	}
	if ds := db.Datasets(); !reflect.DeepEqual(ds, base) {
		t.Fatalf("Datasets() changed after faulted registration: %v", ds)
	}

	// Panic variant, with a concurrent poller: every snapshot a reader
	// takes mid-query must equal the stable base listing.
	reg.Reset()
	reg.Arm(FaultRule{Point: "catalog.register", OneShot: true, Panic: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var racy atomic_string
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ds := db.Datasets(); !reflect.DeepEqual(ds, base) {
				racy.store(ds)
				return
			}
		}
	}()
	_, err := db.Query(apiQuery, &QueryOptions{Strategy: StrategyIngres})
	close(stop)
	wg.Wait()
	if err == nil {
		t.Fatal("catalog.register panic did not surface")
	}
	var qe *QueryError
	if !errors.As(err, &qe) || !qe.Panicked {
		t.Fatalf("registration panic not contained as *QueryError: %v", err)
	}
	if bad := racy.load(); bad != nil {
		t.Fatalf("concurrent Datasets() observed an unstable listing: %v", bad)
	}
	if ds := db.Datasets(); !reflect.DeepEqual(ds, base) {
		t.Fatalf("Datasets() changed after contained registration panic: %v", ds)
	}
}

// atomic_string guards the poller's failure sample without a data race.
type atomic_string struct {
	mu sync.Mutex
	v  []string
}

func (a *atomic_string) store(v []string) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomic_string) load() []string   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestAdmissionTimeoutWhileQueued: a query whose QueryOptions.Timeout
// expires while it waits for an admission slot gives up its place in line
// with an error classified both ErrAdmission and deadline-exceeded.
func TestAdmissionTimeoutWhileQueued(t *testing.T) {
	leakcheck.Check(t)
	db := testDB(t)
	db.admit = make(chan struct{}, 1)
	db.admit <- struct{}{} // occupy the only slot
	defer func() { <-db.admit }()

	start := time.Now()
	_, err := db.Query(apiQuery, &QueryOptions{Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("queued query with expired timeout did not fail")
	}
	if !errors.Is(err, ErrAdmission) {
		t.Errorf("not classified ErrAdmission: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline cause lost from the chain: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("queued query waited %v past its 50ms timeout", waited)
	}
}

// TestAdmissionCancelWhileQueued: cancelling the caller's context while
// queued gives up the admission wait with ErrAdmission wrapping the cancel
// cause.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	leakcheck.Check(t)
	db := testDB(t)
	db.admit = make(chan struct{}, 1)
	db.admit <- struct{}{}
	defer func() { <-db.admit }()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	_, err := db.QueryCtx(ctx, apiQuery, nil)
	if err == nil {
		t.Fatal("queued query with cancelled context did not fail")
	}
	if !errors.Is(err, ErrAdmission) {
		t.Errorf("not classified ErrAdmission: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancel cause lost from the chain: %v", err)
	}
}

// TestFaultReplayFallsBackToDynamic: a faulted memo replay must re-optimize
// through the full dynamic loop — same rows, fallback noted in the plan
// narrative — rather than fail the query.
func TestFaultReplayFallsBackToDynamic(t *testing.T) {
	leakcheck.Check(t)
	db := testDB(t)
	reg := NewFaultRegistry(47)
	db.faults = reg
	db.memo = memo.NewStore(8, memo.Options{})
	db.ctx.Catalog.SetBaseHook(db.memo.InvalidateDataset)

	// Warm the memo, then fault the replay.
	want := sortedResultRows(mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic}))
	mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic})

	reg.Arm(FaultRule{Point: "memo.replay", OneShot: true})
	res := mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic})
	if fired := reg.Fired("memo.replay"); fired != 1 {
		t.Fatalf("memo.replay fired %d times, want 1 (memo never replayed?)", fired)
	}
	if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
		t.Errorf("fallback rows diverged from baseline")
	}
	if !res.Metrics.ReplayFellBack {
		t.Error("Metrics.ReplayFellBack = false after a faulted replay")
	}
}

func mustQuery(t *testing.T, db *DB, sql string, opts *QueryOptions) *Result {
	t.Helper()
	res, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
