package dynopt

import (
	"dynopt/internal/tpcds"
	"dynopt/internal/tpch"
)

// LoadTPCH generates and loads the TPC-H table subset (lineitem, orders,
// customer, part, supplier, partsupp, nation, region) at a row-multiplier
// scale factor. Returns the lineitem row count.
func LoadTPCH(db *DB, sf int) (int64, error) {
	sz, err := tpch.Load(db.ctx, sf)
	if err != nil {
		return 0, err
	}
	return int64(sz.Lineitem), nil
}

// CreateTPCHIndexes adds the secondary indexes the paper's Figure 8
// experiments assume for TPC-H (lineitem foreign keys).
func CreateTPCHIndexes(db *DB) error { return tpch.BuildIndexes(db.ctx) }

// TPCHQ8 returns the paper's modified TPC-H query 8 (correlated predicates
// on orders).
func TPCHQ8() string { return tpch.Q8() }

// TPCHQ9 returns the paper's modified TPC-H query 9 (UDF predicates).
func TPCHQ9() string { return tpch.Q9() }

// LoadTPCDS generates and loads the TPC-DS table subset (store_sales,
// store_returns, catalog_sales, date_dim, store, item) at a row-multiplier
// scale factor. Returns the store_sales row count.
func LoadTPCDS(db *DB, sf int) (int64, error) {
	sz, err := tpcds.Load(db.ctx, sf)
	if err != nil {
		return 0, err
	}
	return int64(sz.StoreSales), nil
}

// CreateTPCDSIndexes adds the secondary indexes the paper's Figure 8
// experiments assume for TPC-DS (fact-table date keys).
func CreateTPCDSIndexes(db *DB) error { return tpcds.BuildIndexes(db.ctx) }

// TPCDSQ17 returns the paper's TPC-DS query 17 (three fact tables, three
// filtered date dimensions).
func TPCDSQ17() string { return tpcds.Q17() }

// TPCDSQ50 returns the paper's TPC-DS query 50 (parameterized date
// predicates via myrand).
func TPCDSQ50() string { return tpcds.Q50() }

// TPCDSQ17P returns the serving variant of Q17: the first date dimension's
// filter takes $moy/$year parameters, so repeated executions with rotating
// bindings share one plan-memo shape.
func TPCDSQ17P() string { return tpcds.Q17P() }

// TPCDSQ50P returns the serving variant of Q50: $moy/$year parameters in
// place of the myrand predicates.
func TPCDSQ50P() string { return tpcds.Q50P() }

// TPCHQ8P returns the serving variant of Q8: $region/$status parameters in
// place of the region-name and order-status literals.
func TPCHQ8P() string { return tpch.Q8P() }
