package dynopt

import (
	"context"
	"errors"
	"os"
	"sort"
	"sync"
	"testing"

	"dynopt/internal/faults/leakcheck"
)

// spillDB builds the standard test DB with real spilling enabled at a
// deliberately tiny budget, so every hash join overflows.
func spillDB(t *testing.T, dir string, budget int64) *DB {
	t.Helper()
	db := testDB(t)
	db.spillDir = dir
	db.ctx.Cluster.SetMemoryPerNodeBytes(budget)
	return db
}

func sortedResultRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func dirEmpty(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return // never spilled: the root was never created
		}
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("spill dir not empty: %v", names)
	}
}

// TestSpillDirAllStrategiesIdenticalResults runs every strategy with real
// spilling at a 256-byte budget — far below every join's build side, so
// every strategy spills — and checks the rows match the in-memory run
// exactly, actual spill I/O was metered, and no run files survive.
func TestSpillDirAllStrategiesIdenticalResults(t *testing.T) {
	leakcheck.Check(t)
	memDB := testDB(t)
	dir := t.TempDir()
	db := spillDB(t, dir, 256)
	for _, s := range allStrategies {
		t.Run(string(s), func(t *testing.T) {
			want, err := memDB.Query(apiQuery, &QueryOptions{Strategy: s})
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.Query(apiQuery, &QueryOptions{Strategy: s})
			if err != nil {
				t.Fatal(err)
			}
			w, g := sortedResultRows(want), sortedResultRows(got)
			if len(w) != len(g) {
				t.Fatalf("row count: spill %d, in-memory %d", len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("row %d differs: spill %s, in-memory %s", i, g[i], w[i])
				}
			}
			if got.Metrics.Counters.SpillBytes == 0 {
				t.Error("256-byte budget metered no spill I/O")
			}
			dirEmpty(t, dir)
		})
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor still holds %d bytes after all queries", used)
	}
}

// TestTPCHQ9SpillIdenticalResults is the acceptance run: TPC-H Q9 with the
// per-node budget at 1/8 of the build side's per-node bytes (lineitem, the
// largest input) completes with results identical to the in-memory run,
// meters real run-file I/O, and leaves the spill directory empty.
func TestTPCHQ9SpillIdenticalResults(t *testing.T) {
	leakcheck.Check(t)
	memDB := Open(Config{Nodes: 4, MemoryPerNodeBytes: 1 << 30})
	if _, err := LoadTPCH(memDB, 1); err != nil {
		t.Fatal(err)
	}
	want, err := memDB.Query(TPCHQ9(), nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	db := Open(Config{Nodes: 4, SpillDir: dir})
	if _, err := LoadTPCH(db, 1); err != nil {
		t.Fatal(err)
	}
	// The budget is 1/8 of the build side's per-node bytes. Lineitem only
	// ever probes in Q9 (every optimizer builds the smaller input);
	// partsupp is the largest relation that actually lands on a build side
	// (the final ⋈ ps stage), so the binding constraint is 1/8 of it.
	partsupp, ok := db.ctx.Catalog.Get("partsupp")
	if !ok {
		t.Fatal("partsupp not loaded")
	}
	budget := partsupp.ByteSize() / int64(db.Nodes()) / 8
	db.ctx.Cluster.SetMemoryPerNodeBytes(budget)

	got, err := db.Query(TPCHQ9(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w, g := sortedResultRows(want), sortedResultRows(got)
	if len(w) != len(g) {
		t.Fatalf("row count: spill %d, in-memory %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("row %d differs: spill %s, in-memory %s", i, g[i], w[i])
		}
	}
	if got.Metrics.Counters.SpillBytes == 0 || got.Metrics.Counters.SpillRows == 0 {
		t.Errorf("Q9 at 1/8 budget metered no spill: %+v", got.Metrics.Counters)
	}
	dirEmpty(t, dir)
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor still holds %d bytes after Q9", used)
	}
}

// TestFailingQueryLeavesSpillDirEmpty extends the temp-leak regression to
// disk: a query that spills in its joins and then fails in the final
// projection must leave no run files behind.
func TestFailingQueryLeavesSpillDirEmpty(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	db := spillDB(t, dir, 256)
	if err := db.RegisterUDF("boom", func(args []Value) (Value, error) {
		return Null(), errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	// Same join shape, no failure: confirm this workload really spills.
	ok, err := db.Query(`SELECT o.o_id FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Metrics.Counters.SpillBytes == 0 {
		t.Fatal("baseline query did not spill; the failing variant would not exercise cleanup")
	}
	// boom sits in the SELECT list: it fires after the joins have spilled.
	failing := `SELECT boom(o.o_id) FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id`
	if _, err := db.Query(failing, nil); err == nil {
		t.Fatal("query with failing UDF did not error")
	}
	dirEmpty(t, dir)
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("failed query left %d bytes held on the governor", used)
	}
}

// TestCancelledQueryLeavesSpillDirEmpty: cancellation mid-run releases the
// grant and sweeps the spill directory.
func TestCancelledQueryLeavesSpillDirEmpty(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	db := spillDB(t, dir, 256)
	blocked := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	if err := db.RegisterUDF("block", func(args []Value) (Value, error) {
		select {
		case <-blocked:
		default:
			close(blocked)
			cancel() // cancel while the query is mid-flight
		}
		return Bool(true), nil
	}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT o.o_id FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id AND block(i.i_id)`
	if _, err := db.QueryCtx(ctx, q, nil); err == nil {
		t.Fatal("cancelled query did not error")
	}
	dirEmpty(t, dir)
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("cancelled query left %d bytes held on the governor", used)
	}
}

// TestConcurrentSpillingQueriesClean runs a mix of succeeding and failing
// spilling queries concurrently: results stay correct and the spill root
// ends empty — the disk counterpart of the catalog temp-leak regression.
func TestConcurrentSpillingQueriesClean(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	db := spillDB(t, dir, 256)
	if err := db.RegisterUDF("boom", func(args []Value) (Value, error) {
		return Null(), errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	base, err := db.Query(apiQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(base.Rows)
	failing := `SELECT boom(o.o_id) FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id`

	var wg sync.WaitGroup
	errCh := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%3 == 0 {
				if _, err := db.Query(failing, nil); err == nil {
					errCh <- errors.New("failing query did not error")
				}
				return
			}
			res, err := db.Query(apiQuery, nil)
			if err != nil {
				errCh <- err
				return
			}
			if len(res.Rows) != wantRows {
				errCh <- errors.New("concurrent spilling query returned wrong row count")
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	dirEmpty(t, dir)
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor still holds %d bytes after the storm", used)
	}
}
