package dynopt

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var allStrategies = []Strategy{
	StrategyDynamic, StrategyCostBased, StrategyBestOrder,
	StrategyWorstOrder, StrategyPilotRun, StrategyIngres,
}

// TestConcurrentQueryIsolation issues 36 concurrent Query calls (six per
// strategy) against one DB and asserts each result's metered counters are
// identical to the same query run serially: per-query accounting must not
// observe any other query's work, and the shared catalog must not let one
// query's intermediates disturb another's planning.
func TestConcurrentQueryIsolation(t *testing.T) {
	db := testDB(t)

	baseline := map[Strategy]Snapshot{}
	baseRows := map[Strategy]int{}
	for _, s := range allStrategies {
		res, err := db.Query(apiQuery, &QueryOptions{Strategy: s})
		if err != nil {
			t.Fatalf("%s serial: %v", s, err)
		}
		baseline[s] = res.Metrics.Counters
		baseRows[s] = len(res.Rows)
	}

	const perStrategy = 6 // 6 strategies × 6 = 36 concurrent queries
	var wg sync.WaitGroup
	errCh := make(chan error, len(allStrategies)*perStrategy)
	for _, s := range allStrategies {
		for i := 0; i < perStrategy; i++ {
			wg.Add(1)
			go func(s Strategy) {
				defer wg.Done()
				res, err := db.Query(apiQuery, &QueryOptions{Strategy: s})
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", s, err)
					return
				}
				if len(res.Rows) != baseRows[s] {
					errCh <- fmt.Errorf("%s: %d rows, want %d", s, len(res.Rows), baseRows[s])
					return
				}
				if res.Metrics.Counters != baseline[s] {
					errCh <- fmt.Errorf("%s: concurrent counters diverge from serial run\n got %s\nwant %s",
						s, res.Metrics.Counters, baseline[s])
				}
			}(s)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	bases := map[string]bool{"users": true, "orders": true, "items": true}
	for _, n := range db.Datasets() {
		if !bases[n] {
			t.Errorf("leftover dataset %q after concurrent queries", n)
		}
	}
}

// TestFailingQueryLeavesDatasetsUnchanged is the temp-leak regression test:
// a query that fails after its first push-down has already materialized an
// intermediate must drop that intermediate on the way out.
func TestFailingQueryLeavesDatasetsUnchanged(t *testing.T) {
	db := testDB(t)
	if err := db.RegisterUDF("boom", func(args []Value) (Value, error) {
		return Null(), errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	before := db.Datasets()

	// Aliases push down in FROM order: u (two local predicates) materializes
	// tmp_* first, then i (complex UDF predicate) fails mid-query.
	failing := `SELECT o.o_id FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id
		AND u.u_grp = 3 AND u.u_id >= 0 AND boom(i.i_id) = 1`
	if _, err := db.Query(failing, nil); err == nil {
		t.Fatal("query with failing UDF did not error")
	}

	if after := db.Datasets(); !reflect.DeepEqual(before, after) {
		t.Errorf("failing query changed catalog: before %v, after %v", before, after)
	}

	// The DB still serves queries normally afterwards.
	if _, err := db.Query(apiQuery, nil); err != nil {
		t.Fatalf("query after failed query: %v", err)
	}
}

// TestConcurrentFailingQueries interleaves failing and succeeding queries
// and checks the catalog holds exactly the base datasets at the end.
func TestConcurrentFailingQueries(t *testing.T) {
	db := testDB(t)
	calls := new(atomic.Int64)
	if err := db.RegisterUDF("flaky", func(args []Value) (Value, error) {
		if calls.Add(1)%3 == 0 {
			return Null(), errors.New("flaky failure")
		}
		return Int(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	failing := `SELECT o.o_id FROM orders o, users u, items i
		WHERE o.o_user = u.u_id AND o.o_item = i.i_id
		AND u.u_grp = 3 AND u.u_id >= 0 AND flaky(i.i_id) = 1`
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				db.Query(failing, nil) // may fail; must not leak either way
			} else {
				if _, err := db.Query(apiQuery, nil); err != nil {
					t.Errorf("clean query failed: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if names := db.Datasets(); len(names) != 3 {
		t.Errorf("datasets after mixed workload = %v, want the 3 base datasets", names)
	}
}

// TestQueryCtxCancel covers the cancellation paths: an already-cancelled
// context fails fast, and cancellation mid-wait releases an admission slot.
func TestQueryCtxCancel(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, apiQuery, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled QueryCtx error = %v, want context.Canceled", err)
	}
	// Uncancelled contexts work as Query does.
	res, err := db.QueryCtx(context.Background(), apiQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3000/8 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

// TestQueryCtxCancelWhileWaitingForAdmission holds the only admission slot
// with a long query and cancels a second query stuck in line.
func TestQueryCtxCancelWhileWaitingForAdmission(t *testing.T) {
	db := Open(Config{Nodes: 2, MaxConcurrentQueries: 1})
	rows := make([]Tuple, 200)
	for i := range rows {
		rows[i] = Tuple{Int(int64(i)), Int(int64(i % 10))}
	}
	if err := db.CreateDataset("t", NewSchema(F("a", KindInt), F("b", KindInt)), []string{"a"}, rows); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	if err := db.RegisterUDF("slow", func(args []Value) (Value, error) {
		once.Do(func() { close(entered); <-release })
		return Int(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(`SELECT t.a FROM t t WHERE slow(t.a) = 1`, nil)
		done <- err
	}()
	<-entered // slot is held

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := db.QueryCtx(ctx, `SELECT t.a FROM t t`, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("waiting QueryCtx error = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}
}

// TestMaxConcurrentQueries proves admission control: with a cap of 2, no
// more than two queries are ever executing simultaneously.
func TestMaxConcurrentQueries(t *testing.T) {
	db := Open(Config{Nodes: 2, MaxConcurrentQueries: 2})
	rows := make([]Tuple, 64)
	for i := range rows {
		rows[i] = Tuple{Int(int64(i)), Int(int64(i % 4))}
	}
	if err := db.CreateDataset("t", NewSchema(F("a", KindInt), F("b", KindInt)), []string{"a"}, rows); err != nil {
		t.Fatal(err)
	}
	var inFlight, maxSeen atomic.Int64
	if err := db.RegisterUDF("probe", func(args []Value) (Value, error) {
		n := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return Int(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Query(`SELECT t.a FROM t t WHERE probe(t.b) = 1 AND t.a >= 0`, nil); err != nil {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()
	// The UDF runs on one goroutine per partition, so each admitted query
	// contributes up to Nodes() concurrent evaluations.
	if limit := int64(2 * db.Nodes()); maxSeen.Load() > limit {
		t.Errorf("observed %d concurrent UDF evaluations, admission cap allows at most %d", maxSeen.Load(), limit)
	}
}

// TestSetParamConcurrentWithQueries hammers SetParam while parameterized
// queries execute; meaningful under -race.
func TestSetParamConcurrentWithQueries(t *testing.T) {
	db := testDB(t)
	db.SetParam("g", Int(3))
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				db.SetParam("g", Int(int64(i%8)))
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := db.Query(`SELECT u.u_id FROM users u WHERE u.u_grp = $g AND u.u_id >= 0`, nil); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
}
