// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus micro-benchmarks for the substrate hot paths. Figure/Table benches
// run at scale factor 1 so `go test -bench=.` completes quickly; the
// full-scale sweeps (SF 1/5/25 standing in for 10/100/1000 GB) are produced
// by `go run ./cmd/joinbench -all`.
package dynopt

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"dynopt/internal/bench"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/sketch"
	"dynopt/internal/sqlpp"
	"dynopt/internal/types"
)

const (
	benchSF    = 1
	benchNodes = 4
)

// BenchmarkFigure6Overhead regenerates Figure 6 (left): the overhead of
// re-optimization points and online statistics collection.
func BenchmarkFigure6Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6Overhead([]int{benchSF}, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure6Pushdown regenerates Figure 6 (right): the predicate
// push-down overhead vs the exact-statistics baseline.
func BenchmarkFigure6Pushdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6Pushdown([]int{benchSF}, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchFigure7Query benchmarks one query column of Figure 7 (all six
// strategies).
func benchFigure7Query(b *testing.B, name string, indexes bool) {
	env, err := bench.NewEnv(benchSF, benchNodes, indexes)
	if err != nil {
		b.Fatal(err)
	}
	var q bench.Query
	for _, cand := range bench.Queries() {
		if cand.Name == name {
			q = cand
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range env.Strategies() {
			if _, err := env.RunOne(s, q.SQL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7Q17 regenerates the Q17 group of Figure 7.
func BenchmarkFigure7Q17(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q17", false) }

// BenchmarkFigure7Q50 regenerates the Q50 group of Figure 7.
func BenchmarkFigure7Q50(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q50", false) }

// BenchmarkFigure7Q8 regenerates the Q8 group of Figure 7.
func BenchmarkFigure7Q8(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q8", false) }

// BenchmarkFigure7Q9 regenerates the Q9 group of Figure 7.
func BenchmarkFigure7Q9(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q9", false) }

// BenchmarkFigure8Q17 regenerates the Q17 group of Figure 8 (INLJ enabled).
func BenchmarkFigure8Q17(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q17", true) }

// BenchmarkFigure8Q50 regenerates the Q50 group of Figure 8.
func BenchmarkFigure8Q50(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q50", true) }

// BenchmarkFigure8Q8 regenerates the Q8 group of Figure 8.
func BenchmarkFigure8Q8(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q8", true) }

// BenchmarkFigure8Q9 regenerates the Q9 group of Figure 8.
func BenchmarkFigure8Q9(b *testing.B) { b.ReportAllocs(); benchFigure7Query(b, "Q9", true) }

// BenchmarkTable1 regenerates Table 1 (average improvement ratios) from a
// Figure 7 sweep.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7([]int{benchSF}, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
		t1 := bench.Table1(rows)
		if len(t1) != 1 {
			b.Fatalf("table rows = %d", len(t1))
		}
	}
}

// BenchmarkAblationBroadcastThreshold sweeps the broadcast budget — the
// ablation for the paper's claim that post-predicate broadcast decisions
// drive much of the improvement.
func BenchmarkAblationBroadcastThreshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationBroadcastThreshold(benchSF, benchNodes,
			[]int64{0, 128 << 10, 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkGKInsert measures quantile-sketch insertion (the ingestion-time
// statistics path).
func BenchmarkGKInsert(b *testing.B) {
	g := sketch.NewGK(0.005)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Insert(float64(i % 100000))
	}
}

// BenchmarkHLLAdd measures distinct-sketch insertion.
func BenchmarkHLLAdd(b *testing.B) {
	h := sketch.NewHLL(sketch.DefaultHLLPrecision)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// BenchmarkValueHash measures the tuple-key hash used by every exchange and
// hash table.
func BenchmarkValueHash(b *testing.B) {
	t := types.Tuple{types.Int(42), types.Str("composite"), types.Int(7)}
	keys := []int{0, 1, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.HashKeys(keys)
	}
}

func benchEngineCtx(b *testing.B, rows int) *engine.Context {
	b.Helper()
	ctx, err := bench.NewMicroCtx(rows, benchNodes)
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

// BenchmarkHashJoin measures the repartitioning hash join end to end.
func BenchmarkHashJoin(b *testing.B) {
	for _, rows := range []int{10000, 50000} {
		b.Run(strconv.Itoa(rows), func(b *testing.B) {
			ctx := benchEngineCtx(b, rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fact, _ := engine.ScanByName(ctx, "fact", "f", nil, nil)
				dim, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
				out, err := engine.HashJoin(ctx, fact, dim, []string{"f.fk"}, []string{"d.id"}, false)
				if err != nil {
					b.Fatal(err)
				}
				if out.RowCount() != int64(rows) {
					b.Fatalf("rows = %d", out.RowCount())
				}
			}
		})
	}
}

// BenchmarkBroadcastJoin measures the broadcast join end to end.
func BenchmarkBroadcastJoin(b *testing.B) {
	ctx := benchEngineCtx(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact, _ := engine.ScanByName(ctx, "fact", "f", nil, nil)
		dim, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
		out, err := engine.BroadcastJoin(ctx, fact, dim, []string{"f.fk"}, []string{"d.id"}, false)
		if err != nil {
			b.Fatal(err)
		}
		if out.RowCount() != 50000 {
			b.Fatalf("rows = %d", out.RowCount())
		}
	}
}

// BenchmarkIndexNLJoin measures the indexed nested-loop join end to end.
func BenchmarkIndexNLJoin(b *testing.B) {
	ctx := benchEngineCtx(b, 50000)
	ds, _ := ctx.Catalog.Get("fact")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dim, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
		out, err := engine.IndexNLJoin(ctx, dim, ds, "f", []string{"d.id"}, []string{"fk"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out.RowCount() != 50000 {
			b.Fatalf("rows = %d", out.RowCount())
		}
	}
}

// BenchmarkRepartition measures the hash-exchange (shuffle) path in
// isolation: the fact table is partitioned on id and exchanged onto fk, so
// every row is hashed and ~(n-1)/n of them move.
func BenchmarkRepartition(b *testing.B) {
	ctx := benchEngineCtx(b, 50000)
	fact, err := engine.ScanByName(ctx, "fact", "f", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.Repartition(ctx, fact, []string{"f.fk"})
		if err != nil {
			b.Fatal(err)
		}
		if out.RowCount() != 50000 {
			b.Fatalf("rows = %d", out.RowCount())
		}
	}
}

// BenchmarkDynamicEndToEnd measures a full Algorithm 1 run on TPC-H Q9.
func BenchmarkDynamicEndToEnd(b *testing.B) {
	env, err := bench.NewEnv(benchSF, benchNodes, false)
	if err != nil {
		b.Fatal(err)
	}
	var q9 bench.Query
	for _, q := range bench.Queries() {
		if q.Name == "Q9" {
			q9 = q
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunOne(core.NewDynamic(), q9.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures the SQL++ front end on the biggest workload query.
func BenchmarkParse(b *testing.B) {
	sql := TPCDSQ17()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlpp.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentQueries measures serving throughput (queries/sec) at
// 1, 4, and 16 concurrent clients issuing a mixed-strategy workload against
// one DB — the per-query execution scope is what makes this sound.
func BenchmarkConcurrentQueries(b *testing.B) {
	b.ReportAllocs()
	mixed := []Strategy{StrategyDynamic, StrategyCostBased, StrategyWorstOrder, StrategyIngres}
	for _, clients := range []int{1, 4, 16} {
		b.Run(strconv.Itoa(clients)+"-clients", func(b *testing.B) {
			db := Open(Config{Nodes: benchNodes})
			if _, err := LoadTPCDS(db, benchSF); err != nil {
				b.Fatal(err)
			}
			sql := TPCDSQ17()
			var seq atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			work := make(chan int)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						s := mixed[int(seq.Add(1))%len(mixed)]
						if _, err := db.Query(sql, &QueryOptions{Strategy: s}); err != nil {
							// Keep draining so the feeding loop never blocks
							// on a channel nobody receives from.
							b.Error(err)
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				work <- i
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}
