package dynopt

import (
	"fmt"
	"reflect"
	"testing"

	"dynopt/internal/bench"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
)

// TestStreamingMatchesBatchAllStrategies is the pipeline equivalence
// property over the full evaluation grid: every strategy of §7.2 on every
// Figure-7 query (with and without secondary indexes, so the INLJ plans of
// Figure 8 are covered too) must produce byte-identical result rows and
// byte-identical Metrics.Counters whether stages execute as chunked
// streaming pipelines (the default) or as the whole-relation batch
// reference. This is what lets TestCountersGolden keep pinning one golden
// file for both worlds.
func TestStreamingMatchesBatchAllStrategies(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		env, err := bench.NewEnv(1, 4, indexed)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range bench.Queries() {
			for si := range env.Strategies() {
				name := fmt.Sprintf("indexed=%v/%s/%s", indexed, q.Name, env.Strategies()[si].Name())
				t.Run(name, func(t *testing.T) {
					type run struct {
						res  *engine.Result
						snap cluster.Snapshot
					}
					exec := func(batch bool) run {
						env.Batch = batch
						// Strategies carry per-run state (pilot registries);
						// build a fresh one per execution.
						s := env.Strategies()[si]
						res, rep, err := env.RunOneResult(s, q.SQL)
						if err != nil {
							t.Fatalf("batch=%v: %v", batch, err)
						}
						return run{res: res, snap: rep.Counters}
					}
					b, s := exec(true), exec(false)
					if !reflect.DeepEqual(b.snap, s.snap) {
						t.Errorf("counters diverged\nbatch:  %+v\nstream: %+v", b.snap, s.snap)
					}
					compareResults(t, b.res, s.res)
				})
			}
		}
	}
}

func compareResults(t *testing.T, b, s *engine.Result) {
	t.Helper()
	if !reflect.DeepEqual(b.Columns, s.Columns) {
		t.Fatalf("columns diverged: %v vs %v", b.Columns, s.Columns)
	}
	if len(b.Rows) != len(s.Rows) {
		t.Fatalf("row count diverged: batch %d, stream %d", len(b.Rows), len(s.Rows))
	}
	for i := range b.Rows {
		if fmt.Sprint(b.Rows[i]) != fmt.Sprint(s.Rows[i]) {
			t.Fatalf("row %d diverged:\nbatch:  %v\nstream: %v", i, b.Rows[i], s.Rows[i])
		}
	}
}

// TestStreamingMatchesBatchReports spot-checks that the dynamic strategy's
// reported stage plans — which embed row counts flowing out of each
// materialized stage — agree across modes, pinning that the fused Sink
// lands exactly the rows the batch Sink did.
func TestStreamingMatchesBatchReports(t *testing.T) {
	env, err := bench.NewEnv(1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range bench.Queries() {
		var plans [2][]string
		for i, batch := range []bool{true, false} {
			env.Batch = batch
			rep, err := env.RunOne(core.NewDynamic(), q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			plans[i] = rep.StagePlans
		}
		if !reflect.DeepEqual(plans[0], plans[1]) {
			t.Errorf("%s: stage plans diverged\nbatch:  %v\nstream: %v", q.Name, plans[0], plans[1])
		}
	}
}
