module dynopt

go 1.24
