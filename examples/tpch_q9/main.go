// TPC-H Q9: the paper's UDF-predicate case. myyear() and mysub() are opaque
// to static selectivity estimation, so the cost-based baseline falls back to
// Selinger defaults while the dynamic strategy executes those predicates
// first and plans from measured sizes. This example races all six
// strategies on the same data and prints the shape the paper reports.
package main

import (
	"fmt"
	"log"

	"dynopt"
)

func main() {
	const sf = 2
	strategies := []dynopt.Strategy{
		dynopt.StrategyDynamic,
		dynopt.StrategyCostBased,
		dynopt.StrategyBestOrder,
		dynopt.StrategyWorstOrder,
		dynopt.StrategyPilotRun,
		dynopt.StrategyIngres,
	}

	fmt.Printf("TPC-H Q9 at scale factor %d (each strategy gets a fresh database)\n\n", sf)
	fmt.Printf("%-12s %10s %8s %9s  %s\n", "strategy", "sim(s)", "rows", "reopts", "plan")
	var dynSim float64
	sims := map[dynopt.Strategy]float64{}
	for _, s := range strategies {
		db := dynopt.Open(dynopt.Config{Nodes: 10})
		if _, err := dynopt.LoadTPCH(db, sf); err != nil {
			log.Fatal(err)
		}
		res, err := db.Query(dynopt.TPCHQ9(), &dynopt.QueryOptions{Strategy: s})
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		m := res.Metrics
		sims[s] = m.SimSeconds
		if s == dynopt.StrategyDynamic {
			dynSim = m.SimSeconds
		}
		fmt.Printf("%-12s %10.2f %8d %9d  %s\n", m.Strategy, m.SimSeconds, len(res.Rows), m.Reopts, m.Plan)
	}

	fmt.Println("\nrelative to dynamic:")
	for _, s := range strategies {
		if s == dynopt.StrategyDynamic {
			continue
		}
		fmt.Printf("  %-12s %.2fx\n", s, sims[s]/dynSim)
	}
}
