// TPC-DS Q17: three fact tables chained on composite non-PK/FK keys with
// three filtered date dimensions. This example shows the Figure 7 → Figure 8
// transition: the same query re-optimized once secondary indexes exist and
// the indexed nested-loop join is enabled.
package main

import (
	"fmt"
	"log"

	"dynopt"
)

func run(enableINLJ bool) {
	db := dynopt.Open(dynopt.Config{Nodes: 10, EnableINLJ: enableINLJ})
	if _, err := dynopt.LoadTPCDS(db, 2); err != nil {
		log.Fatal(err)
	}
	if enableINLJ {
		if err := dynopt.CreateTPCDSIndexes(db); err != nil {
			log.Fatal(err)
		}
	}
	res, err := db.Query(dynopt.TPCDSQ17(), nil)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	mode := "hash+broadcast only (Figure 7 setting)"
	if enableINLJ {
		mode = "with secondary indexes + INLJ (Figure 8 setting)"
	}
	fmt.Printf("== %s ==\n", mode)
	fmt.Printf("plan:       %s\n", m.Plan)
	fmt.Printf("rows:       %d (LIMIT 100)\n", len(res.Rows))
	fmt.Printf("sim time:   %.2fs  (reopts=%d pushdowns=%d)\n", m.SimSeconds, m.Reopts, m.PushDowns)
	fmt.Printf("index work: %d lookups, %d rows fetched\n", m.Counters.IndexLookups, m.Counters.IndexRows)
	fmt.Println()
}

func main() {
	fmt.Println("TPC-DS Q17 under runtime dynamic optimization, scale factor 2")
	fmt.Println()
	run(false)
	run(true)
}
