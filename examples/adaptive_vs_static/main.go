// adaptive_vs_static reproduces the paper's motivating scenario with a
// custom workload and a user-registered UDF: two correlated predicates plus
// an opaque UDF filter make static cardinality estimation collapse, and the
// resulting static plan diverges from the one the dynamic optimizer finds
// after executing the predicates.
package main

import (
	"fmt"
	"log"
	"strings"

	"dynopt"
)

func build() *dynopt.DB {
	db := dynopt.Open(dynopt.Config{Nodes: 8})

	// events: the fact table (120k rows).
	events := make([]dynopt.Tuple, 120000)
	for i := range events {
		events[i] = dynopt.Tuple{
			dynopt.Int(int64(i)),
			dynopt.Int(int64(i % 2000)), // device
			dynopt.Int(int64(i % 365)),  // day
			dynopt.Int(int64(i % 97)),   // sensor reading
		}
	}
	must(db.CreateDataset("events", dynopt.NewSchema(
		dynopt.F("e_id", dynopt.KindInt),
		dynopt.F("e_device", dynopt.KindInt),
		dynopt.F("e_day", dynopt.KindInt),
		dynopt.F("e_val", dynopt.KindInt),
	), []string{"e_id"}, events))

	// devices: model and firmware are perfectly correlated — model K always
	// ships firmware K. Static optimizers assume independence and estimate
	// sel(model=7 AND firmware=7) = (1/20)² = 0.25%; the truth is 5%.
	devices := make([]dynopt.Tuple, 2000)
	for i := range devices {
		devices[i] = dynopt.Tuple{
			dynopt.Int(int64(i)),
			dynopt.Int(int64(i % 20)), // model
			dynopt.Int(int64(i % 20)), // firmware (== model)
			dynopt.Str(fmt.Sprintf("serial-%06d", i)),
		}
	}
	must(db.CreateDataset("devices", dynopt.NewSchema(
		dynopt.F("d_id", dynopt.KindInt),
		dynopt.F("d_model", dynopt.KindInt),
		dynopt.F("d_fw", dynopt.KindInt),
		dynopt.F("d_serial", dynopt.KindString),
	), []string{"d_id"}, devices))

	// calendar: filtered by a user-defined function no optimizer can see
	// through.
	days := make([]dynopt.Tuple, 365)
	for i := range days {
		days[i] = dynopt.Tuple{dynopt.Int(int64(i)), dynopt.Int(int64(i / 7))}
	}
	must(db.CreateDataset("calendar", dynopt.NewSchema(
		dynopt.F("cal_day", dynopt.KindInt),
		dynopt.F("cal_week", dynopt.KindInt),
	), []string{"cal_day"}, days))

	// is_maintenance_window(day): true for 3 specific weeks of the year.
	must(db.RegisterUDF("is_maintenance_window", func(args []dynopt.Value) (dynopt.Value, error) {
		w := args[0].I() / 7
		return dynopt.Bool(w == 10 || w == 30 || w == 45), nil
	}))
	return db
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

const query = `
SELECT e.e_id, d.d_serial
FROM events e, devices d, calendar c
WHERE e.e_device = d.d_id
  AND e.e_day = c.cal_day
  AND d.d_model = 7 AND d.d_fw = 7
  AND is_maintenance_window(c.cal_day) = TRUE`

func main() {
	fmt.Println("Correlated predicates + UDF filter: static vs runtime dynamic optimization")
	fmt.Println(strings.TrimSpace(query))
	fmt.Println()

	for _, s := range []dynopt.Strategy{dynopt.StrategyCostBased, dynopt.StrategyDynamic} {
		db := build()
		res, err := db.Query(query, &dynopt.QueryOptions{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("— %s\n", m.Strategy)
		fmt.Printf("  plan: %s\n", m.Plan)
		fmt.Printf("  rows=%d  sim=%.2fs  shuffled=%d B  broadcast=%d B\n",
			len(res.Rows), m.SimSeconds, m.Counters.ShuffleBytes, m.Counters.BroadcastBytes)
		for _, st := range m.Stages {
			fmt.Printf("    · %s\n", st)
		}
		fmt.Println()
	}
	fmt.Println("The dynamic run executes the correlated device filter and the UDF")
	fmt.Println("calendar filter first, measures their true sizes, and only then")
	fmt.Println("commits to a join order — the static plan had to guess.")
}
