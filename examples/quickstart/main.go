// Quickstart: build a small database, run a multi-join query under the
// paper's runtime dynamic optimization, and inspect what the optimizer did.
package main

import (
	"fmt"
	"log"

	"dynopt"
)

func main() {
	// A simulated 4-node shared-nothing cluster.
	db := dynopt.Open(dynopt.Config{Nodes: 4})

	// Three datasets: a fact table and two dimensions.
	customers := make([]dynopt.Tuple, 500)
	for i := range customers {
		customers[i] = dynopt.Tuple{
			dynopt.Int(int64(i)),
			dynopt.Str(fmt.Sprintf("customer-%03d", i)),
			dynopt.Int(int64(i % 10)), // region
		}
	}
	if err := db.CreateDataset("customers", dynopt.NewSchema(
		dynopt.F("c_id", dynopt.KindInt),
		dynopt.F("c_name", dynopt.KindString),
		dynopt.F("c_region", dynopt.KindInt),
	), []string{"c_id"}, customers); err != nil {
		log.Fatal(err)
	}

	products := make([]dynopt.Tuple, 100)
	for i := range products {
		products[i] = dynopt.Tuple{
			dynopt.Int(int64(i)),
			dynopt.Str(fmt.Sprintf("product-%02d", i)),
			dynopt.Float(float64(5 + i%50)),
		}
	}
	if err := db.CreateDataset("products", dynopt.NewSchema(
		dynopt.F("p_id", dynopt.KindInt),
		dynopt.F("p_name", dynopt.KindString),
		dynopt.F("p_price", dynopt.KindFloat),
	), []string{"p_id"}, products); err != nil {
		log.Fatal(err)
	}

	sales := make([]dynopt.Tuple, 20000)
	for i := range sales {
		sales[i] = dynopt.Tuple{
			dynopt.Int(int64(i)),
			dynopt.Int(int64(i % 500)), // customer
			dynopt.Int(int64(i % 100)), // product
			dynopt.Int(int64(1 + i%7)),
		}
	}
	if err := db.CreateDataset("sales", dynopt.NewSchema(
		dynopt.F("s_id", dynopt.KindInt),
		dynopt.F("s_cust", dynopt.KindInt),
		dynopt.F("s_prod", dynopt.KindInt),
		dynopt.F("s_qty", dynopt.KindInt),
	), []string{"s_id"}, sales); err != nil {
		log.Fatal(err)
	}

	// A three-way join with two correlated predicates on customers: a
	// static optimizer would multiply their selectivities (independence)
	// and underestimate; the dynamic optimizer executes them first and
	// plans from measured cardinality.
	res, err := db.Query(`
		SELECT c.c_name, p.p_name, s.s_qty
		FROM sales s, customers c, products p
		WHERE s.s_cust = c.c_id
		  AND s.s_prod = p.p_id
		  AND c.c_region = 3
		  AND c.c_id >= 100
		ORDER BY c.c_name LIMIT 5`, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
	m := res.Metrics
	fmt.Printf("\nstrategy:    %s\n", m.Strategy)
	fmt.Printf("plan:        %s\n", m.Plan)
	fmt.Printf("push-downs:  %d (predicates executed before planning)\n", m.PushDowns)
	fmt.Printf("re-opt pts:  %d (blocking materialization points)\n", m.Reopts)
	fmt.Printf("sim time:    %.3fs on the simulated cluster\n", m.SimSeconds)
	fmt.Printf("wall time:   %.1fms on this machine\n", m.WallSeconds*1000)
	fmt.Printf("work:        %s\n", m.Counters)
	fmt.Println("\nstages:")
	for _, s := range m.Stages {
		fmt.Println("  ·", s)
	}
}
