// Command explain prints the plan every optimizer strategy chooses for one
// of the paper's evaluation queries — the appendix Figures 11–23 equivalent:
//
//	explain -query q17 -sf 5
//	explain -query q9 -sf 5 -indexes     (Figure 8 setting: INLJ enabled)
//	explain -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynopt/internal/bench"
)

func main() {
	query := flag.String("query", "", "query to explain: q17, q50, q8, q9")
	sf := flag.Int("sf", 5, "scale factor")
	nodes := flag.Int("nodes", 10, "simulated cluster nodes")
	indexes := flag.Bool("indexes", false, "build secondary indexes and enable INLJ (Figure 8 setting)")
	all := flag.Bool("all", false, "explain every query")
	flag.Parse()

	env, err := bench.NewEnv(*sf, *nodes, *indexes)
	if err != nil {
		fatal(err)
	}
	var targets []bench.Query
	for _, q := range bench.Queries() {
		if *all || strings.EqualFold(q.Name, *query) {
			targets = append(targets, q)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "explain: pick -query q17|q50|q8|q9 or -all")
		os.Exit(2)
	}
	for _, q := range targets {
		fmt.Printf("=== %s (sf %d, %d nodes, indexes=%v) ===\n", q.Name, *sf, *nodes, *indexes)
		for _, s := range env.Strategies() {
			rep, err := env.RunOne(s, q.SQL)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", q.Name, s.Name(), err))
			}
			fmt.Printf("\n-- %s  (sim %.2fs, %d rows, %d reopts, %d pushdowns)\n",
				s.Name(), rep.SimSeconds, rep.Rows, rep.Reopts, rep.PushDowns)
			fmt.Printf("   %s\n", rep.Compact())
			if rep.Tree != nil {
				for _, line := range strings.Split(strings.TrimRight(rep.Tree.Tree(), "\n"), "\n") {
					fmt.Printf("   %s\n", line)
				}
			}
			for _, stage := range rep.StagePlans {
				fmt.Printf("   · %s\n", stage)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explain:", err)
	os.Exit(1)
}
