// Command joinbench regenerates the paper's evaluation artifacts:
//
//	joinbench -fig 6            Figure 6 (overhead decomposition, both halves)
//	joinbench -fig 7            Figure 7 (six strategies, hash+broadcast)
//	joinbench -fig 8            Figure 8 (with secondary indexes + INLJ)
//	joinbench -table 1          Table 1 (average improvement ratios)
//	joinbench -joinjson FILE    join micro-benchmark snapshot (ns/op,
//	                            allocs/op for repartition/hash/broadcast/INLJ)
//	joinbench -spilljson FILE   memory-governed join sweep: per-node budget
//	                            from ample down to 1/8 of the build side,
//	                            real disk spilling, invariants checked
//	joinbench -pipejson FILE    streaming-pipeline comparison: Figure-7
//	                            queries end-to-end in batch vs chunked
//	                            streaming mode, rows+counters equality
//	                            checked, wall-clock and alloc medians
//	joinbench -servejson FILE   plan-memo serving bench: repeated
//	                            parameterized shapes with rotating bindings,
//	                            cold (dynamic loop) vs hot (memo replay)
//	                            queries/sec, hit-rate and row equality
//	                            checked
//	joinbench -vecjson FILE     vectorization snapshot: scalar-vs-vector
//	                            predicate and hash micros plus the Figure-7
//	                            queries streamed with column-major execution
//	                            off and on, rows+counters equality checked
//	joinbench -storagejson FILE disk-native storage sweep: cold-vs-warm
//	                            paged scans through the byte-budgeted page
//	                            cache, zone-map pruning on a selective
//	                            filter (>=50% of pages skipped, checked),
//	                            and the access-path pick priced against
//	                            its forced alternative (>=2x, checked)
//	joinbench -all              everything
//
// Flags -sf (comma-separated scale factors, default 1,5,25 standing in for
// the paper's 10/100/1000 GB) and -nodes (default 10, the paper's cluster
// size) control the setup. -cpuprofile/-memprofile write pprof profiles so
// pipeline regressions are diagnosable straight from the bench harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dynopt/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (6, 7, or 8)")
	table := flag.Int("table", 0, "table to regenerate (1)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	ablation := flag.Bool("ablation", false, "broadcast-threshold ablation sweep")
	joinJSON := flag.String("joinjson", "", "write a join micro-benchmark snapshot (ns/op, allocs/op) to this file")
	spillJSON := flag.String("spilljson", "", "write a memory-budget spill sweep snapshot to this file")
	pipeJSON := flag.String("pipejson", "", "write a streaming-vs-batch pipeline comparison snapshot to this file")
	serveJSON := flag.String("servejson", "", "write a cold-vs-hot plan-memo serving snapshot to this file")
	vecJSON := flag.String("vecjson", "", "write a scalar-vs-vector execution snapshot to this file")
	storageJSON := flag.String("storagejson", "", "write a disk-native storage sweep snapshot to this file")
	pipeRuns := flag.Int("runs", 5, "runs per mode for the -pipejson and -servejson medians")
	joinRows := flag.Int("joinrows", 50000, "fact rows for the -joinjson and -spilljson benchmarks")
	sfFlag := flag.String("sf", "1,5,25", "comma-separated scale factors")
	nodes := flag.Int("nodes", 10, "simulated cluster nodes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() exits without unwinding, so flushing is registered with it
		// too: a failing bench still leaves a usable CPU profile behind.
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopCPUProfile = nil
		}
		defer func() { flushProfiles(*memProfile) }()
	} else if *memProfile != "" {
		defer func() { flushProfiles(*memProfile) }()
	}

	sfs, err := parseSFs(*sfFlag)
	if err != nil {
		fatal(err)
	}
	ran := false
	if *all || *fig == 6 {
		ran = true
		runFigure6(sfs, *nodes)
	}
	if *all || *fig == 7 {
		ran = true
		rows := runFigure7(sfs, *nodes)
		if *all || *table == 1 {
			fmt.Println("== Table 1: average improvement of dynamic vs baselines (ratio of baseline sim time to dynamic's) ==")
			fmt.Println(bench.FormatTable1(bench.Table1(rows)))
		}
	} else if *table == 1 {
		ran = true
		rows := runFigure7(sfs, *nodes)
		fmt.Println("== Table 1: average improvement of dynamic vs baselines ==")
		fmt.Println(bench.FormatTable1(bench.Table1(rows)))
	}
	if *all || *fig == 8 {
		ran = true
		runFigure8(sfs, *nodes)
	}
	if *all || *ablation {
		ran = true
		fmt.Println("== Ablation: broadcast threshold sweep (dynamic strategy) ==")
		rows, err := bench.AblationBroadcastThreshold(sfs[0], *nodes,
			[]int64{0, 16 << 10, 128 << 10, 1 << 20, 8 << 20})
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatAblation(rows))
	}
	if *joinJSON != "" {
		ran = true
		fmt.Printf("== Join micro-benchmarks (%d fact rows, %d nodes) -> %s ==\n",
			*joinRows, *nodes, *joinJSON)
		res, err := bench.WriteJoinMicrosJSON(*joinJSON, *joinRows, *nodes)
		if err != nil {
			fatal(err)
		}
		for _, r := range res {
			fmt.Printf("  %-14s %12.0f ns/op %8d allocs/op %10d B/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if *spillJSON != "" {
		ran = true
		fmt.Printf("== Memory-governed join sweep (%d fact rows, %d nodes) -> %s ==\n",
			*joinRows, *nodes, *spillJSON)
		pts, err := bench.WriteSpillJSON(*spillJSON, *joinRows, *nodes)
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("  %-6s budget %8d B/node  spill %9d B %7d rows  peak %8d/%8d B  sim %7.3fs wall %6.3fs\n",
				p.Name, p.BudgetBytes, p.SpillBytes, p.SpillRows,
				p.PeakGrantBytes, p.GrantCapacity, p.SimSeconds, p.WallSeconds)
		}
	}
	if *pipeJSON != "" {
		ran = true
		fmt.Printf("== Streaming pipeline vs batch (sf %d, %d nodes, %d runs) -> %s ==\n",
			sfs[0], *nodes, *pipeRuns, *pipeJSON)
		pts, err := bench.WritePipelineJSON(*pipeJSON, sfs[0], *nodes, *pipeRuns)
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("  %-4s batch %8.2f ms  stream %8.2f ms  %+6.1f%%   alloc %10d -> %10d B (%+.1f%%)\n",
				p.Query, p.BatchMedianMs, p.StreamMedianMs, p.ImprovementPct,
				p.BatchAllocBytes, p.StreamAllocBytes, p.AllocSavedPct)
		}
	}
	if *serveJSON != "" {
		ran = true
		fmt.Printf("== Plan-memo serving bench (sf %d, %d nodes, %d runs) -> %s ==\n",
			sfs[0], *nodes, *pipeRuns, *serveJSON)
		pts, err := bench.WriteServeJSON(*serveJSON, sfs[0], *nodes, *pipeRuns)
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("  %-5s %2d bindings  cold %7.1f q/s  hot %7.1f q/s  %+6.1f%%  hit %.0f%%  fallbacks %d\n",
				p.Query, p.Bindings, p.ColdQPS, p.HotQPS, p.SpeedupPct, 100*p.HitRate, p.Fallbacks)
		}
	}
	if *vecJSON != "" {
		ran = true
		fmt.Printf("== Vectorized execution vs scalar (sf %d, %d nodes, %d runs) -> %s ==\n",
			sfs[0], *nodes, *pipeRuns, *vecJSON)
		rep, err := bench.WriteVectorJSON(*vecJSON, sfs[0], *nodes, *pipeRuns)
		if err != nil {
			fatal(err)
		}
		for _, m := range rep.FilterMicros {
			fmt.Printf("  filter %-14s sel %4.0f%%  scalar %6.2f ns/row  vector %6.2f ns/row  %5.2fx\n",
				m.Name, 100*m.Selectivity, m.ScalarNsPerRow, m.VectorNsPerRow, m.Speedup)
		}
		for _, m := range rep.HashMicros {
			fmt.Printf("  %-21s row %6.2f ns/row  columnar %6.2f ns/row  %5.2fx\n",
				m.Name, m.ScalarNsPerRow, m.VectorNsPerRow, m.Speedup)
		}
		for _, p := range rep.E2E {
			fmt.Printf("  %-4s scalar %8.2f ms  vector %8.2f ms  %+6.1f%%   alloc %10d -> %10d B\n",
				p.Query, p.ScalarMedianMs, p.VectorMedianMs, p.ImprovementPct,
				p.ScalarAllocBytes, p.VectorAllocBytes)
		}
	}
	if *storageJSON != "" {
		ran = true
		fmt.Printf("== Disk-native storage sweep (%d fact rows, %d nodes) -> %s ==\n",
			*joinRows, *nodes, *storageJSON)
		snap, err := bench.WriteStorageJSON(*storageJSON, *joinRows, *nodes, 64)
		if err != nil {
			fatal(err)
		}
		for _, s := range snap.Scans {
			fmt.Printf("  scan cache %-5s %8d B %5d pages  cold %5d miss %5d hit %6.3fs  warm %5d miss %5d hit %6.3fs\n",
				s.Name, s.CacheBytes, s.Pages, s.Cold.CacheMisses, s.Cold.CacheHits, s.Cold.WallSeconds,
				s.Warm.CacheMisses, s.Warm.CacheHits, s.Warm.WallSeconds)
		}
		fmt.Printf("  prune %d/%d pages (%.0f%%), %d of %d rows selected\n",
			snap.Prune.PagesPruned, snap.Prune.PagesTotal, 100*snap.Prune.PruneRatio,
			snap.Prune.SelectedRows, snap.Prune.TotalRows)
		fmt.Printf("  access path: %d outer rows vs %d pages  index %.4fs (%d lookups)  scan %.4fs  %.1fx\n",
			snap.Access.OuterRows, snap.Access.InnerPages, snap.Access.IndexSimSeconds,
			snap.Access.IndexLookups, snap.Access.ScanSimSeconds, snap.Access.Speedup)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure6(sfs []int, nodes int) {
	fmt.Println("== Figure 6 (left): re-optimization + online statistics overhead ==")
	rows, err := bench.Figure6Overhead(sfs, nodes)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatOverhead(rows))
	fmt.Println("== Figure 6 (right): predicate push-down overhead ==")
	pd, err := bench.Figure6Pushdown(sfs, nodes)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatPushdown(pd))
}

func runFigure7(sfs []int, nodes int) []bench.CompareRow {
	fmt.Println("== Figure 7: execution time comparison (simulated seconds) ==")
	rows, err := bench.Figure7(sfs, nodes)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatCompare(rows))
	printPlans(rows)
	return rows
}

func runFigure8(sfs []int, nodes int) {
	fmt.Println("== Figure 8: comparison with secondary indexes + INLJ (simulated seconds) ==")
	rows, err := bench.Figure8(sfs, nodes)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.FormatCompare(rows))
	printPlans(rows)
}

func printPlans(rows []bench.CompareRow) {
	fmt.Println("-- chosen plans --")
	for _, r := range rows {
		fmt.Printf("%s sf%d:\n", r.Query, r.SF)
		for _, s := range bench.StrategyOrder {
			fmt.Printf("  %-12s %s\n", s, r.Plan[s])
		}
	}
	fmt.Println()
}

func parseSFs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad scale factor %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scale factors given")
	}
	return out, nil
}

// stopCPUProfile, when profiling is active, flushes and closes the CPU
// profile exactly once; nil otherwise.
var stopCPUProfile func()

// flushProfiles finalizes the CPU profile and, when requested, writes the
// heap profile. Errors are reported but never fatal: profiles are flushed
// on the way out of fatal() itself.
func flushProfiles(memProfile string) {
	if stopCPUProfile != nil {
		stopCPUProfile()
	}
	if memProfile == "" {
		return
	}
	f, err := os.Create(memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "joinbench: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "joinbench: memprofile:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinbench:", err)
	if stopCPUProfile != nil {
		stopCPUProfile()
	}
	os.Exit(1)
}
