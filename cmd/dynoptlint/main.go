// Command dynoptlint runs the dynopt analyzer suite (internal/lint) over Go
// packages and fails on any diagnostic. It is a small multichecker in the
// style of golang.org/x/tools/go/analysis/multichecker, built on the
// self-contained internal/lint/analysis framework so it needs nothing
// outside the standard library.
//
// Usage:
//
//	go run ./cmd/dynoptlint ./...                 lint the module
//	go run ./cmd/dynoptlint -only tempname ./...  run a subset of analyzers
//	go run ./cmd/dynoptlint -gopath DIR PKG...    lint GOPATH-style fixture
//	                                              trees (CI self-test mode)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynopt/internal/lint"
	"dynopt/internal/lint/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	gopath := flag.String("gopath", "", "load packages GOPATH-style from this root (testdata/self-test mode)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dynoptlint [-only a,b] [-gopath dir] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("unknown analyzer %q (use -list)", name)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var (
		pkgs []*analysis.Package
		err  error
	)
	if *gopath != "" {
		pkgs, err = analysis.LoadGOPATH(*gopath, patterns...)
	} else {
		pkgs, err = analysis.Load(".", patterns...)
	}
	if err != nil {
		fatalf("load: %v", err)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dynoptlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dynoptlint: "+format+"\n", args...)
	os.Exit(2)
}
