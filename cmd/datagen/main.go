// Command datagen dumps a generated workload table as CSV for inspection,
// or converts tables to the disk-native paged format:
//
//	datagen -workload tpch -table orders -sf 1
//	datagen -workload tpcds -table store_returns -sf 1 -limit 20
//	datagen -workload tpch -sf 1 -pages /data/tpch1        # all tables
//	datagen -workload tpch -sf 1 -table orders -pages /data/tpch1 -pagerows 512
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/tpcds"
	"dynopt/internal/tpch"
	"dynopt/internal/types"
)

func main() {
	workload := flag.String("workload", "tpch", "tpch or tpcds")
	table := flag.String("table", "", "table to dump (empty lists tables)")
	sf := flag.Int("sf", 1, "scale factor")
	limit := flag.Int("limit", 0, "max rows (0 = all)")
	pages := flag.String("pages", "", "directory to write paged-format files into (load-once conversion; skips the CSV dump)")
	pageRows := flag.Int("pagerows", storage.DefaultPageRows, "rows per page for -pages conversion")
	flag.Parse()

	ctx := &engine.Context{
		Cluster: cluster.New(1),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	var err error
	switch *workload {
	case "tpch":
		_, err = tpch.Load(ctx, *sf)
	case "tpcds":
		_, err = tpcds.Load(ctx, *sf)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}
	if *pages != "" {
		if err := os.MkdirAll(*pages, 0o755); err != nil {
			fatal(err)
		}
		names := ctx.Catalog.Names()
		if *table != "" {
			names = []string{*table}
		}
		for _, name := range names {
			ds, ok := ctx.Catalog.Get(name)
			if !ok {
				fatal(fmt.Errorf("unknown table %q; have %s", name, strings.Join(ctx.Catalog.Names(), ", ")))
			}
			st := ctx.Catalog.Stats().Get(name)
			if err := storage.WritePaged(*pages, ds, st, *pageRows); err != nil {
				fatal(fmt.Errorf("paging %s: %w", name, err))
			}
			npages := 0
			for _, part := range ds.Parts {
				npages += (len(part) + *pageRows - 1) / *pageRows
			}
			fmt.Printf("%s: %d rows -> %d pages (%d rows/page) under %s\n",
				name, ds.RowCount(), npages, *pageRows, *pages)
		}
		return
	}
	if *table == "" {
		fmt.Println("tables:", strings.Join(ctx.Catalog.Names(), ", "))
		return
	}
	ds, ok := ctx.Catalog.Get(*table)
	if !ok {
		fatal(fmt.Errorf("unknown table %q; have %s", *table, strings.Join(ctx.Catalog.Names(), ", ")))
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var header []string
	for _, f := range ds.Schema.Fields {
		header = append(header, f.Name)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	n := 0
	for _, part := range ds.Parts {
		for _, row := range part {
			cells := make([]string, len(row))
			for i, v := range row {
				s := v.String()
				cells[i] = strings.Trim(s, "'")
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
			n++
			if *limit > 0 && n >= *limit {
				return
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
