// Command datagen dumps a generated workload table as CSV for inspection:
//
//	datagen -workload tpch -table orders -sf 1
//	datagen -workload tpcds -table store_returns -sf 1 -limit 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/tpcds"
	"dynopt/internal/tpch"
	"dynopt/internal/types"
)

func main() {
	workload := flag.String("workload", "tpch", "tpch or tpcds")
	table := flag.String("table", "", "table to dump (empty lists tables)")
	sf := flag.Int("sf", 1, "scale factor")
	limit := flag.Int("limit", 0, "max rows (0 = all)")
	flag.Parse()

	ctx := &engine.Context{
		Cluster: cluster.New(1),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	var err error
	switch *workload {
	case "tpch":
		_, err = tpch.Load(ctx, *sf)
	case "tpcds":
		_, err = tpcds.Load(ctx, *sf)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}
	if *table == "" {
		fmt.Println("tables:", strings.Join(ctx.Catalog.Names(), ", "))
		return
	}
	ds, ok := ctx.Catalog.Get(*table)
	if !ok {
		fatal(fmt.Errorf("unknown table %q; have %s", *table, strings.Join(ctx.Catalog.Names(), ", ")))
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var header []string
	for _, f := range ds.Schema.Fields {
		header = append(header, f.Name)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	n := 0
	for _, part := range ds.Parts {
		for _, row := range part {
			cells := make([]string, len(row))
			for i, v := range row {
				s := v.String()
				cells[i] = strings.Trim(s, "'")
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
			n++
			if *limit > 0 && n >= *limit {
				return
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
