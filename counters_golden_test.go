package dynopt

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynopt/internal/bench"
	"dynopt/internal/cluster"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenKey identifies one (query, strategy) cell of the Figure 7 grid.
type goldenKey struct {
	Query    string
	Strategy string
}

// TestCountersGolden pins Metrics.Counters for all six strategies on the
// four evaluation queries (TPC-DS Q17/Q50, TPC-H Q8/Q9) to a golden
// snapshot. The accountant meters *modeled* work — shuffle, broadcast,
// build/probe, materialization, spill — and that model must stay put while
// the substrate underneath it gets faster: any performance work that shifts
// these counters is changing query semantics or cost accounting, not just
// CPU time. Regenerate deliberately with `go test -run CountersGolden
// -update` and justify the diff.
func TestCountersGolden(t *testing.T) {
	env, err := bench.NewEnv(1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]cluster.Snapshot{}
	for _, q := range bench.Queries() {
		for _, s := range env.Strategies() {
			rep, err := env.RunOne(s, q.SQL)
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, s.Name(), err)
			}
			got[q.Name+"/"+s.Name()] = rep.Counters
		}
	}
	path := filepath.Join("testdata", "counters_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	want := map[string]cluster.Snapshot{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("cell count: got %d, golden has %d", len(got), len(want))
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: not in golden file", k)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: counters drifted\n got: %+v\nwant: %+v", k, g, w)
		}
	}
}
