package dynopt

import (
	"errors"
	"fmt"
	"testing"

	"dynopt/internal/bench"
	"dynopt/internal/faults"
)

// TestPagedCorruptionClassified is the disk-native analogue of the spill
// corruption suite: at-rest damage to a sealed page file — a flipped bit, a
// truncated tail, a torn write — injected through the page.corrupt point
// while the workload converts to paged form must either fail classified
// faults.ErrCorrupt (at open, when the footer or directory is hit, or at
// scan time, when a page body is) or leave the query's rows byte-identical
// to the resident baseline (when the damage lands on a dataset the query
// never reads). Never a panic, never silently wrong rows.
func TestPagedCorruptionClassified(t *testing.T) {
	q := bench.Queries()[0] // Q17: joins across several base datasets
	resident, err := bench.NewEnv(1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	strat := resident.Strategies()[0]
	want, _, err := resident.RunOneResult(strat, q.SQL)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		kind CorruptKind
	}{
		{"flip-bit", CorruptFlipBit},
		{"truncate-tail", CorruptTruncateTail},
		{"torn-write", CorruptTornWrite},
	} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				paged, err := bench.NewEnv(1, 4, false)
				if err != nil {
					t.Fatal(err)
				}
				reg := NewFaultRegistry(200 + seed)
				reg.Arm(FaultRule{Point: "page.corrupt", OneShot: true, Corrupt: tc.kind})
				if err := paged.ConvertPaged(t.TempDir(), 64, paged.DatasetBytes()/8, reg); err != nil {
					if !errors.Is(err, faults.ErrCorrupt) {
						t.Fatalf("conversion failed unclassified: %v", err)
					}
					return
				}
				if reg.Fired("page.corrupt") != 1 {
					t.Fatal("page.corrupt never fired during conversion")
				}
				res, _, err := paged.RunOneResult(strat, q.SQL)
				if err != nil {
					if !errors.Is(err, faults.ErrCorrupt) {
						t.Fatalf("query over the damaged store failed unclassified: %v", err)
					}
					return
				}
				// The damage missed every page the query decodes: the rows
				// must then be byte-identical to the resident baseline.
				compareResults(t, want, res)
			})
		}
	}
}
