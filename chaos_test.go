package dynopt

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dynopt/internal/faults/leakcheck"
)

// chaosEnv is the shared fixture for the seeded chaos matrix: one DB with
// both Figure-7 workloads loaded, real spilling at a small per-node budget
// so every fault point on the spill path is reachable, the plan memo on so
// replay faults are reachable, and a seeded fault registry armed and
// re-armed per scenario.
type chaosEnv struct {
	db  *DB
	reg *FaultRegistry
	dir string
}

func newChaosEnv(t *testing.T) *chaosEnv {
	t.Helper()
	dir := t.TempDir()
	reg := NewFaultRegistry(0xD15EA5E)
	db := Open(Config{
		Nodes:            4,
		SpillDir:         dir,
		PlanCacheEntries: 8,
		Faults:           reg,
	})
	if _, err := LoadTPCH(db, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTPCDS(db, 1); err != nil {
		t.Fatal(err)
	}
	// Small enough that the Figure-7 joins overflow and spill; large enough
	// that the suite is not dominated by run-file churn.
	db.ctx.Cluster.SetMemoryPerNodeBytes(32 << 10)
	return &chaosEnv{db: db, reg: reg, dir: dir}
}

// checkInvariants asserts the chaos contract for one finished run: the rows
// are byte-identical to the fault-free baseline OR the error is cleanly
// classified, and either way the governor balances to zero, the spill
// directory is empty, and the visible catalog is unchanged.
func (e *chaosEnv) checkInvariants(t *testing.T, res *Result, err error, want, baseDatasets []string) {
	t.Helper()
	if err != nil {
		var qe *QueryError
		if !errors.Is(err, ErrTransient) && !errors.Is(err, ErrOverCapacity) &&
			!errors.Is(err, ErrAdmission) && !errors.As(err, &qe) {
			t.Errorf("unclassified error: %v", err)
		}
	} else {
		got := sortedResultRows(res)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rows diverged from fault-free baseline: got %d rows, want %d", len(got), len(want))
		}
	}
	if used := e.db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced after run: %d bytes still held", used)
	}
	dirEmpty(t, e.dir)
	if ds := e.db.Datasets(); !reflect.DeepEqual(ds, baseDatasets) {
		t.Errorf("Datasets() changed: got %v, want %v", ds, baseDatasets)
	}
}

// TestChaosMatrix drives every Figure-7 query under every strategy through
// a matrix of injected failures — spill-device write and read errors, grant
// denials, an operator panic mid-probe, a stalled-then-failed exchange
// consumer, and a faulted memo replay — all from one fixed seed, under
// -race in CI. Every single run must end in byte-identical rows or a
// cleanly classified error, with no leaked goroutines, a balanced governor,
// an empty spill directory, and an unchanged catalog.
func TestChaosMatrix(t *testing.T) {
	env := newChaosEnv(t)
	leakcheck.Check(t)

	queries := []struct {
		name string
		sql  string
	}{
		{"tpcds_q17", TPCDSQ17()},
		{"tpcds_q50", TPCDSQ50()},
		{"tpch_q8", TPCHQ8()},
		{"tpch_q9", TPCHQ9()},
	}

	// Fault-free baselines, one per query x strategy cell. These runs also
	// warm the plan memo so the replay-fault scenario has plans to replay.
	baseline := map[string][]string{}
	for _, q := range queries {
		for _, s := range allStrategies {
			res, err := env.db.Query(q.sql, &QueryOptions{Strategy: s})
			if err != nil {
				t.Fatalf("baseline %s/%s: %v", q.name, s, err)
			}
			baseline[q.name+"/"+string(s)] = sortedResultRows(res)
		}
	}
	baseDatasets := env.db.Datasets()

	scenarios := []struct {
		name  string
		rules []FaultRule
	}{
		// Every 7th run-file append fails: queries either ride the DHHJ
		// degradation rung or surface a classified spill-I/O error.
		{"spill-write", []FaultRule{{Point: "spill.append", EveryN: 7}}},
		// The first run-file open on the probe side fails once.
		{"spill-read", []FaultRule{{Point: "spill.read", OneShot: true}}},
		// Every 3rd grant reservation is denied: pure pressure, so every
		// run must still succeed with identical rows (broadcast falls back
		// to partitioned, resident builds fall back to spilling).
		{"grant-denial", []FaultRule{{Point: "governor.reserve", EveryN: 3}}},
		// One probe worker panics mid-drain: containment must convert it
		// to a *QueryError after cleanup, never crash the process.
		{"operator-panic", []FaultRule{{Point: "probe.drain", OneShot: true, Panic: true}}},
		// One exchange consumer stalls, then its stream fails: producers
		// must notice teardown instead of blocking on full channels.
		{"exchange-stall", []FaultRule{{Point: "exchange.consume", OneShot: true, Stall: 5 * time.Millisecond}}},
		// The first memo replay faults: the query must fall back to the
		// full dynamic loop and still answer correctly.
		{"replay-fault", []FaultRule{{Point: "memo.replay", OneShot: true}}},
		// One sealed run has a bit flipped at rest before read-back: the
		// checksums must catch it and the join heal by rebuilding the run —
		// identical rows, never silently wrong.
		{"spill-corrupt-flip", []FaultRule{{Point: "spill.corrupt", OneShot: true, Corrupt: CorruptFlipBit}}},
		// Every 5th run read back lost its tail: rebuilt runs that come back
		// damaged again exhaust the rebuild-once contract, so runs end in
		// identical rows or a classified ErrCorrupt — both acceptable.
		{"spill-corrupt-truncate", []FaultRule{{Point: "spill.corrupt", EveryN: 5, Corrupt: CorruptTruncateTail}}},
		// One torn write zeroed a sealed run's tail page at rest.
		{"spill-corrupt-torn", []FaultRule{{Point: "spill.corrupt", OneShot: true, Corrupt: CorruptTornWrite}}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, q := range queries {
				for _, s := range allStrategies {
					t.Run(fmt.Sprintf("%s/%s", q.name, s), func(t *testing.T) {
						env.reg.Reset()
						for _, r := range sc.rules {
							env.reg.Arm(r)
						}
						res, err := env.db.Query(q.sql, &QueryOptions{Strategy: s, Timeout: 2 * time.Minute})
						env.checkInvariants(t, res, err, baseline[q.name+"/"+string(s)], baseDatasets)
						if sc.name == "grant-denial" && err != nil {
							t.Errorf("grant denial is pressure, not failure: %v", err)
						}
					})
				}
			}
			env.reg.Reset()
		})
	}
}
