package dynopt

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// loadEvalDB loads both evaluation workloads at sf 1 on a 4-node layout.
func loadEvalDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	db := Open(cfg)
	if _, err := LoadTPCH(db, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTPCDS(db, 1); err != nil {
		t.Fatal(err)
	}
	return db
}

// rowsKey renders a result's rows (in order) for byte-identity comparison.
func rowsKey(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPlanMemoReplayEquivalence pins the acceptance contract on the
// Figure-7 queries: the second execution of each shape replays the memoized
// plan with zero blocking re-optimization points and produces rows
// byte-identical to the plain dynamic loop.
func TestPlanMemoReplayEquivalence(t *testing.T) {
	plain := loadEvalDB(t, Config{})
	cached := loadEvalDB(t, Config{PlanCacheEntries: 32})
	queries := map[string]string{
		"Q17": TPCDSQ17(), "Q50": TPCDSQ50(), "Q8": TPCHQ8(), "Q9": TPCHQ9(),
	}
	for name, sql := range queries {
		t.Run(name, func(t *testing.T) {
			base, err := plain.Query(sql, nil)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := cached.Query(sql, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Metrics.CacheHit {
				t.Error("first execution reported a cache hit")
			}
			if got, want := rowsKey(cold), rowsKey(base); got != want {
				t.Fatal("cold cached run rows differ from plain dynamic rows")
			}
			hot, err := cached.Query(sql, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !hot.Metrics.CacheHit {
				t.Fatalf("second execution did not replay:\n%s", strings.Join(hot.Metrics.Stages, "\n"))
			}
			if hot.Metrics.ReplayFellBack {
				t.Errorf("replay fell back:\n%s", strings.Join(hot.Metrics.Stages, "\n"))
			}
			if hot.Metrics.Reopts != 0 {
				t.Errorf("replay crossed %d blocking re-opt points, want 0", hot.Metrics.Reopts)
			}
			if got, want := rowsKey(hot), rowsKey(base); got != want {
				t.Fatal("replayed rows differ from plain dynamic rows")
			}
			if hot.Metrics.Plan != base.Metrics.Plan {
				t.Errorf("replayed plan %s != dynamic plan %s", hot.Metrics.Plan, base.Metrics.Plan)
			}
		})
	}
}

// swingDB builds a workload whose join fan-out swings ~200× with the $g
// binding while the pushed-down dimension keeps the same cardinality:
// d0 ids 0..49 (grp 0) match one fact row each, ids 50..99 (grp 1) match
// 200 each. The pushdown guardrail therefore passes for both bindings and
// only the join-stage guardrail can catch the swing.
func swingDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	db := Open(cfg)
	d0 := make([]Tuple, 100)
	for i := range d0 {
		d0[i] = Tuple{Int(int64(i)), Int(int64(i / 50))}
	}
	if err := db.CreateDataset("d0", NewSchema(F("id", KindInt), F("grp", KindInt)), []string{"id"}, d0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"d1", "d2"} {
		rows := make([]Tuple, 500)
		for i := range rows {
			rows[i] = Tuple{Int(int64(i)), Int(int64(i % 7))}
		}
		if err := db.CreateDataset(name, NewSchema(F(name+"_id", KindInt), F(name+"_v", KindInt)), []string{name + "_id"}, rows); err != nil {
			t.Fatal(err)
		}
	}
	const factN = 50 + 50*200
	fact := make([]Tuple, factN)
	for i := range fact {
		fk0 := int64(i)
		if i >= 50 {
			fk0 = 50 + int64(i-50)/200
		}
		fact[i] = Tuple{Int(int64(i)), Int(fk0), Int(int64(i % 500)), Int(int64(i % 500))}
	}
	if err := db.CreateDataset("fact", NewSchema(
		F("f_id", KindInt), F("fk0", KindInt), F("fk1", KindInt), F("fk2", KindInt),
	), []string{"f_id"}, fact); err != nil {
		t.Fatal(err)
	}
	return db
}

const swingQuery = `SELECT fact.f_id FROM fact, d0, d1, d2
WHERE fact.fk0 = d0.id AND fact.fk1 = d1.d1_id AND fact.fk2 = d2.d2_id AND d0.grp = $g`

// TestPlanMemoFallbackMidQuery injects a cardinality mis-estimate: the memo
// is recorded under a binding where the first join stage yields 50 rows,
// then replayed under one where it yields 10000. The stage guardrail must
// abort the replay mid-query and the dynamic loop must finish correctly
// from the already-materialized intermediate.
func TestPlanMemoFallbackMidQuery(t *testing.T) {
	db := swingDB(t, Config{PlanCacheEntries: 8})
	plain := swingDB(t, Config{})

	bind := func(g int64) *QueryOptions {
		return &QueryOptions{Params: map[string]Value{"g": Int(g)}}
	}
	// Record under $g = 0 (tiny fan-out) and confirm the shape replays.
	if _, err := db.Query(swingQuery, bind(0)); err != nil {
		t.Fatal(err)
	}
	hit, err := db.Query(swingQuery, bind(0))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Metrics.CacheHit {
		t.Fatalf("same-binding run did not replay:\n%s", strings.Join(hit.Metrics.Stages, "\n"))
	}
	if len(hit.Rows) != 50 {
		t.Fatalf("g=0 rows = %d, want 50", len(hit.Rows))
	}

	// Replay under $g = 1: the join stage observes ~200× the recorded rows.
	swung, err := db.Query(swingQuery, bind(1))
	if err != nil {
		t.Fatal(err)
	}
	if swung.Metrics.CacheHit {
		t.Error("out-of-band run still reported a full replay")
	}
	if !swung.Metrics.ReplayFellBack {
		t.Fatalf("expected mid-query fallback:\n%s", strings.Join(swung.Metrics.Stages, "\n"))
	}
	base, err := plain.Query(swingQuery, bind(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(swung.Rows) != 10000 || rowsKey(swung) != rowsKey(base) {
		t.Fatalf("fallback rows = %d, want 10000 identical to dynamic", len(swung.Rows))
	}

	// The fallback re-recorded the shape: the next $g = 1 run replays.
	again, err := db.Query(swingQuery, bind(1))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Metrics.CacheHit {
		t.Errorf("re-recorded shape did not replay:\n%s", strings.Join(again.Metrics.Stages, "\n"))
	}
	if rowsKey(again) != rowsKey(base) {
		t.Error("re-recorded replay rows differ")
	}
}

// warmShape runs sql twice and asserts the second run replays; it returns
// nothing — a failure here means the memo plumbing itself broke.
func warmShape(t *testing.T, db *DB, sql string, opts *QueryOptions) {
	t.Helper()
	if _, err := db.Query(sql, opts); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.CacheHit {
		t.Fatalf("shape did not warm:\n%s", strings.Join(res.Metrics.Stages, "\n"))
	}
}

// invalidationDB is testDB with the plan memo enabled.
func invalidationDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{Nodes: 4, PlanCacheEntries: 16})
	users := make([]Tuple, 400)
	for i := range users {
		users[i] = Tuple{Int(int64(i)), Int(int64(i % 8)), Str("user-pad")}
	}
	if err := db.CreateDataset("users", NewSchema(
		F("u_id", KindInt), F("u_grp", KindInt), F("u_pad", KindString),
	), []string{"u_id"}, users); err != nil {
		t.Fatal(err)
	}
	orders := make([]Tuple, 3000)
	for i := range orders {
		orders[i] = Tuple{Int(int64(i)), Int(int64(i % 400)), Int(int64(i % 50)), Float(float64(i) / 7)}
	}
	if err := db.CreateDataset("orders", NewSchema(
		F("o_id", KindInt), F("o_user", KindInt), F("o_item", KindInt), F("o_amt", KindFloat),
	), []string{"o_id"}, orders); err != nil {
		t.Fatal(err)
	}
	items := make([]Tuple, 50)
	for i := range items {
		items[i] = Tuple{Int(int64(i)), Str("item")}
	}
	if err := db.CreateDataset("items", NewSchema(
		F("i_id", KindInt), F("i_name", KindString),
	), []string{"i_id"}, items); err != nil {
		t.Fatal(err)
	}
	return db
}

const invQuery = `SELECT o.o_id FROM orders o, users u, items i
WHERE o.o_user = u.u_id AND o.o_item = i.i_id AND u.u_grp = 3 AND u.u_id < 399`

// TestPlanMemoInvalidation exercises the catalog hooks: re-registering,
// indexing, or dropping a referenced dataset evicts the shape; unrelated
// catalog changes do not.
func TestPlanMemoInvalidation(t *testing.T) {
	db := invalidationDB(t)

	// CreateDataset on a referenced name evicts — and the next run sees the
	// new data, not the memoized world.
	warmShape(t, db, invQuery, nil)
	users2 := make([]Tuple, 200)
	for i := range users2 {
		users2[i] = Tuple{Int(int64(i)), Int(int64(i % 4)), Str("v2")}
	}
	if err := db.CreateDataset("users", NewSchema(
		F("u_id", KindInt), F("u_grp", KindInt), F("u_pad", KindString),
	), []string{"u_id"}, users2); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CacheHit {
		t.Error("replaced dataset did not evict the shape")
	}
	// u_grp=3 now keeps 50 of 200 users (i%4 == 3), o_user spans 0..399 of
	// which only 0..199 exist → orders with o_user%4==3 and o_user<200.
	want := 0
	for i := 0; i < 3000; i++ {
		u := i % 400
		if u < 200 && u%4 == 3 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("post-replacement rows = %d, want %d", len(res.Rows), want)
	}

	// CreateIndex on a referenced dataset evicts.
	warmShape(t, db, invQuery, nil)
	if err := db.CreateIndex("orders", "o_user"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.Query(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.CacheHit {
		t.Error("index build did not evict the shape")
	}

	// DropDataset evicts; the shape re-records after the dataset returns.
	warmShape(t, db, invQuery, nil)
	if err := db.DropDataset("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(invQuery, nil); err == nil {
		t.Error("query over dropped dataset did not error")
	}
	items := make([]Tuple, 50)
	for i := range items {
		items[i] = Tuple{Int(int64(i)), Str("item")}
	}
	if err := db.CreateDataset("items", NewSchema(
		F("i_id", KindInt), F("i_name", KindString),
	), []string{"i_id"}, items); err != nil {
		t.Fatal(err)
	}
	res3, err := db.Query(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Metrics.CacheHit {
		t.Error("dropped+recreated dataset replayed a stale plan")
	}

	// An unrelated dataset change must NOT evict.
	warmShape(t, db, invQuery, nil)
	if err := db.CreateDataset("unrelated", NewSchema(F("x", KindInt)), []string{"x"},
		[]Tuple{{Int(1)}}); err != nil {
		t.Fatal(err)
	}
	res4, err := db.Query(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res4.Metrics.CacheHit {
		t.Error("unrelated catalog change evicted the shape")
	}
}

// TestPlanMemoLRUCap: with capacity 2, a third shape evicts the least
// recently used one.
func TestPlanMemoLRUCap(t *testing.T) {
	db := Open(Config{Nodes: 2, PlanCacheEntries: 2})
	for _, name := range []string{"a", "b", "c", "d"} {
		rows := make([]Tuple, 60)
		for i := range rows {
			rows[i] = Tuple{Int(int64(i)), Int(int64(i % 6))}
		}
		if err := db.CreateDataset(name, NewSchema(F(name+"_id", KindInt), F(name+"_v", KindInt)),
			[]string{name + "_id"}, rows); err != nil {
			t.Fatal(err)
		}
	}
	shape := func(x, y string) string {
		return fmt.Sprintf("SELECT %s.%s_id FROM %s, %s WHERE %s.%s_id = %s.%s_id AND %s.%s_v = 2",
			x, x, x, y, x, x, y, y, x, x)
	}
	qa, qb, qc := shape("a", "b"), shape("b", "c"), shape("c", "d")
	run := func(sql string) bool {
		res, err := db.Query(sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.CacheHit
	}
	run(qa) // record A
	if !run(qa) {
		t.Fatal("A did not warm")
	}
	run(qb) // record B (A, B cached)
	run(qc) // record C → evicts A (LRU)
	if run(qa) {
		t.Error("A survived past the LRU cap")
	}
	// A's re-record just evicted B (the new LRU); C must still be hot.
	if !run(qc) {
		t.Error("C was evicted out of LRU order")
	}
}

// TestPlanMemoNoCache: NoCache neither replays nor records.
func TestPlanMemoNoCache(t *testing.T) {
	db := invalidationDB(t)
	for i := 0; i < 2; i++ {
		res, err := db.Query(invQuery, &QueryOptions{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.CacheHit {
			t.Error("NoCache run reported a cache hit")
		}
	}
	// Nothing was recorded: the first normal run is a miss.
	res, err := db.Query(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CacheHit {
		t.Error("NoCache runs recorded an entry")
	}
	// A warmed shape is NOT replayed by a NoCache run.
	warmShape(t, db, invQuery, nil)
	res2, err := db.Query(invQuery, &QueryOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.CacheHit {
		t.Error("NoCache run replayed a memoized plan")
	}
}

// TestExplainReportsPlanCache: Explain shows hit/miss without executing
// against the memo (no recording, no LRU perturbation).
func TestExplainReportsPlanCache(t *testing.T) {
	db := invalidationDB(t)
	out, err := db.Explain(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan cache: miss") {
		t.Errorf("unwarmed explain output:\n%s", out)
	}
	warmShape(t, db, invQuery, nil)
	out2, err := db.Explain(invQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "plan cache: hit") {
		t.Errorf("warmed explain output:\n%s", out2)
	}
	// Different constants, same shape: still a hit.
	out3, err := db.Explain(strings.Replace(invQuery, "u.u_grp = 3", "u.u_grp = 5", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "plan cache: hit") {
		t.Errorf("same-shape explain output:\n%s", out3)
	}
	// A cache-less DB reports nothing about the plan cache.
	plain := testDB(t)
	out4, err := plain.Explain(apiQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out4, "plan cache") {
		t.Errorf("cache-less explain mentions the plan cache:\n%s", out4)
	}
}

// TestPlanMemoConcurrentServing hammers one parameterized shape from many
// goroutines with rotating bindings — the serving scenario the memo exists
// for. Run under -race this doubles as the store's concurrency test.
func TestPlanMemoConcurrentServing(t *testing.T) {
	db := invalidationDB(t)
	sql := `SELECT o.o_id FROM orders o, users u, items i
WHERE o.o_user = u.u_id AND o.o_item = i.i_id AND u.u_grp = $g`
	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g := int64((w + i) % 8)
				res, err := db.Query(sql, &QueryOptions{Params: map[string]Value{"g": Int(g)}})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 375 {
					errs <- fmt.Errorf("g=%d rows = %d, want 375", g, len(res.Rows))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the storm, the shape replays.
	res, err := db.Query(sql, &QueryOptions{Params: map[string]Value{"g": Int(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.CacheHit {
		t.Errorf("shape not hot after concurrent serving:\n%s", strings.Join(res.Metrics.Stages, "\n"))
	}
}

// TestPlanMemoBudgetedShapeSeparate: a plan recorded under a per-query
// MaxReopts budget occupies its own memo slot — unlimited-budget queries of
// the same statement never replay the truncated convergence.
func TestPlanMemoBudgetedShapeSeparate(t *testing.T) {
	db := wideDB(t, Config{PlanCacheEntries: 8})
	budgeted := &QueryOptions{MaxReopts: 1}
	if _, err := db.Query(wideQuery(), budgeted); err != nil {
		t.Fatal(err)
	}
	// Unlimited run: must miss (different planning universe) and cross the
	// full three blocking points.
	res, err := db.Query(wideQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CacheHit {
		t.Error("unlimited query replayed a budget-truncated plan")
	}
	if res.Metrics.Reopts != 3 {
		t.Errorf("unlimited run reopts = %d, want 3", res.Metrics.Reopts)
	}
	// Each slot is now warm for its own configuration.
	for _, opts := range []*QueryOptions{budgeted, nil} {
		res, err := db.Query(wideQuery(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Metrics.CacheHit || res.Metrics.Reopts != 0 {
			t.Errorf("opts %+v: hit=%v reopts=%d", opts, res.Metrics.CacheHit, res.Metrics.Reopts)
		}
	}
}
