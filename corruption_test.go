package dynopt

import (
	"errors"
	"reflect"
	"syscall"
	"testing"

	"dynopt/internal/faults/leakcheck"
	"dynopt/internal/memo"
)

// These tests drive the corruption-recovery contract end to end through the
// public API: any injected damage to a spill run ends in byte-identical
// correct rows (after at most one metered rebuild per run) or a classified
// ErrCorrupt/ErrSpillIO failure — never a panic, never silently short or
// wrong results, never leaked grants or spill directories.

// TestCorruptionHealsWithRebuild: one at-rest mutation of a sealed run (any
// kind) is caught by the read-back checksums and healed by rebuilding the
// run from its still-resident source — the query succeeds with rows
// identical to the fault-free baseline and the rebuild metered.
func TestCorruptionHealsWithRebuild(t *testing.T) {
	leakcheck.Check(t)
	want := sortedResultRows(mustQuery(t, testDB(t), apiQuery, nil))

	for _, tc := range []struct {
		name string
		kind CorruptKind
	}{
		{"flip-bit", CorruptFlipBit},
		{"truncate-tail", CorruptTruncateTail},
		{"torn-write", CorruptTornWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, reg, dir := faultDB(t, 256, 51)
			reg.Arm(FaultRule{Point: "spill.corrupt", OneShot: true, Corrupt: tc.kind})
			res, err := db.Query(apiQuery, nil)
			if err != nil {
				t.Fatalf("one-shot corruption must heal, not fail: %v", err)
			}
			if fired := reg.Fired("spill.corrupt"); fired != 1 {
				t.Fatalf("spill.corrupt fired %d times, want 1 (query never read a run back?)", fired)
			}
			if res.Metrics.SpillRebuilds < 1 {
				t.Errorf("Metrics.SpillRebuilds = %d, want >= 1", res.Metrics.SpillRebuilds)
			}
			if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
				t.Errorf("healed rows diverged from fault-free baseline")
			}
			if used := db.ctx.Cluster.Governor().Used(); used != 0 {
				t.Errorf("governor unbalanced: %d bytes", used)
			}
			dirEmpty(t, dir)
		})
	}
}

// TestCorruptionRecurringFailsClassified: corruption striking every
// read-back damages each rebuilt run too, so the rebuild-once contract is
// exhausted and the query fails classified ErrCorrupt (transient — the
// damage dies with the swept per-query runs) with all state reclaimed.
func TestCorruptionRecurringFailsClassified(t *testing.T) {
	leakcheck.Check(t)
	db, reg, dir := faultDB(t, 256, 52)
	reg.Arm(FaultRule{Point: "spill.corrupt", EveryN: 1, Corrupt: CorruptFlipBit})
	_, err := db.Query(apiQuery, nil)
	if err == nil {
		t.Fatal("recurring corruption completed without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("not classified ErrCorrupt: %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("corruption not classified transient: %v", err)
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}

// TestCorruptionDiskFullDegradesToResident: an ENOSPC on the first eviction
// classifies as ErrDiskFull (wrapping ErrSpillIO), so the PR 7 degradation
// rung applies — with governor headroom the join holds its build resident
// and the query succeeds with baseline rows.
func TestCorruptionDiskFullDegradesToResident(t *testing.T) {
	leakcheck.Check(t)
	want := sortedResultRows(mustQuery(t, testDB(t), apiQuery, nil))

	db, reg, dir := faultDB(t, 1<<30, 53)
	reg.Arm(FaultRule{Point: "governor.reserve", EveryN: 1})
	reg.Arm(FaultRule{Point: "spill.create", OneShot: true, Err: syscall.ENOSPC})
	res, err := db.Query(apiQuery, nil)
	if err != nil {
		t.Fatalf("disk-full with governor headroom must degrade, not fail: %v", err)
	}
	if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
		t.Errorf("degraded rows diverged from fault-free baseline")
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}

// TestCorruptionDiskFullOverCapacity: the same disk-full with no governor
// headroom cannot degrade; the failure carries the whole classification
// chain — ErrDiskFull, its ErrSpillIO parent, and ErrOverCapacity.
func TestCorruptionDiskFullOverCapacity(t *testing.T) {
	leakcheck.Check(t)
	db, reg, dir := faultDB(t, 256, 54)

	hog := db.ctx.Cluster.Governor().Grant()
	hog.Reserve(1 << 40)
	defer hog.Close()

	reg.Arm(FaultRule{Point: "spill.create", EveryN: 1, Err: syscall.ENOSPC})
	_, err := db.Query(apiQuery, nil)
	if err == nil {
		t.Fatal("disk-full with no governor headroom must fail the query")
	}
	for _, sentinel := range []struct {
		name string
		err  error
	}{{"ErrDiskFull", ErrDiskFull}, {"ErrSpillIO", ErrSpillIO}, {"ErrOverCapacity", ErrOverCapacity}} {
		if !errors.Is(err, sentinel.err) {
			t.Errorf("%s lost from the chain: %v", sentinel.name, err)
		}
	}
	dirEmpty(t, dir)
	hog.Close()
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
}

// TestCorruptionDuringReplayRecovers: corruption discovered while replaying
// a memoized plan must never fail the query — the damaged run is either
// rebuilt in place (SpillRebuilds metered) or, when it cannot be, the
// replay abandons and the dynamic loop re-runs the query from scratch
// (ReplayFellBack). Either way the rows match the fault-free baseline.
func TestCorruptionDuringReplayRecovers(t *testing.T) {
	leakcheck.Check(t)
	db, reg, dir := faultDB(t, 256, 55)
	db.memo = memo.NewStore(8, memo.Options{})
	db.ctx.Catalog.SetBaseHook(db.memo.InvalidateDataset)

	// Warm the memo with the spilling plan, then corrupt a run mid-replay.
	want := sortedResultRows(mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic}))
	mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic})

	reg.Arm(FaultRule{Point: "spill.corrupt", OneShot: true, Corrupt: CorruptTruncateTail})
	res := mustQuery(t, db, apiQuery, &QueryOptions{Strategy: StrategyDynamic})
	if fired := reg.Fired("spill.corrupt"); fired != 1 {
		t.Fatalf("spill.corrupt fired %d times, want 1 (replay never read a run back?)", fired)
	}
	if got := sortedResultRows(res); !reflect.DeepEqual(got, want) {
		t.Errorf("post-corruption rows diverged from baseline")
	}
	if res.Metrics.SpillRebuilds < 1 && !res.Metrics.ReplayFellBack {
		t.Errorf("corruption during replay neither rebuilt (%d) nor fell back", res.Metrics.SpillRebuilds)
	}
	if used := db.ctx.Cluster.Governor().Used(); used != 0 {
		t.Errorf("governor unbalanced: %d bytes", used)
	}
	dirEmpty(t, dir)
}
