package dynopt

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// wideDB mirrors internal/core's wideWorkload at the API layer: a fact
// table with five dimensions, so the unbounded dynamic loop crosses exactly
// three blocking re-optimization points.
func wideDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	db := Open(cfg)
	const nDims = 5
	dimSize := []int{40, 80, 120, 200, 300}
	for d := 0; d < nDims; d++ {
		rows := make([]Tuple, dimSize[d])
		for i := range rows {
			rows[i] = Tuple{Int(int64(i)), Int(int64(i % 5))}
		}
		if err := db.CreateDataset(fmt.Sprintf("dim%d", d),
			NewSchema(F("id", KindInt), F("v", KindInt)), []string{"id"}, rows); err != nil {
			t.Fatal(err)
		}
	}
	fields := []Field{F("id", KindInt)}
	for d := 0; d < nDims; d++ {
		fields = append(fields, F(fmt.Sprintf("fk%d", d), KindInt))
	}
	const factN = 4000
	factRows := make([]Tuple, factN)
	for i := range factRows {
		row := Tuple{Int(int64(i))}
		for d := 0; d < nDims; d++ {
			row = append(row, Int(int64(i%dimSize[d])))
		}
		factRows[i] = row
	}
	if err := db.CreateDataset("fact", NewSchema(fields...), []string{"id"}, factRows); err != nil {
		t.Fatal(err)
	}
	return db
}

func wideQuery() string {
	sql := "SELECT fact.id FROM fact"
	for d := 0; d < 5; d++ {
		sql += fmt.Sprintf(", dim%d", d)
	}
	sql += " WHERE "
	for d := 0; d < 5; d++ {
		if d > 0 {
			sql += " AND "
		}
		sql += fmt.Sprintf("fact.fk%d = dim%d.id", d, d)
	}
	return sql + " AND dim0.v = 2"
}

// TestQueryOptionsMaxReoptsOverride: per-query budgets apply to exactly the
// query carrying them — concurrent queries with different budgets each see
// their own, and none leaks into the DB default.
func TestQueryOptionsMaxReoptsOverride(t *testing.T) {
	db := wideDB(t, Config{}) // DB-level budget: unlimited
	const wantRows = 4000 / 5

	type job struct {
		opts       *QueryOptions
		wantReopts int
	}
	jobs := []job{
		{nil, 3},                           // unbounded → 3 blocking points
		{&QueryOptions{MaxReopts: 1}, 1},   // per-query budget
		{&QueryOptions{MaxReopts: 2}, 2},   // per-query budget
		{nil, 3},                           // still unbounded
		{&QueryOptions{MaxReopts: -1}, 3},  // explicit unlimited
		{&QueryOptions{MaxReopts: 1}, 1},   //
		{&QueryOptions{}, 3},               // zero inherits DB default
		{&QueryOptions{MaxReopts: 100}, 3}, // budget above need: unchanged
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*4)
	for rep := 0; rep < 4; rep++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				res, err := db.Query(wideQuery(), j.opts)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != wantRows {
					errs <- fmt.Errorf("job %d: rows = %d, want %d", i, len(res.Rows), wantRows)
					return
				}
				if res.Metrics.Reopts != j.wantReopts {
					errs <- fmt.Errorf("job %d: reopts = %d, want %d (override leaked?)",
						i, res.Metrics.Reopts, j.wantReopts)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryOptionsMaxReoptsUnlimitedOverride: a DB-level budget is lifted
// by MaxReopts < 0 for one query without affecting others.
func TestQueryOptionsMaxReoptsUnlimitedOverride(t *testing.T) {
	db := wideDB(t, Config{ReoptBudget: 1})
	res, err := db.Query(wideQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Reopts > 1 {
		t.Errorf("DB budget ignored: reopts = %d", res.Metrics.Reopts)
	}
	res2, err := db.Query(wideQuery(), &QueryOptions{MaxReopts: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Reopts != 3 {
		t.Errorf("unlimited override: reopts = %d, want 3", res2.Metrics.Reopts)
	}
	res3, err := db.Query(wideQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Metrics.Reopts > 1 {
		t.Errorf("override leaked into later query: reopts = %d", res3.Metrics.Reopts)
	}
}

// TestQueryOptionsBroadcastThresholdOverride: a per-query threshold of one
// byte forbids broadcasts for that query only, while concurrent default
// queries keep broadcasting the small dimensions.
func TestQueryOptionsBroadcastThresholdOverride(t *testing.T) {
	db := wideDB(t, Config{})
	const wantRows = 4000 / 5
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var opts *QueryOptions
			if i%2 == 0 {
				opts = &QueryOptions{BroadcastThresholdBytes: 1}
			}
			res, err := db.Query(wideQuery(), opts)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Rows) != wantRows {
				errs <- fmt.Errorf("rows = %d, want %d", len(res.Rows), wantRows)
				return
			}
			hasBroadcast := strings.Contains(res.Metrics.Plan, "⋈b")
			if i%2 == 0 && hasBroadcast {
				errs <- fmt.Errorf("threshold override ignored: %s", res.Metrics.Plan)
			}
			if i%2 == 1 && !hasBroadcast {
				errs <- fmt.Errorf("default query stopped broadcasting (override leaked): %s", res.Metrics.Plan)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryOptionsEnableINLJOverride: INLJ can be switched per query on a
// DB that has it off, and vice versa.
func TestQueryOptionsEnableINLJOverride(t *testing.T) {
	db := Open(Config{Nodes: 4}) // INLJ off at the DB level
	big := make([]Tuple, 4000)
	for i := range big {
		big[i] = Tuple{Int(int64(i)), Int(int64(i % 100))}
	}
	if err := db.CreateDataset("big", NewSchema(F("b_id", KindInt), F("b_fk", KindInt)), []string{"b_id"}, big); err != nil {
		t.Fatal(err)
	}
	small := make([]Tuple, 100)
	for i := range small {
		small[i] = Tuple{Int(int64(i)), Int(int64(i % 4))}
	}
	if err := db.CreateDataset("small", NewSchema(F("s_id", KindInt), F("s_v", KindInt)), []string{"s_id"}, small); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("big", "b_fk"); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT b.b_id FROM big b, small s WHERE b.b_fk = s.s_id AND s.s_v = 2`
	on := true
	res, err := db.Query(sql, &QueryOptions{EnableINLJ: &on})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Metrics.Plan, "⋈i") {
		t.Errorf("INLJ override ignored: %s", res.Metrics.Plan)
	}
	res2, err := db.Query(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res2.Metrics.Plan, "⋈i") {
		t.Errorf("INLJ leaked into default query: %s", res2.Metrics.Plan)
	}
}
