package tpch

import (
	"sort"
	"strings"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/optimizer"
	"dynopt/internal/sqlpp"
	"dynopt/internal/types"
)

func loadCtx(t *testing.T, sf, nodes int) (*engine.Context, Sizes) {
	t.Helper()
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	sz, err := Load(ctx, sf)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, sz
}

func TestLoadSizesAndStats(t *testing.T) {
	ctx, sz := loadCtx(t, 1, 4)
	for name, want := range map[string]int{
		"lineitem": sz.Lineitem, "orders": sz.Orders, "partsupp": sz.Partsupp,
		"part": sz.Part, "customer": sz.Customer, "supplier": sz.Supplier,
		"nation": sz.Nation, "region": sz.Region,
	} {
		ds, ok := ctx.Catalog.Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if int(ds.RowCount()) != want {
			t.Errorf("%s rows = %d, want %d", name, ds.RowCount(), want)
		}
		st := ctx.Catalog.Stats().Get(name)
		if st == nil || int(st.RecordCount) != want {
			t.Errorf("%s stats missing or wrong", name)
		}
	}
}

func TestSizesScale(t *testing.T) {
	s1, s5 := SizesFor(1), SizesFor(5)
	if s5.Lineitem != 5*s1.Lineitem || s5.Orders != 5*s1.Orders {
		t.Errorf("scaling wrong: %+v vs %+v", s1, s5)
	}
	if SizesFor(0).Lineitem != SizesFor(1).Lineitem {
		t.Error("sf<1 not clamped")
	}
	if s1.Nation != 25 || s1.Region != 5 {
		t.Error("fixed tables scaled")
	}
}

func TestOrdersCorrelation(t *testing.T) {
	ctx, _ := loadCtx(t, 2, 2)
	ds, _ := ctx.Catalog.Get("orders")
	di := ds.Schema.MustIndex("o_orderdate")
	si := ds.Schema.MustIndex("o_orderstatus")
	var inRange, f, both, total int
	for _, part := range ds.Parts {
		for _, row := range part {
			total++
			d := row[di].S
			inR := d >= "1995-01-01" && d <= "1996-12-31"
			isF := row[si].S == "F"
			if inR {
				inRange++
			}
			if isF {
				f++
			}
			if inR && isF {
				both++
			}
		}
	}
	// Perfect correlation: status F ⇔ year in {1995,1996}.
	if both != inRange || both != f {
		t.Errorf("correlation broken: inRange=%d f=%d both=%d", inRange, f, both)
	}
	// Roughly 2/7 of all orders.
	frac := float64(both) / float64(total)
	if frac < 0.2 || frac > 0.37 {
		t.Errorf("correlated fraction = %v, want ~2/7", frac)
	}
}

func TestDateString(t *testing.T) {
	if got := dateString(0); got != "1992-01-01" {
		t.Errorf("day 0 = %s", got)
	}
	if got := dateString(360*3 + 35); got != "1995-02-06" {
		t.Errorf("mid date = %s", got)
	}
	if !strings.HasPrefix(dateString(daysTotal-1), "1998-12") {
		t.Errorf("last day = %s", dateString(daysTotal-1))
	}
}

func TestQueriesParseAndAnalyze(t *testing.T) {
	ctx, _ := loadCtx(t, 1, 2)
	for name, sql := range map[string]string{"Q8": Q8(), "Q9": Q9()} {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			t.Fatalf("%s parse: %v", name, err)
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			t.Fatalf("%s analyze: %v", name, err)
		}
		switch name {
		case "Q8":
			if len(g.Aliases) != 8 || len(g.Joins) != 7 {
				t.Errorf("Q8 graph: %d aliases %d joins", len(g.Aliases), len(g.Joins))
			}
		case "Q9":
			if len(g.Aliases) != 6 || len(g.Joins) != 5 {
				t.Errorf("Q9 graph: %d aliases %d joins", len(g.Aliases), len(g.Joins))
			}
			// The lineitem⋈partsupp edge must be composite.
			e, ok := g.JoinFor("l", "ps")
			if !ok || len(e.LeftFields) != 2 {
				t.Errorf("Q9 l⋈ps edge: %+v", e)
			}
		}
	}
}

func TestBuildIndexes(t *testing.T) {
	ctx, _ := loadCtx(t, 1, 2)
	if err := BuildIndexes(ctx); err != nil {
		t.Fatal(err)
	}
	ds, _ := ctx.Catalog.Get("lineitem")
	if !ds.HasIndex("l_partkey") || !ds.HasIndex("l_suppkey") {
		t.Error("lineitem indexes missing")
	}
	empty := &engine.Context{Cluster: cluster.New(1), Catalog: catalog.New()}
	if err := BuildIndexes(empty); err == nil {
		t.Error("BuildIndexes without load did not error")
	}
}

func refRows(t *testing.T, ctx *engine.Context, sql string) []string {
	t.Helper()
	res, _, err := optimizer.NewCostBased().Run(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	return renderRows(res)
}

func renderRows(res *engine.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// Q8 and Q9 must produce identical results under every strategy — the
// workload-level equivalence check.
func TestQ8Q9AllStrategiesAgree(t *testing.T) {
	for qname, sql := range map[string]string{"Q8": Q8(), "Q9": Q9()} {
		t.Run(qname, func(t *testing.T) {
			refCtx, _ := loadCtx(t, 1, 4)
			want := refRows(t, refCtx, sql)
			if len(want) == 0 {
				t.Fatalf("%s returns no rows — workload too sparse", qname)
			}
			strategies := []core.Strategy{
				core.NewDynamic(),
				optimizer.NewBestOrder(),
				optimizer.NewWorstOrder(),
				optimizer.NewPilotRun(),
				optimizer.NewIngresLike(),
			}
			for _, s := range strategies {
				ctx, _ := loadCtx(t, 1, 4)
				res, rep, err := s.Run(ctx, sql)
				if err != nil {
					t.Fatalf("%s/%s: %v\n%v", qname, s.Name(), err, rep)
				}
				got := renderRows(res)
				if len(got) != len(want) {
					t.Errorf("%s/%s: %d rows, want %d", qname, s.Name(), len(got), len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s/%s: row %d differs", qname, s.Name(), i)
						break
					}
				}
			}
		})
	}
}

func TestQ9WithINLJ(t *testing.T) {
	ctx, _ := loadCtx(t, 1, 4)
	if err := BuildIndexes(ctx); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Algo.EnableINLJ = true
	d := &core.Dynamic{Cfg: cfg}
	res, rep, err := d.Run(ctx, Q9())
	if err != nil {
		t.Fatal(err)
	}
	// Same result as the hash/broadcast-only run.
	ctx2, _ := loadCtx(t, 1, 4)
	res2, _, err := core.NewDynamic().Run(ctx2, Q9())
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderRows(res), renderRows(res2)
	if len(a) != len(b) {
		t.Fatalf("INLJ rows %d != default rows %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	// §7.2.4: dynamic picks INLJ for lineitem⋈part at small scale.
	if !strings.Contains(rep.Compact(), "⋈i") {
		t.Logf("plan: %s", rep.Compact())
		t.Error("Q9 with indexes did not use INLJ")
	}
}
