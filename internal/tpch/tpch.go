// Package tpch generates the TPC-H table subset queries 8 and 9 touch, at
// row-multiplier scale factors, preserving the structural properties the
// paper's evaluation depends on: key/foreign-key join paths, the correlated
// (o_orderdate, o_orderstatus) predicate pair added to Q8, the UDF-filtered
// columns of Q9, and the lineitem⋈partsupp composite-key join.
package tpch

import (
	"fmt"

	"dynopt/internal/engine"
	"dynopt/internal/storage"
	"dynopt/internal/types"
	"dynopt/internal/workload"
)

// Sizes reports the generated row counts at a scale factor. Ratios follow
// TPC-H (lineitem : orders : partsupp : part : customer : supplier =
// 6M : 1.5M : 800k : 200k : 150k : 10k per official SF), scaled down by
// 1000×; SF 1 here plays the role of a small warehouse.
type Sizes struct {
	Lineitem, Orders, Partsupp, Part, Customer, Supplier, Nation, Region int
}

// SizesFor returns the table sizes at sf.
func SizesFor(sf int) Sizes {
	if sf < 1 {
		sf = 1
	}
	return Sizes{
		Lineitem: 6000 * sf,
		Orders:   1500 * sf,
		Partsupp: 800 * sf,
		Part:     200 * sf,
		Customer: 150 * sf,
		Supplier: 10*sf + 15,
		Nation:   25,
		Region:   5,
	}
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var partTypes = buildPartTypes()

func buildPartTypes() []string {
	t1 := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	t2 := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	t3 := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	var out []string
	for _, a := range t1 {
		for _, b := range t2 {
			for _, c := range t3 {
				out = append(out, a+" "+b+" "+c)
			}
		}
	}
	return out
}

func intF(n string) types.Field { return types.Field{Name: n, Kind: types.KindInt} }
func strF(n string) types.Field { return types.Field{Name: n, Kind: types.KindString} }

// dateString renders a day offset within 1992-01-01 .. 1998-12-30 as an ISO
// date (12 synthetic 30-day months per year keep the arithmetic exact).
func dateString(day int) string {
	year := 1992 + day/360
	rem := day % 360
	month := rem/30 + 1
	dom := rem%30 + 1
	return fmt.Sprintf("%04d-%02d-%02d", year, month, dom)
}

const daysTotal = 7 * 360 // 1992..1998

// Load generates all eight tables at sf and registers them (with
// ingestion-time statistics) in ctx's catalog, partitioned across the
// cluster's nodes.
func Load(ctx *engine.Context, sf int) (Sizes, error) {
	sz := SizesFor(sf)
	nodes := ctx.Cluster.Nodes()
	rng := workload.NewRNG(0x7c4a7d15)

	reg := func(name string, sch *types.Schema, pk []string, rows []types.Tuple) error {
		ds, st, err := storage.Build(name, sch, pk, rows, nodes)
		if err != nil {
			return fmt.Errorf("tpch: %s: %w", name, err)
		}
		return ctx.Catalog.Register(ds, st)
	}

	// region
	regionRows := make([]types.Tuple, sz.Region)
	for i := range regionRows {
		regionRows[i] = types.Tuple{types.Int(int64(i)), types.Str(regions[i]), types.Str("region comment padding text")}
	}
	if err := reg("region", types.NewSchema(intF("r_regionkey"), strF("r_name"), strF("r_comment")),
		[]string{"r_regionkey"}, regionRows); err != nil {
		return sz, err
	}

	// nation: 5 per region
	nationRows := make([]types.Tuple, sz.Nation)
	for i := range nationRows {
		nationRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("NATION_%02d", i)),
			types.Int(int64(i % sz.Region)),
		}
	}
	if err := reg("nation", types.NewSchema(intF("n_nationkey"), strF("n_name"), intF("n_regionkey")),
		[]string{"n_nationkey"}, nationRows); err != nil {
		return sz, err
	}

	// supplier
	suppRows := make([]types.Tuple, sz.Supplier)
	for i := range suppRows {
		suppRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("Supplier#%06d", i)),
			types.Int(int64(rng.Intn(sz.Nation))),
			types.Float(float64(rng.Intn(100000)) / 10),
		}
	}
	if err := reg("supplier", types.NewSchema(intF("s_suppkey"), strF("s_name"), intF("s_nationkey"), types.Field{Name: "s_acctbal", Kind: types.KindFloat}),
		[]string{"s_suppkey"}, suppRows); err != nil {
		return sz, err
	}

	// part: p_brand "Brand#xy" with x in 1..9 (mysub extracts "#x", so the
	// Q9 filter keeps ~1/9 of parts — selective enough that the post-filter
	// lineitem⋈part' join is the cheapest first stage, as in the paper's
	// Q9 plans), p_type one of 150 composed types (Q8 selects one).
	partRows := make([]types.Tuple, sz.Part)
	for i := range partRows {
		brand := fmt.Sprintf("Brand#%d%d", rng.Range(1, 9), rng.Range(1, 5))
		partRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("part name %d lavender linen", i)),
			types.Str(brand),
			types.Str(rng.Pick(partTypes)),
			types.Int(int64(rng.Range(1, 50))),
		}
	}
	if err := reg("part", types.NewSchema(intF("p_partkey"), strF("p_name"), strF("p_brand"), strF("p_type"), intF("p_size")),
		[]string{"p_partkey"}, partRows); err != nil {
		return sz, err
	}

	// customer
	custRows := make([]types.Tuple, sz.Customer)
	for i := range custRows {
		custRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Int(int64(rng.Intn(sz.Nation))),
			types.Str(fmt.Sprintf("Customer#%08d address padding", i)),
		}
	}
	if err := reg("customer", types.NewSchema(intF("c_custkey"), intF("c_nationkey"), strF("c_address")),
		[]string{"c_custkey"}, custRows); err != nil {
		return sz, err
	}

	// orders: o_orderdate spans 1992..1998. The correlation the paper
	// exploits: o_orderstatus = 'F' exactly for orders dated 1995 or 1996,
	// so Q8's (date BETWEEN '1995-01-01' AND '1996-12-31') AND (status='F')
	// has true selectivity 2/7 while the independence assumption predicts
	// (2/7)·(2/7) ≈ 0.082 — a 3.5× underestimate.
	orderRows := make([]types.Tuple, sz.Orders)
	for i := range orderRows {
		day := rng.Intn(daysTotal)
		year := 1992 + day/360
		status := "O"
		if year == 1995 || year == 1996 {
			status = "F"
		}
		orderRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Int(int64(rng.Intn(sz.Customer))),
			types.Str(dateString(day)),
			types.Str(status),
			types.Str("order clerk comment padding"),
		}
	}
	if err := reg("orders", types.NewSchema(intF("o_orderkey"), intF("o_custkey"), strF("o_orderdate"), strF("o_orderstatus"), strF("o_comment")),
		[]string{"o_orderkey"}, orderRows); err != nil {
		return sz, err
	}

	// partsupp: each part supplied by ~4 suppliers; keys skewed so sampled
	// distinct counts extrapolate badly (pilot-run's weakness).
	psRows := make([]types.Tuple, sz.Partsupp)
	for i := range psRows {
		psRows[i] = types.Tuple{
			types.Int(int64(workload.NewRNG(uint64(i)).Zipf(sz.Part))),
			types.Int(int64(rng.Intn(sz.Supplier))),
			types.Int(int64(rng.Range(1, 9999))),
			types.Float(float64(rng.Intn(100000)) / 100),
		}
	}
	if err := reg("partsupp", types.NewSchema(intF("ps_partkey"), intF("ps_suppkey"), intF("ps_availqty"), types.Field{Name: "ps_supplycost", Kind: types.KindFloat}),
		nil, psRows); err != nil {
		return sz, err
	}

	// lineitem: the fact table. Part keys zipf-skewed; supplier and order
	// references uniform.
	liRows := make([]types.Tuple, sz.Lineitem)
	for i := range liRows {
		liRows[i] = types.Tuple{
			types.Int(int64(rng.Intn(sz.Orders))),
			types.Int(int64(rng.Zipf(sz.Part))),
			types.Int(int64(rng.Intn(sz.Supplier))),
			types.Int(int64(rng.Range(1, 50))),
			types.Float(float64(rng.Intn(10000000)) / 100),
			types.Float(float64(rng.Intn(10)) / 100),
			types.Str("lineitem shipinstruct padding text"),
		}
	}
	if err := reg("lineitem", types.NewSchema(intF("l_orderkey"), intF("l_partkey"), intF("l_suppkey"), intF("l_quantity"),
		types.Field{Name: "l_extendedprice", Kind: types.KindFloat},
		types.Field{Name: "l_discount", Kind: types.KindFloat},
		strF("l_comment")), nil, liRows); err != nil {
		return sz, err
	}
	return sz, nil
}

// BuildIndexes adds the secondary indexes the Figure 8 experiments assume:
// lineitem on its part and supplier foreign keys.
func BuildIndexes(ctx *engine.Context) error {
	ds, ok := ctx.Catalog.Get("lineitem")
	if !ok {
		return fmt.Errorf("tpch: lineitem not loaded")
	}
	for _, f := range []string{"l_partkey", "l_suppkey"} {
		if _, err := storage.BuildIndex(ds, f); err != nil {
			return err
		}
	}
	return nil
}

// Q8 is the paper's modified TPC-H query 8: all PK/FK joins across eight
// datasets, with the correlated predicate pair on orders and a one-in-150
// type filter on part (Figure 10a).
func Q8() string {
	return `SELECT o.o_orderdate, l.l_extendedprice, l.l_discount, n2.n_name
FROM lineitem l, part p, supplier s, orders o, customer c, nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey
  AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND r.r_name = 'ASIA'
  AND s.s_nationkey = n2.n_nationkey
  AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND o.o_orderstatus = 'F'
  AND p.p_type = 'SMALL PLATED COPPER'`
}

// Q9 is the paper's modified TPC-H query 9: UDF predicates on orders
// (myyear) and part (mysub), plus the composite-key lineitem⋈partsupp join
// (Figure 10b).
func Q9() string {
	return `SELECT n.n_name, o.o_orderdate, l.l_extendedprice, ps.ps_supplycost
FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
WHERE s.s_suppkey = l.l_suppkey
  AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey
  AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey
  AND myyear(o.o_orderdate) = 1998
  AND s.s_nationkey = n.n_nationkey
  AND mysub(p.p_brand) = '#3'`
}

// Q8P is the serving variant of Q8: the region name and order-status
// filters become $region/$status query parameters so repeated executions
// with rotating bindings share one plan-memo shape.
func Q8P() string {
	return `SELECT o.o_orderdate, l.l_extendedprice, l.l_discount, n2.n_name
FROM lineitem l, part p, supplier s, orders o, customer c, nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey
  AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND r.r_name = $region
  AND s.s_nationkey = n2.n_nationkey
  AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND o.o_orderstatus = $status
  AND p.p_type = 'SMALL PLATED COPPER'`
}
