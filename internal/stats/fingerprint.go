package stats

import "fmt"

// DatasetFingerprint pins the registry statistics a memoized plan was
// derived from for one base dataset: size, byte volume, and the distinct
// counts of the fields that drove join-order and algorithm decisions.
type DatasetFingerprint struct {
	Rows  int64
	Bytes int64
	// Pages is the physical page count of the dataset's disk-native backend
	// at record time (0 = resident). Access-path selection compares binding
	// sets against real page counts, so converting a dataset to paged
	// storage — or re-paging it at a different granularity — invalidates
	// plans recorded against the old layout.
	Pages int64
	// FieldDistinct holds the distinct-count estimate per fingerprinted
	// field (join keys and filter columns of the shape).
	FieldDistinct map[string]int64
}

// Fingerprint summarizes every base dataset a memoized plan depends on,
// keyed by dataset name. It is the cheap revalidation token of the plan
// memo: replay is only attempted while the live registry still matches it.
type Fingerprint map[string]DatasetFingerprint

// DefaultStatsDriftTolerance is the relative drift in row counts, byte
// sizes, or distinct counts beyond which a fingerprint is stale. Base
// statistics are immutable once loaded, so any real mutation moves them far
// past this; the small band absorbs nothing but sketch re-estimation noise.
const DefaultStatsDriftTolerance = 0.05

// FingerprintOf captures the current registry statistics for the given
// datasets. fields maps dataset name to the field names of interest; a
// dataset with no registry entry is recorded as zero (and will read as
// stale the moment statistics appear).
func FingerprintOf(reg *Registry, fields map[string]map[string]bool) Fingerprint {
	fp := Fingerprint{}
	for name, fs := range fields {
		d := DatasetFingerprint{FieldDistinct: map[string]int64{}}
		if st := reg.Get(name); st != nil {
			d.Rows = st.RecordCount
			d.Bytes = st.ByteSize
			for f := range fs {
				if s, ok := st.Fields[f]; ok && s.Count > 0 {
					d.FieldDistinct[f] = s.DistinctCount()
				}
			}
		}
		fp[name] = d
	}
	return fp
}

// Stale reports whether the live registry has drifted beyond tol (relative)
// from the fingerprint, and describes the first drift found. tol <= 0 uses
// DefaultStatsDriftTolerance. Vanished statistics are stale.
func (fp Fingerprint) Stale(reg *Registry, tol float64) (string, bool) {
	if tol <= 0 {
		tol = DefaultStatsDriftTolerance
	}
	for name, want := range fp {
		st := reg.Get(name)
		if st == nil {
			if want.Rows != 0 || want.Bytes != 0 {
				return fmt.Sprintf("%s: statistics vanished", name), true
			}
			continue
		}
		if drifted(want.Rows, st.RecordCount, tol) {
			return fmt.Sprintf("%s: rows %d -> %d", name, want.Rows, st.RecordCount), true
		}
		if drifted(want.Bytes, st.ByteSize, tol) {
			return fmt.Sprintf("%s: bytes %d -> %d", name, want.Bytes, st.ByteSize), true
		}
		for f, d := range want.FieldDistinct {
			cur := int64(0)
			if s, ok := st.Fields[f]; ok && s.Count > 0 {
				cur = s.DistinctCount()
			}
			if drifted(d, cur, tol) {
				return fmt.Sprintf("%s.%s: distinct %d -> %d", name, f, d, cur), true
			}
		}
	}
	return "", false
}

// StalePages reports whether any fingerprinted dataset's physical page
// count moved since record time. pages maps a dataset name to its current
// page count (0 = resident). Page counts are exact storage facts, not
// sketch estimates, so no drift band applies: any change means the layout
// the plan's access paths were chosen against is gone.
func (fp Fingerprint) StalePages(pages func(name string) int64) (string, bool) {
	for name, want := range fp {
		if cur := pages(name); cur != want.Pages {
			return fmt.Sprintf("%s: pages %d -> %d", name, want.Pages, cur), true
		}
	}
	return "", false
}

// drifted reports |cur-want|/max(want,1) > tol.
func drifted(want, cur int64, tol float64) bool {
	diff := cur - want
	if diff < 0 {
		diff = -diff
	}
	base := want
	if base < 1 {
		base = 1
	}
	return float64(diff) > tol*float64(base)
}
