// Package stats implements the statistics collection framework of §4: per
// field of every dataset that may participate in a join or filter, a
// Greenwald-Khanna quantile sketch (for equi-height histograms and range
// selectivity) and a HyperLogLog sketch (for the distinct counts feeding the
// join-cardinality formula). Statistics are collected once at ingestion time
// for base datasets and online at each materialization point for
// intermediates, and are merged across partitions.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dynopt/internal/sketch"
	"dynopt/internal/types"
)

// DefaultGKEpsilon is the rank-error bound used for all quantile sketches.
const DefaultGKEpsilon = 0.005

// DefaultHistogramBuckets is the equi-height bucket count used by the
// selectivity estimator ("depending on the number of buckets we have
// predefined for the histogram, the range cardinality estimation can reach
// high accuracy", §5.1).
const DefaultHistogramBuckets = 100

// FieldStats aggregates the sketches for one field.
type FieldStats struct {
	Quantiles *sketch.GK // numeric observations only
	Distinct  *sketch.HLL
	Count     int64 // observations (rows with non-null value)
	Nulls     int64
	// DistinctOverride, when positive, replaces the HLL estimate. Pilot-run
	// sampling uses it to install linearly scaled sample distincts — the
	// very extrapolation that misfires on skewed non-PK/FK keys (§7.2).
	DistinctOverride int64
	numeric          bool
}

// NewFieldStats returns an empty collector for one field.
func NewFieldStats() *FieldStats {
	return &FieldStats{
		Quantiles: sketch.NewGK(DefaultGKEpsilon),
		Distinct:  sketch.NewHLL(sketch.DefaultHLLPrecision),
	}
}

// Observe feeds one value into the field's sketches.
func (f *FieldStats) Observe(v types.Value) {
	if v.IsNull() {
		f.Nulls++
		return
	}
	f.Count++
	f.Distinct.Add(v.Hash())
	if fv, ok := v.AsFloat(); ok {
		f.numeric = true
		f.Quantiles.Insert(fv)
	}
}

// DistinctCount returns the estimated number of distinct non-null values.
func (f *FieldStats) DistinctCount() int64 {
	if f.DistinctOverride > 0 {
		return f.DistinctOverride
	}
	d := f.Distinct.Estimate()
	if d < 1 && f.Count > 0 {
		d = 1
	}
	return d
}

// Numeric reports whether the field carried numeric observations (and thus
// has a usable histogram).
func (f *FieldStats) Numeric() bool { return f.numeric }

// Merge folds other into f (partition-parallel collection).
func (f *FieldStats) Merge(other *FieldStats) {
	if other == nil {
		return
	}
	f.Count += other.Count
	f.Nulls += other.Nulls
	f.numeric = f.numeric || other.numeric
	f.Quantiles.Merge(other.Quantiles)
	f.Distinct.Merge(other.Distinct)
}

// DatasetStats summarizes one dataset (base or intermediate).
type DatasetStats struct {
	Name        string
	RecordCount int64
	ByteSize    int64
	Fields      map[string]*FieldStats // keyed by bare field name
}

// NewDatasetStats returns an empty summary for a named dataset.
func NewDatasetStats(name string) *DatasetStats {
	return &DatasetStats{Name: name, Fields: map[string]*FieldStats{}}
}

// Field returns (creating if absent) the collector for a field.
func (d *DatasetStats) Field(name string) *FieldStats {
	fs, ok := d.Fields[name]
	if !ok {
		fs = NewFieldStats()
		d.Fields[name] = fs
	}
	return fs
}

// ObserveTuple feeds a whole tuple through the per-field collectors,
// restricted to the supplied fields (nil means all fields of the schema).
// It also accumulates record count and encoded byte size.
func (d *DatasetStats) ObserveTuple(sch *types.Schema, t types.Tuple, only map[string]bool) {
	d.ObserveTupleSized(sch, t, only, int64(t.EncodedSize()))
}

// ObserveTupleSized is ObserveTuple for callers that already computed the
// tuple's encoded size (bulk loads size rows once for both the partition
// size cache and statistics, instead of walking EncodedSize twice).
func (d *DatasetStats) ObserveTupleSized(sch *types.Schema, t types.Tuple, only map[string]bool, encSize int64) {
	d.RecordCount++
	d.ByteSize += encSize
	for i, f := range sch.Fields {
		if only != nil && !only[f.Name] {
			continue
		}
		d.Field(f.Name).Observe(t[i])
	}
}

// Merge folds other's counters and field sketches into d.
func (d *DatasetStats) Merge(other *DatasetStats) {
	if other == nil {
		return
	}
	d.RecordCount += other.RecordCount
	d.ByteSize += other.ByteSize
	for name, fs := range other.Fields {
		d.Field(name).Merge(fs)
	}
}

// AvgRowBytes returns the mean encoded row width (>=1).
func (d *DatasetStats) AvgRowBytes() int64 {
	if d.RecordCount == 0 {
		return 1
	}
	w := d.ByteSize / d.RecordCount
	if w < 1 {
		w = 1
	}
	return w
}

// String renders the summary for debugging / EXPERIMENTS.md dumps.
func (d *DatasetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: rows=%d bytes=%d", d.Name, d.RecordCount, d.ByteSize)
	names := make([]string, 0, len(d.Fields))
	for n := range d.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fs := d.Fields[n]
		fmt.Fprintf(&b, "\n  %s: count=%d distinct=%d nulls=%d", n, fs.Count, fs.DistinctCount(), fs.Nulls)
	}
	return b.String()
}

// Registry is the thread-safe catalog of dataset statistics shared by the
// ingestion path, the online-statistics sinks, and the planners.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*DatasetStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: map[string]*DatasetStats{}}
}

// Put installs (replacing) the statistics for a dataset.
func (r *Registry) Put(d *DatasetStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sets[d.Name] = d
}

// Get returns the statistics for a dataset, or nil when unknown.
func (r *Registry) Get(name string) *DatasetStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sets[name]
}

// Drop removes a dataset's statistics (temp cleanup).
func (r *Registry) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sets, name)
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sets))
	for n := range r.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a registry sharing the same (immutable once published)
// DatasetStats pointers. Strategies that overwrite stats (pilot runs) should
// Put fresh DatasetStats rather than mutate shared ones.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := NewRegistry()
	for n, d := range r.sets {
		out.sets[n] = d
	}
	return out
}
