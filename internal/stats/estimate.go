package stats

import (
	"math"
)

// Selinger default selectivities ([28], used when an optimizer has no usable
// statistics — UDFs, parameters, or missing histograms). The dynamic
// optimizer never needs them because it executes such predicates first; the
// static cost-based baseline does.
const (
	DefaultEqSelectivity   = 1.0 / 10
	DefaultIneqSelectivity = 1.0 / 3
	DefaultUDFSelectivity  = 1.0 / 10
)

// JoinCardinality implements formula (1) of §4:
//
//	|A ⋈k B| = S(A) · S(B) / max(U(A.k), U(B.k))
//
// where S is the qualified record count immediately before the join and U is
// the distinct count of the join key. Composite keys pass the max of the
// per-field distinct products, capped at the input sizes (the standard
// System-R generalization).
func JoinCardinality(sizeA, sizeB int64, distinctA, distinctB int64) int64 {
	if sizeA <= 0 || sizeB <= 0 {
		return 0
	}
	den := distinctA
	if distinctB > den {
		den = distinctB
	}
	if den < 1 {
		den = 1
	}
	est := float64(sizeA) * float64(sizeB) / float64(den)
	if est < 0 || est > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	if est < 1 {
		// A join between non-empty inputs is estimated at >= 1 so orderings
		// remain comparable.
		return 1
	}
	return int64(est)
}

// CompositeDistinct combines per-field distinct counts of a composite join
// key, capped at the relation size: distinct(k1,k2,..) <= min(prod d_i, S).
func CompositeDistinct(size int64, distincts []int64) int64 {
	if len(distincts) == 0 {
		return 1
	}
	prod := int64(1)
	for _, d := range distincts {
		if d < 1 {
			d = 1
		}
		if prod > size && size > 0 {
			prod = size
			break
		}
		// Saturating multiply.
		if d != 0 && prod > math.MaxInt64/d {
			prod = math.MaxInt64
			break
		}
		prod *= d
	}
	if size > 0 && prod > size {
		prod = size
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// RangeOp enumerates the comparison shapes the histogram estimator supports.
type RangeOp int

// Comparison shapes.
const (
	OpEq RangeOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
)

// EstimateSelectivity estimates the fraction of a field's rows satisfying a
// comparison against fixed value(s), using the field's equi-height histogram
// (GK sketch). Falls back to Selinger defaults when the field has no numeric
// histogram. Returned selectivity is clamped to [0, 1].
func EstimateSelectivity(fs *FieldStats, op RangeOp, lo, hi float64) float64 {
	if fs == nil || fs.Count == 0 {
		return defaultFor(op)
	}
	if !fs.Numeric() {
		return defaultFor(op)
	}
	n := float64(fs.Count)
	var matched float64
	switch op {
	case OpEq:
		est := fs.Quantiles.EstimateEquals(lo)
		// Never estimate below the uniform-distinct floor; equality on a
		// key column should estimate ~1 row, not 0.
		floor := n / float64(maxI64(fs.DistinctCount(), 1))
		matched = math.Max(float64(est), math.Min(floor, n))
	case OpNe:
		return clamp01(1 - EstimateSelectivity(fs, OpEq, lo, hi))
	case OpLt:
		matched = float64(fs.Quantiles.EstimateRange(math.Inf(-1), math.Nextafter(lo, math.Inf(-1))))
	case OpLe:
		matched = float64(fs.Quantiles.EstimateRange(math.Inf(-1), lo))
	case OpGt:
		matched = float64(fs.Quantiles.EstimateRange(math.Nextafter(lo, math.Inf(1)), math.Inf(1)))
	case OpGe:
		matched = float64(fs.Quantiles.EstimateRange(lo, math.Inf(1)))
	case OpBetween:
		matched = float64(fs.Quantiles.EstimateRange(lo, hi))
	default:
		return defaultFor(op)
	}
	return clamp01(matched / n)
}

func defaultFor(op RangeOp) float64 {
	switch op {
	case OpEq:
		return DefaultEqSelectivity
	case OpNe:
		return 1 - DefaultEqSelectivity
	default:
		return DefaultIneqSelectivity
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
