package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dynopt/internal/types"
)

func TestJoinCardinalityFormula(t *testing.T) {
	cases := []struct {
		sa, sb, da, db int64
		want           int64
	}{
		// |A|*|B|/max(U(A.k),U(B.k))
		{1000, 500, 1000, 100, 500}, // PK/FK: |B| survives
		{1000, 500, 100, 500, 1000}, // FK side bigger distinct
		{100, 100, 10, 10, 1000},    // many-to-many blowup
		{0, 100, 1, 1, 0},           // empty input
		{100, 0, 1, 1, 0},           // empty input
		{10, 10, 0, 0, 100},         // degenerate distincts clamp to 1
		{1, 1, 1000000, 1000000, 1}, // floor at 1
	}
	for _, c := range cases {
		if got := JoinCardinality(c.sa, c.sb, c.da, c.db); got != c.want {
			t.Errorf("JoinCardinality(%d,%d,%d,%d) = %d, want %d",
				c.sa, c.sb, c.da, c.db, got, c.want)
		}
	}
}

func TestJoinCardinalityOverflowSaturates(t *testing.T) {
	got := JoinCardinality(math.MaxInt64/4, math.MaxInt64/4, 1, 1)
	if got != math.MaxInt64/2 {
		t.Errorf("overflow result = %d", got)
	}
}

func TestJoinCardinalitySymmetryProperty(t *testing.T) {
	f := func(sa, sb, da, db int32) bool {
		a, b := int64(abs32(sa))+1, int64(abs32(sb))+1
		x, y := int64(abs32(da))+1, int64(abs32(db))+1
		return JoinCardinality(a, b, x, y) == JoinCardinality(b, a, y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		if x == math.MinInt32 {
			return math.MaxInt32
		}
		return -x
	}
	return x
}

func TestCompositeDistinct(t *testing.T) {
	cases := []struct {
		size int64
		ds   []int64
		want int64
	}{
		{1000, []int64{10, 10}, 100},
		{50, []int64{10, 10}, 50}, // capped at relation size
		{1000, nil, 1},            // no keys
		{1000, []int64{0}, 1},     // degenerate distinct
		{0, []int64{5}, 5},        // unknown size: no cap
	}
	for _, c := range cases {
		if got := CompositeDistinct(c.size, c.ds); got != c.want {
			t.Errorf("CompositeDistinct(%d,%v) = %d, want %d", c.size, c.ds, got, c.want)
		}
	}
}

func TestCompositeDistinctSaturation(t *testing.T) {
	got := CompositeDistinct(0, []int64{math.MaxInt64 / 2, math.MaxInt64 / 2})
	if got != math.MaxInt64 {
		t.Errorf("saturating product = %d", got)
	}
}

func uniformField(n, distinct int) *FieldStats {
	fs := NewFieldStats()
	for i := 0; i < n; i++ {
		fs.Observe(types.Int(int64(i % distinct)))
	}
	return fs
}

func TestEstimateSelectivityRangeShapes(t *testing.T) {
	fs := uniformField(10000, 10000) // values 0..9999 uniform
	cases := []struct {
		op     RangeOp
		lo, hi float64
		want   float64
		tol    float64
	}{
		{OpLt, 5000, 0, 0.5, 0.05},
		{OpLe, 4999, 0, 0.5, 0.05},
		{OpGt, 5000, 0, 0.5, 0.05},
		{OpGe, 5000, 0, 0.5, 0.05},
		{OpBetween, 2500, 7499, 0.5, 0.05},
		{OpBetween, 0, 9999, 1.0, 0.05},
		{OpEq, 42, 0, 1.0 / 10000, 0.01},
	}
	for _, c := range cases {
		got := EstimateSelectivity(fs, c.op, c.lo, c.hi)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("op=%v lo=%v hi=%v: sel=%v want %v±%v", c.op, c.lo, c.hi, got, c.want, c.tol)
		}
	}
}

func TestEstimateSelectivitySkewedEquality(t *testing.T) {
	fs := NewFieldStats()
	for i := 0; i < 9000; i++ {
		fs.Observe(types.Int(7))
	}
	for i := 0; i < 1000; i++ {
		fs.Observe(types.Int(int64(100 + i)))
	}
	got := EstimateSelectivity(fs, OpEq, 7, 0)
	if got < 0.5 {
		t.Errorf("skewed OpEq selectivity = %v, want high (~0.9)", got)
	}
	// Independence-assuming default would have said 1/10 — this is the gap
	// the dynamic approach exploits.
}

func TestEstimateSelectivityDefaults(t *testing.T) {
	if got := EstimateSelectivity(nil, OpEq, 1, 0); got != DefaultEqSelectivity {
		t.Errorf("nil stats OpEq = %v", got)
	}
	if got := EstimateSelectivity(nil, OpLt, 1, 0); got != DefaultIneqSelectivity {
		t.Errorf("nil stats OpLt = %v", got)
	}
	if got := EstimateSelectivity(nil, OpNe, 1, 0); got != 1-DefaultEqSelectivity {
		t.Errorf("nil stats OpNe = %v", got)
	}
	// String field: no histogram, defaults apply.
	fs := NewFieldStats()
	fs.Observe(types.Str("a"))
	if got := EstimateSelectivity(fs, OpEq, 1, 0); got != DefaultEqSelectivity {
		t.Errorf("string field OpEq = %v", got)
	}
	// Empty field.
	if got := EstimateSelectivity(NewFieldStats(), OpGt, 1, 0); got != DefaultIneqSelectivity {
		t.Errorf("empty field OpGt = %v", got)
	}
}

func TestEstimateSelectivityNeComplement(t *testing.T) {
	fs := uniformField(1000, 10)
	eq := EstimateSelectivity(fs, OpEq, 3, 0)
	ne := EstimateSelectivity(fs, OpNe, 3, 0)
	if math.Abs(eq+ne-1) > 1e-9 {
		t.Errorf("eq=%v ne=%v don't complement", eq, ne)
	}
}

func TestEstimateSelectivityClamped(t *testing.T) {
	fs := uniformField(100, 100)
	for _, op := range []RangeOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpBetween} {
		got := EstimateSelectivity(fs, op, -1e18, 1e18)
		if got < 0 || got > 1 {
			t.Errorf("op=%v selectivity %v out of [0,1]", op, got)
		}
	}
}
