package stats

import (
	"strings"
	"testing"

	"dynopt/internal/types"
)

func fpRegistry(rows int64) *Registry {
	reg := NewRegistry()
	d := NewDatasetStats("users")
	sch := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "grp", Kind: types.KindInt},
	)
	for i := int64(0); i < rows; i++ {
		d.ObserveTuple(sch, types.Tuple{types.Int(i), types.Int(i % 8)}, nil)
	}
	reg.Put(d)
	return reg
}

func fpFields() map[string]map[string]bool {
	return map[string]map[string]bool{"users": {"id": true, "grp": true}}
}

func TestFingerprintFreshNotStale(t *testing.T) {
	reg := fpRegistry(1000)
	fp := FingerprintOf(reg, fpFields())
	if fp["users"].Rows != 1000 {
		t.Fatalf("rows = %d", fp["users"].Rows)
	}
	if fp["users"].FieldDistinct["grp"] == 0 {
		t.Fatal("no distinct recorded for grp")
	}
	if reason, stale := fp.Stale(reg, 0); stale {
		t.Errorf("fresh fingerprint reads stale: %s", reason)
	}
}

func TestFingerprintStaleOnRowDrift(t *testing.T) {
	fp := FingerprintOf(fpRegistry(1000), fpFields())
	reason, stale := fp.Stale(fpRegistry(2000), 0)
	if !stale {
		t.Fatal("2x row drift not detected")
	}
	if !strings.Contains(reason, "rows") {
		t.Errorf("reason = %q", reason)
	}
	// Within tolerance: 3% drift at default 5% tolerance.
	if reason, stale := fp.Stale(fpRegistry(1030), 0); stale {
		t.Errorf("3%% drift read stale: %s", reason)
	}
}

func TestFingerprintStaleOnDistinctDrift(t *testing.T) {
	fp := FingerprintOf(fpRegistry(1000), fpFields())
	// Same row count, but grp now spans 1000 distincts instead of 8.
	reg := NewRegistry()
	d := NewDatasetStats("users")
	sch := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "grp", Kind: types.KindInt},
	)
	for i := int64(0); i < 1000; i++ {
		d.ObserveTuple(sch, types.Tuple{types.Int(i), types.Int(i)}, nil)
	}
	// Compensate byte drift: same schema and kinds keep sizes equal.
	reg.Put(d)
	reason, stale := fp.Stale(reg, 0)
	if !stale {
		t.Fatal("distinct drift not detected")
	}
	if !strings.Contains(reason, "grp") {
		t.Errorf("reason = %q", reason)
	}
}

func TestFingerprintStaleOnVanish(t *testing.T) {
	fp := FingerprintOf(fpRegistry(1000), fpFields())
	if _, stale := fp.Stale(NewRegistry(), 0); !stale {
		t.Error("vanished statistics not detected")
	}
	// A fingerprint taken over an empty registry is not stale against one.
	empty := FingerprintOf(NewRegistry(), fpFields())
	if reason, stale := empty.Stale(NewRegistry(), 0); stale {
		t.Errorf("empty-over-empty reads stale: %s", reason)
	}
}
