package stats

import (
	"strconv"
	"strings"
	"testing"

	"dynopt/internal/types"
)

func TestFieldStatsObserve(t *testing.T) {
	fs := NewFieldStats()
	for i := 0; i < 1000; i++ {
		fs.Observe(types.Int(int64(i % 100)))
	}
	fs.Observe(types.Null())
	if fs.Count != 1000 {
		t.Errorf("Count = %d", fs.Count)
	}
	if fs.Nulls != 1 {
		t.Errorf("Nulls = %d", fs.Nulls)
	}
	d := fs.DistinctCount()
	if d < 95 || d > 105 {
		t.Errorf("DistinctCount = %d, want ~100", d)
	}
	if !fs.Numeric() {
		t.Error("Numeric() = false for int field")
	}
}

func TestFieldStatsStringsNotNumeric(t *testing.T) {
	fs := NewFieldStats()
	for i := 0; i < 50; i++ {
		fs.Observe(types.Str("v" + strconv.Itoa(i)))
	}
	if fs.Numeric() {
		t.Error("Numeric() = true for string field")
	}
	if d := fs.DistinctCount(); d < 45 || d > 55 {
		t.Errorf("DistinctCount = %d", d)
	}
}

func TestFieldStatsMerge(t *testing.T) {
	a, b := NewFieldStats(), NewFieldStats()
	for i := 0; i < 500; i++ {
		a.Observe(types.Int(int64(i)))
		b.Observe(types.Int(int64(i + 500)))
	}
	a.Merge(b)
	if a.Count != 1000 {
		t.Errorf("merged Count = %d", a.Count)
	}
	d := a.DistinctCount()
	if d < 950 || d > 1050 {
		t.Errorf("merged DistinctCount = %d", d)
	}
	a.Merge(nil)
	if a.Count != 1000 {
		t.Error("Merge(nil) changed count")
	}
}

func TestDatasetStatsObserveTuple(t *testing.T) {
	sch := types.NewSchema(
		types.Field{Qualifier: "o", Name: "k", Kind: types.KindInt},
		types.Field{Qualifier: "o", Name: "s", Kind: types.KindString},
	)
	ds := NewDatasetStats("orders")
	for i := 0; i < 100; i++ {
		ds.ObserveTuple(sch, types.Tuple{types.Int(int64(i)), types.Str("x")}, nil)
	}
	if ds.RecordCount != 100 {
		t.Errorf("RecordCount = %d", ds.RecordCount)
	}
	if ds.ByteSize != 100*(9+2) {
		t.Errorf("ByteSize = %d", ds.ByteSize)
	}
	if ds.Field("k").Count != 100 || ds.Field("s").Count != 100 {
		t.Error("field counts wrong")
	}
	if ds.AvgRowBytes() != 11 {
		t.Errorf("AvgRowBytes = %d", ds.AvgRowBytes())
	}
}

func TestDatasetStatsObserveTupleRestricted(t *testing.T) {
	sch := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt},
		types.Field{Name: "b", Kind: types.KindInt},
	)
	ds := NewDatasetStats("t")
	only := map[string]bool{"a": true}
	ds.ObserveTuple(sch, types.Tuple{types.Int(1), types.Int(2)}, only)
	if ds.Field("a").Count != 1 {
		t.Error("restricted field not observed")
	}
	if fs, ok := ds.Fields["b"]; ok && fs.Count != 0 {
		t.Error("excluded field was observed")
	}
}

func TestDatasetStatsMergeAndString(t *testing.T) {
	a, b := NewDatasetStats("d"), NewDatasetStats("d")
	sch := types.NewSchema(types.Field{Name: "x", Kind: types.KindInt})
	a.ObserveTuple(sch, types.Tuple{types.Int(1)}, nil)
	b.ObserveTuple(sch, types.Tuple{types.Int(2)}, nil)
	a.Merge(b)
	a.Merge(nil)
	if a.RecordCount != 2 {
		t.Errorf("RecordCount = %d", a.RecordCount)
	}
	if s := a.String(); !strings.Contains(s, "rows=2") || !strings.Contains(s, "x:") {
		t.Errorf("String() = %q", s)
	}
}

func TestDatasetStatsAvgRowBytesEmpty(t *testing.T) {
	if NewDatasetStats("e").AvgRowBytes() != 1 {
		t.Error("empty AvgRowBytes != 1")
	}
}

func TestRegistryPutGetDropNames(t *testing.T) {
	r := NewRegistry()
	if r.Get("a") != nil {
		t.Error("Get on empty registry != nil")
	}
	r.Put(NewDatasetStats("b"))
	r.Put(NewDatasetStats("a"))
	if r.Get("a") == nil || r.Get("b") == nil {
		t.Error("Get after Put failed")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	r.Drop("a")
	if r.Get("a") != nil {
		t.Error("Drop did not remove")
	}
}

func TestRegistryClone(t *testing.T) {
	r := NewRegistry()
	r.Put(NewDatasetStats("x"))
	c := r.Clone()
	c.Put(NewDatasetStats("y"))
	if r.Get("y") != nil {
		t.Error("Clone shares map with original")
	}
	if c.Get("x") == nil {
		t.Error("Clone lost entries")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				r.Put(NewDatasetStats("d" + strconv.Itoa(g)))
				r.Get("d0")
				r.Names()
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
