package stats

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dynopt/internal/sketch"
)

// Binary codec for DatasetStats — the statistics sidecar of a paged dataset.
// Ingestion-time sketches are serialized at conversion and registered
// verbatim on paged open, so the planner sees byte-identical statistics (and
// produces identical plans and counters) whether a dataset is resident or
// paged. Field order is sorted for deterministic output.

const statsMaxFields = 1 << 16

// Encode appends the dataset statistics to dst.
func (d *DatasetStats) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Name)))
	dst = append(dst, d.Name...)
	dst = binary.AppendUvarint(dst, uint64(d.RecordCount))
	dst = binary.AppendUvarint(dst, uint64(d.ByteSize))
	names := make([]string, 0, len(d.Fields))
	for n := range d.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		fs := d.Fields[n]
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
		dst = binary.AppendUvarint(dst, uint64(fs.Count))
		dst = binary.AppendUvarint(dst, uint64(fs.Nulls))
		dst = binary.AppendUvarint(dst, uint64(fs.DistinctOverride))
		numeric := byte(0)
		if fs.numeric {
			numeric = 1
		}
		dst = append(dst, numeric)
		dst = fs.Quantiles.Encode(dst)
		dst = fs.Distinct.Encode(dst)
	}
	return dst
}

// DecodeDatasetStats decodes statistics encoded by Encode from the front of
// src, returning the stats and the bytes consumed.
func DecodeDatasetStats(src []byte) (*DatasetStats, int, error) {
	name, off, err := decodeString(src, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("stats: dataset name: %w", err)
	}
	d := NewDatasetStats(name)
	rc, m := binary.Uvarint(src[off:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("stats: bad record count")
	}
	off += m
	bs, m := binary.Uvarint(src[off:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("stats: bad byte size")
	}
	off += m
	d.RecordCount, d.ByteSize = int64(rc), int64(bs)
	nf, m := binary.Uvarint(src[off:])
	if m <= 0 || nf > statsMaxFields {
		return nil, 0, fmt.Errorf("stats: bad field count %d", nf)
	}
	off += m
	for i := uint64(0); i < nf; i++ {
		fname, n, err := decodeString(src, off)
		if err != nil {
			return nil, 0, fmt.Errorf("stats: field %d name: %w", i, err)
		}
		off = n
		fs := &FieldStats{}
		cnt, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("stats: field %q count", fname)
		}
		off += m
		nulls, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("stats: field %q nulls", fname)
		}
		off += m
		ovr, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("stats: field %q override", fname)
		}
		off += m
		if off >= len(src) {
			return nil, 0, fmt.Errorf("stats: field %q truncated numeric flag", fname)
		}
		fs.Count, fs.Nulls, fs.DistinctOverride = int64(cnt), int64(nulls), int64(ovr)
		fs.numeric = src[off] == 1
		off++
		gk, n2, err := sketch.DecodeGK(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stats: field %q quantiles: %w", fname, err)
		}
		off += n2
		hll, n3, err := sketch.DecodeHLL(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stats: field %q distincts: %w", fname, err)
		}
		off += n3
		fs.Quantiles, fs.Distinct = gk, hll
		d.Fields[fname] = fs
	}
	return d, off, nil
}

func decodeString(src []byte, off int) (string, int, error) {
	n, m := binary.Uvarint(src[off:])
	if m <= 0 || n > uint64(len(src)-off-m) {
		return "", 0, fmt.Errorf("bad string length")
	}
	off += m
	return string(src[off : off+int(n)]), off + int(n), nil
}
