package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dynopt/internal/core"
	"dynopt/internal/expr"
	"dynopt/internal/types"
)

// VectorMicro is one scalar-vs-vector substrate measurement: the same work
// (predicate evaluation or join-key prehashing) over the same rows, once
// through the row-at-a-time scalar path and once through the columnar
// kernels — gather cost included, since the scan pays it per window.
type VectorMicro struct {
	Name           string  `json:"name"`
	Rows           int     `json:"rows"`
	Selectivity    float64 `json:"selectivity,omitempty"` // live fraction (filter micros)
	ScalarNsPerRow float64 `json:"scalar_ns_per_row"`
	VectorNsPerRow float64 `json:"vector_ns_per_row"`
	Speedup        float64 `json:"speedup"` // scalar / vector
}

// VectorE2EPoint is one Figure-7 query run end-to-end on the streaming
// pipeline with column-major execution ablated (Context.NoVec) and enabled,
// with identical rows and counters required across the two — the delta is
// what the kernels and the columnar prehash buy on a whole query.
type VectorE2EPoint struct {
	Query            string  `json:"query"`
	SF               int     `json:"sf"`
	Nodes            int     `json:"nodes"`
	Runs             int     `json:"runs"`
	Rows             int64   `json:"rows"`
	ScalarMedianMs   float64 `json:"scalar_median_ms"` // NoVec streaming
	VectorMedianMs   float64 `json:"vector_median_ms"` // default streaming
	ImprovementPct   float64 `json:"improvement_pct"`  // (scalar-vector)/scalar × 100
	ScalarAllocBytes int64   `json:"scalar_alloc_bytes"`
	VectorAllocBytes int64   `json:"vector_alloc_bytes"`
}

// VectorReport is the BENCH_vector.json snapshot.
type VectorReport struct {
	WindowRows   int              `json:"window_rows"` // micro chunk capacity
	FilterMicros []VectorMicro    `json:"filter_micros"`
	HashMicros   []VectorMicro    `json:"hash_micros"`
	E2E          []VectorE2EPoint `json:"e2e"`
}

// vecBenchRows builds the micro-benchmark table: int, float, and string
// columns with realistic value ranges and no NULLs (NULL handling is priced
// by the property tests; the micros measure the steady-state loops).
func vecBenchRows(n int) ([]types.Tuple, *types.Schema) {
	sch := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt},
		types.Field{Name: "b", Kind: types.KindInt},
		types.Field{Name: "f", Kind: types.KindFloat},
		types.Field{Name: "s", Kind: types.KindString},
	)
	words := []string{"alder", "birch", "cedar", "elm", "fir", "maple", "oak", "pine", "rowan", "spruce"}
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{
			types.Int(int64(i % 1000)),
			types.Int(int64((i * 7) % 997)),
			types.Float(float64(i%1000) / 1000),
			types.Str(words[i%len(words)]),
		}
	}
	return rows, sch
}

// nsPerRow times fn (which must process every row once per call) and
// normalizes to per-row cost.
func nsPerRow(rows int, fn func() error) (float64, error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return 0, benchErr
	}
	return float64(r.T.Nanoseconds()) / float64(r.N) / float64(rows), nil
}

// FilterMicros prices the vectorized predicate kernels against the compiled
// scalar path over window-at-a-time evaluation, exactly as the streaming
// scan runs them: the vector side pays ColCache gather + kernel, the scalar
// side pays one compiled-closure call per row. Both produce the same
// selection vectors.
func FilterMicros(rows, window int) ([]VectorMicro, error) {
	data, sch := vecBenchRows(rows)
	env := &expr.Env{Schema: sch, Params: map[string]types.Value{}, UDFs: expr.NewRegistry()}
	col := func(n string) expr.Expr { return &expr.Column{Name: n} }
	cases := []struct {
		name string
		e    expr.Expr
	}{
		{"int-lt", &expr.Compare{Op: expr.CmpLt, L: col("a"), R: &expr.Literal{Val: types.Int(500)}}},
		{"int-between", &expr.Between{X: col("b"), Lo: &expr.Literal{Val: types.Int(100)}, Hi: &expr.Literal{Val: types.Int(400)}}},
		{"float-lt", &expr.Compare{Op: expr.CmpLt, L: col("f"), R: &expr.Literal{Val: types.Float(0.25)}}},
		{"str-ge", &expr.Compare{Op: expr.CmpGe, L: col("s"), R: &expr.Literal{Val: types.Str("maple")}}},
		{"and-int-float", &expr.And{Kids: []expr.Expr{
			&expr.Compare{Op: expr.CmpGe, L: col("a"), R: &expr.Literal{Val: types.Int(200)}},
			&expr.Compare{Op: expr.CmpLt, L: col("f"), R: &expr.Literal{Val: types.Float(0.8)}},
		}}},
		{"or-int-str", &expr.Or{Kids: []expr.Expr{
			&expr.Compare{Op: expr.CmpLt, L: col("a"), R: &expr.Literal{Val: types.Int(100)}},
			&expr.Compare{Op: expr.CmpEq, L: col("s"), R: &expr.Literal{Val: types.Str("oak")}},
		}}},
	}
	out := make([]VectorMicro, 0, len(cases))
	cache := types.NewColCache(sch)
	sel := make([]int32, window)
	for _, c := range cases {
		pred, err := expr.Compile(c.e, env)
		if err != nil {
			return nil, err
		}
		kern, ok, err := expr.CompileVec(c.e, env)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("bench: %s did not vectorize", c.name)
		}
		live := 0
		scalarPass := func() error {
			live = 0
			for off := 0; off < len(data); off += window {
				end := off + window
				if end > len(data) {
					end = len(data)
				}
				win := data[off:end]
				out := sel[:0]
				for i, t := range win {
					v, err := pred(t)
					if err != nil {
						return err
					}
					if v.IsTrue() {
						out = append(out, int32(i))
					}
				}
				live += len(out)
			}
			return nil
		}
		vectorPass := func() error {
			live = 0
			for off := 0; off < len(data); off += window {
				end := off + window
				if end > len(data) {
					end = len(data)
				}
				win := data[off:end]
				cache.SetWindow(win)
				s := sel[:len(win)]
				for i := range s {
					s[i] = int32(i)
				}
				s, err := kern(win, cache, s)
				if err != nil {
					return err
				}
				live += len(s)
			}
			return nil
		}
		// Correctness cross-check before timing: identical live counts.
		if err := scalarPass(); err != nil {
			return nil, err
		}
		scalarLive := live
		if err := vectorPass(); err != nil {
			return nil, err
		}
		if live != scalarLive {
			return nil, fmt.Errorf("bench: %s live diverged: scalar %d vector %d", c.name, scalarLive, live)
		}
		m := VectorMicro{Name: c.name, Rows: rows, Selectivity: float64(live) / float64(rows)}
		if m.ScalarNsPerRow, err = nsPerRow(rows, scalarPass); err != nil {
			return nil, err
		}
		if m.VectorNsPerRow, err = nsPerRow(rows, vectorPass); err != nil {
			return nil, err
		}
		if m.VectorNsPerRow > 0 {
			m.Speedup = m.ScalarNsPerRow / m.VectorNsPerRow
		}
		out = append(out, m)
	}
	return out, nil
}

// HashMicros prices the columnar join-key prehash (gather + HashColsInto)
// against row-at-a-time Tuple.HashKeys, over the key-arity shapes the
// exchanges and joins actually hash.
func HashMicros(rows, window int) ([]VectorMicro, error) {
	data, sch := vecBenchRows(rows)
	cases := []struct {
		name string
		keys []int
	}{
		{"hash-1key-int", []int{0}},
		{"hash-2key-int-int", []int{0, 1}},
		{"hash-2key-int-str", []int{0, 3}},
	}
	out := make([]VectorMicro, 0, len(cases))
	cache := types.NewColCache(sch)
	var dst []uint64
	vecs := make([]*types.ColVec, 0, 2)
	for _, c := range cases {
		rowPass := func() error {
			for off := 0; off < len(data); off += window {
				end := off + window
				if end > len(data) {
					end = len(data)
				}
				dst = types.HashKeysInto(data[off:end], c.keys, dst)
			}
			return nil
		}
		colPass := func() error {
			for off := 0; off < len(data); off += window {
				end := off + window
				if end > len(data) {
					end = len(data)
				}
				win := data[off:end]
				cache.SetWindow(win)
				vecs = vecs[:0]
				for _, k := range c.keys {
					v := cache.Col(k)
					if v.Mixed {
						return fmt.Errorf("bench: %s: unexpected mixed column %d", c.name, k)
					}
					vecs = append(vecs, v)
				}
				dst = types.HashColsInto(vecs, nil, len(win), dst)
			}
			return nil
		}
		m := VectorMicro{Name: c.name, Rows: rows}
		var err error
		if m.ScalarNsPerRow, err = nsPerRow(rows, rowPass); err != nil {
			return nil, err
		}
		if m.VectorNsPerRow, err = nsPerRow(rows, colPass); err != nil {
			return nil, err
		}
		if m.VectorNsPerRow > 0 {
			m.Speedup = m.ScalarNsPerRow / m.VectorNsPerRow
		}
		out = append(out, m)
	}
	return out, nil
}

// VectorE2E runs the Figure-7 queries on the streaming pipeline with
// column-major execution off (Context.NoVec) and on, alternating modes,
// requiring identical rows and counters — the ablation form of
// PipelineCompare.
func VectorE2E(sf, nodes, runs int) ([]VectorE2EPoint, error) {
	if runs < 1 {
		runs = 1
	}
	env, err := NewEnv(sf, nodes, false)
	if err != nil {
		return nil, err
	}
	out := make([]VectorE2EPoint, 0, 4)
	for _, q := range Queries() {
		pt := VectorE2EPoint{Query: q.Name, SF: sf, Nodes: nodes, Runs: runs}
		var wall [2][]float64 // [scalar (NoVec), vector] ms per run
		var alloc [2][]int64
		var refRows []string
		var refCounters any
		for r := -1; r < runs; r++ {
			for mode := 0; mode < 2; mode++ {
				env.NoVec = mode == 0
				runtime.GC()
				var msBefore, msAfter runtime.MemStats
				runtime.ReadMemStats(&msBefore)
				start := time.Now()
				res, rep, err := env.RunOneResult(core.NewDynamic(), q.SQL)
				elapsed := time.Since(start)
				runtime.ReadMemStats(&msAfter)
				if err != nil {
					return nil, err
				}
				if r >= 0 {
					wall[mode] = append(wall[mode], float64(elapsed.Microseconds())/1000)
					alloc[mode] = append(alloc[mode], int64(msAfter.TotalAlloc-msBefore.TotalAlloc))
				}
				rows := make([]string, len(res.Rows))
				for i, t := range res.Rows {
					rows[i] = t.String()
				}
				if refRows == nil {
					refRows, refCounters = rows, rep.Counters
					pt.Rows = int64(len(rows))
					continue
				}
				if !reflect.DeepEqual(rows, refRows) {
					return nil, fmt.Errorf("bench: %s rows diverged with NoVec=%v (run %d)", q.Name, env.NoVec, r)
				}
				if !reflect.DeepEqual(rep.Counters, refCounters) {
					return nil, fmt.Errorf("bench: %s counters diverged with NoVec=%v (run %d):\n got %+v\nwant %+v",
						q.Name, env.NoVec, r, rep.Counters, refCounters)
				}
			}
		}
		env.NoVec = false
		pt.ScalarMedianMs = medianF(wall[0])
		pt.VectorMedianMs = medianF(wall[1])
		pt.ScalarAllocBytes = medianI(alloc[0])
		pt.VectorAllocBytes = medianI(alloc[1])
		if pt.ScalarMedianMs > 0 {
			pt.ImprovementPct = 100 * (pt.ScalarMedianMs - pt.VectorMedianMs) / pt.ScalarMedianMs
		}
		out = append(out, pt)
	}
	return out, nil
}

// VectorCompare assembles the full vectorization report: substrate micros at
// the default chunk capacity plus the Figure-7 end-to-end ablation. The micro
// table is sized cache-resident (16K rows ≈ 2.5MB with payloads): the micros
// price kernel dispatch against per-row scalar dispatch — the quantity the
// vectorized path actually changes — and a DRAM-latency-bound working set
// would charge the same pointer-chase stall to both arms and compress the
// ratio toward 1. In the pipeline a chunk is consumed right after its
// producer touched it, so cache-hot is also the representative state.
func VectorCompare(sf, nodes, runs int) (*VectorReport, error) {
	const microRows, window = 16384, 1024
	rep := &VectorReport{WindowRows: window}
	var err error
	if rep.FilterMicros, err = FilterMicros(microRows, window); err != nil {
		return nil, err
	}
	if rep.HashMicros, err = HashMicros(microRows, window); err != nil {
		return nil, err
	}
	if rep.E2E, err = VectorE2E(sf, nodes, runs); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteVectorJSON runs VectorCompare and writes the BENCH_vector.json
// snapshot to path.
func WriteVectorJSON(path string, sf, nodes, runs int) (*VectorReport, error) {
	rep, err := VectorCompare(sf, nodes, runs)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
