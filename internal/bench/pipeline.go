package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"dynopt/internal/core"
)

// PipelinePoint is one query of the streaming-pipeline comparison: the
// dynamic strategy executed end-to-end in whole-relation batch mode (the
// pre-pipeline execution spine, kept as the reference implementation) and
// in chunked streaming mode, on identical data. Both modes must produce
// identical result rows and identical Metrics.Counters — a divergence is an
// error, so the bench doubles as an acceptance check in CI. The wall-clock
// and allocation deltas are the pipeline's win: same metered work, fewer
// passes over it.
type PipelinePoint struct {
	Query            string  `json:"query"`
	SF               int     `json:"sf"`
	Nodes            int     `json:"nodes"`
	Runs             int     `json:"runs"`
	Rows             int64   `json:"rows"`               // result rows (identical across modes)
	BatchMedianMs    float64 `json:"batch_median_ms"`    // whole-relation reference
	StreamMedianMs   float64 `json:"stream_median_ms"`   // chunked pipeline
	ImprovementPct   float64 `json:"improvement_pct"`    // (batch-stream)/batch × 100
	BatchAllocBytes  int64   `json:"batch_alloc_bytes"`  // median bytes allocated per run
	StreamAllocBytes int64   `json:"stream_alloc_bytes"` // median bytes allocated per run
	AllocSavedPct    float64 `json:"alloc_saved_pct"`
}

// PipelineCompare runs the Figure-7 evaluation queries through the dynamic
// strategy in both execution modes, runs times each (alternating modes so
// neither benefits from cache warm-up order), and reports per-query medians.
func PipelineCompare(sf, nodes, runs int) ([]PipelinePoint, error) {
	if runs < 1 {
		runs = 1
	}
	env, err := NewEnv(sf, nodes, false)
	if err != nil {
		return nil, err
	}
	out := make([]PipelinePoint, 0, 4)
	for _, q := range Queries() {
		pt := PipelinePoint{Query: q.Name, SF: sf, Nodes: nodes, Runs: runs}
		var wall [2][]float64 // [batch, stream] ms per run
		var alloc [2][]int64
		var refRows []string
		var refCounters any
		for r := -1; r < runs; r++ {
			for mode := 0; mode < 2; mode++ {
				env.Batch = mode == 0
				// A GC barrier before each timed run keeps the previous
				// run's collection debt from being charged to this one, and
				// run -1 is an untimed warm-up per mode.
				runtime.GC()
				var msBefore, msAfter runtime.MemStats
				runtime.ReadMemStats(&msBefore)
				start := time.Now()
				res, rep, err := env.RunOneResult(core.NewDynamic(), q.SQL)
				elapsed := time.Since(start)
				runtime.ReadMemStats(&msAfter)
				if err != nil {
					return nil, err
				}
				if r >= 0 {
					wall[mode] = append(wall[mode], float64(elapsed.Microseconds())/1000)
					alloc[mode] = append(alloc[mode], int64(msAfter.TotalAlloc-msBefore.TotalAlloc))
				}
				rows := make([]string, len(res.Rows))
				for i, t := range res.Rows {
					rows[i] = t.String()
				}
				if refRows == nil {
					refRows, refCounters = rows, rep.Counters
					pt.Rows = int64(len(rows))
					continue
				}
				if !reflect.DeepEqual(rows, refRows) {
					return nil, fmt.Errorf("bench: %s rows diverged between execution modes (batch=%v run %d)", q.Name, env.Batch, r)
				}
				if !reflect.DeepEqual(rep.Counters, refCounters) {
					return nil, fmt.Errorf("bench: %s counters diverged between execution modes (batch=%v run %d):\n got %+v\nwant %+v",
						q.Name, env.Batch, r, rep.Counters, refCounters)
				}
			}
		}
		pt.BatchMedianMs = medianF(wall[0])
		pt.StreamMedianMs = medianF(wall[1])
		pt.BatchAllocBytes = medianI(alloc[0])
		pt.StreamAllocBytes = medianI(alloc[1])
		if pt.BatchMedianMs > 0 {
			pt.ImprovementPct = 100 * (pt.BatchMedianMs - pt.StreamMedianMs) / pt.BatchMedianMs
		}
		if pt.BatchAllocBytes > 0 {
			pt.AllocSavedPct = 100 * float64(pt.BatchAllocBytes-pt.StreamAllocBytes) / float64(pt.BatchAllocBytes)
		}
		out = append(out, pt)
	}
	return out, nil
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func medianI(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// WritePipelineJSON runs PipelineCompare and writes the BENCH_pipeline.json
// snapshot to path.
func WritePipelineJSON(path string, sf, nodes, runs int) ([]PipelinePoint, error) {
	res, err := PipelineCompare(sf, nodes, runs)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return res, os.WriteFile(path, append(data, '\n'), 0o644)
}
