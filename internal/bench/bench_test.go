package bench

import (
	"strings"
	"testing"
)

func TestQueriesAndScaleFactors(t *testing.T) {
	qs := Queries()
	if len(qs) != 4 {
		t.Fatalf("queries = %d", len(qs))
	}
	names := map[string]bool{}
	for _, q := range qs {
		names[q.Name] = true
		if q.SQL == "" {
			t.Errorf("%s has empty SQL", q.Name)
		}
	}
	for _, want := range []string{"Q17", "Q50", "Q8", "Q9"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	if len(DefaultScaleFactors()) != 3 {
		t.Error("want 3 scale factors (10/100/1000 GB stand-ins)")
	}
}

func TestEnvFreshIsolation(t *testing.T) {
	env, err := NewEnv(1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	a, b := env.Fresh(), env.Fresh()
	if a.Catalog == b.Catalog {
		t.Error("Fresh contexts share a catalog")
	}
	if a.Cluster == b.Cluster {
		t.Error("Fresh contexts share a cluster")
	}
	// Data shared underneath: both resolve lineitem.
	if _, ok := a.Catalog.Get("lineitem"); !ok {
		t.Error("clone lost lineitem")
	}
	if _, ok := a.Catalog.Get("store_sales"); !ok {
		t.Error("clone lost store_sales")
	}
}

func TestEnvStrategies(t *testing.T) {
	env, err := NewEnv(1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	ss := env.Strategies()
	if len(ss) != 6 {
		t.Fatalf("strategies = %d", len(ss))
	}
	seen := map[string]bool{}
	for _, s := range ss {
		seen[s.Name()] = true
	}
	for _, want := range StrategyOrder {
		if !seen[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestFigure6OverheadShape(t *testing.T) {
	rows, err := Figure6Overhead([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.UpfrontSim <= 0 || r.ReoptSim <= 0 || r.FullSim <= 0 {
			t.Errorf("%s: non-positive sims %+v", r.Query, r)
		}
		// Statistics-upfront (one pipelined job of the dynamic-found plan)
		// must be the cheapest of the three executions.
		if r.UpfrontSim > r.ReoptSim || r.UpfrontSim > r.FullSim {
			t.Errorf("%s: upfront (%v) not cheapest (reopt %v, full %v)",
				r.Query, r.UpfrontSim, r.ReoptSim, r.FullSim)
		}
		// Re-optimization overhead lands in a plausible band (paper: ≤~20%).
		if f := r.ReoptOverheadFrac(); f < 0 || f > 0.8 {
			t.Errorf("%s: reopt overhead %v out of band", r.Query, f)
		}
		// Online-statistics cost is small; it may even be negative — the
		// no-sketch run can pick a worse plan, i.e. the sketches pay for
		// themselves (see EXPERIMENTS.md).
		if f := r.StatsOverheadFrac(); f < -0.2 || f > 0.3 {
			t.Errorf("%s: stats overhead %v out of band", r.Query, f)
		}
	}
	out := FormatOverhead(rows)
	if !strings.Contains(out, "Q17") || !strings.Contains(out, "reopt%") {
		t.Errorf("FormatOverhead:\n%s", out)
	}
}

func TestFigure6PushdownShape(t *testing.T) {
	rows, err := Figure6Pushdown([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaselineSim <= 0 || r.PushdownSim <= 0 {
			t.Errorf("%s: non-positive sims", r.Query)
		}
		// Push-down adds bounded overhead over the oracle baseline.
		if f := r.OverheadFrac(); f < -0.35 || f > 0.8 {
			t.Errorf("%s: pushdown overhead %v out of band", r.Query, f)
		}
	}
	if out := FormatPushdown(rows); !strings.Contains(out, "overhead") {
		t.Errorf("FormatPushdown:\n%s", out)
	}
}

func TestFigure7ShapeHolds(t *testing.T) {
	rows, err := Figure7([]int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		dyn := r.Sim["dynamic"]
		worst := r.Sim["worst-order"]
		if dyn <= 0 {
			t.Fatalf("%s: dynamic sim %v", r.Query, dyn)
		}
		// The headline claim: dynamic beats worst-order everywhere.
		if worst < dyn {
			t.Errorf("%s: worst-order (%v) beat dynamic (%v)", r.Query, worst, dyn)
		}
		for _, s := range StrategyOrder {
			if r.Sim[s] <= 0 {
				t.Errorf("%s: %s sim missing", r.Query, s)
			}
			if r.Plan[s] == "" {
				t.Errorf("%s: %s plan missing", r.Query, s)
			}
		}
	}
	if out := FormatCompare(rows); !strings.Contains(out, "worst-order") {
		t.Errorf("FormatCompare:\n%s", out)
	}
}

func TestFigure8INLJAppears(t *testing.T) {
	rows, err := Figure8([]int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// At least the dynamic plans for Q50 and Q9 must use ⋈i (§7.2.3/7.2.4).
	used := map[string]bool{}
	for _, r := range rows {
		if strings.Contains(r.Plan["dynamic"], "⋈i") {
			used[r.Query] = true
		}
	}
	for _, q := range []string{"Q50", "Q9"} {
		if !used[q] {
			t.Errorf("%s dynamic plan did not use INLJ", q)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	rows, err := Figure7([]int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t1 := Table1(rows)
	if len(t1) != 1 {
		t.Fatalf("table1 rows = %d", len(t1))
	}
	r := t1[0]
	if r.Improvement["worst-order"] <= 1 {
		t.Errorf("worst-order improvement %vx, want > 1x", r.Improvement["worst-order"])
	}
	// Best-order is the only baseline allowed to beat dynamic (ratio < 1).
	if r.Improvement["best-order"] > 1.0 {
		t.Errorf("best-order ratio %vx, want ≤ 1x (dynamic carries re-opt overhead)", r.Improvement["best-order"])
	}
	if out := FormatTable1(t1); !strings.Contains(out, "x") {
		t.Errorf("FormatTable1:\n%s", out)
	}
}
