package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// The disk-native storage benchmark behind BENCH_storage.json: cold-vs-warm
// paged scans through the byte-budgeted page cache, zone-map pruning on a
// selective filter, and the storage-level access-path pick (index seek vs
// scan-plus-hash-probe) priced against its forced alternative. Each section
// carries invariants — prune ratio, cache residency, pick speedup — so the
// sweep doubles as an acceptance check in CI.

// StorageScanRun is one pass of the cold/warm scan pair.
type StorageScanRun struct {
	PagesRead   int64   `json:"pages_read"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	WallSeconds float64 `json:"wall_seconds"`
}

// StorageScan is one cache-budget step of the cold-vs-warm sweep: the same
// full paged scan twice through one cache, first cold, then warm.
type StorageScan struct {
	Name       string         `json:"name"` // cache budget label: "1x", "1/8x"
	CacheBytes int64          `json:"cache_bytes"`
	Pages      int64          `json:"pages"`
	Rows       int64          `json:"rows"`
	Cold       StorageScanRun `json:"cold"`
	Warm       StorageScanRun `json:"warm"`
}

// StoragePrune is the zone-map pruning measurement: a selective range filter
// over the page-ordered key column.
type StoragePrune struct {
	PagesTotal   int64   `json:"pages_total"`
	PagesPruned  int64   `json:"pages_pruned"`
	PagesRead    int64   `json:"pages_read"`
	PruneRatio   float64 `json:"prune_ratio"`
	SelectedRows int64   `json:"selected_rows"`
	TotalRows    int64   `json:"total_rows"`
}

// StorageAccess prices the storage-level access-path pick: a small binding
// set probing a many-page indexed inner through the index (what the
// optimizer picks when outer rows < inner pages) against the forced
// scan-plus-hash-probe alternative.
type StorageAccess struct {
	OuterRows       int64   `json:"outer_rows"`
	InnerPages      int64   `json:"inner_pages"`
	IndexLookups    int64   `json:"index_lookups"`
	IndexSimSeconds float64 `json:"index_sim_seconds"`
	ScanSimSeconds  float64 `json:"scan_sim_seconds"`
	Speedup         float64 `json:"speedup"`
}

// StorageSnapshot is the BENCH_storage.json payload.
type StorageSnapshot struct {
	Rows        int           `json:"rows"`
	Nodes       int           `json:"nodes"`
	RowsPerPage int           `json:"rows_per_page"`
	Scans       []StorageScan `json:"paged_scans"`
	Prune       StoragePrune  `json:"zone_map_prune"`
	Access      StorageAccess `json:"access_path"`
}

// storageCtx builds the paged fact⋈dim context the storage sweep measures:
// the NewMicroCtx tables converted to page files of rowsPerPage under dir,
// reopened through a fresh cache of cacheBytes, plus a 25-row tiny table
// left resident as the small-binding-set outer.
func storageCtx(rows, nodes, rowsPerPage int, cacheBytes int64, dir string) (*engine.Context, error) {
	ctx, err := NewMicroCtx(rows, nodes)
	if err != nil {
		return nil, err
	}
	var cache *storage.PageCache
	if cacheBytes > 0 {
		cache = storage.NewPageCache(cacheBytes)
	}
	for _, name := range []string{"fact", "dim"} {
		ds, _ := ctx.Catalog.Get(name)
		if err := storage.WritePaged(dir, ds, ctx.Catalog.Stats().Get(name), rowsPerPage); err != nil {
			return nil, err
		}
		pds, pst, err := storage.OpenPaged(dir, name, cache, nil)
		if err != nil {
			return nil, err
		}
		if err := ctx.Catalog.Register(pds, pst); err != nil {
			return nil, err
		}
	}
	tinySch := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "fk", Kind: types.KindInt},
	)
	tiny := make([]types.Tuple, 25)
	for i := range tiny {
		tiny[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i*31) % 512)}
	}
	tds, tst, err := storage.Build("tiny", tinySch, []string{"id"}, tiny, nodes)
	if err != nil {
		return nil, err
	}
	if err := ctx.Catalog.Register(tds, tst); err != nil {
		return nil, err
	}
	ctx.PageStats = &storage.PageScanStats{}
	return ctx, nil
}

// freshStats swaps in a zeroed PageStats so each measured pass observes only
// its own page traffic.
func freshStats(ctx *engine.Context) *storage.PageScanStats {
	st := &storage.PageScanStats{}
	ctx.PageStats = st
	return st
}

// storageScanPass runs one full paged scan of fact, returning its page
// traffic and row count.
func storageScanPass(ctx *engine.Context) (StorageScanRun, int64, error) {
	st := freshStats(ctx)
	start := time.Now()
	rel, err := engine.ScanByName(ctx, "fact", "f", nil, nil)
	if err != nil {
		return StorageScanRun{}, 0, err
	}
	return StorageScanRun{
		PagesRead:   st.PagesRead.Load(),
		CacheHits:   st.CacheHits.Load(),
		CacheMisses: st.CacheMisses.Load(),
		WallSeconds: time.Since(start).Seconds(),
	}, rel.RowCount(), nil
}

// StorageSweep runs the disk-native storage benchmark. Violated invariants —
// rows diverging across passes, a warm full-budget scan missing its cache, a
// prune ratio under one half, or an access-path pick that fails to beat its
// forced alternative twice over — surface as errors.
func StorageSweep(rows, nodes, rowsPerPage int) (StorageSnapshot, error) {
	snap := StorageSnapshot{Rows: rows, Nodes: nodes, RowsPerPage: rowsPerPage}

	// Cold-vs-warm scans, one cache budget per step: the full dataset, then
	// an eighth of it (sequential scans thrash an LRU smaller than the data,
	// so the small-budget warm pass stays cold — the measurement CI pins).
	root, err := os.MkdirTemp("", "dynopt_storage_bench")
	if err != nil {
		return snap, err
	}
	defer os.RemoveAll(root)
	for i, frac := range []struct {
		name string
		den  int64
	}{{"1x", 1}, {"1/8x", 8}} {
		dir := fmt.Sprintf("%s/scan%d", root, i)
		probe, err := storageCtx(rows, nodes, rowsPerPage, 0, dir)
		if err != nil {
			return snap, err
		}
		fact, _ := probe.Catalog.Get("fact")
		cacheBytes := fact.ByteSize() / frac.den
		ctx, err := storageCtx(rows, nodes, rowsPerPage, cacheBytes, dir+"c")
		if err != nil {
			return snap, err
		}
		fact, _ = ctx.Catalog.Get("fact")
		pages := int64(fact.Paged().TotalPages())
		cold, coldRows, err := storageScanPass(ctx)
		if err != nil {
			return snap, err
		}
		warm, warmRows, err := storageScanPass(ctx)
		if err != nil {
			return snap, err
		}
		if coldRows != int64(rows) || warmRows != int64(rows) {
			return snap, fmt.Errorf("bench: storage scan %s rows %d/%d, want %d", frac.name, coldRows, warmRows, rows)
		}
		if cold.CacheHits != 0 {
			return snap, fmt.Errorf("bench: storage cold scan %s hit the cache %d times", frac.name, cold.CacheHits)
		}
		if frac.den == 1 && warm.CacheMisses != 0 {
			return snap, fmt.Errorf("bench: storage warm scan %s missed a full-budget cache %d times", frac.name, warm.CacheMisses)
		}
		snap.Scans = append(snap.Scans, StorageScan{
			Name: frac.name, CacheBytes: cacheBytes, Pages: pages,
			Rows: coldRows, Cold: cold, Warm: warm,
		})
	}

	// Zone-map pruning: fact ids ascend within each partition, so pages map
	// to contiguous id ranges and a BETWEEN over the bottom eighth of the
	// domain must prune at least half the pages (the acceptance bar; the
	// actual ratio approaches 7/8).
	ctx, err := storageCtx(rows, nodes, rowsPerPage, 0, root+"/prune")
	if err != nil {
		return snap, err
	}
	st := freshStats(ctx)
	hi := int64(rows)/8 - 1
	filter := &expr.Between{
		X:  &expr.Column{Qualifier: "f", Name: "id"},
		Lo: &expr.Literal{Val: types.Int(0)},
		Hi: &expr.Literal{Val: types.Int(hi)},
	}
	rel, err := engine.ScanByName(ctx, "fact", "f", filter, nil)
	if err != nil {
		return snap, err
	}
	snap.Prune = StoragePrune{
		PagesTotal:   st.PagesTotal.Load(),
		PagesPruned:  st.PagesPruned.Load(),
		PagesRead:    st.PagesRead.Load(),
		PruneRatio:   st.PruneRatio(),
		SelectedRows: rel.RowCount(),
		TotalRows:    int64(rows),
	}
	if rel.RowCount() != hi+1 {
		return snap, fmt.Errorf("bench: pruned scan selected %d rows, want %d", rel.RowCount(), hi+1)
	}
	if snap.Prune.PruneRatio < 0.5 {
		return snap, fmt.Errorf("bench: zone maps pruned %.0f%% of pages on a 1/8-selective filter, want >= 50%%",
			snap.Prune.PruneRatio*100)
	}

	// Access-path pick: 25 outer bindings against the many-page indexed fact.
	// The optimizer picks the index seek whenever outer rows < inner pages;
	// price that pick against the forced scan-plus-hash-probe and demand the
	// two-fold win the policy assumes.
	indexSim, lookups, outRows, err := storageAccessRun(rows, nodes, rowsPerPage, root+"/ap-idx", true)
	if err != nil {
		return snap, err
	}
	scanSim, _, scanRows, err := storageAccessRun(rows, nodes, rowsPerPage, root+"/ap-scan", false)
	if err != nil {
		return snap, err
	}
	if outRows != scanRows {
		return snap, fmt.Errorf("bench: access paths disagree on rows: index %d, scan %d", outRows, scanRows)
	}
	ctx, err = storageCtx(rows, nodes, rowsPerPage, 0, root+"/ap-pages")
	if err != nil {
		return snap, err
	}
	fact, _ := ctx.Catalog.Get("fact")
	snap.Access = StorageAccess{
		OuterRows:       25,
		InnerPages:      int64(fact.Paged().TotalPages()),
		IndexLookups:    lookups,
		IndexSimSeconds: indexSim,
		ScanSimSeconds:  scanSim,
		Speedup:         scanSim / indexSim,
	}
	if snap.Access.OuterRows >= snap.Access.InnerPages {
		return snap, fmt.Errorf("bench: access-path shape degenerate: %d outer rows vs %d inner pages",
			snap.Access.OuterRows, snap.Access.InnerPages)
	}
	if lookups == 0 {
		return snap, fmt.Errorf("bench: index access path metered no index lookups")
	}
	if snap.Access.Speedup < 2 {
		return snap, fmt.Errorf("bench: access-path pick beat the forced scan by %.2fx, want >= 2x", snap.Access.Speedup)
	}
	return snap, nil
}

// storageAccessRun joins the 25-row tiny outer against the paged indexed
// fact, through the index when index is true and through a scan-plus-hash-
// probe otherwise, returning the metered sim seconds.
func storageAccessRun(rows, nodes, rowsPerPage int, dir string, index bool) (sim float64, lookups, outRows int64, err error) {
	ctx, err := storageCtx(rows, nodes, rowsPerPage, 0, dir)
	if err != nil {
		return 0, 0, 0, err
	}
	outer, err := engine.ScanByName(ctx, "tiny", "t", nil, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	before := ctx.Cluster.Acct().Snapshot()
	var rel *engine.Relation
	if index {
		factDS, _ := ctx.Catalog.Get("fact")
		rel, err = engine.IndexNLJoin(ctx, outer, factDS, "f", []string{"t.fk"}, []string{"fk"}, nil)
	} else {
		var inner *engine.Relation
		inner, err = engine.ScanByName(ctx, "fact", "f", nil, nil)
		if err == nil {
			rel, err = engine.HashJoin(ctx, outer, inner, []string{"t.fk"}, []string{"f.fk"}, false)
		}
	}
	if err != nil {
		return 0, 0, 0, err
	}
	diff := ctx.Cluster.Acct().Snapshot().Sub(before)
	return ctx.Cluster.Model().SimSeconds(diff, nodes), diff.IndexLookups, rel.RowCount(), nil
}

// WriteStorageJSON runs StorageSweep and writes the BENCH_storage.json
// snapshot to path.
func WriteStorageJSON(path string, rows, nodes, rowsPerPage int) (StorageSnapshot, error) {
	snap, err := StorageSweep(rows, nodes, rowsPerPage)
	if err != nil {
		return snap, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return snap, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}
