package bench

import (
	"fmt"
	"strings"

	"dynopt/internal/core"
)

// AblationRow is one point of the broadcast-threshold sweep: the dynamic
// strategy re-run with a different per-node broadcast budget.
type AblationRow struct {
	Query          string
	ThresholdBytes int64
	Sim            float64
	Broadcasts     bool // whether any ⋈b survived in the chosen plan
	Plan           string
}

// AblationBroadcastThreshold sweeps the JoinAlgorithmRule's broadcast
// budget for the dynamic strategy — the ablation for the paper's claim that
// broadcast-join opportunities (unlocked by accurate post-predicate sizes)
// drive much of the improvement. Threshold 0 disables broadcasting
// entirely; large thresholds broadcast everything that fits.
func AblationBroadcastThreshold(sf, nodes int, thresholds []int64) ([]AblationRow, error) {
	env, err := NewEnv(sf, nodes, false)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, q := range Queries() {
		for _, th := range thresholds {
			cfg := core.DefaultConfig()
			cfg.Algo.BroadcastThresholdBytes = th
			rep, err := env.RunOne(&core.Dynamic{Cfg: cfg}, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s threshold %d: %w", q.Name, th, err)
			}
			rows = append(rows, AblationRow{
				Query:          q.Name,
				ThresholdBytes: th,
				Sim:            rep.SimSeconds,
				Broadcasts:     strings.Contains(rep.Compact(), "⋈b"),
				Plan:           rep.Compact(),
			})
		}
	}
	return rows, nil
}

// AblationOnlineStats compares the dynamic strategy with and without online
// statistics collection at each materialization point — the ablation behind
// §5.3's design choice of sketching intermediates.
func AblationOnlineStats(sf, nodes int) (map[string][2]float64, error) {
	env, err := NewEnv(sf, nodes, false)
	if err != nil {
		return nil, err
	}
	out := map[string][2]float64{}
	for _, q := range Queries() {
		on := core.DefaultConfig()
		off := core.DefaultConfig()
		off.OnlineStats = false
		repOn, err := env.RunOne(&core.Dynamic{Cfg: on}, q.SQL)
		if err != nil {
			return nil, err
		}
		repOff, err := env.RunOne(&core.Dynamic{Cfg: off}, q.SQL)
		if err != nil {
			return nil, err
		}
		out[q.Name] = [2]float64{repOn.SimSeconds, repOff.SimSeconds}
	}
	return out, nil
}

// FormatAblation renders the threshold sweep.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %12s %10s %6s  %s\n", "query", "threshold", "sim(s)", "⋈b?", "plan")
	for _, r := range rows {
		bc := "no"
		if r.Broadcasts {
			bc = "yes"
		}
		fmt.Fprintf(&b, "%-5s %12d %10.3f %6s  %s\n", r.Query, r.ThresholdBytes, r.Sim, bc, r.Plan)
	}
	return b.String()
}
