package bench

import (
	"testing"
)

// TestSpillSweepInvariants runs a small sweep end to end: SpillSweep itself
// errors on any violated invariant (row drift, metering mismatch, grant
// overrun), so this asserts shape on top — the ample budget stays on the
// resident path and the 1/8 budget actually spills.
func TestSpillSweepInvariants(t *testing.T) {
	pts, err := SpillSweep(8000, 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	if pts[0].SpillBytes != 0 {
		t.Errorf("ample budget spilled %d bytes", pts[0].SpillBytes)
	}
	last := pts[len(pts)-1]
	if last.SpillBytes == 0 || last.SpillRows == 0 {
		t.Errorf("1/8 budget did not spill: %+v", last)
	}
	if last.OutRows != pts[0].OutRows {
		t.Errorf("rows drifted across the sweep: %d vs %d", last.OutRows, pts[0].OutRows)
	}
	// Tighter budgets never spill less than ampler ones.
	for i := 1; i < len(pts); i++ {
		if pts[i].SpillBytes < pts[i-1].SpillBytes {
			t.Errorf("%s spilled %d bytes, less than %s's %d",
				pts[i].Name, pts[i].SpillBytes, pts[i-1].Name, pts[i-1].SpillBytes)
		}
	}
	// Spill I/O costs simulated time: the tightest budget cannot be cheaper.
	if last.SimSeconds <= pts[0].SimSeconds {
		t.Errorf("spilling run (%v sim s) not more expensive than resident run (%v sim s)",
			last.SimSeconds, pts[0].SimSeconds)
	}
}
