package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// NewMicroCtx builds the fact⋈dim context shared by the substrate
// micro-benchmarks: a fact(id, fk, pay) table of the given row count,
// hash-partitioned on id with a secondary index on fk, and a 512-row
// dim(id, attr) table, both across nodes partitions. fact.fk joins dim.id
// with exactly one match per fact row.
func NewMicroCtx(rows, nodes int) (*engine.Context, error) {
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	sch := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "fk", Kind: types.KindInt},
		types.Field{Name: "pay", Kind: types.KindInt},
	)
	fact := make([]types.Tuple, rows)
	for i := range fact {
		fact[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 512)), types.Int(int64(i))}
	}
	ds, st, err := storage.Build("fact", sch, []string{"id"}, fact, nodes)
	if err != nil {
		return nil, err
	}
	if err := ctx.Catalog.Register(ds, st); err != nil {
		return nil, err
	}
	dimSch := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "attr", Kind: types.KindInt},
	)
	dim := make([]types.Tuple, 512)
	for i := range dim {
		dim[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i * 3))}
	}
	dds, dst, err := storage.Build("dim", dimSch, []string{"id"}, dim, nodes)
	if err != nil {
		return nil, err
	}
	if err := ctx.Catalog.Register(dds, dst); err != nil {
		return nil, err
	}
	if _, err := storage.BuildIndex(ds, "fk"); err != nil {
		return nil, err
	}
	return ctx, nil
}

// MicroResult is one join micro-benchmark measurement, the unit of the
// BENCH_join.json snapshot.
type MicroResult struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Nodes       int     `json:"nodes"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// JoinMicros runs the join micro-benchmarks (repartition, hash, broadcast,
// indexed nested-loop) through the testing harness and reports ns/op and
// allocs/op — the allocation-free contract of the join core, measurable
// outside `go test`.
func JoinMicros(rows, nodes int) ([]MicroResult, error) {
	ctx, err := NewMicroCtx(rows, nodes)
	if err != nil {
		return nil, err
	}
	fact, err := engine.ScanByName(ctx, "fact", "f", nil, nil)
	if err != nil {
		return nil, err
	}
	factDS, _ := ctx.Catalog.Get("fact")

	var benchErr error
	cases := []struct {
		name string
		body func() error
	}{
		{"Repartition", func() error {
			_, err := engine.Repartition(ctx, fact, []string{"f.fk"})
			return err
		}},
		{"HashJoin", func() error {
			f, _ := engine.ScanByName(ctx, "fact", "f", nil, nil)
			d, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
			_, err := engine.HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
			return err
		}},
		{"BroadcastJoin", func() error {
			f, _ := engine.ScanByName(ctx, "fact", "f", nil, nil)
			d, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
			_, err := engine.BroadcastJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
			return err
		}},
		{"IndexNLJoin", func() error {
			d, _ := engine.ScanByName(ctx, "dim", "d", nil, nil)
			_, err := engine.IndexNLJoin(ctx, d, factDS, "f", []string{"d.id"}, []string{"fk"}, nil)
			return err
		}},
	}
	out := make([]MicroResult, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.body(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, benchErr)
		}
		out = append(out, MicroResult{
			Name:        c.name,
			Rows:        rows,
			Nodes:       nodes,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// WriteJoinMicrosJSON runs JoinMicros and writes the snapshot to path.
func WriteJoinMicrosJSON(path string, rows, nodes int) ([]MicroResult, error) {
	res, err := JoinMicros(rows, nodes)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return res, os.WriteFile(path, append(data, '\n'), 0o644)
}
