package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dynopt/internal/engine"
	"dynopt/internal/storage"
)

// SpillPoint is one budget step of the memory-governed join sweep: the same
// fact⋈dim join (build side = fact) executed under a shrinking per-node
// memory budget, with real disk spilling.
type SpillPoint struct {
	Name              string  `json:"name"`             // "ample", "1x", "1/2x", ...
	Rows              int     `json:"rows"`             // fact rows
	Nodes             int     `json:"nodes"`            // partitions
	BudgetBytes       int64   `json:"budget_bytes"`     // per-node budget
	BudgetFracOfBuild float64 `json:"budget_frac"`      // budget / per-node build bytes
	OutRows           int64   `json:"out_rows"`         // join output rows (identical across the sweep)
	SpillBytes        int64   `json:"spill_bytes"`      // metered run-file I/O
	SpillRows         int64   `json:"spill_rows"`       // metered run-file rows
	RunFileBytes      int64   `json:"run_file_bytes"`   // actual bytes written on disk
	PeakGrantBytes    int64   `json:"peak_grant_bytes"` // high-water mark of the query's grant
	GrantCapacity     int64   `json:"grant_capacity"`   // governor capacity (budget × nodes)
	SimSeconds        float64 `json:"sim_seconds"`      // metered work priced by the cost model
	WallSeconds       float64 `json:"wall_seconds"`     // host time
}

// spillSweepFracs are the budget steps: ample (everything resident), then
// the per-node build bytes shrinking to 1/8 of them.
var spillSweepFracs = []struct {
	name string
	num  int64
	den  int64
}{
	{"ample", 4, 1},
	{"1x", 1, 1},
	{"1/2x", 1, 2},
	{"1/4x", 1, 4},
	{"1/8x", 1, 8},
}

// SpillSweep runs the memory-governed join bench: the NewMicroCtx fact⋈dim
// join with the fact table on the build side, swept from an ample budget
// down to 1/8 of the build side's per-node bytes. Every step must produce
// the same output rows, keep peak grant usage within capacity, and meter
// SpillBytes equal to the run-file bytes actually written; a violation is
// an error, so the sweep doubles as an acceptance check in CI.
func SpillSweep(rows, nodes int, spillRoot string) ([]SpillPoint, error) {
	out := make([]SpillPoint, 0, len(spillSweepFracs))
	var wantRows int64 = -1
	for i, f := range spillSweepFracs {
		pt, err := spillSweepStep(rows, nodes, spillRoot, i, f.name, f.num, f.den)
		if err != nil {
			return nil, err
		}
		if wantRows < 0 {
			wantRows = pt.OutRows
		} else if pt.OutRows != wantRows {
			return nil, fmt.Errorf("bench: spill sweep %s returned %d rows, ample run returned %d",
				f.name, pt.OutRows, wantRows)
		}
		if pt.SpillBytes != pt.RunFileBytes {
			return nil, fmt.Errorf("bench: spill sweep %s metered %d spill bytes but wrote %d",
				f.name, pt.SpillBytes, pt.RunFileBytes)
		}
		if pt.GrantCapacity > 0 && pt.PeakGrantBytes > pt.GrantCapacity {
			return nil, fmt.Errorf("bench: spill sweep %s peak grant %d exceeded capacity %d",
				f.name, pt.PeakGrantBytes, pt.GrantCapacity)
		}
		out = append(out, pt)
	}
	return out, nil
}

// spillSweepStep runs one budget step of the sweep. The grant and the spill
// manager are released via defer so an error anywhere in the step — scan,
// join, or metering — still frees governor memory and sweeps the step's
// run-file directory before the next step reuses the root.
func spillSweepStep(rows, nodes int, spillRoot string, step int, name string, num, den int64) (pt SpillPoint, err error) {
	ctx, err := NewMicroCtx(rows, nodes)
	if err != nil {
		return SpillPoint{}, err
	}
	fact, _ := ctx.Catalog.Get("fact")
	perNodeBuild := fact.ByteSize() / int64(nodes)
	budget := perNodeBuild * num / den
	ctx.Cluster.SetMemoryPerNodeBytes(budget)
	sm := storage.NewSpillManager(spillRoot, fmt.Sprintf("sweep%d_", step))
	grant := ctx.Cluster.Governor().Grant()
	ctx.Spill = sm
	ctx.Grant = grant
	defer grant.Close()
	defer func() {
		if swerr := sm.Sweep(); swerr != nil && err == nil {
			err = swerr
		}
	}()

	frel, err := engine.ScanByName(ctx, "fact", "f", nil, nil)
	if err != nil {
		return SpillPoint{}, err
	}
	drel, err := engine.ScanByName(ctx, "dim", "d", nil, nil)
	if err != nil {
		return SpillPoint{}, err
	}
	before := ctx.Cluster.Acct().Snapshot()
	start := time.Now()
	rel, err := engine.HashJoin(ctx, frel, drel, []string{"f.fk"}, []string{"d.id"}, true)
	wall := time.Since(start)
	if err != nil {
		return SpillPoint{}, fmt.Errorf("bench: spill sweep %s: %w", name, err)
	}
	diff := ctx.Cluster.Acct().Snapshot().Sub(before)
	return SpillPoint{
		Name:              name,
		Rows:              rows,
		Nodes:             nodes,
		BudgetBytes:       budget,
		BudgetFracOfBuild: float64(num) / float64(den),
		OutRows:           rel.RowCount(),
		SpillBytes:        diff.SpillBytes,
		SpillRows:         diff.SpillRows,
		RunFileBytes:      sm.BytesWritten(),
		PeakGrantBytes:    grant.Peak(),
		GrantCapacity:     ctx.Cluster.Governor().Capacity(),
		SimSeconds:        ctx.Cluster.Model().SimSeconds(diff, nodes),
		WallSeconds:       wall.Seconds(),
	}, nil
}

// WriteSpillJSON runs SpillSweep (spilling under a temp directory) and
// writes the BENCH_spill.json snapshot to path.
func WriteSpillJSON(path string, rows, nodes int) ([]SpillPoint, error) {
	root, err := os.MkdirTemp("", "dynopt_spill_bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	res, err := SpillSweep(rows, nodes, root)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return res, os.WriteFile(path, append(data, '\n'), 0o644)
}
