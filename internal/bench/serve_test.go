package bench

import "testing"

// TestServeBenchInvariants runs the serving workload small and relies on
// ServeBench's internal checks (row equality per binding between cold and
// hot modes, 100% hit rate, zero re-opt points on replays); shape is
// asserted on top.
func TestServeBenchInvariants(t *testing.T) {
	pts, err := ServeBench(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("shapes = %d, want 3", len(pts))
	}
	for _, p := range pts {
		if p.HitRate != 1 {
			t.Errorf("%s: hit rate %.2f", p.Query, p.HitRate)
		}
		if p.Fallbacks != 0 {
			t.Errorf("%s: %d fallbacks", p.Query, p.Fallbacks)
		}
		if p.ColdQPS <= 0 || p.HotQPS <= 0 {
			t.Errorf("%s: degenerate throughput %+v", p.Query, p)
		}
		if p.QueriesPerRun != p.Bindings*rotationsPerRun {
			t.Errorf("%s: queries per run %d != %d bindings × %d",
				p.Query, p.QueriesPerRun, p.Bindings, rotationsPerRun)
		}
	}
}
