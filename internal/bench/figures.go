package bench

import (
	"fmt"
	"strings"

	"dynopt/internal/core"
)

// OverheadRow is one bar of Figure 6 (left): the dynamic execution time
// decomposed into the plan's inherent cost (statistics known upfront), the
// re-optimization materialization cost, and the online statistics cost.
type OverheadRow struct {
	Query string
	SF    int
	// UpfrontSim: the dynamic-found plan executed as one pipelined job
	// (statistics available from the beginning).
	UpfrontSim float64
	// ReoptSim: re-optimization points enabled, online statistics off.
	ReoptSim float64
	// FullSim: the complete dynamic approach.
	FullSim float64
}

// ReoptOverheadFrac returns (ReoptSim-UpfrontSim)/FullSim — the paper
// reports ~10–15%.
func (r OverheadRow) ReoptOverheadFrac() float64 {
	if r.FullSim <= 0 {
		return 0
	}
	return (r.ReoptSim - r.UpfrontSim) / r.FullSim
}

// StatsOverheadFrac returns (FullSim-ReoptSim)/FullSim — the paper reports
// ~1–5%.
func (r OverheadRow) StatsOverheadFrac() float64 {
	if r.FullSim <= 0 {
		return 0
	}
	return (r.FullSim - r.ReoptSim) / r.FullSim
}

// Figure6Overhead reproduces the left pair of Figure 6: per query and scale
// factor, the three executions of §7.1 (full dynamic; statistics upfront;
// re-optimization without online statistics).
func Figure6Overhead(sfs []int, nodes int) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, sf := range sfs {
		env, err := NewEnv(sf, nodes, false)
		if err != nil {
			return nil, err
		}
		for _, q := range Queries() {
			algo := env.algoConfig()

			fullCfg := core.DefaultConfig()
			fullCfg.Algo = algo
			full, err := env.RunOne(&core.Dynamic{Cfg: fullCfg}, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s sf%d full: %w", q.Name, sf, err)
			}

			upfront, err := env.RunOne(&core.Oracle{Label: "upfront", Tree: full.Tree}, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s sf%d upfront: %w", q.Name, sf, err)
			}

			noStatsCfg := fullCfg
			noStatsCfg.OnlineStats = false
			noStats, err := env.RunOne(&core.Dynamic{Cfg: noStatsCfg}, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s sf%d no-stats: %w", q.Name, sf, err)
			}

			rows = append(rows, OverheadRow{
				Query: q.Name, SF: sf,
				UpfrontSim: upfront.SimSeconds,
				ReoptSim:   noStats.SimSeconds,
				FullSim:    full.SimSeconds,
			})
		}
	}
	return rows, nil
}

// PushdownRow is one bar pair of Figure 6 (right): baseline (exact
// statistics upfront, no re-optimization) vs predicate push-down only.
type PushdownRow struct {
	Query       string
	SF          int
	BaselineSim float64
	PushdownSim float64
}

// OverheadFrac returns the push-down overhead fraction — the paper reports
// ≤3%.
func (r PushdownRow) OverheadFrac() float64 {
	if r.PushdownSim <= 0 {
		return 0
	}
	return (r.PushdownSim - r.BaselineSim) / r.PushdownSim
}

// Figure6Pushdown reproduces the right pair of Figure 6.
func Figure6Pushdown(sfs []int, nodes int) ([]PushdownRow, error) {
	var rows []PushdownRow
	for _, sf := range sfs {
		env, err := NewEnv(sf, nodes, false)
		if err != nil {
			return nil, err
		}
		for _, q := range Queries() {
			algo := env.algoConfig()
			fullCfg := core.DefaultConfig()
			fullCfg.Algo = algo
			full, err := env.RunOne(&core.Dynamic{Cfg: fullCfg}, q.SQL)
			if err != nil {
				return nil, err
			}
			baseline, err := env.RunOne(&core.Oracle{Label: "baseline", Tree: full.Tree}, q.SQL)
			if err != nil {
				return nil, err
			}
			pdCfg := fullCfg
			pdCfg.ReoptLoop = false // push-down only, rest planned statically
			pd, err := env.RunOne(&core.Dynamic{Cfg: pdCfg}, q.SQL)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PushdownRow{
				Query: q.Name, SF: sf,
				BaselineSim: baseline.SimSeconds,
				PushdownSim: pd.SimSeconds,
			})
		}
	}
	return rows, nil
}

// CompareRow is one bar group of Figures 7/8: all six strategies on one
// query at one scale factor.
type CompareRow struct {
	Query string
	SF    int
	// Sim seconds per strategy, keyed by strategy name.
	Sim map[string]float64
	// Wall seconds per strategy.
	Wall map[string]float64
	// Plan per strategy (compact notation).
	Plan map[string]string
}

// Figure7 reproduces the six-strategy comparison (hash + broadcast joins).
func Figure7(sfs []int, nodes int) ([]CompareRow, error) {
	return compare(sfs, nodes, false)
}

// Figure8 reproduces the comparison with secondary indexes present and the
// indexed nested-loop join enabled.
func Figure8(sfs []int, nodes int) ([]CompareRow, error) {
	return compare(sfs, nodes, true)
}

func compare(sfs []int, nodes int, indexes bool) ([]CompareRow, error) {
	var rows []CompareRow
	for _, sf := range sfs {
		env, err := NewEnv(sf, nodes, indexes)
		if err != nil {
			return nil, err
		}
		for _, q := range Queries() {
			row := CompareRow{
				Query: q.Name, SF: sf,
				Sim:  map[string]float64{},
				Wall: map[string]float64{},
				Plan: map[string]string{},
			}
			for _, s := range env.Strategies() {
				rep, err := env.RunOne(s, q.SQL)
				if err != nil {
					return nil, fmt.Errorf("%s sf%d: %w", q.Name, sf, err)
				}
				row.Sim[s.Name()] = rep.SimSeconds
				row.Wall[s.Name()] = rep.Wall.Seconds()
				row.Plan[s.Name()] = rep.Compact()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table1Row is one row of Table 1: average improvement of dynamic over each
// baseline at one scale factor (ratio of the baseline's mean sim time to
// dynamic's, averaged across queries).
type Table1Row struct {
	SF          int
	Improvement map[string]float64 // baseline name → ratio vs dynamic
}

// Table1 derives the average-improvement table from Figure 7 rows.
func Table1(rows []CompareRow) []Table1Row {
	bySF := map[int][]CompareRow{}
	var order []int
	for _, r := range rows {
		if _, ok := bySF[r.SF]; !ok {
			order = append(order, r.SF)
		}
		bySF[r.SF] = append(bySF[r.SF], r)
	}
	var out []Table1Row
	for _, sf := range order {
		group := bySF[sf]
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, r := range group {
			dyn := r.Sim["dynamic"]
			if dyn <= 0 {
				continue
			}
			for name, sim := range r.Sim {
				if name == "dynamic" {
					continue
				}
				sums[name] += sim / dyn
				counts[name]++
			}
		}
		row := Table1Row{SF: sf, Improvement: map[string]float64{}}
		for name, total := range sums {
			row.Improvement[name] = total / float64(counts[name])
		}
		out = append(out, row)
	}
	return out
}

// StrategyOrder is the column order used by the printers (matches Table 1).
var StrategyOrder = []string{"dynamic", "cost-based", "pilot-run", "ingres-like", "best-order", "worst-order"}

// FormatCompare renders Figure 7/8 rows as an aligned text table.
func FormatCompare(rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s", "query", "sf")
	for _, s := range StrategyOrder {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-5d", r.Query, r.SF)
		for _, s := range StrategyOrder {
			fmt.Fprintf(&b, " %11.3fs", r.Sim[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatOverhead renders Figure 6 (left) rows.
func FormatOverhead(rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s %12s %12s %12s %8s %8s\n",
		"query", "sf", "upfront(s)", "reopt(s)", "full(s)", "reopt%", "stats%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-5d %12.3f %12.3f %12.3f %7.1f%% %7.1f%%\n",
			r.Query, r.SF, r.UpfrontSim, r.ReoptSim, r.FullSim,
			100*r.ReoptOverheadFrac(), 100*r.StatsOverheadFrac())
	}
	return b.String()
}

// FormatPushdown renders Figure 6 (right) rows.
func FormatPushdown(rows []PushdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s %12s %12s %10s\n", "query", "sf", "baseline(s)", "pushdown(s)", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-5d %12.3f %12.3f %9.1f%%\n",
			r.Query, r.SF, r.BaselineSim, r.PushdownSim, 100*r.OverheadFrac())
	}
	return b.String()
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "sf")
	for _, s := range StrategyOrder {
		if s == "dynamic" {
			continue
		}
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d", r.SF)
		for _, s := range StrategyOrder {
			if s == "dynamic" {
				continue
			}
			fmt.Fprintf(&b, " %11.2fx", r.Improvement[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}
