package bench

import (
	"strings"
	"testing"
)

func TestAblationBroadcastThreshold(t *testing.T) {
	rows, err := AblationBroadcastThreshold(1, 4, []int64{0, 128 << 10, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byQuery := map[string]map[int64]AblationRow{}
	for _, r := range rows {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[int64]AblationRow{}
		}
		byQuery[r.Query][r.ThresholdBytes] = r
	}
	for q, m := range byQuery {
		// Threshold 0 must produce hash-only plans.
		if m[0].Broadcasts {
			t.Errorf("%s: threshold 0 still broadcast: %s", q, m[0].Plan)
		}
		// The default threshold must broadcast something on every query
		// (filtered dimensions fit) and beat the no-broadcast run.
		if !m[128<<10].Broadcasts {
			t.Errorf("%s: default threshold never broadcast: %s", q, m[128<<10].Plan)
		}
		if m[128<<10].Sim >= m[0].Sim {
			t.Errorf("%s: broadcasts (%.3fs) did not beat hash-only (%.3fs)",
				q, m[128<<10].Sim, m[0].Sim)
		}
	}
	if out := FormatAblation(rows); !strings.Contains(out, "threshold") {
		t.Errorf("FormatAblation:\n%s", out)
	}
}

func TestAblationOnlineStats(t *testing.T) {
	out, err := AblationOnlineStats(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("queries = %d", len(out))
	}
	for q, pair := range out {
		if pair[0] <= 0 || pair[1] <= 0 {
			t.Errorf("%s: non-positive sims %v", q, pair)
		}
	}
}
