package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/memo"
	"dynopt/internal/tpcds"
	"dynopt/internal/tpch"
	"dynopt/internal/types"
)

// serveShape is one repeated parameterized statement of the serving
// workload: a fixed shape executed over rotating $param bindings, the
// traffic pattern the plan memo exists for.
type serveShape struct {
	Name     string
	SQL      string
	Bindings []map[string]types.Value
}

// serveShapes returns the serving workload: the parameterized variants of
// the evaluation queries with binding rotations that stay inside one
// workload regime (so a correct memo never needs to fall back).
func serveShapes() []serveShape {
	q50 := serveShape{Name: "Q50P", SQL: tpcds.Q50P()}
	for year := int64(1998); year <= 2000; year++ {
		for moy := int64(8); moy <= 10; moy++ {
			q50.Bindings = append(q50.Bindings,
				map[string]types.Value{"moy": types.Int(moy), "year": types.Int(year)})
		}
	}
	q17 := serveShape{Name: "Q17P", SQL: tpcds.Q17P()}
	for moy := int64(3); moy <= 6; moy++ {
		q17.Bindings = append(q17.Bindings,
			map[string]types.Value{"moy": types.Int(moy), "year": types.Int(2001)})
	}
	q8 := serveShape{Name: "Q8P", SQL: tpch.Q8P()}
	for _, region := range []string{"ASIA", "AMERICA", "EUROPE", "AFRICA"} {
		q8.Bindings = append(q8.Bindings,
			map[string]types.Value{"region": types.Str(region), "status": types.Str("F")})
	}
	return []serveShape{q50, q17, q8}
}

// ServePoint is one shape of the serving benchmark: throughput of the plain
// dynamic loop (cold: every execution re-pays push-down re-analysis,
// blocking re-optimization, and online statistics) versus the plan memo
// (hot: the first execution records, the rest replay under guardrails).
// Row equality between modes and a full hit rate are checked inside — a
// divergence is an error, so the bench doubles as an acceptance check in
// CI.
type ServePoint struct {
	Query         string  `json:"query"`
	SF            int     `json:"sf"`
	Nodes         int     `json:"nodes"`
	Runs          int     `json:"runs"`
	Bindings      int     `json:"bindings"`
	QueriesPerRun int     `json:"queries_per_run"`
	ColdQPS       float64 `json:"cold_qps"`    // median queries/sec, memo off
	HotQPS        float64 `json:"hot_qps"`     // median queries/sec, memo replay
	SpeedupPct    float64 `json:"speedup_pct"` // (hot-cold)/cold × 100
	HitRate       float64 `json:"hit_rate"`    // replayed fraction of timed hot queries
	Fallbacks     int64   `json:"fallbacks"`   // mid-query fallbacks observed (want 0)
}

// rotationsPerRun controls how many times the binding list is cycled per
// timed run.
const rotationsPerRun = 3

// ServeBench measures the serving workload at sf on nodes, runs times per
// mode, reporting medians. Each run executes the shape's bindings
// rotationsPerRun times back to back on one shared execution context — the
// sequential analogue of PR 1's serving loop.
func ServeBench(sf, nodes, runs int) ([]ServePoint, error) {
	if runs < 1 {
		runs = 1
	}
	env, err := NewEnv(sf, nodes, false)
	if err != nil {
		return nil, err
	}
	dynCfg := core.DefaultConfig()
	out := make([]ServePoint, 0, 3)
	for _, shape := range serveShapes() {
		nq := len(shape.Bindings) * rotationsPerRun
		pt := ServePoint{
			Query: shape.Name, SF: sf, Nodes: nodes, Runs: runs,
			Bindings: len(shape.Bindings), QueriesPerRun: nq,
		}
		// Reference rows per binding, from an untimed plain pass.
		refCtx := env.Fresh()
		refRows := make([]string, len(shape.Bindings))
		for i, b := range shape.Bindings {
			rows, _, err := serveOne(refCtx, &core.Dynamic{Cfg: dynCfg}, shape.SQL, b)
			if err != nil {
				return nil, fmt.Errorf("bench: %s reference: %w", shape.Name, err)
			}
			refRows[i] = rows
		}

		var coldQPS, hotQPS []float64
		for r := 0; r < runs; r++ {
			// Cold: no memo, every execution is the full dynamic loop.
			ctx := env.Fresh()
			runtime.GC()
			start := time.Now()
			for q := 0; q < nq; q++ {
				b := q % len(shape.Bindings)
				rows, _, err := serveOne(ctx, &core.Dynamic{Cfg: dynCfg}, shape.SQL, shape.Bindings[b])
				if err != nil {
					return nil, fmt.Errorf("bench: %s cold: %w", shape.Name, err)
				}
				if rows != refRows[b] {
					return nil, fmt.Errorf("bench: %s cold rows diverged on binding %d", shape.Name, b)
				}
			}
			coldQPS = append(coldQPS, float64(nq)/time.Since(start).Seconds())

			// Hot: shared memo; the first (untimed) execution records, the
			// timed rotation replays.
			store := memo.NewStore(64, memo.Options{})
			hctx := env.Fresh()
			if _, _, err := serveOne(hctx, &core.Dynamic{Cfg: dynCfg, Memo: store}, shape.SQL, shape.Bindings[0]); err != nil {
				return nil, fmt.Errorf("bench: %s warm: %w", shape.Name, err)
			}
			hits := 0
			runtime.GC()
			start = time.Now()
			for q := 0; q < nq; q++ {
				b := q % len(shape.Bindings)
				rows, rep, err := serveOne(hctx, &core.Dynamic{Cfg: dynCfg, Memo: store}, shape.SQL, shape.Bindings[b])
				if err != nil {
					return nil, fmt.Errorf("bench: %s hot: %w", shape.Name, err)
				}
				if rows != refRows[b] {
					return nil, fmt.Errorf("bench: %s hot rows diverged on binding %d", shape.Name, b)
				}
				if rep.CacheHit {
					hits++
					if rep.Reopts != 0 {
						return nil, fmt.Errorf("bench: %s replay crossed %d re-opt points", shape.Name, rep.Reopts)
					}
				}
			}
			hotQPS = append(hotQPS, float64(nq)/time.Since(start).Seconds())
			pt.HitRate = float64(hits) / float64(nq)
			pt.Fallbacks = store.Stats().Fallbacks
			if pt.HitRate < 1 {
				return nil, fmt.Errorf("bench: %s hit rate %.2f < 1 (%d fallbacks)", shape.Name, pt.HitRate, pt.Fallbacks)
			}
		}
		pt.ColdQPS = medianF(coldQPS)
		pt.HotQPS = medianF(hotQPS)
		if pt.ColdQPS > 0 {
			pt.SpeedupPct = 100 * (pt.HotQPS - pt.ColdQPS) / pt.ColdQPS
		}
		out = append(out, pt)
	}
	return out, nil
}

// serveOne executes one query with the given bindings on the shared serving
// context and returns the rendered rows and the report.
func serveOne(ctx *engine.Context, s core.Strategy, sql string, bindings map[string]types.Value) (string, *core.Report, error) {
	ctx.Params = bindings
	res, rep, err := s.Run(ctx, sql)
	if err != nil {
		return "", rep, err
	}
	var b strings.Builder
	for _, t := range res.Rows {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), rep, nil
}

// WriteServeJSON runs ServeBench and writes the BENCH_serve.json snapshot
// to path.
func WriteServeJSON(path string, sf, nodes, runs int) ([]ServePoint, error) {
	res, err := ServeBench(sf, nodes, runs)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return res, os.WriteFile(path, append(data, '\n'), 0o644)
}
