// Package bench regenerates every table and figure of the paper's
// evaluation (§7): the overhead decomposition of Figure 6, the six-strategy
// execution-time comparisons of Figure 7, the indexed-nested-loop variant of
// Figure 8, and the average-improvement ratios of Table 1.
//
// Scale factors are row multipliers; SF 1/5/25 stand in for the paper's
// 10/100/1000 GB datasets. Reported "sim" seconds price the metered work
// (shuffles, broadcasts, materialization I/O, probes, index lookups,
// re-optimization latency) on the simulated shared-nothing cluster; wall
// seconds are host time. Shape — who wins, by what factor, where broadcasts
// stop — is the reproduction target, not absolute numbers.
package bench

import (
	"fmt"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/optimizer"
	"dynopt/internal/storage"
	"dynopt/internal/tpcds"
	"dynopt/internal/tpch"
	"dynopt/internal/types"
)

// Query names the four evaluation queries.
type Query struct {
	Name     string // "Q17", "Q50", "Q8", "Q9"
	Workload string // "tpcds" or "tpch"
	SQL      string
}

// Queries returns the paper's four evaluation queries in its reporting
// order.
func Queries() []Query {
	return []Query{
		{Name: "Q17", Workload: "tpcds", SQL: tpcds.Q17()},
		{Name: "Q50", Workload: "tpcds", SQL: tpcds.Q50()},
		{Name: "Q8", Workload: "tpch", SQL: tpch.Q8()},
		{Name: "Q9", Workload: "tpch", SQL: tpch.Q9()},
	}
}

// DefaultScaleFactors maps to the paper's 10/100/1000 GB series.
func DefaultScaleFactors() []int { return []int{1, 5, 25} }

// Env is one loaded workload instance reused across strategy runs: each run
// clones the base catalog onto a fresh cluster so metering is isolated and
// temps never leak.
type Env struct {
	nodes   int
	base    *catalog.Catalog
	udfs    *expr.Registry
	indexed bool
	// Batch runs every strategy in whole-relation batch mode instead of the
	// chunked streaming pipeline — the reference the equivalence tests and
	// the pipeline benchmark compare against.
	Batch bool
	// NoVec disables column-major execution (vector predicate kernels and
	// columnar key hashing) while staying on the streaming pipeline — the
	// ablation the vectorization benchmark prices.
	NoVec bool
	// pageCache is the shared page cache ConvertPaged installed (nil while
	// resident or uncached).
	pageCache *storage.PageCache
}

// NewEnv loads both workloads at sf on an n-node layout. withIndexes adds
// the Figure 8 secondary indexes.
func NewEnv(sf, nodes int, withIndexes bool) (*Env, error) {
	e := &Env{nodes: nodes, udfs: expr.NewRegistry(), indexed: withIndexes}
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    e.udfs,
		Params:  map[string]types.Value{},
	}
	if _, err := tpch.Load(ctx, sf); err != nil {
		return nil, err
	}
	if _, err := tpcds.Load(ctx, sf); err != nil {
		return nil, err
	}
	if withIndexes {
		if err := tpch.BuildIndexes(ctx); err != nil {
			return nil, err
		}
		if err := tpcds.BuildIndexes(ctx); err != nil {
			return nil, err
		}
	}
	e.base = ctx.Catalog
	return e, nil
}

// ConvertPaged rewrites every base dataset into disk-native paged form
// under dir and reattaches the catalog to the page files through one shared
// page cache of cacheBytes (0 = uncached). Fresh contexts scan pages from
// then on; secondary indexes are rebuilt from the persisted sidecars. The
// paged-vs-resident equivalence suite and the storage benchmark use this to
// run the identical workload against both storage layouts. reg, when
// non-nil, wires fault injection into every page file the conversion opens
// (the paged corruption chaos suite arms page.corrupt through it).
func (e *Env) ConvertPaged(dir string, rowsPerPage int, cacheBytes int64, reg *faults.Registry) error {
	if cacheBytes > 0 {
		e.pageCache = storage.NewPageCache(cacheBytes)
	}
	for _, name := range e.base.BaseNames() {
		ds, ok := e.base.Get(name)
		if !ok {
			return fmt.Errorf("bench: dataset %q vanished during paging", name)
		}
		st := e.base.Stats().Get(name)
		if err := storage.WritePaged(dir, ds, st, rowsPerPage); err != nil {
			return err
		}
		pds, pst, err := storage.OpenPaged(dir, name, e.pageCache, reg)
		if err != nil {
			return err
		}
		if pst == nil {
			pst = st
		}
		if err := e.base.Register(pds, pst); err != nil {
			return err
		}
	}
	return nil
}

// DatasetBytes sums the byte sizes of every base dataset — what the
// equivalence suite sizes its fractional page-cache budgets against.
func (e *Env) DatasetBytes() int64 {
	var total int64
	for _, name := range e.base.BaseNames() {
		if ds, ok := e.base.Get(name); ok {
			total += ds.ByteSize()
		}
	}
	return total
}

// Fresh returns an isolated execution context over the loaded data.
func (e *Env) Fresh() *engine.Context {
	return &engine.Context{
		Cluster:   cluster.New(e.nodes),
		Catalog:   e.base.CloneBases(),
		UDFs:      e.udfs,
		Params:    map[string]types.Value{},
		Batch:     e.Batch,
		NoVec:     e.NoVec,
		PageStats: &storage.PageScanStats{},
	}
}

// PageCache returns the shared cache ConvertPaged installed (nil before).
func (e *Env) PageCache() *storage.PageCache { return e.pageCache }

// algoConfig returns the experiment's algorithm rule configuration.
func (e *Env) algoConfig() core.AlgoConfig {
	cfg := core.DefaultAlgoConfig()
	cfg.EnableINLJ = e.indexed
	return cfg
}

// Strategies builds the six §7.2 strategies under the experiment's
// algorithm configuration.
func (e *Env) Strategies() []core.Strategy {
	algo := e.algoConfig()
	dynCfg := core.DefaultConfig()
	dynCfg.Algo = algo
	pilotCfg := dynCfg
	pilotCfg.PushDown = false
	return []core.Strategy{
		&core.Dynamic{Cfg: dynCfg},
		&optimizer.CostBased{Cfg: algo},
		&optimizer.BestOrder{Cfg: dynCfg},
		optimizer.NewWorstOrder(),
		&optimizer.PilotRun{Cfg: pilotCfg, SampleK: optimizer.DefaultPilotSampleK},
		&optimizer.IngresLike{Cfg: algo},
	}
}

// RunOne executes one strategy over a fresh context.
func (e *Env) RunOne(s core.Strategy, sql string) (*core.Report, error) {
	_, rep, err := e.RunOneResult(s, sql)
	return rep, err
}

// RunOneResult executes one strategy over a fresh context and also returns
// the query result (the equivalence tests compare rows across modes).
func (e *Env) RunOneResult(s core.Strategy, sql string) (*engine.Result, *core.Report, error) {
	ctx := e.Fresh()
	res, rep, err := s.Run(ctx, sql)
	if err != nil {
		return res, rep, fmt.Errorf("bench: %s: %w", s.Name(), err)
	}
	return res, rep, nil
}
