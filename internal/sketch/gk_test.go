package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGKEmpty(t *testing.T) {
	g := NewGK(0.01)
	if _, ok := g.Quantile(0.5); ok {
		t.Error("Quantile on empty sketch reported ok")
	}
	if _, ok := g.Min(); ok {
		t.Error("Min on empty sketch reported ok")
	}
	if _, ok := g.Max(); ok {
		t.Error("Max on empty sketch reported ok")
	}
	if g.Count() != 0 {
		t.Errorf("Count = %d", g.Count())
	}
	if g.Histogram(4) != nil {
		t.Error("Histogram on empty sketch not nil")
	}
}

func TestGKInvalidEpsilonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGK(0) did not panic")
		}
	}()
	NewGK(0)
}

func TestGKExactSmall(t *testing.T) {
	g := NewGK(0.01)
	for _, v := range []float64{5, 1, 3, 2, 4} {
		g.Insert(v)
	}
	if mn, _ := g.Min(); mn != 1 {
		t.Errorf("Min = %v", mn)
	}
	if mx, _ := g.Max(); mx != 5 {
		t.Errorf("Max = %v", mx)
	}
	if med, _ := g.Quantile(0.5); med < 2 || med > 4 {
		t.Errorf("median = %v", med)
	}
	if g.Count() != 5 {
		t.Errorf("Count = %d", g.Count())
	}
}

// quantile rank-error bound: the defining property of the sketch.
func TestGKQuantileErrorBound(t *testing.T) {
	const n = 20000
	const eps = 0.02
	rng := rand.New(rand.NewSource(42))
	g := NewGK(eps)
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
		g.Insert(data[i])
	}
	sort.Float64s(data)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q, ok := g.Quantile(phi)
		if !ok {
			t.Fatalf("Quantile(%v) not ok", phi)
		}
		// True rank of the answer must be within a few eps*n of phi*n
		// (merging batches can double the bound; allow 3x).
		rank := sort.SearchFloat64s(data, q)
		wantRank := phi * n
		if math.Abs(float64(rank)-wantRank) > 3*eps*n+1 {
			t.Errorf("phi=%v: returned value has rank %d, want within %v of %v",
				phi, rank, 3*eps*n, wantRank)
		}
	}
}

func TestGKQuantileErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3000
		const eps = 0.05
		g := NewGK(eps)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64() * 1000
			g.Insert(data[i])
		}
		sort.Float64s(data)
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			q, _ := g.Quantile(phi)
			rank := sort.SearchFloat64s(data, q)
			if math.Abs(float64(rank)-phi*n) > 3*eps*n+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGKCompression(t *testing.T) {
	g := NewGK(0.01)
	const n = 100000
	for i := 0; i < n; i++ {
		g.Insert(float64(i % 1000))
	}
	g.flush()
	// Summary must stay sublinear: O((1/eps) * log(eps*n)) entries.
	if len(g.entries) > 4000 {
		t.Errorf("summary size %d not compressed for n=%d", len(g.entries), n)
	}
	if g.Count() != n {
		t.Errorf("Count = %d, want %d", g.Count(), n)
	}
}

func TestGKMergePreservesCountAndBounds(t *testing.T) {
	a := NewGK(0.02)
	b := NewGK(0.02)
	for i := 0; i < 5000; i++ {
		a.Insert(float64(i))
		b.Insert(float64(i + 5000))
	}
	a.Merge(b)
	if a.Count() != 10000 {
		t.Errorf("merged Count = %d", a.Count())
	}
	if mn, _ := a.Min(); mn != 0 {
		t.Errorf("merged Min = %v", mn)
	}
	if mx, _ := a.Max(); mx != 9999 {
		t.Errorf("merged Max = %v", mx)
	}
	med, _ := a.Quantile(0.5)
	if med < 4000 || med > 6000 {
		t.Errorf("merged median = %v", med)
	}
	a.Merge(nil) // no-op
	if a.Count() != 10000 {
		t.Error("Merge(nil) changed count")
	}
}

func TestGKHistogramEquiHeight(t *testing.T) {
	g := NewGK(0.01)
	for i := 0; i < 10000; i++ {
		g.Insert(float64(i))
	}
	h := g.Histogram(10)
	if len(h) != 10 {
		t.Fatalf("bucket count = %d", len(h))
	}
	var total int64
	for i, b := range h {
		total += b.Count
		if b.Hi < b.Lo {
			t.Errorf("bucket %d: Hi %v < Lo %v", i, b.Hi, b.Lo)
		}
		// Equi-height: each bucket about n/10.
		if b.Count < 800 || b.Count > 1200 {
			t.Errorf("bucket %d count %d not ~1000", i, b.Count)
		}
	}
	if total < 9000 || total > 11000 {
		t.Errorf("total histogram mass = %d", total)
	}
	if h[len(h)-1].Hi < 9900 {
		t.Errorf("last bucket Hi = %v", h[len(h)-1].Hi)
	}
}

func TestGKEstimateRangeUniform(t *testing.T) {
	g := NewGK(0.01)
	const n = 10000
	for i := 0; i < n; i++ {
		g.Insert(float64(i))
	}
	cases := []struct {
		lo, hi float64
		want   float64
	}{
		{0, 9999, n},
		{0, 4999, n / 2},
		{2500, 7499, n / 2},
		{9000, 9999, n / 10},
		{-100, -1, 0},
		{10001, 20000, 0},
	}
	for _, c := range cases {
		got := float64(g.EstimateRange(c.lo, c.hi))
		if math.Abs(got-c.want) > 0.1*n*0.5+200 {
			t.Errorf("EstimateRange(%v,%v) = %v, want ~%v", c.lo, c.hi, got, c.want)
		}
	}
	if g.EstimateRange(5, 4) != 0 {
		t.Error("inverted range should estimate 0")
	}
}

func TestGKEstimateEqualsSkewed(t *testing.T) {
	g := NewGK(0.005)
	// 90% of the mass at value 7, the rest uniform.
	for i := 0; i < 9000; i++ {
		g.Insert(7)
	}
	for i := 0; i < 1000; i++ {
		g.Insert(float64(1000 + i))
	}
	got := g.EstimateEquals(7)
	if got < 7000 {
		t.Errorf("EstimateEquals(7) = %d, want heavy (~9000)", got)
	}
}

func TestGKRankOf(t *testing.T) {
	g := NewGK(0.01)
	for i := 0; i < 1000; i++ {
		g.Insert(float64(i))
	}
	r := g.RankOf(500)
	if r < 450 || r > 550 {
		t.Errorf("RankOf(500) = %d", r)
	}
	if g.RankOf(-1) != 0 {
		t.Errorf("RankOf(-1) = %d", g.RankOf(-1))
	}
}

func TestGKString(t *testing.T) {
	g := NewGK(0.05)
	g.Insert(1)
	if s := g.String(); s == "" {
		t.Error("String() empty")
	}
}
