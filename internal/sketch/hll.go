package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct-value sketch over pre-hashed 64-bit
// observations. Precision p gives m = 2^p registers and a relative standard
// error of about 1.04/sqrt(m); p = 12 (4096 registers, ~1.6% error) is the
// default used by the statistics framework.
type HLL struct {
	p         uint8
	registers []uint8
}

// DefaultHLLPrecision is the register precision used by the statistics
// framework (4096 registers, ≈1.6% standard error).
const DefaultHLLPrecision = 12

// NewHLL returns a HyperLogLog sketch with precision p in [4, 18].
func NewHLL(p uint8) *HLL {
	if p < 4 || p > 18 {
		panic(fmt.Sprintf("sketch: invalid HLL precision %d", p))
	}
	return &HLL{p: p, registers: make([]uint8, 1<<p)}
}

// Precision returns the register precision.
func (h *HLL) Precision() uint8 { return h.p }

// fmix64 is the murmur3 avalanche finalizer. Callers feed FNV hashes whose
// high bits mix poorly for short keys; without re-mixing, register indexes
// (taken from the top bits) collapse and the estimate craters.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add records one pre-hashed observation.
//
//dynopt:hotpath
func (h *HLL) Add(hash uint64) {
	hash = fmix64(hash)
	idx := hash >> (64 - h.p)
	rest := hash<<h.p | 1<<(h.p-1) // guard bit so LeadingZeros is bounded
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > h.registers[idx] {
		h.registers[idx] = rho
	}
}

// Estimate returns the approximate number of distinct observations added.
func (h *HLL) Estimate() int64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := hllAlpha(len(h.registers))
	raw := alpha * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		raw = m * math.Log(m/float64(zeros))
	}
	return int64(raw + 0.5)
}

// Merge folds other into h by taking the register-wise maximum. Both sketches
// must share a precision.
func (h *HLL) Merge(other *HLL) {
	if other == nil {
		return
	}
	if other.p != h.p {
		panic(fmt.Sprintf("sketch: HLL precision mismatch %d vs %d", h.p, other.p))
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
}

// Clone returns an independent copy of the sketch.
func (h *HLL) Clone() *HLL {
	out := &HLL{p: h.p, registers: make([]uint8, len(h.registers))}
	copy(out.registers, h.registers)
	return out
}

func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// String summarizes the sketch for debugging.
func (h *HLL) String() string {
	return fmt.Sprintf("HLL(p=%d, estimate=%d)", h.p, h.Estimate())
}
