package sketch

import (
	"hash/fnv"
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func TestHLLInvalidPrecisionPanics(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHLL(%d) did not panic", p)
				}
			}()
			NewHLL(p)
		}()
	}
}

func TestHLLEmpty(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	if got := h.Estimate(); got != 0 {
		t.Errorf("empty Estimate = %d", got)
	}
}

func TestHLLSmallExactish(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	for i := 0; i < 10; i++ {
		h.Add(hash64("v" + strconv.Itoa(i)))
	}
	got := h.Estimate()
	if got < 9 || got > 11 {
		t.Errorf("Estimate for 10 distinct = %d", got)
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	for rep := 0; rep < 100; rep++ {
		for i := 0; i < 50; i++ {
			h.Add(hash64("dup" + strconv.Itoa(i)))
		}
	}
	got := h.Estimate()
	if got < 45 || got > 55 {
		t.Errorf("Estimate for 50 distinct (x100 dups) = %d", got)
	}
}

func TestHLLAccuracyLarge(t *testing.T) {
	for _, n := range []int{1000, 50000, 200000} {
		h := NewHLL(DefaultHLLPrecision)
		for i := 0; i < n; i++ {
			h.Add(hash64("key-" + strconv.Itoa(i)))
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		// Standard error at p=12 is ~1.6%; allow 5 sigma.
		if relErr > 0.08 {
			t.Errorf("n=%d: Estimate=%v relErr=%v", n, got, relErr)
		}
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a := NewHLL(DefaultHLLPrecision)
	b := NewHLL(DefaultHLLPrecision)
	union := NewHLL(DefaultHLLPrecision)
	for i := 0; i < 30000; i++ {
		hv := hash64("a" + strconv.Itoa(i))
		a.Add(hv)
		union.Add(hv)
	}
	for i := 0; i < 30000; i++ {
		hv := hash64("b" + strconv.Itoa(i))
		b.Add(hv)
		union.Add(hv)
	}
	a.Merge(b)
	if a.Estimate() != union.Estimate() {
		t.Errorf("merged estimate %d != union estimate %d", a.Estimate(), union.Estimate())
	}
	a.Merge(nil) // no-op
}

func TestHLLMergeCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a1, b1 := NewHLL(8), NewHLL(8)
		a2, b2 := NewHLL(8), NewHLL(8)
		for _, x := range xs {
			a1.Add(x)
			a2.Add(x)
		}
		for _, y := range ys {
			b1.Add(y)
			b2.Add(y)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHLLMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge with mismatched precision did not panic")
		}
	}()
	NewHLL(8).Merge(NewHLL(10))
}

func TestHLLClone(t *testing.T) {
	h := NewHLL(8)
	for i := 0; i < 100; i++ {
		h.Add(hash64(strconv.Itoa(i)))
	}
	c := h.Clone()
	if c.Estimate() != h.Estimate() {
		t.Error("clone estimate differs")
	}
	c.Add(hash64("new-element-xyz"))
	// Original must be unaffected (register independence).
	h2 := NewHLL(8)
	for i := 0; i < 100; i++ {
		h2.Add(hash64(strconv.Itoa(i)))
	}
	if h.Estimate() != h2.Estimate() {
		t.Error("Clone shares registers with original")
	}
}

func TestHLLMonotoneUnderInsertProperty(t *testing.T) {
	f := func(xs []uint64) bool {
		h := NewHLL(8)
		prev := int64(0)
		for _, x := range xs {
			h.Add(x)
			e := h.Estimate()
			if e < prev {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHLLString(t *testing.T) {
	h := NewHLL(8)
	if h.String() == "" {
		t.Error("String() empty")
	}
	if h.Precision() != 8 {
		t.Errorf("Precision() = %d", h.Precision())
	}
}
