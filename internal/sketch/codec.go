package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codecs for the two sketches, used by the paged dataset store's
// statistics sidecar: a paged open must register planner statistics
// byte-identical to the ones ingestion collected, or plans (and therefore
// every placement-dependent counter) would drift between resident and paged
// runs. GK state is serialized post-flush — every query method flushes the
// insertion buffer first, so a flushed snapshot answers every quantile query
// exactly as the live sketch would.

// maxSketchEntries bounds decoded entry/register counts so a corrupt length
// prefix cannot force huge allocations.
const maxSketchEntries = 1 << 24

// Encode appends the GK sketch's flushed state to dst.
func (g *GK) Encode(dst []byte) []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(g.eps))
	dst = binary.AppendUvarint(dst, uint64(g.n))
	dst = binary.AppendUvarint(dst, uint64(len(g.entries)))
	for _, e := range g.entries {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
		dst = binary.AppendUvarint(dst, uint64(e.G))
		dst = binary.AppendUvarint(dst, uint64(e.Delta))
	}
	return dst
}

// DecodeGK decodes a sketch encoded by Encode from the front of src,
// returning the sketch and the bytes consumed.
func DecodeGK(src []byte) (*GK, int, error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("sketch: truncated GK header")
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(src))
	if !(eps > 0 && eps < 1) {
		return nil, 0, fmt.Errorf("sketch: invalid GK epsilon %v", eps)
	}
	off := 8
	n, m := binary.Uvarint(src[off:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("sketch: bad GK count")
	}
	off += m
	ne, m := binary.Uvarint(src[off:])
	if m <= 0 || ne > maxSketchEntries {
		return nil, 0, fmt.Errorf("sketch: bad GK entry count %d", ne)
	}
	off += m
	g := NewGK(eps)
	g.n = int64(n)
	g.entries = make([]gkEntry, ne)
	for i := range g.entries {
		if off+8 > len(src) {
			return nil, 0, fmt.Errorf("sketch: truncated GK entry %d", i)
		}
		g.entries[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
		gw, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("sketch: truncated GK entry %d weight", i)
		}
		off += m
		d, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("sketch: truncated GK entry %d delta", i)
		}
		off += m
		g.entries[i].G = int64(gw)
		g.entries[i].Delta = int64(d)
	}
	return g, off, nil
}

// Encode appends the HLL sketch's state to dst.
func (h *HLL) Encode(dst []byte) []byte {
	dst = append(dst, h.p)
	dst = binary.AppendUvarint(dst, uint64(len(h.registers)))
	return append(dst, h.registers...)
}

// DecodeHLL decodes a sketch encoded by Encode from the front of src,
// returning the sketch and the bytes consumed.
func DecodeHLL(src []byte) (*HLL, int, error) {
	if len(src) < 1 {
		return nil, 0, fmt.Errorf("sketch: truncated HLL header")
	}
	p := src[0]
	if p < 4 || p > 18 {
		return nil, 0, fmt.Errorf("sketch: invalid HLL precision %d", p)
	}
	off := 1
	nr, m := binary.Uvarint(src[off:])
	if m <= 0 || nr != 1<<p {
		return nil, 0, fmt.Errorf("sketch: HLL register count %d disagrees with precision %d", nr, p)
	}
	off += m
	if len(src)-off < int(nr) {
		return nil, 0, fmt.Errorf("sketch: truncated HLL registers")
	}
	h := NewHLL(p)
	copy(h.registers, src[off:off+int(nr)])
	return h, off + int(nr), nil
}
