// Package sketch implements the two streaming summaries the paper's
// statistics framework relies on (§4): Greenwald-Khanna quantile sketches,
// from which equi-height histogram buckets are extracted for selectivity
// estimation, and HyperLogLog sketches for the distinct-value counts used by
// the join-cardinality formula |A ⋈k B| = S(A)·S(B)/max(U(A.k), U(B.k)).
//
// Both sketches are mergeable so per-partition collectors can run in
// parallel during ingestion and materialization and be combined at the
// coordinator, matching the shared-nothing setting.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// gkEntry is one tuple of the GK summary: Value with weight G (number of
// observations it stands for) and Delta (uncertainty of its rank).
type gkEntry struct {
	Value float64
	G     int64
	Delta int64
}

// GK is a Greenwald-Khanna ε-approximate quantile sketch over float64
// observations. Quantile queries are accurate to ±ε·n ranks. The zero value
// is not usable; construct with NewGK.
//
// All methods are safe for concurrent use: queries flush the insertion
// buffer (a structural mutation), and base-dataset sketches are read by
// every concurrently planning query, so even the read path must serialize.
type GK struct {
	mu      sync.Mutex
	eps     float64
	entries []gkEntry
	n       int64
	buf     []float64 // insertion buffer, flushed in sorted batches
	bufCap  int
}

// NewGK returns a GK sketch with error bound eps (e.g. 0.01 keeps quantiles
// within 1% of true rank).
func NewGK(eps float64) *GK {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sketch: invalid GK epsilon %v", eps))
	}
	bufCap := int(1/eps) * 2
	if bufCap < 64 {
		bufCap = 64
	}
	return &GK{eps: eps, bufCap: bufCap}
}

// Epsilon returns the sketch's rank-error bound.
func (g *GK) Epsilon() float64 { return g.eps }

// Count returns the number of observations inserted so far.
func (g *GK) Count() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n + int64(len(g.buf))
}

// Insert adds one observation to the sketch.
//
//dynopt:hotpath
func (g *GK) Insert(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.buf = append(g.buf, v)
	if len(g.buf) >= g.bufCap {
		g.flush()
	}
}

// flush merges buffered observations into the summary in one sorted pass,
// then compresses. The caller must hold g.mu.
func (g *GK) flush() {
	if len(g.buf) == 0 {
		return
	}
	sort.Float64s(g.buf)
	merged := make([]gkEntry, 0, len(g.entries)+len(g.buf))
	bi, ei := 0, 0
	for bi < len(g.buf) || ei < len(g.entries) {
		if ei >= len(g.entries) || (bi < len(g.buf) && g.buf[bi] < g.entries[ei].Value) {
			v := g.buf[bi]
			var delta int64
			// A new observation inserted in the interior carries
			// delta = floor(2·ε·n); at the extremes delta = 0.
			if len(merged) > 0 && (ei < len(g.entries) || bi < len(g.buf)-1) {
				delta = int64(2 * g.eps * float64(g.n))
			}
			merged = append(merged, gkEntry{Value: v, G: 1, Delta: delta})
			g.n++
			bi++
		} else {
			merged = append(merged, g.entries[ei])
			ei++
		}
	}
	g.entries = merged
	g.buf = g.buf[:0]
	g.compress()
}

// compress removes entries whose combined uncertainty stays within 2·ε·n.
func (g *GK) compress() {
	if len(g.entries) < 3 {
		return
	}
	threshold := int64(2 * g.eps * float64(g.n))
	out := g.entries[:1] // always keep the minimum
	for i := 1; i < len(g.entries)-1; i++ {
		e := g.entries[i]
		next := g.entries[i+1]
		if e.G+next.G+next.Delta <= threshold {
			// Merge e into its successor.
			g.entries[i+1].G += e.G
			continue
		}
		out = append(out, e)
	}
	out = append(out, g.entries[len(g.entries)-1])
	g.entries = out
}

// Quantile returns an ε-approximate φ-quantile (φ in [0,1]). Returns ok=false
// for an empty sketch.
func (g *GK) Quantile(phi float64) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quantileLocked(phi)
}

func (g *GK) quantileLocked(phi float64) (float64, bool) {
	g.flush()
	if g.n == 0 {
		return 0, false
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	targetRank := int64(math.Ceil(phi * float64(g.n)))
	if targetRank < 1 {
		targetRank = 1
	}
	margin := int64(g.eps * float64(g.n))
	var rank int64
	for i, e := range g.entries {
		rank += e.G
		if rank+e.Delta >= targetRank-margin && (i == len(g.entries)-1 || rank >= targetRank-margin) {
			if rank+e.Delta >= targetRank {
				return e.Value, true
			}
		}
		if rank >= targetRank {
			return e.Value, true
		}
	}
	return g.entries[len(g.entries)-1].Value, true
}

// Min returns the smallest observation, ok=false when empty.
func (g *GK) Min() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.minLocked()
}

func (g *GK) minLocked() (float64, bool) {
	g.flush()
	if g.n == 0 {
		return 0, false
	}
	return g.entries[0].Value, true
}

// Max returns the largest observation, ok=false when empty.
func (g *GK) Max() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxLocked()
}

func (g *GK) maxLocked() (float64, bool) {
	g.flush()
	if g.n == 0 {
		return 0, false
	}
	return g.entries[len(g.entries)-1].Value, true
}

// RankOf returns the approximate number of observations strictly less than v.
func (g *GK) RankOf(v float64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	var rank int64
	for _, e := range g.entries {
		if e.Value >= v {
			break
		}
		rank += e.G
	}
	return rank
}

// Merge folds other into g. The merged summary is compressed under g's ε;
// standard GK merging may up to double the effective error, which is
// acceptable for the planner's bucket estimates.
func (g *GK) Merge(other *GK) {
	if other == nil {
		return
	}
	// Snapshot other under its own lock first, then fold in under g's lock,
	// so the two locks are never held together (no ordering hazard).
	other.mu.Lock()
	other.flush()
	otherEntries := append([]gkEntry(nil), other.entries...)
	otherN := other.n
	other.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	if otherN == 0 {
		return
	}
	merged := make([]gkEntry, 0, len(g.entries)+len(otherEntries))
	i, j := 0, 0
	for i < len(g.entries) || j < len(otherEntries) {
		switch {
		case i >= len(g.entries):
			merged = append(merged, otherEntries[j])
			j++
		case j >= len(otherEntries):
			merged = append(merged, g.entries[i])
			i++
		case g.entries[i].Value <= otherEntries[j].Value:
			merged = append(merged, g.entries[i])
			i++
		default:
			merged = append(merged, otherEntries[j])
			j++
		}
	}
	g.entries = merged
	g.n += otherN
	g.compress()
}

// Bucket is one equi-height histogram bucket: observations in (Lo, Hi] (the
// first bucket includes Lo), approximately Count of them.
type Bucket struct {
	Lo, Hi float64
	Count  int64
}

// Histogram extracts an equi-height histogram with the requested number of
// buckets, following the paper's use of GK quantiles as right borders of
// equi-height buckets. Fewer buckets are returned when the data has fewer
// distinct quantile points.
func (g *GK) Histogram(buckets int) []Bucket {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	if g.n == 0 || buckets <= 0 {
		return nil
	}
	lo, _ := g.minLocked()
	per := float64(g.n) / float64(buckets)
	out := make([]Bucket, 0, buckets)
	prev := lo
	for b := 1; b <= buckets; b++ {
		q, _ := g.quantileLocked(float64(b) / float64(buckets))
		if len(out) > 0 && q == out[len(out)-1].Hi {
			out[len(out)-1].Count += int64(per)
			continue
		}
		out = append(out, Bucket{Lo: prev, Hi: q, Count: int64(per)})
		prev = q
	}
	return out
}

// EstimateRange estimates how many observations fall in [lo, hi] using
// linear interpolation within histogram-equivalent rank positions.
func (g *GK) EstimateRange(lo, hi float64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	if g.n == 0 || hi < lo {
		return 0
	}
	rlo := g.rankInterp(lo)
	rhi := g.rankInterp(math.Nextafter(hi, math.Inf(1)))
	est := rhi - rlo
	if est < 0 {
		est = 0
	}
	if est > float64(g.n) {
		est = float64(g.n)
	}
	return int64(est)
}

// EstimateEquals estimates how many observations equal v.
func (g *GK) EstimateEquals(v float64) int64 {
	return g.EstimateRange(v, v)
}

// rankInterp returns the interpolated fractional rank of v (observations < v).
// The caller must hold g.mu.
func (g *GK) rankInterp(v float64) float64 {
	if g.n == 0 {
		return 0
	}
	mn, _ := g.minLocked()
	mx, _ := g.maxLocked()
	if v <= mn {
		return 0
	}
	if v > mx {
		return float64(g.n)
	}
	var rank int64
	for i, e := range g.entries {
		if e.Value >= v {
			// Interpolate between the previous entry and this one.
			if i == 0 {
				return 0
			}
			prev := g.entries[i-1]
			span := e.Value - prev.Value
			if span <= 0 {
				return float64(rank)
			}
			frac := (v - prev.Value) / span
			return float64(rank) + frac*float64(e.G)
		}
		rank += e.G
	}
	return float64(g.n)
}

// String summarizes the sketch for debugging.
func (g *GK) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flush()
	var b strings.Builder
	fmt.Fprintf(&b, "GK(eps=%g, n=%d, entries=%d)", g.eps, g.n, len(g.entries))
	return b.String()
}
