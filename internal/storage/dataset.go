// Package storage implements the partitioned dataset layer: hash-partitioned
// base datasets with ingestion-time statistics collection (standing in for
// AsterixDB's LSM ingestion stats), secondary indexes for indexed
// nested-loop joins, and the temp store holding materialized intermediate
// results between re-optimization points.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// Dataset is one hash-partitioned dataset. Partitions map 1:1 to cluster
// nodes. Schema fields carry empty qualifiers; scans requalify them with the
// query alias.
type Dataset struct {
	Name       string
	Schema     *types.Schema
	PrimaryKey []string
	Parts      [][]types.Tuple
	Indexes    map[string]*Index // secondary indexes by field name
	Temp       bool              // materialized intermediate (no indexes survive)
}

// RowCount returns the total number of rows across partitions.
func (d *Dataset) RowCount() int64 {
	var n int64
	for _, p := range d.Parts {
		n += int64(len(p))
	}
	return n
}

// ByteSize returns the total encoded size across partitions.
func (d *Dataset) ByteSize() int64 {
	var n int64
	for _, p := range d.Parts {
		for _, t := range p {
			n += int64(t.EncodedSize())
		}
	}
	return n
}

// PartitionFields returns the fields the dataset is hash-partitioned on
// (its primary key, or nil for round-robin temp data).
func (d *Dataset) PartitionFields() []string { return d.PrimaryKey }

// HasIndex reports whether a secondary index exists on the field.
func (d *Dataset) HasIndex(field string) bool {
	_, ok := d.Indexes[field]
	return ok
}

// Build constructs a base dataset: rows are hash-partitioned on the primary
// key across nparts partitions (round-robin when pk is empty), and every
// field is fed through the statistics collectors during the load — the
// "upfront statistics gained during loading" of §7 that seed the first plan.
func Build(name string, schema *types.Schema, pk []string, rows []types.Tuple, nparts int) (*Dataset, *stats.DatasetStats, error) {
	if nparts < 1 {
		nparts = 1
	}
	ds := &Dataset{
		Name:       name,
		Schema:     schema,
		PrimaryKey: pk,
		Parts:      make([][]types.Tuple, nparts),
		Indexes:    map[string]*Index{},
	}
	var pkIdx []int
	for _, f := range pk {
		i, ok := schema.Index(f)
		if !ok {
			return nil, nil, fmt.Errorf("storage: primary key field %q not in schema %s", f, schema)
		}
		pkIdx = append(pkIdx, i)
	}
	st := stats.NewDatasetStats(name)
	for i, row := range rows {
		if len(row) != schema.Len() {
			return nil, nil, fmt.Errorf("storage: row %d has %d values, schema has %d", i, len(row), schema.Len())
		}
		var p int
		if len(pkIdx) > 0 {
			p = int(row.HashKeys(pkIdx) % uint64(nparts))
		} else {
			p = i % nparts
		}
		ds.Parts[p] = append(ds.Parts[p], row)
		st.ObserveTuple(schema, row, nil)
	}
	return ds, st, nil
}

// BuildParallel is Build with partition-parallel statistics collection: each
// partition runs its own collectors, merged at the end. Semantically
// identical to Build; used by large ingests and exercised by tests to verify
// sketch mergeability.
func BuildParallel(name string, schema *types.Schema, pk []string, rows []types.Tuple, nparts int) (*Dataset, *stats.DatasetStats, error) {
	ds, _, err := Build(name, schema, pk, rows, nparts)
	if err != nil {
		return nil, nil, err
	}
	partStats := make([]*stats.DatasetStats, len(ds.Parts))
	var wg sync.WaitGroup
	for p := range ds.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := stats.NewDatasetStats(name)
			for _, row := range ds.Parts[p] {
				st.ObserveTuple(schema, row, nil)
			}
			partStats[p] = st
		}(p)
	}
	wg.Wait()
	merged := stats.NewDatasetStats(name)
	for _, st := range partStats {
		merged.Merge(st)
	}
	return ds, merged, nil
}

// Index is a secondary index: per partition, row offsets sorted by key, with
// binary-search lookup. It indexes the partition-local rows (each node
// indexes its own data, as in AsterixDB's local secondary indexes).
type Index struct {
	Field string
	parts []indexPart
}

type indexPart struct {
	keys []types.Value // sorted
	rows []int         // parallel to keys: row offset within the partition
}

// BuildIndex creates (and attaches) a secondary index on the field.
func BuildIndex(ds *Dataset, field string) (*Index, error) {
	fi, ok := ds.Schema.Index(field)
	if !ok {
		return nil, fmt.Errorf("storage: index field %q not in schema of %s", field, ds.Name)
	}
	idx := &Index{Field: field, parts: make([]indexPart, len(ds.Parts))}
	for p, part := range ds.Parts {
		ip := indexPart{
			keys: make([]types.Value, len(part)),
			rows: make([]int, len(part)),
		}
		order := make([]int, len(part))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return part[order[a]][fi].Compare(part[order[b]][fi]) < 0
		})
		for i, r := range order {
			ip.keys[i] = part[r][fi]
			ip.rows[i] = r
		}
		idx.parts[p] = ip
	}
	ds.Indexes[field] = idx
	return idx, nil
}

// Lookup returns the row offsets within partition p whose indexed field
// equals key.
func (ix *Index) Lookup(p int, key types.Value) []int {
	if p < 0 || p >= len(ix.parts) {
		return nil
	}
	ip := &ix.parts[p]
	lo := sort.Search(len(ip.keys), func(i int) bool { return ip.keys[i].Compare(key) >= 0 })
	var out []int
	for i := lo; i < len(ip.keys) && ip.keys[i].Equal(key); i++ {
		out = append(out, ip.rows[i])
	}
	return out
}

// Partitions returns the number of partitions the index covers.
func (ix *Index) Partitions() int { return len(ix.parts) }
