// Package storage implements the partitioned dataset layer: hash-partitioned
// base datasets with ingestion-time statistics collection (standing in for
// AsterixDB's LSM ingestion stats), secondary indexes for indexed
// nested-loop joins, and the temp store holding materialized intermediate
// results between re-optimization points.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// Dataset is one hash-partitioned dataset. Partitions map 1:1 to cluster
// nodes. Schema fields carry empty qualifiers; scans requalify them with the
// query alias.
type Dataset struct {
	Name       string
	Schema     *types.Schema
	PrimaryKey []string
	Parts      [][]types.Tuple
	Indexes    map[string]*Index // secondary indexes by field name
	Temp       bool              // materialized intermediate (no indexes survive)

	// sizes caches encoded byte sizes: datasets are immutable once loaded,
	// so the sizes the scan and spill metering need are computed once per
	// dataset, not once per scan.
	sizes types.SizeCache

	// paged, when set, is the dataset's disk backing: Parts holds empty
	// slices (partition count preserved for every len(Parts) caller) and row
	// access routes through the page file. See paged.go.
	paged *PagedData
}

// RowCount returns the total number of rows across partitions.
func (d *Dataset) RowCount() int64 {
	if d.paged != nil {
		return d.paged.file.Rows()
	}
	var n int64
	for _, p := range d.Parts {
		n += int64(len(p))
	}
	return n
}

// ByteSize returns the total encoded size across partitions, computed once
// and cached. Callers must not mutate Parts after the first call.
func (d *Dataset) ByteSize() int64 { return d.sizes.Total(d.Parts) }

// PartBytes returns the encoded size of partition p, cached like ByteSize.
func (d *Dataset) PartBytes(p int) int64 { return d.sizes.Part(d.Parts, p) }

// SeedSizes installs encoded sizes the caller already computed (the engine's
// sink materializes a relation whose sizes are known), so the lazy pass in
// ByteSize/PartBytes never runs. Must be called before the dataset is shared
// across goroutines.
func (d *Dataset) SeedSizes(partBytes []int64, total int64) {
	d.sizes.Seed(partBytes, total)
}

// PartitionFields returns the fields the dataset is hash-partitioned on
// (its primary key, or nil for round-robin temp data).
func (d *Dataset) PartitionFields() []string { return d.PrimaryKey }

// ChunkReader streams one partition's rows in fixed-size windows — the
// storage face of the engine's chunk pipeline. The returned windows alias
// the stored rows (zero-copy); callers must treat them as read-only.
//
// The reader is also the window's columnar decoder: Col gathers a column of
// the current window into a typed vector (cached per window, buffers reused
// across windows), which is what the engine's vectorized predicate kernels
// and the columnar join-key prehash read instead of row-form values.
type ChunkReader struct {
	part []types.Tuple
	size int
	off  int
	cols *types.ColCache
}

// ChunkReader returns a reader over partition p yielding at most size rows
// per chunk. size < 1 yields the whole partition in one chunk.
func (d *Dataset) ChunkReader(p, size int) *ChunkReader {
	if size < 1 {
		size = len(d.Parts[p])
	}
	return &ChunkReader{part: d.Parts[p], size: size, cols: types.NewColCache(d.Schema)}
}

// Next returns the next window of rows, or false at the end of the
// partition. Empty partitions return false immediately.
func (r *ChunkReader) Next() ([]types.Tuple, bool) {
	if r.off >= len(r.part) {
		return nil, false
	}
	end := r.off + r.size
	if end > len(r.part) {
		end = len(r.part)
	}
	w := r.part[r.off:end]
	r.off = end
	r.cols.SetWindow(w)
	return w, true
}

// Col implements types.ColSource over the current window: column i decoded
// to a typed vector, gathered on first request per window.
func (r *ChunkReader) Col(i int) *types.ColVec { return r.cols.Col(i) }

// HasIndex reports whether a secondary index exists on the field.
func (d *Dataset) HasIndex(field string) bool {
	_, ok := d.Indexes[field]
	return ok
}

// Build constructs a base dataset: rows are hash-partitioned on the primary
// key across nparts partitions (round-robin when pk is empty), and every
// field is fed through the statistics collectors during the load — the
// "upfront statistics gained during loading" of §7 that seed the first plan.
func Build(name string, schema *types.Schema, pk []string, rows []types.Tuple, nparts int) (*Dataset, *stats.DatasetStats, error) {
	return build(name, schema, pk, rows, nparts, true)
}

// build is Build with the statistics pass optional: BuildParallel skips the
// serial sketch collection here and runs its own partition-parallel one
// (the size cache is always seeded either way). With collectStats false the
// returned stats carry only the row/byte totals.
func build(name string, schema *types.Schema, pk []string, rows []types.Tuple, nparts int, collectStats bool) (*Dataset, *stats.DatasetStats, error) {
	if nparts < 1 {
		nparts = 1
	}
	ds := &Dataset{
		Name:       name,
		Schema:     schema,
		PrimaryKey: pk,
		Parts:      make([][]types.Tuple, nparts),
		Indexes:    map[string]*Index{},
	}
	var pkIdx []int
	for _, f := range pk {
		i, ok := schema.Index(f)
		if !ok {
			return nil, nil, fmt.Errorf("storage: primary key field %q not in schema %s", f, schema)
		}
		pkIdx = append(pkIdx, i)
	}
	for i, row := range rows {
		if len(row) != schema.Len() {
			return nil, nil, fmt.Errorf("storage: row %d has %d values, schema has %d", i, len(row), schema.Len())
		}
	}
	// Bulk-prehash the primary key once per row, count occupancy, and
	// presize the partitions — the same prehash-then-fill shape as the
	// engine's exchange, so bulk loads stay allocation-lean too.
	var hashes []uint64
	if len(pkIdx) > 0 {
		hashes = types.HashKeysInto(rows, pkIdx, nil)
	}
	partOf := func(i int) int {
		if hashes != nil {
			return int(hashes[i] % uint64(nparts))
		}
		return i % nparts
	}
	counts := make([]int, nparts)
	for i := range rows {
		counts[partOf(i)]++
	}
	for p := range ds.Parts {
		ds.Parts[p] = make([]types.Tuple, 0, counts[p])
	}
	// One EncodedSize walk per row covers both the statistics byte totals and
	// the dataset's partition size cache — ByteSize/PartBytes never re-walk
	// the tuples afterwards.
	st := stats.NewDatasetStats(name)
	partBytes := make([]int64, nparts)
	var totalBytes int64
	//dynopt:hotpath
	for i, row := range rows {
		p := partOf(i)
		ds.Parts[p] = append(ds.Parts[p], row)
		sz := int64(row.EncodedSize())
		partBytes[p] += sz
		totalBytes += sz
		if collectStats {
			st.ObserveTupleSized(schema, row, nil, sz)
		}
	}
	if !collectStats {
		st.RecordCount = int64(len(rows))
		st.ByteSize = totalBytes
	}
	ds.SeedSizes(partBytes, totalBytes)
	return ds, st, nil
}

// BuildParallel is Build with partition-parallel statistics collection: each
// partition runs its own collectors, merged at the end. Semantically
// identical to Build; used by large ingests and exercised by tests to verify
// sketch mergeability.
func BuildParallel(name string, schema *types.Schema, pk []string, rows []types.Tuple, nparts int) (*Dataset, *stats.DatasetStats, error) {
	// Skip the serial sketch pass: the per-partition goroutines below are
	// the only ones feeding the collectors, so no row is observed twice.
	ds, _, err := build(name, schema, pk, rows, nparts, false)
	if err != nil {
		return nil, nil, err
	}
	partStats := make([]*stats.DatasetStats, len(ds.Parts))
	var wg sync.WaitGroup
	for p := range ds.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := stats.NewDatasetStats(name)
			for _, row := range ds.Parts[p] {
				st.ObserveTupleSized(schema, row, nil, 0)
			}
			// Byte totals come from the size cache Build already seeded; the
			// per-partition observation loop only feeds the sketches.
			st.ByteSize = ds.PartBytes(p)
			partStats[p] = st
		}(p)
	}
	wg.Wait()
	merged := stats.NewDatasetStats(name)
	for _, st := range partStats {
		merged.Merge(st)
	}
	return ds, merged, nil
}

// Index is a secondary index: per partition, row offsets sorted by key, with
// binary-search lookup. It indexes the partition-local rows (each node
// indexes its own data, as in AsterixDB's local secondary indexes).
type Index struct {
	Field string
	parts []indexPart
}

type indexPart struct {
	keys []types.Value // sorted
	rows []int         // parallel to keys: row offset within the partition

	// ikeys mirrors keys as raw int64s when every key is KindInt (the
	// common case for FK indexes): binary search then compares 8-byte
	// machine ints on a dense array instead of calling Value.Compare across
	// 32-byte elements. Compare orders ints numerically, so the orders
	// agree exactly.
	ikeys []int64
}

// BuildIndex creates (and attaches) a secondary index on the field. Paged
// datasets materialize each partition transiently from its pages — the index
// itself stores only (key, row offset) pairs, so nothing row-shaped is
// retained after the build.
func BuildIndex(ds *Dataset, field string) (*Index, error) {
	fi, ok := ds.Schema.Index(field)
	if !ok {
		return nil, fmt.Errorf("storage: index field %q not in schema of %s", field, ds.Name)
	}
	idx := &Index{Field: field, parts: make([]indexPart, len(ds.Parts))}
	for p := range ds.Parts {
		part := ds.Parts[p]
		if ds.paged != nil {
			var err error
			part, err = ds.paged.MaterializePart(p)
			if err != nil {
				return nil, err
			}
		}
		ip := indexPart{
			keys: make([]types.Value, len(part)),
			rows: make([]int, len(part)),
		}
		order := make([]int, len(part))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return part[order[a]][fi].Compare(part[order[b]][fi]) < 0
		})
		allInt := true
		for i, r := range order {
			ip.keys[i] = part[r][fi]
			ip.rows[i] = r
			if ip.keys[i].K != types.KindInt {
				allInt = false
			}
		}
		if allInt {
			ip.ikeys = make([]int64, len(ip.keys))
			for i, k := range ip.keys {
				ip.ikeys[i] = k.I()
			}
		}
		idx.parts[p] = ip
	}
	ds.Indexes[field] = idx
	return idx, nil
}

// Lookup returns the half-open range [lo, hi) of positions in partition p's
// sorted key order whose indexed field equals key; Row maps a position back
// to the row offset within the partition. Returning a range instead of a
// materialized []int keeps index probes allocation-free — IndexNLJoin issues
// one Lookup per outer row per partition.
func (ix *Index) Lookup(p int, key types.Value) (lo, hi int) {
	if p < 0 || p >= len(ix.parts) {
		return 0, 0
	}
	ip := &ix.parts[p]
	if ip.ikeys != nil && key.K == types.KindInt {
		k := key.I()
		lo = sort.Search(len(ip.ikeys), func(i int) bool { return ip.ikeys[i] >= k })
		hi = lo
		for hi < len(ip.ikeys) && ip.ikeys[hi] == k {
			hi++
		}
		return lo, hi
	}
	lo = sort.Search(len(ip.keys), func(i int) bool { return ip.keys[i].Compare(key) >= 0 })
	hi = lo + sort.Search(len(ip.keys)-lo, func(i int) bool { return ip.keys[lo+i].Compare(key) > 0 })
	return lo, hi
}

// Row returns the partition-local row offset stored at index position i of
// partition p (i must come from a Lookup range on the same partition).
func (ix *Index) Row(p, i int) int { return ix.parts[p].rows[i] }

// Rows returns partition p's full position→row-offset mapping in sorted key
// order. Callers must treat it as read-only; tight fetch loops index it
// directly instead of calling Row per position.
func (ix *Index) Rows(p int) []int { return ix.parts[p].rows }

// Partitions returns the number of partitions the index covers.
func (ix *Index) Partitions() int { return len(ix.parts) }
