package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"dynopt/internal/faults"
	"dynopt/internal/types"
)

// mixedSchema is a page-file test schema exercising every typed column path
// plus NULLs.
func mixedSchema() *types.Schema {
	return &types.Schema{Fields: []types.Field{
		{Name: "id", Kind: types.KindInt},
		{Name: "w", Kind: types.KindFloat},
		{Name: "tag", Kind: types.KindString},
	}}
}

func mixedRows(n, nullEvery int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		w := types.Float(float64(i) / 3)
		if nullEvery > 0 && i%nullEvery == 0 {
			w = types.Null()
		}
		rows[i] = types.Tuple{types.Int(int64(i)), w, types.Str(fmt.Sprintf("t%03d", i%50))}
	}
	return rows
}

// writePageFile writes rows split evenly over nparts partitions and returns
// the path.
func writePageFile(t *testing.T, dir string, schema *types.Schema, rows []types.Tuple, nparts, rowsPerPage int) string {
	t.Helper()
	path := filepath.Join(dir, "t.dynpg")
	w, err := NewPageWriter(path, schema, rowsPerPage)
	if err != nil {
		t.Fatal(err)
	}
	per := (len(rows) + nparts - 1) / nparts
	for p := 0; p < nparts; p++ {
		if err := w.StartPartition(); err != nil {
			t.Fatal(err)
		}
		lo, hi := p*per, (p+1)*per
		if hi > len(rows) {
			hi = len(rows)
		}
		for _, r := range rows[max(lo, 0):max(hi, 0)] {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAllRows decodes every page of every partition in order.
func readAllRows(t *testing.T, pf *PageFile) []types.Tuple {
	t.Helper()
	var out []types.Tuple
	var pd types.PageData
	for p := 0; p < pf.Partitions(); p++ {
		for i := range pf.Part(p).Pages {
			buf, err := pf.ReadPage(nil, p, i)
			if err != nil {
				t.Fatal(err)
			}
			if err := pd.DecodePage(buf, pf.Schema(), nil); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < pd.NRows; r++ {
				out = append(out, pd.Tuple(r))
			}
		}
	}
	return out
}

func TestPageFileRoundTrip(t *testing.T) {
	sch := mixedSchema()
	rows := mixedRows(1000, 7)
	path := writePageFile(t, t.TempDir(), sch, rows, 3, 64)
	pf, err := OpenPageFile(path, sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.Rows() != 1000 {
		t.Errorf("Rows = %d, want 1000", pf.Rows())
	}
	if pf.Partitions() != 3 {
		t.Errorf("Partitions = %d, want 3", pf.Partitions())
	}
	got := readAllRows(t, pf)
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("decoded rows diverged from the written rows")
	}
	if err := pf.Verify(); err != nil {
		t.Errorf("Verify on a clean file: %v", err)
	}
	// Directory zone maps must hold the true per-page min/max and null
	// counts: id is ascending within each partition, so page i's id range is
	// exactly [first row, last row] of that page.
	for p := 0; p < pf.Partitions(); p++ {
		var off int64
		for i, pg := range pf.Part(p).Pages {
			cs := pg.Cols[0]
			if !cs.HasMinMax {
				t.Fatalf("page %d/%d id zone map missing", p, i)
			}
			wantMin := int64(p*334) + off
			if cs.Min.I() != wantMin || cs.Max.I() != wantMin+int64(pg.Rows)-1 {
				t.Errorf("page %d/%d id zone map [%v, %v], want [%d, %d]",
					p, i, cs.Min, cs.Max, wantMin, wantMin+int64(pg.Rows)-1)
			}
			if pg.Cols[1].Nulls == 0 && pg.Rows >= 7 {
				t.Errorf("page %d/%d w null count 0 over %d rows with every 7th NULL", p, i, pg.Rows)
			}
			off += int64(pg.Rows)
		}
	}
}

// TestPageFileCorruptionClassified drives every MutateFile damage kind
// against a sealed page file: whatever the mutation hits — a page payload, a
// frame header, the directory, the footer — the outcome must be a classified
// faults.ErrCorrupt from open, verify, or decode. Never a panic, never
// silently wrong rows.
func TestPageFileCorruptionClassified(t *testing.T) {
	sch := mixedSchema()
	rows := mixedRows(600, 9)
	for _, tc := range []struct {
		name string
		kind faults.CorruptKind
	}{
		{"flip-bit", faults.CorruptFlipBit},
		{"truncate-tail", faults.CorruptTruncateTail},
		{"torn-write", faults.CorruptTornWrite},
	} {
		for seed := int64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				path := writePageFile(t, t.TempDir(), sch, rows, 2, 32)
				reg := faults.New(100 + seed)
				reg.Arm(faults.Rule{Point: "page.corrupt", OneShot: true, Corrupt: tc.kind})
				pf, err := OpenPageFile(path, sch, reg)
				if reg.Fired("page.corrupt") != 1 {
					t.Fatal("page.corrupt never fired")
				}
				if err != nil {
					if !errors.Is(err, faults.ErrCorrupt) {
						t.Fatalf("open failed unclassified: %v", err)
					}
					return
				}
				defer pf.Close()
				if err := pf.Verify(); err != nil {
					if !errors.Is(err, faults.ErrCorrupt) {
						t.Fatalf("verify failed unclassified: %v", err)
					}
					return
				}
				// Verify passed end to end: the decode must then reproduce the
				// written rows exactly — damage that slipped every checksum
				// and changed a row would be the silent-wrong-rows failure
				// this test exists to rule out.
				if got := readAllRows(t, pf); !reflect.DeepEqual(got, rows) {
					t.Fatal("verify passed but decoded rows diverged: silent corruption")
				}
			})
		}
	}
}

// TestPageReadFaultClassified: an injected I/O error on the page.read point
// surfaces classified, not as corruption.
func TestPageReadFaultClassified(t *testing.T) {
	sch := mixedSchema()
	path := writePageFile(t, t.TempDir(), sch, mixedRows(100, 0), 1, 32)
	reg := faults.New(7)
	pf, err := OpenPageFile(path, sch, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	reg.Arm(faults.Rule{Point: "page.read", OneShot: true})
	if _, err := pf.ReadPage(nil, 0, 0); !errors.Is(err, faults.ErrSpillIO) {
		t.Fatalf("injected read fault not classified ErrSpillIO: %v", err)
	}
	// The fault was one-shot; the next read succeeds.
	if _, err := pf.ReadPage(nil, 0, 0); err != nil {
		t.Fatalf("read after one-shot fault: %v", err)
	}
}

// TestPageCacheMultiFileKeying: a cache shared across datasets must key
// payloads by owning file, not bare (part, page) coordinates — two files
// always share those.
func TestPageCacheMultiFileKeying(t *testing.T) {
	sch := intSchema("a", "b")
	dir := t.TempDir()
	write := func(name string, base int64) *PageFile {
		path := filepath.Join(dir, name)
		w, err := NewPageWriter(path, sch, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.StartPartition(); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 16; i++ {
			if err := w.Append(types.Tuple{types.Int(base + i), types.Int(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		pf, err := OpenPageFile(path, sch, nil)
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	fa, fb := write("a.dynpg", 0), write("b.dynpg", 1000)
	defer fa.Close()
	defer fb.Close()

	cache := NewPageCache(1 << 20)
	bufA, err := fa.ReadPage(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(fa, 0, 0, bufA)
	if cache.Get(fb, 0, 0) != nil {
		t.Fatal("cache returned file A's page for file B's (0, 0)")
	}
	if cache.Get(fa, 0, 0) == nil {
		t.Fatal("cache missed file A's own page")
	}
	bufB, err := fb.ReadPage(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(fb, 0, 0, bufB)
	var pd types.PageData
	if err := pd.DecodePage(cache.Get(fb, 0, 0), sch, nil); err != nil {
		t.Fatal(err)
	}
	if got := pd.Tuple(0)[0].I(); got != 1000 {
		t.Fatalf("file B's cached page decodes id %d, want 1000", got)
	}
}

// TestPageCacheBudgetAndEviction: the cache never holds more than its byte
// budget, evicts least-recently-used first, and balances its governor
// reservations on Close.
func TestPageCacheBudgetAndEviction(t *testing.T) {
	var reserved int64
	c := NewPageCache(100)
	c.Reserve = func(n int64) bool { reserved += n; return true }
	c.Release = func(n int64) { reserved -= n }
	pay := func(n int) []byte { return make([]byte, n) }
	var files [3]PageFile

	c.Put(&files[0], 0, 0, pay(40))
	c.Put(&files[1], 0, 0, pay(40))
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats before any Get: %d/%d", h, m)
	}
	// Touch file 0 so file 1 is the LRU victim.
	if c.Get(&files[0], 0, 0) == nil {
		t.Fatal("miss on cached page")
	}
	c.Put(&files[2], 0, 0, pay(40))
	if c.Get(&files[1], 0, 0) != nil {
		t.Fatal("LRU victim still cached")
	}
	if c.Get(&files[0], 0, 0) == nil || c.Get(&files[2], 0, 0) == nil {
		t.Fatal("survivors evicted")
	}
	if c.Used() > 100 {
		t.Fatalf("Used %d exceeds budget 100", c.Used())
	}
	// An over-budget payload is declined outright.
	c.Put(&files[1], 0, 1, pay(200))
	if c.Get(&files[1], 0, 1) != nil {
		t.Fatal("over-budget payload cached")
	}
	if c.Used() != reserved {
		t.Fatalf("governor reservation %d diverged from Used %d", reserved, c.Used())
	}
	c.Close()
	if reserved != 0 {
		t.Fatalf("Close left %d bytes reserved", reserved)
	}
}

// TestPagedOpenRoundTrip: WritePaged then OpenPaged reproduces the dataset —
// rows, partition layout, sizes, primary key, and persisted indexes.
func TestPagedOpenRoundTrip(t *testing.T) {
	sch := intSchema("id", "grp")
	ds, st, err := Build("t", sch, []string{"id"}, genRows(1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(ds, "grp"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WritePaged(dir, ds, st, 64); err != nil {
		t.Fatal(err)
	}

	cache := NewPageCache(1 << 16)
	ods, ost, err := OpenPaged(dir, "t", cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ods.Paged().File().Close()
	if !ods.IsPaged() {
		t.Fatal("opened dataset not paged")
	}
	if ods.RowCount() != ds.RowCount() || len(ods.Parts) != len(ds.Parts) {
		t.Fatalf("shape: %d rows / %d parts, want %d / %d",
			ods.RowCount(), len(ods.Parts), ds.RowCount(), len(ds.Parts))
	}
	if ods.ByteSize() != ds.ByteSize() {
		t.Errorf("ByteSize %d, want %d (metering must be byte-identical)", ods.ByteSize(), ds.ByteSize())
	}
	if !reflect.DeepEqual(ods.PrimaryKey, ds.PrimaryKey) {
		t.Errorf("primary key %v, want %v", ods.PrimaryKey, ds.PrimaryKey)
	}
	if ost == nil || ost.RecordCount != st.RecordCount {
		t.Error("sidecar statistics did not round-trip")
	}
	if !ods.HasIndex("grp") {
		t.Fatal("persisted index not loaded")
	}
	for p := range ds.Parts {
		rows, err := ods.Paged().MaterializePart(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, ds.Parts[p]) {
			t.Fatalf("partition %d rows diverged", p)
		}
		if ods.PartRows(p) != int64(len(ds.Parts[p])) {
			t.Errorf("PartRows(%d) = %d, want %d", p, ods.PartRows(p), len(ds.Parts[p]))
		}
		// The loaded index must agree with the in-memory one through the
		// paged row fetcher.
		idx := ods.Indexes["grp"]
		view := ods.Paged().Part(p)
		lo, hi := idx.Lookup(p, types.Int(3))
		fi := ds.Schema.MustIndex("grp")
		for i := lo; i < hi; i++ {
			row, err := view.Row(idx.Row(p, i))
			if err != nil {
				t.Fatal(err)
			}
			if row[fi].I() != 3 {
				t.Fatalf("paged index probe fetched wrong row %v", row)
			}
		}
	}
}

// TestIndexLookupRange: the persistent index's range seek agrees with a full
// scan for every bound shape.
func TestIndexLookupRange(t *testing.T) {
	sch := intSchema("id", "k")
	ds, _, err := Build("t", sch, []string{"id"}, genRows(500), 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ds, "k")
	if err != nil {
		t.Fatal(err)
	}
	fi := ds.Schema.MustIndex("k")
	count := func(lo, hi int64, hasLo, hasHi bool) (scan, seek int) {
		for p := range ds.Parts {
			for _, r := range ds.Parts[p] {
				v := r[fi].I()
				if (!hasLo || v >= lo) && (!hasHi || v <= hi) {
					scan++
				}
			}
			a, b := idx.LookupRange(p, types.Int(lo), types.Int(hi), hasLo, hasHi)
			seek += b - a
		}
		return
	}
	for _, tc := range []struct {
		lo, hi       int64
		hasLo, hasHi bool
	}{
		{2, 5, true, true}, {0, 4, false, true}, {7, 0, true, false},
		{0, 0, false, false}, {4, 4, true, true}, {11, 20, true, true},
	} {
		scan, seek := count(tc.lo, tc.hi, tc.hasLo, tc.hasHi)
		if scan != seek {
			t.Errorf("range [%d,%d] (has %v/%v): scan %d, seek %d",
				tc.lo, tc.hi, tc.hasLo, tc.hasHi, scan, seek)
		}
	}
	if a, b := idx.LookupRange(-1, types.Int(0), types.Int(1), true, true); a != b {
		t.Error("out-of-range partition seek not empty")
	}
}
