package storage

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dynopt/internal/types"
)

func TestSpillManagerLazyCreation(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q1_")
	if m.Dir() != "" {
		t.Error("spill dir created before first spill")
	}
	if err := m.Sweep(); err != nil {
		t.Errorf("sweep with no spills: %v", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after no-spill query: %v", entries)
	}
}

func TestSpillFileRoundTripAndSweep(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q2_")
	sf, err := m.Create("p0_l0_s3_build")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]types.Tuple, 100)
	for i := range want {
		want[i] = types.Tuple{types.Int(int64(i)), types.Str("spilled-row")}
		if err := sf.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	n, err := sf.Finish()
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(m.Dir(), filepath.Base(sfPath(sf))))
	if err != nil {
		t.Fatal(err)
	}
	if n != info.Size() {
		t.Errorf("Finish reported %d bytes, file has %d", n, info.Size())
	}
	if m.BytesWritten() != n {
		t.Errorf("manager counted %d bytes, file has %d", m.BytesWritten(), n)
	}
	r, err := sf.Reader()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got.String() != want[i].String() {
			t.Fatalf("row %d: got %s want %s", i, got, want[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last row: %v", err)
	}
	r.Close()

	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after sweep: %v", entries)
	}
}

// TestSweepClosesUnfinishedFiles models a failed query: files that were
// never Finished (the join errored mid-write) are closed and removed.
func TestSweepClosesUnfinishedFiles(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q3_")
	for i := 0; i < 3; i++ {
		sf, err := m.Create("unfinished")
		if err != nil {
			t.Fatal(err)
		}
		if err := sf.Append(types.Tuple{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		// No Finish: the query died here.
	}
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unfinished spill files survived sweep: %v", entries)
	}
}

func TestSpillFileRemove(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q4_")
	sf, err := m.Create("pair")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Append(types.Tuple{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Remove(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("run file survived Remove: %v", entries)
	}
}

// TestSpillManagerConcurrentCreate exercises Create from many goroutines,
// as partition goroutines do mid-join.
func TestSpillManagerConcurrentCreate(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q5_")
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sf, err := m.Create("c")
			if err != nil {
				errs[g] = err
				return
			}
			if err := sf.Append(types.Tuple{types.Int(int64(g))}); err != nil {
				errs[g] = err
				return
			}
			_, errs[g] = sf.Finish()
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Errorf("expected 16 run files, found %d", len(entries))
	}
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
}

// sfPath exposes the file path for the stat cross-check above.
func sfPath(s *SpillFile) string { return s.path }
