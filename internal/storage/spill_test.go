package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"dynopt/internal/faults"
	"dynopt/internal/types"
)

func TestSpillManagerLazyCreation(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q1_")
	if m.Dir() != "" {
		t.Error("spill dir created before first spill")
	}
	if err := m.Sweep(); err != nil {
		t.Errorf("sweep with no spills: %v", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after no-spill query: %v", entries)
	}
}

func TestSpillFileRoundTripAndSweep(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q2_")
	sf, err := m.Create("p0_l0_s3_build")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]types.Tuple, 100)
	for i := range want {
		want[i] = types.Tuple{types.Int(int64(i)), types.Str("spilled-row")}
		if err := sf.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	n, err := sf.Finish()
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(m.Dir(), filepath.Base(sfPath(sf))))
	if err != nil {
		t.Fatal(err)
	}
	if n != info.Size() {
		t.Errorf("Finish reported %d bytes, file has %d", n, info.Size())
	}
	if m.BytesWritten() != n {
		t.Errorf("manager counted %d bytes, file has %d", m.BytesWritten(), n)
	}
	r, err := sf.Reader()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got.String() != want[i].String() {
			t.Fatalf("row %d: got %s want %s", i, got, want[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last row: %v", err)
	}
	r.Close()

	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after sweep: %v", entries)
	}
}

// TestSweepClosesUnfinishedFiles models a failed query: files that were
// never Finished (the join errored mid-write) are closed and removed.
func TestSweepClosesUnfinishedFiles(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q3_")
	for i := 0; i < 3; i++ {
		sf, err := m.Create("unfinished")
		if err != nil {
			t.Fatal(err)
		}
		if err := sf.Append(types.Tuple{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		// No Finish: the query died here.
	}
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unfinished spill files survived sweep: %v", entries)
	}
}

func TestSpillFileRemove(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q4_")
	sf, err := m.Create("pair")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Append(types.Tuple{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Remove(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("run file survived Remove: %v", entries)
	}
}

// TestSpillManagerConcurrentCreate exercises Create from many goroutines,
// as partition goroutines do mid-join.
func TestSpillManagerConcurrentCreate(t *testing.T) {
	root := t.TempDir()
	m := NewSpillManager(root, "q5_")
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sf, err := m.Create("c")
			if err != nil {
				errs[g] = err
				return
			}
			if err := sf.Append(types.Tuple{types.Int(int64(g))}); err != nil {
				errs[g] = err
				return
			}
			_, errs[g] = sf.Finish()
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Errorf("expected 16 run files, found %d", len(entries))
	}
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
}

// sfPath exposes the file path for the stat cross-check above.
func sfPath(s *SpillFile) string { return s.path }

// sealedRun writes and seals a 200-row run under the manager.
func sealedRun(t *testing.T, m *SpillManager) *SpillFile {
	t.Helper()
	sf, err := m.Create("verify")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sf.Append(types.Tuple{types.Int(int64(i)), types.Str("verified-row")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sf.Finish(); err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestSpillFileVerify(t *testing.T) {
	m := NewSpillManager(t.TempDir(), "q6_")
	sf := sealedRun(t, m)
	if err := sf.Verify(); err != nil {
		t.Fatalf("verify of an intact run: %v", err)
	}
	// Damage one byte in place: Verify must classify it as corruption.
	f, err := os.OpenFile(sfPath(sf), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := sf.Verify(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("verify of a damaged run: %v, want ErrCorrupt", err)
	}
}

// TestSpillCorruptInjection drives each corruption kind through the
// spill.corrupt point: the mutation lands when Reader opens the file, and
// read-back detects it as ErrCorrupt — never a clean short read.
func TestSpillCorruptInjection(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faults.CorruptKind
	}{
		{"flip-bit", faults.CorruptFlipBit},
		{"truncate-tail", faults.CorruptTruncateTail},
		{"torn-write", faults.CorruptTornWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewSpillManager(t.TempDir(), "q7_")
			m.Faults = faults.New(11)
			sf := sealedRun(t, m)
			m.Faults.Arm(faults.Rule{Point: "spill.corrupt", OneShot: true, Corrupt: tc.kind})
			err := sf.Verify()
			if !errors.Is(err, faults.ErrCorrupt) {
				t.Fatalf("injected %s not detected: %v", tc.name, err)
			}
			if m.Faults.Fired("spill.corrupt") != 1 {
				t.Errorf("fired = %d", m.Faults.Fired("spill.corrupt"))
			}
		})
	}
}

// TestSpillWriterRowsCrossCheck covers the belt-and-suspenders half of
// Verify: a forged-but-internally-consistent file that disagrees with the
// writer's own row count is corrupt even though its checksums pass.
func TestSpillWriterRowsCrossCheck(t *testing.T) {
	m := NewSpillManager(t.TempDir(), "q8_")
	sf := sealedRun(t, m)
	other := NewSpillManager(t.TempDir(), "q8b_")
	of, err := other.Create("forged")
	if err != nil {
		t.Fatal(err)
	}
	if err := of.Append(types.Tuple{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := of.Finish(); err != nil {
		t.Fatal(err)
	}
	// Splice the 1-row file (valid checksums, valid footer) over the
	// 200-row run's path.
	forged, err := os.ReadFile(sfPath(of))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sfPath(sf), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sf.Verify(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("forged run passed Verify: %v", err)
	}
}

// TestSpillClassifyDiskFull: injected ENOSPC and genuine short writes both
// classify as ErrDiskFull (which wraps ErrSpillIO, so the degradation
// ladder still sees a spill failure).
func TestSpillClassifyDiskFull(t *testing.T) {
	m := NewSpillManager(t.TempDir(), "q9_")
	m.Faults = faults.New(1)
	m.Faults.Arm(faults.Rule{Point: "spill.append", OneShot: true, Err: syscall.ENOSPC})
	sf, err := m.Create("full")
	if err != nil {
		t.Fatal(err)
	}
	err = sf.Append(types.Tuple{types.Int(1)})
	if !errors.Is(err, faults.ErrDiskFull) || !errors.Is(err, faults.ErrSpillIO) {
		t.Errorf("ENOSPC append classified %v, want ErrDiskFull wrapping ErrSpillIO", err)
	}
	if err := classifySpill("x", io.ErrShortWrite); !errors.Is(err, faults.ErrDiskFull) {
		t.Errorf("short write classified %v, want ErrDiskFull", err)
	}
	if err := classifySpill("x", os.ErrPermission); errors.Is(err, faults.ErrDiskFull) || !errors.Is(err, faults.ErrSpillIO) {
		t.Errorf("permission error classified %v, want plain ErrSpillIO", err)
	}
}

// TestSpillSyncKnob: with Sync set, Finish fsyncs through the spill.sync
// point (observable via its fired count) and still seals a readable run.
func TestSpillSyncKnob(t *testing.T) {
	m := NewSpillManager(t.TempDir(), "q10_")
	m.Faults = faults.New(1)
	m.Sync = true
	sf := sealedRun(t, m)
	if got := m.Faults.Fired("spill.sync"); got != 0 {
		// No rule armed: the point must not fire, only be passed through.
		t.Errorf("unarmed spill.sync fired %d times", got)
	}
	if err := sf.Verify(); err != nil {
		t.Fatalf("verify after synced finish: %v", err)
	}
	m2 := NewSpillManager(t.TempDir(), "q11_")
	m2.Faults = faults.New(1)
	m2.Sync = true
	m2.Faults.Arm(faults.Rule{Point: "spill.sync", EveryN: 1})
	sf2, err := m2.Create("sync")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf2.Append(types.Tuple{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf2.Finish(); !errors.Is(err, faults.ErrSpillIO) {
		t.Errorf("faulted sync classified %v, want ErrSpillIO", err)
	}
}
