package storage

import (
	"testing"
	"testing/quick"

	"dynopt/internal/types"
)

func intSchema(cols ...string) *types.Schema {
	s := &types.Schema{}
	for _, c := range cols {
		s.Fields = append(s.Fields, types.Field{Name: c, Kind: types.KindInt})
	}
	return s
}

func genRows(n int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 10))}
	}
	return rows
}

func TestBuildPartitionsAllRows(t *testing.T) {
	sch := intSchema("id", "grp")
	ds, st, err := Build("t", sch, []string{"id"}, genRows(1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.RowCount() != 1000 {
		t.Errorf("RowCount = %d", ds.RowCount())
	}
	if len(ds.Parts) != 4 {
		t.Errorf("partitions = %d", len(ds.Parts))
	}
	// Hash partitioning should be roughly even.
	for p, part := range ds.Parts {
		if len(part) < 150 || len(part) > 350 {
			t.Errorf("partition %d has %d rows (skewed)", p, len(part))
		}
	}
	if st.RecordCount != 1000 {
		t.Errorf("stats rows = %d", st.RecordCount)
	}
	d := st.Field("id").DistinctCount()
	if d < 950 || d > 1050 {
		t.Errorf("id distinct = %d", d)
	}
	if g := st.Field("grp").DistinctCount(); g < 9 || g > 11 {
		t.Errorf("grp distinct = %d", g)
	}
	if ds.ByteSize() != 1000*18 {
		t.Errorf("ByteSize = %d", ds.ByteSize())
	}
}

func TestBuildSamePKSamePartition(t *testing.T) {
	sch := intSchema("k", "v")
	rows := []types.Tuple{
		{types.Int(7), types.Int(1)},
		{types.Int(7), types.Int(2)},
		{types.Int(7), types.Int(3)},
	}
	ds, _, err := Build("t", sch, []string{"k"}, rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, p := range ds.Parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("same key spread over %d partitions", nonEmpty)
	}
}

func TestBuildRoundRobinWithoutPK(t *testing.T) {
	ds, _, err := Build("t", intSchema("a", "b"), nil, genRows(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, part := range ds.Parts {
		if len(part) != 2 {
			t.Errorf("partition %d = %d rows, want 2 (round robin)", p, len(part))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	sch := intSchema("a", "b")
	if _, _, err := Build("t", sch, []string{"missing"}, genRows(1), 2); err == nil {
		t.Error("bad pk did not error")
	}
	bad := []types.Tuple{{types.Int(1)}} // arity mismatch
	if _, _, err := Build("t", sch, nil, bad, 2); err == nil {
		t.Error("arity mismatch did not error")
	}
}

func TestBuildZeroPartsClamps(t *testing.T) {
	ds, _, err := Build("t", intSchema("a", "b"), nil, genRows(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Parts) != 1 {
		t.Errorf("partitions = %d", len(ds.Parts))
	}
}

func TestBuildParallelMatchesSequentialStats(t *testing.T) {
	sch := intSchema("id", "grp")
	rows := genRows(5000)
	_, seq, err := Build("t", sch, []string{"id"}, rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := BuildParallel("t", sch, []string{"id"}, rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RecordCount != par.RecordCount || seq.ByteSize != par.ByteSize {
		t.Errorf("counts differ: seq=%d/%d par=%d/%d",
			seq.RecordCount, seq.ByteSize, par.RecordCount, par.ByteSize)
	}
	// HLL merge is exact (register max), so distinct estimates must agree.
	if seq.Field("id").DistinctCount() != par.Field("id").DistinctCount() {
		t.Errorf("distinct(id): seq=%d par=%d",
			seq.Field("id").DistinctCount(), par.Field("id").DistinctCount())
	}
	// GK merge is approximate; medians must be close.
	sm, _ := seq.Field("id").Quantiles.Quantile(0.5)
	pm, _ := par.Field("id").Quantiles.Quantile(0.5)
	if pm < sm-300 || pm > sm+300 {
		t.Errorf("median: seq=%v par=%v", sm, pm)
	}
}

func TestIndexLookup(t *testing.T) {
	sch := intSchema("id", "grp")
	ds, _, err := Build("t", sch, []string{"id"}, genRows(1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(ds, "grp")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.HasIndex("grp") || ds.HasIndex("id") {
		t.Error("HasIndex wrong")
	}
	if idx.Partitions() != 4 {
		t.Errorf("index partitions = %d", idx.Partitions())
	}
	// Each grp value appears 100 times across all partitions.
	total := 0
	fi := ds.Schema.MustIndex("grp")
	for p := range ds.Parts {
		lo, hi := idx.Lookup(p, types.Int(3))
		for i := lo; i < hi; i++ {
			row := idx.Row(p, i)
			if ds.Parts[p][row][fi].I() != 3 {
				t.Fatalf("index returned wrong row: %v", ds.Parts[p][row])
			}
			total++
		}
	}
	if total != 100 {
		t.Errorf("grp=3 matches = %d, want 100", total)
	}
	// Missing key.
	for p := range ds.Parts {
		if lo, hi := idx.Lookup(p, types.Int(999999)); lo != hi {
			t.Errorf("missing key returned range [%d, %d)", lo, hi)
		}
	}
	// Out-of-range partition.
	if lo, hi := idx.Lookup(-1, types.Int(1)); lo != hi {
		t.Error("out-of-range partition lookup not empty")
	}
	if lo, hi := idx.Lookup(99, types.Int(1)); lo != hi {
		t.Error("out-of-range partition lookup not empty")
	}
}

func TestBuildIndexBadField(t *testing.T) {
	ds, _, _ := Build("t", intSchema("a", "b"), nil, genRows(10), 2)
	if _, err := BuildIndex(ds, "zz"); err == nil {
		t.Error("bad index field did not error")
	}
}

// Property: every row lands in exactly one partition and lookup-by-index
// agrees with a full scan.
func TestIndexAgreesWithScanProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%500) + 10
		rows := make([]types.Tuple, n)
		for i := range rows {
			rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64((i * 7) % 13))}
		}
		ds, _, err := Build("t", intSchema("id", "k"), []string{"id"}, rows, 3)
		if err != nil {
			return false
		}
		idx, err := BuildIndex(ds, "k")
		if err != nil {
			return false
		}
		fi := ds.Schema.MustIndex("k")
		key := types.Int(int64(seed % 13))
		scan := 0
		for _, part := range ds.Parts {
			for _, row := range part {
				if row[fi].Equal(key) {
					scan++
				}
			}
		}
		viaIdx := 0
		for p := range ds.Parts {
			lo, hi := idx.Lookup(p, key)
			viaIdx += hi - lo
		}
		return scan == viaIdx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
