package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"dynopt/internal/faults"
	"dynopt/internal/types"
)

// classifySpill wraps a spill I/O failure with its taxonomy class: ENOSPC
// and short writes become faults.ErrDiskFull (which itself wraps ErrSpillIO,
// so the spill degradation ladder still applies), everything else plain
// ErrSpillIO. Injected errors flow through the same classification — a rule
// armed with Err: syscall.ENOSPC exercises the disk-full path end to end.
func classifySpill(op string, err error) error {
	class := faults.ErrSpillIO
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, io.ErrShortWrite) {
		class = faults.ErrDiskFull
	}
	return fmt.Errorf("storage: %s: %w: %w", op, class, err)
}

// SpillManager owns one query's run files: the on-disk overflow partitions
// of the dynamic hybrid hash join. It mirrors the catalog's per-query temp
// namespace — a directory created lazily on the first spill, uniquely named
// under the configured spill root, and swept on every query exit path (the
// disk counterpart of catalog.DropPrefix). A query that never spills never
// touches the filesystem.
//
// Create is safe to call from concurrent partition goroutines; each returned
// SpillFile is then owned by a single goroutine.
type SpillManager struct {
	root  string
	scope string

	// Faults is the query's fault-injection registry (nil in production).
	// Spill I/O is the layer most worth injecting into: it is the only part
	// of query execution that touches a device that can genuinely fail
	// mid-query. All injected and real I/O errors surface wrapped in
	// faults.ErrSpillIO so the join can degrade and the server can retry.
	Faults *faults.Registry

	// Sync makes Finish fsync each sealed run (Config.SpillSync): the
	// durability knob for spill devices with volatile write caches, off by
	// default because run files never outlive their query.
	Sync bool

	mu      sync.Mutex
	dir     string // created lazily by the first Create
	seq     int
	open    map[*SpillFile]struct{} // files not yet closed (swept on exit)
	written int64                   // actual bytes on disk across finished files
}

// NewSpillManager returns a manager writing under root for one query scope
// (e.g. "q12_"). Nothing is created until the first spill.
func NewSpillManager(root, scope string) *SpillManager {
	return &SpillManager{root: root, scope: scope, open: map[*SpillFile]struct{}{}}
}

// Dir returns the query's spill directory, or "" when nothing spilled yet.
func (m *SpillManager) Dir() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dir
}

// BytesWritten returns the actual on-disk bytes (from os.Stat, framing
// included) across all finished run files, including ones already removed.
func (m *SpillManager) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Create opens a fresh append-only run file. label names the file for
// debugging (partition/level/sub-partition of the join that spilled it).
func (m *SpillManager) Create(label string) (*SpillFile, error) {
	if err := m.Faults.Fire(faults.Point("spill.create")); err != nil {
		return nil, classifySpill(fmt.Sprintf("spill file %q", label), err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dir == "" {
		if err := os.MkdirAll(m.root, 0o755); err != nil {
			return nil, classifySpill("spill root", err)
		}
		dir, err := os.MkdirTemp(m.root, "spill_"+m.scope)
		if err != nil {
			return nil, classifySpill("spill dir", err)
		}
		m.dir = dir
	}
	m.seq++
	path := filepath.Join(m.dir, fmt.Sprintf("run%04d_%s", m.seq, label))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, classifySpill("spill file", err)
	}
	sf := &SpillFile{m: m, path: path, f: f, w: types.NewRunWriter(f)}
	m.open[sf] = struct{}{}
	return sf, nil
}

// Sweep removes the query's spill directory and everything in it, closing
// any file a failed join left open. Safe to call when nothing spilled, and
// on every exit path (success, error, panic, cancellation).
func (m *SpillManager) Sweep() error {
	m.mu.Lock()
	open := make([]*SpillFile, 0, len(m.open))
	for sf := range m.open {
		open = append(open, sf)
	}
	dir := m.dir
	m.dir = ""
	m.mu.Unlock()
	for _, sf := range open {
		// Error discarded: these are force-closed mid-write during an abort
		// sweep, and RemoveAll below deletes their directory regardless.
		_ = sf.close()
	}
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}

// SpillFile is one append-only run file: written once by its owning
// partition goroutine, sealed with Finish, read back with Reader, removed
// when its sub-join completes.
type SpillFile struct {
	m     *SpillManager
	path  string
	f     *os.File
	w     *types.RunWriter
	bytes int64 // on-disk size, set by Finish
}

// Append writes one tuple to the run.
func (s *SpillFile) Append(t types.Tuple) error {
	if err := s.m.Faults.Fire(faults.Point("spill.append")); err != nil {
		return classifySpill("spill append", err)
	}
	if err := s.w.Append(t); err != nil {
		return classifySpill("spill append", err)
	}
	return nil
}

// Rows returns the number of tuples appended so far.
func (s *SpillFile) Rows() int64 { return s.w.Rows() }

// Finish flushes the last block, seals the run with its checksummed footer
// (fsyncing it when the manager's Sync knob is set), and closes the write
// side, returning the file's actual on-disk byte size — the figure spill
// accounting charges.
func (s *SpillFile) Finish() (int64, error) {
	if err := s.m.Faults.Fire(faults.Point("spill.finish")); err != nil {
		_ = s.close()
		return 0, classifySpill("spill finish", err)
	}
	if err := s.w.Finish(); err != nil {
		_ = s.close() // already failing; the seal error is the one to report
		return 0, classifySpill("spill seal", err)
	}
	if s.m.Sync {
		if err := s.m.Faults.Fire(faults.Point("spill.sync")); err != nil {
			_ = s.close()
			return 0, classifySpill("spill sync", err)
		}
		if err := s.f.Sync(); err != nil {
			_ = s.close()
			return 0, classifySpill("spill sync", err)
		}
	}
	info, err := s.f.Stat()
	if err != nil {
		_ = s.close() // already failing; the Stat error is the one to report
		return 0, classifySpill("spill stat", err)
	}
	s.bytes = info.Size()
	if err := s.close(); err != nil {
		return 0, err
	}
	s.m.mu.Lock()
	s.m.written += s.bytes
	s.m.mu.Unlock()
	return s.bytes, nil
}

// Bytes returns the on-disk size recorded by Finish.
func (s *SpillFile) Bytes() int64 { return s.bytes }

// close closes the write handle and deregisters from the manager's sweep
// set. Idempotent.
func (s *SpillFile) close() error {
	s.m.mu.Lock()
	delete(s.m.open, s)
	s.m.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	return f.Close()
}

// Reader opens the finished run for sequential read-back. The spill.corrupt
// injection point mutates the sealed file in place first (bit flip,
// truncated tail, torn write — see faults.CorruptKind), modelling damage
// that happened at rest; the reader's checksums are what must catch it.
func (s *SpillFile) Reader() (*SpillReader, error) {
	if err := s.m.Faults.Fire(faults.Point("spill.read")); err != nil {
		return nil, classifySpill("spill read", err)
	}
	if err := s.m.Faults.MutateFile(faults.Point("spill.corrupt"), s.path); err != nil {
		return nil, classifySpill("spill corrupt", err)
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, classifySpill("spill read", err)
	}
	return &SpillReader{f: f, r: types.NewRunReader(f)}, nil
}

// Verify checks the sealed run end to end without decoding tuples: every
// block checksum, the footer seal, and — belt and suspenders on top of the
// footer — the writer's own row count against the records on disk. A nil
// return means read-back will reproduce exactly the rows that were
// appended; damage returns an error classified faults.ErrCorrupt.
func (s *SpillFile) Verify() error {
	r, err := s.Reader()
	if err != nil {
		return err
	}
	defer r.Close()
	if err := r.r.Verify(); err != nil {
		return err
	}
	if got, want := r.r.Rows(), s.w.Rows(); got != want {
		return fmt.Errorf("storage: run %s holds %d rows but the writer appended %d: %w",
			filepath.Base(s.path), got, want, faults.ErrCorrupt)
	}
	return nil
}

// Remove deletes the run file from disk (after its sub-join consumed it).
// A close error on a still-open (unfinished) file is reported after the
// unlink is attempted — removal is the caller's primary intent.
func (s *SpillFile) Remove() error {
	if err := s.m.Faults.Fire(faults.Point("spill.remove")); err != nil {
		return classifySpill("spill remove", err)
	}
	cerr := s.close()
	if err := os.Remove(s.path); err != nil {
		return classifySpill("spill remove", err)
	}
	return cerr
}

// SpillReader streams tuples back out of a run file.
type SpillReader struct {
	f *os.File
	r *types.RunReader
}

// Next returns the next tuple, io.EOF at the end of the run.
func (r *SpillReader) Next() (types.Tuple, error) {
	return r.r.Next()
}

// Close releases the read handle.
func (r *SpillReader) Close() error { return r.f.Close() }
