package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"dynopt/internal/faults"
	"dynopt/internal/types"
)

// Disk-native page files: the persistent columnar format behind paged
// datasets. A page file holds every partition of one dataset as a sequence
// of column-chunked pages (types.EncodePage payloads) framed with the same
// len|crc block discipline as spill run files, followed by a checksummed
// directory — per-page offsets, row counts, encoded-byte totals, and
// per-column zone maps (min/max/null counts) — and a fixed sealed footer:
//
//	pagefile  = page* directory footer
//	page      = len u32le | crc u32le | payload          (types.EncodePage)
//	directory = len u32le | crc u32le | dirPayload
//	footer    = 0 u32le | crc u32le | magic [8]byte | dirOffset u64 |
//	            rows u64 | fileCRC u32
//
// The footer is framed as the zero-length block (exactly like a run file's),
// its crc covering the 28 payload bytes; fileCRC is a running CRC32-C over
// every page payload and the directory payload in file order, checked by the
// full Verify pass. Open verifies footer and directory only — pages verify
// lazily, each against its own CRC when first read — so a cold open touches
// O(directory) bytes, not the data. Every at-rest damage mode surfaces as a
// classified faults.ErrCorrupt, never a panic or silent wrong rows.

// pageMagic seals the footer of a finished page file.
var pageMagic = [8]byte{'D', 'Y', 'N', 'P', 'G', 'F', '1', 0}

// pageFooterLen is the footer frame: 8-byte block header + 28 payload bytes.
const pageFooterLen = 8 + 28

// maxPagePayload bounds one page frame's payload, like maxBlockBytes bounds
// a run block: a corrupt length prefix cannot OOM the server.
const maxPagePayload = 64 << 20

// DefaultPageRows is the page granularity conversions use when the caller
// does not choose one: small enough that zone maps prune selectively, large
// enough that per-page framing stays negligible.
const DefaultPageRows = 1024

// PageInfo is one page's directory entry.
type PageInfo struct {
	Offset   int64 // file offset of the page frame
	Len      int32 // payload length (frame is 8 bytes longer)
	Rows     int32
	EncBytes int64 // sum of EncodedSize over the page's rows (scan metering)
	Cols     []types.PageColStats
}

// PartDir is one partition's directory section.
type PartDir struct {
	Pages    []PageInfo
	Rows     int64
	EncBytes int64
}

// corruptPagef builds a page-file corruption error carrying faults.ErrCorrupt.
func corruptPagef(format string, args ...any) error {
	return fmt.Errorf("storage: "+format+": %w", append(args, faults.ErrCorrupt)...)
}

// PageWriter writes one dataset's page file: rows appended partition by
// partition, cut into pages of rowsPerPage, each encoded and framed as it
// fills. Finish writes the directory and seals the footer. Not safe for
// concurrent use.
type PageWriter struct {
	f           *os.File
	path        string
	schema      *types.Schema
	rowsPerPage int
	off         int64
	fileCRC     uint32 // running CRC32-C over page payloads then directory payload
	parts       []PartDir
	cur         []types.Tuple
	curEnc      int64
	buf         []byte
	rows        int64
	finished    bool
}

// NewPageWriter creates the page file at path (failing if it exists).
// rowsPerPage < 1 selects DefaultPageRows.
func NewPageWriter(path string, schema *types.Schema, rowsPerPage int) (*PageWriter, error) {
	if rowsPerPage < 1 {
		rowsPerPage = DefaultPageRows
	}
	if rowsPerPage > types.MaxPageRows {
		rowsPerPage = types.MaxPageRows
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &PageWriter{f: f, path: path, schema: schema, rowsPerPage: rowsPerPage}, nil
}

// StartPartition closes the current partition (flushing its last page) and
// begins the next. Every partition of the dataset must be started, in order,
// even when empty, so the directory's partition count matches the cluster's.
func (w *PageWriter) StartPartition() error {
	if len(w.parts) > 0 {
		if err := w.flushPage(); err != nil {
			return err
		}
	}
	w.parts = append(w.parts, PartDir{})
	return nil
}

// Append adds one row to the current partition.
func (w *PageWriter) Append(t types.Tuple) error {
	if len(w.parts) == 0 {
		return fmt.Errorf("storage: page append before StartPartition")
	}
	w.cur = append(w.cur, t)
	w.curEnc += int64(t.EncodedSize())
	if len(w.cur) >= w.rowsPerPage {
		return w.flushPage()
	}
	return nil
}

// flushPage encodes and writes the buffered rows as one page frame.
func (w *PageWriter) flushPage() error {
	if len(w.cur) == 0 {
		return nil
	}
	if cap(w.buf) < 8 {
		w.buf = make([]byte, 8, 4096)
	}
	payload, st := types.EncodePage(w.buf[:8], w.schema, w.cur)
	w.buf = payload
	body := payload[8:]
	if len(body) > maxPagePayload {
		return fmt.Errorf("storage: page payload of %d bytes exceeds the %d-byte bound", len(body), maxPagePayload)
	}
	binary.LittleEndian.PutUint32(payload[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:], types.CRC32C(body))
	if _, err := w.f.Write(payload); err != nil {
		return classifySpill("page write", err)
	}
	p := &w.parts[len(w.parts)-1]
	p.Pages = append(p.Pages, PageInfo{
		Offset:   w.off,
		Len:      int32(len(body)),
		Rows:     int32(len(w.cur)),
		EncBytes: w.curEnc,
		Cols:     st,
	})
	p.Rows += int64(len(w.cur))
	p.EncBytes += w.curEnc
	w.rows += int64(len(w.cur))
	w.fileCRC = types.CRC32CUpdate(w.fileCRC, body)
	w.off += int64(len(payload))
	w.cur = w.cur[:0]
	w.curEnc = 0
	// Keep the frame buffer but reset it for the next page's header.
	if cap(w.buf) > 0 {
		w.buf = w.buf[:8]
	}
	return nil
}

// Finish writes the directory and footer, fsyncs, and closes the file.
func (w *PageWriter) Finish() error {
	if w.finished {
		return nil
	}
	if err := w.flushPage(); err != nil {
		return err
	}
	dir := encodeDirectory(nil, w.parts)
	frame := make([]byte, 8, 8+len(dir))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(dir)))
	binary.LittleEndian.PutUint32(frame[4:], types.CRC32C(dir))
	frame = append(frame, dir...)
	dirOffset := w.off
	if _, err := w.f.Write(frame); err != nil {
		return classifySpill("page directory write", err)
	}
	w.fileCRC = types.CRC32CUpdate(w.fileCRC, dir)
	w.off += int64(len(frame))

	var ftr [pageFooterLen]byte
	// ftr[0:4] stays zero: the footer is framed as the zero-length block.
	copy(ftr[8:16], pageMagic[:])
	binary.LittleEndian.PutUint64(ftr[16:], uint64(dirOffset))
	binary.LittleEndian.PutUint64(ftr[24:], uint64(w.rows))
	binary.LittleEndian.PutUint32(ftr[32:], w.fileCRC)
	binary.LittleEndian.PutUint32(ftr[4:], types.CRC32C(ftr[8:]))
	if _, err := w.f.Write(ftr[:]); err != nil {
		return classifySpill("page footer write", err)
	}
	if err := w.f.Sync(); err != nil {
		return classifySpill("page sync", err)
	}
	if err := w.f.Close(); err != nil {
		return classifySpill("page close", err)
	}
	w.finished = true
	return nil
}

// Rows returns the rows appended so far.
func (w *PageWriter) Rows() int64 { return w.rows }

// encodeDirectory appends the directory payload for parts to dst.
func encodeDirectory(dst []byte, parts []PartDir) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(parts)))
	for _, p := range parts {
		dst = binary.AppendUvarint(dst, uint64(len(p.Pages)))
		dst = binary.AppendUvarint(dst, uint64(p.Rows))
		dst = binary.AppendUvarint(dst, uint64(p.EncBytes))
		for _, pg := range p.Pages {
			dst = binary.AppendUvarint(dst, uint64(pg.Offset))
			dst = binary.AppendUvarint(dst, uint64(pg.Len))
			dst = binary.AppendUvarint(dst, uint64(pg.Rows))
			dst = binary.AppendUvarint(dst, uint64(pg.EncBytes))
			dst = binary.AppendUvarint(dst, uint64(len(pg.Cols)))
			for _, cs := range pg.Cols {
				dst = binary.AppendUvarint(dst, uint64(cs.Nulls))
				if cs.HasMinMax {
					dst = append(dst, 1)
					dst = types.AppendValue(dst, cs.Min)
					dst = types.AppendValue(dst, cs.Max)
				} else {
					dst = append(dst, 0)
				}
			}
		}
	}
	return dst
}

// decodeDirectory decodes a directory payload.
func decodeDirectory(src []byte, ncols int) ([]PartDir, error) {
	np, off := binary.Uvarint(src)
	if off <= 0 || np > 1<<20 {
		return nil, corruptPagef("page directory: bad partition count")
	}
	parts := make([]PartDir, np)
	for p := range parts {
		npg, m := binary.Uvarint(src[off:])
		if m <= 0 || npg > 1<<24 {
			return nil, corruptPagef("page directory: bad page count for partition %d", p)
		}
		off += m
		rows, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, corruptPagef("page directory: bad row count for partition %d", p)
		}
		off += m
		enc, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return nil, corruptPagef("page directory: bad byte count for partition %d", p)
		}
		off += m
		parts[p].Rows, parts[p].EncBytes = int64(rows), int64(enc)
		parts[p].Pages = make([]PageInfo, npg)
		for i := range parts[p].Pages {
			pg := &parts[p].Pages[i]
			var fields [4]uint64
			for f := range fields {
				v, m := binary.Uvarint(src[off:])
				if m <= 0 {
					return nil, corruptPagef("page directory: truncated page entry")
				}
				off += m
				fields[f] = v
			}
			pg.Offset = int64(fields[0])
			pg.Len = int32(fields[1])
			pg.Rows = int32(fields[2])
			pg.EncBytes = int64(fields[3])
			if fields[1] > maxPagePayload || fields[2] > types.MaxPageRows {
				return nil, corruptPagef("page directory: page bounds out of range")
			}
			nc, m := binary.Uvarint(src[off:])
			if m <= 0 || int(nc) != ncols {
				return nil, corruptPagef("page directory: column count %d disagrees with schema width %d", nc, ncols)
			}
			off += m
			pg.Cols = make([]types.PageColStats, nc)
			for c := range pg.Cols {
				nulls, m := binary.Uvarint(src[off:])
				if m <= 0 {
					return nil, corruptPagef("page directory: truncated zone map")
				}
				off += m
				if off >= len(src) {
					return nil, corruptPagef("page directory: truncated zone map flag")
				}
				has := src[off]
				off++
				pg.Cols[c].Nulls = int64(nulls)
				if has == 1 {
					mn, n, err := types.DecodeValue(src[off:])
					if err != nil {
						return nil, err
					}
					off += n
					mx, n, err := types.DecodeValue(src[off:])
					if err != nil {
						return nil, err
					}
					off += n
					pg.Cols[c].Min, pg.Cols[c].Max, pg.Cols[c].HasMinMax = mn, mx, true
				} else if has != 0 {
					return nil, corruptPagef("page directory: bad zone map flag %d", has)
				}
			}
		}
	}
	if off != len(src) {
		return nil, corruptPagef("page directory: %d trailing bytes", len(src)-off)
	}
	return parts, nil
}

// PageFile is an open page file: verified footer and directory, pages read
// lazily (each verified against its own CRC on read). Safe for concurrent
// ReadPage calls.
type PageFile struct {
	path   string
	f      *os.File
	schema *types.Schema
	parts  []PartDir
	rows   int64
	Faults *faults.Registry
}

// OpenPageFile opens and verifies (footer + directory) a page file. The
// page.corrupt injection point mutates the sealed file in place first —
// at-rest damage the reader's checksums must catch.
func OpenPageFile(path string, schema *types.Schema, reg *faults.Registry) (*PageFile, error) {
	if err := reg.Fire(faults.Point("page.open")); err != nil {
		return nil, classifySpill("page open", err)
	}
	if err := reg.MutateFile(faults.Point("page.corrupt"), path); err != nil {
		return nil, classifySpill("page corrupt", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, classifySpill("page open", err)
	}
	pf := &PageFile{path: path, f: f, schema: schema, Faults: reg}
	if err := pf.loadDirectory(); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

// loadDirectory verifies the footer and decodes the directory.
func (pf *PageFile) loadDirectory() error {
	st, err := pf.f.Stat()
	if err != nil {
		return classifySpill("page stat", err)
	}
	size := st.Size()
	if size < pageFooterLen {
		return corruptPagef("page file %s is %d bytes, shorter than its footer", pf.path, size)
	}
	var ftr [pageFooterLen]byte
	if _, err := pf.f.ReadAt(ftr[:], size-pageFooterLen); err != nil {
		return classifySpill("page footer read", err)
	}
	if binary.LittleEndian.Uint32(ftr[0:4]) != 0 {
		return corruptPagef("page file %s footer frame is not the zero-length block", pf.path)
	}
	if got, want := types.CRC32C(ftr[8:]), binary.LittleEndian.Uint32(ftr[4:8]); got != want {
		return corruptPagef("page file %s footer checksum mismatch (stored %08x, computed %08x)", pf.path, want, got)
	}
	if [8]byte(ftr[8:16]) != pageMagic {
		return corruptPagef("page file %s footer magic mismatch (%q)", pf.path, ftr[8:16])
	}
	dirOffset := int64(binary.LittleEndian.Uint64(ftr[16:24]))
	pf.rows = int64(binary.LittleEndian.Uint64(ftr[24:32]))
	if dirOffset < 0 || dirOffset > size-pageFooterLen-8 {
		return corruptPagef("page file %s directory offset %d out of range", pf.path, dirOffset)
	}
	var hdr [8]byte
	if _, err := pf.f.ReadAt(hdr[:], dirOffset); err != nil {
		return classifySpill("page directory read", err)
	}
	dlen := binary.LittleEndian.Uint32(hdr[0:4])
	if int64(dlen) != size-pageFooterLen-dirOffset-8 {
		return corruptPagef("page file %s directory length %d disagrees with file layout", pf.path, dlen)
	}
	dir := make([]byte, dlen)
	if _, err := io.ReadFull(io.NewSectionReader(pf.f, dirOffset+8, int64(dlen)), dir); err != nil {
		return classifySpill("page directory read", err)
	}
	if got, want := types.CRC32C(dir), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return corruptPagef("page file %s directory checksum mismatch (stored %08x, computed %08x)", pf.path, want, got)
	}
	parts, err := decodeDirectory(dir, pf.schema.Len())
	if err != nil {
		return err
	}
	var rows int64
	for _, p := range parts {
		rows += p.Rows
	}
	if rows != pf.rows {
		return corruptPagef("page file %s directory holds %d rows but the footer sealed %d", pf.path, rows, pf.rows)
	}
	pf.parts = parts
	return nil
}

// Close releases the read handle.
func (pf *PageFile) Close() error { return pf.f.Close() }

// Path returns the file's path (corruption tests mutate it directly).
func (pf *PageFile) Path() string { return pf.path }

// Schema returns the schema pages decode against.
func (pf *PageFile) Schema() *types.Schema { return pf.schema }

// Partitions returns the number of partitions the file holds.
func (pf *PageFile) Partitions() int { return len(pf.parts) }

// Part returns partition p's directory (read-only).
func (pf *PageFile) Part(p int) *PartDir { return &pf.parts[p] }

// Rows returns the total sealed row count.
func (pf *PageFile) Rows() int64 { return pf.rows }

// ReadPage reads and CRC-verifies page i of partition p into buf (reused
// when capacity suffices), returning the verified payload.
func (pf *PageFile) ReadPage(buf []byte, p, i int) ([]byte, error) {
	if err := pf.Faults.Fire(faults.Point("page.read")); err != nil {
		return nil, classifySpill("page read", err)
	}
	pg := &pf.parts[p].Pages[i]
	var hdr [8]byte
	if _, err := pf.f.ReadAt(hdr[:], pg.Offset); err != nil {
		return nil, classifySpill("page read", err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	if int32(plen) != pg.Len {
		return nil, corruptPagef("page %d/%d frame length %d disagrees with its directory entry %d", p, i, plen, pg.Len)
	}
	if cap(buf) < int(plen) {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err := io.ReadFull(io.NewSectionReader(pf.f, pg.Offset+8, int64(plen)), buf); err != nil {
		return nil, classifySpill("page read", err)
	}
	if got, want := types.CRC32C(buf), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, corruptPagef("page %d/%d checksum mismatch (stored %08x, computed %08x)", p, i, want, got)
	}
	return buf, nil
}

// Verify checks the whole file end to end: every page frame against its CRC
// and directory entry, the directory and footer seals, and the running
// whole-file checksum. Damage returns a classified faults.ErrCorrupt.
func (pf *PageFile) Verify() error {
	var crc uint32
	var buf []byte
	var err error
	var pd types.PageData
	for p := range pf.parts {
		for i := range pf.parts[p].Pages {
			buf, err = pf.ReadPage(buf, p, i)
			if err != nil {
				return err
			}
			if err := pd.DecodePage(buf, pf.schema, nil); err != nil {
				return err
			}
			if pd.NRows != int(pf.parts[p].Pages[i].Rows) {
				return corruptPagef("page %d/%d decodes %d rows but its directory entry holds %d", p, i, pd.NRows, pf.parts[p].Pages[i].Rows)
			}
			crc = crc32Update(crc, buf)
		}
	}
	// Re-derive the directory payload CRC from the file (the footer's
	// whole-file checksum covers page payloads then directory payload).
	st, err := pf.f.Stat()
	if err != nil {
		return classifySpill("page stat", err)
	}
	var ftr [pageFooterLen]byte
	if _, err := pf.f.ReadAt(ftr[:], st.Size()-pageFooterLen); err != nil {
		return classifySpill("page footer read", err)
	}
	dirOffset := int64(binary.LittleEndian.Uint64(ftr[16:24]))
	var hdr [8]byte
	if _, err := pf.f.ReadAt(hdr[:], dirOffset); err != nil {
		return classifySpill("page directory read", err)
	}
	dlen := binary.LittleEndian.Uint32(hdr[0:4])
	dir := make([]byte, dlen)
	if _, err := io.ReadFull(io.NewSectionReader(pf.f, dirOffset+8, int64(dlen)), dir); err != nil {
		return classifySpill("page directory read", err)
	}
	crc = crc32Update(crc, dir)
	if sealed := binary.LittleEndian.Uint32(ftr[32:36]); sealed != crc {
		return corruptPagef("page file %s whole-file checksum mismatch (sealed %08x, computed %08x)", pf.path, sealed, crc)
	}
	return nil
}

// crc32Update extends a running CRC32-C.
func crc32Update(crc uint32, b []byte) uint32 {
	return types.CRC32CUpdate(crc, b)
}

// PageCache is the byte-budgeted cache of verified page payloads shared by
// every scan of a paged dataset, charged against the memory governor through
// the Reserve/Release hooks (nil hooks run unmetered). Eviction is LRU;
// a page larger than the whole budget is returned uncached.
type PageCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[pageKey]*cacheEntry
	head    *cacheEntry // most recent
	tail    *cacheEntry // least recent
	hits    int64
	misses  int64

	// Reserve/Release charge cached bytes against the memory governor. A nil
	// Reserve runs unmetered; a false return declines the cache insert (cross-
	// query pressure: serve the read through without holding the bytes).
	Reserve func(int64) bool
	Release func(int64)
}

// pageKey identifies one page payload in a cache shared across many paged
// datasets: the owning file's identity disambiguates (part, page)
// coordinates that every file has.
type pageKey struct {
	file       *PageFile
	part, page int32
}

type cacheEntry struct {
	key        pageKey
	buf        []byte
	prev, next *cacheEntry
}

// NewPageCache returns a cache holding at most budget payload bytes.
func NewPageCache(budget int64) *PageCache {
	return &PageCache{budget: budget, entries: map[pageKey]*cacheEntry{}}
}

// Budget returns the configured byte budget.
func (c *PageCache) Budget() int64 { return c.budget }

// Stats returns cache hits and misses so far.
func (c *PageCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Get returns the cached payload for file page (part, page), or nil. The
// returned slice is shared and must be treated as read-only.
func (c *PageCache) Get(file *PageFile, part, page int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[pageKey{file, int32(part), int32(page)}]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.moveToFront(e)
	return e.buf
}

// Put caches a verified payload, taking ownership of the slice (callers
// hand over a freshly read buffer and must not reuse it). Eviction and
// governor pressure may decline the insert; reads still succeed either way.
func (c *PageCache) Put(file *PageFile, part, page int, payload []byte) {
	n := int64(len(payload))
	if n == 0 || n > c.budget {
		return
	}
	key := pageKey{file, int32(part), int32(page)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for c.used+n > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	if c.used+n > c.budget {
		return
	}
	if c.Reserve != nil && !c.Reserve(n) {
		// Cross-query pressure: the failed reservation charged the bytes, so
		// undo and serve the read uncached.
		c.Release(n)
		return
	}
	e := &cacheEntry{key: key, buf: payload}
	c.entries[key] = e
	c.used += n
	c.pushFront(e)
}

// Used returns the cached payload bytes currently held.
func (c *PageCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Close evicts everything, returning all reserved bytes to the governor.
func (c *PageCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.tail != nil {
		c.evict(c.tail)
	}
}

// evict removes e; the caller holds c.mu.
func (c *PageCache) evict(e *cacheEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.used -= int64(len(e.buf))
	if c.Release != nil {
		c.Release(int64(len(e.buf)))
	}
}

func (c *PageCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PageCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
