package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"dynopt/internal/faults"
	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// The paged dataset backend: a Dataset whose rows live in a sealed page file
// instead of resident partition slices. The dataset keeps its partition
// count (Parts holds empty slices so every len(ds.Parts) caller sees the
// cluster width) and its seeded size cache (partition encoded bytes come
// from the page directory, computed by the same EncodedSize walk at
// conversion time — scan metering is byte-identical to resident mode);
// everything row-shaped routes through PagedData: page-granular scans with
// zone-map pruning and projection pushdown in the engine, page-granular row
// fetches for indexed nested-loop probes, and transient materialization for
// index builds and pilot sampling.

// PagedData is a dataset's disk backing: the open page file, the shared
// byte-budgeted page cache, and the per-partition page row offsets.
type PagedData struct {
	file  *PageFile
	cache *PageCache
	// cum[p][i] is the partition-local row offset where page i starts;
	// cum[p][len] is the partition row count — Row's binary-search table.
	cum [][]int64
}

// PageScanStats counts page-level scan work — reads, zone-map prunes, cache
// traffic — observed by one query (hung on the engine context) or one
// benchmark run. Deliberately separate from cluster.Accounting: the metered
// cost counters stay byte-identical between resident and paged runs, and
// these observations feed the optimizer's access-path feedback instead.
type PageScanStats struct {
	PagesRead   atomic.Int64
	PagesPruned atomic.Int64
	PagesTotal  atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
}

// PruneRatio returns the fraction of directory pages zone maps pruned.
func (s *PageScanStats) PruneRatio() float64 {
	t := s.PagesTotal.Load()
	if t == 0 {
		return 0
	}
	return float64(s.PagesPruned.Load()) / float64(t)
}

// AttachPages turns ds into a paged dataset over an open page file: Parts
// becomes empty slices (partition count preserved), sizes are seeded from
// the directory, and row access routes through the returned backing.
func AttachPages(ds *Dataset, file *PageFile, cache *PageCache) *PagedData {
	n := file.Partitions()
	pg := &PagedData{file: file, cache: cache, cum: make([][]int64, n)}
	partBytes := make([]int64, n)
	var total int64
	for p := 0; p < n; p++ {
		part := file.Part(p)
		cum := make([]int64, len(part.Pages)+1)
		var rows int64
		for i := range part.Pages {
			cum[i] = rows
			rows += int64(part.Pages[i].Rows)
		}
		cum[len(part.Pages)] = rows
		pg.cum[p] = cum
		partBytes[p] = part.EncBytes
		total += part.EncBytes
	}
	ds.Parts = make([][]types.Tuple, n)
	ds.paged = pg
	ds.sizes = types.SizeCache{}
	ds.SeedSizes(partBytes, total)
	return pg
}

// Paged returns the dataset's disk backing, nil for resident datasets.
func (d *Dataset) Paged() *PagedData { return d.paged }

// IsPaged reports whether the dataset's rows live in a page file.
func (d *Dataset) IsPaged() bool { return d.paged != nil }

// PartRows returns partition p's row count — resident slice length or the
// page directory's sealed count. Scan metering routes through this so paged
// and resident runs charge identical figures.
func (d *Dataset) PartRows(p int) int64 {
	if d.paged != nil {
		return d.paged.file.Part(p).Rows
	}
	return int64(len(d.Parts[p]))
}

// File returns the backing page file.
func (pg *PagedData) File() *PageFile { return pg.file }

// Cache returns the shared page cache (nil when uncached).
func (pg *PagedData) Cache() *PageCache { return pg.cache }

// Pages returns partition p's page count.
func (pg *PagedData) Pages(p int) int { return len(pg.file.Part(p).Pages) }

// TotalPages returns the file's page count across partitions.
func (pg *PagedData) TotalPages() int {
	n := 0
	for p := 0; p < pg.file.Partitions(); p++ {
		n += len(pg.file.Part(p).Pages)
	}
	return n
}

// Page returns page i of partition p's directory entry — offsets, row
// counts, and the per-column zone maps pruning reads before any decode.
func (pg *PagedData) Page(p, i int) *PageInfo { return &pg.file.Part(p).Pages[i] }

// ReadPage returns page (p, i)'s verified payload through the cache: a hit
// returns the shared cached buffer (read-only), a miss reads and CRC-checks
// the frame and offers the fresh buffer to the cache. st, when non-nil,
// observes the read and cache traffic.
func (pg *PagedData) ReadPage(p, i int, st *PageScanStats) ([]byte, error) {
	if st != nil {
		st.PagesRead.Add(1)
	}
	if pg.cache != nil {
		if buf := pg.cache.Get(pg.file, p, i); buf != nil {
			if st != nil {
				st.CacheHits.Add(1)
			}
			return buf, nil
		}
		if st != nil {
			st.CacheMisses.Add(1)
		}
	}
	buf, err := pg.file.ReadPage(nil, p, i)
	if err != nil {
		return nil, err
	}
	if pg.cache != nil {
		pg.cache.Put(pg.file, p, i, buf)
	}
	return buf, nil
}

// MaterializePart decodes partition p's rows in full — the transient path
// index builds and pilot sampling use; scans never do (they stream pages).
func (pg *PagedData) MaterializePart(p int) ([]types.Tuple, error) {
	rows := make([]types.Tuple, 0, pg.file.Part(p).Rows)
	var pd types.PageData
	for i := 0; i < pg.Pages(p); i++ {
		buf, err := pg.ReadPage(p, i, nil)
		if err != nil {
			return nil, err
		}
		if err := pd.DecodePage(buf, pg.file.schema, nil); err != nil {
			return nil, err
		}
		//dynopt:cold-ok transient full materialization for index builds, off the scan path
		for r := 0; r < pd.NRows; r++ {
			rows = append(rows, pd.Tuple(r))
		}
	}
	return rows, nil
}

// EachRow streams partition p's rows in order, page by page, stopping early
// when fn returns false. Prefix consumers (pilot sampling's LIMIT-k scans)
// use this so only the pages actually touched are read and decoded.
func (pg *PagedData) EachRow(p int, fn func(t types.Tuple) bool) error {
	var pd types.PageData
	for i := 0; i < pg.Pages(p); i++ {
		buf, err := pg.ReadPage(p, i, nil)
		if err != nil {
			return err
		}
		if err := pd.DecodePage(buf, pg.file.schema, nil); err != nil {
			return err
		}
		//dynopt:cold-ok prefix sampling path, bounded by the consumer's early stop
		for r := 0; r < pd.NRows; r++ {
			if !fn(pd.Tuple(r)) {
				return nil
			}
		}
	}
	return nil
}

// partViewPages bounds a view's decoded-page LRU: index probes touch runs of
// adjacent fetched rows, so a handful of decoded pages covers the locality.
const partViewPages = 4

// PartView is a page-granular row fetcher over one partition — the paged
// face of `part[off]` for indexed nested-loop probes. Each view owns a small
// LRU of fully decoded pages; views are single-goroutine (one per partition
// worker), so no lock.
type PartView struct {
	pg   *PagedData
	p    int
	keys [partViewPages]int // page index per slot, -1 when empty
	rows [partViewPages][]types.Tuple
	tick [partViewPages]int64
	now  int64
}

// Part returns a fresh row-fetch view over partition p.
func (pg *PagedData) Part(p int) *PartView {
	v := &PartView{pg: pg, p: p}
	for i := range v.keys {
		v.keys[i] = -1
	}
	return v
}

// Row fetches the partition-local row at offset off, decoding (and caching)
// the page holding it on first touch.
func (v *PartView) Row(off int) (types.Tuple, error) {
	cum := v.pg.cum[v.p]
	if off < 0 || int64(off) >= cum[len(cum)-1] {
		return nil, fmt.Errorf("storage: row offset %d out of range for paged partition %d", off, v.p)
	}
	// Page containing off: the last page whose start is <= off.
	pi := sort.Search(len(cum)-1, func(i int) bool { return cum[i+1] > int64(off) })
	v.now++
	for s := range v.keys {
		if v.keys[s] == pi {
			v.tick[s] = v.now
			return v.rows[s][int64(off)-cum[pi]], nil
		}
	}
	buf, err := v.pg.ReadPage(v.p, pi, nil)
	if err != nil {
		return nil, err
	}
	var pd types.PageData
	if err := pd.DecodePage(buf, v.pg.file.schema, nil); err != nil {
		return nil, err
	}
	rows := make([]types.Tuple, pd.NRows)
	//dynopt:hotpath
	for r := range rows {
		rows[r] = pd.Tuple(r)
	}
	// Evict the least recently used slot.
	slot := 0
	for s := 1; s < partViewPages; s++ {
		if v.tick[s] < v.tick[slot] {
			slot = s
		}
	}
	v.keys[slot], v.rows[slot], v.tick[slot] = pi, rows, v.now
	return rows[int64(off)-cum[pi]], nil
}

// ---------------------------------------------------------------------------
// Conversion and open: the load-once path from resident rows to page files
// plus sidecars, and the cold-open path back.

var (
	metaMagic = [8]byte{'D', 'Y', 'N', 'M', 'T', 'A', '1', 0}
	idxMagic  = [8]byte{'D', 'Y', 'N', 'I', 'D', 'X', '1', 0}
)

// pagePath/metaPath/indexPath name a paged dataset's files inside its data
// directory.
func pagePath(dir, name string) string { return filepath.Join(dir, name+".dynpg") }
func metaPath(dir, name string) string { return filepath.Join(dir, name+".meta") }
func indexPath(dir, name, field string) string {
	return filepath.Join(dir, name+"."+field+".idx")
}

// writeFramed writes a single len|crc framed payload as a whole file.
func writeFramed(path string, payload []byte) error {
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], types.CRC32C(payload))
	frame = append(frame, payload...)
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		return classifySpill("sidecar write", err)
	}
	return nil
}

// readFramed reads back a writeFramed file, verifying frame and checksum.
func readFramed(path string) ([]byte, error) {
	frame, err := os.ReadFile(path)
	if err != nil {
		return nil, classifySpill("sidecar read", err)
	}
	if len(frame) < 8 {
		return nil, corruptPagef("sidecar %s shorter than its frame header", path)
	}
	plen := binary.LittleEndian.Uint32(frame[0:4])
	if int(plen) != len(frame)-8 {
		return nil, corruptPagef("sidecar %s frame length %d disagrees with file size", path, plen)
	}
	payload := frame[8:]
	if got, want := types.CRC32C(payload), binary.LittleEndian.Uint32(frame[4:8]); got != want {
		return nil, corruptPagef("sidecar %s checksum mismatch (stored %08x, computed %08x)", path, want, got)
	}
	return payload, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString decodes a uvarint-length-prefixed string.
func readString(src []byte, off int) (string, int, error) {
	n, m := binary.Uvarint(src[off:])
	if m <= 0 || n > uint64(len(src)-off-m) {
		return "", 0, corruptPagef("sidecar string length out of range")
	}
	off += m
	return string(src[off : off+int(n)]), off + int(n), nil
}

// WritePaged converts a resident dataset to its disk-native form under dir:
// the page file (rowsPerPage rows per page; <1 selects DefaultPageRows), the
// metadata sidecar (schema, primary key, and the ingestion statistics
// serialized so a later open registers byte-identical planner stats), and
// one index sidecar per secondary index.
func WritePaged(dir string, ds *Dataset, st *stats.DatasetStats, rowsPerPage int) error {
	if ds.IsPaged() {
		return fmt.Errorf("storage: dataset %s is already paged", ds.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return classifySpill("data dir create", err)
	}
	w, err := NewPageWriter(pagePath(dir, ds.Name), ds.Schema, rowsPerPage)
	if err != nil {
		return err
	}
	for p := range ds.Parts {
		if err := w.StartPartition(); err != nil {
			return err
		}
		for _, t := range ds.Parts[p] {
			if err := w.Append(t); err != nil {
				return err
			}
		}
	}
	if err := w.Finish(); err != nil {
		return err
	}

	meta := append([]byte(nil), metaMagic[:]...)
	meta = binary.AppendUvarint(meta, uint64(ds.Schema.Len()))
	for _, f := range ds.Schema.Fields {
		meta = appendString(meta, f.Qualifier)
		meta = appendString(meta, f.Name)
		meta = append(meta, byte(f.Kind))
	}
	meta = binary.AppendUvarint(meta, uint64(len(ds.PrimaryKey)))
	for _, k := range ds.PrimaryKey {
		meta = appendString(meta, k)
	}
	if st != nil {
		meta = append(meta, 1)
		meta = st.Encode(meta)
	} else {
		meta = append(meta, 0)
	}
	if err := writeFramed(metaPath(dir, ds.Name), meta); err != nil {
		return err
	}
	for field, idx := range ds.Indexes {
		if err := writeIndexFile(indexPath(dir, ds.Name, field), idx); err != nil {
			return err
		}
	}
	return nil
}

// OpenPaged opens a converted dataset from dir: metadata and statistics from
// the sidecar, rows left at rest in the page file (attached through cache),
// and every persisted secondary index loaded. The returned stats are the
// ingestion-time statistics the conversion serialized.
func OpenPaged(dir, name string, cache *PageCache, reg *faults.Registry) (*Dataset, *stats.DatasetStats, error) {
	meta, err := readFramed(metaPath(dir, name))
	if err != nil {
		return nil, nil, err
	}
	if len(meta) < 8 || [8]byte(meta[:8]) != metaMagic {
		return nil, nil, corruptPagef("sidecar %s magic mismatch", metaPath(dir, name))
	}
	off := 8
	nf, m := binary.Uvarint(meta[off:])
	if m <= 0 || nf > 1<<16 {
		return nil, nil, corruptPagef("sidecar %s bad field count", metaPath(dir, name))
	}
	off += m
	schema := &types.Schema{Fields: make([]types.Field, nf)}
	for i := range schema.Fields {
		q, n, err := readString(meta, off)
		if err != nil {
			return nil, nil, err
		}
		fn, n2, err := readString(meta, n)
		if err != nil {
			return nil, nil, err
		}
		off = n2
		if off >= len(meta) {
			return nil, nil, corruptPagef("sidecar %s truncated field kind", metaPath(dir, name))
		}
		schema.Fields[i] = types.Field{Qualifier: q, Name: fn, Kind: types.Kind(meta[off])}
		off++
	}
	npk, m := binary.Uvarint(meta[off:])
	if m <= 0 || npk > nf {
		return nil, nil, corruptPagef("sidecar %s bad primary key arity", metaPath(dir, name))
	}
	off += m
	pk := make([]string, npk)
	for i := range pk {
		var err error
		pk[i], off, err = readString(meta, off)
		if err != nil {
			return nil, nil, err
		}
	}
	if off >= len(meta) {
		return nil, nil, corruptPagef("sidecar %s truncated statistics flag", metaPath(dir, name))
	}
	hasStats := meta[off]
	off++
	var st *stats.DatasetStats
	if hasStats == 1 {
		var n int
		var err error
		st, n, err = stats.DecodeDatasetStats(meta[off:])
		if err != nil {
			return nil, nil, corruptPagef("sidecar %s statistics: %v", metaPath(dir, name), err)
		}
		off += n
	} else if hasStats != 0 {
		return nil, nil, corruptPagef("sidecar %s bad statistics flag %d", metaPath(dir, name), hasStats)
	}
	if off != len(meta) {
		return nil, nil, corruptPagef("sidecar %s carries %d trailing bytes", metaPath(dir, name), len(meta)-off)
	}

	file, err := OpenPageFile(pagePath(dir, name), schema, reg)
	if err != nil {
		return nil, nil, err
	}
	ds := &Dataset{Name: name, Schema: schema, PrimaryKey: pk, Indexes: map[string]*Index{}}
	AttachPages(ds, file, cache)

	// Load every persisted secondary index for this dataset.
	prefix := name + "."
	entries, err := os.ReadDir(dir)
	if err != nil {
		file.Close()
		return nil, nil, classifySpill("data dir read", err)
	}
	for _, e := range entries {
		fn := e.Name()
		if !strings.HasPrefix(fn, prefix) || !strings.HasSuffix(fn, ".idx") {
			continue
		}
		idx, err := readIndexFile(filepath.Join(dir, fn))
		if err != nil {
			file.Close()
			return nil, nil, err
		}
		if idx.Partitions() != file.Partitions() {
			file.Close()
			return nil, nil, corruptPagef("index %s covers %d partitions, page file holds %d", fn, idx.Partitions(), file.Partitions())
		}
		ds.Indexes[idx.Field] = idx
	}
	return ds, st, nil
}

// SaveIndex persists an index built on a paged dataset so later opens load
// it instead of rebuilding.
func SaveIndex(dir string, ds *Dataset, field string) error {
	idx, ok := ds.Indexes[field]
	if !ok {
		return fmt.Errorf("storage: dataset %s has no index on %q", ds.Name, field)
	}
	return writeIndexFile(indexPath(dir, ds.Name, field), idx)
}

// writeIndexFile serializes a sorted-key secondary index: per partition the
// sorted (key, row offset) pairs, framed and checksummed like every other
// sealed artifact.
func writeIndexFile(path string, idx *Index) error {
	payload := append([]byte(nil), idxMagic[:]...)
	payload = appendString(payload, idx.Field)
	payload = binary.AppendUvarint(payload, uint64(len(idx.parts)))
	for p := range idx.parts {
		ip := &idx.parts[p]
		payload = binary.AppendUvarint(payload, uint64(len(ip.keys)))
		for i, k := range ip.keys {
			payload = types.AppendValue(payload, k)
			payload = binary.AppendUvarint(payload, uint64(ip.rows[i]))
		}
	}
	return writeFramed(path, payload)
}

// readIndexFile loads a persisted index, rebuilding the int-key fast path.
func readIndexFile(path string) (*Index, error) {
	payload, err := readFramed(path)
	if err != nil {
		return nil, err
	}
	if len(payload) < 8 || [8]byte(payload[:8]) != idxMagic {
		return nil, corruptPagef("index %s magic mismatch", path)
	}
	off := 8
	field, off, err := readString(payload, off)
	if err != nil {
		return nil, err
	}
	np, m := binary.Uvarint(payload[off:])
	if m <= 0 || np > 1<<20 {
		return nil, corruptPagef("index %s bad partition count", path)
	}
	off += m
	idx := &Index{Field: field, parts: make([]indexPart, np)}
	for p := range idx.parts {
		nk, m := binary.Uvarint(payload[off:])
		if m <= 0 || nk > 1<<31 {
			return nil, corruptPagef("index %s bad key count", path)
		}
		off += m
		ip := indexPart{keys: make([]types.Value, nk), rows: make([]int, nk)}
		allInt := true
		var prev types.Value
		for i := range ip.keys {
			k, n, err := types.DecodeValue(payload[off:])
			if err != nil {
				return nil, err
			}
			off += n
			r, m := binary.Uvarint(payload[off:])
			if m <= 0 {
				return nil, corruptPagef("index %s truncated row offset", path)
			}
			off += m
			if i > 0 && prev.Compare(k) > 0 {
				return nil, corruptPagef("index %s keys out of sorted order at position %d", path, i)
			}
			prev = k
			ip.keys[i], ip.rows[i] = k, int(r)
			if k.K != types.KindInt {
				allInt = false
			}
		}
		if allInt && nk > 0 {
			ip.ikeys = make([]int64, nk)
			for i, k := range ip.keys {
				ip.ikeys[i] = k.I()
			}
		}
		idx.parts[p] = ip
	}
	if off != len(payload) {
		return nil, corruptPagef("index %s carries %d trailing bytes", path, len(payload)-off)
	}
	return idx, nil
}

// LookupRange returns the half-open position range [lo, hi) in partition p's
// sorted key order whose keys satisfy lo ≤ key ≤ hi under Value.Compare —
// the index's range seek. Either bound may be absent.
func (ix *Index) LookupRange(p int, lo, hi types.Value, hasLo, hasHi bool) (int, int) {
	if p < 0 || p >= len(ix.parts) {
		return 0, 0
	}
	ip := &ix.parts[p]
	a := 0
	b := len(ip.keys)
	if hasLo {
		a = sort.Search(len(ip.keys), func(i int) bool { return ip.keys[i].Compare(lo) >= 0 })
	}
	if hasHi {
		b = a + sort.Search(len(ip.keys)-a, func(i int) bool { return ip.keys[a+i].Compare(hi) > 0 })
	}
	return a, b
}
