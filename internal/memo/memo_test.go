package memo

import (
	"fmt"
	"sync"
	"testing"
)

func entry(shape string, datasets ...string) *Entry {
	return &Entry{Shape: shape, Datasets: datasets}
}

func TestStoreLRU(t *testing.T) {
	s := NewStore(2, Options{})
	s.Put(entry("A", "a"))
	s.Put(entry("B", "b"))
	if s.Get("A") == nil {
		t.Fatal("A missing")
	}
	// A is now most recent; C evicts B.
	s.Put(entry("C", "c"))
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Get("B") != nil {
		t.Error("B survived past capacity")
	}
	if s.Get("A") == nil || s.Get("C") == nil {
		t.Error("wrong entry evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestStoreReplaceKeepsCapacity(t *testing.T) {
	s := NewStore(2, Options{})
	s.Put(entry("A", "a"))
	s.Put(entry("A", "a2")) // replace, not insert
	s.Put(entry("B", "b"))
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if got := s.Get("A"); got == nil || got.Datasets[0] != "a2" {
		t.Error("replacement did not take")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	s := NewStore(2, Options{})
	s.Put(entry("A", "a"))
	s.Put(entry("B", "b"))
	if s.Peek("A") == nil {
		t.Fatal("peek missed")
	}
	// A was NOT touched by Peek, so it is still the LRU victim.
	s.Put(entry("C", "c"))
	if s.Peek("A") != nil {
		t.Error("Peek refreshed LRU order")
	}
	before := s.Stats()
	s.Peek("B")
	if after := s.Stats(); after.Hits != before.Hits {
		t.Error("Peek counted as a hit")
	}
}

func TestInvalidateDataset(t *testing.T) {
	s := NewStore(8, Options{})
	s.Put(entry("A", "users", "orders"))
	s.Put(entry("B", "orders", "items"))
	s.Put(entry("C", "items"))
	s.InvalidateDataset("orders")
	if s.Get("A") != nil || s.Get("B") != nil {
		t.Error("shapes referencing orders survived invalidation")
	}
	if s.Get("C") == nil {
		t.Error("unrelated shape was invalidated")
	}
	if st := s.Stats(); st.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestRemove(t *testing.T) {
	s := NewStore(4, Options{})
	s.Put(entry("A", "a"))
	s.Remove("A")
	s.Remove("A") // idempotent
	if s.Get("A") != nil || s.Len() != 0 {
		t.Error("Remove did not remove")
	}
}

func TestWithinBand(t *testing.T) {
	o := Options{Tolerance: 4, Slack: 10}
	cases := []struct {
		rec, obs int64
		want     bool
	}{
		{1000, 1000, true},
		{1000, 3999, true},
		{1000, 4010, true},  // exactly rec*4 + slack
		{1000, 4011, false}, // just past the band
		{1000, 240, true},   // 1000/4 - 10 = 240
		{1000, 239, false},
		{0, 10, true}, // slack keeps tiny recordings usable
		{0, 11, false},
		{3, 0, true}, // lower edge clamps below zero
	}
	for _, c := range cases {
		if got := o.WithinBand(c.rec, c.obs); got != c.want {
			t.Errorf("WithinBand(%d, %d) = %v, want %v", c.rec, c.obs, got, c.want)
		}
	}
	// Defaults: tolerance 8, slack 64.
	var d Options
	if !d.WithinBand(100, 864) || d.WithinBand(100, 865) {
		t.Error("default band wrong at upper edge")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore(16, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				shape := fmt.Sprintf("S%d", i%24)
				switch i % 4 {
				case 0:
					s.Put(entry(shape, "d"))
				case 1:
					s.Get(shape)
				case 2:
					s.InvalidateDataset("d")
				default:
					s.Peek(shape)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 16 {
		t.Errorf("len = %d exceeds capacity", s.Len())
	}
}

func TestRemoveEntryPointerChecked(t *testing.T) {
	s := NewStore(4, Options{})
	old := entry("A", "a")
	s.Put(old)
	fresh := entry("A", "a")
	s.Put(fresh) // replaces old under the same shape
	s.RemoveEntry(old)
	if s.Peek("A") != fresh {
		t.Error("RemoveEntry deleted a replaced (fresh) entry")
	}
	s.RemoveEntry(fresh)
	if s.Peek("A") != nil {
		t.Error("RemoveEntry missed the live entry")
	}
	s.RemoveEntry(nil) // no-op
}

func TestPutRefusedAcrossEpoch(t *testing.T) {
	s := NewStore(4, Options{})
	e := &Entry{Shape: "A", Datasets: []string{"d"}, Born: s.Epoch()}
	s.InvalidateDataset("other") // epoch moves even with nothing to evict
	s.Put(e)
	if s.Len() != 0 {
		t.Error("entry born before the invalidation was installed")
	}
	e2 := &Entry{Shape: "A", Datasets: []string{"d"}, Born: s.Epoch()}
	s.Put(e2)
	if s.Peek("A") != e2 {
		t.Error("current-epoch entry refused")
	}
}
