// Package memo is the adaptive plan memo: a bounded, concurrency-safe LRU
// of what the dynamic optimization loop converged to per canonical query
// shape. An entry records the loop's decisions — which predicates were
// pushed down, which join was picked at each stage and with which physical
// algorithm and build side, and the final pipelined job — together with the
// statistics fingerprint the decisions were derived from and the observed
// per-stage cardinalities. The replay path in internal/core executes an
// entry's stages with zero blocking re-optimization points, checking each
// stage's observed cardinality against the recorded tolerance band and
// falling back to the dynamic loop the moment reality disagrees with the
// memo. Catalog mutations (dataset registered/replaced/dropped, index
// built) evict every shape that references the dataset.
package memo

import (
	"container/list"
	"sync"

	"dynopt/internal/plan"
	"dynopt/internal/stats"
)

// StageKind discriminates recorded stage decisions.
type StageKind int

// The two staged (materializing) job kinds of Algorithm 1.
const (
	// StagePushDown is a single-variable predicate job over one alias.
	StagePushDown StageKind = iota
	// StageJoin is one blocking join stage of the re-optimization loop.
	StageJoin
)

// Stage is one recorded decision of the dynamic loop, addressed by the
// aliases of the reconstructed query at that point (intermediate aliases
// ij1, ij2, … are minted deterministically, so they resolve identically on
// replay).
type Stage struct {
	Kind StageKind
	// Alias is the push-down target (StagePushDown only).
	Alias string
	// LeftAlias/RightAlias name the joined pair in the current graph and
	// Algo/BuildLeft the physical choice the loop converged to
	// (StageJoin only).
	LeftAlias  string
	RightAlias string
	Algo       plan.Algo
	BuildLeft  bool
	// ObservedRows is the stage's output cardinality measured at its sink
	// by the recording run — the center of the replay tolerance band.
	ObservedRows int64
}

// Node records the final pipelined job structurally, over the aliases live
// after the staged prefix. Leaves carry only the alias; replay rebinds them
// to whatever dataset (base or freshly materialized temp) the alias names
// in its own execution.
type Node struct {
	// Alias is set on leaves.
	Alias string
	// Interior join fields.
	Left, Right         *Node
	LeftKeys, RightKeys []string // qualified alias.field, positionally aligned
	Algo                plan.Algo
	BuildLeft           bool
	EstRows             int64
}

// Entry is one memoized shape: the converged plan plus everything needed to
// decide whether it is still trustworthy. Entries are immutable once stored;
// re-recording replaces the whole entry.
type Entry struct {
	// Shape is the canonical query shape (plus the strategy-config tag) the
	// entry is keyed under.
	Shape string
	// Datasets lists the base datasets the shape references — the
	// invalidation fan-in.
	Datasets []string
	// Fingerprint pins the registry statistics the plan was derived from;
	// replay is refused when the live registry drifts from it.
	Fingerprint stats.Fingerprint
	// Stages is the staged prefix (push-downs, then loop joins) in
	// execution order.
	Stages []Stage
	// Final is the last pipelined job (zero or more joins over the
	// remaining aliases).
	Final *Node
	// Born is the store's invalidation epoch when this recording started.
	// Put refuses an entry born before the latest invalidation, so a plan
	// converged against pre-DDL metadata cannot re-enter the store after
	// the DDL evicted its shape (the recording-in-flight race).
	Born int64
}

// DefaultTolerance is the multiplicative replay band: a replayed stage
// observing more than Tolerance× (or fewer than 1/Tolerance×) the recorded
// rows aborts the replay. Wide enough that rotating parameter bindings of
// one workload shape stay inside; narrow enough that a join blowing up by
// orders of magnitude falls back before the error compounds.
const DefaultTolerance = 8.0

// DefaultSlack is the absolute-rows slack added to both band edges so tiny
// recorded cardinalities (0, 3, 10 rows) don't make the band degenerate.
const DefaultSlack = 64

// Options parameterizes the store's guardrails.
type Options struct {
	// Tolerance is the multiplicative cardinality band (default
	// DefaultTolerance; values <= 1 mean the default).
	Tolerance float64
	// Slack is the absolute band widening in rows (default DefaultSlack;
	// negative means 0).
	Slack int64
	// StatsDriftTolerance is the relative registry drift beyond which an
	// entry's fingerprint is stale (default
	// stats.DefaultStatsDriftTolerance).
	StatsDriftTolerance float64
}

func (o Options) tolerance() float64 {
	if o.Tolerance <= 1 {
		return DefaultTolerance
	}
	return o.Tolerance
}

func (o Options) slack() int64 {
	if o.Slack < 0 {
		return 0
	}
	if o.Slack == 0 {
		return DefaultSlack
	}
	return o.Slack
}

// WithinBand reports whether an observed stage cardinality stays inside the
// tolerance band around the recorded one.
func (o Options) WithinBand(recorded, observed int64) bool {
	t := o.tolerance()
	s := o.slack()
	lo := int64(float64(recorded)/t) - s
	hi := int64(float64(recorded)*t) + s
	return observed >= lo && observed <= hi
}

// Store is the bounded LRU of memoized shapes. Safe for concurrent use by
// serving queries: Get/Put/Invalidate take one short mutex; entries are
// immutable so readers never see a half-written plan.
type Store struct {
	mu      sync.Mutex
	cap     int
	opt     Options
	entries map[string]*list.Element // shape -> element whose Value is *Entry
	lru     *list.List               // front = most recently used
	epoch   int64                    // bumped by every InvalidateDataset

	hits, misses, fallbacks, evictions, invalidations int64
}

// NewStore returns a store holding at most capacity entries (minimum 1).
func NewStore(capacity int, opt Options) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		cap:     capacity,
		opt:     opt,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Opts returns the store's guardrail options.
func (s *Store) Opts() Options { return s.opt }

// Get returns the entry for a shape (touching its LRU position), or nil.
func (s *Store) Get(shape string) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[shape]
	if !ok {
		s.misses++
		return nil
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*Entry)
}

// Peek returns the entry for a shape without touching LRU order or hit
// accounting (Explain's would-it-replay probe).
func (s *Store) Peek(shape string) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[shape]; ok {
		return el.Value.(*Entry)
	}
	return nil
}

// Epoch returns the current invalidation epoch; recordings snapshot it
// into Entry.Born before executing.
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Put installs (or replaces) the entry under its shape, evicting the least
// recently used shape when over capacity. An entry born before the latest
// invalidation is refused: its plan may have converged against metadata a
// concurrent DDL just invalidated (conservative — any invalidation during
// the recording drops it, and the next execution simply re-records).
func (s *Store) Put(e *Entry) {
	if e == nil || e.Shape == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Born != s.epoch {
		return
	}
	if el, ok := s.entries[e.Shape]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.entries[e.Shape] = s.lru.PushFront(e)
	for s.lru.Len() > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*Entry).Shape)
		s.evictions++
	}
}

// Remove drops one shape unconditionally.
func (s *Store) Remove(shape string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[shape]; ok {
		s.lru.Remove(el)
		delete(s.entries, shape)
	}
}

// RemoveEntry drops a shape only while it still maps to exactly e
// (stale-fingerprint refusal evicts eagerly, but must not delete a fresh
// entry a concurrent query re-recorded under the same shape in between).
func (s *Store) RemoveEntry(e *Entry) {
	if e == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Shape]; ok && el.Value.(*Entry) == e {
		s.lru.Remove(el)
		delete(s.entries, e.Shape)
	}
}

// NoteFallback counts one mid-query replay fallback (serving metrics).
func (s *Store) NoteFallback() {
	s.mu.Lock()
	s.fallbacks++
	s.mu.Unlock()
}

// InvalidateDataset evicts every shape referencing the dataset and bumps
// the invalidation epoch (so in-flight recordings started before this
// point are refused at Put). Wired to the catalog's base-change hook:
// dataset registered/replaced, dropped, or index built.
func (s *Store) InvalidateDataset(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*Entry)
		for _, d := range e.Datasets {
			if d == name {
				s.lru.Remove(el)
				delete(s.entries, e.Shape)
				s.invalidations++
				break
			}
		}
		el = next
	}
}

// Len returns the number of memoized shapes.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Counters is a snapshot of the store's serving statistics.
type Counters struct {
	Hits, Misses, Fallbacks, Evictions, Invalidations int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Hits: s.hits, Misses: s.misses, Fallbacks: s.fallbacks,
		Evictions: s.evictions, Invalidations: s.invalidations,
	}
}
