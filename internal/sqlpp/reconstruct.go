package sqlpp

import (
	"fmt"

	"dynopt/internal/expr"
)

// FlattenName is the single naming rule connecting query reconstruction to
// materialized intermediate schemas: when the join of aliases a and b is
// materialized, column a.x becomes field "a_x" of the new dataset. The Sink
// operator applies the same rule, so re-parsed reconstructed queries resolve
// against the temp dataset's schema.
func FlattenName(alias, column string) string {
	return alias + "_" + column
}

// RewriteColumns returns a copy of e with every column reference passed
// through fn (fn returning nil keeps the original reference). The input tree
// is not modified.
func RewriteColumns(e expr.Expr, fn func(*expr.Column) *expr.Column) expr.Expr {
	switch n := e.(type) {
	case *expr.Column:
		if out := fn(n); out != nil {
			return out
		}
		cp := *n
		return &cp
	case *expr.Literal:
		return n
	case *expr.Param:
		return n
	case *expr.Compare:
		return &expr.Compare{Op: n.Op, L: RewriteColumns(n.L, fn), R: RewriteColumns(n.R, fn)}
	case *expr.Between:
		return &expr.Between{
			X:  RewriteColumns(n.X, fn),
			Lo: RewriteColumns(n.Lo, fn),
			Hi: RewriteColumns(n.Hi, fn),
		}
	case *expr.And:
		kids := make([]expr.Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = RewriteColumns(k, fn)
		}
		return &expr.And{Kids: kids}
	case *expr.Or:
		kids := make([]expr.Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = RewriteColumns(k, fn)
		}
		return &expr.Or{Kids: kids}
	case *expr.Not:
		return &expr.Not{Kid: RewriteColumns(n.Kid, fn)}
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = RewriteColumns(a, fn)
		}
		return &expr.Call{Name: n.Name, Args: args}
	case *expr.Arith:
		return &expr.Arith{Op: n.Op, L: RewriteColumns(n.L, fn), R: RewriteColumns(n.R, fn)}
	default:
		return e
	}
}

// ReplaceFilteredDataset performs the predicate push-down reconstruction of
// §5.1: after dataset bound to alias has had its local predicates executed
// and materialized as tempDataset, the FROM entry is retargeted at the
// materialized data and the executed predicates are removed from WHERE
// (producing the paper's Q′1 from Q1). Column references keep working
// because the temp dataset preserves field names and the alias is unchanged.
func ReplaceFilteredDataset(q *Query, alias, tempDataset string) (*Query, error) {
	out := q.Clone()
	found := false
	for i, t := range out.From {
		if t.Alias == alias {
			out.From[i] = TableRef{Dataset: tempDataset, Alias: alias}
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("sqlpp: reconstruct: alias %q not in FROM", alias)
	}
	var kept []expr.Expr
	for _, w := range out.Where {
		qs := expr.QualifiersOf(w)
		if len(qs) == 1 && qs[alias] {
			continue // executed during push-down
		}
		if len(qs) == 0 {
			continue // constant predicates folded into the push-down job
		}
		kept = append(kept, w)
	}
	out.Where = kept
	return out, nil
}

// MergeJoin performs the join-result reconstruction of §5.4: the two aliases
// of the executed join edge are removed from FROM and replaced by newAlias
// bound to tempDataset; the executed equi-join conjuncts disappear; every
// remaining reference to either old alias is rewritten to
// newAlias.FlattenName(oldAlias, column) across SELECT, WHERE, GROUP BY and
// ORDER BY (the paper's example: B.c becomes I_AB.c when I_AB replaces A⋈B).
func MergeJoin(q *Query, edge *JoinEdge, tempDataset, newAlias string) (*Query, error) {
	out := q.Clone()
	if _, ok := out.AliasOf(edge.LeftAlias); !ok {
		return nil, fmt.Errorf("sqlpp: reconstruct: alias %q not in FROM", edge.LeftAlias)
	}
	if _, ok := out.AliasOf(edge.RightAlias); !ok {
		return nil, fmt.Errorf("sqlpp: reconstruct: alias %q not in FROM", edge.RightAlias)
	}
	if _, dup := out.AliasOf(newAlias); dup {
		return nil, fmt.Errorf("sqlpp: reconstruct: alias %q already in FROM", newAlias)
	}

	// FROM: drop both inputs, prepend the intermediate (it is the freshest
	// dataset; position has no semantic meaning for our planner).
	var from []TableRef
	from = append(from, TableRef{Dataset: tempDataset, Alias: newAlias})
	for _, t := range out.From {
		if t.Alias != edge.LeftAlias && t.Alias != edge.RightAlias {
			from = append(from, t)
		}
	}
	out.From = from

	rewrite := func(c *expr.Column) *expr.Column {
		if c.Qualifier == edge.LeftAlias || c.Qualifier == edge.RightAlias {
			return &expr.Column{Qualifier: newAlias, Name: FlattenName(c.Qualifier, c.Name)}
		}
		return nil
	}

	// WHERE: drop the executed join's conjuncts, rewrite the rest.
	var where []expr.Expr
	for _, w := range out.Where {
		if l, r, ok := asJoinPred(w); ok {
			pair := canonPair(l.Qualifier, r.Qualifier)
			if pair == canonPair(edge.LeftAlias, edge.RightAlias) {
				continue
			}
		}
		where = append(where, RewriteColumns(w, rewrite))
	}
	out.Where = where

	for i, s := range out.Select {
		out.Select[i].Expr = RewriteColumns(s.Expr, rewrite)
	}
	for i, g := range out.GroupBy {
		out.GroupBy[i] = RewriteColumns(g, rewrite)
	}
	for i, o := range out.OrderBy {
		out.OrderBy[i].Expr = RewriteColumns(o.Expr, rewrite)
	}
	return out, nil
}
