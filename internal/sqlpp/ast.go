package sqlpp

import (
	"strconv"
	"strings"

	"dynopt/internal/expr"
)

// SelectItem is one projection: an expression with an optional output alias.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
}

// TableRef is one FROM-clause entry: a dataset with its binding alias.
type TableRef struct {
	Dataset string
	Alias   string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Query is the parsed AST of a SELECT statement. Where holds the WHERE
// clause already split into top-level conjuncts, the form both the analyzer
// and the reconstruction step work on.
type Query struct {
	Select     []SelectItem
	SelectStar bool
	From       []TableRef
	Where      []expr.Expr
	GroupBy    []expr.Expr
	OrderBy    []OrderItem
	Limit      int64 // -1 when absent
}

// SQL re-emits the query as parseable text. The dynamic optimizer feeds this
// back into Parse each iteration, mirroring Figure 2's reformulated-query
// edge.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.SelectStar {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.Expr.SQL())
			if s.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(s.Alias)
			}
		}
	}
	b.WriteString("\nFROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Dataset)
		if t.Alias != t.Dataset {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString("\nWHERE ")
		for i, w := range q.Where {
			if i > 0 {
				b.WriteString("\n  AND ")
			}
			b.WriteString(w.SQL())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString("\nGROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("\nORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		b.WriteString("\nLIMIT ")
		b.WriteString(strconv.FormatInt(q.Limit, 10))
	}
	b.WriteString(";")
	return b.String()
}

// Clone returns a deep-ish copy: clause slices are copied so the
// reconstruction step can mutate them; expression trees are shared (they are
// treated as immutable once parsed, and rewrites build new trees).
func (q *Query) Clone() *Query {
	out := &Query{
		SelectStar: q.SelectStar,
		Limit:      q.Limit,
		Select:     append([]SelectItem(nil), q.Select...),
		From:       append([]TableRef(nil), q.From...),
		Where:      append([]expr.Expr(nil), q.Where...),
		GroupBy:    append([]expr.Expr(nil), q.GroupBy...),
		OrderBy:    append([]OrderItem(nil), q.OrderBy...),
	}
	return out
}

// AliasOf returns the TableRef bound to alias, if any.
func (q *Query) AliasOf(alias string) (TableRef, bool) {
	for _, t := range q.From {
		if t.Alias == alias {
			return t, true
		}
	}
	return TableRef{}, false
}
