package sqlpp

import (
	"strings"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

func TestFlattenName(t *testing.T) {
	if FlattenName("a", "x") != "a_x" {
		t.Errorf("FlattenName = %q", FlattenName("a", "x"))
	}
}

func TestRewriteColumnsDoesNotMutate(t *testing.T) {
	orig := &expr.Compare{
		Op: expr.CmpEq,
		L:  &expr.Column{Qualifier: "a", Name: "x"},
		R:  &expr.Column{Qualifier: "b", Name: "y"},
	}
	out := RewriteColumns(orig, func(c *expr.Column) *expr.Column {
		if c.Qualifier == "a" {
			return &expr.Column{Qualifier: "t", Name: "a_x"}
		}
		return nil
	})
	if orig.L.(*expr.Column).Qualifier != "a" {
		t.Error("RewriteColumns mutated input tree")
	}
	oc := out.(*expr.Compare)
	if oc.L.(*expr.Column).Qualifier != "t" || oc.L.(*expr.Column).Name != "a_x" {
		t.Errorf("rewritten = %s", out.SQL())
	}
	if oc.R.(*expr.Column).Qualifier != "b" {
		t.Errorf("untouched column changed: %s", out.SQL())
	}
}

func TestRewriteColumnsAllNodeTypes(t *testing.T) {
	e := &expr.And{Kids: []expr.Expr{
		&expr.Or{Kids: []expr.Expr{
			&expr.Not{Kid: &expr.Compare{Op: expr.CmpEq, L: &expr.Column{Qualifier: "a", Name: "x"}, R: &expr.Literal{Val: types.Int(1)}}},
			&expr.Between{X: &expr.Column{Qualifier: "a", Name: "y"}, Lo: &expr.Param{Name: "p"}, Hi: &expr.Literal{Val: types.Int(9)}},
		}},
		&expr.Compare{Op: expr.CmpGt,
			L: &expr.Call{Name: "f", Args: []expr.Expr{&expr.Column{Qualifier: "a", Name: "z"}}},
			R: &expr.Arith{Op: expr.ArithAdd, L: &expr.Column{Qualifier: "a", Name: "w"}, R: &expr.Literal{Val: types.Int(2)}}},
	}}
	out := RewriteColumns(e, func(c *expr.Column) *expr.Column {
		return &expr.Column{Qualifier: "T", Name: c.Name}
	})
	for _, c := range expr.ColumnsOf(out) {
		if c.Qualifier != "T" {
			t.Errorf("column %s not rewritten", c.SQL())
		}
	}
	for _, c := range expr.ColumnsOf(e) {
		if c.Qualifier != "a" {
			t.Errorf("input mutated: %s", c.SQL())
		}
	}
}

// The paper's running example: Q1 with UDFs on A and C.
const paperQ1 = `SELECT a.a FROM A a, B b, C c, D d
WHERE udf(a.f) = 1 AND a.b = b.b AND udf(c.f) = 1 AND b.c = c.c AND b.d = d.d`

func TestReplaceFilteredDataset(t *testing.T) {
	q := mustParse(t, paperQ1)
	q2, err := ReplaceFilteredDataset(q, "a", "tmp_a")
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := q2.AliasOf("a")
	if !ok || ref.Dataset != "tmp_a" || ref.Alias != "a" {
		t.Errorf("FROM after replace: %+v", q2.From)
	}
	// a's UDF predicate gone; c's remains; joins remain.
	sql := q2.SQL()
	if strings.Contains(sql, "udf(a.f)") {
		t.Errorf("a's predicate not removed:\n%s", sql)
	}
	if !strings.Contains(sql, "udf(c.f)") {
		t.Errorf("c's predicate wrongly removed:\n%s", sql)
	}
	if !strings.Contains(sql, "a.b = b.b") {
		t.Errorf("join lost:\n%s", sql)
	}
	// Original untouched.
	if !strings.Contains(q.SQL(), "udf(a.f)") {
		t.Error("input query mutated")
	}
}

func TestReplaceFilteredDatasetUnknownAlias(t *testing.T) {
	q := mustParse(t, paperQ1)
	if _, err := ReplaceFilteredDataset(q, "zz", "tmp"); err == nil {
		t.Error("unknown alias did not error")
	}
}

func TestMergeJoinPaperExample(t *testing.T) {
	// After push-down, Q′1: A′ ⋈ B ⋈ C′ ⋈ D. Executing A′⋈B produces I_AB;
	// the reconstructed query must join I_AB with C on the flattened b_c and
	// keep C⋈D intact (the paper's Q4).
	q := mustParse(t, `SELECT a.a FROM tmp_a a, B b, tmp_c c, D d
		WHERE a.b = b.b AND b.c = c.c AND b.d = d.d`)
	edge := &JoinEdge{LeftAlias: "a", RightAlias: "b", LeftFields: []string{"b"}, RightFields: []string{"b"}}
	q2, err := MergeJoin(q, edge, "tmp_iab", "iab")
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.From) != 3 {
		t.Fatalf("FROM size = %d: %+v", len(q2.From), q2.From)
	}
	if q2.From[0].Dataset != "tmp_iab" || q2.From[0].Alias != "iab" {
		t.Errorf("intermediate not first: %+v", q2.From)
	}
	sql := q2.SQL()
	if !strings.Contains(sql, "iab.a_a") {
		t.Errorf("projection not rewritten:\n%s", sql)
	}
	if !strings.Contains(sql, "iab.b_c = c.c") {
		t.Errorf("join to c not rewritten:\n%s", sql)
	}
	if !strings.Contains(sql, "iab.b_d = d.d") {
		t.Errorf("join to d not rewritten:\n%s", sql)
	}
	if strings.Contains(sql, "a.b = b.b") {
		t.Errorf("executed join not removed:\n%s", sql)
	}
}

func TestMergeJoinErrors(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM A a, B b WHERE a.k = b.k")
	if _, err := MergeJoin(q, &JoinEdge{LeftAlias: "zz", RightAlias: "b"}, "t", "n"); err == nil {
		t.Error("unknown left alias did not error")
	}
	if _, err := MergeJoin(q, &JoinEdge{LeftAlias: "a", RightAlias: "zz"}, "t", "n"); err == nil {
		t.Error("unknown right alias did not error")
	}
	if _, err := MergeJoin(q, &JoinEdge{LeftAlias: "a", RightAlias: "b"}, "t", "a"); err == nil {
		t.Error("duplicate new alias did not error")
	}
}

func TestMergeJoinRewritesAllClauses(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM A a, B b, C c
		WHERE a.k = b.k AND b.j = c.j AND a.z = 5
		GROUP BY a.g ORDER BY b.o`)
	edge := &JoinEdge{LeftAlias: "a", RightAlias: "b", LeftFields: []string{"k"}, RightFields: []string{"k"}}
	q2, err := MergeJoin(q, edge, "tmp1", "j1")
	if err != nil {
		t.Fatal(err)
	}
	sql := q2.SQL()
	for _, want := range []string{"j1.a_x", "j1.b_j = c.j", "j1.a_z = 5", "GROUP BY j1.a_g", "ORDER BY j1.b_o"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

// Full round trip: reconstructed text must re-parse and re-analyze against a
// resolver that serves the temp dataset's flattened schema.
func TestReconstructionReparsesAndAnalyzes(t *testing.T) {
	base := func(cols ...string) *types.Schema {
		s := &types.Schema{}
		for _, c := range cols {
			s.Fields = append(s.Fields, types.Field{Name: c, Kind: types.KindInt})
		}
		return s
	}
	schemas := map[string]*types.Schema{
		"A": base("a", "b", "f"),
		"B": base("b", "c", "d"),
		"C": base("c", "f"),
		"D": base("d"),
	}
	resolve := func(n string) (*types.Schema, bool) { s, ok := schemas[n]; return s, ok }

	q := mustParse(t, `SELECT a.a FROM A a, B b, C c, D d
		WHERE a.b = b.b AND b.c = c.c AND b.d = d.d`)
	if _, err := Analyze(q.Clone(), resolve); err != nil {
		t.Fatalf("initial analyze: %v", err)
	}
	edge := &JoinEdge{LeftAlias: "a", RightAlias: "b", LeftFields: []string{"b"}, RightFields: []string{"b"}}
	q2, err := MergeJoin(q, edge, "tmp_iab", "iab")
	if err != nil {
		t.Fatal(err)
	}
	// The temp dataset carries flattened names, as the Sink will produce.
	schemas["tmp_iab"] = base("a_a", "a_b", "a_f", "b_b", "b_c", "b_d")
	q3, err := Parse(q2.SQL())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, q2.SQL())
	}
	g, err := Analyze(q3, resolve)
	if err != nil {
		t.Fatalf("re-analyze: %v\n%s", err, q2.SQL())
	}
	if len(g.Joins) != 2 {
		t.Errorf("remaining joins = %d, want 2", len(g.Joins))
	}
	if _, ok := g.JoinFor("iab", "c"); !ok {
		t.Error("iab⋈c missing after reconstruction")
	}
	if _, ok := g.JoinFor("iab", "d"); !ok {
		t.Error("iab⋈d missing after reconstruction")
	}
}
