package sqlpp

import (
	"strconv"
	"strings"

	"dynopt/internal/expr"
)

// ShapeOf renders the canonical shape of an analyzed query: every literal
// and every $param is lifted into an anonymous `?` binding slot, while the
// structure — datasets, aliases, qualified column references, operators,
// clause order — is kept verbatim. Two executions of the same parameterized
// statement with different constants therefore share one shape, which is the
// key the plan memo caches converged plans under.
//
// The query should have been through Analyze first so bare column references
// are already qualified; otherwise `d_moy = 4` and `d1.d_moy = 4` would
// produce different shapes for the same plan.
//
// LIMIT is deliberately NOT lifted: a different LIMIT is a different result
// contract, and conflating them under one shape would let a remembered
// low-LIMIT plan serve an unbounded query.
func ShapeOf(q *Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.SelectStar {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			canonExpr(&b, s.Expr)
			if s.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(s.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Dataset)
		if t.Alias != t.Dataset {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, w := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			canonExpr(&b, w)
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			canonExpr(&b, g)
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			canonExpr(&b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(q.Limit, 10))
	}
	return b.String()
}

// canonExpr renders one expression into the shape, lifting constants. The
// type switch mirrors Expr.SQL()'s grammar so shapes parse visually like the
// statements they stand for, with `?` where values were.
func canonExpr(b *strings.Builder, e expr.Expr) {
	switch n := e.(type) {
	case *expr.Literal, *expr.Param:
		b.WriteString("?")
	case *expr.Column:
		b.WriteString(n.SQL())
	case *expr.Compare:
		canonExpr(b, n.L)
		b.WriteString(" " + n.Op.String() + " ")
		canonExpr(b, n.R)
	case *expr.Between:
		canonExpr(b, n.X)
		b.WriteString(" BETWEEN ")
		canonExpr(b, n.Lo)
		b.WriteString(" AND ")
		canonExpr(b, n.Hi)
	case *expr.And:
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteString(" AND ")
			}
			canonExpr(b, k)
		}
	case *expr.Or:
		b.WriteString("(")
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteString(" OR ")
			}
			b.WriteString("(")
			canonExpr(b, k)
			b.WriteString(")")
		}
		b.WriteString(")")
	case *expr.Not:
		b.WriteString("NOT (")
		canonExpr(b, n.Kid)
		b.WriteString(")")
	case *expr.Call:
		b.WriteString(n.Name)
		b.WriteString("(")
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			canonExpr(b, a)
		}
		b.WriteString(")")
	case *expr.Arith:
		b.WriteString("(")
		canonExpr(b, n.L)
		b.WriteString(" " + n.Op.String() + " ")
		canonExpr(b, n.R)
		b.WriteString(")")
	default:
		// Unknown node kinds degrade to their SQL text: constants inside
		// them won't be lifted, so distinct constants get distinct shapes —
		// correct, just less sharing.
		b.WriteString(e.SQL())
	}
}
