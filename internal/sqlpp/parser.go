package sqlpp

import (
	"fmt"
	"strconv"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

// Parse parses one SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s, found %s", kw, t)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.acceptOp("*") {
		q.SelectStar = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.peek()
				if t.kind != tokIdent {
					return nil, p.errf("expected alias after AS, found %s", t)
				}
				item.Alias = p.advance().text
			}
			q.Select = append(q.Select, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected dataset name, found %s", t)
		}
		ref := TableRef{Dataset: p.advance().text}
		ref.Alias = ref.Dataset
		if p.acceptKeyword("AS") {
			t := p.peek()
			if t.kind != tokIdent {
				return nil, p.errf("expected alias after AS, found %s", t)
			}
			ref.Alias = p.advance().text
		} else if p.peek().kind == tokIdent {
			// implicit alias: FROM date_dim d1
			ref.Alias = p.advance().text
		}
		q.From = append(q.From, ref)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = splitConjuncts(e)
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %s", t)
		}
		n, err := strconv.ParseInt(p.advance().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value: %v", err)
		}
		q.Limit = n
	}
	return q, nil
}

// splitConjuncts flattens top-level ANDs into a conjunct list.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		var out []expr.Expr
		for _, k := range a.Kids {
			out = append(out, splitConjuncts(k)...)
		}
		return out
	}
	return []expr.Expr{e}
}

// Expression grammar (lowest to highest precedence):
//
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | cmpExpr
//	cmpExpr   := addExpr (( = | != | < | <= | > | >= ) addExpr
//	           | BETWEEN addExpr AND addExpr)?
//	addExpr   := mulExpr (( + | - ) mulExpr)*
//	mulExpr   := unary (( * | / ) unary)*
//	unary     := - unary | primary
//	primary   := literal | $param | ident(...) | ident(.ident)? | ( orExpr )
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []expr.Expr{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr.Or{Kids: kids}, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	kids := []expr.Expr{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &expr.And{Kids: kids}, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		kid, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{Kid: kid}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: left, Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	if t.kind == tokOp {
		var op expr.CmpOp
		switch t.text {
		case "=":
			op = expr.CmpEq
		case "!=":
			op = expr.CmpNe
		case "<":
			op = expr.CmpLt
		case "<=":
			op = expr.CmpLe
		case ">":
			op = expr.CmpGt
		case ">=":
			op = expr.CmpGe
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Compare{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := expr.ArithAdd
		if t.text == "-" {
			op = expr.ArithSub
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := expr.ArithMul
		if t.text == "/" {
			op = expr.ArithDiv
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.advance()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := kid.(*expr.Literal); ok {
			switch lit.Val.K {
			case types.KindInt:
				return &expr.Literal{Val: types.Int(-lit.Val.I())}, nil
			case types.KindFloat:
				return &expr.Literal{Val: types.Float(-lit.Val.F())}, nil
			}
		}
		return &expr.Arith{Op: expr.ArithSub, L: &expr.Literal{Val: types.Int(0)}, R: kid}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if hasDot(t.text) {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q: %v", t.text, err)
			}
			return &expr.Literal{Val: types.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q: %v", t.text, err)
		}
		return &expr.Literal{Val: types.Int(i)}, nil
	case tokString:
		p.advance()
		return &expr.Literal{Val: types.Str(t.text)}, nil
	case tokParam:
		p.advance()
		return &expr.Param{Name: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return &expr.Literal{Val: types.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &expr.Literal{Val: types.Bool(false)}, nil
		case "NULL":
			p.advance()
			return &expr.Literal{Val: types.Null()}, nil
		case "DATE":
			// DATE 'yyyy-mm-dd' is treated as a string literal; dates are
			// lexicographically comparable in ISO form.
			p.advance()
			s := p.peek()
			if s.kind != tokString {
				return nil, p.errf("expected string after DATE, found %s", s)
			}
			p.advance()
			return &expr.Literal{Val: types.Str(s.text)}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokIdent:
		p.advance()
		// Function call?
		if p.peek().kind == tokOp && p.peek().text == "(" {
			p.advance()
			call := &expr.Call{Name: t.text}
			if !(p.peek().kind == tokOp && p.peek().text == ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			f := p.peek()
			if f.kind != tokIdent {
				return nil, p.errf("expected column name after %q., found %s", t.text, f)
			}
			p.advance()
			return &expr.Column{Qualifier: t.text, Name: f.text}, nil
		}
		return &expr.Column{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
