package sqlpp

import (
	"fmt"
	"sort"
	"strings"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

// SchemaResolver maps a dataset name to its schema; the analyzer uses it to
// resolve bare column names (TPC queries reference ss_item_sk etc. without
// aliases) and to validate qualified references.
type SchemaResolver func(dataset string) (*types.Schema, bool)

// JoinEdge is one equi-join between two aliases, possibly on a composite key
// (Q17/Q50 join store_sales to store_returns on customer+item+ticket). The
// field lists are positionally aligned.
type JoinEdge struct {
	LeftAlias   string
	RightAlias  string
	LeftFields  []string
	RightFields []string
}

// Key renders the edge canonically ("a⋈b" with a<b) for map keys.
func (e *JoinEdge) Key() string {
	a, b := e.LeftAlias, e.RightAlias
	if a > b {
		a, b = b, a
	}
	return a + "⋈" + b
}

// Touches reports whether the edge involves the alias.
func (e *JoinEdge) Touches(alias string) bool {
	return e.LeftAlias == alias || e.RightAlias == alias
}

// Other returns the opposite alias of the edge.
func (e *JoinEdge) Other(alias string) string {
	if e.LeftAlias == alias {
		return e.RightAlias
	}
	return e.LeftAlias
}

// String renders "a.x,a.y = b.u,b.v".
func (e *JoinEdge) String() string {
	l := make([]string, len(e.LeftFields))
	r := make([]string, len(e.RightFields))
	for i := range e.LeftFields {
		l[i] = e.LeftAlias + "." + e.LeftFields[i]
		r[i] = e.RightAlias + "." + e.RightFields[i]
	}
	return strings.Join(l, ",") + " = " + strings.Join(r, ",")
}

// Graph is the analyzed form of a query: the Planner's working
// representation. Joins between the same alias pair are merged into one
// composite-key edge.
type Graph struct {
	Query   *Query
	Tables  map[string]TableRef    // alias → FROM entry
	Aliases []string               // FROM order
	Joins   []*JoinEdge            // merged equi-join edges
	Locals  map[string][]expr.Expr // alias → local predicates
}

// Analyze validates the query against the resolver and extracts the join
// graph. Bare column references in every clause are rewritten in place to
// qualified form.
func Analyze(q *Query, resolve SchemaResolver) (*Graph, error) {
	g := &Graph{Query: q, Tables: map[string]TableRef{}, Locals: map[string][]expr.Expr{}}
	schemas := map[string]*types.Schema{}
	for _, t := range q.From {
		if _, dup := g.Tables[t.Alias]; dup {
			return nil, fmt.Errorf("sqlpp: duplicate alias %q in FROM", t.Alias)
		}
		sch, ok := resolve(t.Dataset)
		if !ok {
			return nil, fmt.Errorf("sqlpp: unknown dataset %q", t.Dataset)
		}
		g.Tables[t.Alias] = t
		g.Aliases = append(g.Aliases, t.Alias)
		schemas[t.Alias] = sch
	}

	qualify := func(e expr.Expr) error {
		var qerr error
		e.Walk(func(n expr.Expr) {
			c, ok := n.(*expr.Column)
			if !ok || qerr != nil {
				return
			}
			if c.Qualifier != "" {
				sch, ok := schemas[c.Qualifier]
				if !ok {
					qerr = fmt.Errorf("sqlpp: unknown alias %q in %s", c.Qualifier, e.SQL())
					return
				}
				if _, ok := sch.Index(c.Name); !ok {
					qerr = fmt.Errorf("sqlpp: dataset %q has no column %q", g.Tables[c.Qualifier].Dataset, c.Name)
				}
				return
			}
			var owner string
			for _, alias := range g.Aliases {
				if _, ok := schemas[alias].Index(c.Name); ok {
					if owner != "" {
						qerr = fmt.Errorf("sqlpp: column %q is ambiguous (in %q and %q)", c.Name, owner, alias)
						return
					}
					owner = alias
				}
			}
			if owner == "" {
				qerr = fmt.Errorf("sqlpp: column %q not found in any FROM dataset", c.Name)
				return
			}
			c.Qualifier = owner
		})
		return qerr
	}

	for _, s := range q.Select {
		if err := qualify(s.Expr); err != nil {
			return nil, err
		}
	}
	for _, w := range q.Where {
		if err := qualify(w); err != nil {
			return nil, err
		}
	}
	for _, ge := range q.GroupBy {
		if err := qualify(ge); err != nil {
			return nil, err
		}
	}
	for _, o := range q.OrderBy {
		if err := qualify(o.Expr); err != nil {
			return nil, err
		}
	}

	// Classify conjuncts: equi-joins between two aliases vs local predicates.
	edges := map[string]*JoinEdge{}
	for _, w := range q.Where {
		if l, r, ok := asJoinPred(w); ok {
			key := canonPair(l.Qualifier, r.Qualifier)
			e, exists := edges[key]
			if !exists {
				la, ra := l.Qualifier, r.Qualifier
				if la > ra {
					la, ra = ra, la
					l, r = r, l
				}
				e = &JoinEdge{LeftAlias: la, RightAlias: ra}
				edges[key] = e
				g.Joins = append(g.Joins, e)
			}
			if e.LeftAlias == l.Qualifier {
				e.LeftFields = append(e.LeftFields, l.Name)
				e.RightFields = append(e.RightFields, r.Name)
			} else {
				e.LeftFields = append(e.LeftFields, r.Name)
				e.RightFields = append(e.RightFields, l.Name)
			}
			continue
		}
		qs := expr.QualifiersOf(w)
		if len(qs) == 1 {
			for alias := range qs {
				g.Locals[alias] = append(g.Locals[alias], w)
			}
			continue
		}
		if len(qs) == 0 {
			// Constant predicate (e.g. $p = 1): attach to the first alias so
			// it is evaluated once per row during its scan.
			if len(g.Aliases) > 0 {
				g.Locals[g.Aliases[0]] = append(g.Locals[g.Aliases[0]], w)
				continue
			}
		}
		return nil, fmt.Errorf("sqlpp: unsupported non-equi multi-dataset predicate: %s", w.SQL())
	}

	// Connectivity check: a disconnected join graph would imply a cross
	// product, which this engine (like the paper) does not schedule.
	if len(g.Aliases) > 1 {
		if err := g.checkConnected(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// asJoinPred recognizes `a.x = b.y` with distinct aliases.
func asJoinPred(e expr.Expr) (l, r *expr.Column, ok bool) {
	c, isCmp := e.(*expr.Compare)
	if !isCmp || c.Op != expr.CmpEq {
		return nil, nil, false
	}
	lc, lok := c.L.(*expr.Column)
	rc, rok := c.R.(*expr.Column)
	if !lok || !rok || lc.Qualifier == rc.Qualifier {
		return nil, nil, false
	}
	return lc, rc, true
}

func canonPair(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "⋈" + b
}

func (g *Graph) checkConnected() error {
	if len(g.Joins) == 0 {
		return fmt.Errorf("sqlpp: query with %d datasets has no join predicates (cross products unsupported)", len(g.Aliases))
	}
	adj := map[string][]string{}
	for _, e := range g.Joins {
		adj[e.LeftAlias] = append(adj[e.LeftAlias], e.RightAlias)
		adj[e.RightAlias] = append(adj[e.RightAlias], e.LeftAlias)
	}
	seen := map[string]bool{g.Aliases[0]: true}
	stack := []string{g.Aliases[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	var missing []string
	for _, a := range g.Aliases {
		if !seen[a] {
			missing = append(missing, a)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("sqlpp: join graph is disconnected; unreachable: %s", strings.Join(missing, ", "))
	}
	return nil
}

// JoinFor returns the merged edge between two aliases, if present.
func (g *Graph) JoinFor(a, b string) (*JoinEdge, bool) {
	key := canonPair(a, b)
	for _, e := range g.Joins {
		if e.Key() == key {
			return e, true
		}
	}
	return nil, false
}

// NeededColumns returns, per alias, the set of column names the rest of the
// query needs from that alias (projections, join keys, group/order keys,
// post-join predicates). This is the projection list the paper pushes into
// single-variable queries ("the SELECT clause is defined by attributes that
// participate in the remaining query", §5.1).
func (g *Graph) NeededColumns() map[string]map[string]bool {
	need := map[string]map[string]bool{}
	add := func(c *expr.Column) {
		if c.Qualifier == "" {
			return
		}
		m, ok := need[c.Qualifier]
		if !ok {
			m = map[string]bool{}
			need[c.Qualifier] = m
		}
		m[c.Name] = true
	}
	collect := func(e expr.Expr) {
		for _, c := range expr.ColumnsOf(e) {
			add(c)
		}
	}
	if g.Query.SelectStar {
		// Everything is needed; signal with nil maps (callers treat a
		// missing entry as "all columns" only under SelectStar).
		return need
	}
	for _, s := range g.Query.Select {
		collect(s.Expr)
	}
	for _, w := range g.Query.Where {
		collect(w)
	}
	for _, ge := range g.Query.GroupBy {
		collect(ge)
	}
	for _, o := range g.Query.OrderBy {
		collect(o.Expr)
	}
	for _, e := range g.Joins {
		for _, f := range e.LeftFields {
			add(&expr.Column{Qualifier: e.LeftAlias, Name: f})
		}
		for _, f := range e.RightFields {
			add(&expr.Column{Qualifier: e.RightAlias, Name: f})
		}
	}
	return need
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("Graph{")
	b.WriteString(strings.Join(g.Aliases, ", "))
	b.WriteString("}")
	for _, e := range g.Joins {
		b.WriteString("\n  join ")
		b.WriteString(e.String())
	}
	aliases := make([]string, 0, len(g.Locals))
	for a := range g.Locals {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	for _, a := range aliases {
		for _, p := range g.Locals[a] {
			b.WriteString("\n  local[")
			b.WriteString(a)
			b.WriteString("] ")
			b.WriteString(p.SQL())
		}
	}
	return b.String()
}
