package sqlpp

import (
	"strings"
	"testing"

	"dynopt/internal/types"
)

func shapeResolver() SchemaResolver {
	users := types.NewSchema(
		types.Field{Name: "u_id", Kind: types.KindInt},
		types.Field{Name: "u_grp", Kind: types.KindInt},
	)
	orders := types.NewSchema(
		types.Field{Name: "o_id", Kind: types.KindInt},
		types.Field{Name: "o_user", Kind: types.KindInt},
		types.Field{Name: "o_amt", Kind: types.KindFloat},
	)
	return func(name string) (*types.Schema, bool) {
		switch name {
		case "users":
			return users, true
		case "orders":
			return orders, true
		}
		return nil, false
	}
}

func shapeOf(t *testing.T, sql string) string {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	if _, err := Analyze(q, shapeResolver()); err != nil {
		t.Fatalf("analyze %q: %v", sql, err)
	}
	return ShapeOf(q)
}

func TestShapeLiftsLiteralsAndParams(t *testing.T) {
	base := shapeOf(t, `SELECT o.o_id FROM orders o, users u
		WHERE o.o_user = u.u_id AND u.u_grp = 3`)
	if strings.Contains(base, "3") {
		t.Errorf("literal not lifted: %s", base)
	}
	if !strings.Contains(base, "u.u_grp = ?") {
		t.Errorf("placeholder missing: %s", base)
	}
	same := []string{
		`SELECT o.o_id FROM orders o, users u WHERE o.o_user = u.u_id AND u.u_grp = 7`,
		`SELECT o.o_id FROM orders o, users u WHERE o.o_user = u.u_id AND u.u_grp = $g`,
		// Bare columns qualify to the same shape.
		`SELECT o_id FROM orders o, users u WHERE o_user = u_id AND u_grp = 5`,
	}
	for _, sql := range same {
		if got := shapeOf(t, sql); got != base {
			t.Errorf("shape differs:\n got %s\nwant %s", got, base)
		}
	}
}

func TestShapeKeepsStructure(t *testing.T) {
	base := shapeOf(t, `SELECT o.o_id FROM orders o, users u
		WHERE o.o_user = u.u_id AND u.u_grp = 3`)
	different := []string{
		// Different predicate column.
		`SELECT o.o_id FROM orders o, users u WHERE o.o_user = u.u_id AND u.u_id = 3`,
		// Extra conjunct.
		`SELECT o.o_id FROM orders o, users u WHERE o.o_user = u.u_id AND u.u_grp = 3 AND o.o_amt > 1`,
		// Different projection.
		`SELECT o.o_amt FROM orders o, users u WHERE o.o_user = u.u_id AND u.u_grp = 3`,
		// Different alias binding.
		`SELECT ox.o_id FROM orders ox, users u WHERE ox.o_user = u.u_id AND u.u_grp = 3`,
	}
	for _, sql := range different {
		if got := shapeOf(t, sql); got == base {
			t.Errorf("structurally different query shares shape: %s", sql)
		}
	}
}

func TestShapeKeepsLimitAndClauses(t *testing.T) {
	a := shapeOf(t, `SELECT u.u_grp, count(o.o_id) AS n FROM orders o, users u
		WHERE o.o_user = u.u_id GROUP BY u.u_grp ORDER BY u.u_grp LIMIT 10`)
	b := shapeOf(t, `SELECT u.u_grp, count(o.o_id) AS n FROM orders o, users u
		WHERE o.o_user = u.u_id GROUP BY u.u_grp ORDER BY u.u_grp LIMIT 20`)
	if a == b {
		t.Error("different LIMITs share a shape")
	}
	if !strings.Contains(a, "GROUP BY u.u_grp") || !strings.Contains(a, "ORDER BY u.u_grp") {
		t.Errorf("clauses missing from shape: %s", a)
	}
	// BETWEEN bounds and call arguments are lifted too.
	c := shapeOf(t, `SELECT o.o_id FROM orders o, users u
		WHERE o.o_user = u.u_id AND o.o_amt BETWEEN 1 AND 2`)
	d := shapeOf(t, `SELECT o.o_id FROM orders o, users u
		WHERE o.o_user = u.u_id AND o.o_amt BETWEEN $lo AND $hi`)
	if c != d {
		t.Errorf("BETWEEN bounds not lifted:\n%s\n%s", c, d)
	}
}
