package sqlpp

import (
	"strings"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

// testResolver serves schemas for a small star-ish catalog.
func testResolver() SchemaResolver {
	mk := func(cols ...string) *types.Schema {
		s := &types.Schema{}
		for _, c := range cols {
			s.Fields = append(s.Fields, types.Field{Name: c, Kind: types.KindInt})
		}
		return s
	}
	schemas := map[string]*types.Schema{
		"fact":  mk("fk_a", "fk_b", "fk_c", "measure"),
		"dim_a": mk("a_key", "a_attr"),
		"dim_b": mk("b_key", "b_attr"),
		"dim_c": mk("c_key", "c_attr"),
		"sales": mk("cust", "item", "ticket", "amt"),
		"rets":  mk("cust", "item", "ticket", "reason"),
	}
	return func(name string) (*types.Schema, bool) {
		s, ok := schemas[name]
		return s, ok
	}
}

func analyze(t *testing.T, src string) *Graph {
	t.Helper()
	q := mustParse(t, src)
	g, err := Analyze(q, testResolver())
	if err != nil {
		t.Fatalf("Analyze(%q): %v", src, err)
	}
	return g
}

func TestAnalyzeJoinGraph(t *testing.T) {
	g := analyze(t, `SELECT fact.measure FROM fact, dim_a, dim_b
		WHERE fact.fk_a = dim_a.a_key AND fact.fk_b = dim_b.b_key AND dim_a.a_attr = 3`)
	if len(g.Aliases) != 3 {
		t.Fatalf("aliases = %v", g.Aliases)
	}
	if len(g.Joins) != 2 {
		t.Fatalf("joins = %d", len(g.Joins))
	}
	if len(g.Locals["dim_a"]) != 1 {
		t.Errorf("locals[dim_a] = %d", len(g.Locals["dim_a"]))
	}
	e, ok := g.JoinFor("fact", "dim_a")
	if !ok {
		t.Fatal("no fact⋈dim_a edge")
	}
	if e.Other("fact") != "dim_a" || e.Other("dim_a") != "fact" {
		t.Error("Other() wrong")
	}
	if !e.Touches("fact") || e.Touches("dim_b") {
		t.Error("Touches() wrong")
	}
}

func TestAnalyzeCompositeKeyMerged(t *testing.T) {
	g := analyze(t, `SELECT sales.amt FROM sales, rets
		WHERE sales.cust = rets.cust AND sales.item = rets.item AND sales.ticket = rets.ticket`)
	if len(g.Joins) != 1 {
		t.Fatalf("composite join split into %d edges", len(g.Joins))
	}
	e := g.Joins[0]
	if len(e.LeftFields) != 3 || len(e.RightFields) != 3 {
		t.Errorf("composite key fields = %v / %v", e.LeftFields, e.RightFields)
	}
	// Alignment: left fields belong to LeftAlias.
	for i := range e.LeftFields {
		if e.LeftFields[i] != e.RightFields[i] {
			t.Errorf("misaligned key pair %s/%s", e.LeftFields[i], e.RightFields[i])
		}
	}
}

func TestAnalyzeQualifiesBareColumns(t *testing.T) {
	g := analyze(t, `SELECT measure FROM fact, dim_a WHERE fk_a = a_key AND a_attr = 1`)
	if len(g.Joins) != 1 {
		t.Fatalf("joins = %d", len(g.Joins))
	}
	e := g.Joins[0]
	if e.Key() != "dim_a⋈fact" {
		t.Errorf("edge key = %q", e.Key())
	}
	if len(g.Locals["dim_a"]) != 1 {
		t.Errorf("bare local predicate not attached: %v", g.Locals)
	}
	// SELECT item rewritten to qualified form.
	c := g.Query.Select[0].Expr.(*expr.Column)
	if c.Qualifier != "fact" {
		t.Errorf("select column qualifier = %q", c.Qualifier)
	}
}

func TestAnalyzeSelfJoinAliases(t *testing.T) {
	g := analyze(t, `SELECT d1.a_attr FROM dim_a d1, dim_a d2, fact
		WHERE fact.fk_a = d1.a_key AND fact.fk_b = d2.a_key`)
	if len(g.Joins) != 2 {
		t.Fatalf("self-join edges = %d", len(g.Joins))
	}
	if _, ok := g.JoinFor("d1", "fact"); !ok {
		t.Error("missing d1⋈fact")
	}
	if _, ok := g.JoinFor("d2", "fact"); !ok {
		t.Error("missing d2⋈fact")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"SELECT x.y FROM unknown_ds", "unknown dataset"},
		{"SELECT fact.measure FROM fact, fact", "duplicate alias"},
		{"SELECT nope.measure FROM fact WHERE nope.z = 1", "unknown alias"},
		{"SELECT fact.nocol FROM fact", "no column"},
		{"SELECT cust FROM sales, rets WHERE sales.cust = rets.cust", "ambiguous"},
		{"SELECT ghost FROM fact", "not found"},
		{"SELECT fact.measure FROM fact, dim_a", "no join predicates"},
		{"SELECT fact.measure FROM fact, dim_a, dim_b WHERE fact.fk_a = dim_a.a_key", "disconnected"},
		{"SELECT fact.measure FROM fact, dim_a WHERE fact.fk_a < dim_a.a_key", "unsupported"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = Analyze(q, testResolver())
		if err == nil {
			t.Errorf("Analyze(%q) succeeded, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Analyze(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestAnalyzeNonEquiCrossPredicateRejected(t *testing.T) {
	q := mustParse(t, `SELECT fact.measure FROM fact, dim_a
		WHERE fact.fk_a = dim_a.a_key AND fact.measure < dim_a.a_attr + 1`)
	_, err := Analyze(q, testResolver())
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeConstantPredicateAttached(t *testing.T) {
	g := analyze(t, `SELECT fact.measure FROM fact WHERE 1 = 1`)
	if len(g.Locals["fact"]) != 1 {
		t.Errorf("constant predicate not attached: %v", g.Locals)
	}
}

func TestNeededColumns(t *testing.T) {
	g := analyze(t, `SELECT fact.measure FROM fact, dim_a, dim_b
		WHERE fact.fk_a = dim_a.a_key AND fact.fk_b = dim_b.b_key AND dim_a.a_attr = 3
		ORDER BY fact.fk_c`)
	need := g.NeededColumns()
	f := need["fact"]
	for _, col := range []string{"measure", "fk_a", "fk_b", "fk_c"} {
		if !f[col] {
			t.Errorf("fact needs %s", col)
		}
	}
	if !need["dim_a"]["a_key"] || !need["dim_a"]["a_attr"] {
		t.Errorf("dim_a needs = %v", need["dim_a"])
	}
	if need["dim_b"]["b_attr"] {
		t.Error("dim_b.b_attr should not be needed")
	}
}

func TestNeededColumnsSelectStar(t *testing.T) {
	g := analyze(t, `SELECT * FROM fact, dim_a WHERE fact.fk_a = dim_a.a_key`)
	need := g.NeededColumns()
	if len(need) != 0 {
		t.Errorf("SelectStar needs = %v, want empty sentinel", need)
	}
}

func TestGraphString(t *testing.T) {
	g := analyze(t, `SELECT fact.measure FROM fact, dim_a
		WHERE fact.fk_a = dim_a.a_key AND dim_a.a_attr = 1`)
	s := g.String()
	for _, want := range []string{"fact", "dim_a", "join", "local[dim_a]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains(g.Joins[0].String(), "=") {
		t.Error("edge String() malformed")
	}
}
