package sqlpp

import (
	"strings"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseMinimal(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM a")
	if len(q.Select) != 1 || len(q.From) != 1 || q.Limit != -1 {
		t.Fatalf("bad query: %+v", q)
	}
	c, ok := q.Select[0].Expr.(*expr.Column)
	if !ok || c.Qualifier != "a" || c.Name != "x" {
		t.Errorf("select item = %#v", q.Select[0].Expr)
	}
	if q.From[0].Dataset != "a" || q.From[0].Alias != "a" {
		t.Errorf("from = %+v", q.From[0])
	}
}

func TestParseStar(t *testing.T) {
	q := mustParse(t, "SELECT * FROM t WHERE t.x = 1;")
	if !q.SelectStar {
		t.Error("SelectStar not set")
	}
	if len(q.Where) != 1 {
		t.Errorf("Where = %d conjuncts", len(q.Where))
	}
}

func TestParseAliases(t *testing.T) {
	q := mustParse(t, "SELECT d1.x FROM date_dim d1, date_dim AS d2, store")
	if q.From[0].Alias != "d1" || q.From[0].Dataset != "date_dim" {
		t.Errorf("implicit alias: %+v", q.From[0])
	}
	if q.From[1].Alias != "d2" {
		t.Errorf("AS alias: %+v", q.From[1])
	}
	if q.From[2].Alias != "store" {
		t.Errorf("default alias: %+v", q.From[2])
	}
}

func TestParseWhereConjunctsFlattened(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM a, b
		WHERE a.x = b.y AND a.z = 3 AND b.w BETWEEN 1 AND 5 AND (a.p = 1 OR a.p = 2)`)
	if len(q.Where) != 4 {
		t.Fatalf("conjuncts = %d, want 4", len(q.Where))
	}
	if _, ok := q.Where[2].(*expr.Between); !ok {
		t.Errorf("conjunct 2 = %T", q.Where[2])
	}
	if _, ok := q.Where[3].(*expr.Or); !ok {
		t.Errorf("conjunct 3 = %T", q.Where[3])
	}
}

func TestParseLiteralsAndParams(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM a WHERE a.s = 'str''esc' AND a.f = 1.5
		AND a.b = TRUE AND a.n = NULL AND a.p = $year AND a.d = DATE '1995-01-01' AND a.neg = -7`)
	w := q.Where
	if lit := w[0].(*expr.Compare).R.(*expr.Literal); lit.Val.S != "str'esc" {
		t.Errorf("string literal = %v", lit.Val)
	}
	if lit := w[1].(*expr.Compare).R.(*expr.Literal); lit.Val.F() != 1.5 {
		t.Errorf("float literal = %v", lit.Val)
	}
	if lit := w[2].(*expr.Compare).R.(*expr.Literal); !lit.Val.IsTrue() {
		t.Errorf("bool literal = %v", lit.Val)
	}
	if lit := w[3].(*expr.Compare).R.(*expr.Literal); !lit.Val.IsNull() {
		t.Errorf("null literal = %v", lit.Val)
	}
	if p := w[4].(*expr.Compare).R.(*expr.Param); p.Name != "year" {
		t.Errorf("param = %v", p)
	}
	if lit := w[5].(*expr.Compare).R.(*expr.Literal); lit.Val.S != "1995-01-01" {
		t.Errorf("date literal = %v", lit.Val)
	}
	if lit := w[6].(*expr.Compare).R.(*expr.Literal); lit.Val.I() != -7 {
		t.Errorf("negative literal = %v", lit.Val)
	}
}

func TestParseUDFCalls(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM a WHERE myyear(a.d) = 1998 AND f() = 1 AND g(a.x, 2) = 3")
	c := q.Where[0].(*expr.Compare).L.(*expr.Call)
	if c.Name != "myyear" || len(c.Args) != 1 {
		t.Errorf("call = %+v", c)
	}
	if c0 := q.Where[1].(*expr.Compare).L.(*expr.Call); len(c0.Args) != 0 {
		t.Errorf("zero-arg call = %+v", c0)
	}
	if c2 := q.Where[2].(*expr.Compare).L.(*expr.Call); len(c2.Args) != 2 {
		t.Errorf("two-arg call = %+v", c2)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM a WHERE a.x = 1
		GROUP BY a.x, a.y ORDER BY a.x DESC, a.y ASC, a.z LIMIT 100`)
	if len(q.GroupBy) != 2 {
		t.Errorf("GroupBy = %d", len(q.GroupBy))
	}
	if len(q.OrderBy) != 3 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc || q.OrderBy[2].Desc {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 100 {
		t.Errorf("Limit = %d", q.Limit)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM a WHERE a.x = 1 + 2 * 3")
	cmp := q.Where[0].(*expr.Compare)
	add, ok := cmp.R.(*expr.Arith)
	if !ok || add.Op != expr.ArithAdd {
		t.Fatalf("rhs = %#v", cmp.R)
	}
	mul, ok := add.R.(*expr.Arith)
	if !ok || mul.Op != expr.ArithMul {
		t.Fatalf("mul side = %#v", add.R)
	}
	env := &expr.Env{Schema: types.NewSchema()}
	v, err := cmp.R.Eval(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if v.I() != 7 {
		t.Errorf("1+2*3 = %v", v)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `SELECT a.x -- trailing comment
		FROM a /* block
		comment */ WHERE a.x = 1`)
	if len(q.Where) != 1 {
		t.Errorf("Where = %d", len(q.Where))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT a.x",
		"SELECT a.x FROM",
		"SELECT a.x FROM a WHERE",
		"SELECT a.x FROM a LIMIT x",
		"SELECT a.x FROM a extra_token_dangling pie",
		"SELECT a.x FROM a WHERE a.x = 'unterminated",
		"SELECT a.x FROM a WHERE a.x = $",
		"SELECT a.x FROM a WHERE a.x ! 3",
		"SELECT a.x FROM a WHERE (a.x = 1",
		"SELECT a.x FROM a WHERE a.x BETWEEN 1",
		"SELECT a.x FROM a WHERE a. = 1",
		"SELECT a.x FROM a WHERE f(a.x = 1",
		"SELECT a.x FROM a WHERE a.x = DATE 42",
		"SELECT a.x AS FROM a",
		"SELECT a.x FROM a AS",
		"SELECT a.x FROM a GROUP x",
		"SELECT a.x FROM a ORDER x",
		"SELECT a.x FROM a WHERE a.x = 1 %",
		"SELECT a.x FROM a /* unterminated",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a.x\nFROM a WHERE ???")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a.x FROM a WHERE a.x = 1",
		"SELECT a.x AS out, b.y FROM a, b AS bee WHERE a.k = bee.k AND a.z BETWEEN 1 AND 5",
		"SELECT * FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a ORDER BY t1.a DESC LIMIT 10",
		"SELECT a.x FROM a WHERE myyear(a.d) = $y AND NOT (a.z = 2) AND (a.p = 1 OR a.q = 2)",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		emitted := q1.SQL()
		q2, err := Parse(emitted)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nemitted: %s", src, err, emitted)
			continue
		}
		if q2.SQL() != emitted {
			t.Errorf("SQL not a fixed point:\nfirst:  %s\nsecond: %s", emitted, q2.SQL())
		}
	}
}

func TestQueryClone(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM a, b WHERE a.x = b.y AND a.z = 1")
	c := q.Clone()
	c.From = c.From[:1]
	c.Where = c.Where[:1]
	if len(q.From) != 2 || len(q.Where) != 2 {
		t.Error("Clone aliased slices")
	}
}

func TestAliasOf(t *testing.T) {
	q := mustParse(t, "SELECT a.x FROM t AS a")
	if ref, ok := q.AliasOf("a"); !ok || ref.Dataset != "t" {
		t.Errorf("AliasOf(a) = %+v, %v", ref, ok)
	}
	if _, ok := q.AliasOf("nope"); ok {
		t.Error("AliasOf(nope) = true")
	}
}
