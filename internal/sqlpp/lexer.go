// Package sqlpp implements the SQL++ subset the workload queries need: a
// lexer, a recursive-descent parser producing a query AST, semantic analysis
// into a join graph (the Planner's input), and query reconstruction — the
// §5.4 machinery that replaces an executed join's datasets with the
// materialized intermediate and re-emits SQL text for the next iteration of
// the dynamic optimization loop (Figure 2's feedback edge).
package sqlpp

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam // $name
	tokOp    // punctuation and operators
)

// token is one lexical token with its source position (1-based line/col).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	case tokParam:
		return "$" + t.text
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "GROUP": true, "BY": true, "ORDER": true,
	"LIMIT": true, "AS": true, "ASC": true, "DESC": true, "TRUE": true,
	"FALSE": true, "NULL": true, "DATE": true,
}

// ParseError reports a syntax or semantic problem with source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sqlpp: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, error) {
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &ParseError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	startLine, startCol := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, line: startLine, col: startCol}, nil
		}
		return token{kind: tokIdent, text: text, line: startLine, col: startCol}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		seenDot := false
		for l.pos < len(l.src) {
			b := l.peekByte()
			if b == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				seenDot = true
				l.advance()
				continue
			}
			if b < '0' || b > '9' {
				break
			}
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	case c == '\'' || c == '"':
		quote := c
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, &ParseError{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
			}
			ch := l.advance()
			if ch == quote {
				if l.peekByte() == quote { // doubled quote escape
					b.WriteByte(l.advance())
					continue
				}
				break
			}
			b.WriteByte(ch)
		}
		return token{kind: tokString, text: b.String(), line: startLine, col: startCol}, nil
	case c == '$':
		l.advance()
		if !isIdentStart(l.peekByte()) {
			return token{}, &ParseError{Line: startLine, Col: startCol, Msg: "expected parameter name after $"}
		}
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokParam, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	default:
		l.advance()
		text := string(c)
		two := func(second byte, combined string) bool {
			if l.peekByte() == second {
				l.advance()
				text = combined
				return true
			}
			return false
		}
		switch c {
		case '<':
			if !two('=', "<=") {
				two('>', "!=")
			}
		case '>':
			two('=', ">=")
		case '!':
			if !two('=', "!=") {
				return token{}, &ParseError{Line: startLine, Col: startCol, Msg: "unexpected character '!'"}
			}
		case '=', ',', '.', '(', ')', '+', '-', '*', '/', ';':
			// single-char tokens
		default:
			return token{}, &ParseError{Line: startLine, Col: startCol, Msg: fmt.Sprintf("unexpected character %q", string(c))}
		}
		return token{kind: tokOp, text: text, line: startLine, col: startCol}, nil
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
