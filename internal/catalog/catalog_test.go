package catalog

import (
	"strings"
	"testing"

	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

func buildDS(t *testing.T, name string, temp bool) (*storage.Dataset, *stats.DatasetStats) {
	t.Helper()
	sch := types.NewSchema(types.Field{Name: "x", Kind: types.KindInt})
	rows := []types.Tuple{{types.Int(1)}, {types.Int(2)}}
	ds, st, err := storage.Build(name, sch, []string{"x"}, rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds.Temp = temp
	return ds, st
}

func TestRegisterGetDrop(t *testing.T) {
	c := New()
	ds, st := buildDS(t, "orders", false)
	if err := c.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("orders")
	if !ok || got.Name != "orders" {
		t.Error("Get failed")
	}
	if c.Stats().Get("orders") == nil {
		t.Error("stats not registered")
	}
	c.Drop("orders")
	if _, ok := c.Get("orders"); ok {
		t.Error("Drop did not remove dataset")
	}
	if c.Stats().Get("orders") != nil {
		t.Error("Drop did not remove stats")
	}
}

func TestRegisterNilErrors(t *testing.T) {
	c := New()
	if err := c.Register(nil, nil); err == nil {
		t.Error("nil dataset registered")
	}
	if err := c.Register(&storage.Dataset{}, nil); err == nil {
		t.Error("unnamed dataset registered")
	}
}

func TestNames(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha"} {
		ds, st := buildDS(t, n, false)
		if err := c.Register(ds, st); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestNextTempNameUnique(t *testing.T) {
	c := New()
	a := c.NextTempName("tmp")
	b := c.NextTempName("tmp")
	if a == b {
		t.Errorf("temp names collide: %s", a)
	}
	if !strings.HasPrefix(a, "tmp_") {
		t.Errorf("temp name %q lacks prefix", a)
	}
}

func TestResolver(t *testing.T) {
	c := New()
	ds, st := buildDS(t, "t1", false)
	if err := c.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	r := c.Resolver()
	sch, ok := r("t1")
	if !ok || sch.Len() != 1 {
		t.Error("Resolver failed for known dataset")
	}
	if _, ok := r("nope"); ok {
		t.Error("Resolver found unknown dataset")
	}
}

func TestDropTemps(t *testing.T) {
	c := New()
	base, st1 := buildDS(t, "base", false)
	tmp1, st2 := buildDS(t, "tmp_1", true)
	tmp2, st3 := buildDS(t, "tmp_2", true)
	for _, pair := range []struct {
		ds *storage.Dataset
		st *stats.DatasetStats
	}{{base, st1}, {tmp1, st2}, {tmp2, st3}} {
		if err := c.Register(pair.ds, pair.st); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.DropTemps(); n != 2 {
		t.Errorf("DropTemps = %d", n)
	}
	if _, ok := c.Get("base"); !ok {
		t.Error("DropTemps removed base dataset")
	}
	if _, ok := c.Get("tmp_1"); ok {
		t.Error("DropTemps left temp dataset")
	}
	if c.Stats().Get("tmp_2") != nil {
		t.Error("DropTemps left temp stats")
	}
}

func TestDropPrefix(t *testing.T) {
	c := New()
	base, st1 := buildDS(t, "tmp_lookalike", false) // base dataset with a temp-looking name
	q1a, st2 := buildDS(t, "tmp_q1_pred_a_1", true)
	q1b, st3 := buildDS(t, "tmp_q1_ij1_2", true)
	q2, st4 := buildDS(t, "tmp_q2_pred_a_3", true)
	for _, pair := range []struct {
		ds *storage.Dataset
		st *stats.DatasetStats
	}{{base, st1}, {q1a, st2}, {q1b, st3}, {q2, st4}} {
		if err := c.Register(pair.ds, pair.st); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.DropPrefix("tmp_q1_"); n != 2 {
		t.Errorf("DropPrefix = %d, want 2", n)
	}
	if _, ok := c.Get("tmp_q2_pred_a_3"); !ok {
		t.Error("DropPrefix removed another query's temp")
	}
	if _, ok := c.Get("tmp_q1_pred_a_1"); ok {
		t.Error("DropPrefix left a scoped temp")
	}
	if c.Stats().Get("tmp_q1_ij1_2") != nil {
		t.Error("DropPrefix left scoped temp stats")
	}
	// Base datasets are never swept, whatever their name.
	if n := c.DropPrefix("tmp_"); n != 1 {
		t.Errorf("DropPrefix(tmp_) = %d, want only q2's temp", n)
	}
	if _, ok := c.Get("tmp_lookalike"); !ok {
		t.Error("DropPrefix removed a base dataset")
	}
}

// TestBaseHook: the base-change hook fires for non-temp register/replace,
// non-temp drop, and index builds — never for temp churn.
func TestBaseHook(t *testing.T) {
	c := New()
	var events []string
	c.SetBaseHook(func(name string) { events = append(events, name) })

	base, bst := buildDS(t, "base", false)
	if err := c.Register(base, bst); err != nil {
		t.Fatal(err)
	}
	tmp, tst := buildDS(t, "tmp_q1_x", true)
	if err := c.Register(tmp, tst); err != nil {
		t.Fatal(err)
	}
	c.Drop("tmp_q1_x")
	tmp2, tst2 := buildDS(t, "tmp_q2_y", true)
	if err := c.Register(tmp2, tst2); err != nil {
		t.Fatal(err)
	}
	c.DropPrefix("tmp_q2_")
	c.NoteIndexBuilt("base")
	base2, bst2 := buildDS(t, "base", false)
	if err := c.Register(base2, bst2); err != nil { // replace
		t.Fatal(err)
	}
	c.Drop("base")
	c.Drop("never-existed")

	want := []string{"base", "base", "base", "base"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}
