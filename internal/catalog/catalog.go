// Package catalog is the metadata hub: named datasets (base and temp), their
// statistics, and schema resolution for the parser/analyzer. It is the
// single place the dynamic optimization loop registers materialized
// intermediates so reconstructed queries re-analyze cleanly.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Catalog holds datasets and their statistics.
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]*storage.Dataset
	registry *stats.Registry
	tempSeq  int
}

// New returns an empty catalog with a fresh statistics registry.
func New() *Catalog {
	return &Catalog{
		datasets: map[string]*storage.Dataset{},
		registry: stats.NewRegistry(),
	}
}

// Register installs a dataset and its statistics. Re-registering a name
// replaces both.
func (c *Catalog) Register(ds *storage.Dataset, st *stats.DatasetStats) error {
	if ds == nil || ds.Name == "" {
		return fmt.Errorf("catalog: dataset must be named")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.datasets[ds.Name] = ds
	if st != nil {
		c.registry.Put(st)
	}
	return nil
}

// Get returns a dataset by name.
func (c *Catalog) Get(name string) (*storage.Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	return ds, ok
}

// Stats returns the statistics registry.
func (c *Catalog) Stats() *stats.Registry { return c.registry }

// Drop removes a dataset and its statistics (temp cleanup after a query).
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.datasets, name)
	c.registry.Drop(name)
}

// Names returns all dataset names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for n := range c.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NextTempName mints a unique name for a materialized intermediate.
func (c *Catalog) NextTempName(prefix string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tempSeq++
	return fmt.Sprintf("%s_%d", prefix, c.tempSeq)
}

// Resolver adapts the catalog for sqlpp.Analyze.
func (c *Catalog) Resolver() sqlpp.SchemaResolver {
	return func(name string) (*types.Schema, bool) {
		ds, ok := c.Get(name)
		if !ok {
			return nil, false
		}
		return ds.Schema, true
	}
}

// CloneBases returns a new catalog holding only the base (non-temp)
// datasets and their statistics, sharing the underlying storage. Shadow
// optimizer runs use it so their temps and stats never leak into the live
// catalog.
func (c *Catalog) CloneBases() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for name, ds := range c.datasets {
		if ds.Temp {
			continue
		}
		out.datasets[name] = ds
		if st := c.registry.Get(name); st != nil {
			out.registry.Put(st)
		}
	}
	return out
}

// DropPrefix removes every temp dataset whose name starts with prefix (the
// serving layer's per-query namespace backstop: whatever a failed or
// panicked query left behind is swept by its unique prefix) and returns how
// many were dropped. Base datasets are never touched.
func (c *Catalog) DropPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for name, ds := range c.datasets {
		if ds.Temp && strings.HasPrefix(name, prefix) {
			delete(c.datasets, name)
			c.registry.Drop(name)
			n++
		}
	}
	return n
}

// DropTemps removes every temp dataset (end-of-query cleanup) and returns
// how many were dropped.
func (c *Catalog) DropTemps() int { return c.DropPrefix("") }
