// Package catalog is the metadata hub: named datasets (base and temp), their
// statistics, and schema resolution for the parser/analyzer. It is the
// single place the dynamic optimization loop registers materialized
// intermediates so reconstructed queries re-analyze cleanly.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Catalog holds datasets and their statistics.
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]*storage.Dataset
	registry *stats.Registry
	tempSeq  int
	// baseHook, when set, is invoked (outside the catalog lock) with the
	// dataset name whenever base metadata changes: a non-temp dataset is
	// registered or replaced, dropped, or gains a secondary index. The
	// serving layer points it at the plan memo's invalidation path; temp
	// (per-query intermediate) churn never fires it.
	baseHook func(name string)
}

// New returns an empty catalog with a fresh statistics registry.
func New() *Catalog {
	return &Catalog{
		datasets: map[string]*storage.Dataset{},
		registry: stats.NewRegistry(),
	}
}

// SetBaseHook installs the base-metadata change listener (at most one;
// installed before serving starts).
func (c *Catalog) SetBaseHook(fn func(name string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.baseHook = fn
}

// notifyBase fires the base hook for a changed dataset. Callers must NOT
// hold c.mu (the hook takes the memo's lock).
func (c *Catalog) notifyBase(name string) {
	c.mu.RLock()
	fn := c.baseHook
	c.mu.RUnlock()
	if fn != nil {
		fn(name)
	}
}

// Register installs a dataset and its statistics. Re-registering a name
// replaces both. Registering a base (non-temp) dataset fires the base hook:
// a replaced dataset invalidates every memoized plan shape that references
// it.
func (c *Catalog) Register(ds *storage.Dataset, st *stats.DatasetStats) error {
	if ds == nil || ds.Name == "" {
		return fmt.Errorf("catalog: dataset must be named")
	}
	c.mu.Lock()
	c.datasets[ds.Name] = ds
	if st != nil {
		c.registry.Put(st)
	}
	c.mu.Unlock()
	if !ds.Temp {
		c.notifyBase(ds.Name)
	}
	return nil
}

// NoteIndexBuilt fires the base hook for a dataset that gained a secondary
// index: memoized plans chosen without the index are no longer the
// converged choice.
func (c *Catalog) NoteIndexBuilt(name string) { c.notifyBase(name) }

// Get returns a dataset by name.
func (c *Catalog) Get(name string) (*storage.Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	return ds, ok
}

// Stats returns the statistics registry.
func (c *Catalog) Stats() *stats.Registry { return c.registry }

// Drop removes a dataset and its statistics (temp cleanup after a query, or
// a base drop — the latter fires the base hook).
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	ds := c.datasets[name]
	delete(c.datasets, name)
	c.registry.Drop(name)
	c.mu.Unlock()
	if ds != nil && !ds.Temp {
		c.notifyBase(name)
	}
}

// Names returns all dataset names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for n := range c.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BaseNames returns the sorted names of non-temp datasets only — the stable
// catalog surface a client sees. Per-query temp intermediates come and go
// with query execution; exposing them from Datasets() made the listing
// flicker under concurrent queries (and leak names of half-done stages).
func (c *Catalog) BaseNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for n, ds := range c.datasets {
		if !ds.Temp {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TempPrefix returns the temp-relation name prefix for a query scope. The
// temp namespace literal is owned by the catalog — DropPrefix(TempPrefix(scope))
// sweeps exactly one query's intermediates — and the tempname analyzer keeps
// the raw prefix from being spelled anywhere else.
func TempPrefix(scope string) string { return "tmp_" + scope }

// NextTempName mints a unique name for a materialized intermediate.
func (c *Catalog) NextTempName(prefix string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tempSeq++
	return fmt.Sprintf("%s_%d", prefix, c.tempSeq)
}

// Resolver adapts the catalog for sqlpp.Analyze.
func (c *Catalog) Resolver() sqlpp.SchemaResolver {
	return func(name string) (*types.Schema, bool) {
		ds, ok := c.Get(name)
		if !ok {
			return nil, false
		}
		return ds.Schema, true
	}
}

// CloneBases returns a new catalog holding only the base (non-temp)
// datasets and their statistics, sharing the underlying storage. Shadow
// optimizer runs use it so their temps and stats never leak into the live
// catalog.
func (c *Catalog) CloneBases() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for name, ds := range c.datasets {
		if ds.Temp {
			continue
		}
		out.datasets[name] = ds
		if st := c.registry.Get(name); st != nil {
			out.registry.Put(st)
		}
	}
	return out
}

// DropPrefix removes every temp dataset whose name starts with prefix (the
// serving layer's per-query namespace backstop: whatever a failed or
// panicked query left behind is swept by its unique prefix) and returns how
// many were dropped. Base datasets are never touched.
func (c *Catalog) DropPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for name, ds := range c.datasets {
		if ds.Temp && strings.HasPrefix(name, prefix) {
			delete(c.datasets, name)
			c.registry.Drop(name)
			n++
		}
	}
	return n
}

// DropTemps removes every temp dataset (end-of-query cleanup) and returns
// how many were dropped.
func (c *Catalog) DropTemps() int { return c.DropPrefix("") }
