package optimizer

import (
	"dynopt/internal/core"
	"dynopt/internal/engine"
)

// IngresLike is the original INGRES decomposition baseline (§7.2): every
// dataset with local predicates is executed as a single-variable query and
// materialized (like the dynamic approach), but the choice of the next join
// is based only on raw dataset cardinalities — no sketches, no formula (1) —
// which is what produces its less efficient bushy trees.
type IngresLike struct {
	Cfg core.AlgoConfig
}

// NewIngresLike returns the baseline with default algorithm config.
func NewIngresLike() *IngresLike { return &IngresLike{Cfg: core.DefaultAlgoConfig()} }

// Name implements core.Strategy.
func (s *IngresLike) Name() string { return "ingres-like" }

// Run implements core.Strategy.
func (s *IngresLike) Run(ctx *engine.Context, sql string) (*engine.Result, *core.Report, error) {
	d := &core.Dynamic{
		Cfg: core.Config{
			Algo:            s.Cfg,
			PushDown:        true,
			PushDownAll:     true, // full INGRES decomposition
			ReoptLoop:       true,
			OnlineStats:     false, // cardinalities only
			CardinalityOnly: true,
		},
		Label: s.Name(),
	}
	return d.Run(ctx, sql)
}
