// Package optimizer implements the five comparison strategies of §7.2,
// built on the planning machinery in internal/core:
//
//   - CostBased: traditional static cost-based optimization — the complete
//     plan is formed upfront from ingestion-time statistics with
//     independence assumptions and Selinger defaults for complex predicates,
//     then executed as one pipelined job.
//   - BestOrder: the user writes the query in the optimal order with
//     broadcast hints; realized as a shadow dynamic run (unmetered, on a
//     cloned catalog) whose final plan is executed pipelined with no
//     re-optimization overhead.
//   - WorstOrder: a right-deep tree scheduling joins in decreasing result
//     size, hash joins only — AsterixDB's default behaviour under the worst
//     possible FROM-clause order.
//   - PilotRun: the sampling approach of [23] — LIMIT-k pilot queries over
//     each input estimate the initial statistics, the first join may be
//     chosen badly, later stages adapt from online feedback.
//   - IngresLike: the original INGRES decomposition — every filtered
//     dataset is executed as a single-variable query and the next join is
//     chosen by raw cardinalities only.
package optimizer

import (
	"fmt"

	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
)

// CostBased is the traditional static cost-based baseline.
type CostBased struct {
	Cfg core.AlgoConfig
}

// NewCostBased returns the baseline with default algorithm config.
func NewCostBased() *CostBased { return &CostBased{Cfg: core.DefaultAlgoConfig()} }

// Name implements core.Strategy.
func (s *CostBased) Name() string { return "cost-based" }

// Run implements core.Strategy.
func (s *CostBased) Run(ctx *engine.Context, sql string) (*engine.Result, *core.Report, error) {
	return core.Metered(ctx, s.Name(), sql, func(r *core.Report) (*engine.Result, error) {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			return nil, err
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			return nil, err
		}
		est := &core.Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
		tables, err := core.BuildTables(est, g, g.NeededColumns(), q.SelectStar)
		if err != nil {
			return nil, err
		}
		cfg := s.Cfg
		if ctx.Spill != nil && cfg.SpillBudgetBytes == 0 {
			// Real-spill execution: plan broadcasts against the memory
			// budget the engine will enforce.
			cfg.SpillBudgetBytes = ctx.Cluster.MemoryPerNodeBytes()
		}
		tree, err := core.PlanFull(est, g, tables, cfg)
		if err != nil {
			return nil, err
		}
		plan.AnnotateProjections(tree, core.RequiredOutputColumns(g))
		r.Tree = tree
		r.StagePlans = append(r.StagePlans, "static plan: "+tree.Compact())
		rel, err := engine.Execute(ctx, tree)
		if err != nil {
			return nil, err
		}
		return engine.Finish(ctx, q, rel)
	})
}

// BestOrder executes the optimal plan (as the dynamic approach would find
// it) in a single pipelined job: the user-supplied perfect FROM order plus
// broadcast hints of §7.2. The shadow dynamic run that discovers the plan is
// performed on a cloned catalog with a scratch cluster so none of its work
// is metered against this strategy.
type BestOrder struct {
	Cfg core.Config
}

// NewBestOrder returns the baseline with the full dynamic config for its
// shadow run.
func NewBestOrder() *BestOrder { return &BestOrder{Cfg: core.DefaultConfig()} }

// Name implements core.Strategy.
func (s *BestOrder) Name() string { return "best-order" }

// Run implements core.Strategy.
func (s *BestOrder) Run(ctx *engine.Context, sql string) (*engine.Result, *core.Report, error) {
	cfg := s.Cfg
	if ctx.Spill != nil && cfg.Algo.SpillBudgetBytes == 0 {
		// The shadow run plans on a scratch context with no spill manager;
		// hand it the budget explicitly so the plan the Oracle executes
		// matches the real-spill engine's broadcast rule.
		cfg.Algo.SpillBudgetBytes = ctx.Cluster.MemoryPerNodeBytes()
	}
	tree, err := shadowDynamicPlan(ctx, sql, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("optimizer: best-order shadow run: %w", err)
	}
	o := &core.Oracle{Label: s.Name(), Tree: tree}
	return o.Run(ctx, sql)
}

// shadowDynamicPlan runs the dynamic strategy on an unmetered scratch
// context and returns its assembled plan tree (over base datasets).
func shadowDynamicPlan(ctx *engine.Context, sql string, cfg core.Config) (*plan.Node, error) {
	scratch := &engine.Context{
		Cluster:   cluster.New(ctx.Cluster.Nodes()),
		Catalog:   ctx.Catalog.CloneBases(),
		UDFs:      ctx.UDFs,
		Params:    ctx.Params,
		ChunkRows: ctx.ChunkRows,
		NoVec:     ctx.NoVec,
	}
	d := &core.Dynamic{Cfg: cfg}
	_, rep, err := d.Run(scratch, sql)
	if err != nil {
		return nil, err
	}
	if rep.Tree == nil {
		return nil, fmt.Errorf("shadow run produced no plan tree")
	}
	return rep.Tree, nil
}
