package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// testWorkload mirrors core's mini star schema: correlated predicates on
// dim_a, UDF on dim_b, unfiltered dim_c.
func testWorkload(t *testing.T, nodes int) *engine.Context {
	t.Helper()
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	mk := func(name string, pk []string, fields []types.Field, rows []types.Tuple) {
		ds, st, err := storage.Build(name, &types.Schema{Fields: fields}, pk, rows, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.Catalog.Register(ds, st); err != nil {
			t.Fatal(err)
		}
	}
	intF := func(n string) types.Field { return types.Field{Name: n, Kind: types.KindInt} }
	strF := func(n string) types.Field { return types.Field{Name: n, Kind: types.KindString} }

	factRows := make([]types.Tuple, 5000)
	for i := range factRows {
		factRows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 500)), types.Int(int64(i % 200)),
			types.Int(int64(i % 1000)), types.Int(int64(i)),
		}
	}
	mk("fact", []string{"f_id"},
		[]types.Field{intF("f_id"), intF("fk_a"), intF("fk_b"), intF("fk_c"), intF("m")}, factRows)

	dimARows := make([]types.Tuple, 500)
	for i := range dimARows {
		dimARows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 10)), types.Int(int64(i % 10)),
			types.Str(strings.Repeat("a", 20)),
		}
	}
	mk("dim_a", []string{"a_id"},
		[]types.Field{intF("a_id"), intF("a_v"), intF("a_w"), strF("a_pad")}, dimARows)

	dimBRows := make([]types.Tuple, 200)
	for i := range dimBRows {
		dimBRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("19%d-01-01", 90+i%5)),
			types.Str(strings.Repeat("b", 20)),
		}
	}
	mk("dim_b", []string{"b_id"},
		[]types.Field{intF("b_id"), strF("b_date"), strF("b_pad")}, dimBRows)

	dimCRows := make([]types.Tuple, 1000)
	for i := range dimCRows {
		dimCRows[i] = types.Tuple{
			types.Int(int64(i)), types.Int(int64(i % 7)), types.Str(strings.Repeat("c", 20)),
		}
	}
	mk("dim_c", []string{"c_id"},
		[]types.Field{intF("c_id"), intF("c_v"), strF("c_pad")}, dimCRows)
	return ctx
}

const testQuery = `SELECT fact.m FROM fact, dim_a, dim_b, dim_c
WHERE fact.fk_a = dim_a.a_id AND fact.fk_b = dim_b.b_id AND fact.fk_c = dim_c.c_id
  AND dim_a.a_v = 3 AND dim_a.a_w = 3
  AND myyear(dim_b.b_date) = 1993`

func expectedRows() []int64 {
	var out []int64
	for i := 0; i < 5000; i++ {
		if (i%500)%10 == 3 && (i%200)%5 == 3 {
			out = append(out, int64(i))
		}
	}
	return out
}

func resultInts(res *engine.Result) []int64 {
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I())
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func sameInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allStrategies returns every strategy under test, dynamic included.
func allStrategies() []core.Strategy {
	return []core.Strategy{
		core.NewDynamic(),
		NewCostBased(),
		NewBestOrder(),
		NewWorstOrder(),
		NewPilotRun(),
		NewIngresLike(),
	}
}

// Every strategy must return the same result — they differ only in cost.
func TestAllStrategiesSameResult(t *testing.T) {
	want := expectedRows()
	for _, s := range allStrategies() {
		t.Run(s.Name(), func(t *testing.T) {
			ctx := testWorkload(t, 4)
			res, rep, err := s.Run(ctx, testQuery)
			if err != nil {
				t.Fatalf("%s: %v\n%v", s.Name(), err, rep)
			}
			if got := resultInts(res); !sameInts(got, want) {
				t.Errorf("%s: %d rows, want %d", s.Name(), len(got), len(want))
			}
			if rep.Strategy != s.Name() {
				t.Errorf("report strategy = %q", rep.Strategy)
			}
			if rep.SimSeconds <= 0 {
				t.Errorf("%s: no simulated time", s.Name())
			}
		})
	}
}

func TestWorstOrderIsWorst(t *testing.T) {
	// Two cost views of the same metered counters: zero-latency (pure data
	// movement and CPU — where bad join orders hurt) and the full model
	// (including per-reopt coordinator latency — where the dynamic
	// approach's overhead vs best-order shows). At this toy scale the fixed
	// latencies would otherwise drown the data costs entirely.
	zero := cluster.DefaultCostModel()
	zero.ReoptLatencySec = 0
	full := cluster.DefaultCostModel()

	simZero := map[string]float64{}
	simFull := map[string]float64{}
	for _, s := range allStrategies() {
		ctx := testWorkload(t, 4)
		_, rep, err := s.Run(ctx, testQuery)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		simZero[s.Name()] = zero.SimSeconds(rep.Counters, ctx.Cluster.Nodes())
		simFull[s.Name()] = full.SimSeconds(rep.Counters, ctx.Cluster.Nodes())
	}
	for name, sim := range simZero {
		if name == "worst-order" {
			continue
		}
		if simZero["worst-order"] < sim {
			t.Errorf("worst-order (%.4fs) beat %s (%.4fs) on data movement", simZero["worst-order"], name, sim)
		}
	}
	// Best-order must win once the re-optimization latency is priced in —
	// the Figure 7 relationship (dynamic ≈ best-order × 1.05–1.2).
	if simFull["best-order"] > simFull["dynamic"] {
		t.Errorf("best-order (%.4fs) slower than dynamic (%.4fs) under the full model",
			simFull["best-order"], simFull["dynamic"])
	}
}

func TestCostBasedMisestimatesCorrelatedPredicates(t *testing.T) {
	// Cost-based sees ~5 rows for dim_a (independence) where dynamic
	// measures 50; both still complete and agree on results, but their
	// plans may differ. This asserts the estimate gap is visible in the
	// plan report (the dim_a leaf estimate).
	ctx := testWorkload(t, 4)
	cb := NewCostBased()
	_, rep, err := cb.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tree == nil {
		t.Fatal("no plan tree")
	}
	if rep.Counters.ReoptPoints != 0 {
		t.Errorf("static strategy crossed %d reopt points", rep.Counters.ReoptPoints)
	}
	if rep.Counters.MatWriteBytes != 0 {
		t.Errorf("static strategy materialized %d bytes", rep.Counters.MatWriteBytes)
	}
}

func TestBestOrderNoReoptOverhead(t *testing.T) {
	ctx := testWorkload(t, 4)
	bo := NewBestOrder()
	_, rep, err := bo.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.ReoptPoints != 0 {
		t.Errorf("best-order crossed %d reopt points", rep.Counters.ReoptPoints)
	}
	if rep.Counters.MatWriteBytes != 0 {
		t.Errorf("best-order materialized %d bytes", rep.Counters.MatWriteBytes)
	}
	// Its plan is the dynamic plan: same compact shape modulo estimates.
	ctx2 := testWorkload(t, 4)
	_, drep, err := core.NewDynamic().Run(ctx2, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compact() != drep.Compact() {
		t.Errorf("best-order plan %s != dynamic plan %s", rep.Compact(), drep.Compact())
	}
	// Shadow run must not leak temps into the live catalog.
	for _, name := range ctx.Catalog.Names() {
		if strings.HasPrefix(name, "tmp_") {
			t.Errorf("leaked temp %s", name)
		}
	}
}

func TestWorstOrderShape(t *testing.T) {
	ctx := testWorkload(t, 4)
	wo := NewWorstOrder()
	_, rep, err := wo.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tree == nil {
		t.Fatal("no plan tree")
	}
	// Right-deep, hash-only: no broadcasts, no bushiness.
	compact := rep.Compact()
	if strings.Contains(compact, "⋈b") || strings.Contains(compact, "⋈i") {
		t.Errorf("worst-order used non-hash join: %s", compact)
	}
	if rep.Tree.IsBushy() {
		t.Errorf("worst-order produced a bushy tree: %s", compact)
	}
	if rep.Counters.BroadcastBytes != 0 {
		t.Error("worst-order broadcast data")
	}
	// It must shuffle far more than dynamic does.
	ctx2 := testWorkload(t, 4)
	_, drep, err := core.NewDynamic().Run(ctx2, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.ShuffleBytes <= drep.Counters.ShuffleBytes {
		t.Errorf("worst-order shuffled %d <= dynamic %d",
			rep.Counters.ShuffleBytes, drep.Counters.ShuffleBytes)
	}
}

func TestPilotRunSamplingMetered(t *testing.T) {
	ctx := testWorkload(t, 4)
	pr := NewPilotRun()
	_, rep, err := pr.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Pilot scans are part of the strategy's metered work.
	foundPilot := false
	for _, s := range rep.StagePlans {
		if strings.HasPrefix(s, "pilot ") {
			foundPilot = true
		}
	}
	if !foundPilot {
		t.Errorf("no pilot phase recorded: %v", rep.StagePlans)
	}
	if rep.Counters.ScanRows == 0 {
		t.Error("no scan work metered")
	}
}

func TestPilotRunSampleKDefaultsAndExhaustion(t *testing.T) {
	ctx := testWorkload(t, 4)
	pr := &PilotRun{Cfg: core.DefaultConfig(), SampleK: 0} // defaults kick in
	pr.Cfg.PushDown = false
	res, _, err := pr.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(resultInts(res), expectedRows()) {
		t.Error("pilot-run with default K wrong result")
	}
}

func TestIngresLikeDecomposesEverything(t *testing.T) {
	ctx := testWorkload(t, 4)
	il := NewIngresLike()
	_, rep, err := il.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Both filtered dims are decomposed (PushDownAll).
	if rep.PushDowns != 2 {
		t.Errorf("ingres pushdowns = %d, want 2", rep.PushDowns)
	}
	if rep.Counters.StatsObserved != 0 {
		t.Errorf("ingres-like collected %d online stats, want 0", rep.Counters.StatsObserved)
	}
}

func TestStrategiesOnINLJWorkload(t *testing.T) {
	// With indexes and INLJ enabled, dynamic and ingres-like pick ⋈i while
	// static upfront planners may too (their estimate sees base leaves).
	ctx := testWorkload(t, 4)
	ds, _ := ctx.Catalog.Get("fact")
	for _, f := range []string{"fk_a", "fk_b", "fk_c"} {
		if _, err := storage.BuildIndex(ds, f); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Algo.EnableINLJ = true
	d := &core.Dynamic{Cfg: cfg}
	res, rep, err := d.Run(ctx, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(resultInts(res), expectedRows()) {
		t.Error("INLJ run wrong result")
	}
	if !strings.Contains(rep.Compact(), "⋈i") {
		t.Errorf("INLJ not used: %s", rep.Compact())
	}
}
