package optimizer

import (
	"fmt"

	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/types"
)

// DefaultPilotSampleK is the LIMIT applied to each pilot query.
const DefaultPilotSampleK = 500

// PilotRun reproduces the sampling approach of [23]: before planning, each
// base dataset is probed with a select-project pilot query (local predicates
// included) that stops after K output tuples. Statistics derived from the
// samples — sizes extrapolated from the observed selectivity, distinct
// counts scaled linearly — seed the planner; execution then proceeds with
// re-optimization points that adapt from accurate online feedback. The
// sampling cost is metered as part of the strategy's work, and the scaled
// distinct counts misfire on skewed non-PK/FK keys exactly as §7.2 reports.
type PilotRun struct {
	Cfg     core.Config
	SampleK int
}

// NewPilotRun returns the baseline with default configuration.
func NewPilotRun() *PilotRun {
	cfg := core.DefaultConfig()
	// Pilot runs replace the predicate push-down phase: predicates are
	// applied during sampling and inline during execution.
	cfg.PushDown = false
	return &PilotRun{Cfg: cfg, SampleK: DefaultPilotSampleK}
}

// Name implements core.Strategy.
func (s *PilotRun) Name() string { return "pilot-run" }

// Run implements core.Strategy.
func (s *PilotRun) Run(ctx *engine.Context, sql string) (*engine.Result, *core.Report, error) {
	return core.Metered(ctx, s.Name(), sql, func(r *core.Report) (*engine.Result, error) {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			return nil, err
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			return nil, err
		}
		pilotReg, err := s.samplePhase(ctx, g, r)
		if err != nil {
			return nil, err
		}
		// The pilot registry's row counts already reflect local predicates,
		// so the planner must not apply filter selectivities again.
		d := &core.Dynamic{Cfg: s.Cfg, PlannerReg: pilotReg, Label: s.Name(), FiltersPreApplied: true}
		return d.Body(ctx, sql, r)
	})
}

// samplePhase runs the pilot queries and builds the sample-derived registry.
func (s *PilotRun) samplePhase(ctx *engine.Context, g *sqlpp.Graph, r *core.Report) (*stats.Registry, error) {
	k := s.SampleK
	if k <= 0 {
		k = DefaultPilotSampleK
	}
	reg := ctx.Catalog.Stats().Clone()
	acct := ctx.Accounting()
	for _, alias := range g.Aliases {
		ref := g.Tables[alias]
		ds, ok := ctx.Catalog.Get(ref.Dataset)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown dataset %q", ref.Dataset)
		}
		filter := engine.FilterFor(g.Locals[alias])
		qualified := ds.Schema.Requalify(alias)
		var compiled expr.Compiled
		if filter != nil {
			var err error
			compiled, err = expr.Compile(filter, ctx.Env(qualified))
			if err != nil {
				return nil, err
			}
		}

		sample := stats.NewDatasetStats(ref.Dataset)
		var scanned, produced int64
		var scannedBytes int64
		var sampleErr error
		observe := func(t types.Tuple) bool {
			scanned++
			scannedBytes += int64(t.EncodedSize()) //dynopt:size-ok pilot sampling meters exactly the rows it touches; no cache exists for a sample prefix
			if compiled != nil {
				v, err := compiled(t)
				if err != nil {
					sampleErr = err
					return false
				}
				if !v.IsTrue() {
					return true
				}
			}
			produced++
			sample.ObserveTuple(ds.Schema, t, nil)
			// ObserveTuple counted the row already; keep sample's
			// RecordCount equal to produced (it does).
			return produced < int64(k)
		}
	sampling:
		for p := range ds.Parts {
			if pgd := ds.Paged(); pgd != nil {
				// Paged dataset: stream pages in order, touching only the
				// prefix the sample needs.
				if err := pgd.EachRow(p, observe); err != nil {
					return nil, err
				}
			} else {
				for row := range ds.Parts[p] {
					if !observe(ds.Parts[p][row]) {
						break
					}
				}
			}
			if sampleErr != nil {
				return nil, sampleErr
			}
			if produced >= int64(k) {
				break sampling
			}
		}
		acct.ScanRows.Add(scanned)
		acct.ScanBytes.Add(scannedBytes)

		// Extrapolate: estimated qualifying rows.
		total := ds.RowCount()
		var estRows int64
		if produced < int64(k) {
			estRows = produced // dataset exhausted: exact
		} else if scanned > 0 {
			estRows = int64(float64(total) * float64(produced) / float64(scanned))
		}
		if estRows < 1 && produced > 0 {
			estRows = 1
		}
		pilot := stats.NewDatasetStats(ref.Dataset)
		pilot.RecordCount = estRows
		pilot.ByteSize = estRows * sample.AvgRowBytes()
		scale := float64(1)
		if produced > 0 {
			scale = float64(estRows) / float64(produced)
		}
		for fname, fs := range sample.Fields {
			scaled := int64(float64(fs.DistinctCount()) * scale)
			if scaled > estRows {
				scaled = estRows
			}
			if scaled < 1 {
				scaled = 1
			}
			pfs := pilot.Field(fname)
			pfs.Count = estRows
			pfs.DistinctOverride = scaled
			pfs.Quantiles.Merge(fs.Quantiles)
		}
		reg.Put(pilot)
		r.StagePlans = append(r.StagePlans,
			fmt.Sprintf("pilot %s: sampled %d/%d rows → est %d rows", alias, produced, scanned, estRows))
	}
	return reg, nil
}
