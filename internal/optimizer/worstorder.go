package optimizer

import (
	"fmt"

	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
)

// WorstOrder enforces a right-deep plan that schedules joins in decreasing
// order of estimated result size, all hash joins, no broadcasts — the §7.2
// adversarial baseline representing the least gain achievable by writing
// the FROM clause badly against AsterixDB's default behaviour.
type WorstOrder struct{}

// NewWorstOrder returns the baseline.
func NewWorstOrder() *WorstOrder { return &WorstOrder{} }

// Name implements core.Strategy.
func (s *WorstOrder) Name() string { return "worst-order" }

// Run implements core.Strategy.
func (s *WorstOrder) Run(ctx *engine.Context, sql string) (*engine.Result, *core.Report, error) {
	return core.Metered(ctx, s.Name(), sql, func(r *core.Report) (*engine.Result, error) {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			return nil, err
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			return nil, err
		}
		est := &core.Estimator{Cat: ctx.Catalog, Reg: ctx.Catalog.Stats()}
		tables, err := core.BuildTables(est, g, g.NeededColumns(), q.SelectStar)
		if err != nil {
			return nil, err
		}
		tree, err := planWorst(est, g, tables)
		if err != nil {
			return nil, err
		}
		plan.AnnotateProjections(tree, core.RequiredOutputColumns(g))
		r.Tree = tree
		r.StagePlans = append(r.StagePlans, "worst-order plan: "+tree.Compact())
		rel, err := engine.Execute(ctx, tree)
		if err != nil {
			return nil, err
		}
		return engine.Finish(ctx, q, rel)
	})
}

// planWorst builds the decreasing-result-size right-deep hash-join chain.
func planWorst(est *core.Estimator, g *sqlpp.Graph, tables core.Tables) (*plan.Node, error) {
	leaf := func(alias string) *plan.Node {
		info := tables[alias]
		n := plan.NewLeaf(&plan.Leaf{
			Dataset:  info.Dataset,
			Alias:    alias,
			Filter:   info.Filter,
			Project:  info.Project,
			Filtered: info.Filtered,
		})
		n.EstRows = info.EstRows
		return n
	}
	if len(g.Aliases) == 1 {
		return leaf(g.Aliases[0]), nil
	}

	// First join: the edge with the largest estimated result.
	var first *sqlpp.JoinEdge
	var firstCard int64
	for _, e := range g.Joins {
		card, err := est.JoinEstimate(e, tables)
		if err != nil {
			return nil, err
		}
		if first == nil || card > firstCard {
			first, firstCard = e, card
		}
	}
	if first == nil {
		return nil, fmt.Errorf("optimizer: no join edges")
	}

	covered := map[string]bool{first.LeftAlias: true, first.RightAlias: true}
	cur := plan.NewJoin(&plan.Join{
		Left:      leaf(first.LeftAlias),
		Right:     leaf(first.RightAlias),
		LeftKeys:  qualify(first.LeftAlias, first.LeftFields),
		RightKeys: qualify(first.RightAlias, first.RightFields),
		Algo:      plan.AlgoHash,
		BuildLeft: true,
	})
	cur.EstRows = firstCard
	curRows := firstCard

	for len(covered) < len(g.Aliases) {
		// Among edges reaching a new alias, pick the one maximizing the
		// estimated result of joining it with the current intermediate.
		var bestEdge *sqlpp.JoinEdge
		var bestAlias string
		var bestCard int64
		for _, e := range g.Joins {
			var newAlias string
			switch {
			case covered[e.LeftAlias] && !covered[e.RightAlias]:
				newAlias = e.RightAlias
			case covered[e.RightAlias] && !covered[e.LeftAlias]:
				newAlias = e.LeftAlias
			default:
				continue
			}
			info := tables[newAlias]
			// Distinct counts of the edge keys, capped by each side's rows.
			var curKeys, newKeys []string
			if newAlias == e.RightAlias {
				curKeys, newKeys = e.LeftFields, e.RightFields
			} else {
				curKeys, newKeys = e.RightFields, e.LeftFields
			}
			curAlias := e.Other(newAlias)
			cd := make([]int64, len(curKeys))
			for i, f := range curKeys {
				cd[i] = est.FieldDistinct(tables[curAlias].Dataset, f, curRows)
			}
			nd := make([]int64, len(newKeys))
			for i, f := range newKeys {
				nd[i] = est.FieldDistinct(info.Dataset, f, info.EstRows)
			}
			card := stats.JoinCardinality(curRows, info.EstRows,
				stats.CompositeDistinct(curRows, cd),
				stats.CompositeDistinct(info.EstRows, nd))
			if bestEdge == nil || card > bestCard {
				bestEdge, bestAlias, bestCard = e, newAlias, card
			}
		}
		if bestEdge == nil {
			return nil, fmt.Errorf("optimizer: join graph disconnected during worst-order planning")
		}
		var curKeys, newKeys []string
		if bestAlias == bestEdge.RightAlias {
			curKeys = qualify(bestEdge.LeftAlias, bestEdge.LeftFields)
			newKeys = qualify(bestEdge.RightAlias, bestEdge.RightFields)
		} else {
			curKeys = qualify(bestEdge.RightAlias, bestEdge.RightFields)
			newKeys = qualify(bestEdge.LeftAlias, bestEdge.LeftFields)
		}
		next := plan.NewJoin(&plan.Join{
			Left:      leaf(bestAlias),
			Right:     cur,
			LeftKeys:  newKeys,
			RightKeys: curKeys,
			Algo:      plan.AlgoHash,
			BuildLeft: true,
		})
		next.EstRows = bestCard
		cur = next
		curRows = bestCard
		covered[bestAlias] = true
	}
	return cur, nil
}

func qualify(alias string, fields []string) []string {
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = alias + "." + f
	}
	return out
}
