package plan

import (
	"sort"
	"strings"
)

// AnnotateProjections walks a plan tree top-down and installs interior
// projections: after every join, columns that no ancestor needs (result
// columns or upstream join keys) are dropped. required holds the qualified
// ("alias.field") columns the query's output clauses reference; nil leaves
// the tree unannotated (SELECT *).
//
// Without interior pruning a pipelined plan carries every scanned column to
// the root, which inflates its shuffle and broadcast traffic relative to the
// dynamic strategy's stage-by-stage re-projection and would skew the §7
// comparisons in dynamic's favour.
func AnnotateProjections(n *Node, required map[string]bool) {
	if n == nil || required == nil {
		return
	}
	annotate(n, required)
}

func annotate(n *Node, required map[string]bool) {
	if n.Leaf != nil {
		return // leaf projections are set by the planners
	}
	j := n.Join
	keep := make([]string, 0, len(required))
	for col := range required {
		keep = append(keep, col)
	}
	sort.Strings(keep)
	j.Keep = keep

	leftAliases := map[string]bool{}
	for _, a := range j.Left.Aliases() {
		leftAliases[a] = true
	}
	leftReq := map[string]bool{}
	rightReq := map[string]bool{}
	for col := range required {
		if leftAliases[qualifierOf(col)] {
			leftReq[col] = true
		} else {
			rightReq[col] = true
		}
	}
	for _, k := range j.LeftKeys {
		leftReq[k] = true
	}
	for _, k := range j.RightKeys {
		rightReq[k] = true
	}
	annotate(j.Left, leftReq)
	annotate(j.Right, rightReq)
}

func qualifierOf(qualified string) string {
	if i := strings.IndexByte(qualified, '.'); i >= 0 {
		return qualified[:i]
	}
	return ""
}
