// Package plan defines physical join-tree plans: scans with pushed-down
// filters and projections at the leaves, binary joins annotated with the
// physical algorithm (hash ⋈, broadcast ⋈b, indexed nested-loop ⋈i) and the
// build side. Plans are produced by every optimizer strategy and consumed by
// the engine; the pretty-printer emits the compact notation the paper's
// appendix uses, so chosen plans can be compared to Figures 11–23 directly.
package plan

import (
	"fmt"
	"strings"

	"dynopt/internal/expr"
)

// Algo is the physical join algorithm.
type Algo int

// The three join algorithms of §3.
const (
	AlgoHash Algo = iota
	AlgoBroadcast
	AlgoIndexNL
)

// Symbol returns the paper's plan notation for the algorithm.
func (a Algo) Symbol() string {
	switch a {
	case AlgoHash:
		return "⋈"
	case AlgoBroadcast:
		return "⋈b"
	case AlgoIndexNL:
		return "⋈i"
	default:
		return "⋈?"
	}
}

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoHash:
		return "hash"
	case AlgoBroadcast:
		return "broadcast"
	case AlgoIndexNL:
		return "index-nl"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Leaf is a base or temp dataset access with pushed-down filter and
// projection.
type Leaf struct {
	Dataset  string    // catalog name
	Alias    string    // binding alias in the query
	Filter   expr.Expr // conjunction local to this dataset, or nil
	Project  []string  // bare field names to retain; nil keeps all
	Temp     bool      // dataset is a materialized intermediate
	Filtered bool      // paper notation: render alias' when predicates were pre-applied
}

// Join is one binary join.
type Join struct {
	Left, Right *Node
	// Qualified key names ("alias.field"), positionally aligned.
	LeftKeys, RightKeys []string
	Algo                Algo
	// BuildLeft selects the hash build / broadcast / index-probing side.
	// For AlgoIndexNL the build side is the broadcast outer and the other
	// side must be a base-dataset Leaf with an index on its key.
	BuildLeft bool
	// Keep, when non-nil, is the interior projection applied to the join's
	// output: only these qualified columns survive (see
	// AnnotateProjections).
	Keep []string
}

// Node is either a Leaf or a Join.
type Node struct {
	Leaf *Leaf
	Join *Join
	// EstRows/EstBytes are the optimizer's output estimates, carried for
	// explain output and build-side decisions downstream.
	EstRows  int64
	EstBytes int64
}

// NewLeaf wraps a Leaf in a Node.
func NewLeaf(l *Leaf) *Node { return &Node{Leaf: l} }

// NewJoin wraps a Join in a Node.
func NewJoin(j *Join) *Node { return &Node{Join: j} }

// IsLeaf reports whether the node is a scan.
func (n *Node) IsLeaf() bool { return n.Leaf != nil }

// Aliases returns the dataset aliases covered by the subtree, in leaf order.
func (n *Node) Aliases() []string {
	var out []string
	n.visitLeaves(func(l *Leaf) { out = append(out, l.Alias) })
	return out
}

func (n *Node) visitLeaves(fn func(*Leaf)) {
	if n.Leaf != nil {
		fn(n.Leaf)
		return
	}
	if n.Join != nil {
		n.Join.Left.visitLeaves(fn)
		n.Join.Right.visitLeaves(fn)
	}
}

// JoinCount returns the number of join nodes in the subtree.
func (n *Node) JoinCount() int {
	if n.Leaf != nil {
		return 0
	}
	return 1 + n.Join.Left.JoinCount() + n.Join.Right.JoinCount()
}

// Depth returns the height of the subtree (leaf = 1).
func (n *Node) Depth() int {
	if n.Leaf != nil {
		return 1
	}
	l, r := n.Join.Left.Depth(), n.Join.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// IsBushy reports whether any join has two non-leaf inputs — the plan shape
// the paper finds optimal for most workloads.
func (n *Node) IsBushy() bool {
	if n.Leaf != nil {
		return false
	}
	j := n.Join
	if !j.Left.IsLeaf() && !j.Right.IsLeaf() {
		return true
	}
	return j.Left.IsBushy() || j.Right.IsBushy()
}

// Compact renders the paper's appendix notation: filtered leaves carry a
// prime (dd'), joins show their algorithm symbol, build side first.
func (n *Node) Compact() string {
	if n.Leaf != nil {
		name := n.Leaf.Alias
		if n.Leaf.Filtered || n.Leaf.Filter != nil {
			name += "'"
		}
		return name
	}
	j := n.Join
	l, r := j.Left.Compact(), j.Right.Compact()
	return "(" + l + " " + j.Algo.Symbol() + " " + r + ")"
}

// Tree renders an indented multi-line plan for explain output.
func (n *Node) Tree() string {
	var b strings.Builder
	n.tree(&b, 0)
	return b.String()
}

func (n *Node) tree(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Leaf != nil {
		fmt.Fprintf(b, "%sscan %s", indent, n.Leaf.Dataset)
		if n.Leaf.Alias != n.Leaf.Dataset {
			fmt.Fprintf(b, " as %s", n.Leaf.Alias)
		}
		if n.Leaf.Temp {
			b.WriteString(" [temp]")
		}
		if n.Leaf.Filter != nil {
			fmt.Fprintf(b, " filter(%s)", n.Leaf.Filter.SQL())
		}
		if n.EstRows > 0 {
			fmt.Fprintf(b, " ~%d rows", n.EstRows)
		}
		b.WriteString("\n")
		return
	}
	j := n.Join
	build := "right"
	if j.BuildLeft {
		build = "left"
	}
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = j.LeftKeys[i] + "=" + j.RightKeys[i]
	}
	fmt.Fprintf(b, "%s%s join on %s (build=%s)", indent, j.Algo, strings.Join(keys, ","), build)
	if n.EstRows > 0 {
		fmt.Fprintf(b, " ~%d rows", n.EstRows)
	}
	b.WriteString("\n")
	j.Left.tree(b, depth+1)
	j.Right.tree(b, depth+1)
}
