package plan

import (
	"strings"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/types"
)

func leaf(ds, alias string, filtered bool) *Node {
	l := &Leaf{Dataset: ds, Alias: alias, Filtered: filtered}
	if filtered {
		l.Filter = &expr.Compare{
			Op: expr.CmpEq,
			L:  &expr.Column{Qualifier: alias, Name: "k"},
			R:  &expr.Literal{Val: types.Int(1)},
		}
	}
	return NewLeaf(l)
}

func join(l, r *Node, lk, rk string, algo Algo) *Node {
	return NewJoin(&Join{
		Left: l, Right: r,
		LeftKeys: []string{lk}, RightKeys: []string{rk},
		Algo: algo,
	})
}

func TestAlgoStrings(t *testing.T) {
	cases := []struct {
		a      Algo
		symbol string
		name   string
	}{
		{AlgoHash, "⋈", "hash"},
		{AlgoBroadcast, "⋈b", "broadcast"},
		{AlgoIndexNL, "⋈i", "index-nl"},
	}
	for _, c := range cases {
		if c.a.Symbol() != c.symbol || c.a.String() != c.name {
			t.Errorf("algo %d: %q/%q", c.a, c.a.Symbol(), c.a.String())
		}
	}
	if Algo(9).Symbol() != "⋈?" {
		t.Error("unknown algo symbol")
	}
	if !strings.Contains(Algo(9).String(), "algo") {
		t.Error("unknown algo name")
	}
}

func TestNodeShapes(t *testing.T) {
	a, b, c, d := leaf("A", "a", true), leaf("B", "b", false), leaf("C", "c", false), leaf("D", "d", false)
	j1 := join(a, b, "a.k", "b.k", AlgoBroadcast)
	j2 := join(c, d, "c.k", "d.k", AlgoHash)
	root := join(j1, j2, "b.j", "c.j", AlgoHash)

	if root.JoinCount() != 3 || root.Depth() != 3 {
		t.Errorf("JoinCount=%d Depth=%d", root.JoinCount(), root.Depth())
	}
	if !root.IsBushy() {
		t.Error("two-subtree join not bushy")
	}
	if j1.IsBushy() {
		t.Error("leaf-leaf join reported bushy")
	}
	al := root.Aliases()
	if len(al) != 4 || al[0] != "a" || al[3] != "d" {
		t.Errorf("Aliases = %v", al)
	}
	if a.JoinCount() != 0 || a.Depth() != 1 || !a.IsLeaf() {
		t.Error("leaf accessors wrong")
	}
}

func TestCompactNotation(t *testing.T) {
	a, b := leaf("A", "a", true), leaf("B", "b", false)
	j := join(a, b, "a.k", "b.k", AlgoIndexNL)
	if got := j.Compact(); got != "(a' ⋈i b)" {
		t.Errorf("Compact = %q", got)
	}
}

func TestTreeRendering(t *testing.T) {
	a, b := leaf("A", "alias_a", true), leaf("B", "b", false)
	b.Leaf.Temp = true
	j := join(a, b, "alias_a.k", "b.k", AlgoBroadcast)
	j.EstRows = 42
	a.EstRows = 7
	out := j.Tree()
	for _, want := range []string{"broadcast join", "alias_a.k=b.k", "[temp]", "filter(", "~42 rows", "~7 rows", "scan A as alias_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tree missing %q:\n%s", want, out)
		}
	}
}

func TestAnnotateProjections(t *testing.T) {
	a, b, c := leaf("A", "a", false), leaf("B", "b", false), leaf("C", "c", false)
	j1 := join(a, b, "a.k", "b.k", AlgoHash)
	root := join(j1, c, "b.j", "c.j", AlgoHash)
	AnnotateProjections(root, map[string]bool{"a.out": true, "c.out": true})

	// Root keeps exactly the required output columns.
	if len(root.Join.Keep) != 2 || root.Join.Keep[0] != "a.out" || root.Join.Keep[1] != "c.out" {
		t.Errorf("root Keep = %v", root.Join.Keep)
	}
	// The inner join keeps exactly what survives ABOVE it: a.out (query
	// output) and b.j (the parent's key on this side). Its own keys a.k/b.k
	// are consumed by the join itself and correctly pruned.
	keep := map[string]bool{}
	for _, k := range j1.Join.Keep {
		keep[k] = true
	}
	if len(keep) != 2 || !keep["a.out"] || !keep["b.j"] {
		t.Errorf("inner Keep = %v, want exactly [a.out b.j]", j1.Join.Keep)
	}
}

func TestAnnotateProjectionsNilRequired(t *testing.T) {
	a, b := leaf("A", "a", false), leaf("B", "b", false)
	j := join(a, b, "a.k", "b.k", AlgoHash)
	AnnotateProjections(j, nil)
	if j.Join.Keep != nil {
		t.Error("nil required should not annotate")
	}
	AnnotateProjections(nil, map[string]bool{"a.x": true})
}

func TestQualifierOf(t *testing.T) {
	if qualifierOf("a.x") != "a" || qualifierOf("bare") != "" {
		t.Error("qualifierOf wrong")
	}
}
