package engine

import (
	"fmt"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Scan reads a dataset bound to an alias, applying an optional pushed-down
// filter and projection in the same partition-parallel pass (the fused
// scan→select→project pipeline of one Hyracks stage). Base-dataset reads
// meter scan I/O; temp reads meter materialized-read I/O (the Reader
// operator of Figure 4).
func Scan(ctx *Context, ds *storage.Dataset, alias string, filter expr.Expr, project []string) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qualified := ds.Schema.Requalify(alias)
	env := ctx.Env(qualified)

	var pred expr.Compiled
	if filter != nil {
		var err error
		pred, err = expr.Compile(filter, env)
		if err != nil {
			return nil, err
		}
	}

	outSchema := qualified
	var projIdx []int
	if project != nil {
		names := make([]string, len(project))
		for i, p := range project {
			names[i] = alias + "." + p
		}
		var err error
		outSchema, projIdx, err = qualified.Project(names)
		if err != nil {
			return nil, err
		}
	}

	acct := ctx.Accounting()
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, len(ds.Parts))}
	err := forEachPart(len(ds.Parts), func(p int) error {
		// Scan I/O is metered for every stored row whether or not the filter
		// keeps it, so the byte count is the partition's (cached) encoded
		// size — no per-tuple EncodedSize walk.
		scannedRows := int64(len(ds.Parts[p]))
		scannedBytes := ds.PartBytes(p)
		if ds.Temp {
			acct.MatReadRows.Add(scannedRows)
			acct.MatReadBytes.Add(scannedBytes)
		} else {
			acct.ScanRows.Add(scannedRows)
			acct.ScanBytes.Add(scannedBytes)
		}
		if pred == nil && projIdx == nil {
			// Pass-through scan: share the stored rows directly.
			out.Parts[p] = ds.Parts[p]
			return nil
		}
		var arena types.Arena
		var rows []types.Tuple
		for _, t := range ds.Parts[p] {
			if pred != nil {
				v, err := pred(t)
				if err != nil {
					return err
				}
				if !v.IsTrue() {
					continue
				}
			}
			if projIdx != nil {
				pt := arena.Make(len(projIdx))
				for i, idx := range projIdx {
					pt[i] = t[idx]
				}
				rows = append(rows, pt)
			} else {
				rows = append(rows, t)
			}
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	if pred == nil && projIdx == nil {
		// The relation's rows are exactly the dataset's; seed its size cache
		// from the dataset's so downstream metering never re-walks them.
		pb := make([]int64, len(ds.Parts))
		for p := range pb {
			pb[p] = ds.PartBytes(p)
		}
		out.seedSizes(pb, ds.ByteSize())
	}

	// Partitioning survives the scan when every partitioning field survives
	// the projection (datasets are loaded hash-partitioned on their
	// partition fields).
	if pf := ds.PartitionFields(); len(pf) > 0 {
		cols := make([]int, 0, len(pf))
		ok := true
		for _, f := range pf {
			idx, found := outSchema.Index(alias + "." + f)
			if !found {
				ok = false
				break
			}
			cols = append(cols, idx)
		}
		if ok {
			out.PartCols = cols
		}
	}
	return out, nil
}

// ScanByName resolves the dataset in the catalog and scans it.
func ScanByName(ctx *Context, dataset, alias string, filter expr.Expr, project []string) (*Relation, error) {
	ds, ok := ctx.Catalog.Get(dataset)
	if !ok {
		return nil, fmt.Errorf("engine: unknown dataset %q", dataset)
	}
	return Scan(ctx, ds, alias, filter, project)
}
