package engine

import (
	"fmt"
	"io"

	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// scanPrep is the per-scan compilation shared by the batch and streaming
// scan paths: compiled predicate, projection offsets, output schema, and
// surviving partition columns.
type scanPrep struct {
	qualified *types.Schema
	pred      expr.Compiled
	// vpred is the predicate's vectorized form, nil when the expression has
	// no kernel (UDF calls, arithmetic, unsupported shapes) — the streaming
	// cursor then filters row-at-a-time with pred. The batch path always
	// uses pred: it is the reference implementation.
	vpred     expr.VecPred
	projIdx   []int
	outSchema *types.Schema
	partCols  []int
	// Paged-scan pushdown state (nil for resident datasets): the filter's
	// extracted zone-map ranges, and which columns must decode (nil = all).
	zones []expr.ColRange
	need  []bool
}

// passThrough reports whether the scan emits stored rows unchanged.
func (sp *scanPrep) passThrough() bool { return sp.pred == nil && sp.projIdx == nil }

// prepareScan compiles the pushed-down filter and projection against the
// dataset's alias-qualified schema and resolves which partitioning fields
// survive the projection.
func prepareScan(ctx *Context, ds *storage.Dataset, alias string, filter expr.Expr, project []string) (*scanPrep, error) {
	sp := &scanPrep{qualified: ds.Schema.Requalify(alias)}
	env := ctx.Env(sp.qualified)
	if filter != nil {
		var err error
		sp.pred, err = expr.Compile(filter, env)
		if err != nil {
			return nil, err
		}
		// A vectorized kernel is an optimization, never a requirement: any
		// compile refusal (unsupported node, unresolved column) silently
		// keeps the scalar path, and the kernels themselves fall back per
		// chunk when a column gathers mixed-kind.
		if !ctx.NoVec {
			if vp, ok, verr := expr.CompileVec(filter, env); verr == nil && ok {
				sp.vpred = vp
			}
		}
	}
	sp.outSchema = sp.qualified
	if project != nil {
		names := make([]string, len(project))
		for i, p := range project {
			names[i] = alias + "." + p
		}
		var err error
		sp.outSchema, sp.projIdx, err = sp.qualified.Project(names)
		if err != nil {
			return nil, err
		}
	}
	// Partitioning survives the scan when every partitioning field survives
	// the projection (datasets are loaded hash-partitioned on their
	// partition fields).
	if pf := ds.PartitionFields(); len(pf) > 0 {
		cols := make([]int, 0, len(pf))
		ok := true
		for _, f := range pf {
			idx, found := sp.outSchema.Index(alias + "." + f)
			if !found {
				ok = false
				break
			}
			cols = append(cols, idx)
		}
		if ok {
			sp.partCols = cols
		}
	}
	if ds.IsPaged() {
		if filter != nil {
			sp.zones = expr.ZoneRanges(filter, env)
		}
		sp.need = pageNeedCols(sp, filter)
	}
	return sp, nil
}

// meterScanPart charges one partition's read: scan I/O for base datasets,
// materialized-read I/O for temps (the Reader operator of Figure 4). Scan
// I/O is metered for every stored row whether or not the filter keeps it,
// so the byte count is the partition's (cached) encoded size — no
// per-tuple EncodedSize walk.
func meterScanPart(ctx *Context, ds *storage.Dataset, p int) {
	acct := ctx.Accounting()
	rows := ds.PartRows(p)
	bytes := ds.PartBytes(p)
	if ds.Temp {
		acct.MatReadRows.Add(rows)
		acct.MatReadBytes.Add(bytes)
	} else {
		acct.ScanRows.Add(rows)
		acct.ScanBytes.Add(bytes)
	}
}

// Scan reads a dataset bound to an alias, applying an optional pushed-down
// filter and projection in the same partition-parallel pass (the fused
// scan→select→project pipeline of one Hyracks stage), materializing the
// result as a Relation. The streaming pipeline uses ScanSource instead;
// Scan remains the batch reference and the entry point for build sides,
// which must materialize.
func Scan(ctx *Context, ds *storage.Dataset, alias string, filter expr.Expr, project []string) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, err := prepareScan(ctx, ds, alias, filter, project)
	if err != nil {
		return nil, err
	}
	return scanInto(ctx, ds, sp)
}

// scanInto materializes a prepared scan as a Relation — the batch scan
// body, also backing a streaming scan source that is asked to materialize
// in place (pre-partitioned build sides).
func scanInto(ctx *Context, ds *storage.Dataset, sp *scanPrep) (*Relation, error) {
	if ds.IsPaged() {
		return pagedScanInto(ctx, ds, sp)
	}
	out := &Relation{Schema: sp.outSchema, Parts: make([][]types.Tuple, len(ds.Parts))}
	err := forEachPart(len(ds.Parts), func(p int) error {
		meterScanPart(ctx, ds, p)
		if sp.passThrough() {
			// Pass-through scan: share the stored rows directly.
			out.Parts[p] = ds.Parts[p]
			return nil
		}
		var arena types.Arena
		var rows []types.Tuple
		for _, t := range ds.Parts[p] {
			if sp.pred != nil {
				v, err := sp.pred(t)
				if err != nil {
					return err
				}
				if !v.IsTrue() {
					continue
				}
			}
			if sp.projIdx != nil {
				pt := arena.Make(len(sp.projIdx))
				for i, idx := range sp.projIdx {
					pt[i] = t[idx]
				}
				rows = append(rows, pt)
			} else {
				rows = append(rows, t)
			}
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sp.passThrough() {
		// The relation's rows are exactly the dataset's; seed its size cache
		// from the dataset's so downstream metering never re-walks them.
		pb := make([]int64, len(ds.Parts))
		for p := range pb {
			pb[p] = ds.PartBytes(p)
		}
		out.seedSizes(pb, ds.ByteSize())
	}
	out.PartCols = sp.partCols
	return out, nil
}

// ScanSource returns the streaming scan over a dataset: each partition's
// cursor decodes, filters, and projects chunk-at-a-time, so a probe side
// flows into its join without ever materializing as a Relation. Read I/O
// for a partition is metered in full when its cursor opens — identical
// totals to the batch Scan.
func ScanSource(ctx *Context, ds *storage.Dataset, alias string, filter expr.Expr, project []string) (Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, err := prepareScan(ctx, ds, alias, filter, project)
	if err != nil {
		return nil, err
	}
	return &scanSource{ctx: ctx, ds: ds, prep: sp}, nil
}

type scanSource struct {
	ctx  *Context
	ds   *storage.Dataset
	prep *scanPrep
}

func (s *scanSource) Schema() *types.Schema { return s.prep.outSchema }
func (s *scanSource) Parts() int            { return len(s.ds.Parts) }
func (s *scanSource) PartCols() []int       { return s.prep.partCols }

// PartBytesHint: a pass-through scan's bytes are the dataset's cached
// partition size; filtered or projected output sizes are only knowable by
// walking rows, which the consumer does as they stream past.
func (s *scanSource) PartBytesHint(p int) int64 {
	if s.prep.passThrough() {
		return s.ds.PartBytes(p)
	}
	return -1
}

func (s *scanSource) Open(p int) (Cursor, error) {
	if err := s.ctx.Faults.Fire(faults.Point("scan.open")); err != nil {
		return nil, err
	}
	meterScanPart(s.ctx, s.ds, p)
	if s.ds.IsPaged() {
		return newPagedCursor(s.ctx, s.ds, s.prep, p), nil
	}
	cur := &scanCursor{ctx: s.ctx, prep: s.prep, r: s.ds.ChunkReader(p, s.ctx.chunkRows())}
	if !s.ctx.NoVec {
		cur.cols = cur.r
	}
	return cur, nil
}

// materialize runs the scan as the batch pass instead of streaming —
// zero-copy for pass-through scans, exactly like engine.Scan. Used when a
// join must hold this side whole anyway and no exchange will move it.
func (s *scanSource) materialize(ctx *Context) (*Relation, error) {
	return scanInto(ctx, s.ds, s.prep)
}

// scanCursor streams one partition, fusing filter and projection into the
// decode pass. A filter-only scan never copies tuple headers: the predicate
// (vectorized over the reader's column vectors when a kernel compiled,
// row-at-a-time otherwise) marks live rows in a reused selection vector and
// the chunk goes out as Rows+Sel over the stored window. Only a projection
// gathers survivors densely, carving projected tuples from a growing arena
// whose filled chunks become garbage once downstream consumers drop them.
type scanCursor struct {
	ctx  *Context
	prep *scanPrep
	r    *storage.ChunkReader
	// cols is the reader's columnar face, nil under Context.NoVec so emitted
	// chunks carry no column source and downstream stays fully scalar.
	cols  types.ColSource
	arena types.Arena
	rows  []types.Tuple
	sel   []int32
	c     Chunk
}

// filterWindow runs the fused predicate over the window and returns the
// live selection (ascending, aliasing the cursor's reused buffer).
func (c *scanCursor) filterWindow(win []types.Tuple) ([]int32, error) {
	if cap(c.sel) < len(win) {
		c.sel = make([]int32, len(win))
	}
	sel := c.sel[:len(win)]
	if c.prep.vpred != nil {
		//dynopt:hotpath
		for i := range sel {
			sel[i] = int32(i)
		}
		return c.prep.vpred(win, c.r, sel)
	}
	sel = sel[:0]
	//dynopt:hotpath
	for i, t := range win {
		v, err := c.prep.pred(t)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			sel = append(sel, int32(i))
		}
	}
	return sel, nil
}

func (c *scanCursor) Next() (*Chunk, error) {
	for {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
		win, ok := c.r.Next()
		if !ok {
			return nil, io.EOF
		}
		if c.prep.passThrough() {
			c.c = Chunk{Rows: win, Cols: c.cols}
			return &c.c, nil
		}
		var sel []int32
		if c.prep.pred != nil {
			var err error
			sel, err = c.filterWindow(win)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				continue // a fully filtered window yields no chunk; keep pulling
			}
		}
		if c.prep.projIdx == nil {
			// Filter without projection: emit the stored window with its
			// selection — no tuple-header copies. A full pass drops the
			// selection so downstream stays on the dense fast path.
			if len(sel) == len(win) {
				sel = nil
			}
			c.c = Chunk{Rows: win, Sel: sel, Cols: c.cols}
			return &c.c, nil
		}
		c.rows = c.rows[:0]
		gather := func(t types.Tuple) {
			pt := c.arena.Make(len(c.prep.projIdx))
			for i, idx := range c.prep.projIdx {
				pt[i] = t[idx]
			}
			c.rows = append(c.rows, pt)
		}
		if sel != nil {
			for _, r := range sel {
				gather(win[r])
			}
		} else {
			for _, t := range win {
				gather(t)
			}
		}
		c.c = Chunk{Rows: c.rows}
		return &c.c, nil
	}
}

// ScanByName resolves the dataset in the catalog and scans it.
func ScanByName(ctx *Context, dataset, alias string, filter expr.Expr, project []string) (*Relation, error) {
	ds, ok := ctx.Catalog.Get(dataset)
	if !ok {
		return nil, fmt.Errorf("engine: unknown dataset %q", dataset)
	}
	return Scan(ctx, ds, alias, filter, project)
}
