package engine

import (
	"testing"
)

func TestHashJoinSpillsOverMemoryBudget(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "big", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	register(t, ctx, "other", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	// Tiny budget: the build side (~67KB per partition) must overflow.
	ctx.Cluster.SetMemoryPerNodeBytes(4 << 10)
	big, _ := ScanByName(ctx, "big", "a", nil, nil)
	other, _ := ScanByName(ctx, "other", "b", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	if _, err := HashJoin(ctx, big, other, joinKeys("a", "k"), joinKeys("b", "k"), false); err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	if d.SpillBytes == 0 || d.SpillRows == 0 {
		t.Errorf("no spill metered: %+v", d)
	}
	// Spilled bytes bounded by 2× total data (one write+read round trip).
	total := big.ByteSize() + other.ByteSize()
	if d.SpillBytes > 2*total {
		t.Errorf("spill bytes %d exceed 2× data %d", d.SpillBytes, 2*total)
	}
}

func TestHashJoinNoSpillWithinBudget(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "pay"}, seqTable(100, 10))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "pay"}, seqTable(100, 10))
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "k"), joinKeys("b", "k"), false); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cluster.Acct().SpillBytes.Load(); got != 0 {
		t.Errorf("spilled %d bytes within budget", got)
	}
}

func TestSpillDisabled(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "big", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	ctx.Cluster.SetMemoryPerNodeBytes(0) // disabled
	big, _ := ScanByName(ctx, "big", "a", nil, nil)
	big2, _ := ScanByName(ctx, "big", "b", nil, nil)
	if _, err := HashJoin(ctx, big, big2, joinKeys("a", "k"), joinKeys("b", "k"), false); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cluster.Acct().SpillBytes.Load(); got != 0 {
		t.Errorf("spilled %d bytes with modelling disabled", got)
	}
}

func TestBroadcastJoinSpillsWhenBuildCopyTooBig(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "k", "pay"}, seqTable(2000, 50))
	register(t, ctx, "dim", []string{"id"}, []string{"id", "k", "pay"}, seqTable(1000, 50))
	ctx.Cluster.SetMemoryPerNodeBytes(2 << 10) // 2KB: the 27KB dim copy spills
	fact, _ := ScanByName(ctx, "fact", "f", nil, nil)
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	if _, err := BroadcastJoin(ctx, fact, dim, joinKeys("f", "k"), joinKeys("d", "k"), false); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cluster.Acct().SpillBytes.Load(); got == 0 {
		t.Error("broadcast over-budget build did not spill")
	}
}

func TestSpillRaisesSimTime(t *testing.T) {
	run := func(budget int64) float64 {
		ctx := testCtx(t, 2)
		register(t, ctx, "a", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
		register(t, ctx, "b", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
		ctx.Cluster.SetMemoryPerNodeBytes(budget)
		ra, _ := ScanByName(ctx, "a", "a", nil, nil)
		rb, _ := ScanByName(ctx, "b", "b", nil, nil)
		if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "k"), joinKeys("b", "k"), false); err != nil {
			t.Fatal(err)
		}
		return ctx.Cluster.Model().SimSeconds(ctx.Cluster.Acct().Snapshot(), 2)
	}
	ample := run(1 << 30)
	tight := run(4 << 10)
	if tight <= ample {
		t.Errorf("spilling run (%v) not more expensive than in-memory run (%v)", tight, ample)
	}
}
