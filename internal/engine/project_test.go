package engine

import (
	"testing"

	"dynopt/internal/plan"
	"dynopt/internal/types"
)

func TestProjectColumnsBasic(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(100, 10))
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	out, err := ProjectColumns(rel, []string{"a.pay", "a.id"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 2 || out.Schema.Fields[0].QName() != "a.pay" {
		t.Errorf("schema = %s", out.Schema)
	}
	if out.RowCount() != 100 {
		t.Errorf("rows = %d", out.RowCount())
	}
	// Partitioning survives: pk column a.id kept at new offset 1.
	if out.PartCols == nil || out.PartCols[0] != 1 {
		t.Errorf("PartCols = %v", out.PartCols)
	}
	// Values moved correctly.
	for _, p := range out.Parts {
		for _, row := range p {
			if row[0].I() != row[1].I()*10 {
				t.Fatalf("bad projected row %v", row)
			}
		}
	}
}

func TestProjectColumnsDropsPartitioning(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(50, 5))
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	out, err := ProjectColumns(rel, []string{"a.grp"})
	if err != nil {
		t.Fatal(err)
	}
	if out.PartCols != nil {
		t.Errorf("PartCols = %v after dropping pk", out.PartCols)
	}
}

func TestProjectColumnsSkipsMissing(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"x", "y"}, [][]int64{{1, 2}})
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	out, err := ProjectColumns(rel, []string{"a.x", "zz.nope"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 1 {
		t.Errorf("schema = %s", out.Schema)
	}
	if _, err := ProjectColumns(rel, []string{"zz.nope"}); err == nil {
		t.Error("all-missing projection did not error")
	}
}

func TestExecuteAppliesInteriorProjection(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 10))
	dimRows := make([][]int64, 10)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i * 100), 0}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	root := plan.NewJoin(&plan.Join{
		Left:      plan.NewLeaf(&plan.Leaf{Dataset: "fact", Alias: "f"}),
		Right:     plan.NewLeaf(&plan.Leaf{Dataset: "dim", Alias: "d"}),
		LeftKeys:  []string{"f.fk"},
		RightKeys: []string{"d.id"},
		Algo:      plan.AlgoHash,
		Keep:      []string{"d.attr", "f.pay"},
	})
	rel, err := Execute(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Len() != 2 {
		t.Errorf("kept schema = %s", rel.Schema)
	}
	if rel.RowCount() != 100 {
		t.Errorf("rows = %d", rel.RowCount())
	}
	ai := rel.Schema.MustIndex("d.attr")
	pi := rel.Schema.MustIndex("f.pay")
	for _, p := range rel.Parts {
		for _, row := range p {
			// attr = fk*100, pay = id*10, fk = id%10 ⇒ attr = (pay/10 % 10)*100.
			if row[ai].I() != (row[pi].I()/10%10)*100 {
				t.Fatalf("bad pruned row %v", row)
			}
		}
	}
}

func TestAnnotatedTreeEndToEnd(t *testing.T) {
	// AnnotateProjections + Execute: the pruned pipelined tree returns the
	// same rows as the unpruned one, with less gathered data.
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(200, 10))
	dimRows := make([][]int64, 10)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i), int64(i)}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	mk := func() *plan.Node {
		return plan.NewJoin(&plan.Join{
			Left:      plan.NewLeaf(&plan.Leaf{Dataset: "fact", Alias: "f"}),
			Right:     plan.NewLeaf(&plan.Leaf{Dataset: "dim", Alias: "d"}),
			LeftKeys:  []string{"f.fk"},
			RightKeys: []string{"d.id"},
			Algo:      plan.AlgoBroadcast,
		})
	}
	plain, err := Execute(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	pruned := mk()
	plan.AnnotateProjections(pruned, map[string]bool{"f.pay": true})
	slim, err := Execute(ctx, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if slim.RowCount() != plain.RowCount() {
		t.Errorf("row counts differ: %d vs %d", slim.RowCount(), plain.RowCount())
	}
	if slim.ByteSize() >= plain.ByteSize() {
		t.Errorf("pruned bytes %d not smaller than %d", slim.ByteSize(), plain.ByteSize())
	}
	pay := slim.Schema.MustIndex("f.pay")
	var sumSlim, sumPlain int64
	for _, p := range slim.Parts {
		for _, row := range p {
			sumSlim += row[pay].I()
		}
	}
	pp := plain.Schema.MustIndex("f.pay")
	for _, p := range plain.Parts {
		for _, row := range p {
			sumPlain += row[pp].I()
		}
	}
	if sumSlim != sumPlain {
		t.Errorf("pay sums differ: %d vs %d", sumSlim, sumPlain)
	}
	_ = types.Null()
}
