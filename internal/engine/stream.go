package engine

import (
	"fmt"
	"io"
	"sync"

	"dynopt/internal/faults"
	"dynopt/internal/types"
)

// This file implements the three streaming topologies a stage pipeline is
// built from:
//
//   - local:     partition p's cursor feeds worker p directly (exchange
//                skipped for pre-partitioned probes, and broadcast-join
//                probes, which never move),
//   - scatter:   the hash exchange — source partitions route rows by key
//                hash into per-destination chunk buffers shipped over
//                bounded channels; each destination merges its inputs in
//                source order, so output order is byte-identical to the
//                batch exchange,
//   - replicate: the broadcast — one producer merges the source partitions
//                in order and ships every chunk to all destinations (the
//                INLJ outer side).
//
// All buffering is bounded: per-(src,dst) chunk buffers plus a small channel
// depth, so a stage's resident probe memory is O(parts² × chunkRows) tuple
// headers regardless of relation size.

// probeStream delivers one destination partition's probe chunks, prehashed
// on the join keys. Chunks are valid until the following next call.
type probeStream interface {
	next() (*Chunk, error)
}

// localStream adapts a partition cursor into a probe stream, computing key
// prehashes (and per-row encoded sizes when metering needs them) chunk by
// chunk into reusable buffers. Selection vectors pass through untouched —
// the prehash and size sidecars are computed for the live rows only, via
// the columnar hash when the cursor attached column vectors.
type localStream struct {
	cur       Cursor
	keyCols   []int
	wantSizes bool
	hashBuf   []uint64
	sizeBuf   []int64
	vecBuf    []*types.ColVec
	c         Chunk
}

func (s *localStream) next() (*Chunk, error) {
	c, err := s.cur.Next()
	if err != nil {
		return nil, err
	}
	s.hashBuf, s.vecBuf = chunkKeyHashes(c, s.keyCols, s.hashBuf, s.vecBuf)
	sc := Chunk{Rows: c.Rows, Sel: c.Sel, Hashes: s.hashBuf, Sizes: c.Sizes}
	if s.wantSizes && sc.Sizes == nil {
		if cap(s.sizeBuf) < c.Live() {
			s.sizeBuf = make([]int64, 0, c.Live())
		}
		s.sizeBuf = s.sizeBuf[:0]
		if c.Sel != nil {
			for _, r := range c.Sel {
				s.sizeBuf = append(s.sizeBuf, int64(c.Rows[r].EncodedSize())) //dynopt:size-ok seeds the per-chunk Sizes cache every downstream consumer reuses
			}
		} else {
			for _, t := range c.Rows {
				s.sizeBuf = append(s.sizeBuf, int64(t.EncodedSize())) //dynopt:size-ok seeds the per-chunk Sizes cache every downstream consumer reuses
			}
		}
		sc.Sizes = s.sizeBuf
	}
	s.c = sc
	return &s.c, nil
}

// exchangeChanDepth bounds each (src,dst) channel. Depth 2 lets a producer
// stay one chunk ahead of a busy consumer without growing the resident set.
const exchangeChanDepth = 2

// scatterExchange is the streaming hash exchange state shared by producers
// and consumers. Chunks cycle through a free list once consumers are done
// with them, so a steady-state exchange allocates a bounded working set of
// chunk buffers instead of one per flush.
type scatterExchange struct {
	chans     [][]chan *Chunk // [src][dst]
	free      chan *Chunk
	done      chan struct{}
	rows      int // per-chunk row capacity (the execution's chunkRows)
	closeOnce sync.Once
}

func newScatterExchange(n, rows int) *scatterExchange {
	ex := &scatterExchange{
		chans: make([][]chan *Chunk, n),
		free:  make(chan *Chunk, n*n*(exchangeChanDepth+2)),
		done:  make(chan struct{}),
		rows:  rows,
	}
	for s := range ex.chans {
		ex.chans[s] = make([]chan *Chunk, n)
		for d := range ex.chans[s] {
			ex.chans[s][d] = make(chan *Chunk, exchangeChanDepth)
		}
	}
	return ex
}

// get returns a recycled chunk with empty, full-row-capacity buffers, or a
// fresh one.
func (ex *scatterExchange) get() *Chunk {
	select {
	case c := <-ex.free:
		c.Rows, c.Hashes, c.Sizes = c.Rows[:0], c.Hashes[:0], c.Sizes[:0]
		return c
	default:
		return &Chunk{
			Rows:   make([]types.Tuple, 0, ex.rows),
			Hashes: make([]uint64, 0, ex.rows),
			Sizes:  make([]int64, 0, ex.rows),
		}
	}
}

// release hands a fully consumed chunk back to the free list (dropping it
// if the list is full — the list is sized so that never happens in steady
// state).
func (ex *scatterExchange) release(c *Chunk) {
	select {
	case ex.free <- c:
	default:
	}
}

// cancel unblocks every producer; called when a consumer fails so the
// pipeline tears down instead of deadlocking on full channels.
func (ex *scatterExchange) cancel() {
	ex.closeOnce.Do(func() { close(ex.done) })
}

// produce runs source partition src: pull chunks, hash and size every row
// once, route rows into per-destination buffers, and ship each buffer when
// it fills. Rows staying on their source partition are not metered as
// shuffle — identical to the batch exchange's accounting. The producer
// closes its destination channels on every exit path so consumers always
// see a clean end of stream.
func (ex *scatterExchange) produce(ctx *Context, src int, cur Cursor, keyCols []int) error {
	n := len(ex.chans)
	defer func() {
		for _, ch := range ex.chans[src] {
			close(ch)
		}
	}()
	bufs := make([]*Chunk, n)
	var hashBuf []uint64
	var vecBuf []*types.ColVec
	var localRows, totalRows, localBytes, totalBytes int64
	// The flush select also watches the caller's cancellation: with a
	// stalled (injected or genuinely wedged) consumer the bounded channel
	// never drains, and without this case a QueryOptions.Timeout would
	// expire while the producer sat blocked forever on the send.
	var cancelled <-chan struct{}
	if ctx.Cancel != nil {
		cancelled = ctx.Cancel.Done()
	}
	flush := func(d int) error {
		if err := ctx.Faults.Fire(faults.Point("exchange.produce")); err != nil {
			return err
		}
		c := bufs[d]
		bufs[d] = nil
		select {
		case ex.chans[src][d] <- c:
			return nil
		case <-ex.done:
			return errExchangeCancelled
		case <-cancelled:
			return ctx.Cancel.Err()
		}
	}
	// route places one live row (whose prehash sits at sidecar index k) into
	// its destination buffer, flushing the buffer when it fills. Declared
	// once per producer — the chunk loop below reassigns hashBuf and the
	// closure reads it through the captured variable.
	route := func(k int, t types.Tuple) error {
		h := hashBuf[k]
		d := int(h % uint64(n))
		sz := int64(t.EncodedSize()) //dynopt:size-ok scatter seeds shuffle metering and downstream size hints in one walk
		totalRows++
		totalBytes += sz
		if d == src {
			localRows++
			localBytes += sz
		}
		b := bufs[d]
		if b == nil {
			b = ex.get()
			bufs[d] = b
		}
		b.Rows = append(b.Rows, t)
		b.Hashes = append(b.Hashes, h)
		b.Sizes = append(b.Sizes, sz)
		if len(b.Rows) == ex.rows {
			return flush(d)
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		hashBuf, vecBuf = chunkKeyHashes(c, keyCols, hashBuf, vecBuf)
		if c.Sel != nil {
			//dynopt:hotpath
			for k, r := range c.Sel {
				if err := route(k, c.Rows[r]); err != nil {
					return err
				}
			}
			continue
		}
		//dynopt:hotpath
		for r, t := range c.Rows {
			if err := route(r, t); err != nil {
				return err
			}
		}
	}
	for d := 0; d < n; d++ {
		if bufs[d] != nil && len(bufs[d].Rows) > 0 {
			if err := flush(d); err != nil {
				return err
			}
		}
	}
	acct := ctx.Accounting()
	acct.ShuffleRows.Add(totalRows - localRows)
	acct.ShuffleBytes.Add(totalBytes - localBytes)
	return nil
}

var errExchangeCancelled = fmt.Errorf("engine: exchange cancelled by failed consumer")

// faultingStream interposes the exchange.consume injection point on a
// destination's probe stream — one Fire per received chunk, so consumer
// errors and consumer stalls land mid-exchange, with producers still live
// and channels still full. Only wrapped around the primary consumer when a
// registry is armed; the drain-after-failure streams stay raw so teardown
// cannot be re-faulted into a deadlock.
type faultingStream struct {
	st  probeStream
	reg *faults.Registry
}

func (s *faultingStream) next() (*Chunk, error) {
	if err := s.reg.Fire(faults.Point("exchange.consume")); err != nil {
		return nil, err
	}
	return s.st.next()
}

// mergeStream is destination dst's side of the scatter: it drains source 0's
// channel to exhaustion, then source 1's, and so on, reproducing the batch
// exchange's source-block order exactly. It also guards the int32 row-index
// limit the downstream build tables rely on.
type mergeStream struct {
	ex   *scatterExchange
	dst  int
	src  int
	rows int64
	prev *Chunk // recycled on the following next call
}

func (m *mergeStream) next() (*Chunk, error) {
	if m.prev != nil {
		// The consumer pulled again, so it is done with the previous chunk
		// (consumers copy anything they keep); recycle its buffers.
		m.ex.release(m.prev)
		m.prev = nil
	}
	for m.src < len(m.ex.chans) {
		c, ok := <-m.ex.chans[m.src][m.dst]
		if !ok {
			m.src++
			continue
		}
		m.prev = c
		m.rows += int64(len(c.Rows))
		if m.rows > maxPartRows {
			m.ex.cancel()
			return nil, fmt.Errorf("engine: exchange destination %d would hold over %d rows, exceeding the int32 row-indexing limit", m.dst, maxPartRows)
		}
		return c, nil
	}
	return nil, io.EOF
}

// runScatter drives a full scatter pipeline: pooled producers over the
// source partitions, one consumer goroutine per destination (consumers must
// all be live for the source-order merge to drain, so they are not pooled —
// they spend most of their life blocked on channels). The first consumer
// error cancels the producers; the lowest-partition error wins, with
// producer errors taking precedence over the cancellations they cause.
func runScatter(ctx *Context, src Source, keyCols []int, consume func(p int, st probeStream) error) error {
	n := src.Parts()
	ex := newScatterExchange(n, ctx.chunkRows())
	consErrs := make([]error, n)
	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			st := probeStream(&mergeStream{ex: ex, dst: d})
			if ctx.Faults != nil {
				st = &faultingStream{st: st, reg: ctx.Faults}
			}
			// Contain consumer panics here, on the consumer's own goroutine:
			// a panicking probe worker becomes this destination's error and
			// flows into the same cancel-and-drain teardown as an error
			// return, instead of killing the process with producers blocked
			// on full channels.
			err := func() (err error) {
				defer func() {
					if v := recover(); v != nil {
						err = faults.FromPanic("exchange", fmt.Sprintf("consumer %d", d), v)
					}
				}()
				return consume(d, st)
			}()
			if err != nil {
				consErrs[d] = err
				ex.cancel()
				// Keep draining so producers targeting this destination can
				// finish and close their remaining channels cleanly.
				//dynopt:cancel-ok drain-after-failure: the exchange is already cancelled, this loop only unblocks producers so they can exit
				for st := (&mergeStream{ex: ex, dst: d}); ; {
					if _, e := st.next(); e != nil {
						return
					}
				}
			}
		}(d)
	}
	prodErr := forEachPart(n, func(s int) error {
		cur, err := src.Open(s)
		if err != nil {
			return err
		}
		return ex.produce(ctx, s, cur, keyCols)
	})
	wg.Wait()
	if prodErr != nil && prodErr != errExchangeCancelled {
		return prodErr
	}
	for _, err := range consErrs {
		if err != nil {
			return err
		}
	}
	return prodErr
}

// replicateExchange broadcasts one merged stream to every destination — the
// streaming counterpart of gathering a relation and handing every partition
// the same slice. One producer pulls the source partitions in order; each
// chunk's headers are copied once and shared read-only by all consumers.
type replicateExchange struct {
	chans     []chan *Chunk
	done      chan struct{}
	closeOnce sync.Once
}

func newReplicateExchange(n int) *replicateExchange {
	ex := &replicateExchange{chans: make([]chan *Chunk, n), done: make(chan struct{})}
	for d := range ex.chans {
		ex.chans[d] = make(chan *Chunk, exchangeChanDepth)
	}
	return ex
}

func (ex *replicateExchange) cancel() {
	ex.closeOnce.Do(func() { close(ex.done) })
}

// produce streams every source partition in order, shipping each chunk to
// all destinations, and returns the total rows and encoded bytes seen (the
// broadcast metering inputs). Per-partition byte hints are used when the
// source knows them; otherwise rows are sized as they pass.
func (ex *replicateExchange) produce(ctx *Context, src Source) (totalRows, totalBytes int64, err error) {
	defer func() {
		for _, ch := range ex.chans {
			close(ch)
		}
	}()
	var cancelled <-chan struct{}
	if ctx.Cancel != nil {
		cancelled = ctx.Cancel.Done()
	}
	for p := 0; p < src.Parts(); p++ {
		cur, err := src.Open(p)
		if err != nil {
			return totalRows, totalBytes, err
		}
		hint := src.PartBytesHint(p)
		var partBytes int64
		for {
			if err := ctx.Err(); err != nil {
				return totalRows, totalBytes, err
			}
			c, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return totalRows, totalBytes, err
			}
			if err := ctx.Faults.Fire(faults.Point("exchange.produce")); err != nil {
				return totalRows, totalBytes, err
			}
			// Flatten any selection on the copy the consumers share: the
			// broadcast copies headers anyway, so dead rows are dropped here
			// rather than shipped to every destination.
			out := &Chunk{Rows: c.appendLive(make([]types.Tuple, 0, c.Live()))}
			totalRows += int64(len(out.Rows))
			if hint < 0 {
				for _, t := range out.Rows {
					partBytes += int64(t.EncodedSize()) //dynopt:size-ok fallback when the producer attached no size hint; replicate meters bytes shipped per node
				}
			}
			for _, ch := range ex.chans {
				select {
				case ch <- out:
				case <-ex.done:
					return totalRows, totalBytes, errExchangeCancelled
				case <-cancelled:
					return totalRows, totalBytes, ctx.Cancel.Err()
				}
			}
		}
		if hint >= 0 {
			partBytes = hint
		}
		totalBytes += partBytes
	}
	return totalRows, totalBytes, nil
}

// chanStream adapts one replicate channel into a probe stream.
type chanStream struct {
	ch <-chan *Chunk
}

func (s *chanStream) next() (*Chunk, error) {
	c, ok := <-s.ch
	if !ok {
		return nil, io.EOF
	}
	return c, nil
}

// runReplicate drives a replicate pipeline: one producer goroutine, one
// consumer goroutine per destination. It returns the producer's row/byte
// totals for broadcast metering.
func runReplicate(ctx *Context, src Source, n int, consume func(p int, st probeStream) error) (totalRows, totalBytes int64, err error) {
	ex := newReplicateExchange(n)
	consErrs := make([]error, n)
	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			st := probeStream(&chanStream{ch: ex.chans[d]})
			if ctx.Faults != nil {
				st = &faultingStream{st: st, reg: ctx.Faults}
			}
			err := func() (err error) {
				defer func() {
					if v := recover(); v != nil {
						err = faults.FromPanic("exchange", fmt.Sprintf("consumer %d", d), v)
					}
				}()
				return consume(d, st)
			}()
			if err != nil {
				consErrs[d] = err
				ex.cancel()
				for range ex.chans[d] { // drain so the producer can finish
				}
			}
		}(d)
	}
	// The producer runs inline on the caller's goroutine; contain its panics
	// the same way forEachPart does for scatter producers. produce's own
	// channel-close defer runs during the unwind, so consumers still see end
	// of stream.
	totalRows, totalBytes, prodErr := func() (tr, tb int64, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = faults.FromPanic("exchange", "replicate producer", v)
			}
		}()
		return ex.produce(ctx, src)
	}()
	wg.Wait()
	if prodErr != nil && prodErr != errExchangeCancelled {
		return totalRows, totalBytes, prodErr
	}
	for _, err := range consErrs {
		if err != nil {
			return totalRows, totalBytes, err
		}
	}
	return totalRows, totalBytes, prodErr
}

// materializable is implemented by sources that can land themselves as a
// Relation more cheaply than pulling chunks (a pass-through scan shares the
// stored partitions outright; a relation source already is one).
type materializable interface {
	materialize(ctx *Context) (*Relation, error)
}

func (s *relationSource) materialize(*Context) (*Relation, error) { return s.rel, nil }

// materializeSource lands a source as a Relation: via its fast path when it
// has one, else by collecting chunks partition-parallel.
func materializeSource(ctx *Context, src Source) (*Relation, error) {
	if m, ok := src.(materializable); ok {
		return m.materialize(ctx)
	}
	out := &Relation{
		Schema:   src.Schema(),
		Parts:    make([][]types.Tuple, src.Parts()),
		PartCols: src.PartCols(),
	}
	err := forEachPart(src.Parts(), func(p int) error {
		cur, err := src.Open(p)
		if err != nil {
			return err
		}
		var rows []types.Tuple
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows = c.appendLive(rows)
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// collectExchanged is the materializing face of the scatter: the source's
// decode pass is fused with the hash exchange, so each row is scanned,
// hashed, sized, and placed in its destination bucket in one pass, and only
// the exchanged relation — the one the hash tables must hold — is ever
// materialized. Destinations receive source blocks in source order with row
// order preserved, and shuffle metering matches the batch exchange exactly.
// With wantSizes the per-row encoded sizes travel to the output aligned
// with the rows (the real-spill join's budget accounting).
func collectExchanged(ctx *Context, src Source, keyCols []int, wantSizes bool) (*Relation, [][]uint64, [][]int64, error) {
	n := src.Parts()
	type bucket struct {
		rows   []types.Tuple
		hashes []uint64
		sizes  []int64
		bytes  int64
	}
	buckets := make([][]bucket, n) // [src][dst]
	acct := ctx.Accounting()
	err := forEachPart(n, func(s int) error {
		cur, err := src.Open(s)
		if err != nil {
			return err
		}
		bs := make([]bucket, n)
		var hashBuf []uint64
		var vecBuf []*types.ColVec
		var totalRows, totalBytes int64
		place := func(k int, t types.Tuple) {
			h := hashBuf[k]
			d := int(h % uint64(n))
			sz := int64(t.EncodedSize()) //dynopt:size-ok collect path seeds shuffle metering for exchanged partitions in one walk
			totalRows++
			totalBytes += sz
			b := &bs[d]
			b.rows = append(b.rows, t)
			b.hashes = append(b.hashes, h)
			if wantSizes {
				b.sizes = append(b.sizes, sz)
			}
			b.bytes += sz
		}
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			hashBuf, vecBuf = chunkKeyHashes(c, keyCols, hashBuf, vecBuf)
			if c.Sel != nil {
				for k, r := range c.Sel {
					place(k, c.Rows[r])
				}
				continue
			}
			for r, t := range c.Rows {
				place(r, t)
			}
		}
		buckets[s] = bs
		acct.ShuffleRows.Add(totalRows - int64(len(bs[s].rows)))
		acct.ShuffleBytes.Add(totalBytes - bs[s].bytes)
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	out := &Relation{
		Schema:   src.Schema(),
		Parts:    make([][]types.Tuple, n),
		PartCols: append([]int(nil), keyCols...),
	}
	outHashes := make([][]uint64, n)
	var outSizes [][]int64
	if wantSizes {
		outSizes = make([][]int64, n)
	}
	outBytes := make([]int64, n)
	err = forEachPart(n, func(d int) error {
		var total int
		var bytes int64
		for s := 0; s < n; s++ {
			total += len(buckets[s][d].rows)
			bytes += buckets[s][d].bytes
		}
		if total > maxPartRows {
			return fmt.Errorf("engine: exchange destination %d would hold %d rows, exceeding the %d-row limit of int32 row indexing", d, total, maxPartRows)
		}
		rows := make([]types.Tuple, 0, total)
		hashes := make([]uint64, 0, total)
		var sizes []int64
		if wantSizes {
			sizes = make([]int64, 0, total)
		}
		for s := 0; s < n; s++ {
			rows = append(rows, buckets[s][d].rows...)
			hashes = append(hashes, buckets[s][d].hashes...)
			if wantSizes {
				sizes = append(sizes, buckets[s][d].sizes...)
			}
		}
		out.Parts[d] = rows
		outHashes[d] = hashes
		if wantSizes {
			outSizes[d] = sizes
		}
		outBytes[d] = bytes
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var total int64
	for _, b := range outBytes {
		total += b
	}
	out.seedSizes(outBytes, total)
	return out, outHashes, outSizes, nil
}

// colsMatch mirrors Relation.PartitionedOn for a Source's partitioning
// columns: exact, order-sensitive equality.
func colsMatch(have, want []int) bool {
	if len(have) == 0 || len(have) != len(want) {
		return false
	}
	for i := range want {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}
