package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dynopt/internal/cluster"
	"dynopt/internal/expr"
	"dynopt/internal/faults/leakcheck"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// testChunkRows, when nonzero, is applied by testCtx to Context.ChunkRows —
// the same field Config.ChunkRows feeds through Open — so chunk-boundary
// tests exercise the real configuration path rather than a test backdoor.
var testChunkRows int

// withChunkCap shrinks the pipeline chunk size for the duration of a test
// so chunk boundaries (size-1 chunks, rows exactly at capacity) are
// exercised on small inputs.
func withChunkCap(t *testing.T, n int) {
	t.Helper()
	old := testChunkRows
	testChunkRows = n
	t.Cleanup(func() { testChunkRows = old })
}

// relRows flattens a relation partition-by-partition for exact (order
// included) comparison.
func relRows(rel *Relation) []string {
	var out []string
	for p, part := range rel.Parts {
		for _, t := range part {
			out = append(out, fmt.Sprintf("p%d:%s", p, t))
		}
	}
	return out
}

// collectStream adapts a streaming join entry point back to a Relation for
// comparison against the batch reference.
func collectStream(nparts int, run func(mk SinkFactory) error) (*Relation, error) {
	var rsink *relationSink
	var schema *types.Schema
	var pc []int
	mk := func(s *types.Schema, partCols []int) (Sink, error) {
		schema, pc = s, partCols
		rsink = newRelationSink(nparts)
		return rsink, nil
	}
	if err := run(mk); err != nil {
		return nil, err
	}
	return &Relation{Schema: schema, Parts: rsink.parts, PartCols: pc}, nil
}

// runBothModes executes the batch and streaming forms of the same join job
// on fresh but identically loaded contexts and requires identical rows
// (order included), identical schema and partitioning metadata, and
// identical counters.
func runBothModes(t *testing.T, nodes int, load func(ctx *Context),
	batchJob func(ctx *Context) (*Relation, error), streamJob func(ctx *Context) (*Relation, error)) {
	t.Helper()
	type res struct {
		rel  *Relation
		snap cluster.Snapshot
	}
	run := func(batch bool, job func(ctx *Context) (*Relation, error)) res {
		ctx := testCtx(t, nodes)
		ctx.Batch = batch
		load(ctx)
		rel, err := job(ctx)
		if err != nil {
			t.Fatalf("batch=%v: %v", batch, err)
		}
		return res{rel: rel, snap: ctx.Cluster.Acct().Snapshot()}
	}
	b, s := run(true, batchJob), run(false, streamJob)
	if b.snap != s.snap {
		t.Errorf("counters diverged\nbatch:  %+v\nstream: %+v", b.snap, s.snap)
	}
	br, sr := relRows(b.rel), relRows(s.rel)
	if len(br) != len(sr) {
		t.Fatalf("row count diverged: batch %d, stream %d", len(br), len(sr))
	}
	for i := range br {
		if br[i] != sr[i] {
			t.Fatalf("row %d diverged:\nbatch:  %s\nstream: %s", i, br[i], sr[i])
		}
	}
	if b.rel.Schema.String() != s.rel.Schema.String() {
		t.Errorf("schema diverged: %s vs %s", b.rel.Schema, s.rel.Schema)
	}
	if fmt.Sprint(b.rel.PartCols) != fmt.Sprint(s.rel.PartCols) {
		t.Errorf("PartCols diverged: %v vs %v", b.rel.PartCols, s.rel.PartCols)
	}
}

// TestStreamMatchesBatchChunkBoundaries sweeps the streaming joins across
// chunk capacities that land rows exactly at, below, and far beyond chunk
// boundaries, including empty partitions (more partitions than rows) and
// selective filters that empty entire scan windows.
func TestStreamMatchesBatchChunkBoundaries(t *testing.T) {
	leakcheck.Check(t)
	payFilter := func() expr.Expr {
		return &expr.Compare{Op: expr.CmpGe,
			L: &expr.Column{Qualifier: "f", Name: "pay"}, R: &expr.Literal{Val: types.Int(900)}}
	}
	for _, cc := range []int{1, 3, 25, 1024} {
		t.Run(fmt.Sprintf("chunkCap=%d", cc), func(t *testing.T) {
			withChunkCap(t, cc)
			// 100 rows over 4 nodes: partitions hold ~25 rows, so cc=25 puts
			// rows exactly at capacity; cc=1 forces a chunk per row. The dim
			// side holds 3 rows over 4 nodes, leaving at least one partition
			// empty.
			load := func(ctx *Context) {
				register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 3))
				register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, [][]int64{{0, 10}, {1, 11}, {2, 12}})
			}
			t.Run("hash-scattered", func(t *testing.T) {
				// Probe (fact) is partitioned on id but joined on fk: the
				// scatter exchange runs.
				runBothModes(t, 4, load,
					func(ctx *Context) (*Relation, error) {
						f, err := ScanByName(ctx, "fact", "f", nil, nil)
						if err != nil {
							return nil, err
						}
						d, err := ScanByName(ctx, "dim", "d", nil, nil)
						if err != nil {
							return nil, err
						}
						return HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
					},
					func(ctx *Context) (*Relation, error) {
						fds, _ := ctx.Catalog.Get("fact")
						dds, _ := ctx.Catalog.Get("dim")
						return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
							fsrc, err := ScanSource(ctx, fds, "f", nil, nil)
							if err != nil {
								return err
							}
							dsrc, err := ScanSource(ctx, dds, "d", nil, nil)
							if err != nil {
								return err
							}
							// buildLeft=false in the batch call means the dim
							// (right) side builds; probe columns form the left
							// half, so buildFirst=false.
							return HashJoinStreamSources(ctx, dsrc, fsrc, []string{"d.id"}, []string{"f.fk"}, false, mk)
						})
					})
			})
			t.Run("hash-prepartitioned", func(t *testing.T) {
				// Probe pre-partitioned on the join key: the exchange is
				// skipped and the local pipeline runs.
				runBothModes(t, 4, load,
					func(ctx *Context) (*Relation, error) {
						f, err := ScanByName(ctx, "fact", "f", nil, nil)
						if err != nil {
							return nil, err
						}
						d, err := ScanByName(ctx, "dim", "d", nil, nil)
						if err != nil {
							return nil, err
						}
						return HashJoin(ctx, f, d, []string{"f.id"}, []string{"d.id"}, false)
					},
					func(ctx *Context) (*Relation, error) {
						fds, _ := ctx.Catalog.Get("fact")
						dds, _ := ctx.Catalog.Get("dim")
						return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
							fsrc, err := ScanSource(ctx, fds, "f", nil, nil)
							if err != nil {
								return err
							}
							dsrc, err := ScanSource(ctx, dds, "d", nil, nil)
							if err != nil {
								return err
							}
							return HashJoinStreamSources(ctx, dsrc, fsrc, []string{"d.id"}, []string{"f.id"}, false, mk)
						})
					})
			})
			t.Run("broadcast", func(t *testing.T) {
				runBothModes(t, 4, load,
					func(ctx *Context) (*Relation, error) {
						f, err := ScanByName(ctx, "fact", "f", nil, nil)
						if err != nil {
							return nil, err
						}
						d, err := ScanByName(ctx, "dim", "d", nil, nil)
						if err != nil {
							return nil, err
						}
						return BroadcastJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
					},
					func(ctx *Context) (*Relation, error) {
						fds, _ := ctx.Catalog.Get("fact")
						dds, _ := ctx.Catalog.Get("dim")
						return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
							build, err := Scan(ctx, dds, "d", nil, nil)
							if err != nil {
								return err
							}
							fsrc, err := ScanSource(ctx, fds, "f", nil, nil)
							if err != nil {
								return err
							}
							return BroadcastJoinStream(ctx, build, fsrc, []string{"d.id"}, []string{"f.fk"}, false, mk)
						})
					})
			})
			t.Run("indexnl", func(t *testing.T) {
				loadIdx := func(ctx *Context) {
					load(ctx)
					ds, _ := ctx.Catalog.Get("fact")
					if _, err := storage.BuildIndex(ds, "fk"); err != nil {
						t.Fatal(err)
					}
				}
				runBothModes(t, 4, loadIdx,
					func(ctx *Context) (*Relation, error) {
						ds, _ := ctx.Catalog.Get("fact")
						d, err := ScanByName(ctx, "dim", "d", nil, nil)
						if err != nil {
							return nil, err
						}
						return IndexNLJoin(ctx, d, ds, "f", []string{"d.id"}, []string{"fk"}, nil)
					},
					func(ctx *Context) (*Relation, error) {
						ds, _ := ctx.Catalog.Get("fact")
						dds, _ := ctx.Catalog.Get("dim")
						return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
							dsrc, err := ScanSource(ctx, dds, "d", nil, nil)
							if err != nil {
								return err
							}
							return IndexNLJoinStream(ctx, dsrc, ds, "f", []string{"d.id"}, []string{"fk"}, nil, mk)
						})
					})
			})
			t.Run("filtered-scan-join", func(t *testing.T) {
				// Selective filter empties most scan windows; projection
				// exercises the arena-backed streaming decode.
				runBothModes(t, 4, load,
					func(ctx *Context) (*Relation, error) {
						f, err := ScanByName(ctx, "fact", "f", payFilter(), []string{"id", "fk"})
						if err != nil {
							return nil, err
						}
						d, err := ScanByName(ctx, "dim", "d", nil, nil)
						if err != nil {
							return nil, err
						}
						return HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
					},
					func(ctx *Context) (*Relation, error) {
						fds, _ := ctx.Catalog.Get("fact")
						dds, _ := ctx.Catalog.Get("dim")
						return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
							fsrc, err := ScanSource(ctx, fds, "f", payFilter(), []string{"id", "fk"})
							if err != nil {
								return err
							}
							dsrc, err := ScanSource(ctx, dds, "d", nil, nil)
							if err != nil {
								return err
							}
							return HashJoinStreamSources(ctx, dsrc, fsrc, []string{"d.id"}, []string{"f.fk"}, false, mk)
						})
					})
			})
		})
	}
}

// TestStreamMatchesBatchEmptyInputs: zero-row probe and build sides flow
// through the pipeline without emitting chunks.
func TestStreamMatchesBatchEmptyInputs(t *testing.T) {
	leakcheck.Check(t)
	withChunkCap(t, 2)
	load := func(ctx *Context) {
		register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, nil)
		register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, [][]int64{{0, 10}})
	}
	runBothModes(t, 4, load,
		func(ctx *Context) (*Relation, error) {
			f, err := ScanByName(ctx, "fact", "f", nil, nil)
			if err != nil {
				return nil, err
			}
			d, err := ScanByName(ctx, "dim", "d", nil, nil)
			if err != nil {
				return nil, err
			}
			return HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, false)
		},
		func(ctx *Context) (*Relation, error) {
			fds, _ := ctx.Catalog.Get("fact")
			dds, _ := ctx.Catalog.Get("dim")
			return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
				fsrc, err := ScanSource(ctx, fds, "f", nil, nil)
				if err != nil {
					return err
				}
				dsrc, err := ScanSource(ctx, dds, "d", nil, nil)
				if err != nil {
					return err
				}
				return HashJoinStreamSources(ctx, dsrc, fsrc, []string{"d.id"}, []string{"f.fk"}, false, mk)
			})
		})
}

// registerTyped registers a dataset with an explicit schema, for tests that
// need non-int columns alongside the int helpers.
func registerTyped(t *testing.T, ctx *Context, name string, pk []string, schema *types.Schema, rows []types.Tuple) *storage.Dataset {
	t.Helper()
	ds, st, err := storage.Build(name, schema, pk, rows, ctx.Cluster.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Catalog.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestStreamMatchesBatchSelChunks pins the selection-vector chunk form
// end-to-end: a filter without projection emits stored windows with a Sel
// sidecar, which must flow through the scatter exchange, the local join
// pipeline (joinSelInto), and columnar key hashing with results and counters
// identical to the dense batch reference. Covers the vectorized int and
// string kernels, NULLs in filtered columns, and the scalar fallback for UDF
// predicates.
func TestStreamMatchesBatchSelChunks(t *testing.T) {
	leakcheck.Check(t)
	strRows := func(n int) []types.Tuple {
		names := []string{"ash", "mint", "zinc", "kelp", "moss", "alder"}
		rows := make([]types.Tuple, n)
		for i := range rows {
			nm := types.Str(names[i%len(names)])
			if i%11 == 0 {
				nm = types.Null() // NULL never passes the filter, both modes
			}
			rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 3)), nm}
		}
		return rows
	}
	strSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt},
		types.Field{Name: "fk", Kind: types.KindInt},
		types.Field{Name: "name", Kind: types.KindString},
	)
	joinStream := func(probe, build string, probeKey, buildKey string, filter expr.Expr) func(ctx *Context) (*Relation, error) {
		return func(ctx *Context) (*Relation, error) {
			pds, _ := ctx.Catalog.Get(probe)
			bds, _ := ctx.Catalog.Get(build)
			return collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
				psrc, err := ScanSource(ctx, pds, "f", filter, nil)
				if err != nil {
					return err
				}
				bsrc, err := ScanSource(ctx, bds, "d", nil, nil)
				if err != nil {
					return err
				}
				return HashJoinStreamSources(ctx, bsrc, psrc, []string{buildKey}, []string{probeKey}, false, mk)
			})
		}
	}
	joinBatch := func(probe, build string, probeKey, buildKey string, filter expr.Expr) func(ctx *Context) (*Relation, error) {
		return func(ctx *Context) (*Relation, error) {
			f, err := ScanByName(ctx, probe, "f", filter, nil)
			if err != nil {
				return nil, err
			}
			d, err := ScanByName(ctx, build, "d", nil, nil)
			if err != nil {
				return nil, err
			}
			return HashJoin(ctx, f, d, []string{probeKey}, []string{buildKey}, false)
		}
	}
	for _, cc := range []int{3, 25} {
		t.Run(fmt.Sprintf("chunkCap=%d", cc), func(t *testing.T) {
			withChunkCap(t, cc)
			loadInt := func(ctx *Context) {
				register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 3))
				register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, [][]int64{{0, 10}, {1, 11}, {2, 12}})
			}
			t.Run("int-filter-scattered", func(t *testing.T) {
				// Partial-pass windows (pay%70<35 keeps runs of rows) emit sel
				// chunks into the scatter exchange: columnar hashing walks Sel.
				filt := &expr.Compare{Op: expr.CmpLt,
					L: &expr.Column{Qualifier: "f", Name: "pay"}, R: &expr.Literal{Val: types.Int(500)}}
				runBothModes(t, 4, loadInt,
					joinBatch("fact", "dim", "f.fk", "d.id", filt),
					joinStream("fact", "dim", "f.fk", "d.id", filt))
			})
			t.Run("int-filter-prepartitioned", func(t *testing.T) {
				// Probe pre-partitioned on the join key: sel chunks skip the
				// exchange and hit joinSelInto directly.
				filt := &expr.Compare{Op: expr.CmpGe,
					L: &expr.Column{Qualifier: "f", Name: "pay"}, R: &expr.Literal{Val: types.Int(300)}}
				runBothModes(t, 4, loadInt,
					joinBatch("fact", "dim", "f.id", "d.id", filt),
					joinStream("fact", "dim", "f.id", "d.id", filt))
			})
			t.Run("string-filter", func(t *testing.T) {
				// String comparison kernel over a column with NULLs.
				load := func(ctx *Context) {
					registerTyped(t, ctx, "fact", []string{"id"}, strSchema, strRows(90))
					register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, [][]int64{{0, 10}, {1, 11}, {2, 12}})
				}
				filt := &expr.Compare{Op: expr.CmpGe,
					L: &expr.Column{Qualifier: "f", Name: "name"}, R: &expr.Literal{Val: types.Str("m")}}
				runBothModes(t, 4, load,
					joinBatch("fact", "dim", "f.fk", "d.id", filt),
					joinStream("fact", "dim", "f.fk", "d.id", filt))
			})
			t.Run("udf-filter", func(t *testing.T) {
				// A Call predicate has no kernel: the cursor filters with the
				// scalar Compiled but still emits sel chunks.
				load := func(ctx *Context) {
					loadInt(ctx)
					if err := ctx.UDFs.Register(expr.UDF{Name: "selmod", Fn: func(args []types.Value) (types.Value, error) {
						if args[0].IsNull() {
							return types.Null(), nil
						}
						return types.Int(args[0].I() % 7), nil
					}}); err != nil {
						t.Fatal(err)
					}
				}
				filt := &expr.Compare{Op: expr.CmpNe,
					L: &expr.Call{Name: "selmod", Args: []expr.Expr{&expr.Column{Qualifier: "f", Name: "id"}}},
					R: &expr.Literal{Val: types.Int(0)}}
				runBothModes(t, 4, load,
					joinBatch("fact", "dim", "f.fk", "d.id", filt),
					joinStream("fact", "dim", "f.fk", "d.id", filt))
			})
		})
	}
}

// TestStreamSpillSelChunks drives sel chunks into the spilling DHHJ probe:
// a filtered, unprojected probe side streams Rows+Sel chunks whose live rows
// and per-row hashes chunkSeq must walk through the selection.
func TestStreamSpillSelChunks(t *testing.T) {
	leakcheck.Check(t)
	withChunkCap(t, 7)
	filt := func() expr.Expr {
		return &expr.Compare{Op: expr.CmpGe,
			L: &expr.Column{Qualifier: "d", Name: "attr"}, R: &expr.Literal{Val: types.Int(60)}}
	}
	run := func(batch bool) ([]string, cluster.Snapshot) {
		ctx := testCtx(t, 2)
		ctx.Batch = batch
		register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(4000, 64))
		dim := make([][]int64, 64)
		for i := range dim {
			dim[i] = []int64{int64(i), int64(i * 3)}
		}
		register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, dim)
		fact, _ := ctx.Catalog.Get("fact")
		ctx.Cluster.SetMemoryPerNodeBytes(fact.ByteSize() / int64(2*8))
		ctx.Spill = storage.NewSpillManager(t.TempDir(), "selspill_")
		ctx.Grant = ctx.Cluster.Governor().Grant()
		defer ctx.Grant.Close()
		var rel *Relation
		var err error
		if batch {
			var f, d *Relation
			f, err = ScanByName(ctx, "fact", "f", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			d, err = ScanByName(ctx, "dim", "d", filt(), nil)
			if err != nil {
				t.Fatal(err)
			}
			rel, err = HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, true)
		} else {
			fds, _ := ctx.Catalog.Get("fact")
			dds, _ := ctx.Catalog.Get("dim")
			rel, err = collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
				fsrc, serr := ScanSource(ctx, fds, "f", nil, nil)
				if serr != nil {
					return serr
				}
				dsrc, serr := ScanSource(ctx, dds, "d", filt(), nil)
				if serr != nil {
					return serr
				}
				return HashJoinStreamSources(ctx, fsrc, dsrc, []string{"f.fk"}, []string{"d.id"}, true, mk)
			})
		}
		if err != nil {
			t.Fatalf("batch=%v: %v", batch, err)
		}
		if err := ctx.Spill.Sweep(); err != nil {
			t.Fatal(err)
		}
		return relRows(rel), ctx.Cluster.Acct().Snapshot()
	}
	brows, bsnap := run(true)
	srows, ssnap := run(false)
	if bsnap.SpillBytes == 0 {
		t.Fatal("budget did not force spilling; test is vacuous")
	}
	if bsnap != ssnap {
		t.Errorf("counters diverged\nbatch:  %+v\nstream: %+v", bsnap, ssnap)
	}
	if len(brows) != len(srows) {
		t.Fatalf("row count diverged: %d vs %d", len(brows), len(srows))
	}
	for i := range brows {
		if brows[i] != srows[i] {
			t.Fatalf("row %d diverged: %s vs %s", i, brows[i], srows[i])
		}
	}
}

// TestStreamSpillMatchesBatch runs the real-spill DHHJ in both modes under
// a budget forcing eviction: identical rows and identical spill metering,
// with the streaming probe arriving chunk-by-chunk.
func TestStreamSpillMatchesBatch(t *testing.T) {
	leakcheck.Check(t)
	withChunkCap(t, 7)
	type res struct {
		rows []string
		snap cluster.Snapshot
	}
	run := func(batch bool) res {
		ctx := testCtx(t, 2)
		ctx.Batch = batch
		register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(4000, 64))
		dim := make([][]int64, 64)
		for i := range dim {
			dim[i] = []int64{int64(i), int64(i * 3)}
		}
		register(t, ctx, "dim", []string{"id"}, []string{"id", "attr"}, dim)
		fact, _ := ctx.Catalog.Get("fact")
		ctx.Cluster.SetMemoryPerNodeBytes(fact.ByteSize() / int64(2*8)) // 1/8 of per-node build bytes
		ctx.Spill = storage.NewSpillManager(t.TempDir(), "pipe_")
		ctx.Grant = ctx.Cluster.Governor().Grant()
		defer ctx.Grant.Close()
		var rel *Relation
		var err error
		if batch {
			var f, d *Relation
			f, err = ScanByName(ctx, "fact", "f", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			d, err = ScanByName(ctx, "dim", "d", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			rel, err = HashJoin(ctx, f, d, []string{"f.fk"}, []string{"d.id"}, true)
		} else {
			fds, _ := ctx.Catalog.Get("fact")
			dds, _ := ctx.Catalog.Get("dim")
			rel, err = collectStream(ctx.Cluster.Nodes(), func(mk SinkFactory) error {
				fsrc, serr := ScanSource(ctx, fds, "f", nil, nil)
				if serr != nil {
					return serr
				}
				dsrc, serr := ScanSource(ctx, dds, "d", nil, nil)
				if serr != nil {
					return serr
				}
				// fact (left) builds and spills; dim probes chunk-by-chunk.
				return HashJoinStreamSources(ctx, fsrc, dsrc, []string{"f.fk"}, []string{"d.id"}, true, mk)
			})
		}
		if err != nil {
			t.Fatalf("batch=%v: %v", batch, err)
		}
		if err := ctx.Spill.Sweep(); err != nil {
			t.Fatal(err)
		}
		return res{rows: relRows(rel), snap: ctx.Cluster.Acct().Snapshot()}
	}
	b, s := run(true), run(false)
	if b.snap.SpillBytes == 0 {
		t.Fatal("budget did not force spilling; test is vacuous")
	}
	if b.snap != s.snap {
		t.Errorf("counters diverged\nbatch:  %+v\nstream: %+v", b.snap, s.snap)
	}
	if len(b.rows) != len(s.rows) {
		t.Fatalf("row count diverged: %d vs %d", len(b.rows), len(s.rows))
	}
	for i := range b.rows {
		if b.rows[i] != s.rows[i] {
			t.Fatalf("row %d diverged: %s vs %s", i, b.rows[i], s.rows[i])
		}
	}
}

// TestForEachPartBoundedWorkers pins the worker-pool contract: concurrency
// never exceeds GOMAXPROCS, partitions are claimed in index order
// (work-conserving — a freed worker immediately takes the next pending
// partition), and a skewed partition set still completes with every
// partition executed exactly once.
func TestForEachPartBoundedWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	const nparts = 64
	var inFlight, peak atomic.Int64
	var started atomic.Int64
	ran := make([]atomic.Int64, nparts)
	starts := make([]int64, nparts) // start sequence per partition
	err := forEachPart(nparts, func(p int) error {
		cur := inFlight.Add(1)
		for {
			pk := peak.Load()
			if cur <= pk || peak.CompareAndSwap(pk, cur) {
				break
			}
		}
		starts[p] = started.Add(1)
		ran[p].Add(1)
		if p == 0 {
			time.Sleep(20 * time.Millisecond) // skew: one giant partition
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrency %d exceeds GOMAXPROCS=2", got)
	}
	for p := range ran {
		if ran[p].Load() != 1 {
			t.Errorf("partition %d ran %d times", p, ran[p].Load())
		}
	}
	// Work-conserving index order: partition p's start sequence can trail
	// its index by at most the pool size (workers claim indices from a
	// shared counter), so sequence numbers grow with partition index.
	for p := 1; p < nparts; p++ {
		if starts[p] < starts[p-1]-2 {
			t.Errorf("partition %d started at seq %d, before partition %d at %d", p, starts[p], p-1, starts[p-1])
		}
	}
}

// TestForEachPartSerialOnOneProc: a 64-partition layout on a 1-proc box
// runs serially in the calling goroutine, still completing every partition.
func TestForEachPartSerialOnOneProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var order []int
	err := forEachPart(64, func(p int) error {
		order = append(order, p) // no locking needed: serial path
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 64 {
		t.Fatalf("ran %d partitions", len(order))
	}
	for p, got := range order {
		if got != p {
			t.Fatalf("serial path ran partition %d at position %d", got, p)
		}
	}
}
