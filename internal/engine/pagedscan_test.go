package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// pagedCopy converts ctx's resident dataset name into a paged twin on a
// second context, backed by page files of rowsPerPage under a cache of
// cacheBytes.
func pagedCopy(t *testing.T, ctx *Context, name string, rowsPerPage int, cacheBytes int64) *Context {
	t.Helper()
	ds, ok := ctx.Catalog.Get(name)
	if !ok {
		t.Fatalf("dataset %q missing", name)
	}
	dir := t.TempDir()
	if err := storage.WritePaged(dir, ds, ctx.Catalog.Stats().Get(name), rowsPerPage); err != nil {
		t.Fatal(err)
	}
	var cache *storage.PageCache
	if cacheBytes > 0 {
		cache = storage.NewPageCache(cacheBytes)
	}
	pds, pst, err := storage.OpenPaged(dir, name, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	pctx := testCtx(t, ctx.Cluster.Nodes())
	pctx.ChunkRows = ctx.ChunkRows
	pctx.PageStats = &storage.PageScanStats{}
	if err := pctx.Catalog.Register(pds, pst); err != nil {
		t.Fatal(err)
	}
	return pctx
}

func sortedRelRows(rel *Relation) []string {
	var out []string
	for _, part := range rel.Parts {
		for _, r := range part {
			out = append(out, fmt.Sprint(r))
		}
	}
	sort.Strings(out)
	return out
}

// TestPagedScanChunkStraddlesPages sweeps chunk capacity against page
// granularity — chunks smaller than a page, equal, larger, and mutually
// prime — over plain, filtered, and projected scans. Paged rows must match
// the resident scan exactly in every combination: page boundaries are a
// storage detail the chunk spine never observes.
func TestPagedScanChunkStraddlesPages(t *testing.T) {
	rows := seqTable(530, 10) // not a multiple of any page size below
	filter := &expr.Compare{
		Op: expr.CmpLt,
		L:  &expr.Column{Qualifier: "a", Name: "grp"},
		R:  &expr.Literal{Val: types.Int(4)},
	}
	for _, chunkRows := range []int{1, 3, 64, 4096} {
		for _, pageRows := range []int{1, 7, 64, 256} {
			t.Run(fmt.Sprintf("chunk%d/page%d", chunkRows, pageRows), func(t *testing.T) {
				ctx := testCtx(t, 3)
				ctx.ChunkRows = chunkRows
				register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, rows)
				pctx := pagedCopy(t, ctx, "t", pageRows, 1<<14)

				for _, tc := range []struct {
					name    string
					filter  expr.Expr
					project []string
				}{
					{"full", nil, nil},
					{"filtered", filter, nil},
					{"projected", nil, []string{"pay", "id"}},
					{"filtered-projected", filter, []string{"pay"}},
				} {
					want, err := ScanByName(ctx, "t", "a", tc.filter, tc.project)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ScanByName(pctx, "t", "a", tc.filter, tc.project)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(sortedRelRows(got), sortedRelRows(want)) {
						t.Errorf("%s: paged rows diverged from resident (chunk %d, page %d)",
							tc.name, chunkRows, pageRows)
					}
					if !reflect.DeepEqual(got.Schema, want.Schema) {
						t.Errorf("%s: schema diverged", tc.name)
					}
				}
			})
		}
	}
}

// TestPagedScanPrunesWholePages: a selective range filter over the
// partition-ordered id column must skip pages whose zone maps exclude it,
// without losing a single passing row.
func TestPagedScanPrunesWholePages(t *testing.T) {
	ctx := testCtx(t, 1) // one partition keeps ids contiguous per page
	ctx.ChunkRows = 32
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(1000, 10))
	pctx := pagedCopy(t, ctx, "t", 50, 1<<14)
	filter := &expr.Between{
		X:  &expr.Column{Qualifier: "a", Name: "id"},
		Lo: &expr.Literal{Val: types.Int(100)},
		Hi: &expr.Literal{Val: types.Int(149)},
	}
	rel, err := ScanByName(pctx, "t", "a", filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() != 50 {
		t.Errorf("rows = %d, want 50", rel.RowCount())
	}
	st := pctx.PageStats
	if st.PagesTotal.Load() != 20 {
		t.Errorf("PagesTotal = %d, want 20", st.PagesTotal.Load())
	}
	// Ids 100-149 span exactly one 50-row page; every other page must prune.
	if st.PagesPruned.Load() != 19 {
		t.Errorf("PagesPruned = %d, want 19", st.PagesPruned.Load())
	}
	if st.PagesRead.Load() != 1 {
		t.Errorf("PagesRead = %d, want 1", st.PagesRead.Load())
	}
}
