package engine

import (
	"math/rand"
	"sort"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/expr"
	"dynopt/internal/types"
)

func semCtx(nodes int) *Context {
	return &Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
}

// mixedKey draws join-key values across kinds, biased so int/float numeric
// equivalence (3 joins 3.0), NULL=NULL matching, and cross-kind misses all
// occur.
func mixedKey(r *rand.Rand) types.Value {
	k := int64(r.Intn(8))
	switch r.Intn(5) {
	case 0:
		return types.Int(k)
	case 1:
		return types.Float(float64(k))
	case 2:
		return types.Str(string(rune('a' + k)))
	case 3:
		return types.Bool(k%2 == 0)
	default:
		return types.Null()
	}
}

func mixedRelation(r *rand.Rand, alias string, rows, nparts int) *Relation {
	sch := types.NewSchema(
		types.Field{Qualifier: alias, Name: "k", Kind: types.KindInt},
		types.Field{Qualifier: alias, Name: "payload", Kind: types.KindInt},
	)
	rel := &Relation{Schema: sch, Parts: make([][]types.Tuple, nparts)}
	for i := 0; i < rows; i++ {
		t := types.Tuple{mixedKey(r), types.Int(int64(i))}
		p := r.Intn(nparts)
		rel.Parts[p] = append(rel.Parts[p], t)
	}
	return rel
}

// nlReferenceJoin is the trivially correct nested-loop join: every left row
// against every right row, keys compared with the engine's own equality.
func nlReferenceJoin(left, right *Relation, lCols, rCols []int) []string {
	var out []string
	for _, lp := range left.Parts {
		for _, lt := range lp {
			for _, rp := range right.Parts {
				for _, rt := range rp {
					if lt.KeysEqual(lCols, rt, rCols) {
						out = append(out, lt.Concat(rt).String())
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func gatherSorted(rel *Relation) []string {
	var out []string
	for _, p := range rel.Parts {
		for _, t := range p {
			out = append(out, t.String())
		}
	}
	sort.Strings(out)
	return out
}

func equalMultisets(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, reference has %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: %s != %s", name, i, got[i], want[i])
		}
	}
}

// Property: HashJoin and BroadcastJoin agree with the nested-loop reference
// join, as sorted multisets, across mixed-kind keys and both build sides —
// the inline hash and the flat build table must preserve exactly the
// KeysEqual match semantics, including 3 ⋈ 3.0 and NULL ⋈ NULL.
func TestJoinsMatchNestedLoopReferenceMixedKinds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		nparts := 1 + r.Intn(4)
		left := mixedRelation(r, "l", 40+r.Intn(80), nparts)
		right := mixedRelation(r, "r", 40+r.Intn(80), nparts)
		lCols := []int{0}
		rCols := []int{0}
		want := nlReferenceJoin(left, right, lCols, rCols)
		for _, buildLeft := range []bool{true, false} {
			hj, err := HashJoin(semCtx(nparts), left, right, []string{"l.k"}, []string{"r.k"}, buildLeft)
			if err != nil {
				t.Fatal(err)
			}
			equalMultisets(t, "HashJoin", gatherSorted(hj), want)
			bj, err := BroadcastJoin(semCtx(nparts), left, right, []string{"l.k"}, []string{"r.k"}, buildLeft)
			if err != nil {
				t.Fatal(err)
			}
			equalMultisets(t, "BroadcastJoin", gatherSorted(bj), want)
		}
	}
}

// Composite keys exercise the multi-column prehash combine and the
// exact-key verification behind a full-hash match.
func TestHashJoinCompositeMixedKindKeys(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	nparts := 3
	mk := func(alias string, rows int) *Relation {
		sch := types.NewSchema(
			types.Field{Qualifier: alias, Name: "k1", Kind: types.KindInt},
			types.Field{Qualifier: alias, Name: "k2", Kind: types.KindInt},
			types.Field{Qualifier: alias, Name: "payload", Kind: types.KindInt},
		)
		rel := &Relation{Schema: sch, Parts: make([][]types.Tuple, nparts)}
		for i := 0; i < rows; i++ {
			t := types.Tuple{mixedKey(r), mixedKey(r), types.Int(int64(i))}
			rel.Parts[r.Intn(nparts)] = append(rel.Parts[r.Intn(nparts)], t)
		}
		return rel
	}
	left := mk("l", 120)
	right := mk("r", 120)
	want := nlReferenceJoin(left, right, []int{0, 1}, []int{0, 1})
	got, err := HashJoin(semCtx(nparts), left, right,
		[]string{"l.k1", "l.k2"}, []string{"r.k1", "r.k2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	equalMultisets(t, "HashJoin composite", gatherSorted(got), want)
}
