package engine

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// testCtx builds a context with a fresh catalog on an n-node cluster,
// honoring any chunk capacity installed by withChunkCap.
func testCtx(t *testing.T, nodes int) *Context {
	t.Helper()
	return &Context{
		Cluster:   cluster.New(nodes),
		Catalog:   catalog.New(),
		UDFs:      expr.NewRegistry(),
		Params:    map[string]types.Value{},
		ChunkRows: testChunkRows,
	}
}

func intSchema(cols ...string) *types.Schema {
	s := &types.Schema{}
	for _, c := range cols {
		s.Fields = append(s.Fields, types.Field{Name: c, Kind: types.KindInt})
	}
	return s
}

// register builds and registers a dataset of rows (each row a []int64).
func register(t *testing.T, ctx *Context, name string, pk []string, cols []string, rows [][]int64) *storage.Dataset {
	t.Helper()
	tuples := make([]types.Tuple, len(rows))
	for i, r := range rows {
		tu := make(types.Tuple, len(r))
		for j, v := range r {
			tu[j] = types.Int(v)
		}
		tuples[i] = tu
	}
	ds, st, err := storage.Build(name, intSchema(cols...), pk, tuples, ctx.Cluster.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Catalog.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	return ds
}

// seqTable makes n rows of (id, id%k, payload).
func seqTable(n, k int) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % k), int64(i * 10)}
	}
	return rows
}

func TestScanFull(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(100, 10))
	rel, err := ScanByName(ctx, "t", "a", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() != 100 {
		t.Errorf("rows = %d", rel.RowCount())
	}
	if rel.Schema.Fields[0].QName() != "a.id" {
		t.Errorf("schema not qualified: %s", rel.Schema)
	}
	if rel.PartCols == nil || rel.PartCols[0] != 0 {
		t.Errorf("PartCols = %v, want [0] (pk survives)", rel.PartCols)
	}
	acct := ctx.Cluster.Acct().Snapshot()
	if acct.ScanRows != 100 || acct.ScanBytes != 100*27 {
		t.Errorf("scan metering = %+v", acct)
	}
}

func TestScanFilterProject(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(100, 10))
	filter := &expr.Compare{Op: expr.CmpEq, L: &expr.Column{Qualifier: "a", Name: "grp"}, R: &expr.Literal{Val: types.Int(3)}}
	rel, err := ScanByName(ctx, "t", "a", filter, []string{"id", "grp"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() != 10 {
		t.Errorf("filtered rows = %d", rel.RowCount())
	}
	if rel.Schema.Len() != 2 {
		t.Errorf("projected schema = %s", rel.Schema)
	}
	// id survives projection, so pk partitioning is preserved.
	if rel.PartCols == nil {
		t.Error("PartCols lost despite pk in projection")
	}
	// Project away the pk: partitioning knowledge must drop.
	rel2, err := ScanByName(ctx, "t", "a", nil, []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	if rel2.PartCols != nil {
		t.Errorf("PartCols = %v after pk projected away", rel2.PartCols)
	}
}

func TestScanUnknownDataset(t *testing.T) {
	ctx := testCtx(t, 2)
	if _, err := ScanByName(ctx, "nope", "a", nil, nil); err == nil {
		t.Error("unknown dataset did not error")
	}
}

func TestScanBadProjection(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"id"}, [][]int64{{1}})
	if _, err := ScanByName(ctx, "t", "a", nil, []string{"zz"}); err == nil {
		t.Error("bad projection did not error")
	}
}

func TestScanTempMetersMatRead(t *testing.T) {
	ctx := testCtx(t, 2)
	ds := register(t, ctx, "t", nil, []string{"id"}, [][]int64{{1}, {2}})
	ds.Temp = true
	before := ctx.Cluster.Acct().Snapshot()
	if _, err := ScanByName(ctx, "t", "a", nil, nil); err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	if d.MatReadRows != 2 || d.ScanRows != 0 {
		t.Errorf("temp scan metering = %+v", d)
	}
}

func joinKeys(alias, field string) []string { return []string{alias + "." + field} }

func TestHashJoinBasic(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 10))
	dimRows := make([][]int64, 10)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i * 100), 0}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	fact, _ := ScanByName(ctx, "fact", "f", nil, nil)
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	out, err := HashJoin(ctx, fact, dim, joinKeys("f", "fk"), joinKeys("d", "id"), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowCount() != 100 {
		t.Errorf("join rows = %d, want 100 (FK join)", out.RowCount())
	}
	if out.Schema.Len() != 6 {
		t.Errorf("join schema = %s", out.Schema)
	}
	// Verify a few rows: f.fk must equal d.id.
	fkIdx := out.Schema.MustIndex("f.fk")
	idIdx := out.Schema.MustIndex("d.id")
	for _, p := range out.Parts {
		for _, row := range p {
			if !row[fkIdx].Equal(row[idIdx]) {
				t.Fatalf("bad join row %v", row)
			}
		}
	}
	acct := ctx.Cluster.Acct().Snapshot()
	if acct.ShuffleRows == 0 {
		t.Error("hash join shuffled nothing")
	}
	if acct.BuildRows == 0 || acct.ProbeRows == 0 {
		t.Error("build/probe not metered")
	}
}

func TestHashJoinBuildSideChoice(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "p"}, seqTable(100, 10))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "p"}, seqTable(10, 10))
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "id"), joinKeys("b", "id"), false); err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	if d.BuildRows != 10 || d.ProbeRows != 100 {
		t.Errorf("buildLeft=false: build=%d probe=%d", d.BuildRows, d.ProbeRows)
	}
	before = ctx.Cluster.Acct().Snapshot()
	if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "id"), joinKeys("b", "id"), true); err != nil {
		t.Fatal(err)
	}
	d = ctx.Cluster.Acct().Snapshot().Sub(before)
	if d.BuildRows != 100 || d.ProbeRows != 10 {
		t.Errorf("buildLeft=true: build=%d probe=%d", d.BuildRows, d.ProbeRows)
	}
}

func TestHashJoinPrePartitionedSkipsShuffle(t *testing.T) {
	ctx := testCtx(t, 4)
	// Both datasets partitioned on their join keys (pk).
	register(t, ctx, "a", []string{"id"}, []string{"id", "x", "y"}, seqTable(64, 8))
	register(t, ctx, "b", []string{"id"}, []string{"id", "x", "y"}, seqTable(64, 8))
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	out, err := HashJoin(ctx, ra, rb, joinKeys("a", "id"), joinKeys("b", "id"), false)
	if err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	if d.ShuffleRows != 0 {
		t.Errorf("pre-partitioned join shuffled %d rows", d.ShuffleRows)
	}
	if out.RowCount() != 64 {
		t.Errorf("join rows = %d", out.RowCount())
	}
}

func TestHashJoinCompositeKeys(t *testing.T) {
	ctx := testCtx(t, 4)
	rows := [][]int64{{1, 1, 10}, {1, 2, 20}, {2, 1, 30}, {2, 2, 40}}
	register(t, ctx, "s", []string{"c", "i"}, []string{"c", "i", "v"}, rows)
	register(t, ctx, "r", []string{"c", "i"}, []string{"c", "i", "w"}, rows[:3])
	rs, _ := ScanByName(ctx, "s", "s", nil, nil)
	rr, _ := ScanByName(ctx, "r", "r", nil, nil)
	out, err := HashJoin(ctx, rs, rr,
		[]string{"s.c", "s.i"}, []string{"r.c", "r.i"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowCount() != 3 {
		t.Errorf("composite join rows = %d, want 3", out.RowCount())
	}
}

func TestHashJoinErrors(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", nil, []string{"x"}, [][]int64{{1}})
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	if _, err := HashJoin(ctx, ra, ra, nil, nil, false); err == nil {
		t.Error("empty keys did not error")
	}
	if _, err := HashJoin(ctx, ra, ra, []string{"a.x"}, []string{"a.zz"}, false); err == nil {
		t.Error("bad key did not error")
	}
	if _, err := HashJoin(ctx, ra, ra, []string{"a.x", "a.x"}, []string{"a.x"}, false); err == nil {
		t.Error("misaligned keys did not error")
	}
	mismatch := &Relation{Schema: ra.Schema, Parts: make([][]types.Tuple, 5)}
	if _, err := HashJoin(ctx, ra, mismatch, []string{"a.x"}, []string{"a.x"}, false); err == nil {
		t.Error("partition mismatch did not error")
	}
}

func TestBroadcastJoinNoProbeShuffle(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(200, 10))
	dimRows := make([][]int64, 10)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i), 0}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	fact, _ := ScanByName(ctx, "fact", "f", nil, nil)
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	out, err := BroadcastJoin(ctx, fact, dim, joinKeys("f", "fk"), joinKeys("d", "id"), false)
	if err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	if out.RowCount() != 200 {
		t.Errorf("join rows = %d", out.RowCount())
	}
	if d.ShuffleRows != 0 {
		t.Errorf("broadcast join shuffled %d rows", d.ShuffleRows)
	}
	if d.BroadcastRows != 10*3 {
		t.Errorf("broadcast rows = %d, want 30 (10 rows × 3 other nodes)", d.BroadcastRows)
	}
	// Probe side partitioning must survive (fact pk at offset 0).
	if out.PartCols == nil || out.PartCols[0] != 0 {
		t.Errorf("probe partitioning lost: %v", out.PartCols)
	}
}

func TestBroadcastJoinBuildLeft(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(50, 5))
	dimRows := make([][]int64, 5)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i), 0}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	fact, _ := ScanByName(ctx, "fact", "f", nil, nil)
	// dim on the left, broadcast it (buildLeft=true).
	out, err := BroadcastJoin(ctx, dim, fact, joinKeys("d", "id"), joinKeys("f", "fk"), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowCount() != 50 {
		t.Errorf("join rows = %d", out.RowCount())
	}
	// Output orientation: left (dim) first.
	if out.Schema.Fields[0].QName() != "d.id" {
		t.Errorf("schema orientation: %s", out.Schema)
	}
	// Probe (fact) partitioning survives at offset len(dim schema).
	if out.PartCols == nil || out.PartCols[0] != 3 {
		t.Errorf("PartCols = %v, want [3]", out.PartCols)
	}
}

func TestIndexNLJoin(t *testing.T) {
	ctx := testCtx(t, 4)
	factDS := register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(200, 20))
	if _, err := storage.BuildIndex(factDS, "fk"); err != nil {
		t.Fatal(err)
	}
	dimRows := [][]int64{{3, 30, 0}, {7, 70, 0}} // filtered dimension: 2 rows
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	out, err := IndexNLJoin(ctx, dim, factDS, "f", joinKeys("d", "id"), []string{"fk"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := ctx.Cluster.Acct().Snapshot().Sub(before)
	// Each dim id matches 200/20 = 10 fact rows.
	if out.RowCount() != 20 {
		t.Errorf("INLJ rows = %d, want 20", out.RowCount())
	}
	if d.IndexLookups != 2*4 {
		t.Errorf("index lookups = %d, want 8 (2 outer rows × 4 partitions)", d.IndexLookups)
	}
	if d.ScanRows != 0 {
		t.Errorf("INLJ scanned %d rows, want 0 (index access only)", d.ScanRows)
	}
	if d.BroadcastRows != 2*3 {
		t.Errorf("broadcast rows = %d", d.BroadcastRows)
	}
	// Orientation: outer first.
	if out.Schema.Fields[0].QName() != "d.id" {
		t.Errorf("schema = %s", out.Schema)
	}
}

func TestIndexNLJoinResidualFilter(t *testing.T) {
	ctx := testCtx(t, 2)
	factDS := register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 10))
	if _, err := storage.BuildIndex(factDS, "fk"); err != nil {
		t.Fatal(err)
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, [][]int64{{3, 0, 0}})
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	// Residual predicate on the inner: pay >= 500.
	filter := &expr.Compare{Op: expr.CmpGe, L: &expr.Column{Qualifier: "f", Name: "pay"}, R: &expr.Literal{Val: types.Int(500)}}
	out, err := IndexNLJoin(ctx, dim, factDS, "f", joinKeys("d", "id"), []string{"fk"}, filter)
	if err != nil {
		t.Fatal(err)
	}
	// fk=3 matches ids 3,13,...,93 (10 rows); pay = id*10 >= 500 keeps 53..93 → 5 rows.
	if out.RowCount() != 5 {
		t.Errorf("filtered INLJ rows = %d, want 5", out.RowCount())
	}
}

func TestIndexNLJoinNoIndexErrors(t *testing.T) {
	ctx := testCtx(t, 2)
	factDS := register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(10, 2))
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, [][]int64{{1, 0, 0}})
	dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
	if _, err := IndexNLJoin(ctx, dim, factDS, "f", joinKeys("d", "id"), []string{"fk"}, nil); err == nil {
		t.Error("missing index did not error")
	}
}

// referenceJoin is a naive nested-loop join used as the equivalence oracle.
func referenceJoin(left, right *Relation, lKeys, rKeys []string) (map[string]int, error) {
	lCols, err := resolveKeys(left.Schema, lKeys)
	if err != nil {
		return nil, err
	}
	rCols, err := resolveKeys(right.Schema, rKeys)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	var lAll, rAll []types.Tuple
	for _, p := range left.Parts {
		lAll = append(lAll, p...)
	}
	for _, p := range right.Parts {
		rAll = append(rAll, p...)
	}
	for _, lt := range lAll {
		for _, rt := range rAll {
			if lt.KeysEqual(lCols, rt, rCols) {
				out[lt.Concat(rt).String()]++
			}
		}
	}
	return out, nil
}

func relMultiset(rel *Relation) map[string]int {
	out := map[string]int{}
	for _, p := range rel.Parts {
		for _, t := range p {
			out[t.String()]++
		}
	}
	return out
}

func multisetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// All three join algorithms must produce the same multiset of rows as the
// naive nested-loop oracle, across partition counts and skew — the core
// correctness property of the engine.
func TestJoinAlgorithmEquivalence(t *testing.T) {
	for _, nodes := range []int{1, 3, 4} {
		for _, skew := range []int{2, 7, 50} {
			t.Run(fmt.Sprintf("nodes=%d skew=%d", nodes, skew), func(t *testing.T) {
				ctx := testCtx(t, nodes)
				factDS := register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(120, skew))
				if _, err := storage.BuildIndex(factDS, "fk"); err != nil {
					t.Fatal(err)
				}
				dimRows := make([][]int64, skew)
				for i := range dimRows {
					dimRows[i] = []int64{int64(i), int64(i * 2), 0}
				}
				register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)

				fact, _ := ScanByName(ctx, "fact", "f", nil, nil)
				dim, _ := ScanByName(ctx, "dim", "d", nil, nil)
				want, err := referenceJoin(fact, dim, joinKeys("f", "fk"), joinKeys("d", "id"))
				if err != nil {
					t.Fatal(err)
				}

				hj, err := HashJoin(ctx, fact, dim, joinKeys("f", "fk"), joinKeys("d", "id"), false)
				if err != nil {
					t.Fatal(err)
				}
				if !multisetsEqual(relMultiset(hj), want) {
					t.Error("hash join != reference")
				}

				fact2, _ := ScanByName(ctx, "fact", "f", nil, nil)
				dim2, _ := ScanByName(ctx, "dim", "d", nil, nil)
				bj, err := BroadcastJoin(ctx, fact2, dim2, joinKeys("f", "fk"), joinKeys("d", "id"), false)
				if err != nil {
					t.Fatal(err)
				}
				if !multisetsEqual(relMultiset(bj), want) {
					t.Error("broadcast join != reference")
				}

				dim3, _ := ScanByName(ctx, "dim", "d", nil, nil)
				inlj, err := IndexNLJoin(ctx, dim3, factDS, "f", joinKeys("d", "id"), []string{"fk"}, nil)
				if err != nil {
					t.Fatal(err)
				}
				// INLJ emits d⧺f; reorder reference keys to compare.
				want2, err := referenceJoin(dim3, fact, joinKeys("d", "id"), joinKeys("f", "fk"))
				if err != nil {
					t.Fatal(err)
				}
				if !multisetsEqual(relMultiset(inlj), want2) {
					t.Error("index NL join != reference")
				}
			})
		}
	}
}

// TestForEachPartErrorPropagation checks the partition-parallel driver runs
// fn for every partition even when some fail, and reports the failure of
// the lowest-numbered failing partition deterministically.
func TestForEachPartErrorPropagation(t *testing.T) {
	var ran [8]atomic.Bool
	err := forEachPart(8, func(p int) error {
		ran[p].Store(true)
		if p == 3 || p == 6 {
			return fmt.Errorf("partition %d failed", p)
		}
		return nil
	})
	if err == nil || err.Error() != "partition 3 failed" {
		t.Errorf("err = %v, want the lowest failing partition's error", err)
	}
	for p := range ran {
		if !ran[p].Load() {
			t.Errorf("partition %d did not run", p)
		}
	}
	if err := forEachPart(4, func(p int) error { return nil }); err != nil {
		t.Errorf("all-success returned %v", err)
	}
	if err := forEachPart(0, func(p int) error { return fmt.Errorf("never") }); err != nil {
		t.Errorf("zero partitions returned %v", err)
	}
}
