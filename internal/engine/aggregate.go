package engine

import (
	"fmt"
	"strings"

	"dynopt/internal/expr"
	"dynopt/internal/sqlpp"
	"dynopt/internal/types"
)

// aggKind enumerates the supported aggregate functions.
type aggKind int

const (
	aggNone aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// aggOf recognizes an aggregate call in a SELECT item: one of
// count/sum/avg/min/max over a single argument expression.
func aggOf(e expr.Expr) (aggKind, expr.Expr) {
	c, ok := e.(*expr.Call)
	if !ok || len(c.Args) != 1 {
		return aggNone, nil
	}
	switch strings.ToLower(c.Name) {
	case "count":
		return aggCount, c.Args[0]
	case "sum":
		return aggSum, c.Args[0]
	case "avg":
		return aggAvg, c.Args[0]
	case "min":
		return aggMin, c.Args[0]
	case "max":
		return aggMax, c.Args[0]
	default:
		return aggNone, nil
	}
}

// hasAggregates reports whether any SELECT item is an aggregate call.
func hasAggregates(items []sqlpp.SelectItem) bool {
	for _, s := range items {
		if k, _ := aggOf(s.Expr); k != aggNone {
			return true
		}
	}
	return false
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count int64
	sum   float64
	min   types.Value
	max   types.Value
	any   bool
}

func (a *aggState) observe(v types.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	if f, ok := v.AsFloat(); ok {
		a.sum += f
	}
	if !a.any {
		a.min, a.max = v, v
		a.any = true
		return
	}
	if v.Compare(a.min) < 0 {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(kind aggKind) types.Value {
	switch kind {
	case aggCount:
		return types.Int(a.count)
	case aggSum:
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sum)
	case aggAvg:
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sum / float64(a.count))
	case aggMin:
		if !a.any {
			return types.Null()
		}
		return a.min
	case aggMax:
		if !a.any {
			return types.Null()
		}
		return a.max
	default:
		return types.Null()
	}
}

// finishAggregate evaluates a SELECT list containing aggregate calls: the
// relation's partitions stream in order through the grouping table (one
// global group when GROUP BY is absent — no gathered coordinator copy is
// built), aggregates accumulate per group, and non-aggregate items are
// evaluated on the group's first row (they must be functionally dependent
// on the grouping keys, which the evaluation queries guarantee). ORDER BY
// and LIMIT then apply to the grouped output, with order keys likewise
// taken from the group's first row.
func finishAggregate(ctx *Context, q *sqlpp.Query, rel *Relation) (*Result, error) {
	env := ctx.Env(rel.Schema)
	res := &Result{}
	type sel struct {
		kind aggKind
		arg  expr.Expr // aggregate argument (kind != aggNone)
		raw  expr.Expr // plain expression (kind == aggNone)
	}
	sels := make([]sel, len(q.Select))
	for i, s := range q.Select {
		kind, arg := aggOf(s.Expr)
		sels[i] = sel{kind: kind, arg: arg, raw: s.Expr}
		name := s.Alias
		if name == "" {
			name = s.Expr.SQL()
		}
		res.Columns = append(res.Columns, name)
	}

	type group struct {
		first types.Tuple
		aggs  []aggState
	}
	groups := map[string]*group{}
	var order []string
	// Hash-aggregate state grows one entry per distinct group; meter that
	// growth against the query's memory grant so unbounded GROUP BYs are
	// visible to the governor (released when aggregation completes — the
	// grouped output replaces the table).
	const aggStateBytes = 48 // approximate per-aggregate accumulator footprint
	var groupBytes int64
	defer func() { ctx.Grant.Release(groupBytes) }()
	for _, part := range rel.Parts {
		for _, row := range part {
			var key strings.Builder
			for _, g := range q.GroupBy {
				v, err := g.Eval(row, env)
				if err != nil {
					return nil, err
				}
				key.WriteString(v.String())
				key.WriteByte('|')
			}
			k := key.String()
			grp, ok := groups[k]
			if !ok {
				grp = &group{first: row, aggs: make([]aggState, len(sels))}
				groups[k] = grp
				order = append(order, k)
				//dynopt:size-ok first row of a new group: the group table has no cached size, and only group-founding rows pay the walk
				sz := int64(row.EncodedSize()) + int64(len(k)) + int64(len(sels))*aggStateBytes
				groupBytes += sz
				ctx.Grant.Reserve(sz)
			}
			for i, s := range sels {
				if s.kind == aggNone {
					continue
				}
				v, err := s.arg.Eval(row, env)
				if err != nil {
					return nil, err
				}
				grp.aggs[i].observe(v)
			}
		}
	}

	type outRow struct {
		projected types.Tuple
		orderKeys types.Tuple
	}
	var out []outRow
	for _, k := range order {
		grp := groups[k]
		projected := make(types.Tuple, len(sels))
		for i, s := range sels {
			if s.kind != aggNone {
				projected[i] = grp.aggs[i].result(s.kind)
				continue
			}
			v, err := s.raw.Eval(grp.first, env)
			if err != nil {
				return nil, err
			}
			projected[i] = v
		}
		o := outRow{projected: projected}
		if len(q.OrderBy) > 0 {
			o.orderKeys = make(types.Tuple, len(q.OrderBy))
			for i, ob := range q.OrderBy {
				v, err := ob.Expr.Eval(grp.first, env)
				if err != nil {
					return nil, err
				}
				o.orderKeys[i] = v
			}
		}
		out = append(out, o)
	}
	if len(q.OrderBy) > 0 {
		less := func(a, b outRow) bool {
			for i, ob := range q.OrderBy {
				c := a.orderKeys[i].Compare(b.orderKeys[i])
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		}
		// Stable insertion sort: group counts at the coordinator are small.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && less(out[j], out[j-1]); j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	if q.Limit >= 0 && int64(len(out)) > q.Limit {
		out = out[:q.Limit]
	}
	res.Rows = make([]types.Tuple, len(out))
	for i, o := range out {
		res.Rows[i] = o.projected
	}
	return res, nil
}

// validateAggregateQuery rejects aggregates outside the SELECT list.
func validateAggregateQuery(q *sqlpp.Query) error {
	check := func(e expr.Expr, clause string) error {
		var err error
		e.Walk(func(n expr.Expr) {
			if k, _ := aggOf(n); k != aggNone && err == nil {
				err = fmt.Errorf("engine: aggregate in %s is not supported", clause)
			}
		})
		return err
	}
	for _, w := range q.Where {
		if err := check(w, "WHERE"); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if err := check(g, "GROUP BY"); err != nil {
			return err
		}
	}
	return nil
}
