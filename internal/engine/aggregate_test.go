package engine

import (
	"math"
	"testing"

	"dynopt/internal/sqlpp"
)

func aggCtx(t *testing.T) *Context {
	t.Helper()
	ctx := testCtx(t, 4)
	// 100 rows: grp = id%4, pay = id.
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(100, 4))
	return ctx
}

func runAgg(t *testing.T, ctx *Context, sql string) *Result {
	t.Helper()
	q, err := sqlpp.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ScanByName(ctx, "t", "a", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Finish(ctx, q, rel)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAggregateGlobalGroup(t *testing.T) {
	ctx := aggCtx(t)
	res := runAgg(t, ctx, "SELECT count(a.id) AS n, sum(a.pay) AS s, min(a.pay), max(a.pay), avg(a.id) FROM t AS a")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].I() != 100 {
		t.Errorf("count = %v", row[0])
	}
	// pay = id*10, sum = 10 * (0+..+99) = 49500.
	if f, _ := row[1].AsFloat(); f != 49500 {
		t.Errorf("sum = %v", row[1])
	}
	if mn, _ := row[2].AsFloat(); mn != 0 {
		t.Errorf("min = %v", row[2])
	}
	if mx, _ := row[3].AsFloat(); mx != 990 {
		t.Errorf("max = %v", row[3])
	}
	if av, _ := row[4].AsFloat(); math.Abs(av-49.5) > 1e-9 {
		t.Errorf("avg = %v", row[4])
	}
	if res.Columns[0] != "n" || res.Columns[1] != "s" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestAggregatePerGroup(t *testing.T) {
	ctx := aggCtx(t)
	res := runAgg(t, ctx, `SELECT a.grp, count(a.id) AS n, sum(a.pay) AS s
		FROM t AS a GROUP BY a.grp ORDER BY a.grp`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for g, row := range res.Rows {
		if row[0].I() != int64(g) {
			t.Errorf("group key order: %v", row)
		}
		if row[1].I() != 25 {
			t.Errorf("group %d count = %v", g, row[1])
		}
		// ids g, g+4, ..., g+96 → sum(pay) = 10*(25g + 4*(0+..+24)).
		want := float64(10 * (25*g + 4*300))
		if f, _ := row[2].AsFloat(); f != want {
			t.Errorf("group %d sum = %v, want %v", g, row[2], want)
		}
	}
}

func TestAggregateOrderDescLimit(t *testing.T) {
	ctx := aggCtx(t)
	res := runAgg(t, ctx, `SELECT a.grp, count(a.id) FROM t AS a
		GROUP BY a.grp ORDER BY a.grp DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I() != 3 || res.Rows[1][0].I() != 2 {
		t.Errorf("desc order: %v %v", res.Rows[0], res.Rows[1])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, nil)
	res := runAgg(t, ctx, "SELECT count(a.id), sum(a.pay), min(a.pay) FROM t AS a")
	// No groups at all without GROUP BY over empty input: zero rows is the
	// engine's contract (grouping produces no groups).
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	ctx := aggCtx(t)
	q, err := sqlpp.Parse("SELECT a.id FROM t AS a WHERE sum(a.pay) = 3")
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	if _, err := Finish(ctx, q, rel); err == nil {
		t.Error("aggregate in WHERE did not error")
	}
	q2, err := sqlpp.Parse("SELECT a.id FROM t AS a GROUP BY count(a.id)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finish(ctx, q2, rel); err == nil {
		t.Error("aggregate in GROUP BY did not error")
	}
}

func TestAggregateMixedWithUDFCallNotConfused(t *testing.T) {
	// myyear() is a plain (non-aggregate) call: the non-aggregate path must
	// handle it even in an aggregate query's non-agg items.
	ctx := testCtx(t, 2)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(20, 2))
	res := runAgg(t, ctx, "SELECT a.grp, count(a.id) FROM t AS a GROUP BY a.grp ORDER BY a.grp")
	if len(res.Rows) != 2 || res.Rows[0][1].I() != 10 {
		t.Errorf("rows = %v", res.Rows)
	}
}
