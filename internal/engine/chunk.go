package engine

import (
	"io"

	"dynopt/internal/types"
)

// This file defines the chunked streaming contracts of the stage pipeline.
// A stage runs scan→filter→project→exchange→probe→sink as one pull-driven
// pass over fixed-capacity tuple batches, so the probe side of a join is
// never materialized as a whole relation and the Sink never re-walks the
// join output. The build side of a hash join — and every materialized
// intermediate between re-optimization points — still lands in a Relation
// or Dataset: the paper's materialize-between-stages contract is the stage
// boundary, and streaming applies strictly within it.

// chunkCap is the row capacity of one pipeline chunk. Large enough to
// amortize per-chunk costs (channel handoff in the exchange, prehash calls)
// over a thousand rows, small enough that a chunk and its prehash/size
// sidecars stay cache-resident through the scatter→probe→sink pass. Tests
// shrink it to exercise chunk-boundary edges.
var chunkCap = 1024

// Chunk is one batch of tuples flowing through a stage pipeline, with
// optional sidecars the producer computed anyway: join-key prehashes
// (exchange scatter) and per-row encoded byte sizes (shuffle metering).
// A chunk handed out by a Cursor is valid only until the next Next call;
// consumers that retain rows copy the tuple headers (the values themselves
// live in arena or dataset storage and stay valid).
type Chunk struct {
	Rows   []types.Tuple
	Hashes []uint64 // key prehashes aligned with Rows, nil when not computed
	Sizes  []int64  // encoded byte sizes aligned with Rows, nil when not computed
}

// Cursor streams one partition's chunks. Next returns io.EOF at a clean
// end. A cursor is single-goroutine; cursors of different partitions may be
// pulled concurrently.
type Cursor interface {
	Next() (*Chunk, error)
}

// Source is a partitioned pull-based chunk producer — the streaming face of
// a relation or dataset scan. Schema and partitioning are known before any
// row is pulled, so joins can plan output shape and exchange skipping up
// front exactly as they do for materialized relations.
type Source interface {
	Schema() *types.Schema
	Parts() int
	// PartCols mirrors Relation.PartCols: the column offsets the stream is
	// hash-partitioned on, nil when unknown.
	PartCols() []int
	// PartBytesHint returns partition p's total encoded bytes when the
	// producer knows them without walking rows (cached dataset sizes), or
	// -1 when the consumer must sum per-row sizes itself.
	PartBytesHint(p int) int64
	// Open starts partition p's cursor. Each partition is opened at most
	// once per execution.
	Open(p int) (Cursor, error)
}

// Sink consumes one stage's output chunk-by-chunk. Emit is called from
// partition worker goroutines — concurrently across partitions, in output
// order within one partition — and must not retain rows beyond the call
// (it copies the tuple headers it keeps). The rows' value storage is
// arena-backed by the producing operator and stays valid.
type Sink interface {
	Emit(p int, rows []types.Tuple) error
}

// SinkFactory builds the stage's sink once the join has validated its
// inputs and knows the output schema and partitioning. Streaming joins call
// it exactly once before the first Emit.
type SinkFactory func(schema *types.Schema, partCols []int) (Sink, error)

// relationSink collects output chunks into partition slices — the adapter
// that lets the Relation-in/Relation-out join entry points run the
// streaming executors underneath.
type relationSink struct {
	parts [][]types.Tuple
}

func newRelationSink(nparts int) *relationSink {
	return &relationSink{parts: make([][]types.Tuple, nparts)}
}

func (s *relationSink) Emit(p int, rows []types.Tuple) error {
	s.parts[p] = append(s.parts[p], rows...)
	return nil
}

// RunToSink streams a source straight into a sink, partition-parallel —
// the fused scan→sink pipeline of a push-down stage: filter, projection,
// statistics observation, and write metering all happen in the one pass
// over each chunk.
func RunToSink(ctx *Context, src Source, sink Sink) error {
	return forEachPart(src.Parts(), func(p int) error {
		cur, err := src.Open(p)
		if err != nil {
			return err
		}
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := cur.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := sink.Emit(p, c.Rows); err != nil {
				return err
			}
		}
	})
}

// relationSource adapts a materialized Relation to the Source interface:
// cursors slide fixed-capacity windows over the partition slices, zero-copy.
type relationSource struct {
	rel *Relation
}

// SourceOf returns a streaming view over a materialized relation.
func SourceOf(rel *Relation) Source { return &relationSource{rel: rel} }

func (s *relationSource) Schema() *types.Schema { return s.rel.Schema }
func (s *relationSource) Parts() int            { return len(s.rel.Parts) }
func (s *relationSource) PartCols() []int       { return s.rel.PartCols }

// PartBytesHint reports cached sizes only: forcing the relation's lazy size
// pass here would re-add the whole-relation walk streaming exists to avoid.
// Consumers fall back to summing per-row sizes, which costs the same walk
// the batch path would have paid lazily.
func (s *relationSource) PartBytesHint(p int) int64 {
	return s.rel.sizes.PartIfKnown(p)
}

func (s *relationSource) Open(p int) (Cursor, error) {
	return &sliceCursor{rows: s.rel.Parts[p]}, nil
}

// sliceCursor windows an in-memory row slice into chunks.
type sliceCursor struct {
	rows []types.Tuple
	off  int
	c    Chunk
}

func (c *sliceCursor) Next() (*Chunk, error) {
	if c.off >= len(c.rows) {
		return nil, io.EOF
	}
	end := c.off + chunkCap
	if end > len(c.rows) {
		end = len(c.rows)
	}
	c.c = Chunk{Rows: c.rows[c.off:end]}
	c.off = end
	return &c.c, nil
}
