package engine

import (
	"io"

	"dynopt/internal/types"
)

// This file defines the chunked streaming contracts of the stage pipeline.
// A stage runs scan→filter→project→exchange→probe→sink as one pull-driven
// pass over fixed-capacity tuple batches, so the probe side of a join is
// never materialized as a whole relation and the Sink never re-walks the
// join output. The build side of a hash join — and every materialized
// intermediate between re-optimization points — still lands in a Relation
// or Dataset: the paper's materialize-between-stages contract is the stage
// boundary, and streaming applies strictly within it.

// defaultChunkRows is the default row capacity of one pipeline chunk. Large
// enough to amortize per-chunk costs (channel handoff in the exchange,
// prehash calls) over a thousand rows, small enough that a chunk and its
// prehash/size sidecars stay cache-resident through the scatter→probe→sink
// pass. Config.ChunkRows overrides it per DB, threaded here through
// Context.ChunkRows; tests shrink it to exercise chunk-boundary edges.
const defaultChunkRows = 1024

// chunkRows returns this execution's chunk capacity.
func (c *Context) chunkRows() int {
	if c.ChunkRows > 0 {
		return c.ChunkRows
	}
	return defaultChunkRows
}

// Chunk is one batch of tuples flowing through a stage pipeline, with
// optional sidecars the producer computed anyway: a selection vector, typed
// column vectors, join-key prehashes (exchange scatter), and per-row
// encoded byte sizes (shuffle metering). A chunk handed out by a Cursor is
// valid only until the next Next call; consumers that retain rows copy the
// tuple headers (the values themselves live in arena or dataset storage and
// stay valid).
//
// Selection semantics: when Sel is non-nil it lists the live row indexes
// into Rows, ascending — the fused scan filter marks rows instead of
// copying tuple headers. Hashes and Sizes always align with the LIVE rows
// (Hashes[k] belongs to Rows[Sel[k]]), so sidecar consumers never index
// through dead rows. Operators that need a dense slice flatten via the
// selection on output (RunToSink, the exchange producers); everything else
// iterates the selection in place.
type Chunk struct {
	Rows   []types.Tuple
	Sel    []int32  // live row indexes into Rows, ascending; nil = all rows live
	Hashes []uint64 // key prehashes aligned with live rows, nil when not computed
	Sizes  []int64  // encoded byte sizes aligned with live rows, nil when not computed
	// Cols serves typed column vectors over Rows (NOT selection-filtered:
	// vectors align with Rows, and consumers apply Sel themselves). Nil when
	// the producer has no columnar form; valid until the next Next call.
	Cols types.ColSource
}

// Live returns the number of live rows in the chunk.
func (c *Chunk) Live() int {
	if c.Sel != nil {
		return len(c.Sel)
	}
	return len(c.Rows)
}

// appendLive appends the chunk's live rows to dst in order.
func (c *Chunk) appendLive(dst []types.Tuple) []types.Tuple {
	if c.Sel == nil {
		return append(dst, c.Rows...)
	}
	for _, r := range c.Sel {
		dst = append(dst, c.Rows[r])
	}
	return dst
}

// chunkKeyHashes computes the chunk's join-key prehashes into dst (reused
// across chunks), aligned with the live rows. When the producer attached a
// columnar form and every key column gathers cleanly, the hash runs a
// column at a time (types.HashColsInto — bit-identical to the row form);
// Mixed columns or row-only chunks take the row path. String key columns
// decline too: gathering string headers costs more than the per-value kind
// dispatch the columnar fold saves, so row hashing wins there. vecs is
// caller-owned scratch for the gathered key vectors.
func chunkKeyHashes(c *Chunk, keyCols []int, dst []uint64, vecs []*types.ColVec) ([]uint64, []*types.ColVec) {
	if c.Cols != nil {
		vecs = vecs[:0]
		clean := true
		for _, kc := range keyCols {
			v := c.Cols.Col(kc)
			if v == nil || v.Mixed || v.Kind == types.KindString {
				clean = false
				break
			}
			vecs = append(vecs, v)
		}
		if clean {
			return types.HashColsInto(vecs, c.Sel, len(c.Rows), dst), vecs
		}
	}
	if c.Sel != nil {
		return types.HashKeysSelInto(c.Rows, c.Sel, keyCols, dst), vecs
	}
	return types.HashKeysInto(c.Rows, keyCols, dst), vecs
}

// Cursor streams one partition's chunks. Next returns io.EOF at a clean
// end. A cursor is single-goroutine; cursors of different partitions may be
// pulled concurrently.
type Cursor interface {
	Next() (*Chunk, error)
}

// Source is a partitioned pull-based chunk producer — the streaming face of
// a relation or dataset scan. Schema and partitioning are known before any
// row is pulled, so joins can plan output shape and exchange skipping up
// front exactly as they do for materialized relations.
type Source interface {
	Schema() *types.Schema
	Parts() int
	// PartCols mirrors Relation.PartCols: the column offsets the stream is
	// hash-partitioned on, nil when unknown.
	PartCols() []int
	// PartBytesHint returns partition p's total encoded bytes when the
	// producer knows them without walking rows (cached dataset sizes), or
	// -1 when the consumer must sum per-row sizes itself.
	PartBytesHint(p int) int64
	// Open starts partition p's cursor. Each partition is opened at most
	// once per execution.
	Open(p int) (Cursor, error)
}

// Sink consumes one stage's output chunk-by-chunk. Emit is called from
// partition worker goroutines — concurrently across partitions, in output
// order within one partition — and must not retain rows beyond the call
// (it copies the tuple headers it keeps). The rows' value storage is
// arena-backed by the producing operator and stays valid.
type Sink interface {
	Emit(p int, rows []types.Tuple) error
}

// SinkFactory builds the stage's sink once the join has validated its
// inputs and knows the output schema and partitioning. Streaming joins call
// it exactly once before the first Emit.
type SinkFactory func(schema *types.Schema, partCols []int) (Sink, error)

// relationSink collects output chunks into partition slices — the adapter
// that lets the Relation-in/Relation-out join entry points run the
// streaming executors underneath.
type relationSink struct {
	parts [][]types.Tuple
}

func newRelationSink(nparts int) *relationSink {
	return &relationSink{parts: make([][]types.Tuple, nparts)}
}

func (s *relationSink) Emit(p int, rows []types.Tuple) error {
	s.parts[p] = append(s.parts[p], rows...)
	return nil
}

// RunToSink streams a source straight into a sink, partition-parallel —
// the fused scan→sink pipeline of a push-down stage: filter, projection,
// statistics observation, and write metering all happen in the one pass
// over each chunk. Chunks carrying a selection vector are flattened through
// a reusable buffer here — sinks see dense row slices.
func RunToSink(ctx *Context, src Source, sink Sink) error {
	return forEachPart(src.Parts(), func(p int) error {
		cur, err := src.Open(p)
		if err != nil {
			return err
		}
		var dense []types.Tuple
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := cur.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			rows := c.Rows
			if c.Sel != nil {
				dense = c.appendLive(dense[:0])
				rows = dense
			}
			if err := sink.Emit(p, rows); err != nil {
				return err
			}
		}
	})
}

// relationSource adapts a materialized Relation to the Source interface:
// cursors slide fixed-capacity windows over the partition slices, zero-copy.
type relationSource struct {
	rel   *Relation
	rows  int
	noVec bool
}

// SourceOf returns a streaming view over a materialized relation, windowed
// at the execution's configured chunk capacity.
func SourceOf(ctx *Context, rel *Relation) Source {
	return &relationSource{rel: rel, rows: ctx.chunkRows(), noVec: ctx.NoVec}
}

func (s *relationSource) Schema() *types.Schema { return s.rel.Schema }
func (s *relationSource) Parts() int            { return len(s.rel.Parts) }
func (s *relationSource) PartCols() []int       { return s.rel.PartCols }

// PartBytesHint reports cached sizes only: forcing the relation's lazy size
// pass here would re-add the whole-relation walk streaming exists to avoid.
// Consumers fall back to summing per-row sizes, which costs the same walk
// the batch path would have paid lazily.
func (s *relationSource) PartBytesHint(p int) int64 {
	return s.rel.sizes.PartIfKnown(p)
}

func (s *relationSource) Open(p int) (Cursor, error) {
	cur := &sliceCursor{rows: s.rel.Parts[p], size: s.rows}
	if !s.noVec {
		cur.cols = types.NewColCache(s.rel.Schema)
	}
	return cur, nil
}

// sliceCursor windows an in-memory row slice into chunks, with the same
// lazy columnar access a storage ChunkReader provides — relation-backed
// probe sides feed the columnar prehash too.
type sliceCursor struct {
	rows []types.Tuple
	size int
	off  int
	cols *types.ColCache
	c    Chunk
}

func (c *sliceCursor) Next() (*Chunk, error) {
	if c.off >= len(c.rows) {
		return nil, io.EOF
	}
	end := c.off + c.size
	if end > len(c.rows) {
		end = len(c.rows)
	}
	win := c.rows[c.off:end]
	c.off = end
	c.c = Chunk{Rows: win}
	if c.cols != nil {
		c.cols.SetWindow(win)
		c.c.Cols = c.cols
	}
	return &c.c, nil
}
