package engine

import (
	"fmt"
	"math"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// maxPartRows caps one partition at 2^31-1 rows: the flat build table, the
// exchange scatter, and the index-range bookkeeping store row positions as
// int32 to halve their footprint. That is far beyond in-memory scale, but
// the limit is enforced with errors rather than silently wrapping into
// corrupted row indexes.
const maxPartRows = math.MaxInt32

func checkPartRows(parts [][]types.Tuple) error {
	for _, p := range parts {
		if len(p) > maxPartRows {
			return fmt.Errorf("engine: partition has %d rows, exceeding the %d-row limit of int32 row indexing", len(p), maxPartRows)
		}
	}
	return nil
}

// partSizes indexes an optional per-partition size table (nil when the
// exchange was skipped or sizes were not requested).
func partSizes(sizes [][]int64, p int) []int64 {
	if sizes == nil {
		return nil
	}
	return sizes[p]
}

// prehashParts bulk-hashes the key columns of every partition in parallel —
// the one hash pass each relation side pays per join.
func prehashParts(parts [][]types.Tuple, keyCols []int) [][]uint64 {
	out := make([][]uint64, len(parts))
	_ = forEachPart(len(parts), func(p int) error {
		out[p] = types.HashKeysInto(parts[p], keyCols, nil)
		return nil
	})
	return out
}

// repartition redistributes a relation by hashing the key columns, metering
// every row that moves between partitions as network shuffle. When the
// relation is already partitioned on the keys the exchange is skipped
// entirely (the §3 optimization for pre-partitioned inputs).
//
// Alongside the exchanged relation it returns the key hashes aligned with
// each output partition's rows: every row is hashed exactly once here and
// the prehashes travel with the rows, so the downstream build and probe
// never rehash. With wantSizes (the real-spill join's build side) the
// per-row encoded sizes pass one computes anyway travel the same way, so
// the spill path's budget accounting never re-walks EncodedSize.
func repartition(ctx *Context, rel *Relation, keyCols []int, wantSizes bool) (*Relation, [][]uint64, [][]int64, error) {
	if rel.PartitionedOn(keyCols) {
		return rel, prehashParts(rel.Parts, keyCols), nil, nil
	}
	n := len(rel.Parts)
	out := &Relation{
		Schema:   rel.Schema,
		Parts:    make([][]types.Tuple, n),
		PartCols: append([]int(nil), keyCols...),
	}
	if n == 1 {
		out.Parts[0] = rel.Parts[0]
		return out, prehashParts(out.Parts, keyCols), nil, nil
	}
	acct := ctx.Accounting()
	// Two-pass partition-parallel exchange: pass one hashes every row once,
	// counts per-destination occupancy, and meters the shuffle; pass two
	// scatters rows (and their prehashes) straight into exactly-sized
	// destination arrays at precomputed offsets — no per-bucket chain
	// slices, no append regrowth, no intermediate copy. Each destination
	// receives source blocks in source order with source row order
	// preserved, matching the previous implementation's output order.
	srcHash := make([][]uint64, n)    // [src] prehashes aligned with rel.Parts[src]
	srcDst := make([][]int32, n)      // [src] per-row destination (hash mod n, computed once)
	srcCount := make([][]int32, n)    // [src] dst -> rows routed there
	srcDstBytes := make([][]int64, n) // [src] dst -> encoded bytes routed there
	var srcSize [][]int64             // [src] per-row encoded sizes (wantSizes only)
	if wantSizes {
		srcSize = make([][]int64, n)
	}
	_ = forEachPart(n, func(src int) error {
		part := rel.Parts[src]
		hashes := types.HashKeysInto(part, keyCols, nil)
		dsts := make([]int32, len(part))
		counts := make([]int32, n)
		dstBytes := make([]int64, n)
		var sizes []int64
		if wantSizes {
			sizes = make([]int64, len(part))
		}
		var totalBytes int64
		for r, t := range part {
			dst := int32(hashes[r] % uint64(n))
			dsts[r] = dst
			counts[dst]++
			// One EncodedSize walk per row covers the shuffle metering
			// (bytes leaving src), the output partitions' size cache, and
			// (when requested) the spill join's per-row budget accounting.
			//dynopt:size-ok this is the cache-seeding walk: repartition output sizes are born here
			sz := int64(t.EncodedSize())
			dstBytes[dst] += sz
			totalBytes += sz
			if sizes != nil {
				sizes[r] = sz
			}
		}
		srcHash[src], srcDst[src], srcCount[src], srcDstBytes[src] = hashes, dsts, counts, dstBytes
		if wantSizes {
			srcSize[src] = sizes
		}
		acct.ShuffleRows.Add(int64(len(part)) - int64(counts[src]))
		acct.ShuffleBytes.Add(totalBytes - dstBytes[src])
		return nil
	})
	// srcStart[src][dst]: where src's block begins within destination dst.
	srcStart := make([][]int32, n)
	for src := 0; src < n; src++ {
		srcStart[src] = make([]int32, n)
	}
	outHashes := make([][]uint64, n)
	var outSizes [][]int64
	if wantSizes {
		outSizes = make([][]int64, n)
	}
	outBytes := make([]int64, n)
	var outTotal int64
	for dst := 0; dst < n; dst++ {
		var total int
		for src := 0; src < n; src++ {
			srcStart[src][dst] = int32(total)
			total += int(srcCount[src][dst])
			outBytes[dst] += srcDstBytes[src][dst]
		}
		if total > maxPartRows {
			return nil, nil, nil, fmt.Errorf("engine: exchange destination %d would hold %d rows, exceeding the %d-row limit of int32 row indexing", dst, total, maxPartRows)
		}
		out.Parts[dst] = make([]types.Tuple, total)
		outHashes[dst] = make([]uint64, total)
		if wantSizes {
			outSizes[dst] = make([]int64, total)
		}
		outTotal += outBytes[dst]
	}
	_ = forEachPart(n, func(src int) error {
		next := srcStart[src] // disjoint write ranges per src; safe to share dst arrays
		dsts := srcDst[src]
		hashes := srcHash[src]
		sizes := srcSize // nil unless wantSizes
		for r, t := range rel.Parts[src] {
			dst := dsts[r]
			i := next[dst]
			next[dst]++
			out.Parts[dst][i] = t
			outHashes[dst][i] = hashes[r]
			if sizes != nil {
				outSizes[dst][i] = sizes[src][r]
			}
		}
		return nil
	})
	out.seedSizes(outBytes, outTotal)
	return out, outHashes, outSizes, nil
}

// Repartition hash-exchanges a relation onto the named key columns. It is
// the exported face of the exchange for benchmarks and tools; joins call the
// internal path, which additionally hands the per-row prehashes downstream.
func Repartition(ctx *Context, rel *Relation, keys []string) (*Relation, error) {
	cols, err := resolveKeys(rel.Schema, keys)
	if err != nil {
		return nil, err
	}
	if rel.PartitionedOn(cols) {
		// Already placed: skip the internal path so the no-op exchange does
		// not pay its prehash pass (callers here have no use for hashes).
		return rel, nil
	}
	if err := checkPartRows(rel.Parts); err != nil {
		return nil, err
	}
	out, _, _, err := repartition(ctx, rel, cols, false)
	return out, err
}

// meterSpill models §3's overflow partitions in simulated mode (no
// Context.Spill attached): when a partition's build side exceeds the
// per-node memory budget, the excess build bytes and the matching fraction
// of probe bytes take a write+read round trip through disk (the grace hash
// join's recursive passes are approximated by one). All byte figures come
// from the callers' SizeCache-backed PartBytes/ByteSize — never from a
// fresh EncodedSize walk. In real-spill mode the dynamic hybrid hash join
// in spilljoin.go meters actual run-file I/O instead and this model is
// bypassed.
func meterSpill(ctx *Context, buildBytes, probeBytes, buildRows, probeRows int64) {
	budget := ctx.Cluster.MemoryPerNodeBytes()
	if budget <= 0 || buildBytes <= budget {
		return
	}
	spillFrac := float64(buildBytes-budget) / float64(buildBytes)
	spilledBuild := buildBytes - budget
	spilledProbe := int64(float64(probeBytes) * spillFrac)
	acct := ctx.Accounting()
	acct.SpillBytes.Add(2 * (spilledBuild + spilledProbe)) // write + read back
	acct.SpillRows.Add(int64(float64(buildRows+probeRows) * spillFrac))
}

// hashTable is a per-partition build table over prehashed rows: a
// power-of-two bucket array of prefix offsets into one flat []int32 of row
// indices, built in two passes (count occupancy, then fill). No chain slices
// and no map growth — the whole table is three flat allocations regardless
// of key distribution. Probes compare the stored 64-bit prehash first and
// verify exact keys only on a full-hash match.
type hashTable struct {
	rows    []types.Tuple // build rows, referenced by index
	hashes  []uint64      // prehashed composite keys aligned with rows
	keyCols []int
	mask    uint64
	starts  []int32 // len nbuckets+1: bucket -> prefix offset into idx
	idx     []int32 // row indices grouped by bucket, row order within bucket
}

func buildTable(rows []types.Tuple, hashes []uint64, keyCols []int) *hashTable {
	nb := 1
	for nb < len(rows) {
		nb <<= 1
	}
	ht := &hashTable{
		rows: rows, hashes: hashes, keyCols: keyCols,
		mask:   uint64(nb - 1),
		starts: make([]int32, nb+1),
		idx:    make([]int32, len(rows)),
	}
	for _, h := range hashes {
		ht.starts[(h&ht.mask)+1]++
	}
	for b := 0; b < nb; b++ {
		ht.starts[b+1] += ht.starts[b]
	}
	next := make([]int32, nb)
	copy(next, ht.starts[:nb])
	for r, h := range hashes {
		b := h & ht.mask
		ht.idx[next[b]] = int32(r)
		next[b]++
	}
	return ht
}

// countMatches returns the number of full-hash matches for the probe rows:
// the output-size hint that lets HashJoin/BroadcastJoin allocate the row
// headers and the tuple arena once, sized from match counts instead of grown
// per row. The pre-verification counting pass costs a fraction of the probe
// itself (bucket arrays are compact and cache-resident), and 64-bit hash
// collisions between unequal keys can only overcount — the count is a
// capacity, not a length, so that is harmless.
//
//dynopt:hotpath
func (ht *hashTable) countMatches(hashes []uint64) int {
	starts, idx, hs := ht.starts, ht.idx, ht.hashes
	cnt := 0
	for _, h := range hashes {
		b := h & ht.mask
		for _, ri := range idx[starts[b]:starts[b+1]] {
			if hs[ri] == h {
				cnt++
			}
		}
	}
	return cnt
}

// joinInto streams probeRows through the table, appending one build⧺probe
// (or probe⧺build, per buildFirst) arena tuple per match to out and
// returning it. hashes are the probe rows' prehashes — rows are hashed once
// upstream (exchange or broadcast-probe prehash), never here. Matches
// sharing a full hash are emitted in build row order, matching the chain
// order of the previous map-based table. The flat loop — no per-row closure
// — is the join's innermost hot path.
//
//dynopt:hotpath
func (ht *hashTable) joinInto(out []types.Tuple, arena *types.Arena, probeRows []types.Tuple, hashes []uint64, probeCols []int, buildFirst bool) []types.Tuple {
	starts, idx, hs, bRows, mask := ht.starts, ht.idx, ht.hashes, ht.rows, ht.mask
	singleKey := len(probeCols) == 1 && len(ht.keyCols) == 1
	var bCol0, pCol0 int
	if singleKey {
		bCol0, pCol0 = ht.keyCols[0], probeCols[0]
	}
	for r, pt := range probeRows {
		h := hashes[r]
		b := h & mask
		for _, ri := range idx[starts[b]:starts[b+1]] {
			if hs[ri] != h {
				continue
			}
			bt := bRows[ri]
			if singleKey {
				if !bt[bCol0].Equal(pt[pCol0]) {
					continue
				}
			} else if !bt.KeysEqual(ht.keyCols, pt, probeCols) {
				continue
			}
			if buildFirst {
				out = append(out, arena.Concat(bt, pt))
			} else {
				out = append(out, arena.Concat(pt, bt))
			}
		}
	}
	return out
}

// joinSelInto is joinInto over a selection-vector chunk: probe row k of the
// sidecars lives at probeRows[sel[k]], so the filter that produced the
// selection never copied a tuple header. Match semantics and output order
// are identical to flattening the selection and calling joinInto.
//
//dynopt:hotpath
func (ht *hashTable) joinSelInto(out []types.Tuple, arena *types.Arena, probeRows []types.Tuple, sel []int32, hashes []uint64, probeCols []int, buildFirst bool) []types.Tuple {
	starts, idx, hs, bRows, mask := ht.starts, ht.idx, ht.hashes, ht.rows, ht.mask
	singleKey := len(probeCols) == 1 && len(ht.keyCols) == 1
	var bCol0, pCol0 int
	if singleKey {
		bCol0, pCol0 = ht.keyCols[0], probeCols[0]
	}
	for k, r := range sel {
		pt := probeRows[r]
		h := hashes[k]
		b := h & mask
		for _, ri := range idx[starts[b]:starts[b+1]] {
			if hs[ri] != h {
				continue
			}
			bt := bRows[ri]
			if singleKey {
				if !bt[bCol0].Equal(pt[pCol0]) {
					continue
				}
			} else if !bt.KeysEqual(ht.keyCols, pt, probeCols) {
				continue
			}
			if buildFirst {
				out = append(out, arena.Concat(bt, pt))
			} else {
				out = append(out, arena.Concat(pt, bt))
			}
		}
	}
	return out
}

// HashJoin is the repartitioning dynamic hash join of §3: both inputs are
// hash-exchanged on the join keys (skipped for pre-partitioned inputs), then
// each partition builds a table over the build side and streams the probe
// side through it. Output tuples are left⧺right regardless of build side;
// the output stays partitioned on the join keys.
//
// Both inputs arrive materialized here, so there is no scan to fuse into
// the pipeline and the whole-relation batch implementation is the right
// one; the chunked streaming executors (HashJoinStream and friends) serve
// the scan-fed stage pipelines instead, with identical rows, order, and
// metering.
func HashJoin(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	return hashJoinBatch(ctx, left, right, leftKeys, rightKeys, buildLeft)
}

func hashJoinBatch(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("engine: hash join needs aligned non-empty keys, got %v / %v", leftKeys, rightKeys)
	}
	if len(left.Parts) != len(right.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(left.Parts), len(right.Parts))
	}
	lCols, err := resolveKeys(left.Schema, leftKeys)
	if err != nil {
		return nil, err
	}
	rCols, err := resolveKeys(right.Schema, rightKeys)
	if err != nil {
		return nil, err
	}
	if err := checkPartRows(left.Parts); err != nil {
		return nil, err
	}
	if err := checkPartRows(right.Parts); err != nil {
		return nil, err
	}
	realSpill := ctx.RealSpill()
	// In real-spill mode the exchange also hands the build side's per-row
	// encoded sizes downstream, so the spill join's budget accounting never
	// re-walks EncodedSize.
	left, lHash, lSize, err := repartition(ctx, left, lCols, realSpill && buildLeft)
	if err != nil {
		return nil, err
	}
	right, rHash, rSize, err := repartition(ctx, right, rCols, realSpill && !buildLeft)
	if err != nil {
		return nil, err
	}

	n := len(left.Parts)
	acct := ctx.Accounting()
	outSchema := left.Schema.Concat(right.Schema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	err = forEachPart(n, func(p int) error {
		if realSpill {
			// Real memory governance: the dynamic hybrid hash join holds at
			// most the per-node budget of build rows resident, evicting
			// overflow sub-partitions to run files (spilljoin.go).
			var rows []types.Tuple
			var err error
			if buildLeft {
				rows, err = spillJoinPartition(ctx, p, outSchema.Len(),
					left.Parts[p], lHash[p], partSizes(lSize, p), lCols, left.PartBytes(p),
					right.Parts[p], rHash[p], rCols, true)
			} else {
				rows, err = spillJoinPartition(ctx, p, outSchema.Len(),
					right.Parts[p], rHash[p], partSizes(rSize, p), rCols, right.PartBytes(p),
					left.Parts[p], lHash[p], lCols, false)
			}
			out.Parts[p] = rows
			return err
		}
		// Output building is arena-backed and sized from the match count:
		// one header slice and one Value chunk per partition, allocated
		// exactly, replacing a Concat allocation per output row.
		var arena types.Arena
		if buildLeft {
			ht := buildTable(left.Parts[p], lHash[p], lCols)
			acct.BuildRows.Add(int64(len(left.Parts[p])))
			acct.ProbeRows.Add(int64(len(right.Parts[p])))
			meterSpill(ctx, left.PartBytes(p), right.PartBytes(p),
				int64(len(left.Parts[p])), int64(len(right.Parts[p])))
			cnt := ht.countMatches(rHash[p])
			arena.Reserve(cnt * outSchema.Len())
			rows := make([]types.Tuple, 0, cnt)
			out.Parts[p] = ht.joinInto(rows, &arena, right.Parts[p], rHash[p], rCols, true)
		} else {
			ht := buildTable(right.Parts[p], rHash[p], rCols)
			acct.BuildRows.Add(int64(len(right.Parts[p])))
			acct.ProbeRows.Add(int64(len(left.Parts[p])))
			meterSpill(ctx, right.PartBytes(p), left.PartBytes(p),
				int64(len(right.Parts[p])), int64(len(left.Parts[p])))
			cnt := ht.countMatches(lHash[p])
			arena.Reserve(cnt * outSchema.Len())
			rows := make([]types.Tuple, 0, cnt)
			out.Parts[p] = ht.joinInto(rows, &arena, left.Parts[p], lHash[p], lCols, false)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.PartCols = lCols // left keys positions are unchanged in concat schema
	return out, nil
}

// BroadcastJoin replicates the (small) build side to every partition of the
// probe side — metering (n-1)× its bytes as broadcast traffic — then joins
// locally with no movement of the probe side (§3). buildLeft selects which
// input is replicated; output tuples remain left⧺right and inherit the probe
// side's partitioning. Both inputs arrive materialized, so the batch
// implementation runs; BroadcastJoinStream serves scan-fed pipelines.
func BroadcastJoin(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	return broadcastJoinBatch(ctx, left, right, leftKeys, rightKeys, buildLeft)
}

func broadcastJoinBatch(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("engine: broadcast join needs aligned non-empty keys, got %v / %v", leftKeys, rightKeys)
	}
	if len(left.Parts) != len(right.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(left.Parts), len(right.Parts))
	}
	lCols, err := resolveKeys(left.Schema, leftKeys)
	if err != nil {
		return nil, err
	}
	rCols, err := resolveKeys(right.Schema, rightKeys)
	if err != nil {
		return nil, err
	}
	if err := checkPartRows(left.Parts); err != nil {
		return nil, err
	}
	if err := checkPartRows(right.Parts); err != nil {
		return nil, err
	}
	build, probe := left, right
	bCols, pCols := lCols, rCols
	if !buildLeft {
		build, probe = right, left
		bCols, pCols = rCols, lCols
	}
	if ctx.RealSpill() {
		// Under real memory governance an over-budget build side may not be
		// copied to every node: every copy would blow the per-node grant at
		// once, with nothing to evict (broadcast tables cannot spill without
		// losing matches). Fall back to the partitioned hybrid hash join,
		// which spills gracefully. The same fallback fires when the
		// governor is out of aggregate capacity.
		budget := ctx.Cluster.MemoryPerNodeBytes()
		bb := build.ByteSize()
		hold := bb * int64(len(probe.Parts))
		if bb > budget {
			return HashJoin(ctx, left, right, leftKeys, rightKeys, buildLeft)
		}
		if !ctx.Grant.Reserve(hold) {
			ctx.Grant.Release(hold)
			return HashJoin(ctx, left, right, leftKeys, rightKeys, buildLeft)
		}
		defer ctx.Grant.Release(hold)
	}

	n := len(probe.Parts)
	acct := ctx.Accounting()
	// Replicate the build side: every partition receives all build rows it
	// does not already host. The build side's byte size is computed once and
	// reused for both broadcast metering and the spill check below.
	all := make([]types.Tuple, 0, build.RowCount())
	for _, p := range build.Parts {
		all = append(all, p...)
	}
	if len(all) > maxPartRows {
		return nil, fmt.Errorf("engine: broadcast build side has %d rows, exceeding the %d-row limit of int32 row indexing", len(all), maxPartRows)
	}
	buildBytes := build.ByteSize()
	if n > 1 {
		acct.BroadcastRows.Add(int64(len(all)) * int64(n-1))
		acct.BroadcastBytes.Add(buildBytes * int64(n-1))
	}
	ht := buildTable(all, types.HashKeysInto(all, bCols, nil), bCols)
	acct.BuildRows.Add(int64(len(all)) * int64(n)) // each partition builds its copy

	outSchema := left.Schema.Concat(right.Schema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	err = forEachPart(n, func(p int) error {
		acct.ProbeRows.Add(int64(len(probe.Parts[p])))
		// Each partition holds a full copy of the broadcast build side.
		meterSpill(ctx, buildBytes, probe.PartBytes(p),
			int64(len(all)), int64(len(probe.Parts[p])))
		// The probe side never went through an exchange, so prehash it here
		// (once per row), then size the output from the match count.
		hs := types.HashKeysInto(probe.Parts[p], pCols, nil)
		cnt := ht.countMatches(hs)
		var arena types.Arena
		arena.Reserve(cnt * outSchema.Len())
		rows := make([]types.Tuple, 0, cnt)
		out.Parts[p] = ht.joinInto(rows, &arena, probe.Parts[p], hs, pCols, buildLeft)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The probe side did not move; its partitioning columns survive at
	// shifted offsets when the probe is the right input.
	if probe.PartCols != nil {
		offset := 0
		if buildLeft {
			offset = left.Schema.Len()
		}
		cols := make([]int, len(probe.PartCols))
		for i, c := range probe.PartCols {
			cols[i] = c + offset
		}
		out.PartCols = cols
	}
	return out, nil
}

// IndexNLJoin is the indexed nested-loop join of §3: the (small, filtered)
// outer relation is broadcast to every partition of the inner, which must be
// a base dataset carrying a secondary index on the (single) inner join key.
// Arriving outer rows immediately probe the partition-local index; residual
// composite-key fields are checked after the fetch. Output tuples are
// outer⧺inner and inherit the inner dataset's partitioning only if the inner
// is scanned unfiltered (it is, per the algorithm's precondition). The
// materialized-outer form runs batch; IndexNLJoinStream serves scan-fed
// pipelines, replicating outer chunks as they are produced.
func IndexNLJoin(ctx *Context, outer *Relation, inner *storage.Dataset, innerAlias string,
	outerKeys []string, innerKeys []string, innerFilter expr.Expr) (*Relation, error) {
	return indexNLJoinBatch(ctx, outer, inner, innerAlias, outerKeys, innerKeys, innerFilter)
}

func indexNLJoinBatch(ctx *Context, outer *Relation, inner *storage.Dataset, innerAlias string,
	outerKeys []string, innerKeys []string, innerFilter expr.Expr) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(outerKeys) != len(innerKeys) || len(outerKeys) == 0 {
		return nil, fmt.Errorf("engine: index join needs aligned non-empty keys")
	}
	idx, ok := inner.Indexes[innerKeys[0]]
	if !ok {
		return nil, fmt.Errorf("engine: dataset %s has no index on %q", inner.Name, innerKeys[0])
	}
	if len(outer.Parts) != len(inner.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(outer.Parts), len(inner.Parts))
	}
	if err := checkPartRows(inner.Parts); err != nil {
		return nil, err
	}
	oCols, err := resolveKeys(outer.Schema, outerKeys)
	if err != nil {
		return nil, err
	}
	innerSchema := inner.Schema.Requalify(innerAlias)
	iCols := make([]int, len(innerKeys))
	for i, k := range innerKeys {
		ci, ok := inner.Schema.Index(k)
		if !ok {
			return nil, fmt.Errorf("engine: inner key %q not in %s", k, inner.Schema)
		}
		iCols[i] = ci
	}
	var pred expr.Compiled
	if innerFilter != nil {
		pred, err = expr.Compile(innerFilter, ctx.Env(innerSchema))
		if err != nil {
			return nil, err
		}
	}

	n := len(inner.Parts)
	acct := ctx.Accounting()
	outerAll := make([]types.Tuple, 0, outer.RowCount())
	for _, p := range outer.Parts {
		outerAll = append(outerAll, p...)
	}
	if n > 1 {
		acct.BroadcastRows.Add(int64(len(outerAll)) * int64(n-1))
		acct.BroadcastBytes.Add(outer.ByteSize() * int64(n-1))
	}

	outSchema := outer.Schema.Concat(innerSchema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	residual := iCols[1:]
	oResidual := oCols[1:]
	err = forEachPart(n, func(p int) error {
		part := inner.Parts[p]
		// Paged inner: rows fetch page-granularly through a decoded-page view
		// — only pages holding matched rows are read, which is exactly the
		// access-path advantage the optimizer picks index seeks for.
		var pview *storage.PartView
		if pgd := inner.Paged(); pgd != nil {
			pview = pgd.Part(p)
		}
		key0 := oCols[0]
		// Pass 1: resolve every outer row's index range once. Lookup yields
		// a position range over the sorted index keys — no per-probe []int
		// materialization — and the range widths bound the output exactly
		// (pre-filter), so the header slice and arena are sized up front.
		ranges := make([]int32, 2*len(outerAll))
		var fetched int64
		for o, ot := range outerAll {
			lo, hi := idx.Lookup(p, ot[key0])
			ranges[2*o], ranges[2*o+1] = int32(lo), int32(hi)
			fetched += int64(hi - lo)
		}
		acct.IndexLookups.Add(int64(len(outerAll)))
		acct.IndexRows.Add(fetched)
		var arena types.Arena
		rows := make([]types.Tuple, 0, fetched)
		rowAt := idx.Rows(p)
		if pview == nil && len(residual) == 0 && pred == nil {
			// No post-fetch filtering: the bound is exact, and the fetch
			// loop carries no per-row branch work.
			arena.Reserve(int(fetched) * outSchema.Len())
			for o, ot := range outerAll {
				for i := ranges[2*o]; i < ranges[2*o+1]; i++ {
					rows = append(rows, arena.Concat(ot, part[rowAt[i]]))
				}
			}
			out.Parts[p] = rows
			return nil
		}
		for o, ot := range outerAll {
			for i := ranges[2*o]; i < ranges[2*o+1]; i++ {
				var it types.Tuple
				if pview != nil {
					var err error
					it, err = pview.Row(rowAt[i])
					if err != nil {
						return err
					}
				} else {
					it = part[rowAt[i]]
				}
				if len(residual) > 0 && !ot.KeysEqual(oResidual, it, residual) {
					continue
				}
				if pred != nil {
					v, err := pred(it)
					if err != nil {
						return err
					}
					if !v.IsTrue() {
						continue
					}
				}
				rows = append(rows, arena.Concat(ot, it))
			}
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Inner partitioning survives (inner rows did not move).
	if pf := inner.PartitionFields(); len(pf) > 0 {
		cols := make([]int, 0, len(pf))
		ok := true
		offset := outer.Schema.Len()
		for _, f := range pf {
			ci, found := inner.Schema.Index(f)
			if !found {
				ok = false
				break
			}
			cols = append(cols, ci+offset)
		}
		if ok {
			out.PartCols = cols
		}
	}
	return out, nil
}
