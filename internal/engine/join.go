package engine

import (
	"fmt"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// repartition redistributes a relation by hashing the key columns, metering
// every row that moves between partitions as network shuffle. When the
// relation is already partitioned on the keys the exchange is skipped
// entirely (the §3 optimization for pre-partitioned inputs).
func repartition(ctx *Context, rel *Relation, keyCols []int) *Relation {
	if rel.PartitionedOn(keyCols) {
		return rel
	}
	n := len(rel.Parts)
	acct := ctx.Accounting()
	out := &Relation{
		Schema:   rel.Schema,
		Parts:    make([][]types.Tuple, n),
		PartCols: append([]int(nil), keyCols...),
	}
	if n == 1 {
		out.Parts[0] = rel.Parts[0]
		return out
	}
	// Partition-parallel split: each source partition buckets its rows,
	// then buckets are concatenated per destination.
	buckets := make([][][]types.Tuple, n) // [src][dst][]tuple
	_ = forEachPart(n, func(src int) error {
		local := make([][]types.Tuple, n)
		var movedRows, movedBytes int64
		for _, t := range rel.Parts[src] {
			dst := int(t.HashKeys(keyCols) % uint64(n))
			local[dst] = append(local[dst], t)
			if dst != src {
				movedRows++
				movedBytes += int64(t.EncodedSize())
			}
		}
		acct.ShuffleRows.Add(movedRows)
		acct.ShuffleBytes.Add(movedBytes)
		buckets[src] = local
		return nil
	})
	for dst := 0; dst < n; dst++ {
		var rows []types.Tuple
		for src := 0; src < n; src++ {
			rows = append(rows, buckets[src][dst]...)
		}
		out.Parts[dst] = rows
	}
	return out
}

// meterSpill models §3's overflow partitions: when a partition's build side
// exceeds the per-node memory budget, the excess build bytes and the
// matching fraction of probe bytes take a write+read round trip through
// disk (the grace hash join's recursive passes are approximated by one).
func meterSpill(ctx *Context, buildBytes, probeBytes, buildRows, probeRows int64) {
	budget := ctx.Cluster.MemoryPerNodeBytes()
	if budget <= 0 || buildBytes <= budget {
		return
	}
	spillFrac := float64(buildBytes-budget) / float64(buildBytes)
	spilledBuild := buildBytes - budget
	spilledProbe := int64(float64(probeBytes) * spillFrac)
	acct := ctx.Accounting()
	acct.SpillBytes.Add(2 * (spilledBuild + spilledProbe)) // write + read back
	acct.SpillRows.Add(int64(float64(buildRows+probeRows) * spillFrac))
}

func bytesOf(rows []types.Tuple) int64 {
	var n int64
	for _, t := range rows {
		n += int64(t.EncodedSize())
	}
	return n
}

// hashTable is a per-partition build table keyed by composite key hash with
// exact-key chains.
type hashTable struct {
	m       map[uint64][]types.Tuple
	keyCols []int
}

func buildTable(rows []types.Tuple, keyCols []int) *hashTable {
	ht := &hashTable{m: make(map[uint64][]types.Tuple, len(rows)), keyCols: keyCols}
	for _, t := range rows {
		h := t.HashKeys(keyCols)
		ht.m[h] = append(ht.m[h], t)
	}
	return ht
}

func (ht *hashTable) probe(t types.Tuple, probeCols []int, emit func(build types.Tuple)) {
	h := t.HashKeys(probeCols)
	for _, b := range ht.m[h] {
		if b.KeysEqual(ht.keyCols, t, probeCols) {
			emit(b)
		}
	}
}

// HashJoin is the repartitioning dynamic hash join of §3: both inputs are
// hash-exchanged on the join keys (skipped for pre-partitioned inputs), then
// each partition builds a table over the build side and streams the probe
// side through it. Output tuples are left⧺right regardless of build side;
// the output stays partitioned on the join keys.
func HashJoin(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("engine: hash join needs aligned non-empty keys, got %v / %v", leftKeys, rightKeys)
	}
	if len(left.Parts) != len(right.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(left.Parts), len(right.Parts))
	}
	lCols, err := resolveKeys(left.Schema, leftKeys)
	if err != nil {
		return nil, err
	}
	rCols, err := resolveKeys(right.Schema, rightKeys)
	if err != nil {
		return nil, err
	}
	left = repartition(ctx, left, lCols)
	right = repartition(ctx, right, rCols)

	n := len(left.Parts)
	acct := ctx.Accounting()
	outSchema := left.Schema.Concat(right.Schema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	err = forEachPart(n, func(p int) error {
		var rows []types.Tuple
		if buildLeft {
			ht := buildTable(left.Parts[p], lCols)
			acct.BuildRows.Add(int64(len(left.Parts[p])))
			acct.ProbeRows.Add(int64(len(right.Parts[p])))
			meterSpill(ctx, bytesOf(left.Parts[p]), bytesOf(right.Parts[p]),
				int64(len(left.Parts[p])), int64(len(right.Parts[p])))
			for _, rt := range right.Parts[p] {
				ht.probe(rt, rCols, func(lt types.Tuple) {
					rows = append(rows, lt.Concat(rt))
				})
			}
		} else {
			ht := buildTable(right.Parts[p], rCols)
			acct.BuildRows.Add(int64(len(right.Parts[p])))
			acct.ProbeRows.Add(int64(len(left.Parts[p])))
			meterSpill(ctx, bytesOf(right.Parts[p]), bytesOf(left.Parts[p]),
				int64(len(right.Parts[p])), int64(len(left.Parts[p])))
			for _, lt := range left.Parts[p] {
				ht.probe(lt, lCols, func(rt types.Tuple) {
					rows = append(rows, lt.Concat(rt))
				})
			}
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.PartCols = lCols // left keys positions are unchanged in concat schema
	return out, nil
}

// BroadcastJoin replicates the (small) build side to every partition of the
// probe side — metering (n-1)× its bytes as broadcast traffic — then joins
// locally with no movement of the probe side (§3). buildLeft selects which
// input is replicated; output tuples remain left⧺right and inherit the probe
// side's partitioning.
func BroadcastJoin(ctx *Context, left, right *Relation, leftKeys, rightKeys []string, buildLeft bool) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("engine: broadcast join needs aligned non-empty keys, got %v / %v", leftKeys, rightKeys)
	}
	if len(left.Parts) != len(right.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(left.Parts), len(right.Parts))
	}
	lCols, err := resolveKeys(left.Schema, leftKeys)
	if err != nil {
		return nil, err
	}
	rCols, err := resolveKeys(right.Schema, rightKeys)
	if err != nil {
		return nil, err
	}
	build, probe := left, right
	bCols, pCols := lCols, rCols
	if !buildLeft {
		build, probe = right, left
		bCols, pCols = rCols, lCols
	}

	n := len(probe.Parts)
	acct := ctx.Accounting()
	// Replicate the build side: every partition receives all build rows it
	// does not already host.
	var all []types.Tuple
	for _, p := range build.Parts {
		all = append(all, p...)
	}
	if n > 1 {
		acct.BroadcastRows.Add(int64(len(all)) * int64(n-1))
		acct.BroadcastBytes.Add(build.ByteSize() * int64(n-1))
	}
	ht := buildTable(all, bCols)
	acct.BuildRows.Add(int64(len(all)) * int64(n)) // each partition builds its copy

	outSchema := left.Schema.Concat(right.Schema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	allBytes := bytesOf(all)
	err = forEachPart(n, func(p int) error {
		var rows []types.Tuple
		acct.ProbeRows.Add(int64(len(probe.Parts[p])))
		// Each partition holds a full copy of the broadcast build side.
		meterSpill(ctx, allBytes, bytesOf(probe.Parts[p]),
			int64(len(all)), int64(len(probe.Parts[p])))
		for _, pt := range probe.Parts[p] {
			ht.probe(pt, pCols, func(bt types.Tuple) {
				if buildLeft {
					rows = append(rows, bt.Concat(pt))
				} else {
					rows = append(rows, pt.Concat(bt))
				}
			})
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The probe side did not move; its partitioning columns survive at
	// shifted offsets when the probe is the right input.
	if probe.PartCols != nil {
		offset := 0
		if buildLeft {
			offset = left.Schema.Len()
		}
		cols := make([]int, len(probe.PartCols))
		for i, c := range probe.PartCols {
			cols[i] = c + offset
		}
		out.PartCols = cols
	}
	return out, nil
}

// IndexNLJoin is the indexed nested-loop join of §3: the (small, filtered)
// outer relation is broadcast to every partition of the inner, which must be
// a base dataset carrying a secondary index on the (single) inner join key.
// Arriving outer rows immediately probe the partition-local index; residual
// composite-key fields are checked after the fetch. Output tuples are
// outer⧺inner and inherit the inner dataset's partitioning only if the inner
// is scanned unfiltered (it is, per the algorithm's precondition).
func IndexNLJoin(ctx *Context, outer *Relation, inner *storage.Dataset, innerAlias string,
	outerKeys []string, innerKeys []string, innerFilter expr.Expr) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(outerKeys) != len(innerKeys) || len(outerKeys) == 0 {
		return nil, fmt.Errorf("engine: index join needs aligned non-empty keys")
	}
	idx, ok := inner.Indexes[innerKeys[0]]
	if !ok {
		return nil, fmt.Errorf("engine: dataset %s has no index on %q", inner.Name, innerKeys[0])
	}
	if len(outer.Parts) != len(inner.Parts) {
		return nil, fmt.Errorf("engine: partition count mismatch %d vs %d", len(outer.Parts), len(inner.Parts))
	}
	oCols, err := resolveKeys(outer.Schema, outerKeys)
	if err != nil {
		return nil, err
	}
	innerSchema := inner.Schema.Requalify(innerAlias)
	iCols := make([]int, len(innerKeys))
	for i, k := range innerKeys {
		ci, ok := inner.Schema.Index(k)
		if !ok {
			return nil, fmt.Errorf("engine: inner key %q not in %s", k, inner.Schema)
		}
		iCols[i] = ci
	}
	var pred expr.Compiled
	if innerFilter != nil {
		pred, err = expr.Compile(innerFilter, ctx.Env(innerSchema))
		if err != nil {
			return nil, err
		}
	}

	n := len(inner.Parts)
	acct := ctx.Accounting()
	var outerAll []types.Tuple
	for _, p := range outer.Parts {
		outerAll = append(outerAll, p...)
	}
	if n > 1 {
		acct.BroadcastRows.Add(int64(len(outerAll)) * int64(n-1))
		acct.BroadcastBytes.Add(outer.ByteSize() * int64(n-1))
	}

	outSchema := outer.Schema.Concat(innerSchema)
	out := &Relation{Schema: outSchema, Parts: make([][]types.Tuple, n)}
	residual := iCols[1:]
	oResidual := oCols[1:]
	err = forEachPart(n, func(p int) error {
		var rows []types.Tuple
		var lookups, fetched int64
		for _, ot := range outerAll {
			lookups++
			for _, rowIdx := range idx.Lookup(p, ot[oCols[0]]) {
				it := inner.Parts[p][rowIdx]
				fetched++
				if len(residual) > 0 && !ot.KeysEqual(oResidual, it, residual) {
					continue
				}
				if pred != nil {
					v, err := pred(it)
					if err != nil {
						return err
					}
					if !v.IsTrue() {
						continue
					}
				}
				rows = append(rows, ot.Concat(it))
			}
		}
		acct.IndexLookups.Add(lookups)
		acct.IndexRows.Add(fetched)
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Inner partitioning survives (inner rows did not move).
	if pf := inner.PartitionFields(); len(pf) > 0 {
		cols := make([]int, 0, len(pf))
		ok := true
		offset := outer.Schema.Len()
		for _, f := range pf {
			ci, found := inner.Schema.Index(f)
			if !found {
				ok = false
				break
			}
			cols = append(cols, ci+offset)
		}
		if ok {
			out.PartCols = cols
		}
	}
	return out, nil
}
