package engine

import (
	"strings"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

func TestMaterializeFlattensAndCollectsStats(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(100, 10))
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	ds, st, err := Materialize(ctx, rel, "tmp_1", map[string]bool{"a_grp": true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Fields[0].Name != "a_id" || ds.Schema.Fields[1].Name != "a_grp" {
		t.Errorf("flattened schema = %s", ds.Schema)
	}
	if !ds.Temp {
		t.Error("materialized dataset not temp")
	}
	if st.RecordCount != 100 {
		t.Errorf("stats rows = %d", st.RecordCount)
	}
	if d := st.Field("a_grp").DistinctCount(); d < 9 || d > 11 {
		t.Errorf("online distinct(a_grp) = %d", d)
	}
	if fs, ok := st.Fields["a_id"]; ok && fs.Count > 0 {
		t.Error("collected stats on a field not requested")
	}
	acct := ctx.Cluster.Acct().Snapshot()
	if acct.MatWriteRows != 100 || acct.MatWriteBytes == 0 {
		t.Errorf("sink metering = %+v", acct)
	}
	if acct.StatsObserved != 100 {
		t.Errorf("stats observations = %d, want 100 (one field)", acct.StatsObserved)
	}
	// Partitioning preserved: pk was id → flattened a_id.
	if len(ds.PrimaryKey) != 1 || ds.PrimaryKey[0] != "a_id" {
		t.Errorf("temp pk = %v", ds.PrimaryKey)
	}
}

func TestMaterializeNilStatsFields(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"x"}, [][]int64{{1}, {2}})
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	_, st, err := Materialize(ctx, rel, "tmp_1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordCount != 2 {
		t.Errorf("counts still collected: %d", st.RecordCount)
	}
	if ctx.Cluster.Acct().StatsObserved.Load() != 0 {
		t.Error("stats observed with nil fields")
	}
}

func TestMaterializeThenScanRoundTrip(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(64, 8))
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	ds, st, err := Materialize(ctx, rel, "tmp_rt", map[string]bool{"a_id": true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Catalog.Register(ds, st); err != nil {
		t.Fatal(err)
	}
	back, err := ScanByName(ctx, "tmp_rt", "i1", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.RowCount() != 64 {
		t.Errorf("round trip rows = %d", back.RowCount())
	}
	if back.Schema.Fields[0].QName() != "i1.a_id" {
		t.Errorf("round trip schema = %s", back.Schema)
	}
	// Partitioning knowledge restored from the temp pk.
	if back.PartCols == nil {
		t.Error("PartCols not restored from temp dataset")
	}
}

func TestExecutePlanLeafAndJoins(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 10))
	dimRows := make([][]int64, 10)
	for i := range dimRows {
		dimRows[i] = []int64{int64(i), int64(i), 0}
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, dimRows)

	for _, algo := range []plan.Algo{plan.AlgoHash, plan.AlgoBroadcast} {
		root := plan.NewJoin(&plan.Join{
			Left:      plan.NewLeaf(&plan.Leaf{Dataset: "fact", Alias: "f"}),
			Right:     plan.NewLeaf(&plan.Leaf{Dataset: "dim", Alias: "d"}),
			LeftKeys:  []string{"f.fk"},
			RightKeys: []string{"d.id"},
			Algo:      algo,
			BuildLeft: false,
		})
		rel, err := Execute(ctx, root)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if rel.RowCount() != 100 {
			t.Errorf("%v: rows = %d", algo, rel.RowCount())
		}
	}
}

func TestExecutePlanIndexNL(t *testing.T) {
	ctx := testCtx(t, 4)
	factDS := register(t, ctx, "fact", []string{"id"}, []string{"id", "fk", "pay"}, seqTable(100, 10))
	if _, err := storage.BuildIndex(factDS, "fk"); err != nil {
		t.Fatal(err)
	}
	register(t, ctx, "dim", []string{"id"}, []string{"id", "attr", "pad"}, [][]int64{{3, 0, 0}})

	// dim (build/broadcast, left) ⋈i fact (inner probe via index, right).
	root := plan.NewJoin(&plan.Join{
		Left:      plan.NewLeaf(&plan.Leaf{Dataset: "dim", Alias: "d"}),
		Right:     plan.NewLeaf(&plan.Leaf{Dataset: "fact", Alias: "f"}),
		LeftKeys:  []string{"d.id"},
		RightKeys: []string{"f.fk"},
		Algo:      plan.AlgoIndexNL,
		BuildLeft: true,
	})
	rel, err := Execute(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() != 10 {
		t.Errorf("rows = %d, want 10", rel.RowCount())
	}
	if rel.Schema.Fields[0].QName() != "d.id" {
		t.Errorf("orientation: %s", rel.Schema)
	}

	// Flipped orientation: fact on the left as inner, dim broadcast from the
	// right; output must still be left⧺right = f then d.
	root2 := plan.NewJoin(&plan.Join{
		Left:      plan.NewLeaf(&plan.Leaf{Dataset: "fact", Alias: "f"}),
		Right:     plan.NewLeaf(&plan.Leaf{Dataset: "dim", Alias: "d"}),
		LeftKeys:  []string{"f.fk"},
		RightKeys: []string{"d.id"},
		Algo:      plan.AlgoIndexNL,
		BuildLeft: false,
	})
	rel2, err := Execute(ctx, root2)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.RowCount() != 10 {
		t.Errorf("flipped rows = %d", rel2.RowCount())
	}
	if rel2.Schema.Fields[0].QName() != "f.id" {
		t.Errorf("flipped orientation: %s", rel2.Schema)
	}
}

func TestExecutePlanIndexNLRequiresBaseLeaf(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "p"}, seqTable(10, 2))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "p"}, seqTable(10, 2))
	register(t, ctx, "c", []string{"id"}, []string{"id", "k", "p"}, seqTable(10, 2))
	inner := plan.NewJoin(&plan.Join{
		Left:      plan.NewLeaf(&plan.Leaf{Dataset: "a", Alias: "a"}),
		Right:     plan.NewLeaf(&plan.Leaf{Dataset: "b", Alias: "b"}),
		LeftKeys:  []string{"a.id"},
		RightKeys: []string{"b.id"},
		Algo:      plan.AlgoHash,
	})
	root := plan.NewJoin(&plan.Join{
		Left:      plan.NewLeaf(&plan.Leaf{Dataset: "c", Alias: "c"}),
		Right:     inner,
		LeftKeys:  []string{"c.k"},
		RightKeys: []string{"a.k"},
		Algo:      plan.AlgoIndexNL,
		BuildLeft: true,
	})
	if _, err := Execute(ctx, root); err == nil {
		t.Error("INLJ over a join subtree did not error")
	}
}

func TestFinishProjectionGroupOrderLimit(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", []string{"id"}, []string{"id", "grp", "pay"}, seqTable(20, 4))
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	q, err := sqlpp.Parse("SELECT a.grp FROM t AS a GROUP BY a.grp ORDER BY a.grp DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Finish(ctx, q, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Groups are 0..3; DESC LIMIT 3 → 3, 2, 1.
	for i, want := range []int64{3, 2, 1} {
		if res.Rows[i][0].I() != want {
			t.Errorf("row %d = %v, want %d", i, res.Rows[i], want)
		}
	}
	if res.Columns[0] != "a.grp" {
		t.Errorf("column name = %q", res.Columns[0])
	}
}

func TestFinishSelectStar(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"x", "y"}, [][]int64{{1, 2}, {3, 4}})
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	q, _ := sqlpp.Parse("SELECT * FROM t AS a")
	res, err := Finish(ctx, q, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Errorf("star result = %d×%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[0] != "a.x" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestFinishSelectAlias(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"x", "y"}, [][]int64{{1, 2}})
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	q, _ := sqlpp.Parse("SELECT a.x AS out FROM t AS a")
	res, err := Finish(ctx, q, rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "out" {
		t.Errorf("aliased column = %q", res.Columns[0])
	}
}

func TestFinishEvalError(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "t", nil, []string{"x", "y"}, [][]int64{{1, 2}})
	rel, _ := ScanByName(ctx, "t", "a", nil, nil)
	q, _ := sqlpp.Parse("SELECT a.zz FROM t AS a")
	if _, err := Finish(ctx, q, rel); err == nil {
		t.Error("bad select column did not error")
	}
}

func TestFilterFor(t *testing.T) {
	if FilterFor(nil) != nil {
		t.Error("FilterFor(nil) != nil")
	}
	one := &expr.Literal{Val: types.Bool(true)}
	if FilterFor([]expr.Expr{one}) != one {
		t.Error("single local not returned directly")
	}
	and, ok := FilterFor([]expr.Expr{one, one}).(*expr.And)
	if !ok || len(and.Kids) != 2 {
		t.Error("multi local not conjuncted")
	}
}

func TestPlanPrinting(t *testing.T) {
	leafA := plan.NewLeaf(&plan.Leaf{Dataset: "A", Alias: "a", Filtered: true})
	leafB := plan.NewLeaf(&plan.Leaf{Dataset: "B", Alias: "b"})
	leafC := plan.NewLeaf(&plan.Leaf{Dataset: "C", Alias: "c"})
	j1 := plan.NewJoin(&plan.Join{Left: leafA, Right: leafB, LeftKeys: []string{"a.k"}, RightKeys: []string{"b.k"}, Algo: plan.AlgoBroadcast})
	root := plan.NewJoin(&plan.Join{Left: j1, Right: leafC, LeftKeys: []string{"b.j"}, RightKeys: []string{"c.j"}, Algo: plan.AlgoHash})
	if got := root.Compact(); got != "((a' ⋈b b) ⋈ c)" {
		t.Errorf("Compact = %q", got)
	}
	tree := root.Tree()
	for _, want := range []string{"hash join", "broadcast join", "scan A as a", "scan C as c"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree missing %q:\n%s", want, tree)
		}
	}
	if root.JoinCount() != 2 || root.Depth() != 3 {
		t.Errorf("JoinCount=%d Depth=%d", root.JoinCount(), root.Depth())
	}
	if root.IsBushy() {
		t.Error("left-deep plan reported bushy")
	}
	aliases := root.Aliases()
	if len(aliases) != 3 || aliases[0] != "a" {
		t.Errorf("Aliases = %v", aliases)
	}
	// A genuinely bushy plan.
	leafD := plan.NewLeaf(&plan.Leaf{Dataset: "D", Alias: "d"})
	j2 := plan.NewJoin(&plan.Join{Left: leafC, Right: leafD, LeftKeys: []string{"c.j"}, RightKeys: []string{"d.j"}, Algo: plan.AlgoHash})
	bushy := plan.NewJoin(&plan.Join{Left: j1, Right: j2, LeftKeys: []string{"b.j"}, RightKeys: []string{"c.j"}, Algo: plan.AlgoHash})
	if !bushy.IsBushy() {
		t.Error("bushy plan not detected")
	}
}
