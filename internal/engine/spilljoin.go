package engine

import (
	"errors"
	"fmt"
	"io"

	"dynopt/internal/cluster"
	"dynopt/internal/faults"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// This file is the real dynamic hybrid hash join behind Context.RealSpill:
// the disk-backed counterpart of meterSpill's byte arithmetic, modeled on
// the AsterixDB join of "Design Trade-offs for a Robust Dynamic Hybrid Hash
// Join" (PAPERS.md). Per partition (node), build rows scatter into
// spillFanout sub-partitions; when the resident set would exceed the
// per-node memory budget — or the cluster governor signals cross-query
// pressure — the largest resident sub-partition is evicted to an on-disk
// run file. Probe rows for resident sub-partitions stream through the
// in-memory table immediately; the rest are deferred to probe run files,
// and every spilled (build, probe) pair is joined recursively on read-back
// with a different hash salt per level. SpillBytes/SpillRows meter the
// actual run-file bytes and rows written.

const (
	// spillFanout is the sub-partition count per recursion level. With the
	// budget at 1/k of the build side, k < spillFanout sub-partitions stay
	// resident and the rest take exactly one extra disk round trip.
	spillFanout = 16
	// spillMaxDepth bounds recursion: past it (pathological skew — e.g. one
	// join key holding over-budget row counts) the remaining pair is joined
	// in memory, over budget, rather than recursing forever.
	spillMaxDepth = 6
)

// spillSeeds salt the sub-partition hash per recursion level; reusing the
// level-0 bits would send every spilled row back to one sub-partition.
var spillSeeds = [spillMaxDepth + 1]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0x2545f4914f6cdd1d, 0xd6e8feb86659fd93, 0xca6b5c2f4f5dd0e9,
	0xaf36d01ef7518dbb,
}

// spillSub maps a join-key prehash to a sub-partition at a recursion level,
// remixing the hash so levels (and the node-routing h mod n) see
// independent bits.
func spillSub(h uint64, level int) int {
	x := h ^ spillSeeds[level]
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % spillFanout)
}

// rowSeq streams (tuple, key prehash, encoded size) triples: in-memory
// partitions at level 0, run-file read-backs below. A size of -1 means
// unknown (the consumer walks EncodedSize itself); the level-0 build side
// carries the exact sizes the exchange already computed. next returns
// io.EOF at a clean end.
type rowSeq interface {
	next() (types.Tuple, uint64, int64, error)
}

// memSeq streams an in-memory partition with its prehash array and
// (optionally) its per-row encoded sizes.
type memSeq struct {
	rows   []types.Tuple
	hashes []uint64
	sizes  []int64 // nil: sizes unknown
	i      int
}

func (s *memSeq) next() (types.Tuple, uint64, int64, error) {
	if s.i >= len(s.rows) {
		return nil, 0, 0, io.EOF
	}
	t, h := s.rows[s.i], s.hashes[s.i]
	sz := int64(-1)
	if s.sizes != nil {
		sz = s.sizes[s.i]
	}
	s.i++
	return t, h, sz, nil
}

// chunkSeq streams a probe chunk stream row-at-a-time for the spill join:
// the adapter between the stage pipeline's chunked probe delivery and the
// DHHJ's row-granular build/probe loops.
type chunkSeq struct {
	st probeStream
	c  *Chunk
	i  int
}

func (s *chunkSeq) next() (types.Tuple, uint64, int64, error) {
	//dynopt:cancel-ok row-granular adapter: the DHHJ build/probe loops downstream check ctx.Err() on a row stride
	for s.c == nil || s.i >= s.c.Live() {
		c, err := s.st.next()
		if err != nil {
			return nil, 0, 0, err // io.EOF passes through as the clean end
		}
		s.c, s.i = c, 0
	}
	// i walks the live rows: sidecars index directly, the tuple through the
	// selection when one is present.
	i := s.i
	s.i++
	sz := int64(-1)
	if s.c.Sizes != nil {
		sz = s.c.Sizes[i]
	}
	r := i
	if s.c.Sel != nil {
		r = int(s.c.Sel[i])
	}
	return s.c.Rows[r], s.c.Hashes[i], sz, nil
}

// fileSeq streams a run file, recomputing each row's key prehash (run
// records store the tuple only). At EOF it cross-checks the rows actually
// decoded against the writer's in-memory count — the footer's consumer-side
// assertion, independent of anything stored on disk.
type fileSeq struct {
	r       *storage.SpillReader
	keyCols []int
	expect  int64 // rows the writer sealed (SpillFile.Rows)
	n       int64 // rows decoded so far
}

func (s *fileSeq) next() (types.Tuple, uint64, int64, error) {
	t, err := s.r.Next()
	if err != nil {
		if err == io.EOF && s.n != s.expect {
			return nil, 0, 0, fmt.Errorf("engine: run read back %d rows but the writer appended %d: %w",
				s.n, s.expect, faults.ErrCorrupt)
		}
		return nil, 0, 0, err
	}
	s.n++
	return t, t.HashKeys(s.keyCols), -1, nil
}

// runSource names where a spilled run's rows came from, so a run found
// corrupt on read-back can be rebuilt: the in-memory partition at level 0,
// or the parent level's run file below (still on disk until its own pair
// completes). A nil *runSource marks a side with no replayable source — the
// streaming probe, whose chunks were consumed as they arrived.
type runSource struct {
	mem     *memSeq
	file    *storage.SpillFile
	keyCols []int
}

// open returns a fresh pass over the source, plus a close func for
// file-backed sources.
func (s *runSource) open() (rowSeq, func() error, error) {
	if s.file != nil {
		r, err := s.file.Reader()
		if err != nil {
			return nil, nil, err
		}
		return &fileSeq{r: r, keyCols: s.keyCols, expect: s.file.Rows()}, r.Close, nil
	}
	cp := *s.mem
	cp.i = 0
	return &cp, nil, nil
}

// spillJoin carries one partition's join through its recursion levels.
type spillJoin struct {
	ctx        *Context
	acct       *cluster.Accounting
	grant      *cluster.Grant
	part       int   // partition index, for run-file labels
	budget     int64 // per-node resident build budget
	bCols      []int // build-side key columns
	pCols      []int // probe-side key columns
	buildFirst bool

	arena types.Arena
	out   []types.Tuple
	// emit, when set, receives output rows chunk-by-chunk (the streaming
	// sink path); out then only buffers up to one chunk between flushes.
	// Nil accumulates the whole partition's output in out (the batch path).
	emit func(rows []types.Tuple) error
	// noSpill marks the degraded mode entered when the spill device fails
	// before any run file landed: the join holds its whole build side
	// resident — reserving the bytes but ignoring budget and pressure, like
	// the depth-capped inMemory fallback — instead of failing the query.
	noSpill bool
}

// maybeFlush hands the buffered output to the emit hook once a chunk's
// worth has accumulated. The buffer is reused: sinks copy the headers they
// keep.
func (j *spillJoin) maybeFlush() error {
	if j.emit == nil || len(j.out) < j.ctx.chunkRows() {
		return nil
	}
	return j.flush()
}

func (j *spillJoin) flush() error {
	if len(j.out) == 0 {
		return nil
	}
	err := j.emit(j.out)
	j.out = j.out[:0]
	return err
}

// spillJoinPartition joins one partition under the real memory budget,
// returning the output rows. Falls to the plain in-memory join when the
// build side fits the grant; otherwise runs the dynamic hybrid hash join.
func spillJoinPartition(ctx *Context, p int, outWidth int,
	bRows []types.Tuple, bHash []uint64, bSize []int64, bCols []int, buildBytes int64,
	pRows []types.Tuple, pHash []uint64, pCols []int, buildFirst bool) ([]types.Tuple, error) {

	budget := ctx.Cluster.MemoryPerNodeBytes()
	acct := ctx.Accounting()
	gr := ctx.Grant
	if buildBytes <= budget {
		if gr.Reserve(buildBytes) {
			// Resident fast path: the whole build side fits the per-node
			// budget and the governor has room.
			defer gr.Release(buildBytes)
			ht := buildTable(bRows, bHash, bCols)
			acct.BuildRows.Add(int64(len(bRows)))
			acct.ProbeRows.Add(int64(len(pRows)))
			cnt := ht.countMatches(pHash)
			var arena types.Arena
			arena.Reserve(cnt * outWidth)
			rows := make([]types.Tuple, 0, cnt)
			return ht.joinInto(rows, &arena, pRows, pHash, pCols, buildFirst), nil
		}
		// Cross-query pressure: the bytes were charged by the failed
		// Reserve, so undo before taking the spilling path (which holds
		// only its resident set).
		gr.Release(buildBytes)
	}
	j := &spillJoin{
		ctx: ctx, acct: acct, grant: gr, part: p, budget: budget,
		bCols: bCols, pCols: pCols, buildFirst: buildFirst,
	}
	build := &memSeq{rows: bRows, hashes: bHash, sizes: bSize}
	probe := &memSeq{rows: pRows, hashes: pHash}
	err := j.run(0, build, probe,
		&runSource{mem: build}, &runSource{mem: probe})
	return j.out, err
}

// spillJoinPartitionStream is spillJoinPartition for the streaming
// pipeline: the probe side arrives chunk-by-chunk and output rows flow into
// the sink as they are produced, so neither side of the spilling join is
// ever whole-relation resident beyond the governed build set.
func spillJoinPartitionStream(ctx *Context, p int,
	bRows []types.Tuple, bHash []uint64, bSize []int64, bCols []int, buildBytes int64,
	probe probeStream, pCols []int, buildFirst bool, sink Sink) error {

	budget := ctx.Cluster.MemoryPerNodeBytes()
	acct := ctx.Accounting()
	gr := ctx.Grant
	if buildBytes <= budget {
		if gr.Reserve(buildBytes) {
			// Resident fast path: the whole build side fits the per-node
			// budget and the governor has room; probe chunks stream through
			// the one table straight into the sink.
			defer gr.Release(buildBytes)
			w := &probeState{
				ctx:   ctx,
				ht:    buildTable(bRows, bHash, bCols),
				pCols: pCols, buildFirst: buildFirst,
				sink: sink, p: p,
			}
			acct.BuildRows.Add(int64(len(bRows)))
			if err := w.drain(probe); err != nil {
				return err
			}
			acct.ProbeRows.Add(w.probeRows)
			return nil
		}
		// Cross-query pressure: the bytes were charged by the failed
		// Reserve, so undo before taking the spilling path (which holds
		// only its resident set).
		gr.Release(buildBytes)
	}
	j := &spillJoin{
		ctx: ctx, acct: acct, grant: gr, part: p, budget: budget,
		bCols: bCols, pCols: pCols, buildFirst: buildFirst,
		emit: func(rows []types.Tuple) error { return sink.Emit(p, rows) },
	}
	build := &memSeq{rows: bRows, hashes: bHash, sizes: bSize}
	// The streaming probe has no replayable source (chunks are consumed as
	// they arrive), so a corrupt probe run at level 0 fails classified
	// rather than rebuilding; the build side recovers as usual.
	if err := j.run(0, build, &chunkSeq{st: probe}, &runSource{mem: build}, nil); err != nil {
		return err
	}
	return j.flush()
}

// run executes one recursion level of the dynamic hybrid hash join. bSrc
// and pSrc name where the build/probe rows came from, for rebuilding a run
// found corrupt on read-back (nil: that side is not replayable).
func (j *spillJoin) run(level int, build, probe rowSeq, bSrc, pSrc *runSource) error {
	if err := j.ctx.Err(); err != nil {
		return err
	}
	if level > spillMaxDepth {
		// Pathological skew: the same keys refuse to split any further.
		// Join the pair in memory, over budget, rather than recurse forever.
		return j.inMemory(build, probe)
	}

	var (
		rows     [spillFanout][]types.Tuple
		hashes   [spillFanout][]uint64
		bytes    [spillFanout]int64
		bFile    [spillFanout]*storage.SpillFile
		resident int64
	)
	largest := func() int {
		v, best := -1, int64(0)
		for s := 0; s < spillFanout; s++ {
			if bFile[s] == nil && bytes[s] > best {
				v, best = s, bytes[s]
			}
		}
		return v
	}
	evict := func(s int) error {
		f, err := j.newFile(level, s, "build")
		if err != nil {
			return err
		}
		for _, t := range rows[s] {
			if err := f.Append(t); err != nil {
				// The victim stays resident (its rows and reservation are
				// only cleared below, after every append succeeded); drop the
				// partial run so the failed eviction leaves no residue.
				_ = f.Remove()
				return err
			}
		}
		j.grant.Release(bytes[s])
		resident -= bytes[s]
		rows[s], hashes[s], bytes[s] = nil, nil, 0
		bFile[s] = f
		return nil
	}
	// tryEvict is evict plus the graceful-degradation rung: when the spill
	// device fails before anything from this level landed on disk, and the
	// governor still has room, the join degrades to holding the build
	// resident (noSpill) instead of failing the query. Once a run file
	// exists the data is already partly on the failed device and only an
	// error can surface it; without governor room the resident set would be
	// an unbounded over-reservation, so the failure is classified
	// over-capacity on top of the spill cause.
	tryEvict := func(v int) error {
		err := evict(v)
		if err == nil || !errors.Is(err, faults.ErrSpillIO) {
			return err
		}
		for s := 0; s < spillFanout; s++ {
			if bFile[s] != nil {
				return err
			}
		}
		if !j.grant.WithinCapacity() {
			return fmt.Errorf("engine: spill device failed with no governor room to hold the build resident: %w (%w)", err, faults.ErrOverCapacity)
		}
		j.noSpill = true
		return nil
	}

	// Build phase: scatter into sub-partitions, evicting the largest
	// resident victim whenever the next row would push the resident set
	// over the per-node budget (so peak resident build memory never
	// exceeds it), and shedding one victim on governor pressure.
	n := 0
	for {
		t, h, sz, err := build.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n++; n&0xfff == 0 {
			if err := j.ctx.Err(); err != nil {
				return err
			}
		}
		s := spillSub(h, level)
		if bFile[s] != nil {
			if err := bFile[s].Append(t); err != nil {
				return err
			}
			continue
		}
		if sz < 0 {
			sz = int64(t.EncodedSize()) //dynopt:size-ok run-file rows carry no cached size; walked once on re-read
		}
		if !j.noSpill {
			for resident+sz > j.budget && !j.noSpill {
				v := largest()
				if v < 0 {
					break
				}
				if err := tryEvict(v); err != nil {
					return err
				}
			}
			if bFile[s] == nil && !j.noSpill && resident+sz > j.budget {
				// Everything else is already on disk and this row alone breaks
				// the budget: spill its own (empty or not) sub-partition.
				if err := tryEvict(s); err != nil {
					return err
				}
			}
			if bFile[s] != nil {
				if err := bFile[s].Append(t); err != nil {
					return err
				}
				continue
			}
		}
		rows[s] = append(rows[s], t)
		hashes[s] = append(hashes[s], h)
		bytes[s] += sz
		resident += sz
		if !j.grant.Reserve(sz) && !j.noSpill {
			if v := largest(); v >= 0 {
				if err := tryEvict(v); err != nil {
					return err
				}
			}
		}
	}
	// Seal the build run files: spill accounting charges the actual bytes
	// and rows written.
	for s := 0; s < spillFanout; s++ {
		if bFile[s] == nil {
			continue
		}
		nb, err := bFile[s].Finish()
		if err != nil {
			return err
		}
		j.acct.SpillBytes.Add(nb)
		j.acct.SpillRows.Add(bFile[s].Rows())
	}

	// Hybrid probe phase: resident sub-partitions are probed through one
	// in-memory table as probe rows arrive; rows belonging to spilled
	// sub-partitions are deferred to probe run files.
	var resRows []types.Tuple
	var resHashes []uint64
	for s := 0; s < spillFanout; s++ {
		resRows = append(resRows, rows[s]...)
		resHashes = append(resHashes, hashes[s]...)
	}
	ht := buildTable(resRows, resHashes, j.bCols)
	j.acct.BuildRows.Add(int64(len(resRows)))

	var pFile [spillFanout]*storage.SpillFile
	var probed int64
	n = 0
	for {
		t, h, _, err := probe.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n++; n&0xfff == 0 {
			if err := j.ctx.Err(); err != nil {
				return err
			}
		}
		s := spillSub(h, level)
		if bFile[s] != nil {
			if pFile[s] == nil {
				pFile[s], err = j.newFile(level, s, "probe")
				if err != nil {
					return err
				}
			}
			if err := pFile[s].Append(t); err != nil {
				return err
			}
			continue
		}
		probed++
		j.out = ht.probeInto(j.out, &j.arena, t, h, j.pCols, j.buildFirst)
		if err := j.maybeFlush(); err != nil {
			return err
		}
	}
	j.acct.ProbeRows.Add(probed)

	// The resident set is done; return its memory before recursing so the
	// read-back levels can use the budget.
	j.grant.Release(resident)
	resRows, resHashes, ht = nil, nil, nil
	for s := 0; s < spillFanout; s++ {
		rows[s], hashes[s] = nil, nil
	}
	for s := 0; s < spillFanout; s++ {
		if pFile[s] == nil {
			continue
		}
		nb, err := pFile[s].Finish()
		if err != nil {
			return err
		}
		j.acct.SpillBytes.Add(nb)
		j.acct.SpillRows.Add(pFile[s].Rows())
	}

	// Recursive pass: join every spilled (build, probe) pair on read-back.
	// Probe runs — and build runs that must recurse — are verified
	// (checksums, footer seal, row counts) before their pair is joined; a
	// corrupt run is rebuilt once from its source. The verify-then-join
	// order matters for those, because corruption discovered mid-join could
	// not be retried without duplicating rows already streamed to the sink.
	// A build run that already fits the budget skips the separate CRC walk:
	// the in-memory join decodes it fully — checked block by block — before
	// the first probe row streams, so corruption still surfaces with
	// nothing emitted and the same rebuild-once ladder applies
	// (verify-as-you-decode, one read of the run instead of two).
	for s := 0; s < spillFanout; s++ {
		if bFile[s] == nil {
			continue
		}
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if pFile[s] == nil || pFile[s].Rows() == 0 || bFile[s].Rows() == 0 {
			// No rows on one side: the pair cannot produce matches.
			if err := bFile[s].Remove(); err != nil {
				return err
			}
			if pFile[s] != nil {
				if err := pFile[s].Remove(); err != nil {
					return err
				}
			}
			continue
		}
		if bFile[s].Bytes() <= j.budget {
			// Build reads first (as in the non-resident path), so damage on
			// the build device surfaces against the side that can rebuild.
			rb, err := j.loadBuildRecovering(level, s, &bFile[s], bSrc)
			if err != nil {
				return err
			}
			if err := j.ensureIntact(level, s, "probe", &pFile[s], pSrc); err != nil {
				return err
			}
			if err := j.probeSpilledRun(rb, pFile[s]); err != nil {
				return err
			}
		} else {
			if err := j.ensureIntact(level, s, "build", &bFile[s], bSrc); err != nil {
				return err
			}
			if err := j.ensureIntact(level, s, "probe", &pFile[s], pSrc); err != nil {
				return err
			}
			if err := j.joinSpilledPair(level, bFile[s], pFile[s]); err != nil {
				return err
			}
		}
		// Run files we created and sealed ourselves: a failed unlink means
		// the disk-budget accounting is off, so surface it rather than let
		// the end-of-query Sweep paper over it.
		if err := bFile[s].Remove(); err != nil {
			return err
		}
		if err := pFile[s].Remove(); err != nil {
			return err
		}
	}
	return nil
}

// joinSpilledPair reads one spilled (build, probe) run pair back and joins
// it one level deeper. Pairs whose build run fits the budget never reach
// here — the recursion loop takes the verify-as-you-decode resident path
// for those instead.
func (j *spillJoin) joinSpilledPair(level int, bf, pf *storage.SpillFile) error {
	br, err := bf.Reader()
	if err != nil {
		return err
	}
	defer br.Close()
	pr, err := pf.Reader()
	if err != nil {
		return err
	}
	defer pr.Close()
	build := &fileSeq{r: br, keyCols: j.bCols, expect: bf.Rows()}
	probe := &fileSeq{r: pr, keyCols: j.pCols, expect: pf.Rows()}
	// One level deeper: the pair's own run files (still on disk until this
	// call returns) are the rebuild sources for the child level.
	return j.run(level+1, build, probe,
		&runSource{file: bf, keyCols: j.bCols},
		&runSource{file: pf, keyCols: j.pCols})
}

// ensureIntact verifies one sealed run end to end before its pair is
// joined, rebuilding it once from src when corrupt. *f is replaced by the
// rebuilt file (the corrupt original is unlinked); the rebuild is metered
// as SpillRebuilds. Failure is classified: corruption with no replayable
// source, a failed rebuild, or corruption recurring on the rebuilt run all
// surface wrapped in faults.ErrCorrupt — never a silent short read.
func (j *spillJoin) ensureIntact(level, sub int, side string, f **storage.SpillFile, src *runSource) error {
	err := (*f).Verify()
	if err == nil {
		return nil
	}
	if !errors.Is(err, faults.ErrCorrupt) {
		return err // device failure on the verify read, not damage
	}
	if src == nil {
		return fmt.Errorf("engine: corrupt %s run with no replayable source: %w", side, err)
	}
	nf, rerr := j.rebuildRun(level, sub, side, src)
	if rerr != nil {
		return fmt.Errorf("engine: rebuilding corrupt %s run: %w (%w)", side, rerr, faults.ErrCorrupt)
	}
	if verr := nf.Verify(); verr != nil {
		_ = nf.Remove()
		return fmt.Errorf("engine: corruption recurred on the rebuilt %s run: %w", side, verr)
	}
	if err := (*f).Remove(); err != nil {
		_ = nf.Remove()
		return err
	}
	*f = nf
	j.acct.SpillRebuilds.Add(1)
	return nil
}

// rebuildRun reproduces one sub-partition's run from its source: a full
// pass over the source rows, keeping exactly the ones this level's hash
// scatters into sub. The original run was written in arrival order by the
// same filter, so the rebuilt run is row-identical to what the corrupt file
// held before the damage.
func (j *spillJoin) rebuildRun(level, sub int, side string, src *runSource) (*storage.SpillFile, error) {
	seq, cls, err := src.open()
	if err != nil {
		return nil, err
	}
	if cls != nil {
		defer cls() //nolint:errcheck // read handle; the data was already consumed
	}
	f, err := j.ctx.Spill.Create(fmt.Sprintf("p%d_l%d_s%d_%s_rb", j.part, level, sub, side))
	if err != nil {
		return nil, err
	}
	n := 0
	for {
		t, h, _, err := seq.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			_ = f.Remove()
			return nil, err
		}
		if n++; n&0xfff == 0 {
			if err := j.ctx.Err(); err != nil {
				_ = f.Remove()
				return nil, err
			}
		}
		if spillSub(h, level) != sub {
			continue
		}
		if err := f.Append(t); err != nil {
			_ = f.Remove()
			return nil, err
		}
	}
	nb, err := f.Finish()
	if err != nil {
		_ = f.Remove()
		return nil, err
	}
	j.acct.SpillBytes.Add(nb)
	j.acct.SpillRows.Add(f.Rows())
	return f, nil
}

// inMemory joins a (build, probe) pair with the whole build side resident:
// the recursion leaf, and the over-budget fallback past spillMaxDepth.
func (j *spillJoin) inMemory(build, probe rowSeq) error {
	rb, err := j.loadBuild(build)
	if err != nil {
		return err
	}
	return j.probeResident(rb, probe)
}

// residentBuild is one pair's fully decoded build side, ready to hash.
type residentBuild struct {
	rows   []types.Tuple
	hashes []uint64
	bytes  int64
}

// loadBuild drains the build sequence into memory. Reading a run file to
// io.EOF verifies it end to end (block checksums, footer seal, row counts),
// and nothing has been emitted when an error surfaces here — which is what
// lets the recursion skip the separate pre-join CRC walk for
// in-memory-eligible build runs.
func (j *spillJoin) loadBuild(build rowSeq) (*residentBuild, error) {
	rb := &residentBuild{}
	n := 0
	for {
		t, h, sz, err := build.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if n++; n&0xfff == 0 {
			if err := j.ctx.Err(); err != nil {
				return nil, err
			}
		}
		if sz < 0 {
			sz = int64(t.EncodedSize()) //dynopt:size-ok run-file rows carry no cached size; walked once on re-read
		}
		rb.rows = append(rb.rows, t)
		rb.hashes = append(rb.hashes, h)
		rb.bytes += sz
	}
	return rb, nil
}

// probeResident hashes a loaded build side and streams the probe sequence
// through it. Output rows flow to the sink from here on: any failure past
// this point cannot be retried without duplicating emitted rows.
func (j *spillJoin) probeResident(rb *residentBuild, probe rowSeq) error {
	j.grant.Reserve(rb.bytes)
	defer j.grant.Release(rb.bytes)
	ht := buildTable(rb.rows, rb.hashes, j.bCols)
	j.acct.BuildRows.Add(int64(len(rb.rows)))
	var probed int64
	n := 0
	for {
		t, h, _, err := probe.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n++; n&0xfff == 0 {
			if err := j.ctx.Err(); err != nil {
				return err
			}
		}
		probed++
		j.out = ht.probeInto(j.out, &j.arena, t, h, j.pCols, j.buildFirst)
		if err := j.maybeFlush(); err != nil {
			return err
		}
	}
	j.acct.ProbeRows.Add(probed)
	return nil
}

// loadBuildFromFile decodes one sealed build run fully into memory. The
// fileSeq it drains checks every block CRC before decode and cross-checks
// the decoded row count against the writer's seal at EOF, so a clean return
// carries the same end-to-end guarantee as SpillFile.Verify — from one read
// of the file instead of two.
func (j *spillJoin) loadBuildFromFile(bf *storage.SpillFile) (*residentBuild, error) {
	br, err := bf.Reader()
	if err != nil {
		return nil, err
	}
	defer br.Close()
	return j.loadBuild(&fileSeq{r: br, keyCols: j.bCols, expect: bf.Rows()})
}

// loadBuildRecovering decodes one budget-fitting build run into memory,
// verifying it as it decodes instead of walking its checksums separately
// first. Corruption found during the load surfaces before any output row is
// emitted, so the same rebuild-once ladder as ensureIntact applies: rebuild
// from src, swap *bf to the fresh run, retry the load once.
func (j *spillJoin) loadBuildRecovering(level, sub int, bf **storage.SpillFile, src *runSource) (*residentBuild, error) {
	rb, err := j.loadBuildFromFile(*bf)
	if err == nil {
		return rb, nil
	}
	if !errors.Is(err, faults.ErrCorrupt) {
		return nil, err // device failure on the load read, not damage
	}
	if src == nil {
		return nil, fmt.Errorf("engine: corrupt build run with no replayable source: %w", err)
	}
	nf, rerr := j.rebuildRun(level, sub, "build", src)
	if rerr != nil {
		return nil, fmt.Errorf("engine: rebuilding corrupt build run: %w (%w)", rerr, faults.ErrCorrupt)
	}
	if rb, err = j.loadBuildFromFile(nf); err != nil {
		_ = nf.Remove()
		return nil, fmt.Errorf("engine: corruption recurred on the rebuilt build run: %w", err)
	}
	if err := (*bf).Remove(); err != nil {
		_ = nf.Remove()
		return nil, err
	}
	*bf = nf
	j.acct.SpillRebuilds.Add(1)
	return rb, nil
}

// probeSpilledRun streams one verified probe run through a loaded build
// side.
func (j *spillJoin) probeSpilledRun(rb *residentBuild, pf *storage.SpillFile) error {
	pr, err := pf.Reader()
	if err != nil {
		return err
	}
	defer pr.Close()
	return j.probeResident(rb, &fileSeq{r: pr, keyCols: j.pCols, expect: pf.Rows()})
}

// newFile opens a run file labeled with this partition, level, and
// sub-partition.
func (j *spillJoin) newFile(level, sub int, side string) (*storage.SpillFile, error) {
	return j.ctx.Spill.Create(fmt.Sprintf("p%d_l%d_s%d_%s", j.part, level, sub, side))
}

// probeInto streams one probe row through the table, appending one arena
// tuple per match to out — the single-row counterpart of joinInto for the
// spill path, where probe rows arrive from a stream instead of a slice.
//
//dynopt:hotpath
func (ht *hashTable) probeInto(out []types.Tuple, arena *types.Arena, pt types.Tuple, h uint64, probeCols []int, buildFirst bool) []types.Tuple {
	starts, idx, hs, bRows := ht.starts, ht.idx, ht.hashes, ht.rows
	singleKey := len(probeCols) == 1 && len(ht.keyCols) == 1
	var bCol0, pCol0 int
	if singleKey {
		bCol0, pCol0 = ht.keyCols[0], probeCols[0]
	}
	b := h & ht.mask
	for _, ri := range idx[starts[b]:starts[b+1]] {
		if hs[ri] != h {
			continue
		}
		bt := bRows[ri]
		if singleKey {
			if !bt[bCol0].Equal(pt[pCol0]) {
				continue
			}
		} else if !bt.KeysEqual(ht.keyCols, pt, probeCols) {
			continue
		}
		if buildFirst {
			out = append(out, arena.Concat(bt, pt))
		} else {
			out = append(out, arena.Concat(pt, bt))
		}
	}
	return out
}
