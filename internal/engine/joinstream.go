package engine

import (
	"fmt"
	"io"

	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// This file holds the streaming join executors: the build side arrives as a
// materialized Relation or a Source whose scan fuses into the exchange (a
// hash table must hold it either way), the probe side as a chunk Source,
// and the output flows into a Sink chunk-by-chunk — one pass from scan to
// sink with no probe-side relation and no output re-walk. The
// Relation-in/Relation-out entry points in join.go stay batch: with both
// sides already materialized there is nothing left to stream.

// probeState runs one destination partition's probe loop over a hash
// table: per chunk, join matches into a reusable buffer and emit. One
// instance per partition worker; buffers are reused across chunks.
type probeState struct {
	ctx        *Context
	ht         *hashTable
	pCols      []int
	buildFirst bool
	sink       Sink
	p          int

	arena      types.Arena
	rows       []types.Tuple
	probeRows  int64
	probeBytes int64
}

//dynopt:hotpath
func (w *probeState) consume(c *Chunk) error {
	w.probeRows += int64(c.Live())
	if c.Sizes != nil {
		for _, sz := range c.Sizes {
			w.probeBytes += sz
		}
	}
	// No counting pre-pass: the batch path pre-counts matches to exactly
	// size a whole partition's output, but a chunk's output lives in a
	// reusable buffer whose capacity converges after a few chunks, and the
	// arena grows geometrically — so the streaming probe pays one pass over
	// the buckets, not two.
	if c.Sel != nil {
		w.rows = w.ht.joinSelInto(w.rows[:0], &w.arena, c.Rows, c.Sel, c.Hashes, w.pCols, w.buildFirst)
	} else {
		w.rows = w.ht.joinInto(w.rows[:0], &w.arena, c.Rows, c.Hashes, w.pCols, w.buildFirst)
	}
	if len(w.rows) == 0 {
		return nil
	}
	return w.sink.Emit(w.p, w.rows)
}

func (w *probeState) drain(st probeStream) error {
	if err := w.ctx.Faults.Fire(faults.Point("probe.drain")); err != nil {
		return err
	}
	for {
		if err := w.ctx.Err(); err != nil {
			return err
		}
		c, err := st.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := w.consume(c); err != nil {
			return err
		}
	}
}

// HashJoinStream is the streaming repartitioning hash join: the build
// relation is hash-exchanged (batch — it must materialize under the table
// anyway), the probe source is scattered chunk-wise to its destination
// partitions (or piped straight through when already partitioned on the
// keys), and each destination probes arriving chunks immediately, emitting
// output chunks into the sink. buildFirst selects whether build columns
// form the left half of the output schema.
func HashJoinStream(ctx *Context, build *Relation, probe Source, buildKeys, probeKeys []string, buildFirst bool, mk SinkFactory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(buildKeys) != len(probeKeys) || len(buildKeys) == 0 {
		return fmt.Errorf("engine: hash join needs aligned non-empty keys, got %v / %v", buildKeys, probeKeys)
	}
	if len(build.Parts) != probe.Parts() {
		return fmt.Errorf("engine: partition count mismatch %d vs %d", len(build.Parts), probe.Parts())
	}
	bCols, err := resolveKeys(build.Schema, buildKeys)
	if err != nil {
		return err
	}
	pCols, err := resolveKeys(probe.Schema(), probeKeys)
	if err != nil {
		return err
	}
	if err := checkPartRows(build.Parts); err != nil {
		return err
	}
	realSpill := ctx.RealSpill()
	build, bHash, bSize, err := repartition(ctx, build, bCols, realSpill)
	if err != nil {
		return err
	}
	return hashJoinStreamCore(ctx, build, bHash, bSize, bCols, probe, pCols, buildFirst, mk)
}

// HashJoinStreamSources is HashJoinStream with the build side arriving as a
// Source too: its scan is fused into the exchange scatter, so the build
// side is decoded, filtered, hashed, and placed at its destination in one
// pass, materializing only the exchanged relation the hash tables need.
// When the build source is already partitioned on the keys it materializes
// in place (zero-copy for pass-through scans), matching the batch path.
func HashJoinStreamSources(ctx *Context, buildSrc, probe Source, buildKeys, probeKeys []string, buildFirst bool, mk SinkFactory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(buildKeys) != len(probeKeys) || len(buildKeys) == 0 {
		return fmt.Errorf("engine: hash join needs aligned non-empty keys, got %v / %v", buildKeys, probeKeys)
	}
	if buildSrc.Parts() != probe.Parts() {
		return fmt.Errorf("engine: partition count mismatch %d vs %d", buildSrc.Parts(), probe.Parts())
	}
	bCols, err := resolveKeys(buildSrc.Schema(), buildKeys)
	if err != nil {
		return err
	}
	pCols, err := resolveKeys(probe.Schema(), probeKeys)
	if err != nil {
		return err
	}
	realSpill := ctx.RealSpill()
	var build *Relation
	var bHash [][]uint64
	var bSize [][]int64
	if colsMatch(buildSrc.PartCols(), bCols) || buildSrc.Parts() == 1 {
		// Already placed: materialize in place and prehash, like the batch
		// path's skipped exchange.
		build, err = materializeSource(ctx, buildSrc)
		if err != nil {
			return err
		}
		if err := checkPartRows(build.Parts); err != nil {
			return err
		}
		bHash = prehashParts(build.Parts, bCols)
	} else {
		build, bHash, bSize, err = collectExchanged(ctx, buildSrc, bCols, realSpill)
		if err != nil {
			return err
		}
	}
	return hashJoinStreamCore(ctx, build, bHash, bSize, bCols, probe, pCols, buildFirst, mk)
}

// hashJoinStreamCore runs the probe phase over an already-exchanged build
// relation: per destination partition, build the table (or the spilling
// DHHJ under real memory governance) and stream probe chunks through it
// into the sink.
func hashJoinStreamCore(ctx *Context, build *Relation, bHash [][]uint64, bSize [][]int64, bCols []int,
	probe Source, pCols []int, buildFirst bool, mk SinkFactory) error {
	realSpill := ctx.RealSpill()
	var outSchema *types.Schema
	var outPartCols []int
	if buildFirst {
		outSchema = build.Schema.Concat(probe.Schema())
		outPartCols = append([]int(nil), bCols...)
	} else {
		outSchema = probe.Schema().Concat(build.Schema)
		outPartCols = append([]int(nil), pCols...)
	}
	sink, err := mk(outSchema, outPartCols)
	if err != nil {
		return err
	}

	n := len(build.Parts)
	acct := ctx.Accounting()
	budget := ctx.Cluster.MemoryPerNodeBytes()
	// Per-row probe sizes feed the simulated spill model; the real-spill
	// join meters actual run files instead, and with no budget the model is
	// inert, so neither needs them.
	wantSizes := !realSpill && budget > 0

	worker := func(p int, st probeStream, hint int64) error {
		if realSpill {
			// Real memory governance: the dynamic hybrid hash join holds at
			// most the per-node budget of build rows resident, evicting
			// overflow sub-partitions to run files (spilljoin.go).
			return spillJoinPartitionStream(ctx, p,
				build.Parts[p], bHash[p], partSizes(bSize, p), bCols, build.PartBytes(p),
				st, pCols, buildFirst, sink)
		}
		w := &probeState{
			ctx:   ctx,
			ht:    buildTable(build.Parts[p], bHash[p], bCols),
			pCols: pCols, buildFirst: buildFirst,
			sink: sink, p: p,
		}
		acct.BuildRows.Add(int64(len(build.Parts[p])))
		if err := w.drain(st); err != nil {
			return err
		}
		acct.ProbeRows.Add(w.probeRows)
		probeBytes := w.probeBytes
		if hint >= 0 {
			probeBytes = hint
		}
		meterSpill(ctx, build.PartBytes(p), probeBytes,
			int64(len(build.Parts[p])), w.probeRows)
		return nil
	}

	if colsMatch(probe.PartCols(), pCols) || n == 1 {
		// Exchange skipped (§3's pre-partitioned optimization) or a single
		// partition: each probe partition pipes straight into its worker.
		return forEachPart(n, func(p int) error {
			cur, err := probe.Open(p)
			if err != nil {
				return err
			}
			hint := probe.PartBytesHint(p)
			st := &localStream{cur: cur, keyCols: pCols, wantSizes: wantSizes && hint < 0}
			return worker(p, st, hint)
		})
	}
	return runScatter(ctx, probe, pCols, func(p int, st probeStream) error {
		return worker(p, st, -1)
	})
}

// BroadcastJoinStream replicates the (small, materialized) build relation
// to every probe partition — metering (n-1)× its bytes as broadcast
// traffic — then streams each probe partition through the shared table in
// place, with no probe movement at all (§3).
func BroadcastJoinStream(ctx *Context, build *Relation, probe Source, buildKeys, probeKeys []string, buildFirst bool, mk SinkFactory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(buildKeys) != len(probeKeys) || len(buildKeys) == 0 {
		return fmt.Errorf("engine: broadcast join needs aligned non-empty keys, got %v / %v", buildKeys, probeKeys)
	}
	if len(build.Parts) != probe.Parts() {
		return fmt.Errorf("engine: partition count mismatch %d vs %d", len(build.Parts), probe.Parts())
	}
	bCols, err := resolveKeys(build.Schema, buildKeys)
	if err != nil {
		return err
	}
	pCols, err := resolveKeys(probe.Schema(), probeKeys)
	if err != nil {
		return err
	}
	if err := checkPartRows(build.Parts); err != nil {
		return err
	}
	n := probe.Parts()
	if ctx.RealSpill() {
		// Under real memory governance an over-budget build side may not be
		// copied to every node: every copy would blow the per-node grant at
		// once, with nothing to evict (broadcast tables cannot spill without
		// losing matches). Fall back to the partitioned hybrid hash join,
		// which spills gracefully. The same fallback fires when the governor
		// is out of aggregate capacity.
		budget := ctx.Cluster.MemoryPerNodeBytes()
		bb := build.ByteSize()
		hold := bb * int64(n)
		if bb > budget {
			return HashJoinStream(ctx, build, probe, buildKeys, probeKeys, buildFirst, mk)
		}
		if !ctx.Grant.Reserve(hold) {
			ctx.Grant.Release(hold)
			return HashJoinStream(ctx, build, probe, buildKeys, probeKeys, buildFirst, mk)
		}
		defer ctx.Grant.Release(hold)
	}

	acct := ctx.Accounting()
	all := make([]types.Tuple, 0, build.RowCount())
	for _, p := range build.Parts {
		all = append(all, p...)
	}
	if len(all) > maxPartRows {
		return fmt.Errorf("engine: broadcast build side has %d rows, exceeding the %d-row limit of int32 row indexing", len(all), maxPartRows)
	}
	buildBytes := build.ByteSize()
	if n > 1 {
		acct.BroadcastRows.Add(int64(len(all)) * int64(n-1))
		acct.BroadcastBytes.Add(buildBytes * int64(n-1))
	}
	ht := buildTable(all, types.HashKeysInto(all, bCols, nil), bCols)
	acct.BuildRows.Add(int64(len(all)) * int64(n)) // each partition builds its copy

	var outSchema *types.Schema
	if buildFirst {
		outSchema = build.Schema.Concat(probe.Schema())
	} else {
		outSchema = probe.Schema().Concat(build.Schema)
	}
	// The probe side never moves; its partitioning columns survive at
	// shifted offsets when the build side forms the left half.
	var outPartCols []int
	if pc := probe.PartCols(); pc != nil {
		offset := 0
		if buildFirst {
			offset = build.Schema.Len()
		}
		outPartCols = make([]int, len(pc))
		for i, c := range pc {
			outPartCols[i] = c + offset
		}
	}
	sink, err := mk(outSchema, outPartCols)
	if err != nil {
		return err
	}

	budget := ctx.Cluster.MemoryPerNodeBytes()
	return forEachPart(n, func(p int) error {
		cur, err := probe.Open(p)
		if err != nil {
			return err
		}
		hint := probe.PartBytesHint(p)
		st := &localStream{cur: cur, keyCols: pCols, wantSizes: budget > 0 && hint < 0}
		w := &probeState{
			ctx:   ctx,
			ht:    ht,
			pCols: pCols, buildFirst: buildFirst,
			sink: sink, p: p,
		}
		if err := w.drain(st); err != nil {
			return err
		}
		acct.ProbeRows.Add(w.probeRows)
		probeBytes := w.probeBytes
		if hint >= 0 {
			probeBytes = hint
		}
		// Each partition holds a full copy of the broadcast build side.
		meterSpill(ctx, buildBytes, probeBytes, int64(len(all)), w.probeRows)
		return nil
	})
}

// IndexNLJoinStream streams the (small, filtered) outer source through the
// inner dataset's partition-local secondary indexes: outer chunks are
// replicated to every partition as they are produced and probe the index on
// arrival, so the outer is never materialized anywhere. Output tuples are
// outer⧺inner.
func IndexNLJoinStream(ctx *Context, outer Source, inner *storage.Dataset, innerAlias string,
	outerKeys, innerKeys []string, innerFilter expr.Expr, mk SinkFactory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(outerKeys) != len(innerKeys) || len(outerKeys) == 0 {
		return fmt.Errorf("engine: index join needs aligned non-empty keys")
	}
	idx, ok := inner.Indexes[innerKeys[0]]
	if !ok {
		return fmt.Errorf("engine: dataset %s has no index on %q", inner.Name, innerKeys[0])
	}
	if outer.Parts() != len(inner.Parts) {
		return fmt.Errorf("engine: partition count mismatch %d vs %d", outer.Parts(), len(inner.Parts))
	}
	if err := checkPartRows(inner.Parts); err != nil {
		return err
	}
	oCols, err := resolveKeys(outer.Schema(), outerKeys)
	if err != nil {
		return err
	}
	innerSchema := inner.Schema.Requalify(innerAlias)
	iCols := make([]int, len(innerKeys))
	for i, k := range innerKeys {
		ci, ok := inner.Schema.Index(k)
		if !ok {
			return fmt.Errorf("engine: inner key %q not in %s", k, inner.Schema)
		}
		iCols[i] = ci
	}
	var pred expr.Compiled
	if innerFilter != nil {
		pred, err = expr.Compile(innerFilter, ctx.Env(innerSchema))
		if err != nil {
			return err
		}
	}

	n := len(inner.Parts)
	outSchema := outer.Schema().Concat(innerSchema)
	// Inner partitioning survives (inner rows do not move).
	var outPartCols []int
	if pf := inner.PartitionFields(); len(pf) > 0 {
		cols := make([]int, 0, len(pf))
		ok := true
		offset := outer.Schema().Len()
		for _, f := range pf {
			ci, found := inner.Schema.Index(f)
			if !found {
				ok = false
				break
			}
			cols = append(cols, ci+offset)
		}
		if ok {
			outPartCols = cols
		}
	}
	sink, err := mk(outSchema, outPartCols)
	if err != nil {
		return err
	}

	acct := ctx.Accounting()
	residual := iCols[1:]
	oResidual := oCols[1:]
	key0 := oCols[0]
	outWidth := outSchema.Len()
	totalRows, totalBytes, err := runReplicate(ctx, outer, n, func(p int, st probeStream) error {
		part := inner.Parts[p]
		// Paged inner: page-granular row fetch (see IndexNLJoin).
		var pview *storage.PartView
		if pgd := inner.Paged(); pgd != nil {
			pview = pgd.Part(p)
		}
		rowAt := idx.Rows(p)
		var arena types.Arena
		var rows []types.Tuple
		var ranges []int32
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := st.next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			// Pass 1: resolve every outer row's index range once; the range
			// widths bound the chunk's output exactly (pre-filter), sizing
			// the header slice and arena up front. Replicated chunks are
			// dense (the broadcast flattens selections), so c.Rows is the
			// live set.
			if cap(ranges) < 2*len(c.Rows) {
				want := 2 * ctx.chunkRows()
				if want < 2*len(c.Rows) {
					want = 2 * len(c.Rows)
				}
				ranges = make([]int32, 0, want)
			}
			ranges = ranges[:2*len(c.Rows)]
			var fetched int64
			for o, ot := range c.Rows {
				lo, hi := idx.Lookup(p, ot[key0])
				ranges[2*o], ranges[2*o+1] = int32(lo), int32(hi)
				fetched += int64(hi - lo)
			}
			acct.IndexLookups.Add(int64(len(c.Rows)))
			acct.IndexRows.Add(fetched)
			if fetched == 0 {
				continue
			}
			if cap(rows) < int(fetched) {
				rows = make([]types.Tuple, 0, fetched)
			}
			rows = rows[:0]
			if pview == nil && len(residual) == 0 && pred == nil {
				arena.Reserve(int(fetched) * outWidth)
				for o, ot := range c.Rows {
					for i := ranges[2*o]; i < ranges[2*o+1]; i++ {
						rows = append(rows, arena.Concat(ot, part[rowAt[i]]))
					}
				}
			} else {
				for o, ot := range c.Rows {
					for i := ranges[2*o]; i < ranges[2*o+1]; i++ {
						var it types.Tuple
						if pview != nil {
							var err error
							it, err = pview.Row(rowAt[i])
							if err != nil {
								return err
							}
						} else {
							it = part[rowAt[i]]
						}
						if len(residual) > 0 && !ot.KeysEqual(oResidual, it, residual) {
							continue
						}
						if pred != nil {
							v, err := pred(it)
							if err != nil {
								return err
							}
							if !v.IsTrue() {
								continue
							}
						}
						rows = append(rows, arena.Concat(ot, it))
					}
				}
			}
			if len(rows) > 0 {
				if err := sink.Emit(p, rows); err != nil {
					return err
				}
			}
		}
	})
	if err != nil {
		return err
	}
	if n > 1 {
		acct.BroadcastRows.Add(totalRows * int64(n-1))
		acct.BroadcastBytes.Add(totalBytes * int64(n-1))
	}
	return nil
}
