package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// TestPruneSafetyProperty is the zone-map soundness property: over
// randomized page contents and randomized pushed-down filters, a page that
// pagePruned skips (judging only the directory stats EncodePage computed)
// must contain no row the full filter would pass. Pruning that keeps a
// useless page costs a read; pruning that skips a useful one loses rows —
// the latter must never happen, for any mix of ranges, equality points,
// NULLs, or all-NULL columns.
func TestPruneSafetyProperty(t *testing.T) {
	sch := &types.Schema{Fields: []types.Field{
		{Name: "a", Kind: types.KindInt},
		{Name: "b", Kind: types.KindFloat},
		{Name: "c", Kind: types.KindString},
	}}
	env := &expr.Env{Schema: sch}
	rng := rand.New(rand.NewSource(20260808))

	randRow := func() types.Tuple {
		row := types.Tuple{
			types.Int(int64(rng.Intn(40) - 20)),
			types.Float(float64(rng.Intn(40)-20) / 2),
			types.Str(string(rune('a' + rng.Intn(6)))),
		}
		for i := range row {
			if rng.Intn(8) == 0 {
				row[i] = types.Null()
			}
		}
		return row
	}
	randConst := func(col int) expr.Expr {
		switch col {
		case 0:
			return &expr.Literal{Val: types.Int(int64(rng.Intn(44) - 22))}
		case 1:
			return &expr.Literal{Val: types.Float(float64(rng.Intn(44)-22) / 2)}
		default:
			return &expr.Literal{Val: types.Str(string(rune('a' + rng.Intn(8))))}
		}
	}
	names := []string{"a", "b", "c"}
	randConjunct := func() expr.Expr {
		col := rng.Intn(3)
		ref := &expr.Column{Name: names[col]}
		if rng.Intn(4) == 0 {
			return &expr.Between{X: ref, Lo: randConst(col), Hi: randConst(col)}
		}
		ops := []expr.CmpOp{expr.CmpEq, expr.CmpNe, expr.CmpLt, expr.CmpLe, expr.CmpGt, expr.CmpGe}
		cmp := &expr.Compare{Op: ops[rng.Intn(len(ops))], L: ref, R: randConst(col)}
		if rng.Intn(2) == 0 {
			// Mirrored const-op-column form: extraction must flip the bound.
			cmp.L, cmp.R = cmp.R, cmp.L
		}
		return cmp
	}

	for iter := 0; iter < 2000; iter++ {
		nrows := rng.Intn(30) + 1
		rows := make([]types.Tuple, nrows)
		allNull := rng.Intn(10) == 0 // occasionally force an all-NULL column
		nullCol := rng.Intn(3)
		for i := range rows {
			rows[i] = randRow()
			if allNull {
				rows[i][nullCol] = types.Null()
			}
		}
		_, st := types.EncodePage(nil, sch, rows)
		pi := &storage.PageInfo{Rows: int32(nrows), Cols: st}

		var filter expr.Expr = randConjunct()
		if n := rng.Intn(3); n > 0 {
			kids := []expr.Expr{filter}
			for k := 0; k < n; k++ {
				kids = append(kids, randConjunct())
			}
			filter = &expr.And{Kids: kids}
		}
		zones := expr.ZoneRanges(filter, env)
		if len(zones) == 0 || !pagePruned(zones, pi) {
			continue
		}
		for _, row := range rows {
			v, err := filter.Eval(row, env)
			if err != nil {
				t.Fatalf("iter %d: eval: %v", iter, err)
			}
			if v.IsTrue() {
				t.Fatalf("iter %d: pruned page holds a passing row %v under filter %s (stats %s)",
					iter, row, filter.SQL(), describeStats(st))
			}
		}
	}
}

func describeStats(st []types.PageColStats) string {
	out := ""
	for i, cs := range st {
		if i > 0 {
			out += "; "
		}
		if cs.HasMinMax {
			out += fmt.Sprintf("col%d [%v, %v] nulls=%d", i, cs.Min, cs.Max, cs.Nulls)
		} else {
			out += fmt.Sprintf("col%d all-null(%d)", i, cs.Nulls)
		}
	}
	return out
}
