package engine

import (
	"errors"
	"os"
	"sort"
	"testing"

	"dynopt/internal/cluster"
	"dynopt/internal/faults"
	"dynopt/internal/storage"
)

// realSpillCtx attaches a spill manager and a governor grant to a test
// context — the execution scope DB.QueryCtx builds when Config.SpillDir is
// set. Cleanup sweeps the spill dir and closes the grant like every query
// exit path does.
func realSpillCtx(t *testing.T, ctx *Context) (*storage.SpillManager, string) {
	t.Helper()
	root := t.TempDir()
	sm := storage.NewSpillManager(root, "qt_")
	ctx.Spill = sm
	ctx.Grant = ctx.Cluster.Governor().Grant()
	t.Cleanup(func() {
		sm.Sweep()
		ctx.Grant.Close()
	})
	return sm, root
}

func sortedRows(rel *Relation) []string {
	out := make([]string, 0, rel.RowCount())
	for _, p := range rel.Parts {
		for _, t := range p {
			out = append(out, t.String())
		}
	}
	sort.Strings(out)
	return out
}

func rowsEqual(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

// TestRealSpillJoin50kIdenticalResults is the acceptance bench: a 50k-row
// build side joined under a budget of 1/8 of its per-node bytes must spill
// for real and produce exactly the rows of the in-memory join, with
// SpillBytes equal to the actual run-file bytes written and peak resident
// build memory within the grant.
func TestRealSpillJoin50kIdenticalResults(t *testing.T) {
	const nodes = 4
	build := func(ctx *Context) (*Relation, *Relation) {
		register(t, ctx, "fact", []string{"id"}, []string{"id", "k", "pay"}, seqTable(50000, 997))
		register(t, ctx, "dim", []string{"id"}, []string{"id", "k", "pay"}, seqTable(2000, 997))
		f, err := ScanByName(ctx, "fact", "f", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ScanByName(ctx, "dim", "d", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return f, d
	}

	// Reference: ample memory, no spill manager.
	memCtx := testCtx(t, nodes)
	mf, md := build(memCtx)
	memCtx.Cluster.SetMemoryPerNodeBytes(1 << 30)
	memRel, err := HashJoin(memCtx, mf, md, joinKeys("f", "k"), joinKeys("d", "k"), true)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRows(memRel)

	// Real spill: budget 1/8 of the per-node build-side bytes.
	ctx := testCtx(t, nodes)
	f, d := build(ctx)
	buildDS, _ := ctx.Catalog.Get("fact")
	budget := buildDS.ByteSize() / nodes / 8
	ctx.Cluster.SetMemoryPerNodeBytes(budget)
	sm, _ := realSpillCtx(t, ctx)

	before := ctx.Cluster.Acct().Snapshot()
	rel, err := HashJoin(ctx, f, d, joinKeys("f", "k"), joinKeys("d", "k"), true)
	if err != nil {
		t.Fatal(err)
	}
	d1 := ctx.Cluster.Acct().Snapshot().Sub(before)

	rowsEqual(t, sortedRows(rel), want)
	if d1.SpillBytes == 0 || d1.SpillRows == 0 {
		t.Fatalf("1/8 budget did not spill: %+v", d1)
	}
	if got := sm.BytesWritten(); d1.SpillBytes != got {
		t.Errorf("SpillBytes = %d, actual run-file bytes written = %d", d1.SpillBytes, got)
	}
	capacity := ctx.Cluster.Governor().Capacity()
	if peak := ctx.Grant.Peak(); peak > capacity {
		t.Errorf("peak resident build memory %d exceeded the grant capacity %d", peak, capacity)
	}
	if held := ctx.Grant.Used(); held != 0 {
		t.Errorf("join left %d bytes held on the grant", held)
	}
}

// TestRealSpillSweepLeavesDirEmpty checks the disk side of the lifecycle:
// run files are consumed and removed by the join itself, and the sweep
// removes the per-query directory.
func TestRealSpillSweepLeavesDirEmpty(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "pay"}, seqTable(20000, 499))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "pay"}, seqTable(1000, 499))
	ctx.Cluster.SetMemoryPerNodeBytes(8 << 10)
	sm, root := realSpillCtx(t, ctx)
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "k"), joinKeys("b", "k"), true); err != nil {
		t.Fatal(err)
	}
	if sm.BytesWritten() == 0 {
		t.Fatal("join under an 8KB budget did not spill")
	}
	// The join consumed and removed every run file it wrote.
	if dir := sm.Dir(); dir != "" {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("run files left behind after the join: %d", len(entries))
		}
	}
	if err := sm.Sweep(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after sweep: %v", entries)
	}
}

// TestRealSpillSkewFallsBackInMemory drives the recursion pathology: every
// row shares one join key, so no amount of re-partitioning splits the
// spilled pair, and the depth-capped fallback joins it in memory — with
// correct results.
func TestRealSpillSkewFallsBackInMemory(t *testing.T) {
	ctx := testCtx(t, 2)
	rows := make([][]int64, 3000)
	for i := range rows {
		rows[i] = []int64{int64(i), 7, int64(i)}
	}
	small := make([][]int64, 5)
	for i := range small {
		small[i] = []int64{int64(i), 7, int64(i)}
	}
	register(t, ctx, "skew", []string{"id"}, []string{"id", "k", "pay"}, rows)
	register(t, ctx, "tiny", []string{"id"}, []string{"id", "k", "pay"}, small)
	ctx.Cluster.SetMemoryPerNodeBytes(2 << 10) // far below the one hot key's rows
	realSpillCtx(t, ctx)
	rs, _ := ScanByName(ctx, "skew", "s", nil, nil)
	rt, _ := ScanByName(ctx, "tiny", "t", nil, nil)
	rel, err := HashJoin(ctx, rs, rt, joinKeys("s", "k"), joinKeys("t", "k"), true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rel.RowCount(), int64(3000*5); got != want {
		t.Errorf("skewed spill join produced %d rows, want %d", got, want)
	}
}

// TestBroadcastFallsBackToPartitionedWhenOverBudget: in real-spill mode an
// over-budget build side is not replicated; the join runs partitioned (no
// broadcast traffic) and still returns identical rows.
func TestBroadcastFallsBackToPartitionedWhenOverBudget(t *testing.T) {
	const nodes = 4
	load := func(ctx *Context) (*Relation, *Relation) {
		register(t, ctx, "fact", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 200))
		register(t, ctx, "dim", []string{"id"}, []string{"id", "k", "pay"}, seqTable(1000, 200))
		f, _ := ScanByName(ctx, "fact", "f", nil, nil)
		d, _ := ScanByName(ctx, "dim", "d", nil, nil)
		return f, d
	}
	memCtx := testCtx(t, nodes)
	mf, md := load(memCtx)
	memCtx.Cluster.SetMemoryPerNodeBytes(1 << 30)
	memRel, err := BroadcastJoin(memCtx, mf, md, joinKeys("f", "k"), joinKeys("d", "k"), false)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRows(memRel)

	ctx := testCtx(t, nodes)
	f, d := load(ctx)
	ctx.Cluster.SetMemoryPerNodeBytes(4 << 10) // dim copy (~27KB) over budget
	realSpillCtx(t, ctx)
	before := ctx.Cluster.Acct().Snapshot()
	rel, err := BroadcastJoin(ctx, f, d, joinKeys("f", "k"), joinKeys("d", "k"), false)
	if err != nil {
		t.Fatal(err)
	}
	diff := ctx.Cluster.Acct().Snapshot().Sub(before)
	if diff.BroadcastBytes != 0 || diff.BroadcastRows != 0 {
		t.Errorf("over-budget broadcast still replicated: %+v", diff)
	}
	if diff.ShuffleRows == 0 {
		t.Error("fallback did not run the partitioned join")
	}
	rowsEqual(t, sortedRows(rel), want)
}

// TestBroadcastWithinBudgetStillBroadcasts: real-spill mode leaves
// within-budget broadcasts alone (and holds the replicated copies on the
// grant while the join runs).
func TestBroadcastWithinBudgetStillBroadcasts(t *testing.T) {
	ctx := testCtx(t, 4)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 50))
	register(t, ctx, "dim", []string{"id"}, []string{"id", "k", "pay"}, seqTable(50, 50))
	ctx.Cluster.SetMemoryPerNodeBytes(256 << 10)
	realSpillCtx(t, ctx)
	f, _ := ScanByName(ctx, "fact", "f", nil, nil)
	d, _ := ScanByName(ctx, "dim", "d", nil, nil)
	before := ctx.Cluster.Acct().Snapshot()
	if _, err := BroadcastJoin(ctx, f, d, joinKeys("f", "k"), joinKeys("d", "k"), false); err != nil {
		t.Fatal(err)
	}
	diff := ctx.Cluster.Acct().Snapshot().Sub(before)
	if diff.BroadcastBytes == 0 {
		t.Error("within-budget broadcast did not broadcast")
	}
	if diff.SpillBytes != 0 {
		t.Errorf("within-budget broadcast spilled %d bytes", diff.SpillBytes)
	}
	if held := ctx.Grant.Used(); held != 0 {
		t.Errorf("broadcast left %d bytes held on the grant", held)
	}
}

// TestSimulatedModeUntouchedBySpillSupport pins the opt-in contract: with
// no spill manager attached, a tight budget still meters the simulated
// model and writes nothing.
func TestSimulatedModeUntouchedBySpillSupport(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	ctx.Cluster.SetMemoryPerNodeBytes(4 << 10)
	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	if _, err := HashJoin(ctx, ra, rb, joinKeys("a", "k"), joinKeys("b", "k"), false); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cluster.Acct().SpillBytes.Load(); got == 0 {
		t.Error("simulated spill model stopped metering")
	}
}

// TestRealSpillGovernorPressureSheds: a second query hogging the governor
// forces an otherwise-fitting join to spill — heavy traffic degrades to
// disk instead of over-committing memory.
func TestRealSpillGovernorPressureSheds(t *testing.T) {
	ctx := testCtx(t, 2)
	register(t, ctx, "a", []string{"id"}, []string{"id", "k", "pay"}, seqTable(5000, 100))
	register(t, ctx, "b", []string{"id"}, []string{"id", "k", "pay"}, seqTable(1000, 100))
	ctx.Cluster.SetMemoryPerNodeBytes(256 << 10) // ample for this build side
	sm, _ := realSpillCtx(t, ctx)

	// Another query holds the whole cluster budget.
	hog := ctx.Cluster.Governor().Grant()
	hog.Reserve(ctx.Cluster.Governor().Capacity())
	defer hog.Close()

	ra, _ := ScanByName(ctx, "a", "a", nil, nil)
	rb, _ := ScanByName(ctx, "b", "b", nil, nil)
	rel, err := HashJoin(ctx, ra, rb, joinKeys("a", "k"), joinKeys("b", "k"), true)
	if err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() == 0 {
		t.Fatal("join under pressure produced no rows")
	}
	if sm.BytesWritten() == 0 {
		t.Error("governor pressure did not push the join to disk")
	}
}

// corruptSpillJoin runs the 1/8-budget spilling join with a corruption rule
// armed on spill.corrupt, returning the sorted output rows, the counter
// delta, and the join error.
func corruptSpillJoin(t *testing.T, rule faults.Rule) ([]string, cluster.Snapshot, error) {
	t.Helper()
	ctx := testCtx(t, 2)
	register(t, ctx, "fact", []string{"id"}, []string{"id", "k", "pay"}, seqTable(20000, 499))
	register(t, ctx, "dim", []string{"id"}, []string{"id", "k", "pay"}, seqTable(1000, 499))
	f, err := ScanByName(ctx, "fact", "f", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ScanByName(ctx, "dim", "d", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	buildDS, _ := ctx.Catalog.Get("fact")
	ctx.Cluster.SetMemoryPerNodeBytes(buildDS.ByteSize() / 2 / 8)
	sm, _ := realSpillCtx(t, ctx)
	reg := faults.New(0xC0FFEE)
	reg.Arm(rule)
	ctx.Faults = reg
	sm.Faults = reg

	before := ctx.Cluster.Acct().Snapshot()
	rel, err := HashJoin(ctx, f, d, joinKeys("f", "k"), joinKeys("d", "k"), true)
	delta := ctx.Cluster.Acct().Snapshot().Sub(before)
	if err != nil {
		return nil, delta, err
	}
	return sortedRows(rel), delta, nil
}

// TestSpillCorruptionRebuildsRun: one injected corruption (any kind) is
// healed by rebuilding the damaged run from its still-resident source — the
// join's rows are byte-identical to the clean run's, with the rebuild
// metered.
func TestSpillCorruptionRebuildsRun(t *testing.T) {
	clean, cleanDelta, err := corruptSpillJoin(t, faults.Rule{Point: "spill.corrupt", Corrupt: faults.CorruptNone})
	if err != nil {
		t.Fatal(err)
	}
	if cleanDelta.SpillBytes == 0 {
		t.Fatal("reference join did not spill")
	}
	if cleanDelta.SpillRebuilds != 0 {
		t.Fatalf("reference join rebuilt %d runs", cleanDelta.SpillRebuilds)
	}
	for _, tc := range []struct {
		name string
		kind faults.CorruptKind
	}{
		{"flip-bit", faults.CorruptFlipBit},
		{"truncate-tail", faults.CorruptTruncateTail},
		{"torn-write", faults.CorruptTornWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows, delta, err := corruptSpillJoin(t, faults.Rule{Point: "spill.corrupt", OneShot: true, Corrupt: tc.kind})
			if err != nil {
				t.Fatal(err)
			}
			if delta.SpillRebuilds < 1 {
				t.Errorf("no rebuild metered: %+v", delta)
			}
			rowsEqual(t, rows, clean)
		})
	}
}

// TestSpillCorruptionRecursFailsClassified: corruption striking every
// read-back (EveryN:1) damages the rebuilt run too; the join must fail
// classified ErrCorrupt, never return short or wrong rows.
func TestSpillCorruptionRecursFailsClassified(t *testing.T) {
	_, _, err := corruptSpillJoin(t, faults.Rule{Point: "spill.corrupt", EveryN: 1, Corrupt: faults.CorruptFlipBit})
	if err == nil {
		t.Fatal("recurring corruption joined without error")
	}
	if !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("recurring corruption classified %v, want ErrCorrupt", err)
	}
}
