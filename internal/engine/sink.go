package engine

import (
	"sync"

	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Materialize is the Sink operator of Figure 4: it writes a relation to the
// temp store (metering the write I/O of the blocking re-optimization point)
// and collects online statistics on the requested fields — the join keys of
// the remaining query, so no unnecessary sketches are built (§5.3).
//
// The materialized dataset's schema is flattened with sqlpp.FlattenName
// (a.x → a_x), the same rule query reconstruction applies, so the re-parsed
// reformulated query resolves against it. statsFields names flattened
// columns; nil collects none (the last iteration disables online stats).
// Row and byte counts are always recorded — the Planner needs sizes.
func Materialize(ctx *Context, rel *Relation, name string, statsFields map[string]bool) (*storage.Dataset, *stats.DatasetStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	flat := &types.Schema{Fields: make([]types.Field, rel.Schema.Len())}
	for i, f := range rel.Schema.Fields {
		flat.Fields[i] = types.Field{Name: sqlpp.FlattenName(f.Qualifier, f.Name), Kind: f.Kind}
	}

	ds := &storage.Dataset{
		Name:    name,
		Schema:  flat,
		Parts:   make([][]types.Tuple, len(rel.Parts)),
		Indexes: map[string]*storage.Index{},
		Temp:    true,
	}
	// Preserve partitioning so a later hash join on the same keys skips the
	// exchange (Reader restores PartCols from these fields).
	if rel.PartCols != nil {
		pk := make([]string, len(rel.PartCols))
		for i, c := range rel.PartCols {
			pk[i] = flat.Fields[c].Name
		}
		ds.PrimaryKey = pk
	}

	acct := ctx.Accounting()
	partStats := make([]*stats.DatasetStats, len(rel.Parts))
	var wg sync.WaitGroup
	for p := range rel.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := stats.NewDatasetStats(name)
			st.RecordCount = int64(len(rel.Parts[p]))
			st.ByteSize = rel.PartBytes(p)
			var observed int64
			if statsFields != nil {
				for _, t := range rel.Parts[p] {
					for i, f := range flat.Fields {
						if statsFields[f.Name] {
							st.Field(f.Name).Observe(t[i])
							observed++
						}
					}
				}
			}
			acct.MatWriteRows.Add(st.RecordCount)
			acct.MatWriteBytes.Add(st.ByteSize)
			acct.StatsObserved.Add(observed)
			partStats[p] = st
			return
		}(p)
	}
	wg.Wait()
	pb := make([]int64, len(rel.Parts))
	for p := range rel.Parts {
		ds.Parts[p] = rel.Parts[p]
		pb[p] = rel.PartBytes(p)
	}
	ds.SeedSizes(pb, rel.ByteSize())
	// No grant reservation here: materialized intermediates model on-disk
	// temps (their write and read-back I/O is metered as MatWriteBytes /
	// MatReadBytes above and in Scan), not resident query memory — holding
	// them on the grant would double-count the next stage's build side,
	// whose tuples share backing with this relation.
	merged := stats.NewDatasetStats(name)
	for _, st := range partStats {
		merged.Merge(st)
	}
	return ds, merged, nil
}

// Gather collects a relation to the coordinator in partition order — the
// DistributeResult operator. Result bytes are metered as network traffic
// (identical across strategies for identical results).
func Gather(ctx *Context, rel *Relation) []types.Tuple {
	acct := ctx.Accounting()
	out := make([]types.Tuple, 0, rel.RowCount())
	for _, p := range rel.Parts {
		out = append(out, p...)
	}
	acct.ShuffleRows.Add(int64(len(out)))
	acct.ShuffleBytes.Add(rel.ByteSize())
	return out
}
