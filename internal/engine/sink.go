package engine

import (
	"fmt"
	"sync"

	"dynopt/internal/faults"
	"dynopt/internal/sqlpp"
	"dynopt/internal/stats"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// flattenSchema applies the Sink's naming rule: qualified fields become
// flattened columns (a.x → a_x), the same rule query reconstruction
// applies, so the re-parsed reformulated query resolves against the temp.
func flattenSchema(relSchema *types.Schema) *types.Schema {
	flat := &types.Schema{Fields: make([]types.Field, relSchema.Len())}
	for i, f := range relSchema.Fields {
		flat.Fields[i] = types.Field{Name: sqlpp.FlattenName(f.Qualifier, f.Name), Kind: f.Kind}
	}
	return flat
}

// StreamSink is the Sink operator of Figure 4 fused into the producing
// stage: output chunks arriving from the join (or push-down scan) are
// observed for online statistics, metered as materialized-write I/O, sized,
// and appended to the temp dataset's partitions in the same pass that
// produced them — the relation is never re-walked. Counters and statistics
// are identical to the batch Materialize, which walks the finished relation
// instead.
type StreamSink struct {
	ctx       *Context
	name      string
	relSchema *types.Schema
	flat      *types.Schema
	partCols  []int

	statIdx   []int // field offsets under statistics collection, ascending
	parts     [][]types.Tuple
	partBytes []int64
	partStats []*stats.DatasetStats
	fields    [][]*stats.FieldStats // [part][statIdx order] collector cache
	observed  []int64
}

// NewStreamSink prepares a sink writing nparts partitions to temp dataset
// name. statsFields names flattened columns to collect sketches on; nil
// collects none (row and byte counts are always recorded — the Planner
// needs sizes). partCols, when set, become the temp's recorded partitioning
// so a later join on the same keys skips its exchange.
func NewStreamSink(ctx *Context, relSchema *types.Schema, nparts int, name string, statsFields map[string]bool, partCols []int) *StreamSink {
	s := &StreamSink{
		ctx:       ctx,
		name:      name,
		relSchema: relSchema,
		flat:      flattenSchema(relSchema),
		partCols:  partCols,
		parts:     make([][]types.Tuple, nparts),
		partBytes: make([]int64, nparts),
		partStats: make([]*stats.DatasetStats, nparts),
		fields:    make([][]*stats.FieldStats, nparts),
		observed:  make([]int64, nparts),
	}
	if statsFields != nil {
		for i, f := range s.flat.Fields {
			if statsFields[f.Name] {
				s.statIdx = append(s.statIdx, i)
			}
		}
	}
	for p := 0; p < nparts; p++ {
		st := stats.NewDatasetStats(name)
		s.partStats[p] = st
		fs := make([]*stats.FieldStats, len(s.statIdx))
		for k, i := range s.statIdx {
			fs[k] = st.Field(s.flat.Fields[i].Name)
		}
		s.fields[p] = fs
	}
	return s
}

// RelSchema returns the qualified schema of the rows flowing into the sink.
func (s *StreamSink) RelSchema() *types.Schema { return s.relSchema }

// Emit implements Sink: one pass over the chunk covers statistics
// observation, byte sizing, and the partition append. Called concurrently
// for different partitions, in order within one.
func (s *StreamSink) Emit(p int, rows []types.Tuple) error {
	fs := s.fields[p]
	var bytes int64
	for _, t := range rows {
		bytes += int64(t.EncodedSize()) //dynopt:size-ok sink seeds the materialized relation's size cache as rows arrive
		for k, i := range s.statIdx {
			fs[k].Observe(t[i])
		}
	}
	s.partBytes[p] += bytes
	s.observed[p] += int64(len(rows)) * int64(len(s.statIdx))
	s.parts[p] = append(s.parts[p], rows...)
	return nil
}

// Finish seals the sink: meters every partition's materialized write,
// merges the per-partition statistics in partition order, and returns the
// registered-ready temp dataset with its size cache seeded — no pass over
// the rows happens here.
func (s *StreamSink) Finish() (*storage.Dataset, *stats.DatasetStats, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := s.ctx.Faults.Fire(faults.Point("sink.finish")); err != nil {
		return nil, nil, err
	}
	ds := &storage.Dataset{
		Name:    s.name,
		Schema:  s.flat,
		Parts:   s.parts,
		Indexes: map[string]*storage.Index{},
		Temp:    true,
	}
	if s.partCols != nil {
		pk := make([]string, len(s.partCols))
		for i, c := range s.partCols {
			pk[i] = s.flat.Fields[c].Name
		}
		ds.PrimaryKey = pk
	}
	acct := s.ctx.Accounting()
	var total int64
	merged := stats.NewDatasetStats(s.name)
	for p := range s.parts {
		st := s.partStats[p]
		st.RecordCount = int64(len(s.parts[p]))
		st.ByteSize = s.partBytes[p]
		acct.MatWriteRows.Add(st.RecordCount)
		acct.MatWriteBytes.Add(st.ByteSize)
		acct.StatsObserved.Add(s.observed[p])
		total += s.partBytes[p]
		merged.Merge(st)
	}
	ds.SeedSizes(s.partBytes, total)
	// No grant reservation here: materialized intermediates model on-disk
	// temps (their write and read-back I/O is metered as MatWriteBytes /
	// MatReadBytes, and as MatRead in Scan), not resident query memory —
	// holding them on the grant would double-count the next stage's build
	// side, whose tuples share backing with this output.
	return ds, merged, nil
}

// Materialize is the batch Sink: it writes a finished relation to the temp
// store (metering the write I/O of the blocking re-optimization point) and
// collects online statistics on the requested fields — the join keys of the
// remaining query, so no unnecessary sketches are built (§5.3). The
// streaming pipeline fuses this work into the producing stage via
// StreamSink; Materialize remains the batch-mode reference and the path for
// already-materialized relations.
func Materialize(ctx *Context, rel *Relation, name string, statsFields map[string]bool) (*storage.Dataset, *stats.DatasetStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Faults.Fire(faults.Point("sink.finish")); err != nil {
		return nil, nil, err
	}
	flat := flattenSchema(rel.Schema)
	ds := &storage.Dataset{
		Name:    name,
		Schema:  flat,
		Parts:   make([][]types.Tuple, len(rel.Parts)),
		Indexes: map[string]*storage.Index{},
		Temp:    true,
	}
	// Preserve partitioning so a later hash join on the same keys skips the
	// exchange (Reader restores PartCols from these fields).
	if rel.PartCols != nil {
		pk := make([]string, len(rel.PartCols))
		for i, c := range rel.PartCols {
			pk[i] = flat.Fields[c].Name
		}
		ds.PrimaryKey = pk
	}

	acct := ctx.Accounting()
	partStats := make([]*stats.DatasetStats, len(rel.Parts))
	errs := make([]error, len(rel.Parts))
	var wg sync.WaitGroup
	for p := range rel.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Contain panics on the stats goroutines: a panicking sketch
			// observer becomes this partition's error instead of killing the
			// process with the WaitGroup never satisfied.
			defer func() {
				if v := recover(); v != nil {
					errs[p] = faults.FromPanic("sink", fmt.Sprintf("materialize partition %d", p), v)
				}
			}()
			st := stats.NewDatasetStats(name)
			st.RecordCount = int64(len(rel.Parts[p]))
			st.ByteSize = rel.PartBytes(p)
			var observed int64
			if statsFields != nil {
				for _, t := range rel.Parts[p] {
					for i, f := range flat.Fields {
						if statsFields[f.Name] {
							st.Field(f.Name).Observe(t[i])
							observed++
						}
					}
				}
			}
			acct.MatWriteRows.Add(st.RecordCount)
			acct.MatWriteBytes.Add(st.ByteSize)
			acct.StatsObserved.Add(observed)
			partStats[p] = st
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	pb := make([]int64, len(rel.Parts))
	for p := range rel.Parts {
		ds.Parts[p] = rel.Parts[p]
		pb[p] = rel.PartBytes(p)
	}
	ds.SeedSizes(pb, rel.ByteSize())
	// No grant reservation here: materialized intermediates model on-disk
	// temps (their write and read-back I/O is metered as MatWriteBytes /
	// MatReadBytes above and in Scan), not resident query memory — holding
	// them on the grant would double-count the next stage's build side,
	// whose tuples share backing with this relation.
	merged := stats.NewDatasetStats(name)
	for _, st := range partStats {
		merged.Merge(st)
	}
	return ds, merged, nil
}
