// Package engine is the Hyracks-stand-in: partition-parallel physical
// operators over hash-partitioned relations. Operators within a stage are
// fused per partition (scan→filter→project, repartition→build→probe) and run
// on one goroutine per partition; stages break at exchanges and sinks. Every
// byte that would cross the simulated cluster's network or hit its disks is
// reported to the cluster cost accountant.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/expr"
	"dynopt/internal/faults"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// Context carries everything a query execution needs. The Cluster, Catalog,
// and UDFs are shared by every query a DB serves; Acct, Scope, and Cancel
// are the per-query execution scope that keeps concurrent queries isolated.
type Context struct {
	Cluster *cluster.Cluster
	Catalog *catalog.Catalog
	UDFs    *expr.Registry
	Params  map[string]types.Value

	// Acct is the per-query cost accountant. When nil the cluster's
	// lifetime accountant is used (single-client and test contexts).
	Acct *cluster.Accounting
	// Scope namespaces this query's materialized intermediates
	// ("q<id>_"); empty means the shared "tmp_*" namespace.
	Scope string
	// Cancel carries the caller's cancellation signal; nil never cancels.
	// Operators check it at stage boundaries.
	Cancel context.Context
	// Spill manages this query's on-disk run files. When set (and the memory
	// budget is positive) the hash joins run the real dynamic hybrid hash
	// join — evicting build partitions to disk under memory pressure — and
	// SpillBytes/SpillRows meter actual run-file I/O. Nil keeps the simulated
	// spill model: counters are charged from the byte arithmetic of
	// meterSpill and nothing touches the filesystem.
	Spill *storage.SpillManager
	// Grant is this query's reservation against the cluster memory governor.
	// Nil (single-client and test contexts) disables governance metering.
	Grant *cluster.Grant
	// Batch disables the chunked streaming pipeline and runs every operator
	// in whole-relation batch mode — the reference implementation the
	// streaming property tests compare against. Both modes meter identical
	// counters and produce identical rows; streaming (the default) avoids
	// materializing probe sides and re-walking sink inputs.
	Batch bool
	// ChunkRows is the streaming pipeline's chunk capacity in rows. Zero or
	// negative selects defaultChunkRows; Open validates the configured value
	// once so every operator can trust chunkRows() > 0. Tests shrink it to
	// push chunk-boundary edge cases through the real configuration path.
	ChunkRows int
	// NoVec disables column-major execution: scans stop attaching column
	// sources to their chunks and predicates never compile to vector kernels,
	// forcing the row-at-a-time scalar paths everywhere. Results and counters
	// are identical either way — this is the ablation knob the vectorization
	// benchmark uses to price the kernels, not a semantic switch.
	NoVec bool
	// Faults is the query's fault-injection registry (nil in production):
	// the engine-layer injection points — exchange sends and receives,
	// scan-cursor opens, probe drains, sink seals — fire against it.
	Faults *faults.Registry
	// PageStats observes this query's page-level scan work — reads, zone-map
	// prunes, cache traffic — when any scanned dataset is paged. Nil skips
	// observation. Deliberately outside the metered cost counters: paged and
	// resident runs charge identical Accounting figures, and these feed the
	// optimizer's access-path selection and the benchmark reports instead.
	PageStats *storage.PageScanStats
}

// Env builds an expression environment against a schema.
func (c *Context) Env(sch *types.Schema) *expr.Env {
	return &expr.Env{Schema: sch, Params: c.Params, UDFs: c.UDFs}
}

// Accounting returns the accountant execution work is metered against: the
// per-query one when set, else the cluster's lifetime accountant.
func (c *Context) Accounting() *cluster.Accounting {
	if c.Acct != nil {
		return c.Acct
	}
	return c.Cluster.Acct()
}

// TempName mints a catalog-unique name for a materialized intermediate
// inside this query's temp namespace.
func (c *Context) TempName(suffix string) string {
	return c.Catalog.NextTempName(catalog.TempPrefix(c.Scope) + suffix)
}

// Err reports the caller's cancellation state (nil when no deadline or
// cancel signal is attached).
func (c *Context) Err() error {
	if c.Cancel == nil {
		return nil
	}
	return c.Cancel.Err()
}

// RealSpill reports whether this query runs the real disk-spilling join
// path: a spill manager is attached and the memory budget is positive.
func (c *Context) RealSpill() bool {
	return c.Spill != nil && c.Cluster.MemoryPerNodeBytes() > 0
}

// Relation is a partitioned intermediate result flowing between operators.
type Relation struct {
	Schema *types.Schema   // qualified fields (alias.name)
	Parts  [][]types.Tuple // one slice per cluster node
	// PartCols are the column offsets the relation is currently
	// hash-partitioned on (in hash order), or nil when partitioning is
	// unknown/round-robin. Joins use it to skip redundant repartitioning,
	// matching the §3 hash-join description.
	PartCols []int

	// sizes caches encoded byte sizes: relations are immutable once their
	// Parts are filled, so sizes are computed at most once per relation
	// instead of once per metering site.
	sizes types.SizeCache
}

// RowCount returns total rows across partitions.
func (r *Relation) RowCount() int64 {
	var n int64
	for _, p := range r.Parts {
		n += int64(len(p))
	}
	return n
}

// ByteSize returns total encoded bytes across partitions, computed once and
// cached. Callers must not mutate Parts after the first call.
func (r *Relation) ByteSize() int64 { return r.sizes.Total(r.Parts) }

// PartBytes returns the encoded size of partition p, cached like ByteSize.
func (r *Relation) PartBytes(p int) int64 { return r.sizes.Part(r.Parts, p) }

// seedSizes installs sizes an operator already computed while building the
// relation (pass-through scans, exchanges), so the lazy pass never runs.
// Must be called before the relation escapes the constructing goroutine.
func (r *Relation) seedSizes(partBytes []int64, total int64) {
	r.sizes.Seed(partBytes, total)
}

// PartitionedOn reports whether the relation is hash-partitioned on exactly
// the given column offsets (order-sensitive: composite hashes are
// order-dependent).
func (r *Relation) PartitionedOn(cols []int) bool {
	if len(r.PartCols) == 0 || len(r.PartCols) != len(cols) {
		return false
	}
	for i := range cols {
		if r.PartCols[i] != cols[i] {
			return false
		}
	}
	return true
}

// forEachPart runs fn for every partition on a worker pool bounded by
// GOMAXPROCS and returns the lowest-partition error. Workers claim
// partitions in index order from a shared counter, so the pool is
// work-conserving under skew — a worker that finishes a small partition
// immediately claims the next pending one — and a 64-partition layout on a
// 1-core box runs one goroutine instead of 64. Every partition runs even
// when an earlier one fails (operators rely on all output slots being
// filled); the first error by partition index is returned, matching the
// previous goroutine-per-partition behavior.
func forEachPart(nparts int, fn func(p int) error) error {
	errs := make([]error, nparts)
	// Contain operator panics at the partition boundary: a panicking
	// partition goroutine becomes that partition's error instead of killing
	// the process. fn's own defers (channel closes, grant releases) run
	// during the unwind before recover fires, so the exchange-drain and
	// cleanup invariants hold on the panic path exactly as on the error
	// path.
	run := func(p int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = faults.FromPanic("partition", fmt.Sprintf("partition %d", p), v)
			}
		}()
		return fn(p)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nparts {
		workers = nparts
	}
	if workers <= 1 {
		for p := 0; p < nparts; p++ {
			errs[p] = run(p)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= nparts {
						return
					}
					errs[p] = run(p)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// resolveKeys maps qualified key names to column offsets in a schema.
func resolveKeys(sch *types.Schema, keys []string) ([]int, error) {
	out := make([]int, len(keys))
	for i, k := range keys {
		idx, ok := sch.Index(k)
		if !ok {
			return nil, fmt.Errorf("engine: join key %q not found in %s", k, sch)
		}
		out[i] = idx
	}
	return out, nil
}
