package engine

import (
	"io"

	"dynopt/internal/expr"
	"dynopt/internal/storage"
	"dynopt/internal/types"
)

// The paged scan: the streaming cursor over a disk-native dataset's page
// file, decoding pages straight into the chunk spine. Three storage-level
// optimizations happen here before any row exists:
//
//   - Zone-map pruning: the pushed-down filter's extracted column ranges
//     (expr.ZoneRanges) are checked against each page's directory min/max
//     before the page is read — a page whose zone map proves every row fails
//     an ANDed conjunct is skipped without a read or a decode.
//   - Projection pushdown: with a projection, only the projected columns and
//     the filter's columns are decoded; every other column's bytes are
//     skipped inside the page payload.
//   - Columnar decode: typed page columns decode into the same ColVec form
//     the vectorized predicate kernels and the columnar join-key prehash
//     consume, so a paged chunk's column source needs no row-window gather.
//
// Scan metering is identical to resident mode — the full partition is
// charged when the cursor opens, pruned or not (I/O actually saved is
// observed separately through Context.PageStats, which feeds the
// optimizer's access-path selection rather than the cost counters).

// pageNeedCols resolves which columns a paged scan must decode: the
// projected columns plus every column the filter reads. nil means all (no
// projection — the full row width flows downstream).
func pageNeedCols(sp *scanPrep, filter expr.Expr) []bool {
	if sp.projIdx == nil {
		return nil
	}
	need := make([]bool, sp.qualified.Len())
	for _, i := range sp.projIdx {
		need[i] = true
	}
	if filter != nil {
		for _, c := range expr.ColumnsOf(filter) {
			name := c.Name
			if c.Qualifier != "" {
				name = c.Qualifier + "." + c.Name
			}
			if i, ok := sp.qualified.Index(name); ok {
				need[i] = true
			}
		}
	}
	return need
}

// pagePruned reports whether page stats prove every row fails one of the
// filter's extracted ranges. A conjunct comparing a column constrains
// passing rows to [Lo, Hi] under Value.Compare; a page whose column min/max
// lies wholly outside — or that holds only NULLs, which fail any comparison
// — cannot contribute a row.
func pagePruned(zones []expr.ColRange, pi *storage.PageInfo) bool {
	for i := range zones {
		z := &zones[i]
		cs := &pi.Cols[z.Col]
		if !cs.HasMinMax {
			// Every value in this page's column is NULL: the comparison
			// conjunct evaluates false for all of them.
			return true
		}
		if z.HasLo && cs.Max.Compare(z.Lo) < 0 {
			return true
		}
		if z.HasHi && cs.Min.Compare(z.Hi) > 0 {
			return true
		}
	}
	return false
}

// pagedCursor streams one partition of a paged dataset: prune → read (through
// the shared page cache) → decode needed columns → filter → emit, page by
// page, in windows of at most ctx.chunkRows() rows so chunk capacity and
// page boundaries stay independent.
type pagedCursor struct {
	ctx   *Context
	prep  *scanPrep
	pg    *storage.PagedData
	part  int
	page  int // next page index
	pd    types.PageData
	win   []types.Tuple // materialized rows of the current page
	lo    int           // next unemitted row within win
	sel   []int32
	arena types.Arena
	rows  []types.Tuple
	c     Chunk

	// Window column source: per-column slices of the decoded page vectors,
	// cut to the emitted window. Rebuilt lazily per window like a ColCache.
	vecs     []types.ColVec
	vecGen   []uint64
	gen      uint64
	wlo, whi int
}

func newPagedCursor(ctx *Context, ds *storage.Dataset, prep *scanPrep, p int) *pagedCursor {
	return &pagedCursor{
		ctx:    ctx,
		prep:   prep,
		pg:     ds.Paged(),
		part:   p,
		vecs:   make([]types.ColVec, prep.qualified.Len()),
		vecGen: make([]uint64, prep.qualified.Len()),
	}
}

// Col implements types.ColSource over the current emitted window: typed page
// vectors are sliced (no copies), fallback and skipped columns surface as
// Mixed so consumers use the row form.
func (c *pagedCursor) Col(i int) *types.ColVec {
	v := &c.vecs[i]
	if c.vecGen[i] == c.gen {
		return v
	}
	c.vecGen[i] = c.gen
	pc := &c.pd.Cols[i]
	if pc.Skipped || pc.Fallback {
		*v = types.ColVec{Kind: c.prep.qualified.Fields[i].Kind, Mixed: true}
		return v
	}
	src := &pc.Vec
	*v = types.ColVec{Kind: src.Kind, Null: src.Null[c.wlo:c.whi]}
	switch src.Kind {
	case types.KindInt:
		v.Ints = src.Ints[c.wlo:c.whi]
	case types.KindFloat:
		v.Floats = src.Floats[c.wlo:c.whi]
	case types.KindString:
		v.Strs = src.Strs[c.wlo:c.whi]
	default:
		v.Mixed = true
	}
	return v
}

// loadPage advances to the next unpruned page and materializes its row
// window. Returns io.EOF past the last page.
func (c *pagedCursor) loadPage() error {
	for {
		if c.page >= c.pg.Pages(c.part) {
			return io.EOF
		}
		i := c.page
		c.page++
		if c.ctx.PageStats != nil {
			c.ctx.PageStats.PagesTotal.Add(1)
		}
		if len(c.prep.zones) > 0 && pagePruned(c.prep.zones, c.pg.Page(c.part, i)) {
			if c.ctx.PageStats != nil {
				c.ctx.PageStats.PagesPruned.Add(1)
			}
			continue
		}
		buf, err := c.pg.ReadPage(c.part, i, c.ctx.PageStats)
		if err != nil {
			return err
		}
		if err := c.pd.DecodePage(buf, c.pg.File().Schema(), c.prep.need); err != nil {
			return err
		}
		// Materialize the page's row window: fresh tuple headers per page
		// (chunks may outlive the next Next call on pass-through paths, as
		// resident scans' stored windows do). Undecoded columns are NULL —
		// only reachable when a projection is pushed down, whose gather
		// reads decoded columns only.
		win := make([]types.Tuple, c.pd.NRows)
		//dynopt:hotpath
		for r := range win {
			win[r] = c.pd.Tuple(r)
		}
		c.win = win
		c.lo = 0
		return nil
	}
}

// filterWindow evaluates the fused predicate over window rows [lo, hi) of
// the current page, returning the live selection (window-relative,
// ascending, aliasing the reused buffer).
func (c *pagedCursor) filterWindow(win []types.Tuple) ([]int32, error) {
	if cap(c.sel) < len(win) {
		c.sel = make([]int32, len(win))
	}
	sel := c.sel[:len(win)]
	if c.prep.vpred != nil {
		//dynopt:hotpath
		for i := range sel {
			sel[i] = int32(i)
		}
		return c.prep.vpred(win, c, sel)
	}
	sel = sel[:0]
	//dynopt:hotpath
	for i, t := range win {
		v, err := c.prep.pred(t)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			sel = append(sel, int32(i))
		}
	}
	return sel, nil
}

func (c *pagedCursor) Next() (*Chunk, error) {
	for {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
		if c.lo >= len(c.win) {
			if err := c.loadPage(); err != nil {
				return nil, err
			}
			continue
		}
		hi := c.lo + c.ctx.chunkRows()
		if hi > len(c.win) {
			hi = len(c.win)
		}
		c.wlo, c.whi = c.lo, hi
		c.gen++
		win := c.win[c.lo:hi]
		c.lo = hi
		var cols types.ColSource
		if !c.ctx.NoVec {
			cols = c
		}
		if c.prep.passThrough() {
			c.c = Chunk{Rows: win, Cols: cols}
			return &c.c, nil
		}
		var sel []int32
		if c.prep.pred != nil {
			var err error
			sel, err = c.filterWindow(win)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				continue
			}
		}
		if c.prep.projIdx == nil {
			if len(sel) == len(win) {
				sel = nil
			}
			c.c = Chunk{Rows: win, Sel: sel, Cols: cols}
			return &c.c, nil
		}
		c.rows = c.rows[:0]
		gather := func(t types.Tuple) {
			pt := c.arena.Make(len(c.prep.projIdx))
			for i, idx := range c.prep.projIdx {
				pt[i] = t[idx]
			}
			c.rows = append(c.rows, pt)
		}
		if sel != nil {
			for _, r := range sel {
				gather(win[r])
			}
		} else {
			for _, t := range win {
				gather(t)
			}
		}
		c.c = Chunk{Rows: c.rows}
		return &c.c, nil
	}
}

// pagedScanInto materializes a prepared scan over a paged dataset as a
// Relation: each partition drains its paged cursor (pruning, pushdown, and
// cache behavior identical to the streaming path) and collects the emitted
// rows.
func pagedScanInto(ctx *Context, ds *storage.Dataset, sp *scanPrep) (*Relation, error) {
	out := &Relation{Schema: sp.outSchema, Parts: make([][]types.Tuple, len(ds.Parts))}
	err := forEachPart(len(ds.Parts), func(p int) error {
		meterScanPart(ctx, ds, p)
		cur := newPagedCursor(ctx, ds, sp, p)
		var rows []types.Tuple
		//dynopt:cancel-ok pagedCursor.Next checks ctx.Err() on every chunk pull
		for {
			ch, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if ch.Sel != nil {
				for _, r := range ch.Sel {
					rows = append(rows, ch.Rows[r])
				}
			} else {
				// Projection chunks reuse the cursor's row buffer; copy the
				// headers out so the next chunk cannot overwrite them.
				rows = append(rows, ch.Rows...)
			}
		}
		out.Parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sp.passThrough() {
		// The relation's rows are value-identical to the dataset's; seed its
		// size cache from the directory-seeded dataset sizes so downstream
		// metering never re-walks them (same figures as resident mode).
		pb := make([]int64, len(ds.Parts))
		for p := range pb {
			pb[p] = ds.PartBytes(p)
		}
		out.seedSizes(pb, ds.ByteSize())
	}
	out.PartCols = sp.partCols
	return out, nil
}
