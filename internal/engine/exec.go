package engine

import (
	"fmt"
	"sort"
	"strings"

	"dynopt/internal/expr"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/types"
)

// Execute runs a physical plan tree to a partitioned relation. Static
// strategies execute their whole tree through this entry point in one
// pipelined job; the dynamic optimizer instead executes one stage at a time
// and materializes between stages. Interior projections (Join.Keep) are
// applied in the same pipelined pass as the join that produces them.
//
// In streaming mode, leaf probe (and hash-build) sides feed their joins as
// chunk sources — the scan's decode pass fuses into the exchange and probe
// loops, so a leaf under a join never materializes as a Relation of its
// own. Interior join results still materialize: a parent join must hold
// its build side, and probe-side results window straight out of it.
func Execute(ctx *Context, n *plan.Node) (*Relation, error) {
	if n.Leaf != nil {
		return ScanByName(ctx, n.Leaf.Dataset, n.Leaf.Alias, n.Leaf.Filter, n.Leaf.Project)
	}
	j := n.Join
	var rel *Relation
	switch j.Algo {
	case plan.AlgoHash, plan.AlgoBroadcast:
		var err error
		if ctx.Batch {
			rel, err = executeHashLikeBatch(ctx, j)
		} else {
			rel, err = executeHashLikeStreamed(ctx, j)
		}
		if err != nil {
			return nil, err
		}
	case plan.AlgoIndexNL:
		var err error
		rel, err = executeIndexNL(ctx, j)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unknown join algorithm %v", j.Algo)
	}
	if j.Keep != nil {
		return ProjectColumns(rel, j.Keep)
	}
	return rel, nil
}

// executeHashLikeBatch is the whole-relation reference: both children
// materialize, then the batch join runs.
func executeHashLikeBatch(ctx *Context, j *plan.Join) (*Relation, error) {
	left, err := Execute(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	right, err := Execute(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	if j.Algo == plan.AlgoHash {
		return hashJoinBatch(ctx, left, right, j.LeftKeys, j.RightKeys, j.BuildLeft)
	}
	return broadcastJoinBatch(ctx, left, right, j.LeftKeys, j.RightKeys, j.BuildLeft)
}

// sourceForNode turns a plan child into a chunk source: leaves stream
// straight from storage (fused decode), interior results window out of
// their materialized relation.
func sourceForNode(ctx *Context, n *plan.Node) (Source, error) {
	if n.Leaf != nil {
		ds, ok := ctx.Catalog.Get(n.Leaf.Dataset)
		if !ok {
			return nil, fmt.Errorf("engine: unknown dataset %q", n.Leaf.Dataset)
		}
		return ScanSource(ctx, ds, n.Leaf.Alias, n.Leaf.Filter, n.Leaf.Project)
	}
	rel, err := Execute(ctx, n)
	if err != nil {
		return nil, err
	}
	return SourceOf(ctx, rel), nil
}

// executeHashLikeStreamed wires a hash or broadcast join node as a stage
// pipeline when its probe child is a leaf — the case where streaming wins,
// because the leaf's scan fuses into the exchange and probe loops instead
// of materializing. Joins over two interior results fall back to the batch
// join: both inputs are already materialized, so there is no pass to save
// and the chunked handoff would be pure overhead.
func executeHashLikeStreamed(ctx *Context, j *plan.Join) (*Relation, error) {
	buildNode, probeNode := j.Left, j.Right
	buildKeys, probeKeys := j.LeftKeys, j.RightKeys
	if !j.BuildLeft {
		buildNode, probeNode = j.Right, j.Left
		buildKeys, probeKeys = j.RightKeys, j.LeftKeys
	}
	if probeNode.Leaf == nil {
		return executeHashLikeBatch(ctx, j)
	}
	probe, err := sourceForNode(ctx, probeNode)
	if err != nil {
		return nil, err
	}
	var rsink *relationSink
	var outSchema *types.Schema
	var outPC []int
	mk := func(sch *types.Schema, partCols []int) (Sink, error) {
		rsink = newRelationSink(probe.Parts())
		outSchema, outPC = sch, partCols
		return rsink, nil
	}
	if j.Algo == plan.AlgoHash {
		buildSrc, err := sourceForNode(ctx, buildNode)
		if err != nil {
			return nil, err
		}
		err = HashJoinStreamSources(ctx, buildSrc, probe, buildKeys, probeKeys, j.BuildLeft, mk)
		if err != nil {
			return nil, err
		}
	} else {
		build, err := Execute(ctx, buildNode)
		if err != nil {
			return nil, err
		}
		if err := BroadcastJoinStream(ctx, build, probe, buildKeys, probeKeys, j.BuildLeft, mk); err != nil {
			return nil, err
		}
	}
	return &Relation{Schema: outSchema, Parts: rsink.parts, PartCols: outPC}, nil
}

// ProjectColumns narrows a relation to the named qualified columns, keeping
// partitioning knowledge when every partitioning column survives. Columns
// named but absent from the schema are skipped (a parent may request keys a
// swapped INLJ orientation already renamed).
func ProjectColumns(rel *Relation, cols []string) (*Relation, error) {
	var idxs []int
	out := &types.Schema{}
	for _, c := range cols {
		i, ok := rel.Schema.Index(c)
		if !ok {
			continue
		}
		idxs = append(idxs, i)
		out.Fields = append(out.Fields, rel.Schema.Fields[i])
	}
	if len(idxs) == 0 {
		return nil, fmt.Errorf("engine: interior projection %v matches no columns of %s", cols, rel.Schema)
	}
	proj := &Relation{Schema: out, Parts: make([][]types.Tuple, len(rel.Parts))}
	for p, part := range rel.Parts {
		rows := make([]types.Tuple, len(part))
		var arena types.Arena
		arena.Reserve(len(part) * len(idxs)) // exact: one chunk per partition
		for r, t := range part {
			nt := arena.Make(len(idxs))
			for k, i := range idxs {
				nt[k] = t[i]
			}
			rows[r] = nt
		}
		proj.Parts[p] = rows
	}
	if rel.PartCols != nil {
		mapped := make([]int, 0, len(rel.PartCols))
		ok := true
		for _, pc := range rel.PartCols {
			found := -1
			for k, i := range idxs {
				if i == pc {
					found = k
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			mapped = append(mapped, found)
		}
		if ok {
			proj.PartCols = mapped
		}
	}
	return proj, nil
}

// executeIndexNL runs the probe-side-index plan shape: the build (broadcast)
// side is executed as a subplan; the other side must be a base-dataset leaf
// whose index on the first join key is probed in place.
func executeIndexNL(ctx *Context, j *plan.Join) (*Relation, error) {
	outerNode, innerNode := j.Right, j.Left
	outerKeys, innerKeys := j.RightKeys, j.LeftKeys
	if j.BuildLeft {
		outerNode, innerNode = j.Left, j.Right
		outerKeys, innerKeys = j.LeftKeys, j.RightKeys
	}
	if innerNode.Leaf == nil || innerNode.Leaf.Temp {
		return nil, fmt.Errorf("engine: index NL join requires a base-dataset leaf inner, got %s", innerNode.Compact())
	}
	leaf := innerNode.Leaf
	ds, ok := ctx.Catalog.Get(leaf.Dataset)
	if !ok {
		return nil, fmt.Errorf("engine: unknown dataset %q", leaf.Dataset)
	}
	// Inner keys arrive qualified ("alias.field"); the index layer wants the
	// bare field names of the base dataset.
	bare := make([]string, len(innerKeys))
	for i, k := range innerKeys {
		bare[i] = stripAlias(k, leaf.Alias)
	}
	var rel *Relation
	var outerWidth int
	if ctx.Batch || outerNode.Leaf == nil {
		// An interior outer is already materialized: stream nothing.
		outer, err := Execute(ctx, outerNode)
		if err != nil {
			return nil, err
		}
		outerWidth = outer.Schema.Len()
		rel, err = indexNLJoinBatch(ctx, outer, ds, leaf.Alias, outerKeys, bare, leaf.Filter)
		if err != nil {
			return nil, err
		}
	} else {
		// The outer streams: a leaf outer's scan fuses into the replicate
		// pipeline and is never materialized.
		outer, err := sourceForNode(ctx, outerNode)
		if err != nil {
			return nil, err
		}
		outerWidth = outer.Schema().Len()
		var rsink *relationSink
		var outSchema *types.Schema
		var outPC []int
		mk := func(sch *types.Schema, partCols []int) (Sink, error) {
			rsink = newRelationSink(len(ds.Parts))
			outSchema, outPC = sch, partCols
			return rsink, nil
		}
		if err := IndexNLJoinStream(ctx, outer, ds, leaf.Alias, outerKeys, bare, leaf.Filter, mk); err != nil {
			return nil, err
		}
		rel = &Relation{Schema: outSchema, Parts: rsink.parts, PartCols: outPC}
	}
	if j.BuildLeft {
		return rel, nil // already outer⧺inner = left⧺right
	}
	// Plan orientation is left⧺right but IndexNLJoin emitted outer⧺inner =
	// right⧺left; swap the halves to keep downstream key offsets valid.
	return swapSides(rel, outerWidth), nil
}

func stripAlias(qualified, alias string) string {
	if strings.HasPrefix(qualified, alias+".") {
		return qualified[len(alias)+1:]
	}
	return qualified
}

func swapSides(rel *Relation, leftWidth int) *Relation {
	rightWidth := rel.Schema.Len() - leftWidth
	schema := &types.Schema{Fields: make([]types.Field, 0, rel.Schema.Len())}
	schema.Fields = append(schema.Fields, rel.Schema.Fields[leftWidth:]...)
	schema.Fields = append(schema.Fields, rel.Schema.Fields[:leftWidth]...)
	out := &Relation{Schema: schema, Parts: make([][]types.Tuple, len(rel.Parts))}
	for p, part := range rel.Parts {
		rows := make([]types.Tuple, len(part))
		var arena types.Arena
		arena.Reserve(len(part) * rel.Schema.Len()) // exact: one chunk per partition
		for i, t := range part {
			rows[i] = arena.Concat(t[leftWidth:], t[:leftWidth])
		}
		out.Parts[p] = rows
	}
	if rel.PartCols != nil {
		cols := make([]int, len(rel.PartCols))
		for i, c := range rel.PartCols {
			if c >= leftWidth {
				cols[i] = c - leftWidth
			} else {
				cols[i] = c + rightWidth
			}
		}
		out.PartCols = cols
	}
	return out
}

// Result is a finished query result at the coordinator.
type Result struct {
	Columns []string
	Rows    []types.Tuple
}

// Finish applies the non-join clauses to the joined relation at the
// coordinator: projection of the SELECT list (including aggregate
// functions over the GROUP BY groups), GROUP BY (duplicate elimination on
// the grouping keys when no aggregates are present), ORDER BY, and LIMIT.
// Matches §6.4: other operators are evaluated after all joins and
// selections complete.
func Finish(ctx *Context, q *sqlpp.Query, rel *Relation) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateAggregateQuery(q); err != nil {
		return nil, err
	}
	// Result rows are metered as coordinator traffic exactly as the gathered
	// copy was, but the finishing clauses stream the partitions in order
	// instead of concatenating a coordinator copy first.
	acct := ctx.Accounting()
	acct.ShuffleRows.Add(rel.RowCount())
	acct.ShuffleBytes.Add(rel.ByteSize())
	if !q.SelectStar && hasAggregates(q.Select) {
		return finishAggregate(ctx, q, rel)
	}
	env := ctx.Env(rel.Schema)

	res := &Result{}
	if q.SelectStar {
		for _, f := range rel.Schema.Fields {
			res.Columns = append(res.Columns, f.QName())
		}
	} else {
		for _, s := range q.Select {
			name := s.Alias
			if name == "" {
				name = s.Expr.SQL()
			}
			res.Columns = append(res.Columns, name)
		}
	}

	type finished struct {
		projected types.Tuple
		groupKey  string
		orderKeys types.Tuple
	}
	var outRows []finished
	// The duplicate-elimination table grows one key per distinct group;
	// meter it against the grant like the hash-aggregate table.
	seen := map[string]bool{}
	var seenBytes int64
	defer func() { ctx.Grant.Release(seenBytes) }()
	for _, part := range rel.Parts {
		for _, row := range part {
			var projected types.Tuple
			if q.SelectStar {
				projected = row
			} else {
				projected = make(types.Tuple, len(q.Select))
				for i, s := range q.Select {
					v, err := s.Expr.Eval(row, env)
					if err != nil {
						return nil, err
					}
					projected[i] = v
				}
			}
			f := finished{projected: projected}
			if len(q.GroupBy) > 0 {
				var sb strings.Builder
				for _, g := range q.GroupBy {
					v, err := g.Eval(row, env)
					if err != nil {
						return nil, err
					}
					sb.WriteString(v.String())
					sb.WriteByte('|')
				}
				f.groupKey = sb.String()
				if seen[f.groupKey] {
					continue
				}
				seen[f.groupKey] = true
				sz := int64(len(f.groupKey))
				seenBytes += sz
				ctx.Grant.Reserve(sz)
			}
			if len(q.OrderBy) > 0 {
				f.orderKeys = make(types.Tuple, len(q.OrderBy))
				for i, o := range q.OrderBy {
					v, err := o.Expr.Eval(row, env)
					if err != nil {
						return nil, err
					}
					f.orderKeys[i] = v
				}
			}
			outRows = append(outRows, f)
		}
	}

	if len(q.OrderBy) > 0 {
		sort.SliceStable(outRows, func(a, b int) bool {
			for i, o := range q.OrderBy {
				c := outRows[a].orderKeys[i].Compare(outRows[b].orderKeys[i])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Limit >= 0 && int64(len(outRows)) > q.Limit {
		outRows = outRows[:q.Limit]
	}
	res.Rows = make([]types.Tuple, len(outRows))
	for i, f := range outRows {
		res.Rows[i] = f.projected
	}
	return res, nil
}

// FilterFor conjuncts an alias's local predicates into a single filter
// expression (nil when the alias has none).
func FilterFor(locals []expr.Expr) expr.Expr {
	switch len(locals) {
	case 0:
		return nil
	case 1:
		return locals[0]
	default:
		return &expr.And{Kids: locals}
	}
}
