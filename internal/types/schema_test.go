package types

import (
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Field{Qualifier: "a", Name: "x", Kind: KindInt},
		Field{Qualifier: "a", Name: "y", Kind: KindString},
		Field{Qualifier: "b", Name: "x", Kind: KindInt},
		Field{Qualifier: "b", Name: "z", Kind: KindFloat},
	)
}

func TestSchemaIndexQualified(t *testing.T) {
	s := testSchema()
	cases := []struct {
		name string
		want int
		ok   bool
	}{
		{"a.x", 0, true},
		{"a.y", 1, true},
		{"b.x", 2, true},
		{"b.z", 3, true},
		{"c.x", -1, false},
		{"a.z", -1, false},
	}
	for _, c := range cases {
		got, ok := s.Index(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("Index(%q) = %d,%v want %d,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestSchemaIndexBareAndAmbiguous(t *testing.T) {
	s := testSchema()
	if i, ok := s.Index("y"); !ok || i != 1 {
		t.Errorf("Index(y) = %d,%v", i, ok)
	}
	if i, ok := s.Index("z"); !ok || i != 3 {
		t.Errorf("Index(z) = %d,%v", i, ok)
	}
	if _, ok := s.Index("x"); ok {
		t.Error("Index(x) should be ambiguous")
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should fail")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing column did not panic")
		}
	}()
	testSchema().MustIndex("missing")
}

func TestSchemaQualifiers(t *testing.T) {
	s := testSchema()
	q := s.Qualifiers()
	if len(q) != 2 || q[0] != "a" || q[1] != "b" {
		t.Errorf("Qualifiers() = %v", q)
	}
	if !s.HasQualifier("a") || s.HasQualifier("c") {
		t.Error("HasQualifier wrong")
	}
}

func TestSchemaConcatAndRequalify(t *testing.T) {
	s := testSchema()
	o := NewSchema(Field{Qualifier: "c", Name: "w", Kind: KindBool})
	cat := s.Concat(o)
	if cat.Len() != 5 || cat.Fields[4].QName() != "c.w" {
		t.Errorf("Concat wrong: %s", cat)
	}
	// Concat must not alias the receiver's backing array.
	if s.Len() != 4 {
		t.Error("Concat mutated receiver")
	}
	rq := s.Requalify("t")
	for _, f := range rq.Fields {
		if f.Qualifier != "t" {
			t.Errorf("Requalify left qualifier %q", f.Qualifier)
		}
	}
	if s.Fields[0].Qualifier != "a" {
		t.Error("Requalify mutated receiver")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p, idxs, err := s.Project([]string{"b.z", "a.x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || idxs[0] != 3 || idxs[1] != 0 {
		t.Errorf("Project = %s idxs=%v", p, idxs)
	}
	if _, _, err := s.Project([]string{"x"}); err == nil {
		t.Error("Project on ambiguous bare name should error")
	}
}

func TestTupleCloneConcat(t *testing.T) {
	tu := Tuple{Int(1), Str("a")}
	cl := tu.Clone()
	cl[0] = Int(9)
	if tu[0].I() != 1 {
		t.Error("Clone aliased backing array")
	}
	cat := tu.Concat(Tuple{Bool(true)})
	if len(cat) != 3 || !cat[2].IsTrue() {
		t.Errorf("Concat = %v", cat)
	}
}

func TestTupleEncodedSize(t *testing.T) {
	tu := Tuple{Int(1), Str("ab"), Null()}
	if got := tu.EncodedSize(); got != 9+3+1 {
		t.Errorf("EncodedSize = %d", got)
	}
}

func TestHashKeysCompositeConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		t1 := Tuple{Int(a), Int(b), Str("pad")}
		t2 := Tuple{Str("other"), Int(a), Int(b)}
		return t1.HashKeys([]int{0, 1}) == t2.HashKeys([]int{1, 2})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashKeysOrderMatters(t *testing.T) {
	t1 := Tuple{Int(1), Int(2)}
	if t1.HashKeys([]int{0, 1}) == t1.HashKeys([]int{1, 0}) {
		t.Error("composite hash should be order sensitive")
	}
}

func TestKeysEqual(t *testing.T) {
	a := Tuple{Int(1), Str("x"), Int(3)}
	b := Tuple{Str("x"), Int(1), Int(4)}
	if !a.KeysEqual([]int{0, 1}, b, []int{1, 0}) {
		t.Error("KeysEqual false negative")
	}
	if a.KeysEqual([]int{0, 2}, b, []int{1, 2}) {
		t.Error("KeysEqual false positive")
	}
}

func TestTupleString(t *testing.T) {
	tu := Tuple{Int(1), Str("a")}
	if got := tu.String(); got != "[1, 'a']" {
		t.Errorf("Tuple.String() = %q", got)
	}
}
