package types

import (
	"sync"
	"sync/atomic"
)

// SizeCache memoizes the encoded byte sizes of a partitioned tuple set, so
// metering sites (spill checks, broadcast accounting, gather) walk
// EncodedSize at most once per relation or dataset instead of once per
// site. Owners embed one cache next to their partitions and must not mutate
// the partitions after the first read. The zero value is ready to use.
type SizeCache struct {
	once  sync.Once
	done  atomic.Bool
	part  []int64
	total int64
}

// Total returns the summed encoded size of all partitions, computing and
// caching it on first use.
func (c *SizeCache) Total(parts [][]Tuple) int64 {
	c.ensure(parts)
	return c.total
}

// Part returns the encoded size of partition p, cached like Total.
func (c *SizeCache) Part(parts [][]Tuple, p int) int64 {
	c.ensure(parts)
	return c.part[p]
}

// Seed installs sizes the owner already computed while building the
// partitions (pass-through scans, exchanges, sinks), so the lazy pass never
// runs. Must be called before the owner escapes its constructing goroutine.
func (c *SizeCache) Seed(part []int64, total int64) {
	c.part = part
	c.total = total
	c.done.Store(true)
	c.once.Do(func() {})
}

// PartIfKnown returns partition p's size when it has already been seeded or
// computed, or -1 without triggering the lazy whole-set walk. Streaming
// consumers use it to decide between a cached total and summing per-row
// sizes as rows flow past.
func (c *SizeCache) PartIfKnown(p int) int64 {
	if !c.done.Load() {
		return -1
	}
	return c.part[p]
}

// Parts returns the cached per-partition sizes as a read-only slice, e.g.
// to hand to another owner's Seed when the partitions are shared.
func (c *SizeCache) Parts(parts [][]Tuple) []int64 {
	c.ensure(parts)
	return c.part
}

func (c *SizeCache) ensure(parts [][]Tuple) {
	c.once.Do(func() {
		c.part = make([]int64, len(parts))
		for p, part := range parts {
			var n int64
			for _, t := range part {
				n += int64(t.EncodedSize())
			}
			c.part[p] = n
			c.total += n
		}
		c.done.Store(true)
	})
}
