package types

import (
	"math"
	"math/rand"
	"testing"
)

// randColVal draws a value for a column declared as kind k: mostly the
// declared kind, sometimes NULL, with the numeric edge cases the hash paths
// special-case (integral floats, NaN, infinities, extreme ints).
func randColVal(r *rand.Rand, k Kind) Value {
	if r.Intn(5) == 0 {
		return Null()
	}
	switch k {
	case KindInt:
		switch r.Intn(4) {
		case 0:
			return Int(int64(r.Intn(10)))
		case 1:
			return Int(-int64(r.Intn(1000)))
		case 2:
			return Int(math.MaxInt64 - int64(r.Intn(3)))
		default:
			return Int(r.Int63() - r.Int63())
		}
	case KindFloat:
		switch r.Intn(6) {
		case 0:
			return Float(float64(r.Intn(100))) // integral: hashes as int
		case 1:
			return Float(math.NaN())
		case 2:
			return Float(math.Inf(1 - 2*r.Intn(2)))
		case 3:
			return Float(r.NormFloat64() * 1e18)
		default:
			return Float(r.Float64()*200 - 100)
		}
	case KindString:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(string(b))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func randRows(r *rand.Rand, kinds []Kind, n int) []Tuple {
	rows := make([]Tuple, n)
	for i := range rows {
		t := make(Tuple, len(kinds))
		for j, k := range kinds {
			t[j] = randColVal(r, k)
		}
		rows[i] = t
	}
	return rows
}

// TestGatherMatchesRows checks that a gathered vector reproduces the row
// values exactly for every supported kind, NULLs included.
func TestGatherMatchesRows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	kinds := []Kind{KindInt, KindFloat, KindString}
	rows := randRows(r, kinds, 500)
	var v ColVec
	for col, k := range kinds {
		v.Gather(rows, col, k)
		if v.Mixed {
			t.Fatalf("col %d kind %v gathered Mixed from kind-pure rows", col, k)
		}
		for i, row := range rows {
			val := row[col]
			if v.Null[i] != val.IsNull() {
				t.Fatalf("col %d row %d: Null=%v for %s", col, i, v.Null[i], val)
			}
			if val.IsNull() {
				continue
			}
			switch k {
			case KindInt:
				if v.Ints[i] != val.I() {
					t.Fatalf("col %d row %d: %d != %s", col, i, v.Ints[i], val)
				}
			case KindFloat:
				if math.Float64bits(v.Floats[i]) != math.Float64bits(val.F()) {
					t.Fatalf("col %d row %d: %v != %s", col, i, v.Floats[i], val)
				}
			case KindString:
				if v.Strs[i] != val.S {
					t.Fatalf("col %d row %d: %q != %s", col, i, v.Strs[i], val)
				}
			}
		}
	}
}

// TestGatherMixed checks that kind disagreements and unsupported kinds mark
// the vector Mixed instead of producing a bogus payload.
func TestGatherMixed(t *testing.T) {
	rows := []Tuple{{Int(1)}, {Str("oops")}, {Int(3)}}
	var v ColVec
	v.Gather(rows, 0, KindInt)
	if !v.Mixed {
		t.Fatal("int gather over a string value must report Mixed")
	}
	// NULLs alone are not mixed.
	v.Gather([]Tuple{{Int(1)}, {Null()}}, 0, KindInt)
	if v.Mixed {
		t.Fatal("NULLs must not report Mixed")
	}
	// Bool columns have no vectorized consumers: Mixed immediately.
	v.Gather([]Tuple{{Bool(true)}}, 0, KindBool)
	if !v.Mixed {
		t.Fatal("bool gather must report Mixed")
	}
}

// TestColCacheWindowInvalidation checks the lazy gather cache: a vector is
// valid for the window it was gathered from and re-gathered after SetWindow.
func TestColCacheWindowInvalidation(t *testing.T) {
	sch := NewSchema(Field{Name: "x", Kind: KindInt})
	c := NewColCache(sch)
	c.SetWindow([]Tuple{{Int(1)}, {Int(2)}})
	v := c.Col(0)
	if v.Ints[0] != 1 || v.Ints[1] != 2 {
		t.Fatalf("first window gathered %v", v.Ints)
	}
	if c.Col(0) != v {
		t.Fatal("second Col on the same window must reuse the cached vector")
	}
	c.SetWindow([]Tuple{{Int(9)}})
	v2 := c.Col(0)
	if len(v2.Ints) != 1 || v2.Ints[0] != 9 {
		t.Fatalf("after SetWindow gathered %v", v2.Ints)
	}
}

// TestHashColsMatchesRowHash is the columnar-hash equivalence property: for
// random rows (all hashable kinds, NULLs, integral floats, NaN, extreme
// values) and random key-column sets, HashColsInto over gathered vectors is
// bit-identical to Tuple.HashKeys row-at-a-time — dense and through random
// selection vectors. Exchange placement and every placement-dependent
// counter depend on this equality.
func TestHashColsMatchesRowHash(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	kinds := []Kind{KindInt, KindFloat, KindString, KindInt, KindFloat}
	fields := make([]Field, len(kinds))
	for i, k := range kinds {
		fields[i] = Field{Name: string(rune('a' + i)), Kind: k}
	}
	sch := NewSchema(fields...)
	for trial := 0; trial < 50; trial++ {
		rows := randRows(r, kinds, 1+r.Intn(200))
		cache := NewColCache(sch)
		cache.SetWindow(rows)
		// Random non-empty key set, order-sensitive.
		nk := 1 + r.Intn(3)
		idxs := make([]int, nk)
		vecs := make([]*ColVec, nk)
		for i := range idxs {
			idxs[i] = r.Intn(len(kinds))
			vecs[i] = cache.Col(idxs[i])
			if vecs[i].Mixed {
				t.Fatalf("trial %d: kind-pure column %d gathered Mixed", trial, idxs[i])
			}
		}
		dense := HashColsInto(vecs, nil, len(rows), nil)
		want := HashKeysInto(rows, idxs, nil)
		for i := range rows {
			if dense[i] != want[i] {
				t.Fatalf("trial %d row %d (%s): columnar %x != row %x", trial, i, rows[i], dense[i], want[i])
			}
		}
		// Random selection subset, including empty.
		var sel []int32
		for i := range rows {
			if r.Intn(3) == 0 {
				sel = append(sel, int32(i))
			}
		}
		got := HashColsInto(vecs, sel, len(rows), nil)
		ref := HashKeysSelInto(rows, sel, idxs, nil)
		if len(got) != len(sel) || len(ref) != len(sel) {
			t.Fatalf("trial %d: sel lengths %d/%d want %d", trial, len(got), len(ref), len(sel))
		}
		for k, ri := range sel {
			if got[k] != ref[k] || got[k] != rows[ri].HashKeys(idxs) {
				t.Fatalf("trial %d sel %d (row %d): %x / %x / %x", trial, k, ri, got[k], ref[k], rows[ri].HashKeys(idxs))
			}
		}
	}
}
