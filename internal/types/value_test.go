package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		k    Kind
		null bool
	}{
		{Null(), KindNull, true},
		{Int(42), KindInt, false},
		{Float(3.5), KindFloat, false},
		{Str("x"), KindString, false},
		{Bool(true), KindBool, false},
	}
	for _, c := range cases {
		if c.v.K != c.k {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.K, c.k)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("IsNull(%v) = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
	}
}

func TestIsTrue(t *testing.T) {
	if !Bool(true).IsTrue() {
		t.Error("Bool(true).IsTrue() = false")
	}
	for _, v := range []Value{Bool(false), Null(), Int(1), Str("true"), Float(1)} {
		if v.IsTrue() {
			t.Errorf("%v.IsTrue() = true, want false", v)
		}
	}
}

func TestAsFloatAndAsInt(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int(7).AsFloat() = %v,%v", f, ok)
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v,%v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("Str.AsFloat() ok = true")
	}
	if i, ok := Float(9.9).AsInt(); !ok || i != 9 {
		t.Errorf("Float(9.9).AsInt() = %v,%v", i, ok)
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("Null.AsInt() ok = true")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64, sa, sb string, pick uint8) bool {
		mk := func(p uint8, i int64, s string) Value {
			switch p % 4 {
			case 0:
				return Int(i)
			case 1:
				return Float(float64(i) / 2)
			case 2:
				return Str(s)
			default:
				return Null()
			}
		}
		va, vb := mk(pick, a, sa), mk(pick>>2, b, sb)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualValuesEqualHashes(t *testing.T) {
	f := func(i int64, s string) bool {
		if Int(i).Hash() != Int(i).Hash() {
			return false
		}
		if Str(s).Hash() != Str(s).Hash() {
			return false
		}
		// Integral floats hash like their int counterparts so mixed-kind
		// equi-joins partition consistently (only checkable when the
		// int survives the float64 round-trip exactly).
		if int64(float64(i)) == i && float64(i) == math.Trunc(float64(i)) {
			return Int(i).Hash() == Float(float64(i)).Hash()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Int(i).Hash()] = true
	}
	if len(seen) < 990 {
		t.Errorf("hash collisions too frequent: %d distinct of 1000", len(seen))
	}
}

func TestEncodedSize(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Null(), 1},
		{Int(5), 9},
		{Float(1.5), 9},
		{Str("abc"), 4},
		{Bool(true), 2},
	}
	for _, c := range cases {
		if got := c.v.EncodedSize(); got != c.want {
			t.Errorf("EncodedSize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Str("hi"), "'hi'"},
		{Bool(false), "false"},
		{Float(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
