package types

// Arena chunks grow geometrically from arenaMinChunk to arenaMaxChunk
// Values: small outputs (a selective scan keeping a handful of rows) waste
// at most a few KB, while large outputs amortize one allocation over
// thousands of tuples within a handful of chunks.
const (
	arenaMinChunk = 256
	arenaMaxChunk = 16384
)

// Arena carves Tuples out of large shared chunks so hot loops (join output
// building, projection) stop paying one heap allocation per row. Tuples
// returned by an Arena are full-sliced ([lo:hi:hi]) so appends to them can
// never clobber a neighbor, and they stay valid for the life of the chunk
// they came from — the arena never reuses or frees space, it only moves on
// to a fresh chunk when the current one is full.
//
// An Arena is not safe for concurrent use; operators keep one per partition
// goroutine.
type Arena struct {
	chunk []Value
	next  int // capacity of the next chunk (geometric growth)
}

// alloc returns a capacity-clamped slice of n fresh Value slots.
func (a *Arena) alloc(n int) []Value {
	if cap(a.chunk)-len(a.chunk) < n {
		c := a.next
		if c < arenaMinChunk {
			c = arenaMinChunk
		}
		if c > arenaMaxChunk {
			c = arenaMaxChunk
		}
		if n > c {
			c = n
		}
		a.next = 2 * c
		a.chunk = make([]Value, 0, c)
	}
	lo := len(a.chunk)
	a.chunk = a.chunk[:lo+n]
	return a.chunk[lo : lo+n : lo+n]
}

// Reserve ensures capacity for n more Values in the current chunk, so a
// caller that knows its output size up front (e.g. a join that precounted
// matches) gets exactly one chunk with no slack chunks in between.
func (a *Arena) Reserve(n int) {
	if cap(a.chunk)-len(a.chunk) < n {
		a.chunk = make([]Value, 0, n)
	}
}

// Concat returns l⧺r carved from the arena — the allocation-free equivalent
// of Tuple.Concat for join output rows.
func (a *Arena) Concat(l, r Tuple) Tuple {
	out := a.alloc(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

// Make returns an uninitialized tuple of width n carved from the arena, for
// projection-style operators that fill columns one by one.
func (a *Arena) Make(n int) Tuple {
	return Tuple(a.alloc(n))
}
