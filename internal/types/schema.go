package types

import (
	"fmt"
	"strings"
)

// Field names one column of a schema. Qualifier is the dataset alias the
// column belongs to ("" for anonymous intermediates); Name is the column
// name. The pair must be unique within a schema.
type Field struct {
	Qualifier string
	Name      string
	Kind      Kind
}

// QName returns the qualified column name ("alias.name", or just "name" when
// unqualified).
func (f Field) QName() string {
	if f.Qualifier == "" {
		return f.Name
	}
	return f.Qualifier + "." + f.Name
}

// Schema describes the columns of a tuple stream.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// Index locates a column. It accepts either a bare name or a qualified
// "alias.name". A bare name matches if exactly one column has that name;
// ambiguous bare names report not-found so callers can raise a useful error.
func (s *Schema) Index(name string) (int, bool) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		q, n := name[:i], name[i+1:]
		for idx, f := range s.Fields {
			if f.Qualifier == q && f.Name == n {
				return idx, true
			}
		}
		return -1, false
	}
	found := -1
	for idx, f := range s.Fields {
		if f.Name == name {
			if found >= 0 {
				return -1, false // ambiguous
			}
			found = idx
		}
	}
	if found >= 0 {
		return found, true
	}
	return -1, false
}

// MustIndex is Index that panics on a missing column; used where the planner
// has already validated the reference.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.Index(name)
	if !ok {
		panic(fmt.Sprintf("types: column %q not found in schema %s", name, s))
	}
	return i
}

// HasQualifier reports whether any column carries the given qualifier.
func (s *Schema) HasQualifier(q string) bool {
	for _, f := range s.Fields {
		if f.Qualifier == q {
			return true
		}
	}
	return false
}

// Qualifiers returns the distinct qualifiers in schema order.
func (s *Schema) Qualifiers() []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range s.Fields {
		if !seen[f.Qualifier] {
			seen[f.Qualifier] = true
			out = append(out, f.Qualifier)
		}
	}
	return out
}

// Concat returns a new schema with o's columns appended to s's.
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Fields: make([]Field, 0, len(s.Fields)+len(o.Fields))}
	out.Fields = append(out.Fields, s.Fields...)
	out.Fields = append(out.Fields, o.Fields...)
	return out
}

// Project returns a schema with only the named columns, in the given order.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	out := &Schema{Fields: make([]Field, 0, len(names))}
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.Index(n)
		if !ok {
			return nil, nil, fmt.Errorf("types: project: column %q not found or ambiguous in %s", n, s)
		}
		out.Fields = append(out.Fields, s.Fields[i])
		idxs = append(idxs, i)
	}
	return out, idxs, nil
}

// Requalify returns a copy of the schema with every column's qualifier
// replaced. Used when an intermediate join result becomes a named dataset
// during query reconstruction.
func (s *Schema) Requalify(q string) *Schema {
	out := &Schema{Fields: make([]Field, len(s.Fields))}
	copy(out.Fields, s.Fields)
	for i := range out.Fields {
		out.Fields[i].Qualifier = q
	}
	return out
}

// String renders the schema as "(a.x int, b.y string)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.QName())
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row: a flat slice of values positionally aligned with a
// Schema.
type Tuple []Value

// EncodedSize sums the encoded sizes of the tuple's values.
func (t Tuple) EncodedSize() int {
	n := 0
	for _, v := range t {
		n += v.EncodedSize()
	}
	return n
}

// Clone returns a copy of the tuple with its own backing array.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns a new tuple of t followed by o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// String renders the tuple as "[v1, v2, ...]".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// hashKeysOffset seeds the composite-key combine of HashKeys (and its
// columnar twin HashColsInto — the two must stay bit-identical, since
// exchange placement and every placement-dependent counter hang off it).
const hashKeysOffset uint64 = 1469598103934665603 // FNV offset basis

// HashKeys hashes the values at the given column offsets, combining them so
// composite join keys (e.g. TPC-DS store_sales ⋈ store_returns on customer,
// item, ticket) partition consistently.
func (t Tuple) HashKeys(idxs []int) uint64 {
	h := hashKeysOffset
	for _, i := range idxs {
		h ^= t[i].Hash()
		h *= 1099511628211 // FNV prime
	}
	return h
}

// HashKeysInto computes HashKeys for every row, writing the results into dst
// (reused when its capacity suffices, else reallocated) and returning it.
// This is the bulk prehash path: exchanges, build tables, probes, and bulk
// loads hash each row exactly once and hand the hashes downstream instead of
// rehashing at every consumer.
func HashKeysInto(rows []Tuple, idxs []int, dst []uint64) []uint64 {
	if cap(dst) < len(rows) {
		dst = make([]uint64, len(rows))
	} else {
		dst = dst[:len(rows)]
	}
	for r, t := range rows {
		dst[r] = t.HashKeys(idxs)
	}
	return dst
}

// HashKeysSelInto is HashKeysInto over the selected rows only: dst is
// aligned with sel (dst[k] hashes rows[sel[k]]), the alignment chunk
// sidecars use when a selection vector is present.
func HashKeysSelInto(rows []Tuple, sel []int32, idxs []int, dst []uint64) []uint64 {
	if cap(dst) < len(sel) {
		dst = make([]uint64, len(sel))
	} else {
		dst = dst[:len(sel)]
	}
	for k, r := range sel {
		dst[k] = rows[r].HashKeys(idxs)
	}
	return dst
}

// KeysEqual reports whether the values of t at ti equal the values of o at
// oi, positionally.
func (t Tuple) KeysEqual(ti []int, o Tuple, oi []int) bool {
	for k := range ti {
		if !t[ti[k]].Equal(o[oi[k]]) {
			return false
		}
	}
	return true
}
