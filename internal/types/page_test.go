package types

import (
	"errors"
	"reflect"
	"testing"

	"dynopt/internal/faults"
)

func pageSchema() *Schema {
	return &Schema{Fields: []Field{
		{Name: "i", Kind: KindInt},
		{Name: "f", Kind: KindFloat},
		{Name: "s", Kind: KindString},
		{Name: "b", Kind: KindBool},
	}}
}

// decodeRows round-trips a page and materializes every row.
func decodeRows(t *testing.T, payload []byte, sch *Schema, need []bool) []Tuple {
	t.Helper()
	var pd PageData
	if err := pd.DecodePage(payload, sch, need); err != nil {
		t.Fatal(err)
	}
	out := make([]Tuple, pd.NRows)
	for r := range out {
		out[r] = pd.Tuple(r)
	}
	return out
}

func TestEncodePageEmpty(t *testing.T) {
	sch := pageSchema()
	payload, st := EncodePage(nil, sch, nil)
	if len(st) != sch.Len() {
		t.Fatalf("stats width %d", len(st))
	}
	for c, cs := range st {
		if cs.HasMinMax || cs.Nulls != 0 {
			t.Errorf("col %d stats non-empty: %+v", c, cs)
		}
	}
	var pd PageData
	if err := pd.DecodePage(payload, sch, nil); err != nil {
		t.Fatal(err)
	}
	if pd.NRows != 0 {
		t.Errorf("NRows = %d", pd.NRows)
	}
}

func TestEncodePageAllNullColumn(t *testing.T) {
	sch := pageSchema()
	rows := []Tuple{
		{Null(), Float(1.5), Str("x"), Bool(true)},
		{Null(), Float(2.5), Null(), Bool(false)},
		{Null(), Null(), Str("z"), Null()},
	}
	payload, st := EncodePage(nil, sch, rows)
	if st[0].HasMinMax || st[0].Nulls != 3 {
		t.Errorf("all-NULL int column stats: %+v", st[0])
	}
	if !st[1].HasMinMax || st[1].Min.F() != 1.5 || st[1].Max.F() != 2.5 || st[1].Nulls != 1 {
		t.Errorf("float column stats: %+v", st[1])
	}
	if got := decodeRows(t, payload, sch, nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip diverged: %v", got)
	}
}

// TestEncodePageMixedKindFallback: a column whose values disagree with the
// schema kind takes the per-value fallback encoding and still round-trips
// exactly, with zone maps ordered by Value.Compare across kinds.
func TestEncodePageMixedKindFallback(t *testing.T) {
	sch := pageSchema()
	rows := []Tuple{
		{Int(1), Float(0.5), Str("a"), Bool(true)},
		{Str("not-an-int"), Float(1.5), Str("b"), Bool(false)},
		{Int(3), Null(), Int(9), Null()},
	}
	payload, _ := EncodePage(nil, sch, rows)
	var pd PageData
	if err := pd.DecodePage(payload, sch, nil); err != nil {
		t.Fatal(err)
	}
	if !pd.Cols[0].Fallback || !pd.Cols[2].Fallback {
		t.Error("mixed-kind columns did not fall back")
	}
	if pd.Cols[1].Fallback {
		t.Error("clean float column fell back")
	}
	got := make([]Tuple, pd.NRows)
	for r := range got {
		got[r] = pd.Tuple(r)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip diverged: %v", got)
	}
}

// TestEncodePageBoolFallback: bools are typed on the wire (one byte per row)
// but decode to row-form values, since no vector kernel consumes them.
func TestEncodePageBoolFallback(t *testing.T) {
	sch := &Schema{Fields: []Field{{Name: "b", Kind: KindBool}}}
	rows := []Tuple{{Bool(true)}, {Null()}, {Bool(false)}}
	payload, st := EncodePage(nil, sch, rows)
	if !st[0].HasMinMax || st[0].Nulls != 1 {
		t.Errorf("bool stats: %+v", st[0])
	}
	var pd PageData
	if err := pd.DecodePage(payload, sch, nil); err != nil {
		t.Fatal(err)
	}
	if !pd.Cols[0].Fallback {
		t.Error("bool column decoded as a vector")
	}
	for r, want := range rows {
		if !pd.Value(0, r).Equal(want[0]) && !(want[0].IsNull() && pd.Value(0, r).IsNull()) {
			t.Errorf("row %d: %v, want %v", r, pd.Value(0, r), want[0])
		}
	}
}

// TestDecodePageProjectionSkip: need[i]=false jumps the column's bytes —
// skipped columns surface as NULL, everything needed decodes exactly.
func TestDecodePageProjectionSkip(t *testing.T) {
	sch := pageSchema()
	rows := []Tuple{
		{Int(1), Float(0.5), Str("a"), Bool(true)},
		{Int(2), Float(1.5), Str("bb"), Bool(false)},
	}
	payload, _ := EncodePage(nil, sch, rows)
	var pd PageData
	if err := pd.DecodePage(payload, sch, []bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	if !pd.Cols[1].Skipped || !pd.Cols[3].Skipped {
		t.Error("unneeded columns not skipped")
	}
	for r := range rows {
		got := pd.Tuple(r)
		if !got[0].Equal(rows[r][0]) || !got[2].Equal(rows[r][2]) {
			t.Errorf("row %d needed columns diverged: %v", r, got)
		}
		if !got[1].IsNull() || !got[3].IsNull() {
			t.Errorf("row %d skipped columns not NULL: %v", r, got)
		}
	}
	// A reused PageData must clear the Skipped state when the next decode
	// needs every column.
	if err := pd.DecodePage(payload, sch, nil); err != nil {
		t.Fatal(err)
	}
	for r := range rows {
		if got := pd.Tuple(r); !reflect.DeepEqual(got, rows[r]) {
			t.Errorf("reused decode row %d: %v", r, got)
		}
	}
}

// TestDecodePageSchemaMismatch: a page decoded against the wrong schema
// width fails classified, never misaligns columns.
func TestDecodePageSchemaMismatch(t *testing.T) {
	payload, _ := EncodePage(nil, pageSchema(), []Tuple{{Int(1), Float(1), Str("x"), Bool(true)}})
	narrow := &Schema{Fields: []Field{{Name: "i", Kind: KindInt}}}
	var pd PageData
	if err := pd.DecodePage(payload, narrow, nil); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("schema width mismatch not classified: %v", err)
	}
	// Same width, different kind: the typed column tag must disagree.
	wrongKind := pageSchema()
	wrongKind.Fields[0].Kind = KindFloat
	if err := pd.DecodePage(payload, wrongKind, nil); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("schema kind mismatch not classified: %v", err)
	}
}

// TestDecodePageTruncationClassified: every truncation point of a page
// payload fails classified ErrCorrupt — no panic, no partial decode.
func TestDecodePageTruncationClassified(t *testing.T) {
	sch := pageSchema()
	rows := []Tuple{
		{Int(1), Float(0.5), Str("hello"), Bool(true)},
		{Null(), Float(1.5), Str("world"), Null()},
	}
	payload, _ := EncodePage(nil, sch, rows)
	var pd PageData
	for cut := 0; cut < len(payload); cut++ {
		if err := pd.DecodePage(payload[:cut], sch, nil); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(payload))
		} else if !errors.Is(err, faults.ErrCorrupt) {
			t.Fatalf("truncation at %d unclassified: %v", cut, err)
		}
	}
}
