package types

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"dynopt/internal/faults"
)

// Binary tuple codec backing the run files of the real spill path. The
// layout mirrors the simulated accounting of EncodedSize — one kind tag byte
// followed by the payload (8 little-endian bytes for int/float, 1 byte for
// bool, the raw bytes for strings) — with two additions the simulated model
// does not need but a decoder does: a uvarint column count in front of every
// tuple, and a uvarint length in front of every string payload (EncodedSize
// prices a string as 1+len, which is not self-delimiting). Encoded tuples
// are therefore a few bytes wider than their EncodedSize; spill metering
// charges the actual bytes written, framing included.
//
// Run-file format. Records never hit the device bare: every RunWriter flush
// emits one self-verifying block, and Finish seals the file with a footer,
// so a reader can prove end to end that the bytes coming off disk are the
// bytes that went in:
//
//	file   = block* footer
//	block  = len u32le (1..maxBlockBytes) | crc u32le | payload (len bytes)
//	record = uvarint payload length | EncodeTuple payload   (within a block)
//	footer = 0 u32le | crc u32le | magic [8]byte | rows u64le |
//	         payloadBytes u64le | fileCRC u32le
//
// The crc of each block is CRC32-C of its payload; the footer is framed as
// the zero-length block, its crc covering the 24 footer payload bytes, with
// fileCRC a running CRC32-C over every block payload in file order. Records
// never span blocks (a flush always writes whole records), so one verified
// block is decodable in isolation. Every failure mode is detected, not
// silent: a bit flip fails a block or footer CRC, truncation at any offset —
// including a clean record or block boundary — leaves the footer missing or
// short, and a file with a valid footer must account for exactly the rows
// and payload bytes the writer sealed. All such failures carry
// faults.ErrCorrupt.

// MaxRecordBytes bounds one encoded record (tuple plus framing). The writer
// refuses larger appends; the reader classifies larger record or string
// lengths as corruption instead of allocating attacker-controlled amounts —
// a corrupt length prefix cannot OOM the server.
const MaxRecordBytes = 16 << 20

// runWriterBufSize is the flush threshold of RunWriter's internal buffer:
// the target block payload size. Checksumming rides the flush path, once per
// block, never per row.
const runWriterBufSize = 64 << 10

// maxBlockBytes bounds one block's payload: buffered records stay below the
// flush threshold, plus the one record that crossed it.
const maxBlockBytes = runWriterBufSize + MaxRecordBytes + 16

const (
	blockHeaderLen   = 8  // len u32le + crc u32le
	footerPayloadLen = 28 // magic(8) + rows(8) + payloadBytes(8) + fileCRC(4)
)

// runMagic seals the footer of a finished run file.
var runMagic = [8]byte{'D', 'Y', 'N', 'R', 'U', 'N', '1', 0}

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// corruptf builds a corruption error carrying the faults.ErrCorrupt
// sentinel, so storage and engine layers classify with errors.Is.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("types: "+format+": %w", append(args, faults.ErrCorrupt)...)
}

// EncodeTuple appends the binary encoding of t to dst and returns the
// extended slice. The encoding round-trips through DecodeTuple for every
// value kind, including NULL.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		switch v.K {
		case KindInt, KindFloat:
			dst = append(dst, byte(v.K))
			dst = binary.LittleEndian.AppendUint64(dst, v.num)
		case KindString:
			dst = append(dst, byte(KindString))
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case KindBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			dst = append(dst, byte(KindBool), b)
		default:
			// KindNull is tag-only. Unknown kinds cannot occur for values
			// built through this package's constructors, but K is an
			// exported field: encode them as NULL so the stream stays
			// decodable rather than writing a tag the decoder rejects.
			dst = append(dst, byte(KindNull))
		}
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of src, returning the tuple
// and the number of bytes consumed. String payloads are copied, so the
// returned tuple does not alias src. Malformed input — truncation, unknown
// tags, or lengths beyond MaxRecordBytes — returns an error classified
// faults.ErrCorrupt; allocation is always bounded by the input length.
func DecodeTuple(src []byte) (Tuple, int, error) {
	n, off := binary.Uvarint(src)
	if off <= 0 {
		return nil, 0, corruptf("decode tuple: bad column count")
	}
	if n > uint64(len(src)) { // cheap sanity bound: ≥1 byte per column
		return nil, 0, corruptf("decode tuple: column count %d exceeds input", n)
	}
	t := make(Tuple, n)
	for i := range t {
		if off >= len(src) {
			return nil, 0, corruptf("decode tuple: truncated at column %d", i)
		}
		k := Kind(src[off])
		off++
		switch k {
		case KindNull:
			t[i] = Value{K: KindNull}
		case KindInt, KindFloat:
			if off+8 > len(src) {
				return nil, 0, corruptf("decode tuple: truncated %v payload", k)
			}
			t[i] = Value{K: k, num: binary.LittleEndian.Uint64(src[off:])}
			off += 8
		case KindString:
			sl, m := binary.Uvarint(src[off:])
			if m <= 0 || sl > MaxRecordBytes {
				return nil, 0, corruptf("decode tuple: string length %d out of bounds", sl)
			}
			if uint64(len(src)-off-m) < sl {
				return nil, 0, corruptf("decode tuple: truncated string payload")
			}
			off += m
			t[i] = Value{K: KindString, S: string(src[off : off+int(sl)])}
			off += int(sl)
		case KindBool:
			if off >= len(src) {
				return nil, 0, corruptf("decode tuple: truncated bool payload")
			}
			t[i] = Value{K: KindBool, B: src[off] != 0}
			off++
		default:
			return nil, 0, corruptf("decode tuple: unknown kind tag %d", k)
		}
	}
	return t, off, nil
}

// RunWriter appends encoded tuples to an io.Writer as checksummed blocks
// (see the format comment above). It is the write half of a spill run file:
// append-only, buffered, and it counts exactly the bytes it hands to the
// underlying writer so spill metering can charge actual I/O. Finish seals
// the run with the footer; a run without a footer reads back as corrupt by
// design — an unsealed file is indistinguishable from a truncated one.
//
// Not safe for concurrent use; each run file is owned by one partition
// goroutine.
type RunWriter struct {
	w        io.Writer
	buf      []byte // block under construction; [0:8] reserved for the header
	scratch  []byte
	rows     int64
	bytes    int64  // bytes written through, framing included
	payload  int64  // block payload bytes written (excludes headers/footer)
	fileCRC  uint32 // running CRC32-C over all block payloads
	finished bool
}

// NewRunWriter returns a writer appending records to w.
func NewRunWriter(w io.Writer) *RunWriter {
	return &RunWriter{w: w, buf: make([]byte, blockHeaderLen, blockHeaderLen+4096)}
}

// Append encodes one tuple into the run.
func (w *RunWriter) Append(t Tuple) error {
	if w.finished {
		return fmt.Errorf("types: append to a finished run")
	}
	w.scratch = EncodeTuple(w.scratch[:0], t)
	if len(w.scratch) > MaxRecordBytes {
		return fmt.Errorf("types: record of %d bytes exceeds MaxRecordBytes (%d)", len(w.scratch), MaxRecordBytes)
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.scratch)))
	w.buf = append(w.buf, w.scratch...)
	w.rows++
	if len(w.buf)-blockHeaderLen >= runWriterBufSize {
		return w.Flush()
	}
	return nil
}

// Flush seals the buffered records into one checksummed block and writes it
// through to the underlying writer.
func (w *RunWriter) Flush() error {
	payload := w.buf[blockHeaderLen:]
	if len(payload) == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.Checksum(payload, castagnoli))
	n, err := w.w.Write(w.buf)
	w.bytes += int64(n)
	if err == nil && n < len(w.buf) {
		err = io.ErrShortWrite
	}
	if err == nil {
		w.fileCRC = crc32.Update(w.fileCRC, castagnoli, payload)
		w.payload += int64(len(payload))
	}
	w.buf = w.buf[:blockHeaderLen]
	return err
}

// Finish flushes the last block and seals the run with the footer: magic,
// total row count, total payload bytes, and the whole-file checksum. A
// reader verifies all of it back, so truncation at any boundary — block,
// record, or mid-byte — is detected, never silent. Idempotent.
func (w *RunWriter) Finish() error {
	if w.finished {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var ftr [blockHeaderLen + footerPayloadLen]byte
	// ftr[0:4] stays zero: the footer is framed as the zero-length block.
	copy(ftr[8:16], runMagic[:])
	binary.LittleEndian.PutUint64(ftr[16:], uint64(w.rows))
	binary.LittleEndian.PutUint64(ftr[24:], uint64(w.payload))
	binary.LittleEndian.PutUint32(ftr[32:], w.fileCRC)
	binary.LittleEndian.PutUint32(ftr[4:], crc32.Checksum(ftr[8:], castagnoli))
	n, err := w.w.Write(ftr[:])
	w.bytes += int64(n)
	if err == nil && n < len(ftr) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return err
	}
	w.finished = true
	return nil
}

// Rows returns the number of tuples appended.
func (w *RunWriter) Rows() int64 { return w.rows }

// Bytes returns the bytes written through to the underlying writer so far,
// block framing and footer included (buffered-but-unflushed records are not
// counted; call Finish first for the final figure).
func (w *RunWriter) Bytes() int64 { return w.bytes }

// RunReader streams tuples back out of a run written by RunWriter, verifying
// every block checksum before decoding and the footer seal at EOF. Next
// returns io.EOF only after the footer verified; every other irregularity —
// checksum mismatch, bad framing, truncation anywhere, trailing garbage,
// row or byte counts disagreeing with the seal — is an error classified
// faults.ErrCorrupt.
type RunReader struct {
	r       io.Reader
	block   []byte // current verified block payload
	off     int    // consumed bytes within block
	buf     []byte // backing storage for block
	rows    int64  // records consumed (or counted, under Verify)
	payload int64  // payload bytes of verified blocks
	fileCRC uint32 // running CRC32-C over verified block payloads
	sealed  bool   // footer verified; subsequent reads return io.EOF
}

// NewRunReader returns a reader over r.
func NewRunReader(r io.Reader) *RunReader {
	return &RunReader{r: r, buf: make([]byte, 0, blockHeaderLen+runWriterBufSize)}
}

// Next decodes the next tuple, returning io.EOF at the verified end of the
// run and an ErrCorrupt-classified error for any damage in between.
func (r *RunReader) Next() (Tuple, error) {
	for r.off >= len(r.block) {
		if err := r.loadBlock(); err != nil {
			return nil, err // io.EOF only after a verified footer
		}
	}
	payload, err := r.record()
	if err != nil {
		return nil, err
	}
	t, used, err := DecodeTuple(payload)
	if err != nil {
		return nil, err
	}
	if used != len(payload) {
		return nil, corruptf("run record has %d trailing bytes", len(payload)-used)
	}
	return t, nil
}

// record consumes one length-prefixed record from the current block,
// returning its payload. Records cannot span blocks, so the bounds checks
// here are against verified in-memory data only.
func (r *RunReader) record() ([]byte, error) {
	n, m := binary.Uvarint(r.block[r.off:])
	if m <= 0 {
		return nil, corruptf("run record has a malformed length prefix")
	}
	if n > MaxRecordBytes {
		return nil, corruptf("run record length %d exceeds MaxRecordBytes (%d)", n, MaxRecordBytes)
	}
	if int(n) > len(r.block)-r.off-m {
		return nil, corruptf("run record of %d bytes crosses its block boundary", n)
	}
	p := r.block[r.off+m : r.off+m+int(n)]
	r.off += m + int(n)
	r.rows++
	return p, nil
}

// loadBlock reads and verifies the next block, or the footer. On return
// either r.block holds a verified payload (off reset to 0), or the footer
// verified and the error is io.EOF.
func (r *RunReader) loadBlock() error {
	if r.sealed {
		return io.EOF
	}
	var hdr [blockHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("run truncated before its footer")
		}
		return err
	}
	ln := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if ln == 0 {
		return r.readFooter(crc)
	}
	if ln > maxBlockBytes {
		return corruptf("run block length %d exceeds the %d-byte bound", ln, maxBlockBytes)
	}
	if cap(r.buf) < int(ln) {
		r.buf = make([]byte, ln)
	}
	r.buf = r.buf[:ln]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("run truncated inside a %d-byte block", ln)
		}
		return err
	}
	if got := crc32.Checksum(r.buf, castagnoli); got != crc {
		return corruptf("run block checksum mismatch (stored %08x, computed %08x)", crc, got)
	}
	r.fileCRC = crc32.Update(r.fileCRC, castagnoli, r.buf)
	r.payload += int64(ln)
	r.block, r.off = r.buf, 0
	return nil
}

// readFooter verifies the seal against everything read so far and checks
// nothing trails it. Returns io.EOF on a fully verified run.
func (r *RunReader) readFooter(crc uint32) error {
	var ftr [footerPayloadLen]byte
	if _, err := io.ReadFull(r.r, ftr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("run truncated inside its footer")
		}
		return err
	}
	if got := crc32.Checksum(ftr[:], castagnoli); got != crc {
		return corruptf("run footer checksum mismatch (stored %08x, computed %08x)", crc, got)
	}
	if [8]byte(ftr[0:8]) != runMagic {
		return corruptf("run footer magic mismatch (%q)", ftr[0:8])
	}
	if rows := binary.LittleEndian.Uint64(ftr[8:]); rows != uint64(r.rows) {
		return corruptf("run sealed %d rows but %d were read back", rows, r.rows)
	}
	if pb := binary.LittleEndian.Uint64(ftr[16:]); pb != uint64(r.payload) {
		return corruptf("run sealed %d payload bytes but %d were read back", pb, r.payload)
	}
	if fc := binary.LittleEndian.Uint32(ftr[24:]); fc != r.fileCRC {
		return corruptf("run whole-file checksum mismatch (sealed %08x, computed %08x)", fc, r.fileCRC)
	}
	var one [1]byte
	if n, err := r.r.Read(one[:]); n > 0 || (err != nil && err != io.EOF) {
		if n > 0 {
			return corruptf("run has trailing bytes after its footer")
		}
		return err
	}
	r.sealed = true
	return io.EOF
}

// Rows returns the number of records consumed (decoded by Next, or counted
// by Verify) so far.
func (r *RunReader) Rows() int64 { return r.rows }

// Verify walks the remaining run without decoding tuples: every block
// checksum, every record frame, and the footer seal are checked, and the
// record count accumulates into Rows. A nil return means the run is intact
// end to end; damage returns an ErrCorrupt-classified error. This is the
// cheap pre-join integrity pass of the DHHJ — CRC bandwidth, no per-row
// allocation.
func (r *RunReader) Verify() error {
	for {
		for r.off >= len(r.block) {
			err := r.loadBlock()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
		if _, err := r.record(); err != nil {
			return err
		}
	}
}
