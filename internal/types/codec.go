package types

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary tuple codec backing the run files of the real spill path. The
// layout mirrors the simulated accounting of EncodedSize — one kind tag byte
// followed by the payload (8 little-endian bytes for int/float, 1 byte for
// bool, the raw bytes for strings) — with two additions the simulated model
// does not need but a decoder does: a uvarint column count in front of every
// tuple, and a uvarint length in front of every string payload (EncodedSize
// prices a string as 1+len, which is not self-delimiting). Encoded tuples
// are therefore a few bytes wider than their EncodedSize; spill metering
// charges the actual bytes written, framing included.

// EncodeTuple appends the binary encoding of t to dst and returns the
// extended slice. The encoding round-trips through DecodeTuple for every
// value kind, including NULL.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		switch v.K {
		case KindInt, KindFloat:
			dst = append(dst, byte(v.K))
			dst = binary.LittleEndian.AppendUint64(dst, v.num)
		case KindString:
			dst = append(dst, byte(KindString))
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case KindBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			dst = append(dst, byte(KindBool), b)
		default:
			// KindNull is tag-only. Unknown kinds cannot occur for values
			// built through this package's constructors, but K is an
			// exported field: encode them as NULL so the stream stays
			// decodable rather than writing a tag the decoder rejects.
			dst = append(dst, byte(KindNull))
		}
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of src, returning the tuple
// and the number of bytes consumed. String payloads are copied, so the
// returned tuple does not alias src.
func DecodeTuple(src []byte) (Tuple, int, error) {
	n, off := binary.Uvarint(src)
	if off <= 0 {
		return nil, 0, fmt.Errorf("types: decode tuple: bad column count")
	}
	if n > uint64(len(src)) { // cheap sanity bound: ≥1 byte per column
		return nil, 0, fmt.Errorf("types: decode tuple: column count %d exceeds input", n)
	}
	t := make(Tuple, n)
	for i := range t {
		if off >= len(src) {
			return nil, 0, io.ErrUnexpectedEOF
		}
		k := Kind(src[off])
		off++
		switch k {
		case KindNull:
			t[i] = Value{K: KindNull}
		case KindInt, KindFloat:
			if off+8 > len(src) {
				return nil, 0, io.ErrUnexpectedEOF
			}
			t[i] = Value{K: k, num: binary.LittleEndian.Uint64(src[off:])}
			off += 8
		case KindString:
			sl, m := binary.Uvarint(src[off:])
			if m <= 0 || uint64(len(src)-off-m) < sl {
				return nil, 0, io.ErrUnexpectedEOF
			}
			off += m
			t[i] = Value{K: KindString, S: string(src[off : off+int(sl)])}
			off += int(sl)
		case KindBool:
			if off >= len(src) {
				return nil, 0, io.ErrUnexpectedEOF
			}
			t[i] = Value{K: KindBool, B: src[off] != 0}
			off++
		default:
			return nil, 0, fmt.Errorf("types: decode tuple: unknown kind tag %d", k)
		}
	}
	return t, off, nil
}

// runWriterBufSize is the flush threshold of RunWriter's internal buffer.
const runWriterBufSize = 64 << 10

// RunWriter appends encoded tuples to an io.Writer as a sequence of
// length-prefixed records (uvarint payload length, then the EncodeTuple
// payload). It is the write half of a spill run file: append-only, buffered,
// and it counts exactly the bytes it hands to the underlying writer so spill
// metering can charge actual I/O.
//
// Not safe for concurrent use; each run file is owned by one partition
// goroutine.
type RunWriter struct {
	w       io.Writer
	buf     []byte
	scratch []byte
	rows    int64
	bytes   int64
}

// NewRunWriter returns a writer appending records to w.
func NewRunWriter(w io.Writer) *RunWriter {
	return &RunWriter{w: w}
}

// Append encodes one tuple into the run.
func (w *RunWriter) Append(t Tuple) error {
	w.scratch = EncodeTuple(w.scratch[:0], t)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.scratch)))
	w.buf = append(w.buf, w.scratch...)
	w.rows++
	if len(w.buf) >= runWriterBufSize {
		return w.Flush()
	}
	return nil
}

// Flush writes the buffered records through to the underlying writer.
func (w *RunWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.w.Write(w.buf)
	w.bytes += int64(n)
	w.buf = w.buf[:0]
	return err
}

// Rows returns the number of tuples appended.
func (w *RunWriter) Rows() int64 { return w.rows }

// Bytes returns the bytes written through to the underlying writer so far
// (buffered-but-unflushed records are not counted; call Flush first for the
// final figure).
func (w *RunWriter) Bytes() int64 { return w.bytes }

// RunReader streams tuples back out of a run written by RunWriter.
type RunReader struct {
	r       io.Reader
	buf     []byte
	off     int // consumed bytes within buf
	filled  int // valid bytes within buf
	scratch []byte
	eof     bool
}

// NewRunReader returns a reader over r.
func NewRunReader(r io.Reader) *RunReader {
	return &RunReader{r: r, buf: make([]byte, runWriterBufSize)}
}

// Next decodes the next tuple, returning io.EOF at a clean end of the run
// and io.ErrUnexpectedEOF on a truncated record.
func (r *RunReader) Next() (Tuple, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err // io.EOF only at a record boundary
	}
	payload, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	t, used, err := DecodeTuple(payload)
	if err != nil {
		return nil, err
	}
	if used != len(payload) {
		return nil, fmt.Errorf("types: run record has %d trailing bytes", len(payload)-used)
	}
	return t, nil
}

// readUvarint reads the record length prefix byte by byte out of the buffer.
func (r *RunReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.byte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return 0, fmt.Errorf("types: run record length overflows uvarint")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (r *RunReader) byte() (byte, error) {
	if r.off >= r.filled {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// take returns n contiguous payload bytes, refilling (and if needed growing
// the scratch buffer for records larger than the read buffer) as it goes. The
// returned slice is valid until the next call.
func (r *RunReader) take(n int) ([]byte, error) {
	if r.filled-r.off >= n {
		p := r.buf[r.off : r.off+n]
		r.off += n
		return p, nil
	}
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	r.scratch = r.scratch[:n]
	got := copy(r.scratch, r.buf[r.off:r.filled])
	r.off = r.filled
	if _, err := io.ReadFull(r.r, r.scratch[got:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return r.scratch, nil
}

func (r *RunReader) fill() error {
	if r.eof {
		return io.EOF
	}
	r.off, r.filled = 0, 0
	n, err := r.r.Read(r.buf)
	r.filled = n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.EOF
	}
	if err == io.EOF {
		r.eof = true
	}
	return err
}
