package types

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Columnar page codec backing the disk-native dataset store. A page holds a
// window of rows from one partition, encoded column-chunked so a reader can
// decode exactly the columns a scan needs and skip the rest without touching
// their bytes (projection pushdown at the storage layer). Pages ride inside
// PageFile frames using the same len|crc block discipline as the run-file
// codec, so every at-rest damage mode — bit flip, truncated tail, torn write
// — fails a checksum instead of decoding into wrong rows.
//
// Page payload layout:
//
//	page    = uvarint nrows | uvarint ncols | column*
//	column  = uvarint encLen | colenc                (encLen bytes follow)
//	colenc  = typed | fallback
//	typed   = 0x00 | kind byte | nullFlag byte | nullBitmap? | payload
//	fallback= 0x01 | value*                          (one tagged value per row)
//
// Typed payloads are dense per-kind arrays aligned with the page's rows
// (int/float: 8 little-endian bytes each, NULL slots zeroed; bool: one byte;
// string: uvarint length + bytes, NULL slots zero-length), with NULLs carried
// in the optional bitmap. A column whose values disagree with the schema kind
// — or a kind with no dense form — falls back to per-value tag encoding, the
// same shape EncodeTuple uses, and decodes to row-form values.
//
// Zone-map statistics (per-column min/max over non-NULL values under
// Value.Compare, plus the NULL count) are computed during encoding and stored
// by the page directory, not in the page payload: pruning consults them
// before any page byte is read.

// MaxPageRows bounds one page's row count; the decoder classifies larger
// stored counts as corruption instead of allocating attacker-controlled
// amounts.
const MaxPageRows = 1 << 20

const (
	pageColTyped    = 0x00
	pageColFallback = 0x01
)

// CRC32C returns the Castagnoli CRC of b — the checksum both the run-file
// and page-file frames use, exported so the storage layer frames pages with
// the identical discipline.
func CRC32C(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// CRC32CUpdate extends a running Castagnoli CRC with b — the incremental
// form backing a page file's whole-file checksum.
func CRC32CUpdate(crc uint32, b []byte) uint32 { return crc32.Update(crc, castagnoli, b) }

// PageColStats is one column's zone-map entry: min/max over the page's
// non-NULL values (ordered by Value.Compare, so pruning and predicate
// evaluation agree exactly) and the NULL count. HasMinMax is false when the
// column held no non-NULL values.
type PageColStats struct {
	Min, Max  Value
	HasMinMax bool
	Nulls     int64
}

// EncodePage appends the page encoding of rows (all full schema width) to
// dst, returning the extended slice and the per-column zone-map stats. An
// empty rows slice encodes a valid empty page.
func EncodePage(dst []byte, schema *Schema, rows []Tuple) ([]byte, []PageColStats) {
	ncols := schema.Len()
	st := make([]PageColStats, ncols)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	dst = binary.AppendUvarint(dst, uint64(ncols))
	var scratch []byte
	for c := 0; c < ncols; c++ {
		scratch = encodePageCol(scratch[:0], schema.Fields[c].Kind, rows, c, &st[c])
		dst = binary.AppendUvarint(dst, uint64(len(scratch)))
		dst = append(dst, scratch...)
	}
	return dst, st
}

// encodePageCol encodes column c of rows, filling its zone-map stats.
func encodePageCol(dst []byte, want Kind, rows []Tuple, c int, st *PageColStats) []byte {
	// One stats pass decides the encoding (typed iff every non-NULL value
	// matches the schema kind and the kind has a dense form) and computes the
	// zone map over all non-NULL values, whichever encoding is taken.
	typed := want == KindInt || want == KindFloat || want == KindString || want == KindBool
	nulls := 0
	for r := range rows {
		v := &rows[r][c]
		if v.K == KindNull {
			nulls++
			continue
		}
		if v.K != want {
			typed = false
		}
		if !st.HasMinMax {
			st.Min, st.Max, st.HasMinMax = *v, *v, true
		} else {
			if v.Compare(st.Min) < 0 {
				st.Min = *v
			}
			if v.Compare(st.Max) > 0 {
				st.Max = *v
			}
		}
	}
	st.Nulls = int64(nulls)
	if !typed {
		dst = append(dst, pageColFallback)
		for r := range rows {
			dst = AppendValue(dst, rows[r][c])
		}
		return dst
	}
	dst = append(dst, pageColTyped, byte(want))
	if nulls == 0 {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		bm := make([]byte, (len(rows)+7)/8)
		for r := range rows {
			if rows[r][c].K == KindNull {
				bm[r>>3] |= 1 << (r & 7)
			}
		}
		dst = append(dst, bm...)
	}
	switch want {
	case KindInt, KindFloat:
		//dynopt:hotpath
		for r := range rows {
			dst = binary.LittleEndian.AppendUint64(dst, rows[r][c].num)
		}
	case KindString:
		//dynopt:hotpath
		for r := range rows {
			s := rows[r][c].S
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	case KindBool:
		//dynopt:hotpath
		for r := range rows {
			b := byte(0)
			if rows[r][c].B {
				b = 1
			}
			dst = append(dst, b)
		}
	}
	return dst
}

// AppendValue encodes one tagged value — the fallback per-value form,
// identical in shape to EncodeTuple's element encoding. The page directory
// also uses it for zone-map min/max values and persistent index keys.
func AppendValue(dst []byte, v Value) []byte {
	switch v.K {
	case KindInt, KindFloat:
		dst = append(dst, byte(v.K))
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindString:
		dst = append(dst, byte(KindString))
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	case KindBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		dst = append(dst, byte(KindBool), b)
	default:
		dst = append(dst, byte(KindNull))
	}
	return dst
}

// DecodeValue decodes one tagged value from src, returning the value and
// bytes consumed. Malformed input is classified faults.ErrCorrupt.
func DecodeValue(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, corruptf("page value: truncated tag")
	}
	k := Kind(src[0])
	off := 1
	switch k {
	case KindNull:
		return Value{}, off, nil
	case KindInt, KindFloat:
		if off+8 > len(src) {
			return Value{}, 0, corruptf("page value: truncated %v payload", k)
		}
		return Value{K: k, num: binary.LittleEndian.Uint64(src[off:])}, off + 8, nil
	case KindString:
		sl, m := binary.Uvarint(src[off:])
		if m <= 0 || sl > MaxRecordBytes {
			return Value{}, 0, corruptf("page value: string length %d out of bounds", sl)
		}
		if uint64(len(src)-off-m) < sl {
			return Value{}, 0, corruptf("page value: truncated string payload")
		}
		off += m
		return Value{K: KindString, S: string(src[off : off+int(sl)])}, off + int(sl), nil
	case KindBool:
		if off >= len(src) {
			return Value{}, 0, corruptf("page value: truncated bool payload")
		}
		return Value{K: KindBool, B: src[off] != 0}, off + 1, nil
	default:
		return Value{}, 0, corruptf("page value: unknown kind tag %d", k)
	}
}

// PageCol is one decoded page column. Exactly one of three states holds:
// Skipped (the scan did not need the column; no bytes were decoded), typed
// (Vec holds the dense form), or Fallback (Vals holds row-form values —
// mixed-kind columns and bools, which have no dense vector consumers).
type PageCol struct {
	Vec      ColVec
	Vals     []Value
	Fallback bool
	Skipped  bool
}

// PageData is one decoded page: per-column decoded state aligned with the
// page's rows. Buffers are reused across Decode calls on the same PageData.
type PageData struct {
	NRows int
	Cols  []PageCol
}

// Value returns row r of column c (NULL for skipped columns).
func (pd *PageData) Value(c, r int) Value {
	col := &pd.Cols[c]
	if col.Skipped {
		return Value{}
	}
	if col.Fallback {
		return col.Vals[r]
	}
	return col.Vec.ValueAt(r)
}

// Tuple materializes row r as a freshly allocated full-width tuple.
func (pd *PageData) Tuple(r int) Tuple {
	t := make(Tuple, len(pd.Cols))
	for c := range pd.Cols {
		t[c] = pd.Value(c, r)
	}
	return t
}

// ValueAt reconstructs row r of a decoded typed vector as a Value.
func (v *ColVec) ValueAt(r int) Value {
	if v.Null != nil && v.Null[r] {
		return Value{}
	}
	switch v.Kind {
	case KindInt:
		return Value{K: KindInt, num: uint64(v.Ints[r])}
	case KindFloat:
		return Value{K: KindFloat, num: math.Float64bits(v.Floats[r])}
	case KindString:
		return Value{K: KindString, S: v.Strs[r]}
	default:
		return Value{}
	}
}

// DecodePage decodes a page payload into pd. need[i] == false skips column i
// entirely — its bytes are jumped over, nothing is allocated or decoded (the
// storage face of projection pushdown); a nil need decodes every column. The
// schema must be the one the page was encoded with; any disagreement, bound
// violation, or truncation is classified faults.ErrCorrupt.
func (pd *PageData) DecodePage(payload []byte, schema *Schema, need []bool) error {
	nrows, off := binary.Uvarint(payload)
	if off <= 0 || nrows > MaxPageRows {
		return corruptf("page: bad row count")
	}
	ncols, m := binary.Uvarint(payload[off:])
	if m <= 0 || int(ncols) != schema.Len() {
		return corruptf("page: column count %d disagrees with schema width %d", ncols, schema.Len())
	}
	off += m
	pd.NRows = int(nrows)
	if cap(pd.Cols) < int(ncols) {
		pd.Cols = make([]PageCol, ncols)
	}
	pd.Cols = pd.Cols[:ncols]
	for c := range pd.Cols {
		encLen, m := binary.Uvarint(payload[off:])
		if m <= 0 || encLen > uint64(len(payload)-off-m) {
			return corruptf("page: column %d length %d exceeds payload", c, encLen)
		}
		off += m
		enc := payload[off : off+int(encLen)]
		off += int(encLen)
		col := &pd.Cols[c]
		if need != nil && !need[c] {
			col.Skipped, col.Fallback = true, false
			continue
		}
		if err := col.decode(enc, schema.Fields[c].Kind, int(nrows)); err != nil {
			return err
		}
	}
	if off != len(payload) {
		return corruptf("page: %d trailing bytes", len(payload)-off)
	}
	return nil
}

// decode fills one column from its encoding.
func (col *PageCol) decode(enc []byte, want Kind, nrows int) error {
	col.Skipped = false
	if len(enc) == 0 {
		return corruptf("page column: empty encoding")
	}
	tag := enc[0]
	enc = enc[1:]
	if tag == pageColFallback {
		col.Fallback = true
		if cap(col.Vals) < nrows {
			col.Vals = make([]Value, nrows)
		}
		col.Vals = col.Vals[:nrows]
		off := 0
		//dynopt:hotpath
		for r := 0; r < nrows; r++ {
			v, n, err := DecodeValue(enc[off:])
			if err != nil {
				return err
			}
			col.Vals[r] = v
			off += n
		}
		if off != len(enc) {
			return corruptf("page column: %d trailing fallback bytes", len(enc)-off)
		}
		return nil
	}
	if tag != pageColTyped || len(enc) < 2 {
		return corruptf("page column: bad encoding tag %d", tag)
	}
	kind := Kind(enc[0])
	if kind != want {
		return corruptf("page column: stored kind %v disagrees with schema kind %v", kind, want)
	}
	nullFlag := enc[1]
	enc = enc[2:]
	var bitmap []byte
	if nullFlag == 1 {
		bn := (nrows + 7) / 8
		if len(enc) < bn {
			return corruptf("page column: truncated null bitmap")
		}
		bitmap, enc = enc[:bn], enc[bn:]
	} else if nullFlag != 0 {
		return corruptf("page column: bad null flag %d", nullFlag)
	}
	if kind == KindBool {
		// Bools have no dense vector consumers (Gather treats them as Mixed);
		// decode straight to row-form values.
		col.Fallback = true
		if len(enc) != nrows {
			return corruptf("page column: bool payload of %d bytes for %d rows", len(enc), nrows)
		}
		if cap(col.Vals) < nrows {
			col.Vals = make([]Value, nrows)
		}
		col.Vals = col.Vals[:nrows]
		//dynopt:hotpath
		for r := 0; r < nrows; r++ {
			if bitmap != nil && bitmap[r>>3]&(1<<(r&7)) != 0 {
				col.Vals[r] = Value{}
			} else {
				col.Vals[r] = Value{K: KindBool, B: enc[r] != 0}
			}
		}
		return nil
	}
	col.Fallback = false
	v := &col.Vec
	v.Kind = kind
	v.Mixed = false
	if cap(v.Null) < nrows {
		v.Null = make([]bool, nrows)
	}
	v.Null = v.Null[:nrows]
	nulls := v.Null
	if bitmap == nil {
		//dynopt:hotpath
		for r := range nulls {
			nulls[r] = false
		}
	} else {
		//dynopt:hotpath
		for r := range nulls {
			nulls[r] = bitmap[r>>3]&(1<<(r&7)) != 0
		}
	}
	switch kind {
	case KindInt:
		if len(enc) != nrows*8 {
			return corruptf("page column: int payload of %d bytes for %d rows", len(enc), nrows)
		}
		if cap(v.Ints) < nrows {
			v.Ints = make([]int64, nrows)
		}
		v.Ints = v.Ints[:nrows]
		ints := v.Ints
		//dynopt:hotpath
		for r := 0; r < nrows; r++ {
			ints[r] = int64(binary.LittleEndian.Uint64(enc[r*8:]))
		}
	case KindFloat:
		if len(enc) != nrows*8 {
			return corruptf("page column: float payload of %d bytes for %d rows", len(enc), nrows)
		}
		if cap(v.Floats) < nrows {
			v.Floats = make([]float64, nrows)
		}
		v.Floats = v.Floats[:nrows]
		floats := v.Floats
		//dynopt:hotpath
		for r := 0; r < nrows; r++ {
			floats[r] = math.Float64frombits(binary.LittleEndian.Uint64(enc[r*8:]))
		}
	case KindString:
		if cap(v.Strs) < nrows {
			v.Strs = make([]string, nrows)
		}
		v.Strs = v.Strs[:nrows]
		strs := v.Strs
		off := 0
		//dynopt:hotpath
		for r := 0; r < nrows; r++ {
			sl, m := binary.Uvarint(enc[off:])
			if m <= 0 || sl > MaxRecordBytes {
				//dynopt:alloc-ok corruption error path, never taken on intact pages
				return corruptf("page column: string length %d out of bounds", sl)
			}
			if uint64(len(enc)-off-m) < sl {
				return corruptf("page column: truncated string payload")
			}
			off += m
			strs[r] = string(enc[off : off+int(sl)]) //dynopt:alloc-ok string payloads must not alias the page buffer, which is recycled by the cache
			off += int(sl)
		}
		if off != len(enc) {
			return corruptf("page column: %d trailing string bytes", len(enc)-off)
		}
	default:
		return corruptf("page column: kind %v has no typed decoder", kind)
	}
	return nil
}
