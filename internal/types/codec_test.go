package types

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// codecCases covers every kind, including the tricky payloads: negative and
// extreme ints, NaN/Inf/negative-zero floats, empty and multi-byte strings.
func codecCases() []Tuple {
	return []Tuple{
		{},
		{Null()},
		{Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(math.Copysign(0, -1)), Float(math.NaN()), Float(math.Inf(1)), Float(3.25)},
		{Str(""), Str("a"), Str("héllo, wörld"), Str(string(make([]byte, 1000)))},
		{Bool(true), Bool(false)},
		{Null(), Int(42), Float(-7.5), Str("mixed"), Bool(true), Null()},
	}
}

func tuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K {
			return false
		}
		// Compare raw payloads (NaN != NaN under Compare semantics).
		if a[i].num != b[i].num || a[i].S != b[i].S || a[i].B != b[i].B {
			return false
		}
	}
	return true
}

func TestEncodeDecodeTupleRoundTrip(t *testing.T) {
	for _, tu := range codecCases() {
		enc := EncodeTuple(nil, tu)
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", tu, err)
		}
		if n != len(enc) {
			t.Errorf("decode %s consumed %d of %d bytes", tu, n, len(enc))
		}
		if !tuplesEqual(tu, got) {
			t.Errorf("round trip changed tuple: %s -> %s", tu, got)
		}
	}
}

func TestDecodeTupleTruncated(t *testing.T) {
	full := EncodeTuple(nil, Tuple{Int(7), Str("hello"), Bool(true)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeTuple(full[:cut]); err == nil {
			t.Errorf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

func TestRunWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	var want []Tuple
	for i := 0; i < 500; i++ {
		tu := Tuple{Int(int64(i)), Str("row"), Float(float64(i) / 3), Bool(i%2 == 0), Null()}
		want = append(want, tu)
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 500 {
		t.Errorf("rows = %d", w.Rows())
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Errorf("writer counted %d bytes, stream has %d", w.Bytes(), buf.Len())
	}
	r := NewRunReader(&buf)
	for i, tu := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !tuplesEqual(tu, got) {
			t.Fatalf("row %d: got %s want %s", i, got, tu)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last row: err = %v, want io.EOF", err)
	}
}

// TestRunReaderLargeRecord exercises the scratch path for records bigger
// than the reader's internal buffer.
func TestRunReaderLargeRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	big := Tuple{Str(string(bytes.Repeat([]byte("x"), 2*runWriterBufSize)))}
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Tuple{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewRunReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(big, got) {
		t.Error("large record did not round trip")
	}
	if got, err := r.Next(); err != nil || !tuplesEqual(got, Tuple{Int(1)}) {
		t.Errorf("record after large one: %s, %v", got, err)
	}
}

func TestRunReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	if err := w.Append(Tuple{Int(1), Str("abcdef")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		r := NewRunReader(bytes.NewReader(data[:cut]))
		if _, err := r.Next(); err == nil {
			t.Errorf("truncation at %d of %d read without error", cut, len(data))
		}
	}
}

// FuzzTupleCodecRoundTrip drives EncodeTuple/DecodeTuple over arbitrary
// tuples spanning every Value kind, checking the round trip is exact and the
// consumed byte count matches the encoding length.
func FuzzTupleCodecRoundTrip(f *testing.F) {
	f.Add(int64(42), 3.14, "seed", true, uint8(7))
	f.Add(int64(math.MinInt64), math.Inf(-1), "", false, uint8(0))
	f.Add(int64(0), math.NaN(), "\x00\xff\xfe", true, uint8(31))
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string, b bool, shape uint8) {
		// shape's bits select which of five values appear, in order.
		all := Tuple{Int(i), Float(fl), Str(s), Bool(b), Null()}
		var tu Tuple
		for k, v := range all {
			if shape&(1<<k) != 0 {
				tu = append(tu, v)
			}
		}
		enc := EncodeTuple(nil, tu)
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if !tuplesEqual(tu, got) {
			t.Fatalf("round trip changed tuple: %s -> %s", tu, got)
		}
	})
}

// FuzzDecodeTupleArbitrary feeds arbitrary bytes to the decoder: it must
// error or succeed, never panic or over-read.
func FuzzDecodeTupleArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTuple(nil, Tuple{Int(1), Str("x"), Bool(true), Null(), Float(2)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tu, n, err := DecodeTuple(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			reenc := EncodeTuple(nil, tu)
			back, _, err := DecodeTuple(reenc)
			if err != nil || !tuplesEqual(tu, back) {
				t.Fatalf("re-encode of decoded tuple did not round trip: %v", err)
			}
		}
	})
}
