package types

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"dynopt/internal/faults"
)

// codecCases covers every kind, including the tricky payloads: negative and
// extreme ints, NaN/Inf/negative-zero floats, empty and multi-byte strings.
func codecCases() []Tuple {
	return []Tuple{
		{},
		{Null()},
		{Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(math.Copysign(0, -1)), Float(math.NaN()), Float(math.Inf(1)), Float(3.25)},
		{Str(""), Str("a"), Str("héllo, wörld"), Str(string(make([]byte, 1000)))},
		{Bool(true), Bool(false)},
		{Null(), Int(42), Float(-7.5), Str("mixed"), Bool(true), Null()},
	}
}

func tuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K {
			return false
		}
		// Compare raw payloads (NaN != NaN under Compare semantics).
		if a[i].num != b[i].num || a[i].S != b[i].S || a[i].B != b[i].B {
			return false
		}
	}
	return true
}

func TestEncodeDecodeTupleRoundTrip(t *testing.T) {
	for _, tu := range codecCases() {
		enc := EncodeTuple(nil, tu)
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", tu, err)
		}
		if n != len(enc) {
			t.Errorf("decode %s consumed %d of %d bytes", tu, n, len(enc))
		}
		if !tuplesEqual(tu, got) {
			t.Errorf("round trip changed tuple: %s -> %s", tu, got)
		}
	}
}

func TestDecodeTupleTruncated(t *testing.T) {
	full := EncodeTuple(nil, Tuple{Int(7), Str("hello"), Bool(true)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeTuple(full[:cut]); err == nil {
			t.Errorf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

func TestRunWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	var want []Tuple
	for i := 0; i < 500; i++ {
		tu := Tuple{Int(int64(i)), Str("row"), Float(float64(i) / 3), Bool(i%2 == 0), Null()}
		want = append(want, tu)
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 500 {
		t.Errorf("rows = %d", w.Rows())
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Errorf("writer counted %d bytes, stream has %d", w.Bytes(), buf.Len())
	}
	r := NewRunReader(&buf)
	for i, tu := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !tuplesEqual(tu, got) {
			t.Fatalf("row %d: got %s want %s", i, got, tu)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last row: err = %v, want io.EOF", err)
	}
	if r.Rows() != 500 {
		t.Errorf("reader rows = %d", r.Rows())
	}
}

// TestRunReaderLargeRecord exercises the scratch path for records bigger
// than the reader's internal buffer.
func TestRunReaderLargeRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	big := Tuple{Str(string(bytes.Repeat([]byte("x"), 2*runWriterBufSize)))}
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Tuple{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r := NewRunReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(big, got) {
		t.Error("large record did not round trip")
	}
	if got, err := r.Next(); err != nil || !tuplesEqual(got, Tuple{Int(1)}) {
		t.Errorf("record after large one: %s, %v", got, err)
	}
}

// goldenRun builds a small sealed multi-block run (explicit mid-stream
// flushes force several blocks) and returns its bytes plus the rows in it.
func goldenRun(t *testing.T) ([]byte, []Tuple) {
	t.Helper()
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	var want []Tuple
	for i := 0; i < 60; i++ {
		tu := Tuple{Int(int64(i)), Str("golden-row-payload"), Float(float64(i) * 0.5), Bool(i%3 == 0), Null()}
		want = append(want, tu)
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// readAll drains a run, returning the rows or the terminal error.
func readAll(data []byte) ([]Tuple, error) {
	r := NewRunReader(bytes.NewReader(data))
	var rows []Tuple
	for {
		tu, err := r.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, tu)
	}
}

// TestRunTruncationSweep truncates a sealed golden run at every byte offset
// — including clean record and block boundaries, which the pre-footer
// format read back as a silent short run — and asserts each cut is detected
// as corruption.
func TestRunTruncationSweep(t *testing.T) {
	data, _ := goldenRun(t)
	for cut := 0; cut < len(data); cut++ {
		_, err := readAll(data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d read back clean", cut, len(data))
		}
		if !errors.Is(err, faults.ErrCorrupt) {
			t.Fatalf("truncation at %d: err %v not classified ErrCorrupt", cut, err)
		}
	}
}

// TestRunBitFlipSweep flips every bit of every byte of a sealed golden run
// and asserts each flip is detected as corruption — no flip may read back
// clean, and none may read back wrong rows or panic.
func TestRunBitFlipSweep(t *testing.T) {
	data, _ := goldenRun(t)
	mut := make([]byte, len(data))
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, data)
			mut[off] ^= 1 << bit
			_, err := readAll(mut)
			if err == nil {
				t.Fatalf("bit %d of byte %d flipped and the run read back clean", bit, off)
			}
			if !errors.Is(err, faults.ErrCorrupt) {
				t.Fatalf("bit %d of byte %d: err %v not classified ErrCorrupt", bit, off, err)
			}
		}
	}
}

// TestRunVerify checks the decode-free integrity pass agrees with a full
// read on both intact and damaged runs.
func TestRunVerify(t *testing.T) {
	data, want := goldenRun(t)
	r := NewRunReader(bytes.NewReader(data))
	if err := r.Verify(); err != nil {
		t.Fatalf("verify of an intact run: %v", err)
	}
	if r.Rows() != int64(len(want)) {
		t.Errorf("verify counted %d rows, want %d", r.Rows(), len(want))
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if err := NewRunReader(bytes.NewReader(bad)).Verify(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("verify of a damaged run: %v, want ErrCorrupt", err)
	}
	if err := NewRunReader(bytes.NewReader(data[:len(data)-1])).Verify(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("verify of a truncated run: %v, want ErrCorrupt", err)
	}
	if err := NewRunReader(bytes.NewReader(append(append([]byte(nil), data...), 0))).Verify(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("verify of a run with trailing bytes: %v, want ErrCorrupt", err)
	}
}

// TestRunUnfinishedReadsCorrupt pins the self-sealing contract: a run that
// was flushed but never sealed with Finish reads back as corrupt — an
// unsealed file is indistinguishable from one that lost its tail.
func TestRunUnfinishedReadsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	if err := w.Append(Tuple{Int(1), Str("abcdef")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := readAll(buf.Bytes()); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("unsealed run read back with err %v, want ErrCorrupt", err)
	}
}

// TestRunFinishIdempotent: a second Finish writes nothing.
func TestRunFinishIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	if err := w.Append(Tuple{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Errorf("second Finish grew the stream by %d bytes", buf.Len()-n)
	}
	if err := w.Append(Tuple{Int(2)}); err == nil {
		t.Error("append after Finish succeeded")
	}
}

// shortWriter accepts at most cap bytes, then reports a short write the way
// a full device does.
type shortWriter struct {
	n, cap int
}

func (w *shortWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.cap {
		k := w.cap - w.n
		w.n = w.cap
		return k, io.ErrShortWrite
	}
	w.n += len(p)
	return len(p), nil
}

// TestRunWriterShortWrite: a device that cuts a block short surfaces
// io.ErrShortWrite (which storage classifies as disk-full), and the bytes
// counter tracks what actually landed.
func TestRunWriterShortWrite(t *testing.T) {
	w := NewRunWriter(&shortWriter{cap: 64})
	for i := 0; i < 100; i++ {
		if err := w.Append(Tuple{Int(int64(i)), Str("wide enough to overflow the device")}); err != nil {
			if !errors.Is(err, io.ErrShortWrite) {
				t.Fatalf("append error %v, want io.ErrShortWrite", err)
			}
			if w.Bytes() != 64 {
				t.Errorf("writer counted %d bytes, device took 64", w.Bytes())
			}
			return
		}
	}
	if err := w.Finish(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("finish error %v, want io.ErrShortWrite", err)
	}
}

// TestRunReaderBoundsDecodeBomb hand-crafts a block whose record claims a
// length beyond MaxRecordBytes: the reader must classify it as corruption
// without allocating the claimed amount.
func TestRunReaderBoundsDecodeBomb(t *testing.T) {
	payload := binary.AppendUvarint(nil, uint64(MaxRecordBytes)+1)
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	buf.Write(hdr[:])
	buf.Write(payload)
	r := NewRunReader(&buf)
	if _, err := r.Next(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("oversized record length: err %v, want ErrCorrupt", err)
	}
	// Same bound on a block header: a corrupt block length cannot OOM.
	binary.LittleEndian.PutUint32(hdr[:4], uint32(maxBlockBytes)+1)
	r = NewRunReader(bytes.NewReader(hdr[:]))
	if _, err := r.Next(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("oversized block length: err %v, want ErrCorrupt", err)
	}
}

// FuzzTupleCodecRoundTrip drives EncodeTuple/DecodeTuple over arbitrary
// tuples spanning every Value kind, checking the round trip is exact and the
// consumed byte count matches the encoding length.
func FuzzTupleCodecRoundTrip(f *testing.F) {
	f.Add(int64(42), 3.14, "seed", true, uint8(7))
	f.Add(int64(math.MinInt64), math.Inf(-1), "", false, uint8(0))
	f.Add(int64(0), math.NaN(), "\x00\xff\xfe", true, uint8(31))
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string, b bool, shape uint8) {
		// shape's bits select which of five values appear, in order.
		all := Tuple{Int(i), Float(fl), Str(s), Bool(b), Null()}
		var tu Tuple
		for k, v := range all {
			if shape&(1<<k) != 0 {
				tu = append(tu, v)
			}
		}
		enc := EncodeTuple(nil, tu)
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if !tuplesEqual(tu, got) {
			t.Fatalf("round trip changed tuple: %s -> %s", tu, got)
		}
	})
}

// FuzzDecodeTupleArbitrary feeds arbitrary bytes to the decoder: it must
// error or succeed, never panic or over-read.
func FuzzDecodeTupleArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTuple(nil, Tuple{Int(1), Str("x"), Bool(true), Null(), Float(2)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tu, n, err := DecodeTuple(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			reenc := EncodeTuple(nil, tu)
			back, _, err := DecodeTuple(reenc)
			if err != nil || !tuplesEqual(tu, back) {
				t.Fatalf("re-encode of decoded tuple did not round trip: %v", err)
			}
		}
	})
}
