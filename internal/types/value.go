// Package types defines the value, tuple, and schema primitives shared by
// every layer of the engine: storage, expression evaluation, execution
// operators, and statistics collection.
//
// Values are a compact tagged union rather than interface{} so that tuples
// stay cache-friendly and hashing/comparison avoid allocation on the hot
// join paths.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
type Value struct {
	S string
	I int64
	F float64
	K Kind
	B bool
}

// Null returns the NULL value.
func Null() Value { return Value{K: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsTrue reports whether v is the boolean true. Any non-bool value is not
// true; predicates therefore treat NULL and type mismatches as false, the
// usual SQL three-valued collapse at the WHERE clause.
func (v Value) IsTrue() bool { return v.K == KindBool && v.B }

// AsFloat coerces numeric values to float64 for arithmetic and histogram
// insertion. Non-numeric values report ok=false.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64. Non-numeric values report ok=false.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float; otherwise values of different kinds
// compare by kind tag (stable but arbitrary), and same-kind values compare
// naturally. Returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(v.K) && isNumeric(o.K) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Hash returns a 64-bit hash of the value, suitable for hash partitioning
// and hash-join tables. Numerically equal int/float values hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.K {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt:
		buf[0] = 1
		putUint64(buf[1:], uint64(v.I))
		h.Write(buf[:9])
	case KindFloat:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			// Hash integral floats as ints so 3 and 3.0 join.
			buf[0] = 1
			putUint64(buf[1:], uint64(int64(v.F)))
		} else {
			buf[0] = 2
			putUint64(buf[1:], math.Float64bits(v.F))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindBool:
		buf[0] = 4
		if v.B {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// EncodedSize returns the number of bytes this value occupies in the
// simulated on-disk / on-wire representation. The cluster cost accountant
// uses it to meter shuffles, broadcasts, and materialization.
func (v Value) EncodedSize() int {
	switch v.K {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 9
	case KindString:
		return 1 + len(v.S)
	case KindBool:
		return 2
	default:
		return 1
	}
}

// String renders the value in SQL-literal-ish form for plan and result
// printing.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + v.S + "'"
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}
