// Package types defines the value, tuple, and schema primitives shared by
// every layer of the engine: storage, expression evaluation, execution
// operators, and statistics collection.
//
// Values are a compact tagged union rather than interface{} so that tuples
// stay cache-friendly and hashing/comparison avoid allocation on the hot
// join paths.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
//
// The int and float payloads share one uint64 slot (read them through the I
// and F methods): numeric values never carry both, and the overlap keeps
// Value at 32 bytes instead of 40 — a fifth off every tuple copy, arena
// chunk, and GC scan on the join hot paths. S, K, and B stay exported
// fields on purpose: they are stored directly (nothing to decode), whereas
// I and F must be accessor methods because they decode the shared slot.
type Value struct {
	S   string
	num uint64 // KindInt: int64 bits; KindFloat: math.Float64bits
	K   Kind
	B   bool
}

// Null returns the NULL value.
func Null() Value { return Value{K: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, num: math.Float64bits(f)} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// I returns the integer payload, or 0 when the value is not an int.
func (v Value) I() int64 {
	if v.K == KindInt {
		return int64(v.num)
	}
	return 0
}

// F returns the float payload, or 0 when the value is not a float.
func (v Value) F() float64 {
	if v.K == KindFloat {
		return math.Float64frombits(v.num)
	}
	return 0
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsTrue reports whether v is the boolean true. Any non-bool value is not
// true; predicates therefore treat NULL and type mismatches as false, the
// usual SQL three-valued collapse at the WHERE clause.
func (v Value) IsTrue() bool { return v.K == KindBool && v.B }

// AsFloat coerces numeric values to float64 for arithmetic and histogram
// insertion. Non-numeric values report ok=false.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KindInt:
		return float64(int64(v.num)), true
	case KindFloat:
		return math.Float64frombits(v.num), true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64. Non-numeric values report ok=false.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.K {
	case KindInt:
		return int64(v.num), true
	case KindFloat:
		return int64(math.Float64frombits(v.num)), true
	default:
		return 0, false
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float; otherwise values of different kinds
// compare by kind tag (stable but arbitrary), and same-kind values compare
// naturally. Returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.K == KindInt && o.K == KindInt {
		// Fast path for the dominant case; also exact for int64s beyond
		// float64's 2^53 integer range, unlike the float route below.
		a, b := int64(v.num), int64(o.num)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(v.K) && isNumeric(o.K) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics. The
// int/int case — nearly every join key — short-circuits the Compare ladder.
func (v Value) Equal(o Value) bool {
	if v.K == KindInt && o.K == KindInt {
		return v.num == o.num
	}
	return v.Compare(o) == 0
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// FNV-1a parameters. The hash below is the seeded multiply-xor recurrence
// h = (h ^ byte) * prime, computed inline over the tagged union instead of
// through a heap-allocated hash.Hash64.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash returns a 64-bit hash of the value, suitable for hash partitioning
// and hash-join tables. Numerically equal int/float values hash identically.
//
// The implementation is an inline, allocation-free FNV-1a over the value's
// tagged-union encoding (kind tag byte, then the payload bytes little-
// endian). It is bit-identical to hashing the same encoding through
// hash/fnv, which the previous implementation did: keeping the values stable
// keeps hash partitioning — and therefore every placement-dependent metered
// counter (shuffle rows/bytes) — unchanged across the rewrite.
func (v Value) Hash() uint64 {
	h := fnvOffset64
	switch v.K {
	case KindNull:
		h = (h ^ 0) * fnvPrime64
	case KindInt:
		h = (h ^ 1) * fnvPrime64
		h = hashUint64(h, v.num)
	case KindFloat:
		f := math.Float64frombits(v.num)
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			// Hash integral floats as ints so 3 and 3.0 join.
			h = (h ^ 1) * fnvPrime64
			h = hashUint64(h, uint64(int64(f)))
		} else {
			h = (h ^ 2) * fnvPrime64
			h = hashUint64(h, v.num)
		}
	case KindString:
		h = (h ^ 3) * fnvPrime64
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime64
		}
	case KindBool:
		h = (h ^ 4) * fnvPrime64
		var b uint64
		if v.B {
			b = 1
		}
		h = (h ^ b) * fnvPrime64
	}
	return h
}

// hashUint64 folds the eight little-endian bytes of v into the running
// FNV-1a state h. Unrolled: this chain is on every hash of every numeric
// value, and the multiply chain is serial — the loop bookkeeping was pure
// overhead on top of it.
func hashUint64(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 8) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 16) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 24) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 32) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 40) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 48) & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	return h
}

// kindEncodedSize maps fixed-width kinds to their encoded size (tag byte +
// payload); strings are the one variable-width kind.
var kindEncodedSize = [...]int{KindNull: 1, KindInt: 9, KindFloat: 9, KindString: 0, KindBool: 2}

// EncodedSize returns the number of bytes this value occupies in the
// simulated on-disk / on-wire representation. The cluster cost accountant
// uses it to meter shuffles, broadcasts, and materialization.
func (v Value) EncodedSize() int {
	if v.K == KindString {
		return 1 + len(v.S)
	}
	if int(v.K) < len(kindEncodedSize) {
		return kindEncodedSize[v.K]
	}
	return 1
}

// String renders the value in SQL-literal-ish form for plan and result
// printing.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return "'" + v.S + "'"
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}
