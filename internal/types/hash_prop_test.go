package types

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
)

// randValue draws a value covering every kind, with integral floats and
// collision-prone small payloads overrepresented.
func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63n(1000) - 500)
	case 2:
		return Float(float64(r.Int63n(1000) - 500)) // integral float
	case 3:
		return Float(r.NormFloat64() * 100)
	case 4:
		buf := make([]byte, r.Intn(12))
		for i := range buf {
			buf[i] = byte('a' + r.Intn(26))
		}
		return Str(string(buf))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// referenceHash is the previous implementation: hash/fnv over the value's
// tagged-union encoding. The inline hash must stay bit-identical to it —
// hash values decide data placement, so drift silently changes the metered
// shuffle counters of every benchmark.
func referenceHash(v Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	put := func(b []byte, u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
	}
	switch v.K {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt:
		buf[0] = 1
		put(buf[1:], uint64(v.I()))
		h.Write(buf[:9])
	case KindFloat:
		if v.F() == math.Trunc(v.F()) && v.F() >= math.MinInt64 && v.F() <= math.MaxInt64 {
			buf[0] = 1
			put(buf[1:], uint64(int64(v.F())))
		} else {
			buf[0] = 2
			put(buf[1:], math.Float64bits(v.F()))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindBool:
		buf[0] = 4
		if v.B {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

func TestHashMatchesReferenceFNV(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := randValue(r)
		if got, want := v.Hash(), referenceHash(v); got != want {
			t.Fatalf("Hash(%v) = %#x, reference FNV = %#x", v, got, want)
		}
	}
	// Boundary payloads the random draw is unlikely to hit.
	for _, v := range []Value{
		Int(math.MaxInt64), Int(math.MinInt64), Float(math.Inf(1)),
		Float(math.Inf(-1)), Float(math.NaN()), Float(-0.0), Str(""),
	} {
		if got, want := v.Hash(), referenceHash(v); got != want {
			t.Fatalf("Hash(%v) = %#x, reference FNV = %#x", v, got, want)
		}
	}
}

// Property: the int/float hash-equivalence contract (3 == 3.0 must land in
// the same partition and hash-join bucket) holds for every integral float.
func TestHashIntFloatEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		k := r.Int63n(1 << 40)
		if r.Intn(2) == 0 {
			k = -k
		}
		if Int(k).Hash() != Float(float64(k)).Hash() {
			t.Fatalf("Int(%d) and Float(%d) hash differently", k, k)
		}
	}
}

// Kind discrimination: payloads that collide byte-wise across kinds must
// still hash apart, because the kind tag is part of the encoding.
func TestHashKindDiscrimination(t *testing.T) {
	vs := []Value{
		Null(), Bool(false), Bool(true), Int(0), Int(1),
		Str(""), Str("0"), Str("\x00"), Float(0.5),
	}
	seen := map[uint64]Value{}
	for _, v := range vs {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("%v and %v share hash %#x", prev, v, h)
		}
		seen[h] = v
	}
}

func TestHashKeysIntoMatchesHashKeys(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rows := make([]Tuple, 200)
	for i := range rows {
		rows[i] = Tuple{randValue(r), randValue(r), randValue(r)}
	}
	idxs := []int{2, 0}
	var dst []uint64
	dst = HashKeysInto(rows, idxs, dst)
	if len(dst) != len(rows) {
		t.Fatalf("len = %d, want %d", len(dst), len(rows))
	}
	for i, tu := range rows {
		if dst[i] != tu.HashKeys(idxs) {
			t.Fatalf("row %d: bulk hash %#x != HashKeys %#x", i, dst[i], tu.HashKeys(idxs))
		}
	}
	// Reuse path: a big-enough dst must be reused, not reallocated.
	prev := &dst[0]
	dst = HashKeysInto(rows[:50], idxs, dst)
	if &dst[0] != prev {
		t.Error("HashKeysInto reallocated a sufficient dst")
	}
}

func TestArenaConcatMatchesTupleConcat(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var arena Arena
	type pair struct{ got, want Tuple }
	var pairs []pair
	for i := 0; i < 3000; i++ {
		l := Tuple{randValue(r), randValue(r)}
		rr := Tuple{randValue(r), randValue(r), randValue(r)}
		pairs = append(pairs, pair{arena.Concat(l, rr), l.Concat(rr)})
	}
	// Verify after all concats: later arena writes must not clobber earlier
	// tuples, across chunk boundaries included.
	for i, p := range pairs {
		if len(p.got) != len(p.want) {
			t.Fatalf("pair %d: len %d != %d", i, len(p.got), len(p.want))
		}
		for k := range p.got {
			if !p.got[k].Equal(p.want[k]) || p.got[k].K != p.want[k].K {
				t.Fatalf("pair %d col %d: %v != %v", i, k, p.got[k], p.want[k])
			}
		}
		if cap(p.got) != len(p.got) {
			t.Fatalf("pair %d: arena tuple not capacity-clamped", i)
		}
	}
}
