package types

import "math"

// This file is the column-major face of the tuple spine: typed column
// vectors gathered out of row windows, a per-window gather cache, and the
// columnar form of the composite-key prehash. Vectors exist so the streaming
// pipeline's inner loops — predicate kernels and join-key hashing — run over
// dense typed slices instead of 32-byte tagged unions, while the row form
// stays authoritative: a ColVec is always derived from rows, never the other
// way around, so every row-at-a-time operator keeps working unmodified.

// ColVec is one column of a row window in columnar form: exactly one typed
// payload slice (selected by Kind) plus a validity slice, both aligned with
// the window's rows. Mixed marks a gather that found a non-null value of a
// kind other than the schema's — the payload slices are then invalid and
// consumers must fall back to the row form.
type ColVec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	// Null[r] reports row r's value as NULL; the payload slot is zeroed.
	Null  []bool
	Mixed bool
}

// Gather fills v from column col of rows, decoding into the typed payload
// for want (the schema kind). Buffers are reused across calls when capacity
// suffices. Kinds other than int/float/string have no vectorized consumers
// and gather as Mixed immediately.
func (v *ColVec) Gather(rows []Tuple, col int, want Kind) {
	n := len(rows)
	v.Kind = want
	v.Mixed = false
	if cap(v.Null) < n {
		v.Null = make([]bool, n)
	}
	v.Null = v.Null[:n]
	// The loops read each value through a pointer (a Value is a multi-word
	// tagged union; copying it per row costs more than the decode) and write
	// through slice locals: stores through v.Ints[r]/v.Null[r] would force
	// the compiler to reload the slice headers from *v every iteration, which
	// measures ~3x slower than keeping them in registers.
	nulls := v.Null
	switch want {
	case KindInt:
		if cap(v.Ints) < n {
			v.Ints = make([]int64, n)
		}
		v.Ints = v.Ints[:n]
		ints := v.Ints
		//dynopt:hotpath
		for r := range rows {
			val := &rows[r][col]
			switch val.K {
			case KindInt:
				nulls[r], ints[r] = false, int64(val.num)
			case KindNull:
				nulls[r], ints[r] = true, 0
			default:
				v.Mixed = true
				return
			}
		}
	case KindFloat:
		if cap(v.Floats) < n {
			v.Floats = make([]float64, n)
		}
		v.Floats = v.Floats[:n]
		floats := v.Floats
		//dynopt:hotpath
		for r := range rows {
			val := &rows[r][col]
			switch val.K {
			case KindFloat:
				nulls[r], floats[r] = false, math.Float64frombits(val.num)
			case KindNull:
				nulls[r], floats[r] = true, 0
			default:
				v.Mixed = true
				return
			}
		}
	case KindString:
		if cap(v.Strs) < n {
			v.Strs = make([]string, n)
		}
		v.Strs = v.Strs[:n]
		strs := v.Strs
		//dynopt:hotpath
		for r := range rows {
			val := &rows[r][col]
			switch val.K {
			case KindString:
				nulls[r], strs[r] = false, val.S
			case KindNull:
				nulls[r], strs[r] = true, ""
			default:
				v.Mixed = true
				return
			}
		}
	default:
		v.Mixed = true
	}
}

// ColSource provides columnar access to the current row window. Col returns
// the vector for schema column offset i, valid until the window advances;
// a Mixed result (or nil source) means the consumer must use the row form.
type ColSource interface {
	Col(i int) *ColVec
}

// ColCache is a lazy per-window gather cache: each column is decoded at most
// once per window, on first request, into buffers reused across windows.
// Producers call SetWindow as they advance; consumers (predicate kernels,
// the columnar prehash) call Col for just the columns they touch, so a
// window whose columns nobody asks for costs nothing.
type ColCache struct {
	schema *Schema
	rows   []Tuple
	vecs   []ColVec
	gen    []uint64 // window generation each column was gathered at
	cur    uint64
}

// NewColCache builds a cache for windows of the given schema.
func NewColCache(schema *Schema) *ColCache {
	return &ColCache{
		schema: schema,
		vecs:   make([]ColVec, schema.Len()),
		gen:    make([]uint64, schema.Len()),
	}
}

// SetWindow advances the cache to a new row window, invalidating every
// cached vector without touching their buffers.
func (c *ColCache) SetWindow(rows []Tuple) {
	c.rows = rows
	c.cur++
}

// Col implements ColSource: the vector for column i of the current window,
// gathered on first request per window.
func (c *ColCache) Col(i int) *ColVec {
	v := &c.vecs[i]
	if c.gen[i] != c.cur {
		v.Gather(c.rows, i, c.schema.Fields[i].Kind)
		c.gen[i] = c.cur
	}
	return v
}

// tagSeed is the FNV-1a state after folding a kind tag byte — the common
// prefix of Value.Hash for each kind. Computed through a function because
// the product wraps uint64, which Go's exact constant arithmetic rejects.
func tagSeed(tag uint64) uint64 {
	h := fnvOffset64
	return (h ^ tag) * fnvPrime64
}

// Per-kind hash states after the tag fold, precomputed once (Value.Hash
// folds them per call; the columnar hash reuses them per column).
var (
	hashNullState  = tagSeed(0)
	hashIntState   = tagSeed(1)
	hashFloatState = tagSeed(2)
	hashStrState   = tagSeed(3)
)

// hashIntPayload folds an int64 payload exactly like Value.Hash's KindInt
// arm (and the integral-float arm, which reuses the int encoding).
func hashIntPayload(v uint64) uint64 {
	return hashUint64(hashIntState, v)
}

// hashFloatPayload hashes a float payload exactly like Value.Hash's
// KindFloat arm: integral values reroute through the int encoding so 3 and
// 3.0 hash identically.
func hashFloatPayload(f float64) uint64 {
	if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
		return hashIntPayload(uint64(int64(f)))
	}
	return hashUint64(hashFloatState, math.Float64bits(f))
}

// The per-kind column folds: each mixes one gathered column into the running
// composite-key states in dst, kind dispatch hoisted out of the row loop.
// dst is indexed by live-row position; at returns the window row for a live
// position (identity when sel is nil).

func foldIntCol(dst []uint64, xs []int64, nulls []bool, sel []int32) {
	if sel == nil {
		//dynopt:hotpath
		for r, h := range dst {
			hv := hashNullState
			if !nulls[r] {
				hv = hashUint64(hashIntState, uint64(xs[r]))
			}
			dst[r] = (h ^ hv) * fnvPrime64
		}
		return
	}
	//dynopt:hotpath
	for k, r := range sel {
		hv := hashNullState
		if !nulls[r] {
			hv = hashUint64(hashIntState, uint64(xs[r]))
		}
		dst[k] = (dst[k] ^ hv) * fnvPrime64
	}
}

func foldFloatCol(dst []uint64, xs []float64, nulls []bool, sel []int32) {
	if sel == nil {
		//dynopt:hotpath
		for r, h := range dst {
			hv := hashNullState
			if !nulls[r] {
				hv = hashFloatPayload(xs[r])
			}
			dst[r] = (h ^ hv) * fnvPrime64
		}
		return
	}
	//dynopt:hotpath
	for k, r := range sel {
		hv := hashNullState
		if !nulls[r] {
			hv = hashFloatPayload(xs[r])
		}
		dst[k] = (dst[k] ^ hv) * fnvPrime64
	}
}

func hashStrPayload(s string) uint64 {
	h := hashStrState
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func foldStrCol(dst []uint64, xs []string, nulls []bool, sel []int32) {
	if sel == nil {
		//dynopt:hotpath
		for r, h := range dst {
			hv := hashNullState
			if !nulls[r] {
				hv = hashStrPayload(xs[r])
			}
			dst[r] = (h ^ hv) * fnvPrime64
		}
		return
	}
	//dynopt:hotpath
	for k, r := range sel {
		hv := hashNullState
		if !nulls[r] {
			hv = hashStrPayload(xs[r])
		}
		dst[k] = (dst[k] ^ hv) * fnvPrime64
	}
}

// HashColsInto is the columnar form of HashKeysInto: it computes the
// composite join-key prehash — bit-identical to Tuple.HashKeys — from
// gathered key column vectors, one column at a time instead of one row at a
// time, with kind dispatch paid once per column rather than once per value.
// sel selects the live rows (nil means all n); the output is aligned with
// the live rows, matching the chunk sidecar contract. dst is reused when its
// capacity suffices. Callers must not pass Mixed vectors — they fall back to
// the row-form hash instead.
func HashColsInto(cols []*ColVec, sel []int32, n int, dst []uint64) []uint64 {
	if sel != nil {
		n = len(sel)
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
	}
	for k := range dst {
		dst[k] = hashKeysOffset
	}
	for _, v := range cols {
		switch v.Kind {
		case KindInt:
			foldIntCol(dst, v.Ints, v.Null, sel)
		case KindFloat:
			foldFloatCol(dst, v.Floats, v.Null, sel)
		default: // KindString; other kinds gather as Mixed and never get here
			foldStrCol(dst, v.Strs, v.Null, sel)
		}
	}
	return dst
}
