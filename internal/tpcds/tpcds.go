// Package tpcds generates the TPC-DS table subset queries 17 and 50 touch:
// two or three fact tables joined to each other on composite non-PK/FK keys
// (the "fact-to-fact" joins whose result sizes static optimizers
// misestimate), date dimensions carrying multi-predicate filters, and the
// small store/item dimensions used to assemble the result.
package tpcds

import (
	"fmt"

	"dynopt/internal/engine"
	"dynopt/internal/storage"
	"dynopt/internal/types"
	"dynopt/internal/workload"
)

// Sizes reports the generated row counts at a scale factor.
type Sizes struct {
	StoreSales, StoreReturns, CatalogSales int
	DateDim, Store, Item, Customer         int
}

// SizesFor returns the table sizes at sf. date_dim is fixed (a calendar);
// facts scale linearly; returns are ~12% of sales, as in TPC-DS.
func SizesFor(sf int) Sizes {
	if sf < 1 {
		sf = 1
	}
	return Sizes{
		StoreSales:   6000 * sf,
		StoreReturns: 720 * sf,
		CatalogSales: 4000 * sf,
		DateDim:      5 * 360, // synthetic calendar 1998..2002, 30-day months
		Store:        6 + 2*sf,
		Item:         200 * sf,
		Customer:     400 * sf,
	}
}

func intF(n string) types.Field { return types.Field{Name: n, Kind: types.KindInt} }
func strF(n string) types.Field { return types.Field{Name: n, Kind: types.KindString} }

// Load generates all tables at sf and registers them (with ingestion-time
// statistics) in ctx's catalog.
func Load(ctx *engine.Context, sf int) (Sizes, error) {
	sz := SizesFor(sf)
	nodes := ctx.Cluster.Nodes()
	rng := workload.NewRNG(0xd5a7e19b)

	reg := func(name string, sch *types.Schema, pk []string, rows []types.Tuple) error {
		ds, st, err := storage.Build(name, sch, pk, rows, nodes)
		if err != nil {
			return fmt.Errorf("tpcds: %s: %w", name, err)
		}
		return ctx.Catalog.Register(ds, st)
	}

	// date_dim: d_date_sk is the day index over 1998..2002 with synthetic
	// 30-day months (d_moy 1..12).
	ddRows := make([]types.Tuple, sz.DateDim)
	for i := range ddRows {
		year := 1998 + i/360
		moy := (i%360)/30 + 1
		dom := i%30 + 1
		ddRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Int(int64(year)),
			types.Int(int64(moy)),
			types.Str(fmt.Sprintf("%04d-%02d-%02d", year, moy, dom)),
		}
	}
	if err := reg("date_dim", types.NewSchema(intF("d_date_sk"), intF("d_year"), intF("d_moy"), strF("d_date")),
		[]string{"d_date_sk"}, ddRows); err != nil {
		return sz, err
	}

	// store
	stRows := make([]types.Tuple, sz.Store)
	for i := range stRows {
		stRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("AAAAAA%04d", i)),
			types.Str(fmt.Sprintf("Store number %d", i)),
		}
	}
	if err := reg("store", types.NewSchema(intF("s_store_sk"), strF("s_store_id"), strF("s_store_name")),
		[]string{"s_store_sk"}, stRows); err != nil {
		return sz, err
	}

	// item
	itRows := make([]types.Tuple, sz.Item)
	for i := range itRows {
		itRows[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("ITEM%08d", i)),
			types.Str(fmt.Sprintf("item %d description with decorative padding text", i)),
		}
	}
	if err := reg("item", types.NewSchema(intF("i_item_sk"), strF("i_item_id"), strF("i_item_desc")),
		[]string{"i_item_sk"}, itRows); err != nil {
		return sz, err
	}

	// store_sales: sold dates uniform over the calendar; customers and
	// items zipf-skewed (repeat shoppers / popular items), which is what
	// makes sampled distinct counts extrapolate badly.
	type saleKey struct {
		cust, item, ticket int
		soldDay            int
	}
	sales := make([]saleKey, sz.StoreSales)
	ssRows := make([]types.Tuple, sz.StoreSales)
	for i := range ssRows {
		k := saleKey{
			cust:    rng.Zipf(sz.Customer),
			item:    rng.Zipf(sz.Item),
			ticket:  i, // ticket number unique per sale
			soldDay: rng.Intn(sz.DateDim),
		}
		sales[i] = k
		ssRows[i] = types.Tuple{
			types.Int(int64(k.soldDay)),
			types.Int(int64(k.item)),
			types.Int(int64(k.cust)),
			types.Int(int64(k.ticket)),
			types.Int(int64(rng.Intn(sz.Store))),
			types.Int(int64(rng.Range(1, 100))),
		}
	}
	if err := reg("store_sales", types.NewSchema(intF("ss_sold_date_sk"), intF("ss_item_sk"), intF("ss_customer_sk"),
		intF("ss_ticket_number"), intF("ss_store_sk"), intF("ss_quantity")),
		nil, ssRows); err != nil {
		return sz, err
	}

	// store_returns reference actual sales (a return exists only for a
	// sale), returned 0..60 days after the sale: the composite
	// (customer, item, ticket) join back to store_sales is the paper's
	// fact-to-fact case.
	srRows := make([]types.Tuple, sz.StoreReturns)
	for i := range srRows {
		s := sales[rng.Intn(len(sales))]
		retDay := s.soldDay + rng.Intn(61)
		if retDay >= sz.DateDim {
			retDay = sz.DateDim - 1
		}
		srRows[i] = types.Tuple{
			types.Int(int64(retDay)),
			types.Int(int64(s.cust)),
			types.Int(int64(s.item)),
			types.Int(int64(s.ticket)),
			types.Int(int64(rng.Range(1, 10))),
		}
	}
	if err := reg("store_returns", types.NewSchema(intF("sr_returned_date_sk"), intF("sr_customer_sk"),
		intF("sr_item_sk"), intF("sr_ticket_number"), intF("sr_return_quantity")),
		nil, srRows); err != nil {
		return sz, err
	}

	// catalog_sales: 40% of rows are cross-channel repurchases — the same
	// customer buying the returned item from the catalog shortly after the
	// return (this is the behaviour TPC-DS Q17 analyzes; without it the
	// sr⋈cs join on (customer, item) would be nearly empty). The remainder
	// draw from the same skewed pools as the store channel.
	csRows := make([]types.Tuple, sz.CatalogSales)
	for i := range csRows {
		var day, cust, item int
		if rng.Intn(100) < 40 && len(srRows) > 0 {
			r := srRows[rng.Intn(len(srRows))]
			day = int(r[0].I()) + rng.Intn(31)
			if day >= sz.DateDim {
				day = sz.DateDim - 1
			}
			cust = int(r[1].I())
			item = int(r[2].I())
		} else {
			day = rng.Intn(sz.DateDim)
			cust = rng.Zipf(sz.Customer)
			item = rng.Zipf(sz.Item)
		}
		csRows[i] = types.Tuple{
			types.Int(int64(day)),
			types.Int(int64(cust)),
			types.Int(int64(item)),
			types.Int(int64(rng.Range(1, 100))),
		}
	}
	if err := reg("catalog_sales", types.NewSchema(intF("cs_sold_date_sk"), intF("cs_bill_customer_sk"),
		intF("cs_item_sk"), intF("cs_quantity")),
		nil, csRows); err != nil {
		return sz, err
	}
	return sz, nil
}

// BuildIndexes adds the secondary indexes the Figure 8 experiments assume:
// the fact tables' date foreign keys.
func BuildIndexes(ctx *engine.Context) error {
	for _, spec := range []struct {
		dataset, field string
	}{
		{"store_sales", "ss_sold_date_sk"},
		{"store_returns", "sr_returned_date_sk"},
		{"catalog_sales", "cs_sold_date_sk"},
	} {
		ds, ok := ctx.Catalog.Get(spec.dataset)
		if !ok {
			return fmt.Errorf("tpcds: %s not loaded", spec.dataset)
		}
		if _, err := storage.BuildIndex(ds, spec.field); err != nil {
			return err
		}
	}
	return nil
}

// Q17 is the paper's TPC-DS query 17 (Figure 9a): three fact tables chained
// on composite keys, three filtered date dimensions, item and store for the
// result, aggregates over the sale/return quantities, GROUP BY / ORDER BY /
// LIMIT 100.
func Q17() string {
	return `SELECT i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name,
       count(ss.ss_quantity) AS store_sales_quantitycount,
       avg(ss.ss_quantity) AS store_sales_quantityave,
       avg(sr.sr_return_quantity) AS store_returns_quantityave,
       avg(cs.cs_quantity) AS catalog_sales_quantityave
FROM store_sales ss, store_returns sr, catalog_sales cs,
     date_dim d1, date_dim d2, date_dim d3, store st, item i
WHERE d1.d_moy = 4
  AND d1.d_year = 2001
  AND d1.d_date_sk = ss.ss_sold_date_sk
  AND i.i_item_sk = ss.ss_item_sk
  AND st.s_store_sk = ss.ss_store_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND sr.sr_returned_date_sk = d2.d_date_sk
  AND d2.d_moy BETWEEN 4 AND 10
  AND d2.d_year = 2001
  AND sr.sr_customer_sk = cs.cs_bill_customer_sk
  AND sr.sr_item_sk = cs.cs_item_sk
  AND cs.cs_sold_date_sk = d3.d_date_sk
  AND d3.d_moy BETWEEN 4 AND 10
  AND d3.d_year = 2001
GROUP BY i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name
ORDER BY i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name
LIMIT 100`
}

// Q50 is the paper's TPC-DS query 50 (Figure 9b): the fact-to-fact
// store_sales⋈store_returns join with parameterized (myrand) predicates on
// one date dimension.
func Q50() string {
	return `SELECT st.s_store_name, ss.ss_quantity, sr.sr_return_quantity
FROM store_sales ss, store_returns sr, date_dim d1, date_dim d2, store st
WHERE d1.d_moy = myrand(8, 10)
  AND d1.d_year = myrand(1998, 2000)
  AND d1.d_date_sk = sr.sr_returned_date_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND ss.ss_sold_date_sk = d2.d_date_sk
  AND ss.ss_store_sk = st.s_store_sk`
}

// Q50P is the serving variant of Q50: the dimension predicates become
// $moy/$year query parameters so repeated executions with rotating bindings
// share one plan-memo shape.
func Q50P() string {
	return `SELECT st.s_store_name, ss.ss_quantity, sr.sr_return_quantity
FROM store_sales ss, store_returns sr, date_dim d1, date_dim d2, store st
WHERE d1.d_moy = $moy
  AND d1.d_year = $year
  AND d1.d_date_sk = sr.sr_returned_date_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND ss.ss_sold_date_sk = d2.d_date_sk
  AND ss.ss_store_sk = st.s_store_sk`
}

// Q17P is the serving variant of Q17: the first date dimension's
// month/year filter is parameterized ($moy/$year) for repeated execution
// with rotating bindings.
func Q17P() string {
	return `SELECT i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name,
       count(ss.ss_quantity) AS store_sales_quantitycount,
       avg(ss.ss_quantity) AS store_sales_quantityave,
       avg(sr.sr_return_quantity) AS store_returns_quantityave,
       avg(cs.cs_quantity) AS catalog_sales_quantityave
FROM store_sales ss, store_returns sr, catalog_sales cs,
     date_dim d1, date_dim d2, date_dim d3, store st, item i
WHERE d1.d_moy = $moy
  AND d1.d_year = $year
  AND d1.d_date_sk = ss.ss_sold_date_sk
  AND i.i_item_sk = ss.ss_item_sk
  AND st.s_store_sk = ss.ss_store_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND sr.sr_returned_date_sk = d2.d_date_sk
  AND d2.d_moy BETWEEN 4 AND 10
  AND d2.d_year = 2001
  AND sr.sr_customer_sk = cs.cs_bill_customer_sk
  AND sr.sr_item_sk = cs.cs_item_sk
  AND cs.cs_sold_date_sk = d3.d_date_sk
  AND d3.d_moy BETWEEN 4 AND 10
  AND d3.d_year = 2001
GROUP BY i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name
ORDER BY i.i_item_id, i.i_item_desc, st.s_store_id, st.s_store_name
LIMIT 100`
}
