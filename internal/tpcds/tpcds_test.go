package tpcds

import (
	"sort"
	"strings"
	"testing"

	"dynopt/internal/catalog"
	"dynopt/internal/cluster"
	"dynopt/internal/core"
	"dynopt/internal/engine"
	"dynopt/internal/expr"
	"dynopt/internal/optimizer"
	"dynopt/internal/plan"
	"dynopt/internal/sqlpp"
	"dynopt/internal/types"
)

func loadCtx(t *testing.T, sf, nodes int) (*engine.Context, Sizes) {
	t.Helper()
	ctx := &engine.Context{
		Cluster: cluster.New(nodes),
		Catalog: catalog.New(),
		UDFs:    expr.NewRegistry(),
		Params:  map[string]types.Value{},
	}
	sz, err := Load(ctx, sf)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, sz
}

func TestLoadSizes(t *testing.T) {
	ctx, sz := loadCtx(t, 1, 4)
	for name, want := range map[string]int{
		"store_sales": sz.StoreSales, "store_returns": sz.StoreReturns,
		"catalog_sales": sz.CatalogSales, "date_dim": sz.DateDim,
		"store": sz.Store, "item": sz.Item,
	} {
		ds, ok := ctx.Catalog.Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if int(ds.RowCount()) != want {
			t.Errorf("%s rows = %d, want %d", name, ds.RowCount(), want)
		}
	}
}

func TestReturnsReferenceSales(t *testing.T) {
	ctx, _ := loadCtx(t, 1, 2)
	ss, _ := ctx.Catalog.Get("store_sales")
	sr, _ := ctx.Catalog.Get("store_returns")
	type key struct{ c, i, t int64 }
	sales := map[key]int64{} // → sold day
	ci := ss.Schema.MustIndex("ss_customer_sk")
	ii := ss.Schema.MustIndex("ss_item_sk")
	ti := ss.Schema.MustIndex("ss_ticket_number")
	di := ss.Schema.MustIndex("ss_sold_date_sk")
	for _, part := range ss.Parts {
		for _, row := range part {
			sales[key{row[ci].I(), row[ii].I(), row[ti].I()}] = row[di].I()
		}
	}
	rci := sr.Schema.MustIndex("sr_customer_sk")
	rii := sr.Schema.MustIndex("sr_item_sk")
	rti := sr.Schema.MustIndex("sr_ticket_number")
	rdi := sr.Schema.MustIndex("sr_returned_date_sk")
	for _, part := range sr.Parts {
		for _, row := range part {
			sold, ok := sales[key{row[rci].I(), row[rii].I(), row[rti].I()}]
			if !ok {
				t.Fatal("return references a non-existent sale")
			}
			if row[rdi].I() < sold {
				t.Fatal("return dated before its sale")
			}
		}
	}
}

func TestDateDimCalendar(t *testing.T) {
	ctx, sz := loadCtx(t, 1, 2)
	dd, _ := ctx.Catalog.Get("date_dim")
	yi := dd.Schema.MustIndex("d_year")
	mi := dd.Schema.MustIndex("d_moy")
	years := map[int64]int{}
	for _, part := range dd.Parts {
		for _, row := range part {
			years[row[yi].I()]++
			if row[mi].I() < 1 || row[mi].I() > 12 {
				t.Fatalf("bad moy %d", row[mi].I())
			}
		}
	}
	for y := int64(1998); y <= 2002; y++ {
		if years[y] != 360 {
			t.Errorf("year %d has %d days", y, years[y])
		}
	}
	if sz.DateDim != 1800 {
		t.Errorf("date_dim size = %d", sz.DateDim)
	}
}

func TestQueriesParseAndAnalyze(t *testing.T) {
	ctx, _ := loadCtx(t, 1, 2)
	for name, sql := range map[string]string{"Q17": Q17(), "Q50": Q50()} {
		q, err := sqlpp.Parse(sql)
		if err != nil {
			t.Fatalf("%s parse: %v", name, err)
		}
		g, err := sqlpp.Analyze(q, ctx.Catalog.Resolver())
		if err != nil {
			t.Fatalf("%s analyze: %v", name, err)
		}
		switch name {
		case "Q17":
			if len(g.Aliases) != 8 || len(g.Joins) != 7 {
				t.Errorf("Q17 graph: %d aliases %d joins", len(g.Aliases), len(g.Joins))
			}
			e, ok := g.JoinFor("ss", "sr")
			if !ok || len(e.LeftFields) != 3 {
				t.Errorf("Q17 ss⋈sr composite edge: %+v", e)
			}
			e2, ok := g.JoinFor("sr", "cs")
			if !ok || len(e2.LeftFields) != 2 {
				t.Errorf("Q17 sr⋈cs composite edge: %+v", e2)
			}
		case "Q50":
			if len(g.Aliases) != 5 || len(g.Joins) != 4 {
				t.Errorf("Q50 graph: %d aliases %d joins", len(g.Aliases), len(g.Joins))
			}
			// d1's predicates are parameterized (myrand) ⇒ complex.
			found := false
			for _, p := range g.Locals["d1"] {
				if expr.IsComplex(p) {
					found = true
				}
			}
			if !found {
				t.Error("Q50 d1 has no complex predicate")
			}
		}
	}
}

func renderRows(res *engine.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestQ17Q50AllStrategiesAgree(t *testing.T) {
	for qname, sql := range map[string]string{"Q17": Q17(), "Q50": Q50()} {
		t.Run(qname, func(t *testing.T) {
			refCtx, _ := loadCtx(t, 2, 4)
			refRes, _, err := optimizer.NewCostBased().Run(refCtx, sql)
			if err != nil {
				t.Fatal(err)
			}
			want := renderRows(refRes)
			if len(want) == 0 {
				t.Fatalf("%s returns no rows — workload too sparse", qname)
			}
			strategies := []core.Strategy{
				core.NewDynamic(),
				optimizer.NewBestOrder(),
				optimizer.NewWorstOrder(),
				optimizer.NewPilotRun(),
				optimizer.NewIngresLike(),
			}
			for _, s := range strategies {
				ctx, _ := loadCtx(t, 2, 4)
				res, rep, err := s.Run(ctx, sql)
				if err != nil {
					t.Fatalf("%s/%s: %v\n%v", qname, s.Name(), err, rep)
				}
				got := renderRows(res)
				if len(got) != len(want) {
					t.Errorf("%s/%s: %d rows, want %d", qname, s.Name(), len(got), len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s/%s: row %d differs: %s vs %s", qname, s.Name(), i, got[i], want[i])
						break
					}
				}
			}
		})
	}
}

func TestQ17DynamicPlanShape(t *testing.T) {
	ctx, _ := loadCtx(t, 10, 4)
	_, rep, err := core.NewDynamic().Run(ctx, Q17())
	if err != nil {
		t.Fatal(err)
	}
	// §7.2.1's essential property: dimension tables prune the fact tables
	// before any fact-fact join — the first scheduled stage never joins two
	// raw fact tables. (Whether the pruned branches assemble into a
	// literally bushy tree depends on the cardinality constants; see
	// EXPERIMENTS.md.)
	if rep.Tree == nil {
		t.Fatal("no plan tree")
	}
	assertNoRawFactFactJoin(t, rep.Tree)
	if !strings.Contains(rep.Compact(), "⋈b") {
		t.Errorf("Q17 dynamic plan has no broadcasts: %s", rep.Compact())
	}
	// Three multi-predicate date dims get pushed down.
	if rep.PushDowns != 3 {
		t.Errorf("Q17 pushdowns = %d, want 3", rep.PushDowns)
	}
}

// assertNoRawFactFactJoin fails if any join node has two unfiltered fact
// leaves as inputs (the worst-order shape dynamic optimization exists to
// avoid).
func assertNoRawFactFactJoin(t *testing.T, n *plan.Node) {
	t.Helper()
	if n.Leaf != nil {
		return
	}
	facts := map[string]bool{"store_sales": true, "store_returns": true, "catalog_sales": true}
	l, r := n.Join.Left, n.Join.Right
	rawFact := func(x *plan.Node) bool {
		return x.Leaf != nil && facts[x.Leaf.Dataset] && x.Leaf.Filter == nil
	}
	if rawFact(l) && rawFact(r) {
		t.Errorf("join of two raw fact tables: %s", n.Compact())
	}
	assertNoRawFactFactJoin(t, l)
	assertNoRawFactFactJoin(t, r)
}

func TestQ50WithINLJ(t *testing.T) {
	ctx, _ := loadCtx(t, 2, 4)
	if err := BuildIndexes(ctx); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Algo.EnableINLJ = true
	d := &core.Dynamic{Cfg: cfg}
	res, rep, err := d.Run(ctx, Q50())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("Q50 INLJ run returned no rows")
	}
	// §7.2.3: dynamic picks INLJ for d1'⋈store_returns.
	if !strings.Contains(rep.Compact(), "⋈i") {
		t.Errorf("Q50 with indexes did not use INLJ: %s", rep.Compact())
	}
	if rep.Counters.IndexLookups == 0 {
		t.Error("no index lookups metered")
	}
}

func TestBuildIndexesErrors(t *testing.T) {
	empty := &engine.Context{Cluster: cluster.New(1), Catalog: catalog.New()}
	if err := BuildIndexes(empty); err == nil {
		t.Error("BuildIndexes without load did not error")
	}
}

func TestQ17LimitRespected(t *testing.T) {
	ctx, _ := loadCtx(t, 2, 4)
	res, _, err := core.NewDynamic().Run(ctx, Q17())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 100 {
		t.Errorf("Q17 returned %d rows, LIMIT 100", len(res.Rows))
	}
	// Ordered by item id (first column ascending).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Compare(res.Rows[i][0]) > 0 {
			t.Error("Q17 result not ordered")
			break
		}
	}
	_ = types.Null() // keep types import for the helpers above
}
