package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("degenerate Intn not 0")
	}
}

func TestRangeInclusive(t *testing.T) {
	r := NewRNG(7)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 5 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("Range endpoints never hit")
	}
	if r.Range(9, 2) != 9 {
		t.Error("inverted Range should return lo")
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(7)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Pick(choices)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick covered %d of 3", len(seen))
	}
	if r.Pick(nil) != "" {
		t.Error("Pick(nil) not empty")
	}
}

func TestZipfSkewed(t *testing.T) {
	r := NewRNG(7)
	const n = 100
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Heavy head: the first decile should hold far more than 10% of mass.
	head := 0
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	if head < 20000 {
		t.Errorf("Zipf head mass = %d of 100000, want heavy (>20%%)", head)
	}
	// Monotone-ish decay between head and tail.
	if counts[0] <= counts[n-1] {
		t.Error("Zipf head not heavier than tail")
	}
	if r.Zipf(1) != 0 || r.Zipf(0) != 0 {
		t.Error("degenerate Zipf not 0")
	}
}

func TestUniformityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		const n, trials = 8, 8000
		counts := make([]int, n)
		for i := 0; i < trials; i++ {
			counts[r.Intn(n)]++
		}
		for _, c := range counts {
			// Each bucket within 3x of the fair share (very loose bound).
			if c < trials/n/3 || c > trials/n*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
