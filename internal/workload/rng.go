// Package workload provides the deterministic PRNG and shared helpers used
// by the TPC-H and TPC-DS data generators. Everything is seeded, so every
// benchmark run sees byte-identical data.
package workload

// RNG is a splitmix64 pseudo-random generator.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Range returns a uniform int in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Pick returns a uniform element of choices.
func (r *RNG) Pick(choices []string) string {
	if len(choices) == 0 {
		return ""
	}
	return choices[r.Intn(len(choices))]
}

// Zipf returns an integer in [0, n) with a heavily skewed (approximately
// zipfian) distribution: low indexes are far more likely. Used to give fact
// tables the key skew that defeats sampling-based distinct estimation.
func (r *RNG) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Three rolls, keep the minimum: cheap heavy-head skew.
	a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
