package faults

import (
	"bytes"
	"errors"
	"math/bits"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestEveryNDeterministic(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "spill.append", EveryN: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if r.Fire(Point("spill.append")) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if got := r.Fired("spill.append"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestProbabilitySeeded(t *testing.T) {
	count := func(seed int64) int {
		r := New(seed)
		r.Arm(Rule{Point: "spill.append", P: 0.5})
		n := 0
		for i := 0; i < 100; i++ {
			if r.Fire(Point("spill.append")) != nil {
				n++
			}
		}
		return n
	}
	a, b := count(42), count(42)
	if a != b {
		t.Fatalf("same seed, different firings: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("p=0.5 fired %d/100 times", a)
	}
}

func TestOneShot(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "spill.read", OneShot: true})
	if r.Fire(Point("spill.read")) == nil {
		t.Fatal("one-shot did not fire on first hit")
	}
	for i := 0; i < 5; i++ {
		if r.Fire(Point("spill.read")) != nil {
			t.Fatal("one-shot fired twice")
		}
	}
	if got := r.Fired("spill.read"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestTaxonomy(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "spill.finish", EveryN: 1})
	err := r.Fire(Point("spill.finish"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTransient) {
		t.Fatalf("injected error %v not classifiable as injected+transient", err)
	}
	custom := errors.New("boom")
	r.Arm(Rule{Point: "spill.finish", EveryN: 1, Err: custom})
	if err := r.Fire(Point("spill.finish")); !errors.Is(err, custom) {
		t.Fatalf("Err override not honored: %v", err)
	}
	if !errors.Is(ErrSpillIO, ErrTransient) {
		t.Fatal("ErrSpillIO must be transient")
	}
}

func TestPanicRuleAndFromPanic(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "probe.drain", EveryN: 1, Panic: true})
	var qe *QueryError
	func() {
		defer func() {
			if v := recover(); v != nil {
				qe = FromPanic("partition", "probe", v)
			}
		}()
		_ = r.Fire(Point("probe.drain"))
	}()
	if qe == nil {
		t.Fatal("panic rule did not panic")
	}
	if !qe.Panicked || len(qe.Stack) == 0 {
		t.Fatalf("FromPanic lost panic metadata: %+v", qe)
	}
	if !errors.Is(qe, ErrTransient) {
		t.Fatalf("contained injected panic %v not transient", qe)
	}
	if qe.Error() == "" || qe.Unwrap() == nil {
		t.Fatal("QueryError must render and unwrap")
	}
}

func TestTripAndBenign(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "governor.reserve", EveryN: 2})
	if r.Trip(Point("governor.reserve")) {
		t.Fatal("EveryN=2 tripped on first hit")
	}
	if !r.Trip(Point("governor.reserve")) {
		t.Fatal("EveryN=2 did not trip on second hit")
	}
	r.Arm(Rule{Point: "exchange.consume", EveryN: 1, Benign: true, Stall: time.Microsecond})
	if err := r.Fire(Point("exchange.consume")); err != nil {
		t.Fatalf("benign stall returned error %v", err)
	}
	if r.Fired("exchange.consume") != 1 {
		t.Fatal("benign firing not counted")
	}
}

func TestArmUnknownPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Arm of an unregistered point did not panic")
		}
	}()
	New(1).Arm(Rule{Point: "no.such.point"})
}

func TestResetAndDisarm(t *testing.T) {
	r := New(1)
	r.Arm(Rule{Point: "scan.open", EveryN: 1})
	if r.Fire(Point("scan.open")) == nil {
		t.Fatal("armed point did not fire")
	}
	r.Disarm("scan.open")
	if r.Fire(Point("scan.open")) != nil {
		t.Fatal("disarmed point fired")
	}
	if r.Fired("scan.open") != 1 {
		t.Fatal("Disarm cleared the fired count")
	}
	r.Reset()
	if r.Fired("scan.open") != 0 {
		t.Fatal("Reset kept the fired count")
	}
}

// TestDisabledPathZeroAlloc is the contract the whole design leans on: with
// no registry armed (the production configuration), an injection site is a
// nil check — zero allocations, zero effects.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var nilReg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		if err := nilReg.Fire(Point("spill.append")); err != nil {
			t.Fatal(err)
		}
		if nilReg.Trip(Point("governor.reserve")) {
			t.Fatal("nil registry tripped")
		}
	}); n != 0 {
		t.Fatalf("disabled fault point allocates: %v allocs/op", n)
	}
	// Armed registry, unarmed point: still zero allocations.
	r := New(1)
	r.Arm(Rule{Point: "memo.replay", OneShot: true})
	if n := testing.AllocsPerRun(1000, func() {
		if err := r.Fire(Point("spill.append")); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("unarmed fault point allocates: %v allocs/op", n)
	}
}

// BenchmarkDisabledFire backs the CI no-faults guard: the reported
// allocs/op for the disabled hot path must stay at zero.
func BenchmarkDisabledFire(b *testing.B) {
	var nilReg *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := nilReg.Fire(Point("spill.append")); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKnownAndNames(t *testing.T) {
	if !Known("spill.create") || Known("bogus") {
		t.Fatal("Known misclassifies points")
	}
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty point table")
	}
	for _, n := range names {
		if !Known(n) {
			t.Fatalf("Names returned unknown point %q", n)
		}
	}
}

// mutateFixture writes a file of distinctive bytes and returns its path.
func mutateFixture(t *testing.T, size int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run")
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fileBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestMutateFileKinds(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind CorruptKind
	}{
		{"flip-bit", CorruptFlipBit},
		{"truncate-tail", CorruptTruncateTail},
		{"torn-write", CorruptTornWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := mutateFixture(t, 4096)
			before := fileBytes(t, path)
			r := New(42)
			r.Arm(Rule{Point: "spill.corrupt", EveryN: 1, Corrupt: tc.kind})
			if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
				t.Fatal(err)
			}
			after := fileBytes(t, path)
			if bytes.Equal(before, after) {
				t.Fatal("mutation left the file unchanged")
			}
			if r.Fired("spill.corrupt") != 1 {
				t.Errorf("fired = %d", r.Fired("spill.corrupt"))
			}
			switch tc.kind {
			case CorruptFlipBit:
				if len(after) != len(before) {
					t.Errorf("flip-bit changed the size: %d -> %d", len(before), len(after))
				}
				diff := 0
				for i := range before {
					diff += bits.OnesCount8(before[i] ^ after[i])
				}
				if diff != 1 {
					t.Errorf("flip-bit flipped %d bits", diff)
				}
			case CorruptTruncateTail:
				if len(after) >= len(before) || !bytes.Equal(before[:len(after)], after) {
					t.Error("truncate-tail did not cleanly shorten the file")
				}
			case CorruptTornWrite:
				if len(after) != len(before) {
					t.Errorf("torn-write changed the size: %d -> %d", len(before), len(after))
				}
				z := 0
				for z < len(after) && after[len(after)-1-z] == 0 {
					z++
				}
				if z == 0 || !bytes.Equal(before[:len(before)-z], after[:len(after)-z]) {
					t.Error("torn-write did not zero only the tail")
				}
			}
		})
	}
}

// TestMutateFileDeterministic: the same seed damages the same site.
func TestMutateFileDeterministic(t *testing.T) {
	var snaps [][]byte
	for i := 0; i < 2; i++ {
		path := mutateFixture(t, 4096)
		r := New(7)
		r.Arm(Rule{Point: "spill.corrupt", EveryN: 1, Corrupt: CorruptFlipBit})
		if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, fileBytes(t, path))
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Error("same seed produced different mutations")
	}
}

// TestMutateFileNoOps: nil registry, unarmed point, a rule without a
// Corrupt kind, and an empty file all leave the file alone.
func TestMutateFileNoOps(t *testing.T) {
	path := mutateFixture(t, 128)
	before := fileBytes(t, path)
	var nilReg *Registry
	if err := nilReg.MutateFile(Point("spill.corrupt"), path); err != nil {
		t.Fatal(err)
	}
	r := New(1)
	if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
		t.Fatal(err)
	}
	r.Arm(Rule{Point: "spill.corrupt", EveryN: 1}) // no Corrupt kind
	if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, fileBytes(t, path)) {
		t.Error("a no-op case touched the file")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	r.Arm(Rule{Point: "spill.corrupt", EveryN: 1, Corrupt: CorruptTruncateTail})
	if err := r.MutateFile(Point("spill.corrupt"), empty); err != nil {
		t.Fatal(err)
	}
}

// TestMutateFileOneShot: a one-shot corruption rule fires exactly once, so
// the rebuilt run comes back clean.
func TestMutateFileOneShot(t *testing.T) {
	path := mutateFixture(t, 1024)
	before := fileBytes(t, path)
	r := New(3)
	r.Arm(Rule{Point: "spill.corrupt", OneShot: true, Corrupt: CorruptTornWrite})
	if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
		t.Fatal(err)
	}
	first := fileBytes(t, path)
	if bytes.Equal(before, first) {
		t.Fatal("one-shot rule did not fire")
	}
	if err := r.MutateFile(Point("spill.corrupt"), path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, fileBytes(t, path)) {
		t.Error("one-shot rule fired twice")
	}
}
