// Package leakcheck asserts that a test leaves no goroutines behind: the
// operator goroutines of a query (scatter/replicate producers and
// consumers, partition workers, sink writers) must all have exited by the
// time the query returns, on every path — success, error, contained panic,
// cancellation. A leaked goroutine here is a leaked grant or a deadlocked
// bounded channel waiting to happen.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long Check waits for stragglers before declaring a leak.
// Exiting goroutines are visible to runtime.NumGoroutine slightly after
// their work is done, so a few scheduling quanta of patience avoids flakes
// without masking real leaks.
const grace = 2 * time.Second

// Check snapshots the live goroutine count and registers a cleanup that
// fails the test if the count has not returned to the baseline (with a
// short grace period for goroutines still unwinding). Call it first in the
// test, before any query runs.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n > base {
			t.Errorf("leakcheck: %d goroutines leaked (%d live, baseline %d)\n%s",
				n-base, n, base, stacks())
		}
	})
}

// stacks dumps all goroutine stacks, trimming the runtime's own
// bookkeeping goroutines out of the noise where recognizable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var keep []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "runtime.gopark") && strings.Contains(g, "[GC") {
			continue
		}
		keep = append(keep, g)
	}
	return fmt.Sprintf("--- goroutine dump ---\n%s", strings.Join(keep, "\n\n"))
}
