// Package faults is the engine's failure model: a deterministic
// fault-injection registry for the layers that can actually fail (spill
// I/O, the memory governor, the exchanges, catalog registration, memo
// replay), the sentinel error taxonomy the serving layer classifies and
// retries on, and the panic-to-error conversion used at operator-goroutine
// and query boundaries.
//
// The registry is test-only machinery armed through Config.Faults; in
// production every injection site holds a nil *Registry and the Fire/Trip
// fast path is a single nil check — no allocation, no lock, no map lookup.
// Triggers are seeded and deterministic (every-Nth hit, probability under a
// seeded PRNG, one-shot), so a chaos run replays identically from its seed.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sync"
	"time"
)

// The sentinel error taxonomy. Layers wrap these with fmt.Errorf("%w", ...)
// so callers classify failures with errors.Is regardless of how many
// context layers accumulated on the way up.
var (
	// ErrTransient marks failures that may not recur: a retry of the whole
	// query (whose side effects are swept on every exit path) is safe and
	// plausibly useful. ErrInjected and ErrSpillIO wrap it.
	ErrTransient = errors.New("transient failure")
	// ErrInjected is the default error of a fired injection point.
	ErrInjected = fmt.Errorf("injected fault (%w)", ErrTransient)
	// ErrSpillIO marks run-file I/O failures — create, append, flush, seal,
	// read-back, or unlink of a spill file.
	ErrSpillIO = fmt.Errorf("spill I/O failure (%w)", ErrTransient)
	// ErrCorrupt marks spill data that failed integrity verification on
	// read-back: a block or footer checksum mismatch, bad framing,
	// truncation, or counts disagreeing with the run's seal. It wraps
	// ErrTransient because the damage is confined to swept per-query state —
	// a retry rewrites the runs from source data.
	ErrCorrupt = fmt.Errorf("spill data corruption (%w)", ErrTransient)
	// ErrDiskFull marks spill writes refused by a full device (ENOSPC or a
	// short write). It wraps ErrSpillIO so the spill-failure degradation
	// ladder (resident build, then classified failure) applies unchanged.
	ErrDiskFull = fmt.Errorf("spill device full (%w)", ErrSpillIO)
	// ErrAdmission marks a query that gave up while queued for an admission
	// slot: its context was cancelled or its timeout expired before a slot
	// opened. The query never started, so nothing was executed.
	ErrAdmission = errors.New("admission wait expired")
	// ErrOverCapacity marks a query the memory governor refused: it needed
	// resident memory the cluster could not grant and no degraded path
	// (eviction, in-memory fallback) could absorb the shortfall.
	ErrOverCapacity = errors.New("memory grant over capacity")
)

// QueryError is the structured failure of one query execution: which stage
// of the pipeline failed, which operator (or goroutine role) raised it, and
// — for contained panics — the recovered value's stack. Unwrap exposes the
// underlying cause so errors.Is sees through to the sentinel taxonomy.
type QueryError struct {
	// Stage is the pipeline stage or boundary that failed: "query",
	// "partition", "exchange", "admission", ...
	Stage string
	// Operator names the operator or goroutine role within the stage.
	Operator string
	// Panicked reports that this error is a contained panic.
	Panicked bool
	// Stack is the panicking goroutine's stack, captured at recover time.
	Stack []byte
	// Err is the underlying cause.
	Err error
}

func (e *QueryError) Error() string {
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	if e.Operator != "" {
		return fmt.Sprintf("dynopt: %s %s in %s: %v", e.Stage, kind, e.Operator, e.Err)
	}
	return fmt.Sprintf("dynopt: %s %s: %v", e.Stage, kind, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// FromPanic converts a recovered panic value into a *QueryError, capturing
// the stack of the recovering goroutine. Error panic values (including
// injected ones, which carry the transient sentinel) become the underlying
// cause directly so the taxonomy survives containment.
func FromPanic(stage, operator string, v any) *QueryError {
	err, ok := v.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", v)
	}
	return &QueryError{
		Stage:    stage,
		Operator: operator,
		Panicked: true,
		Stack:    debug.Stack(),
		Err:      err,
	}
}

// Rule arms one injection point. The trigger is EveryN when set, else P
// when set, else every hit; OneShot disarms the rule after its first
// firing. The effect is Panic when set, else the Err (default: ErrInjected
// wrapped with the point name); Stall sleeps before the effect either way,
// and a Stall-only rule (no Panic, nil Err, Benign) just delays.
type Rule struct {
	// Point is the registered injection point name (see Point / the point
	// table in points.go).
	Point string
	// EveryN fires on every Nth hit of the point (1 = every hit).
	EveryN int
	// P fires each hit with this probability under the registry's seeded
	// PRNG (used when EveryN == 0).
	P float64
	// OneShot disarms the rule after its first firing.
	OneShot bool
	// Stall sleeps this long when the rule fires (consumer-stall and
	// send-timeout scenarios).
	Stall time.Duration
	// Panic panics with an injected transient error instead of returning
	// one.
	Panic bool
	// Err overrides the injected error.
	Err error
	// Benign makes a firing report no error: the rule only stalls (and
	// counts). Meaningless combined with Panic.
	Benign bool
	// Corrupt selects the on-disk mutation MutateFile applies when the rule
	// fires. Only MutateFile consults it; Fire/Trip sites ignore it.
	Corrupt CorruptKind
}

// CorruptKind selects how MutateFile damages a sealed run file: the three
// corruption shapes real storage produces — a flipped bit (media/DMA error),
// a truncated tail (lost append), and a torn write (zeroed tail page).
type CorruptKind int

const (
	CorruptNone CorruptKind = iota
	// CorruptFlipBit flips one deterministic bit somewhere in the file.
	CorruptFlipBit
	// CorruptTruncateTail truncates 1..128 bytes off the end of the file.
	CorruptTruncateTail
	// CorruptTornWrite zeroes the last 1..128 bytes in place, as if the
	// final page made it to disk only partially.
	CorruptTornWrite
)

// Registry is a set of armed rules keyed by injection point, with
// deterministic seeded triggers. The zero of interest is the nil *Registry:
// every method is nil-receiver safe and free of effects, so production
// injection sites cost one nil check.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*armed
	fired map[string]int
}

type armed struct {
	rule Rule
	hits int
	done bool // one-shot consumed
}

// New returns a registry whose probabilistic triggers draw from seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		rules: map[string]*armed{},
		fired: map[string]int{},
	}
}

// Arm installs (or replaces) the rule for rule.Point. The point must be
// registered in the point table; arming a typo'd dead point is a test bug
// worth failing loudly over.
func (r *Registry) Arm(rule Rule) {
	if !Known(rule.Point) {
		panic(fmt.Sprintf("faults: Arm(%q): point not in the registered point table", rule.Point))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[rule.Point] = &armed{rule: rule}
}

// Disarm removes the rule for a point, keeping its fired count.
func (r *Registry) Disarm(point string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.rules, point)
}

// Reset disarms every rule and clears all fired counts (the PRNG keeps its
// sequence: scenario order still matters to probabilistic rules, which is
// why chaos suites use fixed scenario orders).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = map[string]*armed{}
	r.fired = map[string]int{}
}

// Fired returns how many times the point's rule has fired.
func (r *Registry) Fired(point string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// hit evaluates the point's trigger, returning the firing rule (by value)
// or ok == false. Stalls and panics are applied by the caller outside the
// lock.
func (r *Registry) hit(point string) (Rule, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.rules[point]
	if a == nil || a.done {
		return Rule{}, false
	}
	a.hits++
	fire := true
	switch {
	case a.rule.EveryN > 0:
		fire = a.hits%a.rule.EveryN == 0
	case a.rule.P > 0:
		fire = r.rng.Float64() < a.rule.P
	}
	if !fire {
		return Rule{}, false
	}
	if a.rule.OneShot {
		a.done = true
	}
	r.fired[point]++
	return a.rule, true
}

// Fire is the injection-site entry point: it evaluates the point's trigger
// and applies the armed effect — sleep for Stall, panic with an injected
// transient error for Panic, else return the injected error. A nil
// registry, an unarmed point, or a non-firing trigger all return nil.
func (r *Registry) Fire(point string) error {
	if r == nil {
		return nil
	}
	rule, ok := r.hit(point)
	if !ok {
		return nil
	}
	if rule.Stall > 0 {
		time.Sleep(rule.Stall)
	}
	err := rule.Err
	if err == nil {
		err = fmt.Errorf("%w at %q", ErrInjected, point)
	}
	if rule.Panic {
		panic(err)
	}
	if rule.Benign {
		return nil
	}
	return err
}

// MutateFile is the corruption-injection entry point: it evaluates the
// point's trigger and, when the rule fires with a Corrupt kind set, damages
// the file at path in place — flipping one bit, truncating the tail, or
// zeroing the tail like a torn write. The damage site and size draw from the
// registry's seeded PRNG, so a corruption scenario replays identically from
// its seed. A nil registry, an unarmed point, a non-firing trigger, a rule
// without a Corrupt kind, or an empty file are all no-ops; the returned
// error reports only mutation I/O failures (the corruption itself is meant
// to be discovered later, by the reader's checksums).
func (r *Registry) MutateFile(point, path string) error {
	if r == nil {
		return nil
	}
	rule, ok := r.hit(point)
	if !ok || rule.Corrupt == CorruptNone {
		return nil
	}
	if rule.Stall > 0 {
		time.Sleep(rule.Stall)
	}
	r.mu.Lock()
	draw := r.rng.Int63()
	r.mu.Unlock()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faults: mutate %q: %w", point, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("faults: mutate %q: %w", point, err)
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	tail := 1 + draw%128
	if tail > size {
		tail = size
	}
	switch rule.Corrupt {
	case CorruptFlipBit:
		off := draw % size
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return fmt.Errorf("faults: mutate %q: %w", point, err)
		}
		b[0] ^= 1 << (draw % 8)
		if _, err := f.WriteAt(b[:], off); err != nil {
			return fmt.Errorf("faults: mutate %q: %w", point, err)
		}
	case CorruptTruncateTail:
		if err := f.Truncate(size - tail); err != nil {
			return fmt.Errorf("faults: mutate %q: %w", point, err)
		}
	case CorruptTornWrite:
		if _, err := f.WriteAt(make([]byte, tail), size-tail); err != nil {
			return fmt.Errorf("faults: mutate %q: %w", point, err)
		}
	}
	return nil
}

// Trip is Fire for forced-denial sites (governor pressure, capacity
// collapse): it reports whether the rule fired instead of returning an
// error, applying Stall and Panic effects the same way.
func (r *Registry) Trip(point string) bool {
	if r == nil {
		return false
	}
	rule, ok := r.hit(point)
	if !ok {
		return false
	}
	if rule.Stall > 0 {
		time.Sleep(rule.Stall)
	}
	if rule.Panic {
		err := rule.Err
		if err == nil {
			err = fmt.Errorf("%w at %q", ErrInjected, point)
		}
		panic(err)
	}
	return true
}
