package faults

// The package-level point table: every injection point threaded through the
// engine, by layer. Arm panics on names missing from this table, and the
// dynoptlint faultpoint analyzer statically rejects any faults.Point("...")
// literal not listed here — a typo'd point can neither arm nor compile into
// an injection site silently.
var points = map[string]string{
	"spill.create": "storage: opening a fresh spill run file",
	"spill.append": "storage: appending one tuple to a run file",
	"spill.finish": "storage: flushing and sealing a run file",
	"spill.read":   "storage: opening a finished run for read-back",
	"spill.remove": "storage: unlinking a consumed run file",
	"spill.corrupt": "storage: mutating a sealed run file before read-back " +
		"(corruption injection via Rule.Corrupt)",
	"spill.sync": "storage: fsyncing a sealed run file (Config.SpillSync)",
	"page.open":  "storage: opening a paged dataset's page file",
	"page.read":  "storage: reading one page frame out of a page file",
	"page.corrupt": "storage: mutating a sealed page file before read-back " +
		"(corruption injection via Rule.Corrupt)",
	"governor.reserve": "cluster: memory grant reservation (fired = denied)",
	"governor.collapse": "cluster: capacity collapse — Capacity() reports " +
		"1 byte while armed",
	"exchange.produce": "engine: producer-side chunk send into the exchange",
	"exchange.consume": "engine: consumer-side chunk receive from the exchange",
	"scan.open":        "engine: opening a partition scan cursor",
	"probe.drain":      "engine: draining residual probe chunks",
	"sink.finish":      "engine: sealing the streamed result dataset",
	"catalog.register": "core: registering a stage's materialized temp dataset",
	"memo.replay":      "core: replaying a memoized plan for a repeated shape",
}

// Point marks a fault-injection point name at its call site. It is the
// identity function — the indirection exists so injection sites are
// greppable and so dynoptlint's faultpoint analyzer can check every literal
// against the point table at build time.
func Point(name string) string { return name }

// Known reports whether name is in the registered point table.
func Known(name string) bool {
	_, ok := points[name]
	return ok
}

// Names returns every registered point name, unordered.
func Names() []string {
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	return out
}
