// Package cluster models the shared-nothing environment the paper runs on
// (10 AWS nodes in §7): a node count that drives data partitioning, an
// atomic cost accountant that every engine operator reports to, and a
// calibrated cost model translating the metered work into simulated seconds.
//
// The engine executes queries for real; simulation enters only in how the
// metered counters are priced. This keeps who-wins comparisons meaningful at
// laptop scale: a plan that shuffles a fact table pays for those bytes
// whether the wall clock notices or not.
package cluster

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultMemoryPerNodeBytes is the per-node join-memory budget: hash-table
// builds larger than this overflow to disk (§3's "overflow partitions"),
// paying spill I/O. At the default DataScale this stands for a few GB of
// query memory per node.
const DefaultMemoryPerNodeBytes = 512 << 10

// Cluster is one simulated shared-nothing deployment. A Cluster is shared by
// every query a DB serves, so its tunables are safe to read and replace
// concurrently: the memory budget is atomic and the cost model is guarded by
// a read-write lock (partition goroutines read both mid-join).
type Cluster struct {
	nodes    int
	memBytes atomic.Int64
	acct     Accounting
	gov      *Governor
	mu       sync.RWMutex // guards model
	model    CostModel
}

// New returns a cluster with the given node (partition) count and the
// default cost model.
func New(nodes int) *Cluster {
	if nodes < 1 {
		nodes = 1
	}
	c := &Cluster{nodes: nodes, model: DefaultCostModel()}
	c.gov = &Governor{c: c}
	c.memBytes.Store(DefaultMemoryPerNodeBytes)
	return c
}

// Governor returns the cluster's memory governor, against which queries hold
// per-query grants.
func (c *Cluster) Governor() *Governor { return c.gov }

// MemoryPerNodeBytes returns the per-node join-memory budget.
func (c *Cluster) MemoryPerNodeBytes() int64 { return c.memBytes.Load() }

// SetMemoryPerNodeBytes replaces the per-node join-memory budget (0 or
// negative disables spill modelling).
func (c *Cluster) SetMemoryPerNodeBytes(b int64) { c.memBytes.Store(b) }

// Nodes returns the partition count.
func (c *Cluster) Nodes() int { return c.nodes }

// Acct returns the cluster's lifetime cost accountant.
func (c *Cluster) Acct() *Accounting { return &c.acct }

// Model returns the cluster's cost model.
func (c *Cluster) Model() CostModel {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.model
}

// SetModel replaces the cost model (used by ablation benches).
func (c *Cluster) SetModel(m CostModel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.model = m
}

// Accounting is the set of atomic counters the engine operators report to.
// All counters are cumulative for the cluster's lifetime; callers diff
// Snapshots around a query to charge it.
type Accounting struct {
	ScanRows       atomic.Int64 // base-dataset rows read
	ScanBytes      atomic.Int64
	ShuffleRows    atomic.Int64 // rows crossing the network in hash repartitioning
	ShuffleBytes   atomic.Int64
	BroadcastRows  atomic.Int64 // rows replicated to every node
	BroadcastBytes atomic.Int64
	MatWriteRows   atomic.Int64 // materialized intermediate writes (Sink)
	MatWriteBytes  atomic.Int64
	MatReadRows    atomic.Int64 // materialized intermediate reads (Reader)
	MatReadBytes   atomic.Int64
	BuildRows      atomic.Int64 // hash-join build side
	ProbeRows      atomic.Int64 // hash-join probe side
	IndexLookups   atomic.Int64 // INLJ index probes
	IndexRows      atomic.Int64 // rows fetched via index
	StatsObserved  atomic.Int64 // online statistics observations
	ReoptPoints    atomic.Int64 // blocking re-optimization points crossed
	SpillRows      atomic.Int64 // hash-join rows overflowing the memory budget
	SpillBytes     atomic.Int64 // bytes written+read through overflow partitions
	SpillRebuilds  atomic.Int64 // spill runs rebuilt after failing integrity checks
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	ScanRows, ScanBytes           int64
	ShuffleRows, ShuffleBytes     int64
	BroadcastRows, BroadcastBytes int64
	MatWriteRows, MatWriteBytes   int64
	MatReadRows, MatReadBytes     int64
	BuildRows, ProbeRows          int64
	IndexLookups, IndexRows       int64
	StatsObserved                 int64
	ReoptPoints                   int64
	SpillRows, SpillBytes         int64
	SpillRebuilds                 int64
}

// Snapshot copies the current counter values.
func (a *Accounting) Snapshot() Snapshot {
	return Snapshot{
		ScanRows: a.ScanRows.Load(), ScanBytes: a.ScanBytes.Load(),
		ShuffleRows: a.ShuffleRows.Load(), ShuffleBytes: a.ShuffleBytes.Load(),
		BroadcastRows: a.BroadcastRows.Load(), BroadcastBytes: a.BroadcastBytes.Load(),
		MatWriteRows: a.MatWriteRows.Load(), MatWriteBytes: a.MatWriteBytes.Load(),
		MatReadRows: a.MatReadRows.Load(), MatReadBytes: a.MatReadBytes.Load(),
		BuildRows: a.BuildRows.Load(), ProbeRows: a.ProbeRows.Load(),
		IndexLookups: a.IndexLookups.Load(), IndexRows: a.IndexRows.Load(),
		StatsObserved: a.StatsObserved.Load(),
		ReoptPoints:   a.ReoptPoints.Load(),
		SpillRows:     a.SpillRows.Load(), SpillBytes: a.SpillBytes.Load(),
		SpillRebuilds: a.SpillRebuilds.Load(),
	}
}

// Sub returns s - o, counter-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		ScanRows: s.ScanRows - o.ScanRows, ScanBytes: s.ScanBytes - o.ScanBytes,
		ShuffleRows: s.ShuffleRows - o.ShuffleRows, ShuffleBytes: s.ShuffleBytes - o.ShuffleBytes,
		BroadcastRows: s.BroadcastRows - o.BroadcastRows, BroadcastBytes: s.BroadcastBytes - o.BroadcastBytes,
		MatWriteRows: s.MatWriteRows - o.MatWriteRows, MatWriteBytes: s.MatWriteBytes - o.MatWriteBytes,
		MatReadRows: s.MatReadRows - o.MatReadRows, MatReadBytes: s.MatReadBytes - o.MatReadBytes,
		BuildRows: s.BuildRows - o.BuildRows, ProbeRows: s.ProbeRows - o.ProbeRows,
		IndexLookups: s.IndexLookups - o.IndexLookups, IndexRows: s.IndexRows - o.IndexRows,
		StatsObserved: s.StatsObserved - o.StatsObserved,
		ReoptPoints:   s.ReoptPoints - o.ReoptPoints,
		SpillRows:     s.SpillRows - o.SpillRows, SpillBytes: s.SpillBytes - o.SpillBytes,
		SpillRebuilds: s.SpillRebuilds - o.SpillRebuilds,
	}
}

// String renders the non-zero counters compactly.
func (s Snapshot) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("scanRows", s.ScanRows)
	add("scanBytes", s.ScanBytes)
	add("shuffleBytes", s.ShuffleBytes)
	add("broadcastBytes", s.BroadcastBytes)
	add("matWriteBytes", s.MatWriteBytes)
	add("matReadBytes", s.MatReadBytes)
	add("buildRows", s.BuildRows)
	add("probeRows", s.ProbeRows)
	add("indexLookups", s.IndexLookups)
	add("statsObserved", s.StatsObserved)
	add("reoptPoints", s.ReoptPoints)
	add("spillBytes", s.SpillBytes)
	add("spillRebuilds", s.SpillRebuilds)
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// CostModel prices metered work into simulated seconds. The defaults are
// calibrated to commodity-cluster ratios (disk ≈ 2× faster than the network,
// CPU row work cheap relative to data movement), which is what the paper's
// relative results depend on.
//
// DataScale bridges the gap between this repo's scaled-down datasets and the
// paper's testbed: one simulated row stands for DataScale rows of the 10 GB
// per scale-factor-unit originals, so data-dependent terms are multiplied by
// it while fixed coordinator latencies (job re-submission at every blocking
// re-optimization point) stay at real-world magnitude. Without this, the
// fixed latencies drown the data costs entirely at laptop scale.
type CostModel struct {
	DataScale          float64 // real rows represented by one simulated row
	ScanBytesPerSec    float64 // local storage scan bandwidth per node
	NetworkBytesPerSec float64 // per-node network bandwidth (shuffle & broadcast)
	MatBytesPerSec     float64 // temp write+read bandwidth per node
	RowsPerSec         float64 // per-node CPU rate for build/probe/filter row work
	IndexLookupsPerSec float64 // per-node index probe rate
	StatsObsPerSec     float64 // per-node sketch insertion rate
	ReoptLatencySec    float64 // fixed cost per blocking re-optimization point
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		DataScale:          10_000,
		ScanBytesPerSec:    200e6,
		NetworkBytesPerSec: 100e6,
		MatBytesPerSec:     150e6,
		RowsPerSec:         20e6,
		IndexLookupsPerSec: 1e6,
		StatsObsPerSec:     50e6,
		ReoptLatencySec:    0.2,
	}
}

// SimSeconds prices a snapshot diff on an n-node cluster. Data-parallel work
// divides across nodes and scales with DataScale; re-optimization points are
// fixed coordinator latency.
func (m CostModel) SimSeconds(s Snapshot, nodes int) float64 {
	if nodes < 1 {
		nodes = 1
	}
	scale := m.DataScale
	if scale <= 0 {
		scale = 1
	}
	n := float64(nodes)
	var t float64
	t += float64(s.ScanBytes) / m.ScanBytesPerSec / n
	t += float64(s.ShuffleBytes) / m.NetworkBytesPerSec / n
	// A broadcast sends each byte to every node; the accountant already
	// multiplied by (nodes-1), so it is priced like shuffle traffic.
	t += float64(s.BroadcastBytes) / m.NetworkBytesPerSec / n
	t += float64(s.MatWriteBytes+s.MatReadBytes) / m.MatBytesPerSec / n
	t += float64(s.SpillBytes) / m.MatBytesPerSec / n
	t += float64(s.BuildRows+s.ProbeRows+s.ScanRows) / m.RowsPerSec / n
	t += float64(s.IndexLookups) / m.IndexLookupsPerSec / n
	t += float64(s.IndexRows) / m.RowsPerSec / n
	t += float64(s.StatsObserved) / m.StatsObsPerSec / n
	t *= scale
	t += float64(s.ReoptPoints) * m.ReoptLatencySec
	return t
}
