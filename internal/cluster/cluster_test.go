package cluster

import (
	"strings"
	"sync"
	"testing"
)

func TestNewClampsNodes(t *testing.T) {
	if New(0).Nodes() != 1 {
		t.Error("New(0) nodes != 1")
	}
	if New(10).Nodes() != 10 {
		t.Error("New(10) nodes != 10")
	}
}

func TestSnapshotDiff(t *testing.T) {
	c := New(4)
	a := c.Acct()
	before := a.Snapshot()
	a.ScanRows.Add(100)
	a.ScanBytes.Add(1000)
	a.ShuffleBytes.Add(500)
	a.ReoptPoints.Add(2)
	diff := a.Snapshot().Sub(before)
	if diff.ScanRows != 100 || diff.ScanBytes != 1000 || diff.ShuffleBytes != 500 || diff.ReoptPoints != 2 {
		t.Errorf("diff = %+v", diff)
	}
	if diff.BroadcastBytes != 0 {
		t.Errorf("untouched counter diff = %d", diff.BroadcastBytes)
	}
}

func TestAccountingConcurrent(t *testing.T) {
	c := New(4)
	a := c.Acct()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.ProbeRows.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := a.ProbeRows.Load(); got != 8000 {
		t.Errorf("ProbeRows = %d", got)
	}
}

func TestSimSecondsScalesWithNodes(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{ScanBytes: 2_000_000_000, ShuffleBytes: 1_000_000_000, ProbeRows: 100_000_000}
	t1 := m.SimSeconds(s, 1)
	t10 := m.SimSeconds(s, 10)
	if t10 >= t1 {
		t.Errorf("10-node time %v not less than 1-node %v", t10, t1)
	}
	ratio := t1 / t10
	if ratio < 9 || ratio > 11 {
		t.Errorf("parallel speedup = %v, want ~10", ratio)
	}
}

func TestSimSecondsReoptIsFixedLatency(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{ReoptPoints: 3}
	t1 := m.SimSeconds(s, 1)
	t10 := m.SimSeconds(s, 10)
	if t1 != t10 {
		t.Errorf("reopt latency scaled with nodes: %v vs %v", t1, t10)
	}
	if t1 != 3*m.ReoptLatencySec {
		t.Errorf("reopt latency = %v", t1)
	}
}

func TestSimSecondsMonotoneInWork(t *testing.T) {
	m := DefaultCostModel()
	small := Snapshot{ShuffleBytes: 1000}
	big := Snapshot{ShuffleBytes: 1_000_000}
	if m.SimSeconds(big, 4) <= m.SimSeconds(small, 4) {
		t.Error("more shuffle not more expensive")
	}
}

func TestSimSecondsBroadcastVsShuffleTradeoff(t *testing.T) {
	// The planner's broadcast decision: broadcasting a small build side
	// (bytes × (n-1)) must beat shuffling both sides of a big join.
	m := DefaultCostModel()
	n := 10
	smallBytes := int64(1_000_000)
	bigBytes := int64(1_000_000_000)
	broadcast := Snapshot{BroadcastBytes: smallBytes * int64(n-1)}
	shuffle := Snapshot{ShuffleBytes: smallBytes + bigBytes}
	if m.SimSeconds(broadcast, n) >= m.SimSeconds(shuffle, n) {
		t.Error("broadcasting a small table should beat shuffling a big one")
	}
}

func TestSimSecondsZeroNodes(t *testing.T) {
	m := DefaultCostModel()
	if m.SimSeconds(Snapshot{ScanBytes: 100}, 0) <= 0 {
		t.Error("zero-node guard failed")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{ScanRows: 5, ShuffleBytes: 10}
	str := s.String()
	if !strings.Contains(str, "scanRows=5") || !strings.Contains(str, "shuffleBytes=10") {
		t.Errorf("String() = %q", str)
	}
	if (Snapshot{}).String() != "{}" {
		t.Errorf("empty String() = %q", (Snapshot{}).String())
	}
}

func TestSetModel(t *testing.T) {
	c := New(2)
	m := c.Model()
	m.ReoptLatencySec = 99
	c.SetModel(m)
	if c.Model().ReoptLatencySec != 99 {
		t.Error("SetModel did not stick")
	}
}

// TestTunablesConcurrentWithMetering hammers SetModel and
// SetMemoryPerNodeBytes while readers price work and check the spill
// budget, as partition goroutines do mid-join; meaningful under -race.
func TestTunablesConcurrentWithMetering(t *testing.T) {
	c := New(4)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
				m := DefaultCostModel()
				m.ReoptLatencySec = float64(i)
				c.SetModel(m)
				c.SetMemoryPerNodeBytes(i << 10)
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				if c.MemoryPerNodeBytes() < 0 {
					t.Error("negative budget")
					return
				}
				if c.Model().SimSeconds(Snapshot{ScanBytes: 1 << 20}, c.Nodes()) <= 0 {
					t.Error("non-positive priced work")
					return
				}
				c.Acct().ScanRows.Add(1)
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}
