package cluster

import (
	"sync"
	"sync/atomic"

	"dynopt/internal/faults"
)

// Governor arbitrates query memory across everything a cluster serves
// concurrently. Its capacity is the cluster's aggregate join-memory budget —
// MemoryPerNodeBytes × nodes, tracking budget changes live — and every
// query's working memory (hash-join build tables, group-by state, resident
// materialized intermediates) is reserved against it through a per-query
// Grant.
//
// The governor is a meter with a pressure signal, not a blocking allocator:
// Reserve always records the bytes (so releases always balance) and reports
// whether the cluster is now over capacity. Operators that can shed memory —
// the dynamic hybrid hash join — respond to pressure by evicting build
// partitions to disk; operators that cannot (aggregation state) keep their
// reservation and let the joins around them spill harder instead.
type Governor struct {
	c      *Cluster
	used   atomic.Int64
	faults *faults.Registry
}

// SetFaults arms the governor's injection points (test-only; nil disables).
func (g *Governor) SetFaults(r *faults.Registry) { g.faults = r }

// Capacity returns the current grantable byte total, or 0 when memory
// governance is disabled (MemoryPerNodeBytes <= 0). While a capacity-
// collapse fault is armed it reports a single byte — the mid-query
// budget-revocation scenario, in which every subsequent reservation is
// over capacity and every join must shed what it can.
func (g *Governor) Capacity() int64 {
	if g.faults.Trip(faults.Point("governor.collapse")) {
		return 1
	}
	per := g.c.MemoryPerNodeBytes()
	if per <= 0 {
		return 0
	}
	return per * int64(g.c.Nodes())
}

// Used returns the bytes currently reserved across all grants.
func (g *Governor) Used() int64 { return g.used.Load() }

// WithinCapacity reports whether current reservations fit the current
// capacity — the check degraded paths make before electing to hold a build
// in memory despite a spill-device failure.
func (g *Governor) WithinCapacity() bool {
	capacity := g.Capacity()
	return capacity == 0 || g.used.Load() <= capacity
}

// Grant opens a per-query reservation scope. Close it on every query exit
// path; any bytes still held are released then.
func (g *Governor) Grant() *Grant {
	return &Grant{gov: g}
}

// Grant is one query's memory reservation against the governor. Safe for
// concurrent use by the query's partition goroutines.
type Grant struct {
	gov *Governor

	mu     sync.Mutex
	used   int64
	peak   int64
	closed bool
}

// Reserve records n more bytes held by this query and reports whether the
// cluster is still within its aggregate capacity. A false return is the
// spill signal: the bytes are charged either way (call Release when the
// memory is let go), but the caller should shed memory if it can.
func (gr *Grant) Reserve(n int64) bool {
	if gr == nil || n <= 0 {
		return true
	}
	total := gr.gov.used.Add(n)
	gr.mu.Lock()
	gr.used += n
	if gr.used > gr.peak {
		gr.peak = gr.used
	}
	gr.mu.Unlock()
	if gr.gov.faults.Trip(faults.Point("governor.reserve")) {
		return false // injected denial: bytes stay charged, pressure reported
	}
	capacity := gr.gov.Capacity()
	return capacity == 0 || total <= capacity
}

// WithinCapacity reports the governor-wide capacity check for this grant's
// governor (see Governor.WithinCapacity).
func (gr *Grant) WithinCapacity() bool {
	if gr == nil {
		return true
	}
	return gr.gov.WithinCapacity()
}

// Release returns n bytes to the governor.
func (gr *Grant) Release(n int64) {
	if gr == nil || n <= 0 {
		return
	}
	gr.gov.used.Add(-n)
	gr.mu.Lock()
	gr.used -= n
	gr.mu.Unlock()
}

// Used returns the bytes this query currently holds.
func (gr *Grant) Used() int64 {
	if gr == nil {
		return 0
	}
	gr.mu.Lock()
	defer gr.mu.Unlock()
	return gr.used
}

// Peak returns the high-water mark of this query's held bytes.
func (gr *Grant) Peak() int64 {
	if gr == nil {
		return 0
	}
	gr.mu.Lock()
	defer gr.mu.Unlock()
	return gr.peak
}

// Close releases whatever the query still holds (materialized intermediates
// and aggregate state are freed at query end, not per operator). Idempotent.
func (gr *Grant) Close() {
	if gr == nil {
		return
	}
	gr.mu.Lock()
	if gr.closed {
		gr.mu.Unlock()
		return
	}
	gr.closed = true
	held := gr.used
	gr.used = 0
	gr.mu.Unlock()
	if held != 0 {
		gr.gov.used.Add(-held)
	}
}
