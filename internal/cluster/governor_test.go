package cluster

import (
	"sync"
	"testing"
)

func TestGovernorCapacityTracksBudget(t *testing.T) {
	c := New(4)
	g := c.Governor()
	if got := g.Capacity(); got != 4*DefaultMemoryPerNodeBytes {
		t.Errorf("capacity = %d, want %d", got, 4*DefaultMemoryPerNodeBytes)
	}
	c.SetMemoryPerNodeBytes(1000)
	if got := g.Capacity(); got != 4000 {
		t.Errorf("capacity after budget change = %d, want 4000", got)
	}
	c.SetMemoryPerNodeBytes(0)
	if got := g.Capacity(); got != 0 {
		t.Errorf("capacity with governance disabled = %d, want 0", got)
	}
}

func TestGrantReserveReleasePressure(t *testing.T) {
	c := New(2)
	c.SetMemoryPerNodeBytes(100) // capacity 200
	gr := c.Governor().Grant()
	if !gr.Reserve(150) {
		t.Error("reserve within capacity reported pressure")
	}
	if gr.Reserve(100) {
		t.Error("reserve past capacity reported no pressure")
	}
	// Over-capacity bytes are still charged: the meter never lies.
	if got := c.Governor().Used(); got != 250 {
		t.Errorf("governor used = %d, want 250", got)
	}
	gr.Release(100)
	if !gr.Reserve(1) {
		t.Error("reserve after release reported pressure at 151/200")
	}
	if got := gr.Peak(); got != 250 {
		t.Errorf("peak = %d, want 250", got)
	}
	gr.Close()
	if got := c.Governor().Used(); got != 0 {
		t.Errorf("governor used after close = %d, want 0", got)
	}
	gr.Close() // idempotent
	if got := c.Governor().Used(); got != 0 {
		t.Errorf("governor used after double close = %d", got)
	}
}

func TestGrantsContend(t *testing.T) {
	c := New(1)
	c.SetMemoryPerNodeBytes(100)
	a := c.Governor().Grant()
	b := c.Governor().Grant()
	if !a.Reserve(90) {
		t.Error("first query pressured alone")
	}
	if b.Reserve(50) {
		t.Error("second query saw no pressure with the cluster over capacity")
	}
	a.Close()
	if !b.Reserve(10) {
		t.Error("second query still pressured after first closed")
	}
	b.Close()
}

func TestNilGrantIsNoOp(t *testing.T) {
	var gr *Grant
	if !gr.Reserve(100) {
		t.Error("nil grant reported pressure")
	}
	gr.Release(100)
	gr.Close()
	if gr.Used() != 0 || gr.Peak() != 0 {
		t.Error("nil grant reported usage")
	}
}

func TestGrantConcurrent(t *testing.T) {
	c := New(4)
	c.SetMemoryPerNodeBytes(1 << 20)
	gr := c.Governor().Grant()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				gr.Reserve(64)
				gr.Release(64)
			}
		}()
	}
	wg.Wait()
	if got := gr.Used(); got != 0 {
		t.Errorf("used after balanced reserve/release = %d", got)
	}
	if got := c.Governor().Used(); got != 0 {
		t.Errorf("governor used = %d", got)
	}
}
