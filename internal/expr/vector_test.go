package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dynopt/internal/types"
)

// vecTestSchema covers every vectorizable kind twice (col-col kernels need
// same-kind and cross-numeric pairs) plus a bool column the kernels must
// refuse. Column "m" is declared int but the row generator salts it with
// strings, forcing the runtime Mixed fallback.
func vecTestSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Qualifier: "t", Name: "a", Kind: types.KindInt},
		types.Field{Qualifier: "t", Name: "b", Kind: types.KindInt},
		types.Field{Qualifier: "t", Name: "f", Kind: types.KindFloat},
		types.Field{Qualifier: "t", Name: "g", Kind: types.KindFloat},
		types.Field{Qualifier: "t", Name: "s", Kind: types.KindString},
		types.Field{Qualifier: "t", Name: "u", Kind: types.KindString},
		types.Field{Qualifier: "t", Name: "w", Kind: types.KindBool},
		types.Field{Qualifier: "t", Name: "m", Kind: types.KindInt},
	)
}

func vecTestRows(r *rand.Rand, n int) []types.Tuple {
	strs := []string{"", "ab", "abc", "zzz", "k"}
	rows := make([]types.Tuple, n)
	for i := range rows {
		val := func(mk func() types.Value) types.Value {
			if r.Intn(6) == 0 {
				return types.Null()
			}
			return mk()
		}
		num := func() types.Value { return types.Int(int64(r.Intn(20) - 10)) }
		flt := func() types.Value {
			switch r.Intn(4) {
			case 0:
				return types.Float(math.NaN())
			case 1:
				return types.Float(float64(r.Intn(20) - 10)) // integral
			default:
				return types.Float(r.Float64()*20 - 10)
			}
		}
		str := func() types.Value { return types.Str(strs[r.Intn(len(strs))]) }
		mixed := func() types.Value {
			if r.Intn(3) == 0 {
				return types.Str("stray")
			}
			return types.Int(int64(r.Intn(10)))
		}
		rows[i] = types.Tuple{
			val(num), val(num), val(flt), val(flt), val(str), val(str),
			val(func() types.Value { return types.Bool(r.Intn(2) == 0) }),
			val(mixed),
		}
	}
	return rows
}

// randPredTree draws a random predicate over vecTestSchema: comparisons in
// every operand arrangement (col-const, const-col, col-col, const-const),
// BETWEEN, boolean combinators, plus Param and UDF Call leaves that force
// the per-node scalar fallback.
func randPredTree(r *rand.Rand, depth int) Expr {
	col := func() Expr {
		names := []string{"a", "b", "f", "g", "s", "u", "w", "m"}
		return &Column{Qualifier: "t", Name: names[r.Intn(len(names))]}
	}
	lit := func() Expr {
		switch r.Intn(5) {
		case 0:
			return &Literal{Val: types.Int(int64(r.Intn(20) - 10))}
		case 1:
			return &Literal{Val: types.Float(r.Float64()*20 - 10)}
		case 2:
			return &Literal{Val: types.Str("abc")}
		case 3:
			return &Literal{Val: types.Null()}
		default:
			return &Param{Name: "p"}
		}
	}
	operand := func() Expr {
		if r.Intn(3) == 0 {
			return lit()
		}
		return col()
	}
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &Compare{Op: ops[r.Intn(len(ops))], L: operand(), R: operand()}
		case 1:
			return &Between{X: operand(), Lo: operand(), Hi: operand()}
		case 2:
			// UDF leaf: vectorization must route it through the scalar
			// closure without touching its semantics.
			return &Compare{Op: CmpEq,
				L: &Call{Name: "vtestmod", Args: []Expr{col(), &Literal{Val: types.Int(3)}}},
				R: &Literal{Val: types.Int(0)}}
		default:
			return &Compare{Op: ops[r.Intn(len(ops))], L: col(), R: col()}
		}
	}
	kids := func(n int) []Expr {
		out := make([]Expr, n)
		for i := range out {
			out[i] = randPredTree(r, depth-1)
		}
		return out
	}
	switch r.Intn(3) {
	case 0:
		return &And{Kids: kids(2 + r.Intn(2))}
	case 1:
		return &Or{Kids: kids(2 + r.Intn(2))}
	default:
		return &Not{Kid: randPredTree(r, depth - 1)}
	}
}

// TestVecPredMatchesEval is the kernel equivalence property: for random
// predicate trees, rows, and selection vectors, the vectorized kernel keeps
// exactly the rows whose scalar Eval returns true — across all value kinds,
// NULLs, NaN, mixed-kind columns (runtime fallback), Params, and UDF leaves
// (compile-time fallback).
func TestVecPredMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	udfs := NewRegistry()
	if err := udfs.Register(UDF{Name: "vtestmod", Fn: func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null(), nil
		}
		return types.Int(args[0].I() % args[1].I()), nil
	}}); err != nil {
		t.Fatal(err)
	}
	schema := vecTestSchema()
	env := &Env{Schema: schema, Params: map[string]types.Value{"p": types.Int(2)}, UDFs: udfs}
	vectorized := 0
	for trial := 0; trial < 300; trial++ {
		tree := randPredTree(r, 3)
		k, ok, err := CompileVec(tree, env)
		if err != nil {
			t.Fatalf("trial %d: CompileVec: %v", trial, err)
		}
		if !ok {
			continue
		}
		vectorized++
		rows := vecTestRows(r, 1+r.Intn(120))
		cache := types.NewColCache(schema)
		cache.SetWindow(rows)
		// Input selections: full, empty, and a random subset.
		full := make([]int32, len(rows))
		for i := range full {
			full[i] = int32(i)
		}
		var subset []int32
		for i := range rows {
			if r.Intn(2) == 0 {
				subset = append(subset, int32(i))
			}
		}
		for name, sel := range map[string][]int32{"full": full, "empty": {}, "subset": subset} {
			var want []int32
			for _, ri := range sel {
				v, err := tree.Eval(rows[ri], env)
				if err != nil {
					t.Fatalf("trial %d: Eval: %v", trial, err)
				}
				if v.IsTrue() {
					want = append(want, ri)
				}
			}
			got, err := k(rows, cache, append([]int32(nil), sel...))
			if err != nil {
				t.Fatalf("trial %d %s: kernel: %v", trial, name, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d %s: kernel kept %v, Eval keeps %v\ntree rows=%d", trial, name, got, want, len(rows))
			}
		}
	}
	if vectorized < 100 {
		t.Fatalf("only %d/300 random trees vectorized; generator or compiler regressed", vectorized)
	}
}

// TestVecPredKernelReuse pins the buffer contract: a kernel may be invoked
// across many windows reusing its scratch, and results stay correct when
// the caller hands the same backing selection buffer every time.
func TestVecPredKernelReuse(t *testing.T) {
	schema := vecTestSchema()
	env := &Env{Schema: schema, Params: map[string]types.Value{"p": types.Int(2)}, UDFs: NewRegistry()}
	tree := &Or{Kids: []Expr{
		&Compare{Op: CmpGe, L: &Column{Qualifier: "t", Name: "a"}, R: &Literal{Val: types.Int(5)}},
		&Compare{Op: CmpLt, L: &Column{Qualifier: "t", Name: "f"}, R: &Literal{Val: types.Float(-5)}},
	}}
	k, ok, err := CompileVec(tree, env)
	if err != nil || !ok {
		t.Fatalf("CompileVec: ok=%v err=%v", ok, err)
	}
	r := rand.New(rand.NewSource(41))
	sel := make([]int32, 0, 64)
	cache := types.NewColCache(schema)
	for w := 0; w < 20; w++ {
		rows := vecTestRows(r, 64)
		cache.SetWindow(rows)
		sel = sel[:0]
		for i := range rows {
			sel = append(sel, int32(i))
		}
		got, err := k(rows, cache, sel)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int32]bool{}
		for i, ri := range got {
			if seen[ri] {
				t.Fatalf("window %d: duplicate row %d in selection", w, ri)
			}
			seen[ri] = true
			if i > 0 && got[i-1] >= ri {
				t.Fatalf("window %d: selection not ascending: %v", w, got)
			}
			v, err := tree.Eval(rows[ri], env)
			if err != nil {
				t.Fatal(err)
			}
			if !v.IsTrue() {
				t.Fatalf("window %d: kernel kept row %d that Eval rejects", w, ri)
			}
		}
		for i := range rows {
			if seen[int32(i)] {
				continue
			}
			v, err := tree.Eval(rows[i], env)
			if err != nil {
				t.Fatal(err)
			}
			if v.IsTrue() {
				t.Fatalf("window %d: kernel dropped row %d that Eval accepts", w, i)
			}
		}
	}
}
