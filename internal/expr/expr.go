// Package expr defines the scalar expression language used by local
// predicates: column references, literals, comparisons (incl. BETWEEN),
// boolean connectives, arithmetic, query parameters ($name), and UDF calls.
//
// The paper's predicate taxonomy (§5.1) maps onto this AST: a predicate is
// "complex" when it contains a UDF call or a parameter — exactly the cases
// where a static optimizer is reduced to default selectivity guesses and the
// dynamic approach executes the predicate instead.
package expr

import (
	"fmt"
	"strings"

	"dynopt/internal/types"
)

// Env supplies everything an expression needs at evaluation time.
type Env struct {
	Schema *types.Schema
	Params map[string]types.Value
	UDFs   *Registry
}

// Expr is a scalar expression over one tuple.
type Expr interface {
	// Eval evaluates the expression against a tuple.
	Eval(t types.Tuple, env *Env) (types.Value, error)
	// SQL renders the expression as SQL text (used when the dynamic
	// optimizer re-emits the reconstructed query).
	SQL() string
	// Walk visits this node and every child.
	Walk(fn func(Expr))
}

// Column references alias.name (Qualifier may be empty for bare names).
type Column struct {
	Qualifier string
	Name      string
}

// Eval implements Expr.
func (c *Column) Eval(t types.Tuple, env *Env) (types.Value, error) {
	i, ok := env.Schema.Index(c.key())
	if !ok {
		return types.Null(), fmt.Errorf("expr: unknown column %q in schema %s", c.key(), env.Schema)
	}
	return t[i], nil
}

func (c *Column) key() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// SQL implements Expr.
func (c *Column) SQL() string { return c.key() }

// Walk implements Expr.
func (c *Column) Walk(fn func(Expr)) { fn(c) }

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// Eval implements Expr.
func (l *Literal) Eval(types.Tuple, *Env) (types.Value, error) { return l.Val, nil }

// SQL implements Expr.
func (l *Literal) SQL() string { return l.Val.String() }

// Walk implements Expr.
func (l *Literal) Walk(fn func(Expr)) { fn(l) }

// Param is a query parameter ($name), bound at execution time. A predicate
// containing one is "complex": its selectivity cannot be estimated statically.
type Param struct {
	Name string
}

// Eval implements Expr.
func (p *Param) Eval(_ types.Tuple, env *Env) (types.Value, error) {
	if env.Params == nil {
		return types.Null(), fmt.Errorf("expr: no parameters bound, wanted $%s", p.Name)
	}
	v, ok := env.Params[p.Name]
	if !ok {
		return types.Null(), fmt.Errorf("expr: parameter $%s not bound", p.Name)
	}
	return v, nil
}

// SQL implements Expr.
func (p *Param) SQL() string { return "$" + p.Name }

// Walk implements Expr.
func (p *Param) Walk(fn func(Expr)) { fn(p) }

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Compare applies a comparison operator to two sub-expressions. Comparisons
// involving NULL yield false.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Compare) Eval(t types.Tuple, env *Env) (types.Value, error) {
	lv, err := c.L.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	rv, err := c.R.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Bool(false), nil
	}
	cmp := lv.Compare(rv)
	var out bool
	switch c.Op {
	case CmpEq:
		out = cmp == 0
	case CmpNe:
		out = cmp != 0
	case CmpLt:
		out = cmp < 0
	case CmpLe:
		out = cmp <= 0
	case CmpGt:
		out = cmp > 0
	case CmpGe:
		out = cmp >= 0
	}
	return types.Bool(out), nil
}

// SQL implements Expr.
func (c *Compare) SQL() string {
	return c.L.SQL() + " " + c.Op.String() + " " + c.R.SQL()
}

// Walk implements Expr.
func (c *Compare) Walk(fn func(Expr)) {
	fn(c)
	c.L.Walk(fn)
	c.R.Walk(fn)
}

// Between is "x BETWEEN lo AND hi" (inclusive both ends).
type Between struct {
	X, Lo, Hi Expr
}

// Eval implements Expr.
func (b *Between) Eval(t types.Tuple, env *Env) (types.Value, error) {
	xv, err := b.X.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	lov, err := b.Lo.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	hiv, err := b.Hi.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
		return types.Bool(false), nil
	}
	return types.Bool(xv.Compare(lov) >= 0 && xv.Compare(hiv) <= 0), nil
}

// SQL implements Expr.
func (b *Between) SQL() string {
	return b.X.SQL() + " BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

// Walk implements Expr.
func (b *Between) Walk(fn func(Expr)) {
	fn(b)
	b.X.Walk(fn)
	b.Lo.Walk(fn)
	b.Hi.Walk(fn)
}

// And is the n-ary conjunction of its children.
type And struct {
	Kids []Expr
}

// Eval implements Expr.
func (a *And) Eval(t types.Tuple, env *Env) (types.Value, error) {
	for _, k := range a.Kids {
		v, err := k.Eval(t, env)
		if err != nil {
			return types.Null(), err
		}
		if !v.IsTrue() {
			return types.Bool(false), nil
		}
	}
	return types.Bool(true), nil
}

// SQL implements Expr.
func (a *And) SQL() string {
	parts := make([]string, len(a.Kids))
	for i, k := range a.Kids {
		parts[i] = k.SQL()
	}
	return strings.Join(parts, " AND ")
}

// Walk implements Expr.
func (a *And) Walk(fn func(Expr)) {
	fn(a)
	for _, k := range a.Kids {
		k.Walk(fn)
	}
}

// Or is the n-ary disjunction of its children.
type Or struct {
	Kids []Expr
}

// Eval implements Expr.
func (o *Or) Eval(t types.Tuple, env *Env) (types.Value, error) {
	for _, k := range o.Kids {
		v, err := k.Eval(t, env)
		if err != nil {
			return types.Null(), err
		}
		if v.IsTrue() {
			return types.Bool(true), nil
		}
	}
	return types.Bool(false), nil
}

// SQL implements Expr. The disjunction is wrapped in outer parentheses so it
// can be embedded in a conjunct list without changing precedence.
func (o *Or) SQL() string {
	parts := make([]string, len(o.Kids))
	for i, k := range o.Kids {
		parts[i] = "(" + k.SQL() + ")"
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Walk implements Expr.
func (o *Or) Walk(fn func(Expr)) {
	fn(o)
	for _, k := range o.Kids {
		k.Walk(fn)
	}
}

// Not negates its child.
type Not struct {
	Kid Expr
}

// Eval implements Expr.
func (n *Not) Eval(t types.Tuple, env *Env) (types.Value, error) {
	v, err := n.Kid.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	return types.Bool(!v.IsTrue()), nil
}

// SQL implements Expr.
func (n *Not) SQL() string { return "NOT (" + n.Kid.SQL() + ")" }

// Walk implements Expr.
func (n *Not) Walk(fn func(Expr)) {
	fn(n)
	n.Kid.Walk(fn)
}

// Call invokes a registered UDF by name.
type Call struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (c *Call) Eval(t types.Tuple, env *Env) (types.Value, error) {
	if env.UDFs == nil {
		return types.Null(), fmt.Errorf("expr: no UDF registry, wanted %s()", c.Name)
	}
	fn, ok := env.UDFs.Lookup(c.Name)
	if !ok {
		return types.Null(), fmt.Errorf("expr: UDF %q not registered", c.Name)
	}
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(t, env)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	return fn.Fn(args)
}

// SQL implements Expr.
func (c *Call) SQL() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.SQL()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Walk implements Expr.
func (c *Call) Walk(fn func(Expr)) {
	fn(c)
	for _, a := range c.Args {
		a.Walk(fn)
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
)

func (o ArithOp) String() string {
	switch o {
	case ArithAdd:
		return "+"
	case ArithSub:
		return "-"
	case ArithMul:
		return "*"
	case ArithDiv:
		return "/"
	default:
		return "?"
	}
}

// Arith applies an arithmetic operator to two numeric sub-expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a *Arith) Eval(t types.Tuple, env *Env) (types.Value, error) {
	lv, err := a.L.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	rv, err := a.R.Eval(t, env)
	if err != nil {
		return types.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null(), nil
	}
	// Integer arithmetic when both sides are ints (except division by zero).
	if lv.K == types.KindInt && rv.K == types.KindInt {
		switch a.Op {
		case ArithAdd:
			return types.Int(lv.I() + rv.I()), nil
		case ArithSub:
			return types.Int(lv.I() - rv.I()), nil
		case ArithMul:
			return types.Int(lv.I() * rv.I()), nil
		case ArithDiv:
			if rv.I() == 0 {
				return types.Null(), fmt.Errorf("expr: division by zero")
			}
			return types.Int(lv.I() / rv.I()), nil
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		return types.Null(), fmt.Errorf("expr: arithmetic on non-numeric values %v %s %v", lv, a.Op, rv)
	}
	switch a.Op {
	case ArithAdd:
		return types.Float(lf + rf), nil
	case ArithSub:
		return types.Float(lf - rf), nil
	case ArithMul:
		return types.Float(lf * rf), nil
	case ArithDiv:
		if rf == 0 {
			return types.Null(), fmt.Errorf("expr: division by zero")
		}
		return types.Float(lf / rf), nil
	}
	return types.Null(), fmt.Errorf("expr: unknown arithmetic op %d", a.Op)
}

// SQL implements Expr.
func (a *Arith) SQL() string {
	return "(" + a.L.SQL() + " " + a.Op.String() + " " + a.R.SQL() + ")"
}

// Walk implements Expr.
func (a *Arith) Walk(fn func(Expr)) {
	fn(a)
	a.L.Walk(fn)
	a.R.Walk(fn)
}
